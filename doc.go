// Package skope is a from-scratch Go reproduction of "Analytically Modeling
// Application Execution for Software-Hardware Co-Design" (Guo, Meng, Yi,
// Morozov, Kumaran — IPDPS 2014): a SKOPE-style toolchain that models a
// workload's execution flow as a Bayesian Execution Tree, projects per-block
// performance on parameterized machine models with an extended roofline, and
// identifies hot spots and hot paths without simulating or running the
// application on the target.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/skope and cmd/skopebench are the command-line entry points, and
// examples/ holds runnable walkthroughs. bench_test.go in this directory
// regenerates every table and figure of the paper's evaluation as Go
// benchmarks.
package skope
