package skope_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end (each is a complete
// walkthrough of a paper use case) and checks for its key output marker.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run the full pipeline; skipped in -short mode")
	}
	cases := map[string]string{
		"quickstart":   "hot path:",
		"codesign":     "bottleneck",
		"miniapp":      "mini-app skeleton",
		"crossmachine": "shared blocks in the two top-10 lists",
		"multinode":    "top hot spot",
	}
	for name, marker := range cases {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Errorf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}
