package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"skope/internal/cliflags"
	"skope/internal/guard"
	"skope/internal/hw"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{list: true, scale: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"benchmarks:", "sord", "stassuij", "machines:", "bgq", "xeon"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAnalysis(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		bench: "srad", scale: 1, show: "spots,breakdown,path",
		mach: cliflags.Machine{Preset: "bgq"},
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 0.5, MaxSpots: 10},
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SRAD", "projected hot spots", "time breakdown", "hot path", "HOT SPOT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunValidate(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		bench: "stassuij", scale: 1, show: "spots", validate: true,
		mach: cliflags.Machine{Preset: "xeon"},
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 0.5, MaxSpots: 10},
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "selection quality (top-10):") {
		t.Errorf("validation section missing:\n%s", buf.String())
	}
}

func TestRunMachineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := hw.BGQ()
	m.Name = "CustomQ"
	if err := hw.SaveConfig(path, m); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := config{
		bench: "srad", scale: 1, show: "spots",
		mach: cliflags.Machine{File: path},
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 0.5, MaxSpots: 3},
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CustomQ") {
		t.Errorf("custom machine not used:\n%s", buf.String())
	}
}

func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		bench: "sord", scale: 1,
		mach: cliflags.Machine{Preset: "bgq"},
		sw:   cliflags.Sweep{Top: 5, Axes: cliflags.AxisList{"mem-bandwidth=14,28,56", "net-latency-us=1,2,4"}},
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"design-space sweep: 9 variants",
		"Pareto frontier",
		"best variant:",
		"cache hit rate",
		"mem-bandwidth=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunListShowsSweepParams(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{list: true, scale: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sweep parameters", "mem-bandwidth", "net-latency-us"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestAxisListRejectsBadSpec(t *testing.T) {
	var a cliflags.AxisList
	if err := a.Set("nosuch-param=1,2"); err == nil {
		t.Error("unknown sweep parameter accepted")
	}
	if err := a.Set("mem-bandwidth=abc"); err == nil {
		t.Error("non-numeric sweep value accepted")
	}
	if err := a.Set("mem-bandwidth=14,28"); err != nil {
		t.Errorf("valid axis rejected: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{bench: "nosuch", mach: cliflags.Machine{Preset: "bgq"}, scale: 1, show: "spots"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := run(context.Background(), &buf, config{bench: "srad", mach: cliflags.Machine{Preset: "vax"}, scale: 1, show: "spots"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := run(context.Background(), &buf, config{bench: "srad", mach: cliflags.Machine{File: "/nonexistent.json"}, scale: 1, show: "spots"}); err == nil {
		t.Error("missing machine file accepted")
	}
}

func TestRunUserSource(t *testing.T) {
	src := `
global n: int = 64;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = exp(a[i]) * 0.5;
  }
}
`
	path := filepath.Join(t.TempDir(), "app.ml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := config{
		source: path, scale: 1, show: "spots", validate: true,
		mach: cliflags.Machine{Preset: "future"},
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 1, MaxSpots: 5},
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "user program") || !strings.Contains(out, "FutureNode") {
		t.Errorf("user-source output wrong:\n%s", out)
	}
	if !strings.Contains(out, "selection quality") {
		t.Errorf("validation missing:\n%s", out)
	}
}

// sweepStoreConfig is the shared sweep-with-store configuration of the
// store tests: srad over a 3x2 grid, results in storePath.
func sweepStoreConfig(storePath string) config {
	return config{
		bench: "srad", scale: 1,
		mach: cliflags.Machine{Preset: "bgq"},
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 0.5, MaxSpots: 10},
		sw: cliflags.Sweep{
			Store: storePath,
			Axes:  cliflags.AxisList{"mem-bandwidth=16,32,64", "freq-ghz=1.6,2.4"},
		},
	}
}

// stableSweepOutput strips the timing-bearing footer so cold and warm
// sweep outputs can be compared byte-for-byte.
func stableSweepOutput(out string) string {
	if i := strings.Index(out, "sweep stats:"); i >= 0 {
		return out[:i]
	}
	return out
}

// TestRunSweepStore: the -store flag serves a repeated sweep entirely from
// the content-addressed store — the warm run never rebuilds the model
// (guard fault point core.body stays silent) and renders the identical
// ranked table and Pareto frontier.
func TestRunSweepStore(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "results.cas")
	cfg := sweepStoreConfig(storePath)

	var cold bytes.Buffer
	if _, err := run(context.Background(), &cold, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.String(), "store "+storePath) {
		t.Errorf("cold output missing store stats:\n%s", cold.String())
	}

	disarm := guard.Arm("core.body", func(detail string) {
		t.Errorf("warm sweep built a BET (at %s)", detail)
	})
	defer disarm()
	var warm bytes.Buffer
	if _, err := run(context.Background(), &warm, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "preparation skipped (fully warm)") {
		t.Errorf("warm output not fully warm:\n%s", warm.String())
	}
	if stableSweepOutput(cold.String()) != stableSweepOutput(warm.String()) {
		t.Errorf("warm sweep output differs from cold:\n--- cold\n%s\n--- warm\n%s",
			cold.String(), warm.String())
	}
}

// TestRunSweepStoreCrossProcess is the acceptance test across process
// boundaries: a cold sweep in one child process populates the store file;
// an identical sweep in a second process is served entirely from it with
// zero core.Build calls and renders byte-identical results.
func TestRunSweepStoreCrossProcess(t *testing.T) {
	if os.Getenv("SKOPE_STORE_HELPER") != "" {
		t.Skip("helper process")
	}
	if testing.Short() {
		t.Skip("re-exec test")
	}
	dir := t.TempDir()
	storePath := filepath.Join(dir, "results.cas")
	outputs := map[string]string{}
	for _, mode := range []string{"cold", "warm"} {
		outFile := filepath.Join(dir, mode+".out")
		cmd := exec.Command(os.Args[0], "-test.run", "TestHelperStoreSweep", "-test.v")
		cmd.Env = append(os.Environ(),
			"SKOPE_STORE_HELPER="+mode,
			"SKOPE_STORE_PATH="+storePath,
			"SKOPE_STORE_OUT="+outFile,
		)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("%s child failed: %v\n%s", mode, err, out)
		}
		b, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		outputs[mode] = string(b)
	}
	if !strings.Contains(outputs["warm"], "preparation skipped (fully warm)") {
		t.Errorf("second process recomputed:\n%s", outputs["warm"])
	}
	if stableSweepOutput(outputs["cold"]) != stableSweepOutput(outputs["warm"]) {
		t.Errorf("cross-process results differ:\n--- cold\n%s\n--- warm\n%s",
			outputs["cold"], outputs["warm"])
	}
}

// TestHelperStoreSweep is the child body of the cross-process test: it runs
// the store-backed sweep once, with the model-construction fault point
// armed in warm mode so any recomputation fails the child.
func TestHelperStoreSweep(t *testing.T) {
	mode := os.Getenv("SKOPE_STORE_HELPER")
	if mode == "" {
		t.Skip("not a helper invocation")
	}
	if mode == "warm" {
		disarm := guard.Arm("core.body", func(detail string) {
			t.Errorf("warm process built a BET (at %s)", detail)
		})
		defer disarm()
	}
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, sweepStoreConfig(os.Getenv("SKOPE_STORE_PATH"))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("SKOPE_STORE_OUT"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunSweepStoreWithJournal: -store and -journal compose; the journal
// records the cold sweep and a -resume run replays it.
func TestRunSweepStoreWithJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := sweepStoreConfig(filepath.Join(dir, "results.cas"))
	cfg.sw.Journal = filepath.Join(dir, "sweep.journal")

	var cold bytes.Buffer
	if _, err := run(context.Background(), &cold, cfg); err != nil {
		t.Fatal(err)
	}
	// A second run without -resume must refuse to clobber the journal.
	if _, err := run(context.Background(), &bytes.Buffer{}, cfg); err == nil ||
		!strings.Contains(err.Error(), "-resume") {
		t.Errorf("existing journal not rejected: %v", err)
	}
	cfg.sw.Resume = true
	var warm bytes.Buffer
	if _, err := run(context.Background(), &warm, cfg); err != nil {
		t.Fatal(err)
	}
	if stableSweepOutput(cold.String()) != stableSweepOutput(warm.String()) {
		t.Errorf("resumed sweep differs from cold")
	}
}

// TestRunListShowsStore: -list documents the result store.
func TestRunListShowsStore(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{list: true, scale: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "result store (-store") {
		t.Errorf("list output missing store section:\n%s", buf.String())
	}
}
