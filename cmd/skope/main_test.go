package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skope/internal/hw"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{list: true, scale: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"benchmarks:", "sord", "stassuij", "machines:", "bgq", "xeon"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAnalysis(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		bench: "srad", machine: "bgq", scale: 1,
		show: "spots,breakdown,path", coverage: 0.9, leanness: 0.5, maxSpots: 10,
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SRAD", "projected hot spots", "time breakdown", "hot path", "HOT SPOT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunValidate(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		bench: "stassuij", machine: "xeon", scale: 1,
		show: "spots", coverage: 0.9, leanness: 0.5, maxSpots: 10, validate: true,
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "selection quality (top-10):") {
		t.Errorf("validation section missing:\n%s", buf.String())
	}
}

func TestRunMachineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	m := hw.BGQ()
	m.Name = "CustomQ"
	if err := hw.SaveConfig(path, m); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := config{
		bench: "srad", machineFile: path, scale: 1,
		show: "spots", coverage: 0.9, leanness: 0.5, maxSpots: 3,
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CustomQ") {
		t.Errorf("custom machine not used:\n%s", buf.String())
	}
}

func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{
		bench: "sord", machine: "bgq", scale: 1, top: 5,
		sweeps: axisList{"mem-bandwidth=14,28,56", "net-latency-us=1,2,4"},
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"design-space sweep: 9 variants",
		"Pareto frontier",
		"best variant:",
		"cache hit rate",
		"mem-bandwidth=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestRunListShowsSweepParams(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{list: true, scale: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sweep parameters", "mem-bandwidth", "net-latency-us"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestAxisListRejectsBadSpec(t *testing.T) {
	var a axisList
	if err := a.Set("nosuch-param=1,2"); err == nil {
		t.Error("unknown sweep parameter accepted")
	}
	if err := a.Set("mem-bandwidth=abc"); err == nil {
		t.Error("non-numeric sweep value accepted")
	}
	if err := a.Set("mem-bandwidth=14,28"); err != nil {
		t.Errorf("valid axis rejected: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(context.Background(), &buf, config{bench: "nosuch", machine: "bgq", scale: 1, show: "spots"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := run(context.Background(), &buf, config{bench: "srad", machine: "vax", scale: 1, show: "spots"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := run(context.Background(), &buf, config{bench: "srad", machineFile: "/nonexistent.json", scale: 1, show: "spots"}); err == nil {
		t.Error("missing machine file accepted")
	}
}

func TestRunUserSource(t *testing.T) {
	src := `
global n: int = 64;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = exp(a[i]) * 0.5;
  }
}
`
	path := filepath.Join(t.TempDir(), "app.ml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := config{
		source: path, machine: "future", scale: 1,
		show: "spots", coverage: 0.9, leanness: 1, maxSpots: 5, validate: true,
	}
	if _, err := run(context.Background(), &buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "user program") || !strings.Contains(out, "FutureNode") {
		t.Errorf("user-source output wrong:\n%s", out)
	}
	if !strings.Contains(out, "selection quality") {
		t.Errorf("validation missing:\n%s", out)
	}
}
