package main

// Tests of the -shard-workers multi-process sweep mode. The test binary
// doubles as the worker executable: sweepSharded re-executes
// os.Executable(), which under `go test` is the test binary, so TestMain
// routes the shard-worker role to runShardWorker exactly like the real
// skope main does.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skope/internal/cliflags"
	"skope/internal/journal"
)

func TestMain(m *testing.M) {
	if os.Getenv(shardWorkerURLEnv) != "" {
		os.Exit(runShardWorker())
	}
	os.Exit(m.Run())
}

// shardedConfig is the shared base: 4 variants over two axes, small
// enough that two workers plus the in-process replay stay fast.
func shardedConfig(t *testing.T, workers int, dir string) config {
	t.Helper()
	cfg := config{
		bench: "sord",
		mach:  cliflags.Machine{Preset: "bgq"},
		scale: 1,
		show:  "spots",
	}
	cfg.sw.ShardWorkers = workers
	cfg.sw.ShardDir = dir
	for _, ax := range []string{"mem-bandwidth=16,32", "net-latency-us=1,2"} {
		if err := cfg.sw.Axes.Set(ax); err != nil {
			t.Fatal(err)
		}
	}
	return cfg
}

// tableOf strips the run header and trailing stats line, leaving the
// rendered sweep (table, frontier, best variant) for comparison.
func tableOf(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "design-space sweep")
	j := strings.Index(out, "sweep stats:")
	if i < 0 || j < 0 || j < i {
		t.Fatalf("output missing sweep table or stats:\n%s", out)
	}
	return out[i:j]
}

func TestRunSweepSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	dir := t.TempDir()
	var sharded bytes.Buffer
	if _, err := run(context.Background(), &sharded, shardedConfig(t, 2, dir)); err != nil {
		t.Fatal(err)
	}

	// The headline contract: the sharded sweep renders exactly what the
	// single-process sweep renders (same ranking, same times, same
	// frontier) — the merged journals are bit-identical to local results.
	single := shardedConfig(t, 0, "")
	single.sw.ShardWorkers = 0
	var direct bytes.Buffer
	if _, err := run(context.Background(), &direct, single); err != nil {
		t.Fatal(err)
	}
	if got, want := tableOf(t, sharded.String()), tableOf(t, direct.String()); got != want {
		t.Errorf("sharded sweep rendered differently than direct sweep:\n--- sharded ---\n%s\n--- direct ---\n%s", got, want)
	}

	if !strings.Contains(sharded.String(), "worker processes") {
		t.Errorf("sharded stats line missing:\n%s", sharded.String())
	}

	// The merged journal is durable output, not a temp artifact, when the
	// caller named the shard directory.
	merged := filepath.Join(dir, "merged.journal")
	var n int
	if _, err := journal.Scan(merged, func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatalf("merged journal: %v", err)
	}
	if n != 4 {
		t.Errorf("merged journal has %d records, want 4", n)
	}

	// Re-running against the same shard directory replays: the workers
	// find every variant already journaled and evaluate nothing.
	var again bytes.Buffer
	if _, err := run(context.Background(), &again, shardedConfig(t, 2, dir)); err != nil {
		t.Fatal(err)
	}
	if got, want := tableOf(t, again.String()), tableOf(t, direct.String()); got != want {
		t.Errorf("resumed sharded sweep rendered differently than direct sweep")
	}
}

func TestRunShardFlagValidation(t *testing.T) {
	// -shard-workers without -sweep axes.
	cfg := config{bench: "sord", mach: cliflags.Machine{Preset: "bgq"}, scale: 1, show: "spots"}
	cfg.sw.ShardWorkers = 2
	if _, err := run(context.Background(), &bytes.Buffer{}, cfg); err == nil ||
		!strings.Contains(err.Error(), "-sweep") {
		t.Errorf("shard-workers without sweep: err = %v", err)
	}

	// -shard-workers with -store.
	cfg = shardedConfig(t, 2, t.TempDir())
	cfg.sw.Store = filepath.Join(t.TempDir(), "s.cas")
	if _, err := run(context.Background(), &bytes.Buffer{}, cfg); err == nil ||
		!strings.Contains(err.Error(), "-store") {
		t.Errorf("shard-workers with store: err = %v", err)
	}

	// -shard-workers with -limits (limits do not travel in the job spec).
	cfg = shardedConfig(t, 2, t.TempDir())
	cfg.grd.Limits = "nest-depth=32"
	if _, err := run(context.Background(), &bytes.Buffer{}, cfg); err == nil ||
		!strings.Contains(err.Error(), "-limits") {
		t.Errorf("shard-workers with limits: err = %v", err)
	}
}
