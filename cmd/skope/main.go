// Command skope runs the analytical co-design pipeline on one benchmark:
// it profiles the workload locally, translates it into a SKOPE-style code
// skeleton, builds the Bayesian Execution Tree, projects per-block
// performance on a target machine with the extended roofline model, and
// reports hot spots, bottleneck breakdowns and the hot path. With
// -validate it additionally runs the machine timing simulator and reports
// the selection quality against the measured profile. With -sweep it
// switches to design-space exploration: the flag (repeatable) spans a grid
// of machine variants around the base machine, evaluated analytically
// through the bounded, memoizing exploration engine.
//
// Usage:
//
//	skope -bench sord -machine bgq [-scale 1] [-show all] [-validate]
//	skope -source app.ml -machine xeon -validate     # your own minilang file
//	skope -bench sord -machine bgq -sweep mem-bandwidth=16,32,64 -sweep net-latency-us=1,2,4
//
// Long-running sweeps can be made durable and fault-tolerant:
//
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -journal sweep.journal \
//	      -retries 3 -variant-timeout 30s
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -journal sweep.journal -resume
//
// -journal appends every completed variant to a crash-safe journal
// (fsync per record); -resume replays the journaled variants of an
// interrupted sweep bit-identically instead of recomputing them.
// -retries re-attempts transiently failing variants with exponential
// backoff, and -variant-timeout bounds each attempt.
//
// -lenient switches the frontend and model construction into
// error-recovering mode: syntax errors drop the offending statement,
// missing branch probabilities and trip counts fall back to documented
// priors, and every substitution is reported as a diagnostic alongside a
// confidence score. -min-confidence sets a floor below which sweep
// variants are flagged instead of ranked.
//
// Exit codes: 0 on a clean run, 1 on failure, 3 when the run completed
// but degraded — some results rest on fallback priors, recovered parses,
// or poisoned sweep variants.
//
// Benchmarks: sord, chargei, srad, cfd, stassuij.
// Machines: bgq, xeon, future.
// Sections (-show, comma separated): skeleton, bet, spots, breakdown,
// path, dot, all.
// Sweep parameters: skope -list prints the full set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/report"
	"skope/internal/resilience"
	"skope/internal/workloads"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.bench, "bench", "sord", "benchmark name (sord, chargei, srad, cfd, stassuij)")
	flag.StringVar(&cfg.source, "source", "", "analyze a minilang source file instead of a built-in benchmark")
	flag.StringVar(&cfg.machine, "machine", "bgq", "target machine preset (bgq, xeon)")
	flag.StringVar(&cfg.machineFile, "machine-file", "", "JSON machine description (overrides -machine; see hw.SaveConfig)")
	flag.Float64Var(&cfg.scale, "scale", 1, "workload scale factor")
	flag.StringVar(&cfg.show, "show", "spots,breakdown,path", "comma-separated sections: skeleton,bet,spots,breakdown,path,dot,all")
	flag.BoolVar(&cfg.validate, "validate", false, "also simulate the workload and report selection quality")
	flag.Float64Var(&cfg.coverage, "coverage", 0.90, "hot-spot time coverage target")
	flag.Float64Var(&cfg.leanness, "leanness", 0.50, "hot-spot code leanness budget")
	flag.IntVar(&cfg.maxSpots, "spots", 10, "maximum hot spots to select (0 = unlimited)")
	flag.BoolVar(&cfg.list, "list", false, "list benchmarks, machine presets and sweep parameters, then exit")
	flag.Var(&cfg.sweeps, "sweep", "design-space axis param=v1,v2,... (repeatable; switches to sweep mode)")
	flag.IntVar(&cfg.workers, "workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.top, "top", 10, "sweep mode: variants to print (0 = all)")
	flag.StringVar(&cfg.journal, "journal", "", "sweep mode: append completed variants to this crash-safe journal file")
	flag.BoolVar(&cfg.resume, "resume", false, "sweep mode: replay variants already recorded in -journal instead of recomputing them")
	flag.IntVar(&cfg.retries, "retries", 0, "sweep mode: retries per variant for transient failures (exponential backoff with jitter)")
	flag.DurationVar(&cfg.variantTimeout, "variant-timeout", 0, "sweep mode: deadline per evaluation attempt, e.g. 30s (0 = none)")
	flag.StringVar(&cfg.limits, "limits", "", "guard limit overrides, e.g. \"nest-depth=32,bet-nodes=100000\"; keys: "+strings.Join(guard.LimitKeys(), ", "))
	flag.BoolVar(&cfg.lenient, "lenient", false, "error-recovering mode: recover from syntax errors and missing profile data, report diagnostics and a confidence score instead of failing")
	flag.Float64Var(&cfg.minConfidence, "min-confidence", 0, "sweep mode: flag variants whose analysis confidence falls below this floor instead of ranking them (0 = off)")
	flag.Parse()
	degraded, err := run(context.Background(), os.Stdout, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skope:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(exitDegraded)
	}
}

// exitDegraded is the exit code of a run that completed but produced
// degraded results: fallback priors, recovered parses, or flagged sweep
// variants. Distinct from 1 so scripts can tell "usable with caveats"
// from "failed".
const exitDegraded = 3

// axisList collects repeated -sweep flags.
type axisList []string

func (a *axisList) String() string { return strings.Join(*a, "; ") }

func (a *axisList) Set(v string) error {
	if _, err := explore.ParseAxis(v); err != nil {
		return err
	}
	*a = append(*a, v)
	return nil
}

// config carries the parsed command line.
type config struct {
	bench, source, machine, machineFile, show string
	limits, journal                           string
	scale, coverage, leanness                 float64
	minConfidence                             float64
	maxSpots, workers, top, retries           int
	variantTimeout                            time.Duration
	validate, list, resume, lenient           bool
	sweeps                                    axisList
}

func run(ctx context.Context, out io.Writer, cfg config) (degraded bool, err error) {
	if cfg.list {
		fmt.Fprintln(out, "benchmarks:")
		for _, n := range workloads.Names() {
			w, _ := workloads.Get(n, workloads.Scale(cfg.scale))
			fmt.Fprintf(out, "  %-10s %s\n", n, w.Description)
		}
		fmt.Fprintln(out, "machines:")
		names := make([]string, 0, len(hw.Presets()))
		for n := range hw.Presets() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m, _ := hw.Preset(n)
			fmt.Fprintf(out, "  %-10s %s (%.2g GHz, %d-wide, %.3g GB/s)\n",
				n, m.Name, m.FreqGHz, m.IssueWidth, m.MemBandwidthGBs)
		}
		fmt.Fprintln(out, "sweep parameters (-sweep param=v1,v2,...):")
		for _, h := range explore.ParamHelp() {
			fmt.Fprintf(out, "  %s\n", h)
		}
		fmt.Fprintln(out, "guard limits (-limits key=value,...):")
		for _, h := range guard.Help() {
			fmt.Fprintf(out, "  %s\n", h)
		}
		return false, nil
	}
	var m *hw.Machine
	if cfg.machineFile != "" {
		m, err = hw.LoadConfig(cfg.machineFile)
	} else {
		m, err = hw.Preset(cfg.machine)
	}
	if err != nil {
		return false, err
	}

	var w *workloads.Workload
	if cfg.source != "" {
		text, rerr := os.ReadFile(cfg.source)
		if rerr != nil {
			return false, rerr
		}
		w = &workloads.Workload{
			Name:        cfg.source,
			Description: "user program " + cfg.source,
			Source:      string(text),
			Seed:        1,
		}
	} else {
		w, err = workloads.Get(cfg.bench, workloads.Scale(cfg.scale))
		if err != nil {
			return false, err
		}
	}
	lim, err := guard.ParseLimits(cfg.limits)
	if err != nil {
		return false, fmt.Errorf("-limits: %w", err)
	}
	fmt.Fprintf(out, "# %s\n\n", w.Description)
	run, err := pipeline.Prepare(ctx, w,
		pipeline.WithLimits(lim), pipeline.WithLenient(cfg.lenient))
	if err != nil {
		return false, err
	}
	if tbl := report.Diagnostics("preparation diagnostics", run.Diagnostics); tbl != "" {
		fmt.Fprintln(out, tbl)
	}
	if run.Degraded() {
		fmt.Fprintf(out, "preparation %s\n\n", report.Confidence(run.Confidence, run.Diagnostics))
	}

	if len(cfg.sweeps) > 0 {
		return sweep(ctx, out, cfg, run, m)
	}

	sections := map[string]bool{}
	for _, s := range strings.Split(cfg.show, ",") {
		sections[strings.TrimSpace(s)] = true
	}
	if sections["all"] {
		for _, s := range []string{"skeleton", "bet", "spots", "breakdown", "path", "dot"} {
			sections[s] = true
		}
	}
	if sections["skeleton"] {
		fmt.Fprintln(out, "## generated code skeleton")
		fmt.Fprintln(out, run.Skeleton.Text)
	}
	if sections["bet"] {
		fmt.Fprintf(out, "## Bayesian execution tree (%d nodes, size ratio %.2f)\n\n",
			run.BET.NumNodes(), run.BET.SizeRatio())
		fmt.Fprintln(out, run.BET.Dump())
	}

	crit := hotspot.Criteria{TimeCoverage: cfg.coverage, CodeLeanness: cfg.leanness, MaxSpots: cfg.maxSpots}
	ev, err := pipeline.Evaluate(ctx, run, m, pipeline.WithCriteria(crit))
	if err != nil {
		return false, err
	}
	for _, d := range ev.Analysis.Diagnostics {
		fmt.Fprintln(os.Stderr, "skope: warning:", d)
	}
	if ev.Degraded() {
		degraded = true
		fmt.Fprintf(out, "## %s\n\n", report.Confidence(ev.Confidence, ev.Diagnostics))
	}

	if sections["spots"] {
		fmt.Fprintf(out, "## projected hot spots on %s (coverage %.1f%%, leanness %.1f%%)\n\n",
			m.Name, 100*ev.Selection.Coverage, 100*ev.Selection.Leanness)
		for i, s := range ev.Selection.Spots {
			bound := "compute-bound"
			if s.MemoryBound {
				bound = "memory-bound"
			}
			fmt.Fprintf(out, "%2d. %-30s %6.2f%%  x%.4g  %s\n",
				i+1, s.BlockID, 100*ev.Analysis.Coverage(s), s.Invocations, bound)
		}
		fmt.Fprintln(out)
	}
	if sections["breakdown"] {
		fmt.Fprintf(out, "## per-spot time breakdown on %s (model)\n\n", m.Name)
		fmt.Fprintf(out, "%-30s %10s %10s %10s\n", "block", "comp-only%", "overlap%", "mem-only%")
		for _, s := range ev.Analysis.TopN(10) {
			if s.T <= 0 {
				continue
			}
			fmt.Fprintf(out, "%-30s %10.1f %10.1f %10.1f\n", s.BlockID,
				100*(s.Tc-s.To)/s.T, 100*s.To/s.T, 100*(s.Tm-s.To)/s.T)
		}
		fmt.Fprintln(out)
	}
	if sections["path"] {
		fmt.Fprintln(out, "## hot path")
		fmt.Fprintln(out, ev.HotPath.Render())
	}
	if sections["dot"] {
		fmt.Fprintln(out, "## hot path (graphviz)")
		fmt.Fprintln(out, ev.HotPath.DOT())
	}
	if cfg.validate {
		fmt.Fprintf(out, "## validation against the %s timing simulator\n\n", m.Name)
		fmt.Fprintln(out, ev.Prof.String())
		fmt.Fprintf(out, "selection quality (top-10): %.3f\n", ev.Quality)
		fmt.Fprintf(out, "selection quality (criteria selection): %.3f\n", ev.SelectionQuality)
	}
	return degraded, nil
}

// sweep runs the design-space exploration mode: a grid of machine variants
// around the base machine, evaluated analytically (no simulation) through
// the bounded, memoizing engine, reported as a ranked table plus the
// time/cost Pareto frontier.
func sweep(ctx context.Context, out io.Writer, cfg config, run *pipeline.Run, base *hw.Machine) (degraded bool, err error) {
	grid := explore.Grid{Base: base}
	for _, spec := range cfg.sweeps {
		ax, aerr := explore.ParseAxis(spec)
		if aerr != nil {
			return false, aerr
		}
		grid.Axes = append(grid.Axes, ax)
	}
	variants, err := grid.Variants()
	if err != nil {
		return false, err
	}

	var last explore.Progress
	eng, err := pipeline.Explorer(run,
		pipeline.WithWorkers(cfg.workers),
		pipeline.WithRetry(resilience.DefaultPolicy(cfg.retries)),
		pipeline.WithVariantTimeout(cfg.variantTimeout),
		pipeline.WithMinConfidence(cfg.minConfidence),
		pipeline.WithProgress(func(p explore.Progress) { last = p }))
	if err != nil {
		return false, err
	}
	if cfg.journal != "" {
		if !cfg.resume {
			if fi, statErr := os.Stat(cfg.journal); statErr == nil && fi.Size() > 0 {
				return false, fmt.Errorf("journal %s already exists; pass -resume to replay it or remove the file", cfg.journal)
			}
		}
		j, jerr := eng.UseJournal(cfg.journal)
		if jerr != nil {
			return false, jerr
		}
		defer j.Close()
		if n, torn := j.Recovered(); n > 0 || torn {
			fmt.Fprintf(out, "journal %s: %d completed variants to replay", cfg.journal, eng.Replayable())
			if torn {
				fmt.Fprint(out, " (torn tail from an interrupted run discarded)")
			}
			fmt.Fprintln(out)
		}
	} else if cfg.resume {
		return false, fmt.Errorf("-resume needs -journal to resume from")
	}
	start := time.Now()
	analyses, err := eng.Sweep(ctx, variants)
	if err != nil {
		var sweepErr *explore.SweepError
		tolerable := false
		if errors.As(err, &sweepErr) {
			// Degraded sweep: report the poisoned variants and continue
			// with the healthy ones rather than discarding the whole grid.
			tolerable = true
			for _, v := range sweepErr.Variants {
				fmt.Fprintln(os.Stderr, "skope: warning:", v)
			}
		}
		if errors.Is(err, explore.ErrJournalDegraded) {
			tolerable = true
			fmt.Fprintln(os.Stderr, "skope: warning:", err)
		}
		if !tolerable {
			return false, err
		}
		degraded = true
	}
	wall := time.Since(start)

	baseline, err := hotspot.Analyze(ctx, run.BET, hw.NewModel(base), run.Libs)
	if err != nil {
		return degraded, err
	}

	var order []int
	for i, a := range analyses {
		if a != nil {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return analyses[order[a]].TotalTime < analyses[order[b]].TotalTime
	})
	shown := len(order)
	if cfg.top > 0 && cfg.top < shown {
		shown = cfg.top
	}
	t := &report.Table{
		Title:  fmt.Sprintf("design-space sweep: %d variants of %s on %s", len(variants), run.Workload.Name, base.Name),
		Header: []string{"rank", "variant", "time (s)", "speedup", "top spot", "bottleneck"},
	}
	for rank, i := range order[:shown] {
		a := analyses[i]
		top := a.Blocks[0]
		bound := "compute"
		if top.MemoryBound {
			bound = "memory"
		}
		t.AddRow(rank+1, variants[i].Name,
			fmt.Sprintf("%.4g", a.TotalTime),
			fmt.Sprintf("%.2fx", baseline.TotalTime/a.TotalTime),
			top.BlockID, bound)
	}
	fmt.Fprintln(out, t)
	if shown < len(order) {
		fmt.Fprintf(out, "(showing %d of %d variants; -top 0 for all)\n", shown, len(order))
	}

	frontier := explore.Pareto(variants, analyses, explore.RelativeCost)
	fmt.Fprintln(out, "\n## Pareto frontier (projected time vs relative hardware cost)")
	for _, p := range frontier {
		fmt.Fprintf(out, "  cost %7.2f  time %.4g s  %s\n", p.Cost, p.Time, p.Machine.Name)
	}
	if best := explore.Best(analyses); best >= 0 {
		fmt.Fprintf(out, "\nbest variant: %s (%.4g s, %.2fx over %s)\n",
			variants[best].Name, analyses[best].TotalTime,
			baseline.TotalTime/analyses[best].TotalTime, base.Name)
	}
	stats := eng.CacheStats()
	fmt.Fprintf(out, "sweep stats: %d variants in %s, cache hit rate %.1f%% (%d hits / %d misses)",
		len(variants), wall.Round(time.Microsecond), 100*stats.HitRate(), stats.Hits, stats.Misses)
	if last.Replayed > 0 {
		fmt.Fprintf(out, ", %d replayed from journal", last.Replayed)
	}
	if last.Retried > 0 {
		fmt.Fprintf(out, ", %d retries", last.Retried)
	}
	fmt.Fprintln(out)
	if run.Degraded() {
		degraded = true
		fmt.Fprintf(out, "sweep %s\n", report.Confidence(run.Confidence, run.Diagnostics))
	}
	return degraded, nil
}
