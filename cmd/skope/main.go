// Command skope runs the analytical co-design pipeline on one benchmark:
// it profiles the workload locally, translates it into a SKOPE-style code
// skeleton, builds the Bayesian Execution Tree, projects per-block
// performance on a target machine with the extended roofline model, and
// reports hot spots, bottleneck breakdowns and the hot path. With
// -validate it additionally runs the machine timing simulator and reports
// the selection quality against the measured profile. With -sweep it
// switches to design-space exploration: the flag (repeatable) spans a grid
// of machine variants around the base machine, evaluated analytically
// through the bounded, memoizing exploration engine.
//
// Usage:
//
//	skope -bench sord -machine bgq [-scale 1] [-show all] [-validate]
//	skope -source app.ml -machine xeon -validate     # your own minilang file
//	skope -bench sord -machine bgq -sweep mem-bandwidth=16,32,64 -sweep net-latency-us=1,2,4
//
// Long-running sweeps can be made durable and fault-tolerant:
//
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -journal sweep.journal \
//	      -retries 3 -variant-timeout 30s
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -journal sweep.journal -resume
//
// -journal appends every completed variant to a crash-safe journal
// (fsync per record); -resume replays the journaled variants of an
// interrupted sweep bit-identically instead of recomputing them.
// -retries re-attempts transiently failing variants with exponential
// backoff, and -variant-timeout bounds each attempt.
//
// -store goes further than the per-sweep journal: it names a
// content-addressed result store shared across runs, processes, and the
// skoped daemon. Results are keyed by what they are — workload model
// fingerprint × machine fingerprint × evaluation settings — so repeating a
// sweep over the same grid is served entirely from the store: the workload
// is not even re-prepared (no parsing, no profiling, no model
// construction), and the served results are bit-identical to the computed
// ones.
//
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -store results.cas
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -store results.cas   # zero recomputation
//
// -shard-workers distributes a sweep across N coordinated worker
// processes: the parent hosts a shard coordinator on a loopback listener,
// re-executes itself N times as workers, and merges their crash-safe
// per-shard journals into one result, bit-identical to a single-process
// sweep. Expired leases (a killed or hung worker) are stolen by the
// survivors, and re-running with the same -shard-dir replays everything
// already journaled instead of recomputing it:
//
//	skope -bench sord -sweep mem-bandwidth=16,32,64 -sweep freq-ghz=1.6,2.0 \
//	      -shard-workers 4 -shard-dir sweep.shards
//
// -adaptive switches the sweep from exhaustive to surrogate-guided
// search: a deterministic seed sample bootstraps an online least-squares
// surrogate over the grid axes, and each round spends evaluations only on
// the unevaluated variants the surrogate ranks most promising, stopping
// once the incumbent optimum survives two rounds unimproved. On the
// workload suite this finds the exhaustive optimum with ≤5% of the
// evaluations (the parity tests enforce it). Every evaluation still runs
// the exact engine — the surrogate only chooses what to evaluate — and
// journal, store, retries and confidence floors compose unchanged:
//
//	skope -bench sord -sweep freq-ghz=1,1.5,2,2.5 -sweep mem-bandwidth=16,32,64 \
//	      -sweep hit-l1=0.90,0.95,0.99 -adaptive -adaptive-budget 50 -adaptive-seed 7
//
// Exhaustive mode stays the default and the golden reference.
//
// -lenient switches the frontend and model construction into
// error-recovering mode: syntax errors drop the offending statement,
// missing branch probabilities and trip counts fall back to documented
// priors, and every substitution is reported as a diagnostic alongside a
// confidence score. -min-confidence sets a floor below which sweep
// variants are flagged instead of ranked.
//
// Exit codes: 0 on a clean run, 1 on failure, 3 when the run completed
// but degraded — some results rest on fallback priors, recovered parses,
// or poisoned sweep variants.
//
// Benchmarks: sord, chargei, srad, cfd, stassuij.
// Machines: bgq, xeon, future.
// Sections (-show, comma separated): skeleton, bet, spots, breakdown,
// path, dot, all.
// Sweep parameters: skope -list prints the full set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"skope/internal/cliflags"
	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/pipeline"
	"skope/internal/report"
	"skope/internal/resilience"
	"skope/internal/store"
	"skope/internal/workloads"
)

func main() {
	if os.Getenv(shardWorkerURLEnv) != "" {
		// Child role of -shard-workers: this process was re-executed by a
		// sharded sweep's parent and must join its coordinator instead of
		// parsing a command line.
		os.Exit(runShardWorker())
	}
	var cfg config
	cfg.register(flag.CommandLine)
	flag.Parse()
	degraded, err := run(context.Background(), os.Stdout, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skope:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(exitDegraded)
	}
}

// exitDegraded is the exit code of a run that completed but produced
// degraded results: fallback priors, recovered parses, or flagged sweep
// variants. Distinct from 1 so scripts can tell "usable with caveats"
// from "failed".
const exitDegraded = 3

// config carries the parsed command line. The machine, guard, criteria and
// sweep surfaces are the shared cliflags definitions — identical names and
// semantics across skope, skopec and skoped.
type config struct {
	mach cliflags.Machine
	grd  cliflags.Guard
	crit cliflags.Criteria
	sw   cliflags.Sweep

	bench, source, show string
	scale               float64
	validate, list      bool
}

func (c *config) register(fs *flag.FlagSet) {
	c.mach.Register(fs)
	c.grd.Register(fs)
	c.crit.Register(fs, 0.90, 0.50, 10)
	c.sw.Register(fs)
	fs.StringVar(&c.bench, "bench", "sord", "benchmark name (sord, chargei, srad, cfd, stassuij)")
	fs.StringVar(&c.source, "source", "", "analyze a minilang source file instead of a built-in benchmark")
	fs.Float64Var(&c.scale, "scale", 1, "workload scale factor")
	fs.StringVar(&c.show, "show", "spots,breakdown,path", "comma-separated sections: skeleton,bet,spots,breakdown,path,dot,all")
	fs.BoolVar(&c.validate, "validate", false, "also simulate the workload and report selection quality")
	fs.BoolVar(&c.list, "list", false, "list benchmarks, machine presets and sweep parameters, then exit")
}

func run(ctx context.Context, out io.Writer, cfg config) (degraded bool, err error) {
	if cfg.list {
		fmt.Fprintln(out, "benchmarks:")
		for _, n := range workloads.Names() {
			w, _ := workloads.Get(n, workloads.Scale(cfg.scale))
			fmt.Fprintf(out, "  %-10s %s\n", n, w.Description)
		}
		fmt.Fprintln(out, "machines:")
		names := make([]string, 0, len(hw.Presets()))
		for n := range hw.Presets() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m, _ := hw.Preset(n)
			fmt.Fprintf(out, "  %-10s %s (%.2g GHz, %d-wide, %.3g GB/s)\n",
				n, m.Name, m.FreqGHz, m.IssueWidth, m.MemBandwidthGBs)
		}
		fmt.Fprintln(out, "sweep parameters (-sweep param=v1,v2,...):")
		for _, h := range explore.ParamHelp() {
			fmt.Fprintf(out, "  %s\n", h)
		}
		fmt.Fprintln(out, "guard limits (-limits key=value,...):")
		for _, h := range guard.Help() {
			fmt.Fprintf(out, "  %s\n", h)
		}
		fmt.Fprintln(out, "result store (-store file.cas):")
		fmt.Fprintln(out, "  content-addressed cache of evaluation results, shared across runs,")
		fmt.Fprintln(out, "  processes and the skoped daemon; keyed by workload model fingerprint,")
		fmt.Fprintln(out, "  machine fingerprint and evaluation settings (criteria, lenient mode,")
		fmt.Fprintln(out, "  confidence floor) — a repeated sweep is served with zero recomputation")
		return false, nil
	}
	m, err := cfg.mach.Resolve()
	if err != nil {
		return false, err
	}

	var w *workloads.Workload
	if cfg.source != "" {
		text, rerr := os.ReadFile(cfg.source)
		if rerr != nil {
			return false, rerr
		}
		w = &workloads.Workload{
			Name:        cfg.source,
			Description: "user program " + cfg.source,
			Source:      string(text),
			Seed:        1,
		}
	} else {
		w, err = workloads.Get(cfg.bench, workloads.Scale(cfg.scale))
		if err != nil {
			return false, err
		}
	}
	lim, err := cfg.grd.Resolve()
	if err != nil {
		return false, err
	}
	fmt.Fprintf(out, "# %s\n\n", w.Description)

	if cfg.sw.ShardWorkers > 0 {
		if len(cfg.sw.Axes) == 0 {
			return false, fmt.Errorf("-shard-workers needs -sweep axes to distribute")
		}
		if cfg.sw.Store != "" {
			return false, fmt.Errorf("-shard-workers and -store cannot be combined; merge the sharded journal into a store with skopec instead")
		}
		if cfg.sw.Adaptive {
			return false, fmt.Errorf("-adaptive and -shard-workers cannot be combined; distributed adaptive rounds run through the skoped coordinator (shard.RoundPlanner)")
		}
	}
	if cfg.sw.Adaptive && len(cfg.sw.Axes) == 0 {
		return false, fmt.Errorf("-adaptive needs -sweep axes to search over")
	}

	if len(cfg.sw.Axes) > 0 && cfg.sw.Store != "" && !cfg.sw.Adaptive {
		// Store-backed sweeps branch before preparation on purpose: a
		// fully warm store serves the whole sweep — preparation included —
		// with zero recomputation.
		return sweepStore(ctx, out, cfg, w, m, lim)
	}

	run, err := pipeline.Prepare(ctx, w,
		pipeline.WithLimits(lim), pipeline.WithLenient(cfg.grd.Lenient))
	if err != nil {
		return false, err
	}
	if tbl := report.Diagnostics("preparation diagnostics", run.Diagnostics); tbl != "" {
		fmt.Fprintln(out, tbl)
	}
	if run.Degraded() {
		fmt.Fprintf(out, "preparation %s\n\n", report.Confidence(run.Confidence, run.Diagnostics))
	}

	if len(cfg.sw.Axes) > 0 {
		if cfg.sw.ShardWorkers > 0 {
			return sweepSharded(ctx, out, cfg, run, m)
		}
		if cfg.sw.Adaptive {
			return sweepAdaptive(ctx, out, cfg, run, m)
		}
		return sweep(ctx, out, cfg, run, m)
	}

	sections := map[string]bool{}
	for _, s := range strings.Split(cfg.show, ",") {
		sections[strings.TrimSpace(s)] = true
	}
	if sections["all"] {
		for _, s := range []string{"skeleton", "bet", "spots", "breakdown", "path", "dot"} {
			sections[s] = true
		}
	}
	if sections["skeleton"] {
		fmt.Fprintln(out, "## generated code skeleton")
		fmt.Fprintln(out, run.Skeleton.Text)
	}
	if sections["bet"] {
		fmt.Fprintf(out, "## Bayesian execution tree (%d nodes, size ratio %.2f)\n\n",
			run.BET.NumNodes(), run.BET.SizeRatio())
		fmt.Fprintln(out, run.BET.Dump())
	}

	ev, err := pipeline.Evaluate(ctx, run, m, pipeline.WithCriteria(cfg.crit.Resolve()))
	if err != nil {
		return false, err
	}
	for _, d := range ev.Analysis.Diagnostics {
		fmt.Fprintln(os.Stderr, "skope: warning:", d)
	}
	if ev.Degraded() {
		degraded = true
		fmt.Fprintf(out, "## %s\n\n", report.Confidence(ev.Confidence, ev.Diagnostics))
	}

	if sections["spots"] {
		fmt.Fprintf(out, "## projected hot spots on %s (coverage %.1f%%, leanness %.1f%%)\n\n",
			m.Name, 100*ev.Selection.Coverage, 100*ev.Selection.Leanness)
		for i, s := range ev.Selection.Spots {
			bound := "compute-bound"
			if s.MemoryBound {
				bound = "memory-bound"
			}
			fmt.Fprintf(out, "%2d. %-30s %6.2f%%  x%.4g  %s\n",
				i+1, s.BlockID, 100*ev.Analysis.Coverage(s), s.Invocations, bound)
		}
		fmt.Fprintln(out)
	}
	if sections["breakdown"] {
		fmt.Fprintf(out, "## per-spot time breakdown on %s (model)\n\n", m.Name)
		fmt.Fprintf(out, "%-30s %10s %10s %10s\n", "block", "comp-only%", "overlap%", "mem-only%")
		for _, s := range ev.Analysis.TopN(10) {
			if s.T <= 0 {
				continue
			}
			fmt.Fprintf(out, "%-30s %10.1f %10.1f %10.1f\n", s.BlockID,
				100*(s.Tc-s.To)/s.T, 100*s.To/s.T, 100*(s.Tm-s.To)/s.T)
		}
		fmt.Fprintln(out)
	}
	if sections["path"] {
		fmt.Fprintln(out, "## hot path")
		fmt.Fprintln(out, ev.HotPath.Render())
	}
	if sections["dot"] {
		fmt.Fprintln(out, "## hot path (graphviz)")
		fmt.Fprintln(out, ev.HotPath.DOT())
	}
	if cfg.validate {
		fmt.Fprintf(out, "## validation against the %s timing simulator\n\n", m.Name)
		fmt.Fprintln(out, ev.Prof.String())
		fmt.Fprintf(out, "selection quality (top-10): %.3f\n", ev.Quality)
		fmt.Fprintf(out, "selection quality (criteria selection): %.3f\n", ev.SelectionQuality)
	}
	return degraded, nil
}

// sweepOptions assembles the pipeline options shared by both sweep paths.
func sweepOptions(cfg config, lim *guard.Limits) []pipeline.Option {
	return []pipeline.Option{
		pipeline.WithLimits(lim),
		pipeline.WithLenient(cfg.grd.Lenient),
		pipeline.WithCriteria(cfg.crit.Resolve()),
		pipeline.WithWorkers(cfg.sw.Workers),
		pipeline.WithRetry(resilience.DefaultPolicy(cfg.sw.Retries)),
		pipeline.WithVariantTimeout(cfg.sw.VariantTimeout),
		pipeline.WithMinConfidence(cfg.sw.MinConfidence),
	}
}

// sweepStore runs the sweep through the content-addressed result store:
// warm (workload, variant, settings) triples are served bit-identically
// from earlier runs — a fully warm grid skips even the preparation — and
// fresh results are written through for the next run. The base machine
// rides along as an extra variant so the baseline analysis is cached under
// the same contract.
func sweepStore(ctx context.Context, out io.Writer, cfg config, w *workloads.Workload, base *hw.Machine, lim *guard.Limits) (degraded bool, err error) {
	variants, err := cfg.sw.Variants(base)
	if err != nil {
		return false, err
	}
	st, err := store.Open(cfg.sw.Store)
	if err != nil {
		return false, err
	}
	defer st.Close()

	opts := sweepOptions(cfg, lim)
	if cfg.sw.Journal != "" {
		j, jerr := journal.Open(cfg.sw.Journal)
		if jerr != nil {
			return false, jerr
		}
		defer j.Close()
		if n, _ := j.Recovered(); n > 0 && !cfg.sw.Resume {
			return false, fmt.Errorf("journal %s already exists; pass -resume to replay it or remove the file", cfg.sw.Journal)
		}
		opts = append(opts, pipeline.WithJournal(j))
	} else if cfg.sw.Resume {
		return false, fmt.Errorf("-resume needs -journal to resume from")
	}

	all := append(append([]*hw.Machine{}, variants...), base)
	start := time.Now()
	evals, sum, err := pipeline.SweepCached(ctx, w, all, st, opts...)
	if err != nil {
		tolerable := false
		var sweepErr *explore.SweepError
		if errors.As(err, &sweepErr) {
			tolerable = true
			for _, v := range sweepErr.Variants {
				fmt.Fprintln(os.Stderr, "skope: warning:", v)
			}
		}
		if errors.Is(err, explore.ErrJournalDegraded) || errors.Is(err, store.ErrDegraded) {
			tolerable = true
			fmt.Fprintln(os.Stderr, "skope: warning:", err)
		}
		if !tolerable || evals == nil {
			return false, err
		}
		degraded = true
	}
	wall := time.Since(start)

	if tbl := report.Diagnostics("preparation diagnostics", sum.Diagnostics); tbl != "" {
		fmt.Fprintln(out, tbl)
	}
	baseEval := evals[len(all)-1]
	evals = evals[:len(variants)]
	if baseEval == nil {
		return degraded, fmt.Errorf("baseline %s failed to evaluate", base.Name)
	}

	analyses := make([]*hotspot.Analysis, len(variants))
	for i, ev := range evals {
		if ev != nil {
			analyses[i] = ev.Analysis
		}
	}
	renderSweep(out, cfg, variants, analyses, baseEval.Analysis, w.Name, base.Name)

	stats := st.Stats()
	fmt.Fprintf(out, "sweep stats: %d variants in %s, store %s, %.1f%% served from store (%d hits / %d misses)",
		len(variants), wall.Round(time.Microsecond), st.Path(), 100*stats.HitRate(), stats.Hits, stats.Misses)
	if sum.SkippedPrepare {
		fmt.Fprint(out, ", preparation skipped (fully warm)")
	}
	if sum.FromJournal > 0 {
		fmt.Fprintf(out, ", %d replayed from journal", sum.FromJournal)
	}
	fmt.Fprintln(out)
	if sum.Confidence < 1 || len(sum.Diagnostics) > 0 {
		degraded = true
		fmt.Fprintf(out, "sweep %s\n", report.Confidence(sum.Confidence, sum.Diagnostics))
	}
	return degraded, nil
}

// sweep runs the design-space exploration mode on the engine directly: a
// grid of machine variants around the base machine, evaluated analytically
// (no simulation), reported as a ranked table plus the time/cost Pareto
// frontier. (With -store, sweepStore handles the run instead.)
func sweep(ctx context.Context, out io.Writer, cfg config, run *pipeline.Run, base *hw.Machine) (degraded bool, err error) {
	variants, err := cfg.sw.Variants(base)
	if err != nil {
		return false, err
	}

	var last explore.Progress
	lim, _ := cfg.grd.Resolve()
	opts := append(sweepOptions(cfg, lim),
		pipeline.WithProgress(func(p explore.Progress) { last = p }))
	eng, err := pipeline.Explorer(run, opts...)
	if err != nil {
		return false, err
	}
	if cfg.sw.Journal != "" {
		if !cfg.sw.Resume {
			if fi, statErr := os.Stat(cfg.sw.Journal); statErr == nil && fi.Size() > 0 {
				return false, fmt.Errorf("journal %s already exists; pass -resume to replay it or remove the file", cfg.sw.Journal)
			}
		}
		j, jerr := eng.UseJournal(cfg.sw.Journal)
		if jerr != nil {
			return false, jerr
		}
		defer j.Close()
		if n, torn := j.Recovered(); n > 0 || torn {
			fmt.Fprintf(out, "journal %s: %d completed variants to replay", cfg.sw.Journal, eng.Replayable())
			if torn {
				fmt.Fprint(out, " (torn tail from an interrupted run discarded)")
			}
			fmt.Fprintln(out)
		}
	} else if cfg.sw.Resume {
		return false, fmt.Errorf("-resume needs -journal to resume from")
	}
	start := time.Now()
	analyses, err := eng.Sweep(ctx, variants)
	if err != nil {
		var sweepErr *explore.SweepError
		tolerable := false
		if errors.As(err, &sweepErr) {
			// Degraded sweep: report the poisoned variants and continue
			// with the healthy ones rather than discarding the whole grid.
			tolerable = true
			for _, v := range sweepErr.Variants {
				fmt.Fprintln(os.Stderr, "skope: warning:", v)
			}
		}
		if errors.Is(err, explore.ErrJournalDegraded) {
			tolerable = true
			fmt.Fprintln(os.Stderr, "skope: warning:", err)
		}
		if !tolerable {
			return false, err
		}
		degraded = true
	}
	wall := time.Since(start)

	baseline, err := hotspot.Analyze(ctx, run.BET, hw.NewModel(base), run.Libs)
	if err != nil {
		return degraded, err
	}

	renderSweep(out, cfg, variants, analyses, baseline, run.Workload.Name, base.Name)

	stats := eng.CacheStats()
	fmt.Fprintf(out, "sweep stats: %d variants in %s, cache hit rate %.1f%% (%d hits / %d misses)",
		len(variants), wall.Round(time.Microsecond), 100*stats.HitRate(), stats.Hits, stats.Misses)
	if last.Replayed > 0 {
		fmt.Fprintf(out, ", %d replayed from journal", last.Replayed)
	}
	if last.Retried > 0 {
		fmt.Fprintf(out, ", %d retries", last.Retried)
	}
	fmt.Fprintln(out)
	if run.Degraded() {
		degraded = true
		fmt.Fprintf(out, "sweep %s\n", report.Confidence(run.Confidence, run.Diagnostics))
	}
	return degraded, nil
}

// sweepAdaptive runs the surrogate-guided search: seed sample, online
// least-squares fit, ranked acquisition rounds, patience stop. Journal
// and store attach through the same pipeline options as an exhaustive
// sweep (every evaluation is an exact engine evaluation); the ranked
// table at the end covers only the evaluated slice of the grid, with the
// eval-count savings reported against the exhaustive count.
func sweepAdaptive(ctx context.Context, out io.Writer, cfg config, run *pipeline.Run, base *hw.Machine) (degraded bool, err error) {
	axes, err := cfg.sw.Axes.Axes()
	if err != nil {
		return false, err
	}
	grid := explore.Grid{Base: base, Axes: axes}
	variants, err := grid.Variants()
	if err != nil {
		return false, err
	}

	lim, _ := cfg.grd.Resolve()
	opts := sweepOptions(cfg, lim)
	if cfg.sw.Store != "" {
		st, serr := store.Open(cfg.sw.Store)
		if serr != nil {
			return false, serr
		}
		defer st.Close()
		opts = append(opts, pipeline.WithStore(st))
	}
	if cfg.sw.Journal != "" {
		j, jerr := journal.Open(cfg.sw.Journal)
		if jerr != nil {
			return false, jerr
		}
		defer j.Close()
		if n, _ := j.Recovered(); n > 0 && !cfg.sw.Resume {
			return false, fmt.Errorf("journal %s already exists; pass -resume to replay it or remove the file", cfg.sw.Journal)
		}
		opts = append(opts, pipeline.WithJournal(j))
	} else if cfg.sw.Resume {
		return false, fmt.Errorf("-resume needs -journal to resume from")
	}

	aopt := explore.AdaptiveOptions{
		Seed:     cfg.sw.AdaptiveSeed,
		MaxEvals: cfg.sw.AdaptiveBudget,
		OnRound: func(tr explore.RoundTrace) {
			fmt.Fprintf(out, "round %2d: %3d evals (%d/%d total)  incumbent %.4g s  surrogate R²=%.3f",
				tr.Round, tr.Evals, tr.TotalEvals, tr.GridSize, tr.IncumbentTime, tr.R2)
			if tr.Converged {
				fmt.Fprint(out, "  converged")
			}
			fmt.Fprintln(out)
		},
	}
	start := time.Now()
	evals, ares, err := pipeline.SweepAdaptive(ctx, run, variants, axes, aopt, opts...)
	if err != nil {
		tolerable := false
		var sweepErr *explore.SweepError
		if errors.As(err, &sweepErr) {
			tolerable = true
			for _, v := range sweepErr.Variants {
				fmt.Fprintln(os.Stderr, "skope: warning:", v)
			}
		}
		if errors.Is(err, explore.ErrJournalDegraded) || errors.Is(err, store.ErrDegraded) {
			tolerable = true
			fmt.Fprintln(os.Stderr, "skope: warning:", err)
		}
		if !tolerable || evals == nil {
			return false, err
		}
		degraded = true
	}
	wall := time.Since(start)
	fmt.Fprintln(out)

	baseline, err := hotspot.Analyze(ctx, run.BET, hw.NewModel(base), run.Libs)
	if err != nil {
		return degraded, err
	}
	analyses := make([]*hotspot.Analysis, len(variants))
	for i, ev := range evals {
		if ev != nil {
			analyses[i] = ev.Analysis
		}
	}
	renderSweep(out, cfg, variants, analyses, baseline, run.Workload.Name, base.Name)

	mode := "budget exhausted"
	if ares.Converged {
		mode = "converged"
	}
	fmt.Fprintf(out, "adaptive search: %d of %d evaluations (%.1f%%) in %d rounds (%s), %s wall\n",
		ares.Evals, ares.GridSize, 100*float64(ares.Evals)/float64(ares.GridSize),
		len(ares.Rounds), mode, wall.Round(time.Microsecond))
	fmt.Fprintln(out, "note: exhaustive mode (no -adaptive) remains the golden reference; the adaptive optimum is exact but only the full grid proves it global")
	if run.Degraded() {
		degraded = true
		fmt.Fprintf(out, "sweep %s\n", report.Confidence(run.Confidence, run.Diagnostics))
	}
	return degraded, nil
}

// renderSweep prints the ranked variant table, the Pareto frontier, and
// the best variant — shared by the engine and store sweep paths.
func renderSweep(out io.Writer, cfg config, variants []*hw.Machine, analyses []*hotspot.Analysis, baseline *hotspot.Analysis, workload, baseName string) {
	var order []int
	for i, a := range analyses {
		if a != nil {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return analyses[order[a]].TotalTime < analyses[order[b]].TotalTime
	})
	shown := len(order)
	if cfg.sw.Top > 0 && cfg.sw.Top < shown {
		shown = cfg.sw.Top
	}
	t := &report.Table{
		Title:  fmt.Sprintf("design-space sweep: %d variants of %s on %s", len(variants), workload, baseName),
		Header: []string{"rank", "variant", "time (s)", "speedup", "top spot", "bottleneck"},
	}
	for rank, i := range order[:shown] {
		a := analyses[i]
		top := a.Blocks[0]
		bound := "compute"
		if top.MemoryBound {
			bound = "memory"
		}
		t.AddRow(rank+1, variants[i].Name,
			fmt.Sprintf("%.4g", a.TotalTime),
			fmt.Sprintf("%.2fx", baseline.TotalTime/a.TotalTime),
			top.BlockID, bound)
	}
	fmt.Fprintln(out, t)
	if shown < len(order) {
		fmt.Fprintf(out, "(showing %d of %d variants; -top 0 for all)\n", shown, len(order))
	}

	frontier := explore.Pareto(variants, analyses, explore.RelativeCost)
	fmt.Fprintln(out, "\n## Pareto frontier (projected time vs relative hardware cost)")
	for _, p := range frontier {
		fmt.Fprintf(out, "  cost %7.2f  time %.4g s  %s\n", p.Cost, p.Time, p.Machine.Name)
	}
	if best := explore.Best(analyses); best >= 0 {
		fmt.Fprintf(out, "\nbest variant: %s (%.4g s, %.2fx over %s)\n",
			variants[best].Name, analyses[best].TotalTime,
			baseline.TotalTime/analyses[best].TotalTime, baseName)
	}
}
