// Command skope runs the analytical co-design pipeline on one benchmark:
// it profiles the workload locally, translates it into a SKOPE-style code
// skeleton, builds the Bayesian Execution Tree, projects per-block
// performance on a target machine with the extended roofline model, and
// reports hot spots, bottleneck breakdowns and the hot path. With
// -validate it additionally runs the machine timing simulator and reports
// the selection quality against the measured profile.
//
// Usage:
//
//	skope -bench sord -machine bgq [-scale 1] [-show all] [-validate]
//	skope -source app.ml -machine xeon -validate     # your own minilang file
//
// Benchmarks: sord, chargei, srad, cfd, stassuij.
// Machines: bgq, xeon, future.
// Sections (-show, comma separated): skeleton, bet, spots, breakdown,
// path, dot, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/workloads"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.bench, "bench", "sord", "benchmark name (sord, chargei, srad, cfd, stassuij)")
	flag.StringVar(&cfg.source, "source", "", "analyze a minilang source file instead of a built-in benchmark")
	flag.StringVar(&cfg.machine, "machine", "bgq", "target machine preset (bgq, xeon)")
	flag.StringVar(&cfg.machineFile, "machine-file", "", "JSON machine description (overrides -machine; see hw.SaveConfig)")
	flag.Float64Var(&cfg.scale, "scale", 1, "workload scale factor")
	flag.StringVar(&cfg.show, "show", "spots,breakdown,path", "comma-separated sections: skeleton,bet,spots,breakdown,path,dot,all")
	flag.BoolVar(&cfg.validate, "validate", false, "also simulate the workload and report selection quality")
	flag.Float64Var(&cfg.coverage, "coverage", 0.90, "hot-spot time coverage target")
	flag.Float64Var(&cfg.leanness, "leanness", 0.50, "hot-spot code leanness budget")
	flag.IntVar(&cfg.maxSpots, "spots", 10, "maximum hot spots to select (0 = unlimited)")
	flag.BoolVar(&cfg.list, "list", false, "list benchmarks and machine presets, then exit")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "skope:", err)
		os.Exit(1)
	}
}

// config carries the parsed command line.
type config struct {
	bench, source, machine, machineFile, show string
	scale, coverage, leanness                 float64
	maxSpots                                  int
	validate, list                            bool
}

func run(out io.Writer, cfg config) error {
	if cfg.list {
		fmt.Fprintln(out, "benchmarks:")
		for _, n := range workloads.Names() {
			w, _ := workloads.Get(n, workloads.Scale(cfg.scale))
			fmt.Fprintf(out, "  %-10s %s\n", n, w.Description)
		}
		fmt.Fprintln(out, "machines:")
		names := make([]string, 0, len(hw.Presets()))
		for n := range hw.Presets() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m, _ := hw.Preset(n)
			fmt.Fprintf(out, "  %-10s %s (%.2g GHz, %d-wide, %.3g GB/s)\n",
				n, m.Name, m.FreqGHz, m.IssueWidth, m.MemBandwidthGBs)
		}
		return nil
	}
	var m *hw.Machine
	var err error
	if cfg.machineFile != "" {
		m, err = hw.LoadConfig(cfg.machineFile)
	} else {
		m, err = hw.Preset(cfg.machine)
	}
	if err != nil {
		return err
	}
	sections := map[string]bool{}
	for _, s := range strings.Split(cfg.show, ",") {
		sections[strings.TrimSpace(s)] = true
	}
	if sections["all"] {
		for _, s := range []string{"skeleton", "bet", "spots", "breakdown", "path", "dot"} {
			sections[s] = true
		}
	}

	var w *workloads.Workload
	if cfg.source != "" {
		text, err := os.ReadFile(cfg.source)
		if err != nil {
			return err
		}
		w = &workloads.Workload{
			Name:        cfg.source,
			Description: "user program " + cfg.source,
			Source:      string(text),
			Seed:        1,
		}
	} else {
		w, err = workloads.Get(cfg.bench, workloads.Scale(cfg.scale))
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "# %s\n\n", w.Description)
	run, err := pipeline.Prepare(w)
	if err != nil {
		return err
	}
	if len(run.Skeleton.Warnings) > 0 {
		fmt.Fprintln(out, "## translation warnings")
		for _, warn := range run.Skeleton.Warnings {
			fmt.Fprintln(out, " -", warn)
		}
		fmt.Fprintln(out)
	}
	if sections["skeleton"] {
		fmt.Fprintln(out, "## generated code skeleton")
		fmt.Fprintln(out, run.Skeleton.Text)
	}
	if sections["bet"] {
		fmt.Fprintf(out, "## Bayesian execution tree (%d nodes, size ratio %.2f)\n\n",
			run.BET.NumNodes(), run.BET.SizeRatio())
		fmt.Fprintln(out, run.BET.Dump())
	}

	crit := hotspot.Criteria{TimeCoverage: cfg.coverage, CodeLeanness: cfg.leanness, MaxSpots: cfg.maxSpots}
	ev, err := pipeline.Evaluate(run, m, crit)
	if err != nil {
		return err
	}

	if sections["spots"] {
		fmt.Fprintf(out, "## projected hot spots on %s (coverage %.1f%%, leanness %.1f%%)\n\n",
			m.Name, 100*ev.Selection.Coverage, 100*ev.Selection.Leanness)
		for i, s := range ev.Selection.Spots {
			bound := "compute-bound"
			if s.MemoryBound {
				bound = "memory-bound"
			}
			fmt.Fprintf(out, "%2d. %-30s %6.2f%%  x%.4g  %s\n",
				i+1, s.BlockID, 100*ev.Analysis.Coverage(s), s.Invocations, bound)
		}
		fmt.Fprintln(out)
	}
	if sections["breakdown"] {
		fmt.Fprintf(out, "## per-spot time breakdown on %s (model)\n\n", m.Name)
		fmt.Fprintf(out, "%-30s %10s %10s %10s\n", "block", "comp-only%", "overlap%", "mem-only%")
		for _, s := range ev.Analysis.TopN(10) {
			if s.T <= 0 {
				continue
			}
			fmt.Fprintf(out, "%-30s %10.1f %10.1f %10.1f\n", s.BlockID,
				100*(s.Tc-s.To)/s.T, 100*s.To/s.T, 100*(s.Tm-s.To)/s.T)
		}
		fmt.Fprintln(out)
	}
	if sections["path"] {
		fmt.Fprintln(out, "## hot path")
		fmt.Fprintln(out, ev.HotPath.Render())
	}
	if sections["dot"] {
		fmt.Fprintln(out, "## hot path (graphviz)")
		fmt.Fprintln(out, ev.HotPath.DOT())
	}
	if cfg.validate {
		fmt.Fprintf(out, "## validation against the %s timing simulator\n\n", m.Name)
		fmt.Fprintln(out, ev.Prof.String())
		fmt.Fprintf(out, "selection quality (top-10): %.3f\n", ev.Quality)
		fmt.Fprintf(out, "selection quality (criteria selection): %.3f\n", ev.SelectionQuality)
	}
	return nil
}
