package main

// The local multi-process sweep mode (-shard-workers N): the parent
// process hosts an in-process shard coordinator on a loopback listener,
// re-executes itself N times as shard workers (the child role is selected
// by environment, not flags, so the frozen flag surface stays untouched),
// and renders the merged result exactly like a single-process sweep. Each
// worker owns per-shard crash-safe journals under -shard-dir; a killed or
// crashed worker's leases expire and its shards are stolen, and re-running
// with the same -shard-dir replays every journaled variant bit-identically
// instead of recomputing it.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/shard"
)

// shardWorkerURLEnv selects the shard-worker role when set: the process
// joins the coordinator at this URL instead of parsing flags. The
// companion variables name the job, the journal directory, and the
// worker's identity.
const (
	shardWorkerURLEnv = "SKOPE_SHARD_URL"
	shardWorkerJobEnv = "SKOPE_SHARD_JOB"
	shardWorkerDirEnv = "SKOPE_SHARD_DIR"
	shardWorkerIDEnv  = "SKOPE_SHARD_ID"
)

// runShardWorker is the child role: a shard.Worker against the parent's
// coordinator. It exits 0 when the job is done (even if every shard was
// processed by someone else) and 1 on protocol or preparation errors.
func runShardWorker() int {
	w := &shard.Worker{
		Client:  &shard.Client{BaseURL: os.Getenv(shardWorkerURLEnv)},
		JobID:   os.Getenv(shardWorkerJobEnv),
		ID:      os.Getenv(shardWorkerIDEnv),
		DataDir: os.Getenv(shardWorkerDirEnv),
		Poll:    100 * time.Millisecond,
	}
	if _, err := w.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "skope: shard worker %s: %v\n", w.ID, err)
		return 1
	}
	return 0
}

// shardSpec translates the parsed command line into the self-contained
// job spec workers reproduce the grid from.
func shardSpec(cfg config, run *pipeline.Run, base *hw.Machine) (shard.JobSpec, error) {
	axes, err := cfg.sw.Axes.Axes()
	if err != nil {
		return shard.JobSpec{}, err
	}
	layout, err := run.Layout()
	if err != nil {
		return shard.JobSpec{}, err
	}
	spec := shard.JobSpec{
		Base:             base.Wire(),
		Axes:             axes,
		Lenient:          cfg.grd.Lenient,
		Retries:          cfg.sw.Retries,
		VariantTimeoutMs: cfg.sw.VariantTimeout.Milliseconds(),
		LayoutFP:         layout.Fingerprint(),
	}
	if cfg.source != "" {
		// Inline the program text: workers must not depend on the file
		// still existing (or being unchanged) when they prepare.
		spec.Bench = run.Workload.Name
		spec.Source = run.Workload.Source
		spec.Seed = run.Workload.Seed
	} else {
		spec.Bench = cfg.bench
		spec.Scale = cfg.scale
	}
	return spec, nil
}

// shardSizeFor picks the partition granularity: ~4 shards per worker, so
// work stealing has something to steal without drowning the protocol in
// round trips.
func shardSizeFor(variants, workers int) int {
	size := variants / (4 * workers)
	if size < 1 {
		size = 1
	}
	return size
}

// sweepSharded runs the sweep as a local multi-process job: coordinator
// in-process, N re-executed workers, merged journal replayed locally for
// rendering (the replay is a bit-identical presentation of the workers'
// results, never a recomputation).
func sweepSharded(ctx context.Context, out io.Writer, cfg config, run *pipeline.Run, base *hw.Machine) (degraded bool, err error) {
	if cfg.grd.Limits != "" {
		// Guard limits are not part of the job spec (workers prepare from
		// the spec alone), so a limits override would silently not apply to
		// them. Refuse rather than mislead.
		return false, fmt.Errorf("-shard-workers does not propagate -limits to worker processes; drop one of the two")
	}
	spec, err := shardSpec(cfg, run, base)
	if err != nil {
		return false, err
	}
	variants, err := spec.Variants()
	if err != nil {
		return false, err
	}
	spec.ShardSize = shardSizeFor(len(variants), cfg.sw.ShardWorkers)

	dir := cfg.sw.ShardDir
	if dir == "" {
		tmp, terr := os.MkdirTemp("", "skope-shard-")
		if terr != nil {
			return false, terr
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	mergedPath := cfg.sw.Journal
	if mergedPath == "" {
		mergedPath = filepath.Join(dir, "merged.journal")
	} else if !cfg.sw.Resume {
		if fi, statErr := os.Stat(mergedPath); statErr == nil && fi.Size() > 0 {
			return false, fmt.Errorf("journal %s already exists; pass -resume to replace it or remove the file", mergedPath)
		}
	}

	const jobID = "local"
	coord, err := shard.NewCoordinator(shard.Config{
		JobID: jobID,
		Spec:  spec,
		Lease: 10 * time.Second,
	})
	if err != nil {
		return false, err
	}
	svc := shard.NewService()
	svc.Add(coord)
	mux := http.NewServeMux()
	svc.Mount(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false, err
	}
	hsrv := &http.Server{Handler: mux}
	go func() { _ = hsrv.Serve(ln) }()
	defer hsrv.Close()

	exe, err := os.Executable()
	if err != nil {
		return false, err
	}
	start := time.Now()
	procs := make([]*exec.Cmd, 0, cfg.sw.ShardWorkers)
	for i := 0; i < cfg.sw.ShardWorkers; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			shardWorkerURLEnv+"=http://"+ln.Addr().String(),
			shardWorkerJobEnv+"="+jobID,
			shardWorkerDirEnv+"="+dir,
			fmt.Sprintf("%s=w%d", shardWorkerIDEnv, i),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, p := range procs {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
			return false, fmt.Errorf("spawn shard worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	var workerErr error
	for i, p := range procs {
		if werr := p.Wait(); werr != nil && workerErr == nil {
			workerErr = fmt.Errorf("shard worker %d: %w", i, werr)
		}
	}
	wall := time.Since(start)

	// A failed worker is tolerable as long as the others finished the job
	// (that is the point of the protocol); an unfinished job is not.
	if !coord.Done() {
		if workerErr != nil {
			return false, fmt.Errorf("sharded sweep incomplete: %w", workerErr)
		}
		return false, fmt.Errorf("sharded sweep incomplete: %d of %d variants merged", coord.Status().Merged, len(variants))
	}
	if workerErr != nil {
		fmt.Fprintln(os.Stderr, "skope: warning:", workerErr)
		degraded = true
	}
	for _, f := range coord.Failures() {
		fmt.Fprintf(os.Stderr, "skope: warning: variant %d (worker %s): %s\n", f.Index, f.Worker, f.Err)
		degraded = true
	}

	if _, err := coord.WriteMerged(mergedPath); err != nil {
		return degraded, err
	}

	// Local replay: feed the merged journal through the exploration engine
	// so rendering, ranking, and the Pareto frontier go through exactly the
	// same path as a single-process sweep. Any variant missing from the
	// journal (a permanently failed one) is evaluated here as a fallback.
	lim, _ := cfg.grd.Resolve()
	eng, err := pipeline.Explorer(run, sweepOptions(cfg, lim)...)
	if err != nil {
		return degraded, err
	}
	j, err := eng.UseJournal(mergedPath)
	if err != nil {
		return degraded, err
	}
	defer j.Close()
	replayable := eng.Replayable()
	analyses, err := eng.Sweep(ctx, variants)
	if err != nil {
		var sweepErr *explore.SweepError
		tolerable := errors.As(err, &sweepErr) || errors.Is(err, explore.ErrJournalDegraded)
		if !tolerable {
			return degraded, err
		}
		fmt.Fprintln(os.Stderr, "skope: warning:", err)
		degraded = true
	}

	baseline, err := hotspot.Analyze(ctx, run.BET, hw.NewModel(base), run.Libs)
	if err != nil {
		return degraded, err
	}
	renderSweep(out, cfg, variants, analyses, baseline, run.Workload.Name, base.Name)

	st := coord.Status()
	fmt.Fprintf(out, "sweep stats: %d variants in %s across %d worker processes, %d shards",
		len(variants), wall.Round(time.Microsecond), len(st.Workers), st.Shards)
	if st.Steals > 0 {
		fmt.Fprintf(out, ", %d leases stolen", st.Steals)
	}
	fmt.Fprintf(out, ", %d replayed from merged journal\n", replayable)
	if run.Degraded() {
		degraded = true
	}
	return degraded, nil
}
