package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchmark(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, config{bench: "srad", machine: "bgq", scale: 1, top: 8}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BG/Q", "simulated time:", "caches: L1 hit", "ipc", "compute_coefficients"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, config{bench: "stassuij", machine: "xeon", scale: 1, top: 5, jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("json lines = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"rank":`) || !strings.Contains(l, `"ipc":`) {
			t.Errorf("bad json line: %s", l)
		}
	}
}

func TestRunSourceFile(t *testing.T) {
	src := "global a: [256]float;\nfunc main() { for i = 0 .. 256 { a[i] = a[i] * 2.0; } }\n"
	path := filepath.Join(t.TempDir(), "x.ml")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, config{source: path, machine: "future", top: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FutureNode") {
		t.Errorf("machine missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, config{bench: "nosuch", machine: "bgq", scale: 1, top: 5}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(&buf, config{bench: "srad", machine: "vax", scale: 1, top: 5}); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run(&buf, config{source: "/nonexistent.ml", machine: "bgq", top: 5}); err == nil {
		t.Error("missing source accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.ml")
	os.WriteFile(bad, []byte("func main() { syntax error"), 0o644)
	if err := run(&buf, config{source: bad, machine: "bgq", top: 5}); err == nil {
		t.Error("bad source accepted")
	}
}
