// Command skopesim runs the machine timing simulator on a workload — the
// measured ("Prof") side of the evaluation as a standalone profiler. It
// plays the role of the paper's native profilers plus high-resolution
// timers: per-block cycles, issue rates, cache behaviour.
//
// Usage:
//
//	skopesim -bench sord -machine bgq [-scale 1] [-top 15] [-json]
//	skopesim -source app.ml -machine xeon
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"skope/internal/hw"
	"skope/internal/minilang"
	"skope/internal/sim"
	"skope/internal/workloads"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.bench, "bench", "sord", "benchmark name (sord, chargei, srad, cfd, stassuij)")
	flag.StringVar(&cfg.source, "source", "", "simulate a minilang source file instead of a built-in benchmark")
	flag.StringVar(&cfg.machine, "machine", "bgq", "machine preset (bgq, xeon, future)")
	flag.StringVar(&cfg.machineFile, "machine-file", "", "JSON machine description (overrides -machine)")
	flag.Float64Var(&cfg.scale, "scale", 1, "workload scale factor")
	flag.IntVar(&cfg.top, "top", 15, "blocks to print")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the per-block profile as JSON lines")
	flag.Parse()
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "skopesim:", err)
		os.Exit(1)
	}
}

type config struct {
	bench, source, machine, machineFile string
	scale                               float64
	top                                 int
	jsonOut                             bool
}

func run(out io.Writer, cfg config) error {
	var m *hw.Machine
	var err error
	if cfg.machineFile != "" {
		m, err = hw.LoadConfig(cfg.machineFile)
	} else {
		m, err = hw.Preset(cfg.machine)
	}
	if err != nil {
		return err
	}

	var name, src string
	var seed uint64 = 1
	if cfg.source != "" {
		text, err := os.ReadFile(cfg.source)
		if err != nil {
			return err
		}
		name, src = cfg.source, string(text)
	} else {
		w, err := workloads.Get(cfg.bench, workloads.Scale(cfg.scale))
		if err != nil {
			return err
		}
		name, src, seed = w.Description, w.Source, w.Seed
	}
	prog, err := minilang.Parse(name, src)
	if err != nil {
		return err
	}
	if err := minilang.Check(prog); err != nil {
		return err
	}
	res, err := sim.Run(context.Background(), prog, m, &sim.Options{Seed: seed})
	if err != nil {
		return err
	}

	if cfg.jsonOut {
		for i, b := range res.TopN(cfg.top) {
			fmt.Fprintf(out, `{"rank":%d,"block":%q,"cycles":%.0f,"coverage":%.6f,"ipc":%.4f,"l1_miss":%d,"llc_miss":%d}`+"\n",
				i+1, b.ID, b.Cycles, res.Coverage(b), b.IssueRate(), b.L1Miss, b.LLCMiss)
		}
		return nil
	}

	fmt.Fprintf(out, "# %s on %s\n", name, m.Name)
	fmt.Fprintf(out, "simulated time: %.6g s (%.4g cycles), %d statements\n",
		res.TotalSeconds, res.TotalCycles, res.Steps)
	fmt.Fprintf(out, "caches: L1 hit %.3f (%d misses), LLC hit %.3f (%d misses)\n\n",
		res.L1.HitRate(), res.L1.Misses, res.LLC.HitRate(), res.LLC.Misses)
	fmt.Fprintf(out, "%4s  %-32s %8s %8s %12s %12s\n",
		"rank", "block", "cov%", "ipc", "insts/L1miss", "cycles")
	for i, b := range res.TopN(cfg.top) {
		fmt.Fprintf(out, "%4d  %-32s %8.2f %8.2f %12.1f %12.0f\n",
			i+1, b.ID, 100*res.Coverage(b), b.IssueRate(), b.InstsPerL1Miss(), b.Cycles)
	}
	return nil
}
