package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skope/internal/store"
)

// seedStore creates a small result store and returns its path.
func seedStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cas.journal")
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutPrep("feedface", store.Prep{LayoutFingerprint: "lfp", Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	return path
}

func tear(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestVerifyStoreClean(t *testing.T) {
	path := seedStore(t)
	var buf bytes.Buffer
	damaged, err := runVerifyStore(&buf, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if damaged {
		t.Errorf("clean store reported damaged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "store verified clean") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestVerifyStoreReportsTornTail(t *testing.T) {
	path := seedStore(t)
	tear(t, path)
	before, _ := os.Stat(path)

	var buf bytes.Buffer
	damaged, err := runVerifyStore(&buf, path, false)
	if err != nil {
		t.Fatal(err)
	}
	if !damaged {
		t.Error("torn store not reported as damaged")
	}
	if !strings.Contains(buf.String(), "torn tail") || !strings.Contains(buf.String(), "-repair") {
		t.Errorf("output:\n%s", buf.String())
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Fatal("verify without -repair modified the store")
	}
}

func TestVerifyStoreRepairs(t *testing.T) {
	path := seedStore(t)
	intact, _ := os.Stat(path)
	tear(t, path)

	var buf bytes.Buffer
	damaged, err := runVerifyStore(&buf, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if damaged {
		t.Errorf("repaired store still reported damaged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "truncated") {
		t.Errorf("output:\n%s", buf.String())
	}
	fi, _ := os.Stat(path)
	if fi.Size() != intact.Size() {
		t.Errorf("repaired size %d, want %d", fi.Size(), intact.Size())
	}
	// The repaired store reopens as a store.
	s, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestVerifyStoreRejectsNonStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := runVerifyStore(&buf, path, false); err == nil {
		t.Fatal("scrub accepted a non-journal file")
	}
}
