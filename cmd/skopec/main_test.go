package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"skope/internal/cliflags"
)

const sampleSkel = `
def main(n, ranks)
  for t = 0 : 10 label="time"
    for i = 0 : n label="rows"
      comp flops=50*n loads=10*n dsize=8 name="kernel"
    end
    comm bytes=n*8 msgs=2 name="halo"
    lib exp count=n name="boundary"
  end
end
`

func writeSkel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "app.skel")
	if err := os.WriteFile(path, []byte(sampleSkel), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseInput(t *testing.T) {
	env, err := parseInput("n=64, m=n*2, x=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if env["n"] != 64 || env["m"] != 128 || env["x"] != 1.5 {
		t.Errorf("env = %v", env)
	}
	if _, err := parseInput("bad"); err == nil {
		t.Error("malformed binding accepted")
	}
	if _, err := parseInput("y=z+1"); err == nil {
		t.Error("unbound reference accepted")
	}
	env, err = parseInput("  ")
	if err != nil || len(env) != 0 {
		t.Errorf("blank input: %v, %v", env, err)
	}
}

func TestRunFullOutput(t *testing.T) {
	path := writeSkel(t)
	var buf bytes.Buffer
	cfg := config{
		file: path, input: "n=128,ranks=4", entry: "main",
		show: "bet,spots,breakdown,path,dot",
		mach: cliflags.Machine{Preset: "bgq"},
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 1, MaxSpots: 10},
	}
	if _, err := run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"BET:", "hot spots", "kernel", "boundary", "HOT SPOT",
		"digraph hotpath", "per-spot breakdown", "Bayesian execution tree",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The comm block must be modeled and visible when selected.
	if !strings.Contains(out, "halo") {
		t.Errorf("comm block absent:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, config{}); err == nil {
		t.Error("missing -file accepted")
	}
	if _, err := run(&buf, config{file: "/nonexistent.skel"}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeSkel(t)
	if _, err := run(&buf, config{file: path, entry: "nosuch", mach: cliflags.Machine{Preset: "bgq"}, show: "spots"}); err == nil {
		t.Error("bad entry accepted")
	}
	if _, err := run(&buf, config{file: path, entry: "main", mach: cliflags.Machine{Preset: "vax"}, show: "spots"}); err == nil {
		t.Error("bad machine accepted")
	}
	// Unbound input variable (n is referenced by loop bounds) surfaces as
	// a BET construction error.
	if _, err := run(&buf, config{file: path, entry: "main", mach: cliflags.Machine{Preset: "bgq"}, show: "spots", input: "ranks=4"}); err == nil {
		t.Error("missing n binding accepted")
	}
	_ = buf
}

func TestRunMachineFile(t *testing.T) {
	path := writeSkel(t)
	var buf bytes.Buffer
	cfg := config{
		file: path, input: "n=32,ranks=1", entry: "main",
		mach: cliflags.Machine{File: filepath.Join(t.TempDir(), "missing.json")},
		show: "spots",
		crit: cliflags.Criteria{Coverage: 0.9, Leanness: 1, MaxSpots: 5},
	}
	if _, err := run(&buf, cfg); err == nil {
		t.Error("missing machine file accepted")
	}
}
