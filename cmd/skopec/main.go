// Command skopec analyzes a code-skeleton file: the original SKOPE
// workflow, where skeletons are written (or generated) ahead of time and
// analyzed against machine models without any application execution.
//
// Usage:
//
//	skopec -file app.skel -input "n=2048,m=2048" [-entry main]
//	       [-machine bgq | -machine-file m.json]
//	       [-show bet,spots,breakdown,path,dot] [-spots 10] [-lenient]
//	skopec -verify-store cas.journal [-repair]
//
// The input string binds the skeleton's free variables (array dimensions,
// developer hints). Every section is pure analysis — nothing is executed.
//
// -lenient switches the skeleton parser and model construction into
// error-recovering mode: unparseable lines become explicit hole nodes,
// missing probabilities and trip counts fall back to documented priors,
// and the analysis reports a confidence score plus one diagnostic per
// substitution. A degraded-but-completed run exits with code 3.
//
// -verify-store scrubs a content-addressed result store instead of
// analyzing a skeleton: every record's crc32c frame is re-checked and its
// payload canonically decoded. A clean store exits 0; recoverable damage
// (a torn tail, undecodable payloads) exits 3 — or, with -repair, the
// torn tail is truncated away first. Unrecoverable mid-file corruption
// exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"skope/internal/bst"
	"skope/internal/cliflags"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/guard"
	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/libmodel"
	"skope/internal/skeleton"
	"skope/internal/store"
)

func main() {
	var cfg config
	cfg.mach.Register(flag.CommandLine)
	cfg.grd.Register(flag.CommandLine)
	cfg.crit.Register(flag.CommandLine, 0.90, 1.0, 10)
	flag.StringVar(&cfg.file, "file", "", "skeleton file to analyze (required)")
	flag.StringVar(&cfg.input, "input", "", "input bindings, e.g. \"n=2048,m=512\"")
	flag.StringVar(&cfg.entry, "entry", "main", "entry function")
	flag.StringVar(&cfg.show, "show", "spots,path", "sections: bet,spots,breakdown,path,dot")
	flag.StringVar(&cfg.verifyStore, "verify-store", "", "scrub the result store at this path instead of analyzing")
	flag.BoolVar(&cfg.repair, "repair", false, "with -verify-store: truncate a torn tail instead of just reporting it")
	flag.Parse()
	if cfg.verifyStore != "" {
		damaged, err := runVerifyStore(os.Stdout, cfg.verifyStore, cfg.repair)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skopec:", err)
			os.Exit(1)
		}
		if damaged {
			os.Exit(exitDegraded)
		}
		return
	}
	degraded, err := run(os.Stdout, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skopec:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(exitDegraded)
	}
}

// exitDegraded distinguishes a completed-but-degraded analysis (fallback
// priors, hole nodes) from success (0) and failure (1).
const exitDegraded = 3

// config carries the parsed command line. Machine, guard and criteria
// flags are the shared cliflags surfaces (same names as cmd/skope and
// cmd/skoped); only -file/-input/-entry/-show are skopec-specific.
type config struct {
	mach cliflags.Machine
	grd  cliflags.Guard
	crit cliflags.Criteria

	file, input, entry, show string

	verifyStore string
	repair      bool
}

// runVerifyStore scrubs (and with repair, truncates the torn tail of) the
// result store at path. The boolean reports remaining damage: a torn tail
// left unrepaired, or payloads that no longer decode. Mid-file framing
// corruption — damage no repair can fix — comes back as an error.
func runVerifyStore(out io.Writer, path string, repair bool) (damaged bool, err error) {
	var rep store.VerifyReport
	repaired := false
	if repair {
		rep, repaired, err = store.Repair(path)
	} else {
		rep, err = store.Verify(path)
	}
	if err != nil {
		return false, err
	}
	fmt.Fprintf(out, "store %s: %d records (%d eval, %d prep)\n", path, rep.Records, rep.Evals, rep.Preps)
	switch {
	case repaired:
		fmt.Fprintf(out, "torn tail truncated at offset %d\n", rep.TornOffset)
	case rep.TornTail:
		fmt.Fprintf(out, "torn tail at offset %d (rerun with -repair to truncate)\n", rep.TornOffset)
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(out, "bad record %s: %s\n", p.Key, p.Err)
	}
	if rep.Clean() || (repaired && len(rep.Problems) == 0) {
		fmt.Fprintln(out, "store verified clean")
		return false, nil
	}
	return true, nil
}

// parseInput parses "n=2048,m=512" into an environment. Values are
// expressions over earlier bindings, so "n=64,m=n*2" works.
func parseInput(s string) (expr.Env, error) {
	env := expr.Env{}
	if strings.TrimSpace(s) == "" {
		return env, nil
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad input binding %q (want name=value)", pair)
		}
		name := strings.TrimSpace(pair[:eq])
		valSrc := strings.TrimSpace(pair[eq+1:])
		if v, err := strconv.ParseFloat(valSrc, 64); err == nil {
			env[name] = v
			continue
		}
		e, err := expr.Parse(valSrc)
		if err != nil {
			return nil, fmt.Errorf("binding %s: %v", name, err)
		}
		v, err := e.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("binding %s: %v", name, err)
		}
		env[name] = v
	}
	return env, nil
}

func run(out io.Writer, cfg config) (degraded bool, err error) {
	if cfg.file == "" {
		return false, fmt.Errorf("-file is required")
	}
	lim, err := cfg.grd.Resolve()
	if err != nil {
		return false, err
	}
	text, err := os.ReadFile(cfg.file)
	if err != nil {
		return false, err
	}
	var prog *skeleton.Program
	var parseDiags []guard.Diagnostic
	if cfg.grd.Lenient {
		// Semantic validation happens inside the lenient core.Build, which
		// folds its findings into the BET diagnostics (surfaced below via
		// analysis.Diagnostics); running it here too would double them.
		prog, parseDiags = skeleton.ParseLenient(cfg.file, string(text), lim)
	} else {
		prog, err = skeleton.ParseWithLimits(cfg.file, string(text), lim)
		if err != nil {
			return false, err
		}
		if err := skeleton.ValidateEntry(prog, cfg.entry); err != nil {
			return false, err
		}
	}
	input, err := parseInput(cfg.input)
	if err != nil {
		return false, err
	}
	m, err := cfg.mach.Resolve()
	if err != nil {
		return false, err
	}

	tree, err := bst.Build(prog)
	if err != nil {
		return false, err
	}
	bet, err := core.Build(context.Background(), tree, input, &core.Options{
		Entry: cfg.entry, MaxContexts: lim.MaxContexts, MaxNodes: lim.MaxBETNodes,
		Lenient: cfg.grd.Lenient,
	})
	if err != nil {
		return false, err
	}
	libs, err := libmodel.Default()
	if err != nil {
		return false, err
	}
	analysis, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(m), libs)
	if err != nil {
		return false, err
	}
	diags := make([]guard.Diagnostic, 0, len(parseDiags)+len(analysis.Diagnostics))
	diags = append(diags, parseDiags...)
	diags = append(diags, analysis.Diagnostics...)
	guard.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "skopec: warning:", d)
	}
	// Hole nodes carry their ENR into the BET's confidence score, so
	// the analysis's confidence already reflects every parser recovery
	// that survived into the model.
	conf := analysis.Confidence
	degraded = conf < 1 || len(diags) > 0
	sel := hotspot.Select(analysis, cfg.crit.Resolve())
	path := hotpath.Extract(bet.Root, sel.Spots)

	sections := map[string]bool{}
	for _, s := range strings.Split(cfg.show, ",") {
		sections[strings.TrimSpace(s)] = true
	}

	fmt.Fprintf(out, "# %s on %s, input %s\n", cfg.file, m.Name, expr.FormatEnv(input))
	fmt.Fprintf(out, "BET: %d nodes (size ratio %.2f), projected total %.4g s\n",
		bet.NumNodes(), bet.SizeRatio(), analysis.TotalTime)
	if degraded {
		fmt.Fprintf(out, "degraded analysis: confidence %.4g, %d diagnostic(s)\n", conf, len(diags))
	}
	fmt.Fprintln(out)
	if sections["bet"] {
		fmt.Fprintln(out, "## Bayesian execution tree")
		fmt.Fprintln(out, bet.Dump())
	}
	if sections["spots"] {
		fmt.Fprintf(out, "## hot spots (coverage %.1f%%)\n\n", 100*sel.Coverage)
		for i, s := range sel.Spots {
			bound := "compute"
			if s.MemoryBound {
				bound = "memory"
			}
			kind := ""
			switch {
			case s.IsLib:
				kind = " [library]"
			case s.IsComm:
				kind = " [comm]"
			}
			fmt.Fprintf(out, "%2d. %-30s %6.2f%%  %s-bound%s\n",
				i+1, s.BlockID, 100*analysis.Coverage(s), bound, kind)
		}
		fmt.Fprintln(out)
	}
	if sections["breakdown"] {
		fmt.Fprintf(out, "## per-spot breakdown\n\n%-30s %10s %10s %10s\n",
			"block", "comp-only%", "overlap%", "mem-only%")
		for _, s := range analysis.TopN(cfg.crit.MaxSpots) {
			if s.T <= 0 {
				continue
			}
			fmt.Fprintf(out, "%-30s %10.1f %10.1f %10.1f\n", s.BlockID,
				100*(s.Tc-s.To)/s.T, 100*s.To/s.T, 100*(s.Tm-s.To)/s.T)
		}
		fmt.Fprintln(out)
	}
	if sections["path"] {
		fmt.Fprintln(out, "## hot path")
		fmt.Fprintln(out, path.Render())
	}
	if sections["dot"] {
		fmt.Fprintln(out, "## hot path (graphviz)")
		fmt.Fprintln(out, path.DOT())
	}
	return degraded, nil
}
