// Command skopec analyzes a code-skeleton file: the original SKOPE
// workflow, where skeletons are written (or generated) ahead of time and
// analyzed against machine models without any application execution.
//
// Usage:
//
//	skopec -file app.skel -input "n=2048,m=2048" [-entry main]
//	       [-machine bgq | -machine-file m.json]
//	       [-show bet,spots,breakdown,path,dot] [-spots 10] [-lenient]
//
// The input string binds the skeleton's free variables (array dimensions,
// developer hints). Every section is pure analysis — nothing is executed.
//
// -lenient switches the skeleton parser and model construction into
// error-recovering mode: unparseable lines become explicit hole nodes,
// missing probabilities and trip counts fall back to documented priors,
// and the analysis reports a confidence score plus one diagnostic per
// substitution. A degraded-but-completed run exits with code 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/guard"
	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/libmodel"
	"skope/internal/skeleton"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.file, "file", "", "skeleton file to analyze (required)")
	flag.StringVar(&cfg.input, "input", "", "input bindings, e.g. \"n=2048,m=512\"")
	flag.StringVar(&cfg.entry, "entry", "main", "entry function")
	flag.StringVar(&cfg.machine, "machine", "bgq", "machine preset (bgq, xeon)")
	flag.StringVar(&cfg.machineFile, "machine-file", "", "JSON machine description (overrides -machine)")
	flag.StringVar(&cfg.show, "show", "spots,path", "sections: bet,spots,breakdown,path,dot")
	flag.IntVar(&cfg.maxSpots, "spots", 10, "maximum hot spots (0 = unlimited)")
	flag.Float64Var(&cfg.coverage, "coverage", 0.90, "time coverage target")
	flag.Float64Var(&cfg.leanness, "leanness", 1.0, "code leanness budget")
	flag.StringVar(&cfg.limits, "limits", "", "guard limit overrides, e.g. \"nest-depth=32,bet-nodes=100000\"; keys: "+strings.Join(guard.LimitKeys(), ", "))
	flag.BoolVar(&cfg.lenient, "lenient", false, "error-recovering mode: model around unparseable lines and missing data, reporting diagnostics and a confidence score")
	flag.Parse()
	degraded, err := run(os.Stdout, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skopec:", err)
		os.Exit(1)
	}
	if degraded {
		os.Exit(exitDegraded)
	}
}

// exitDegraded distinguishes a completed-but-degraded analysis (fallback
// priors, hole nodes) from success (0) and failure (1).
const exitDegraded = 3

type config struct {
	file, input, entry, machine, machineFile, show string
	limits                                         string
	maxSpots                                       int
	coverage, leanness                             float64
	lenient                                        bool
}

// parseInput parses "n=2048,m=512" into an environment. Values are
// expressions over earlier bindings, so "n=64,m=n*2" works.
func parseInput(s string) (expr.Env, error) {
	env := expr.Env{}
	if strings.TrimSpace(s) == "" {
		return env, nil
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		eq := strings.IndexByte(pair, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad input binding %q (want name=value)", pair)
		}
		name := strings.TrimSpace(pair[:eq])
		valSrc := strings.TrimSpace(pair[eq+1:])
		if v, err := strconv.ParseFloat(valSrc, 64); err == nil {
			env[name] = v
			continue
		}
		e, err := expr.Parse(valSrc)
		if err != nil {
			return nil, fmt.Errorf("binding %s: %v", name, err)
		}
		v, err := e.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("binding %s: %v", name, err)
		}
		env[name] = v
	}
	return env, nil
}

func run(out io.Writer, cfg config) (degraded bool, err error) {
	if cfg.file == "" {
		return false, fmt.Errorf("-file is required")
	}
	lim, err := guard.ParseLimits(cfg.limits)
	if err != nil {
		return false, fmt.Errorf("-limits: %w", err)
	}
	text, err := os.ReadFile(cfg.file)
	if err != nil {
		return false, err
	}
	var prog *skeleton.Program
	var parseDiags []guard.Diagnostic
	if cfg.lenient {
		// Semantic validation happens inside the lenient core.Build, which
		// folds its findings into the BET diagnostics (surfaced below via
		// analysis.Diagnostics); running it here too would double them.
		prog, parseDiags = skeleton.ParseLenient(cfg.file, string(text), lim)
	} else {
		prog, err = skeleton.ParseWithLimits(cfg.file, string(text), lim)
		if err != nil {
			return false, err
		}
		if err := skeleton.ValidateEntry(prog, cfg.entry); err != nil {
			return false, err
		}
	}
	input, err := parseInput(cfg.input)
	if err != nil {
		return false, err
	}
	var m *hw.Machine
	if cfg.machineFile != "" {
		m, err = hw.LoadConfig(cfg.machineFile)
	} else {
		m, err = hw.Preset(cfg.machine)
	}
	if err != nil {
		return false, err
	}

	tree, err := bst.Build(prog)
	if err != nil {
		return false, err
	}
	bet, err := core.Build(context.Background(), tree, input, &core.Options{
		Entry: cfg.entry, MaxContexts: lim.MaxContexts, MaxNodes: lim.MaxBETNodes,
		Lenient: cfg.lenient,
	})
	if err != nil {
		return false, err
	}
	libs, err := libmodel.Default()
	if err != nil {
		return false, err
	}
	analysis, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(m), libs)
	if err != nil {
		return false, err
	}
	diags := make([]guard.Diagnostic, 0, len(parseDiags)+len(analysis.Diagnostics))
	diags = append(diags, parseDiags...)
	diags = append(diags, analysis.Diagnostics...)
	guard.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "skopec: warning:", d)
	}
	// Hole nodes carry their ENR into the BET's confidence score, so
	// the analysis's confidence already reflects every parser recovery
	// that survived into the model.
	conf := analysis.Confidence
	degraded = conf < 1 || len(diags) > 0
	sel := hotspot.Select(analysis, hotspot.Criteria{
		TimeCoverage: cfg.coverage, CodeLeanness: cfg.leanness, MaxSpots: cfg.maxSpots,
	})
	path := hotpath.Extract(bet.Root, sel.Spots)

	sections := map[string]bool{}
	for _, s := range strings.Split(cfg.show, ",") {
		sections[strings.TrimSpace(s)] = true
	}

	fmt.Fprintf(out, "# %s on %s, input %s\n", cfg.file, m.Name, expr.FormatEnv(input))
	fmt.Fprintf(out, "BET: %d nodes (size ratio %.2f), projected total %.4g s\n",
		bet.NumNodes(), bet.SizeRatio(), analysis.TotalTime)
	if degraded {
		fmt.Fprintf(out, "degraded analysis: confidence %.4g, %d diagnostic(s)\n", conf, len(diags))
	}
	fmt.Fprintln(out)
	if sections["bet"] {
		fmt.Fprintln(out, "## Bayesian execution tree")
		fmt.Fprintln(out, bet.Dump())
	}
	if sections["spots"] {
		fmt.Fprintf(out, "## hot spots (coverage %.1f%%)\n\n", 100*sel.Coverage)
		for i, s := range sel.Spots {
			bound := "compute"
			if s.MemoryBound {
				bound = "memory"
			}
			kind := ""
			switch {
			case s.IsLib:
				kind = " [library]"
			case s.IsComm:
				kind = " [comm]"
			}
			fmt.Fprintf(out, "%2d. %-30s %6.2f%%  %s-bound%s\n",
				i+1, s.BlockID, 100*analysis.Coverage(s), bound, kind)
		}
		fmt.Fprintln(out)
	}
	if sections["breakdown"] {
		fmt.Fprintf(out, "## per-spot breakdown\n\n%-30s %10s %10s %10s\n",
			"block", "comp-only%", "overlap%", "mem-only%")
		for _, s := range analysis.TopN(cfg.maxSpots) {
			if s.T <= 0 {
				continue
			}
			fmt.Fprintf(out, "%-30s %10.1f %10.1f %10.1f\n", s.BlockID,
				100*(s.Tc-s.To)/s.T, 100*s.To/s.T, 100*(s.Tm-s.To)/s.T)
		}
		fmt.Fprintln(out)
	}
	if sections["path"] {
		fmt.Fprintln(out, "## hot path")
		fmt.Fprintln(out, path.Render())
	}
	if sections["dot"] {
		fmt.Fprintln(out, "## hot path (graphviz)")
		fmt.Fprintln(out, path.DOT())
	}
	return degraded, nil
}
