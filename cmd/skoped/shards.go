package main

// The daemon's sharded-sweep surface. POST /v1/shards creates a
// coordinated job: the daemon prepares the workload (that pins the layout
// fingerprint every worker must reproduce), partitions the grid, and
// serves the worker protocol mounted from internal/shard. External
// workers — `skoped -worker <url>` instances, or skope's own shard-worker
// role — lease shards, journal every variant crash-safely on their side,
// and report results; the coordinator merges them into a streaming Pareto
// frontier and quarantines flapping workers behind a circuit breaker.
//
// POST /v1/shards/{job}/harvest finalizes a completed job: the merged
// journal is written under -data-dir and replayed through the pipeline
// into the shared result store, so later sessions (and skope -store runs
// against the same file) are served the sharded results bit-identically
// with zero recomputation.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"skope/internal/cliflags"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/pipeline"
	"skope/internal/shard"
)

// shardRequest is the POST /v1/shards body. The workload and sweep
// vocabulary matches sessionRequest; criteria and confidence floors are
// deliberately absent — shard workers produce mode-independent records,
// and those settings apply where the merged journal is replayed.
type shardRequest struct {
	Bench  string  `json:"bench,omitempty"`
	Source string  `json:"source,omitempty"`
	Scale  float64 `json:"scale,omitempty"`

	Machine string   `json:"machine,omitempty"`
	Sweep   []string `json:"sweep"`

	Lenient        *bool  `json:"lenient,omitempty"`
	Retries        int    `json:"retries,omitempty"`
	VariantTimeout string `json:"variant_timeout,omitempty"`

	// ShardSize is the variants-per-shard granularity (0 selects 16).
	ShardSize int `json:"shard_size,omitempty"`
	// Lease is the shard lease duration, e.g. "30s" (default 30s). A
	// worker that stops heartbeating loses its shard after this long.
	Lease string `json:"lease,omitempty"`
}

// shardJob pairs a coordinator with the prepared run its layout
// fingerprint came from, so harvest replays the merged journal without
// re-preparing the workload. A job recovered from its coordinator log
// after a daemon restart has no run yet (nil) — harvest re-prepares the
// workload lazily from the spec and verifies the layout fingerprint
// still matches before replaying.
type shardJob struct {
	id    string
	spec  shard.JobSpec
	run   *pipeline.Run
	coord *shard.Coordinator
	log   *shard.Log // crash-safety log; closed and removed on harvest

	mu      sync.Mutex
	harvest *harvestResult // non-nil once harvested (idempotent)
}

// harvestResult is the POST /v1/shards/{job}/harvest response.
type harvestResult struct {
	Journal     string `json:"journal"`
	Records     int    `json:"records"`
	FromJournal int    `json:"from_journal"`
	Stored      int    `json:"stored,omitempty"`
	Failed      int    `json:"failed,omitempty"`
}

// newShardJob validates the request and prepares the workload — the
// expensive part, done synchronously so the job is immediately joinable
// with a pinned layout fingerprint.
func (srv *server) newShardJob(ctx context.Context, id string, req shardRequest) (*shardJob, error) {
	if (req.Bench == "") == (req.Source == "") {
		return nil, badRequest("exactly one of bench or source is required")
	}
	if len(req.Sweep) == 0 {
		return nil, badRequest("sweep axes are required")
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	preset := req.Machine
	if preset == "" {
		preset = srv.cfg.machine
	}
	base, err := hw.Preset(preset)
	if err != nil {
		return nil, badRequest(err.Error())
	}
	lenient := srv.cfg.grd.Lenient
	if req.Lenient != nil {
		lenient = *req.Lenient
	}
	var timeout time.Duration
	if req.VariantTimeout != "" {
		if timeout, err = time.ParseDuration(req.VariantTimeout); err != nil {
			return nil, badRequest("variant_timeout: " + err.Error())
		}
	}
	lease := 30 * time.Second
	if req.Lease != "" {
		if lease, err = time.ParseDuration(req.Lease); err != nil {
			return nil, badRequest("lease: " + err.Error())
		}
		if lease < time.Second {
			return nil, badRequest("lease must be at least 1s")
		}
	}

	spec := shard.JobSpec{
		Base:             base.Wire(),
		Lenient:          lenient,
		Retries:          req.Retries,
		VariantTimeoutMs: timeout.Milliseconds(),
		ShardSize:        req.ShardSize,
	}
	if req.Source != "" {
		spec.Bench = "job-" + id
		spec.Source = req.Source
		spec.Seed = 1
	} else {
		spec.Bench = req.Bench
		spec.Scale = scale
	}
	var axes cliflags.AxisList
	for _, s := range req.Sweep {
		if err := axes.Set(s); err != nil {
			return nil, badRequest("sweep: " + err.Error())
		}
	}
	if spec.Axes, err = axes.Axes(); err != nil {
		return nil, badRequest("sweep: " + err.Error())
	}
	if _, err := spec.Variants(); err != nil {
		return nil, badRequest("sweep: " + err.Error())
	}

	// Prepare exactly the way a worker will — from the spec's options
	// alone — so the pinned fingerprint is the one they reproduce.
	w, err := spec.Workload()
	if err != nil {
		return nil, badRequest(err.Error())
	}
	run, err := pipeline.Prepare(ctx, w, spec.Options()...)
	if err != nil {
		return nil, badRequest("prepare: " + err.Error())
	}
	layout, err := run.Layout()
	if err != nil {
		return nil, err
	}
	spec.LayoutFP = layout.Fingerprint()

	// The coordinator log makes the job survive a daemon crash: every
	// lease epoch and completed shard is persisted before the worker
	// learns of it, and startup recovery rebuilds the job so reconnecting
	// workers resume with zero re-evaluation.
	log, err := shard.OpenLog(srv.coordLogPath(id))
	if err != nil {
		return nil, err
	}
	coord, err := shard.NewCoordinator(shard.Config{JobID: id, Spec: spec, Lease: lease, Log: log})
	if err != nil {
		log.Close()
		return nil, err
	}
	return &shardJob{id: id, spec: spec, run: run, coord: coord, log: log}, nil
}

// coordLogPath is where job id's coordinator log lives under -data-dir.
func (srv *server) coordLogPath(id string) string {
	return filepath.Join(srv.cfg.dataDir, id+".coordlog")
}

// recoverShardJobs rebuilds jobs from coordinator logs a previous daemon
// left under -data-dir (a harvested job removes its log, so whatever is
// here was in flight when the daemon died). Recovered jobs are
// immediately joinable: completed shards serve their merged records with
// zero re-evaluation, live leases are honored under their original
// epochs, and pre-crash stale workers stay fenced. The workload is not
// re-prepared here — harvest does that lazily — so recovery is cheap
// even for many jobs. A log that cannot be recovered is skipped with a
// warning, never deleted: the bytes may still be wanted post-mortem.
func (srv *server) recoverShardJobs() {
	paths, err := filepath.Glob(filepath.Join(srv.cfg.dataDir, "*.coordlog"))
	if err != nil || len(paths) == 0 {
		return
	}
	for _, p := range paths {
		log, err := shard.OpenLog(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skoped: skipping coordinator log %s: %v\n", p, err)
			continue
		}
		coord, err := shard.RecoverCoordinator(log, shard.Config{})
		if err != nil {
			log.Close()
			fmt.Fprintf(os.Stderr, "skoped: skipping coordinator log %s: %v\n", p, err)
			continue
		}
		st := coord.Status()
		job := &shardJob{id: st.JobID, spec: coord.Spec(), coord: coord, log: log}
		srv.mu.Lock()
		srv.shardJobs[job.id] = job
		srv.mu.Unlock()
		srv.shards.Add(coord)
		srv.recoveredJobs++
		fmt.Printf("skoped: recovered shard job %s (%d/%d shards done, %d records, %d leased)\n",
			job.id, st.Completed, st.Shards, st.Merged, st.Leased)
	}
}

func (srv *server) handleShardSubmit(w http.ResponseWriter, r *http.Request) {
	if srv.draining.Load() {
		writeUnavailable(w, srv.cfg.drainTimeout, "draining: not accepting new jobs")
		return
	}
	var req shardRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	id := srv.shards.NextJobID()
	job, err := srv.newShardJob(r.Context(), id, req)
	if err != nil {
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, reqErr.msg)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	srv.mu.Lock()
	srv.shardJobs[id] = job
	srv.mu.Unlock()
	srv.shards.Add(job.coord)
	writeJSON(w, http.StatusCreated, shard.JobDetail{
		Status: job.coord.Status(), Spec: job.spec, Shards: job.coord.Shards(),
	})
}

func (srv *server) handleShardHarvest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("job")
	srv.mu.Lock()
	job := srv.shardJobs[id]
	srv.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, "no job "+id)
		return
	}
	if !job.coord.Done() {
		st := job.coord.Status()
		writeError(w, http.StatusConflict,
			fmt.Sprintf("job not done: %d of %d variants merged", st.Merged, st.Variants))
		return
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.harvest != nil {
		writeJSON(w, http.StatusOK, job.harvest)
		return
	}
	res, err := srv.harvestJob(r.Context(), job)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	job.harvest = res
	writeJSON(w, http.StatusOK, res)
}

// harvestJob writes the merged journal under -data-dir and replays it
// through the pipeline into the shared store: every journaled record
// becomes a store entry under the daemon's default criteria, bit-identical
// to what the workers computed. A recovered job (no prepared run) gets
// its workload re-prepared here, verified against the pinned layout
// fingerprint. On success the coordinator log is retired — the merged
// journal is now the durable artifact.
func (srv *server) harvestJob(ctx context.Context, job *shardJob) (*harvestResult, error) {
	if job.run == nil {
		w, err := job.spec.Workload()
		if err != nil {
			return nil, err
		}
		run, err := pipeline.Prepare(ctx, w, job.spec.Options()...)
		if err != nil {
			return nil, fmt.Errorf("re-prepare recovered job: %w", err)
		}
		layout, err := run.Layout()
		if err != nil {
			return nil, err
		}
		if fp := layout.Fingerprint(); fp != job.spec.LayoutFP {
			return nil, fmt.Errorf("recovered job %s: layout fingerprint %s, job pinned %s (version skew)",
				job.id, fp, job.spec.LayoutFP)
		}
		job.run = run
	}
	mergedPath := filepath.Join(srv.cfg.dataDir, job.id+".journal")
	n, err := job.coord.WriteMerged(mergedPath)
	if err != nil {
		return nil, err
	}
	res := &harvestResult{Journal: mergedPath, Records: n, Failed: len(job.coord.Failures())}

	variants, err := job.spec.Variants()
	if err != nil {
		return nil, err
	}
	j, err := journal.Open(mergedPath)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	opts := append(job.spec.Options(),
		pipeline.WithCriteria(srv.cfg.crit.Resolve()),
		pipeline.WithJournal(j))
	if srv.store != nil {
		opts = append(opts, pipeline.WithStore(srv.store))
	}
	evals, err := pipeline.Sweep(ctx, job.run, variants, opts...)
	if err != nil && !tolerable(err) {
		return nil, err
	}
	for _, ev := range evals {
		if ev == nil {
			continue
		}
		switch ev.Provenance {
		case pipeline.FromJournal:
			res.FromJournal++
		}
		if srv.store != nil {
			res.Stored++
		}
	}
	// The merged journal and store now carry everything the coordinator
	// log protected; retire it so restarts stop recovering a finished job.
	if job.log != nil {
		job.log.Close()
		_ = os.Remove(job.log.Path())
		job.log = nil
	}
	return res, nil
}
