package main

// Robustness suite: the daemon under overload, slow consumers, session-table
// growth, and store corruption. The contracts under test are the ones
// DESIGN.md's fault model documents — load shedding answers 503 with a
// Retry-After hint while existing work keeps serving, a stalled NDJSON
// reader is disconnected instead of pinning a handler forever, finished
// sessions are garbage-collected after -session-ttl (running ones never),
// and the scrubber quarantines corrupt store records so the next matching
// sweep transparently recomputes and replaces them.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"skope/internal/guard"
	"skope/internal/journal"
)

// robustServer is testServer with a config hook for the -max-sessions /
// -session-ttl / -scrub-interval / -stream-write-timeout knobs.
func robustServer(t *testing.T, dataDir, storePath string, budget int, mutate func(*daemonConfig)) (*server, *httptest.Server) {
	t.Helper()
	cfg := daemonConfig{
		addr:       "unused",
		storePath:  storePath,
		dataDir:    dataDir,
		machine:    "bgq",
		maxWorkers: budget,
	}
	cfg.crit.Coverage, cfg.crit.Leanness, cfg.crit.MaxSpots = 0.90, 0.50, 10
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// blockEvaluations arms the explore.evaluate fault point so every variant
// evaluation parks until the returned release is called (idempotent via
// t.Cleanup) — a deterministic way to hold sessions in the running state.
func blockEvaluations(t *testing.T) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(ch) }) }
	disarm := guard.Arm("explore.evaluate", func(string) { <-ch })
	t.Cleanup(func() { release(); disarm() })
	return release
}

// retryAfterSeconds parses the Retry-After header, failing on absence.
func retryAfterSeconds(t *testing.T, resp *http.Response) int {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatal("503 without a Retry-After header")
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer second count: %v", v, err)
	}
	return secs
}

// TestOverloadShedding: with -max-sessions saturated, new submissions get
// 503 + Retry-After while healthz and the existing session keep serving;
// once the session finishes, capacity frees and submissions succeed again.
func TestOverloadShedding(t *testing.T) {
	release := blockEvaluations(t)
	_, ts := robustServer(t, t.TempDir(), "", 1, func(cfg *daemonConfig) {
		cfg.serve.MaxSessions = 1
	})

	id := submit(t, ts.URL, sradSession())

	// Saturated: the next submission is shed, not queued.
	resp, out := postJSON(t, ts.URL+"/v1/sessions", sradSession())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit at capacity: status %d (%v)", resp.StatusCode, out)
	}
	if secs := retryAfterSeconds(t, resp); secs < 1 {
		t.Errorf("Retry-After = %d, want >= 1", secs)
	}

	// Shedding load is not being unhealthy: healthz answers 200/ok and
	// reports the gauge, and the running session stays inspectable.
	h := getJSON(t, ts.URL+"/v1/healthz")
	if h["status"] != "ok" {
		t.Errorf("healthz under overload = %v", h["status"])
	}
	if int(h["max_sessions"].(float64)) != 1 || int(h["active_sessions"].(float64)) != 1 {
		t.Errorf("healthz gauges = max %v active %v, want 1/1", h["max_sessions"], h["active_sessions"])
	}
	if info := getJSON(t, ts.URL+"/v1/sessions/"+id); info["id"] != id {
		t.Errorf("running session not inspectable under overload: %v", info)
	}

	// A malformed request is still a 400, even at capacity.
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", sessionRequest{Bench: "srad"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submit at capacity: status %d, want 400", resp.StatusCode)
	}

	// Capacity frees when the session reaches a terminal state.
	release()
	if info := waitState(t, ts.URL, id); info["state"] != stateDone {
		t.Fatalf("blocked session ended %v (%v)", info["state"], info["error"])
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, out := postJSON(t, ts.URL+"/v1/sessions", sradSession())
		if resp.StatusCode == http.StatusCreated {
			waitState(t, ts.URL, out["id"].(string))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity never freed after session completion: %d (%v)", resp.StatusCode, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionGC: finished sessions older than -session-ttl are dropped so
// the table stays bounded on a long-lived daemon; queued and running
// sessions are immune regardless of age.
func TestSessionGC(t *testing.T) {
	_, ts := robustServer(t, t.TempDir(), "", 4, func(cfg *daemonConfig) {
		cfg.serve.SessionTTL = 400 * time.Millisecond
	})
	small := sessionRequest{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}}

	// Soak: a burst of sessions completes, and the table drains to empty
	// within a bounded window instead of growing forever.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		id := submit(t, ts.URL, small)
		wg.Add(1)
		go func() {
			defer wg.Done()
			waitState(t, ts.URL, id)
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n := len(getJSON(t, ts.URL+"/v1/sessions")["sessions"].([]any)); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session table not drained: %v", getJSON(t, ts.URL+"/v1/sessions"))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if h := getJSON(t, ts.URL+"/v1/healthz"); int(h["sessions"].(float64)) != 0 {
		t.Errorf("healthz sessions = %v after GC", h["sessions"])
	}

	// Immunity: a session still running well past the TTL is never
	// collected.
	release := blockEvaluations(t)
	id := submit(t, ts.URL, small)
	time.Sleep(3 * 400 * time.Millisecond)
	if info := getJSON(t, ts.URL+"/v1/sessions/"+id); info["id"] != id {
		t.Fatalf("running session was garbage-collected: %v", info)
	}
	release()
	if info := waitState(t, ts.URL, id); info["state"] != stateDone {
		t.Fatalf("session ended %v (%v)", info["state"], info["error"])
	}
}

// stalledWriter simulates an NDJSON consumer that stops reading: the first
// write succeeds, every later write parks until the handler's write
// deadline and then fails the way a kernel send on a full socket does. It
// implements SetWriteDeadline so http.NewResponseController finds it.
type stalledWriter struct {
	mu       sync.Mutex
	header   http.Header
	deadline time.Time
	writes   int
}

func (w *stalledWriter) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *stalledWriter) WriteHeader(int) {}

func (w *stalledWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	n := w.writes
	w.writes++
	d := w.deadline
	w.mu.Unlock()
	if n == 0 {
		return len(p), nil
	}
	if d.IsZero() {
		// Without a deadline this handler would block forever on a dead
		// socket; the test fails fast instead of hanging.
		return 0, os.ErrDeadlineExceeded
	}
	time.Sleep(time.Until(d))
	return 0, os.ErrDeadlineExceeded
}

func (w *stalledWriter) SetWriteDeadline(d time.Time) error {
	w.mu.Lock()
	w.deadline = d
	w.mu.Unlock()
	return nil
}

// TestStalledStreamReader: a results stream whose client stops consuming
// is cut off after -stream-write-timeout instead of ticking progress lines
// into a dead socket for the lifetime of the session.
func TestStalledStreamReader(t *testing.T) {
	release := blockEvaluations(t)
	srv, ts := robustServer(t, t.TempDir(), "", 1, func(cfg *daemonConfig) {
		cfg.serve.StreamWriteTimeout = 100 * time.Millisecond
	})
	id := submit(t, ts.URL, sradSession())

	w := &stalledWriter{}
	req := httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id+"/results", nil)
	req.SetPathValue("id", id)
	done := make(chan struct{})
	go func() {
		srv.handleResults(w, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler kept streaming to a stalled reader")
	}
	w.mu.Lock()
	writes, deadline := w.writes, w.deadline
	w.mu.Unlock()
	if writes < 2 {
		t.Errorf("handler returned after %d writes; the stall was never exercised", writes)
	}
	if deadline.IsZero() {
		t.Error("handler never set a write deadline on the stream")
	}

	// The session itself is untouched by its consumer's death.
	release()
	if info := waitState(t, ts.URL, id); info["state"] != stateDone {
		t.Fatalf("session ended %v (%v) after its stream consumer stalled", info["state"], info["error"])
	}
}

// TestScrubberQuarantinesAndHeals is the self-healing-store acceptance: a
// record corrupted while the daemon is down is quarantined by the startup
// scrub (visible in healthz), the next matching sweep recomputes exactly
// that key — results bit-identical to the pre-corruption run — and the
// healing write lifts the quarantine.
func TestScrubberQuarantinesAndHeals(t *testing.T) {
	dataDir := t.TempDir()
	storePath := filepath.Join(dataDir, "cas")
	req := sradSession()

	// Daemon A populates the store.
	srvA, tsA := robustServer(t, dataDir, storePath, 4, nil)
	cold := submit(t, tsA.URL, req)
	if info := waitState(t, tsA.URL, cold); info["state"] != stateDone {
		t.Fatalf("cold session ended %v (%v)", info["state"], info["error"])
	}
	coldResults, _ := streamLines(t, tsA.URL, cold, "?full=1")
	tsA.Close()
	srvA.Close() // daemon "down"

	// A foreign writer (or version skew) corrupts the top-ranked variant's
	// eval record: a valid journal frame whose payload is not an analysis.
	// (The store also holds the baseline machine's eval; keying on the
	// result's fingerprint pins the corruption to a ranked variant.)
	topFP := coldResults[0]["machine_fingerprint"].(string)
	j, err := journal.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	var corruptKey string
	for _, e := range j.Entries() {
		if len(e.Key) > 2 && e.Key[:2] == "e/" && strings.Contains(e.Key, "/"+topFP+"/") {
			corruptKey = e.Key
			break
		}
	}
	if corruptKey == "" {
		t.Fatalf("no eval record for fingerprint %s", topFP)
	}
	if err := j.Append(corruptKey, []byte("not an analysis")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Daemon B scrubs on startup and keeps scrubbing on a short interval.
	_, tsB := robustServer(t, dataDir, storePath, 4, func(cfg *daemonConfig) {
		cfg.serve.ScrubInterval = 20 * time.Millisecond
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getJSON(t, tsB.URL+"/v1/healthz")["store"].(map[string]any)
		if q, _ := st["quarantined"].(float64); q >= 1 {
			scrub, ok := st["scrub"].(map[string]any)
			if !ok || scrub["runs"].(float64) < 1 || scrub["bad"].(float64) < 1 {
				t.Fatalf("quarantine without scrub stats in healthz: %v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never quarantined the corrupt record: %v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same sweep transparently recomputes the quarantined key and is
	// served the rest from the store — bit-identical to the cold run.
	warm := submit(t, tsB.URL, req)
	if info := waitState(t, tsB.URL, warm); info["state"] != stateDone {
		t.Fatalf("warm session ended %v (%v)", info["state"], info["error"])
	}
	warmResults, warmSummary := streamLines(t, tsB.URL, warm, "?full=1")
	// The session evaluates the baseline machine too, so a fully warm run
	// serves len(results)+1 evals; exactly the quarantined one recomputes.
	if got, want := int(warmSummary["from_store"].(float64)), len(coldResults); got != want {
		t.Errorf("warm session served %d from store, want %d (all but the quarantined key)", got, want)
	}
	if got := int(warmSummary["computed"].(float64)); got != 1 {
		t.Errorf("warm session computed %d variants, want exactly the quarantined one", got)
	}
	if len(warmResults) != len(coldResults) {
		t.Fatalf("result counts differ: %d vs %d", len(warmResults), len(coldResults))
	}
	recomputed := 0
	for i := range coldResults {
		c, w := coldResults[i], warmResults[i]
		for _, key := range []string{"variant", "total_time_s", "speedup", "confidence"} {
			if c[key] != w[key] {
				t.Errorf("result %d field %s drifted after heal: %v vs %v", i, key, c[key], w[key])
			}
		}
		ca, _ := json.Marshal(c["analysis"])
		wa, _ := json.Marshal(w["analysis"])
		if !bytes.Equal(ca, wa) {
			t.Errorf("result %d analysis not bit-identical after heal", i)
		}
		if w["provenance"] == "computed" {
			recomputed++
		}
	}
	if recomputed != 1 {
		t.Errorf("%d results recomputed, want exactly the quarantined key", recomputed)
	}

	// The healing Put lifted the quarantine.
	st := getJSON(t, tsB.URL+"/v1/healthz")["store"].(map[string]any)
	if q, _ := st["quarantined"].(float64); q != 0 {
		t.Errorf("quarantine survived the healing recompute: %v", st)
	}
}
