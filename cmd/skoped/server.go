package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/shard"
	"skope/internal/store"
	"skope/internal/workloads"
)

// server holds the daemon's shared state: the content-addressed store,
// the global worker-budget semaphore, the session table, and the shard
// coordinator registry.
type server struct {
	cfg    daemonConfig
	store  *store.Store   // nil when -store is empty
	sem    chan struct{}  // counting semaphore: one token per busy worker
	shards *shard.Service // sharded-job registry + worker protocol

	// draining flips on SIGTERM/SIGINT: new submissions (sessions and
	// shard jobs) are refused with 503 while in-flight work finishes.
	draining atomic.Bool

	// stop ends the maintenance loops (session GC, store scrub); loops
	// tracks them so Close can wait.
	stop     chan struct{}
	stopOnce sync.Once
	loops    sync.WaitGroup

	// recoveredJobs counts shard jobs rebuilt from coordinator logs at
	// startup (written once in newServer, read-only after).
	recoveredJobs int

	mu        sync.Mutex
	sessions  map[string]*session
	order     []string
	nextID    int
	active    int // sessions queued or running — the -max-sessions gauge
	shardJobs map[string]*shardJob
}

func newServer(cfg daemonConfig) (*server, error) {
	if _, err := guard.ParseLimits(cfg.grd.Limits); err != nil {
		return nil, fmt.Errorf("-limits: %w", err)
	}
	budget := cfg.maxWorkers
	if budget < 1 {
		budget = defaultBudget()
	}
	srv := &server{
		cfg:       cfg,
		sem:       make(chan struct{}, budget),
		sessions:  make(map[string]*session),
		shards:    shard.NewService(),
		shardJobs: make(map[string]*shardJob),
		stop:      make(chan struct{}),
	}
	if cfg.storePath != "" {
		st, err := store.Open(cfg.storePath)
		if err != nil {
			return nil, err
		}
		srv.store = st
	}
	srv.recoverShardJobs()
	if cfg.serve.SessionTTL > 0 {
		srv.loops.Add(1)
		go srv.gcLoop()
	}
	if srv.store != nil && cfg.serve.ScrubInterval > 0 {
		srv.loops.Add(1)
		go srv.scrubLoop()
	}
	return srv, nil
}

// Close stops the maintenance loops, cancels every running session, and
// closes the store.
func (srv *server) Close() {
	srv.stopOnce.Do(func() { close(srv.stop) })
	srv.loops.Wait()
	srv.mu.Lock()
	for _, sess := range srv.sessions {
		if sess.cancel != nil {
			sess.cancel()
		}
	}
	sessions := make([]*session, 0, len(srv.sessions))
	for _, sess := range srv.sessions {
		sessions = append(sessions, sess)
	}
	jobs := make([]*shardJob, 0, len(srv.shardJobs))
	for _, job := range srv.shardJobs {
		jobs = append(jobs, job)
	}
	srv.mu.Unlock()
	for _, sess := range sessions {
		<-sess.done
	}
	// Coordinator logs fsync on every append, so closing here loses
	// nothing — it just releases the file handles for unharvested jobs.
	for _, job := range jobs {
		job.mu.Lock()
		if job.log != nil {
			job.log.Close()
		}
		job.mu.Unlock()
	}
	if srv.store != nil {
		srv.store.Close()
	}
}

// Handler builds the daemon's route table.
func (srv *server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	mux.HandleFunc("GET /v1/params", srv.handleParams)
	mux.HandleFunc("POST /v1/sessions", srv.handleSubmit)
	mux.HandleFunc("GET /v1/sessions", srv.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", srv.handleInspect)
	mux.HandleFunc("GET /v1/sessions/{id}/results", srv.handleResults)
	mux.HandleFunc("POST /v1/sessions/{id}/cancel", srv.handleCancel)
	mux.HandleFunc("POST /v1/shards", srv.handleShardSubmit)
	mux.HandleFunc("POST /v1/shards/{job}/harvest", srv.handleShardHarvest)
	srv.shards.Mount(mux)
	return mux
}

// beginDrain flips the server into drain mode: healthz reports it, and
// new session or shard-job submissions are refused with 503. Running
// sessions, result streams, and the shard worker protocol keep serving —
// a coordinated job's workers must be able to finish their shards.
func (srv *server) beginDrain() { srv.draining.Store(true) }

// awaitSessions blocks until every session has reached a terminal state
// or ctx expires; it reports whether all of them finished.
func (srv *server) awaitSessions(ctx context.Context) bool {
	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for _, sess := range srv.sessions {
		sessions = append(sessions, sess)
	}
	srv.mu.Unlock()
	for _, sess := range sessions {
		select {
		case <-sess.done:
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// gcLoop periodically drops sessions that reached a terminal state more
// than -session-ttl ago, keeping the session table bounded on a daemon
// that serves submissions indefinitely.
func (srv *server) gcLoop() {
	defer srv.loops.Done()
	interval := srv.cfg.serve.SessionTTL / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-srv.stop:
			return
		case <-t.C:
			srv.gcSessions(time.Now())
		}
	}
}

// gcSessions removes sessions whose terminal state is older than the TTL
// and reports how many it dropped. Queued and running sessions (finished
// is zero) are never touched.
func (srv *server) gcSessions(now time.Time) (removed int) {
	ttl := srv.cfg.serve.SessionTTL
	if ttl <= 0 {
		return 0
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	kept := srv.order[:0]
	for _, id := range srv.order {
		sess := srv.sessions[id]
		sess.mu.Lock()
		fin := sess.finished
		sess.mu.Unlock()
		if !fin.IsZero() && now.Sub(fin) >= ttl {
			delete(srv.sessions, id)
			removed++
			continue
		}
		kept = append(kept, id)
	}
	srv.order = kept
	return removed
}

// scrubLoop periodically re-verifies every store record, quarantining
// corrupt ones so the next matching evaluation recomputes and replaces
// them. One pass runs at startup — a store damaged while the daemon was
// down should not wait a full interval to be noticed.
func (srv *server) scrubLoop() {
	defer srv.loops.Done()
	srv.store.Scrub()
	t := time.NewTicker(srv.cfg.serve.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-srv.stop:
			return
		case <-t.C:
			srv.store.Scrub()
		}
	}
}

// writeUnavailable refuses work with 503 and a Retry-After hint — the
// load-shedding contract: the daemon is healthy, the client should back
// off and retry rather than fail over.
func writeUnavailable(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, msg)
}

// capacityRetryAfter is the Retry-After hint for -max-sessions refusals:
// long enough to thin a thundering herd, short enough that capacity freed
// by a finishing session is found quickly.
const capacityRetryAfter = 5 * time.Second

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (srv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	n := len(srv.sessions)
	active := srv.active
	coords := make([]*shard.Coordinator, 0, len(srv.shardJobs))
	for _, job := range srv.shardJobs {
		coords = append(coords, job.coord)
	}
	srv.mu.Unlock()
	status := "ok"
	if srv.draining.Load() {
		status = "draining"
	}
	resp := map[string]any{
		"status":          status,
		"sessions":        n,
		"active_sessions": active,
		"worker_budget":   cap(srv.sem),
		"busy_workers":    len(srv.sem),
	}
	if max := srv.cfg.serve.MaxSessions; max > 0 {
		resp["max_sessions"] = max
	}
	if len(coords) > 0 || srv.recoveredJobs > 0 {
		var done, staleFenced, recRecords int
		degraded := false
		for _, c := range coords {
			st := c.Status()
			if st.Done {
				done++
			}
			staleFenced += st.StaleFenced
			recRecords += st.RecoveredRecords
			degraded = degraded || st.LogDegraded
		}
		resp["shards"] = map[string]any{
			"jobs":              len(coords),
			"done":              done,
			"stale_fenced":      staleFenced,
			"recovered_jobs":    srv.recoveredJobs,
			"recovered_records": recRecords,
			"log_degraded":      degraded,
		}
	}
	if srv.store != nil {
		stats := srv.store.Stats()
		storeMap := map[string]any{
			"path":        srv.store.Path(),
			"records":     srv.store.Len(),
			"hits":        stats.Hits,
			"misses":      stats.Misses,
			"quarantined": len(srv.store.Quarantined()),
		}
		if runs, last := srv.store.ScrubStats(); runs > 0 {
			storeMap["scrub"] = map[string]any{
				"runs":     runs,
				"checked":  last.Checked,
				"bad":      last.Bad,
				"healed":   last.Healed,
				"problems": last.Problems,
			}
		}
		resp["store"] = storeMap
	}
	writeJSON(w, http.StatusOK, resp)
}

func (srv *server) handleParams(w http.ResponseWriter, r *http.Request) {
	type benchInfo struct {
		Name, Description string
	}
	var benches []benchInfo
	for _, n := range workloads.Names() {
		wl, _ := workloads.Get(n, 1)
		benches = append(benches, benchInfo{Name: n, Description: wl.Description})
	}
	var machines []string
	for n := range hw.Presets() {
		machines = append(machines, n)
	}
	sort.Strings(machines)
	writeJSON(w, http.StatusOK, map[string]any{
		"benchmarks":       benches,
		"machines":         machines,
		"sweep_parameters": explore.ParamHelp(),
		"limit_keys":       guard.LimitKeys(),
	})
}

func (srv *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if srv.draining.Load() {
		writeUnavailable(w, srv.cfg.drainTimeout, "draining: not accepting new sessions")
		return
	}
	var req sessionRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "body: "+err.Error())
		return
	}
	srv.mu.Lock()
	srv.nextID++
	id := fmt.Sprintf("s-%06d", srv.nextID)
	srv.mu.Unlock()

	sess, err := srv.newSession(id, req)
	if err != nil {
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, reqErr.msg)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	sess.cancel = cancel
	// Admission control: the capacity check and the table insert share one
	// critical section, so concurrent submissions cannot both slip under
	// the cap. Validation ran first — a malformed request gets its 400
	// even at capacity.
	srv.mu.Lock()
	if max := srv.cfg.serve.MaxSessions; max > 0 && srv.active >= max {
		srv.mu.Unlock()
		cancel()
		writeUnavailable(w, capacityRetryAfter,
			fmt.Sprintf("at capacity: %d sessions queued or running (-max-sessions)", max))
		return
	}
	srv.active++
	srv.sessions[id] = sess
	srv.order = append(srv.order, id)
	srv.mu.Unlock()
	go srv.run(ctx, sess)
	writeJSON(w, http.StatusCreated, srv.sessionInfo(sess))
}

func (srv *server) handleList(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	infos := make([]*wireSession, 0, len(srv.order))
	for _, id := range srv.order {
		infos = append(infos, srv.sessionInfo(srv.sessions[id]))
	}
	srv.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

// lookup resolves the {id} path segment; nil means the response was
// already written.
func (srv *server) lookup(w http.ResponseWriter, r *http.Request) *session {
	srv.mu.Lock()
	sess := srv.sessions[r.PathValue("id")]
	srv.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session "+r.PathValue("id"))
	}
	return sess
}

func (srv *server) handleInspect(w http.ResponseWriter, r *http.Request) {
	if sess := srv.lookup(w, r); sess != nil {
		writeJSON(w, http.StatusOK, srv.sessionInfo(sess))
	}
}

func (srv *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sess := srv.lookup(w, r)
	if sess == nil {
		return
	}
	sess.cancel()
	<-sess.done
	writeJSON(w, http.StatusOK, srv.sessionInfo(sess))
}

// wireSession is a session snapshot: GET /v1/sessions and the submit
// response.
type wireSession struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Variants int    `json:"variants"`
	Mode     string `json:"mode,omitempty"` // "adaptive" for surrogate-guided sessions
	Workers  int    `json:"workers"`
	Journal  string `json:"journal_id,omitempty"`
	Created  string `json:"created"`

	Done     int `json:"done"`
	Replayed int `json:"replayed,omitempty"`
	Stored   int `json:"stored,omitempty"`
	Retried  int `json:"retried,omitempty"`

	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`

	// ReplayOrder lists, for a resumed session, the journaled variant
	// keys in their original completion order — the order they are
	// replayed and reported in.
	ReplayOrder []string `json:"replay_order,omitempty"`
}

func (srv *server) sessionInfo(sess *session) *wireSession {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return &wireSession{
		ID:          sess.id,
		State:       sess.state,
		Workload:    sess.workload.Name,
		Machine:     sess.base.Name,
		Variants:    len(sess.variants),
		Mode:        sess.req.Mode,
		Workers:     sess.workers,
		Journal:     sess.req.JournalID,
		Created:     sess.created.UTC().Format(time.RFC3339),
		Done:        sess.progress.Done,
		Replayed:    sess.progress.Replayed,
		Stored:      sess.progress.Stored,
		Retried:     sess.progress.Retried,
		Degraded:    sess.degraded,
		Error:       sess.errMsg,
		ReplayOrder: sess.replayOrder,
	}
}

// Result-stream wire types. The stream is JSON lines (chunked transfer):
// zero or more progress lines while the session runs, one result line per
// healthy variant in rank order, and a summary trailer carrying the
// Pareto frontier.
type wireProgress struct {
	Type     string `json:"type"` // "progress"
	State    string `json:"state"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Replayed int    `json:"replayed,omitempty"`
	Stored   int    `json:"stored,omitempty"`
}

// wireResult is one ranked variant — the session's pipeline.Eval on the
// wire. Analysis carries the store's canonical encoding (hotspot.
// EncodeAnalysis), so daemon clients read the exact bytes the store
// serves and the full per-block breakdown; the scalar fields beside it
// are conveniences lifted from the Eval.
type wireResult struct {
	Type        string          `json:"type"` // "result"
	Rank        int             `json:"rank"`
	Variant     string          `json:"variant"`
	Fingerprint string          `json:"machine_fingerprint"`
	TotalTimeS  float64         `json:"total_time_s"`
	Speedup     float64         `json:"speedup"`
	Confidence  float64         `json:"confidence"`
	Provenance  string          `json:"provenance"`
	Degraded    bool            `json:"degraded,omitempty"`
	Spots       []wireSpot      `json:"spots"`
	Diagnostics []string        `json:"diagnostics,omitempty"`
	Analysis    json.RawMessage `json:"analysis,omitempty"`
}

type wireSpot struct {
	Block       string  `json:"block"`
	Coverage    float64 `json:"coverage"`
	MemoryBound bool    `json:"memory_bound,omitempty"`
}

// wireRound is one adaptive acquisition round on the stream: the
// explore.RoundTrace fields inlined under a "round" type tag. Rounds are
// emitted live while an adaptive session runs and backfilled before the
// results for clients that connect late.
type wireRound struct {
	Type string `json:"type"` // "round"
	explore.RoundTrace
}

type wirePareto struct {
	Variant string  `json:"variant"`
	Cost    float64 `json:"cost"`
	TimeS   float64 `json:"time_s"`
}

type wireSummary struct {
	Type              string       `json:"type"` // "summary"
	State             string       `json:"state"`
	Workload          string       `json:"workload"`
	LayoutFingerprint string       `json:"layout_fingerprint,omitempty"`
	Total             int          `json:"total"`
	Computed          int          `json:"computed"`
	FromJournal       int          `json:"from_journal"`
	FromStore         int          `json:"from_store"`
	SkippedPrepare    bool         `json:"skipped_prepare"`
	Confidence        float64      `json:"confidence"`
	Degraded          bool         `json:"degraded,omitempty"`
	Error             string       `json:"error,omitempty"`
	Baseline          string       `json:"baseline"`
	BaselineTimeS     float64      `json:"baseline_time_s"`
	Best              string       `json:"best,omitempty"`
	Pareto            []wirePareto `json:"pareto"`
	ReplayOrder       []string     `json:"replay_order,omitempty"`

	// Adaptive-mode trailer fields: the evaluation spend against the full
	// grid, the round count, and whether the search converged on patience
	// (false: budget or grid exhausted). The per-round detail is on the
	// "round" stream lines.
	Mode      string `json:"mode,omitempty"`
	Evals     int    `json:"evals,omitempty"`
	GridSize  int    `json:"grid_size,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Converged bool   `json:"converged,omitempty"`
}

// handleResults streams the session's outcome as chunked JSON lines. While
// the session runs it emits progress lines (flushed, so clients see live
// state); once the session reaches a terminal state it streams the ranked
// results and the summary trailer. ?full=1 embeds each variant's canonical
// analysis encoding in its result line.
func (srv *server) handleResults(w http.ResponseWriter, r *http.Request) {
	sess := srv.lookup(w, r)
	if sess == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Session-ID", sess.id)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	deadline := srv.cfg.serve.StreamWriteTimeout
	// send emits one NDJSON line under the per-write deadline. A false
	// return means the client stalled past -stream-write-timeout or went
	// away — the stream must stop, not keep ticking into a dead socket.
	send := func(v any) bool {
		if deadline > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(deadline))
		}
		return enc.Encode(v) == nil
	}
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	// roundsSent tracks how many adaptive round lines this stream has
	// emitted; new rounds are flushed live on each tick and the remainder
	// backfilled after the session completes, so every stream carries the
	// full trace regardless of when the client connected.
	roundsSent := 0
	emitRounds := func(rounds []explore.RoundTrace) bool {
		for ; roundsSent < len(rounds); roundsSent++ {
			if !send(wireRound{Type: "round", RoundTrace: rounds[roundsSent]}) {
				return false
			}
		}
		return true
	}

	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
wait:
	for {
		select {
		case <-sess.done:
			break wait
		case <-r.Context().Done():
			return
		case <-ticker.C:
			sess.mu.Lock()
			p := sess.progress
			state := sess.state
			rounds := sess.rounds
			sess.mu.Unlock()
			if !emitRounds(rounds) {
				return
			}
			if !send(wireProgress{
				Type: "progress", State: state,
				Done: p.Done, Total: len(sess.variants) + 1,
				Replayed: p.Replayed, Stored: p.Stored,
			}) {
				return
			}
			flush()
		}
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if !emitRounds(sess.rounds) {
		return
	}
	if sess.state != stateDone {
		_ = send(wireSummary{
			Type: "summary", State: sess.state, Workload: sess.workload.Name,
			Error: sess.errMsg,
		})
		return
	}

	full := r.URL.Query().Get("full") != ""
	baseline := sess.baseEval.Analysis.TotalTime
	for rank, i := range sess.ranked() {
		ev := sess.evals[i]
		line := wireResult{
			Type: "result", Rank: rank + 1,
			Variant:     ev.Machine.Name,
			Fingerprint: ev.Machine.Fingerprint(),
			TotalTimeS:  ev.Analysis.TotalTime,
			Speedup:     baseline / ev.Analysis.TotalTime,
			Confidence:  ev.Confidence,
			Provenance:  ev.Provenance.String(),
			Degraded:    ev.Degraded(),
		}
		for _, s := range ev.Selection.Spots {
			line.Spots = append(line.Spots, wireSpot{
				Block:       s.BlockID,
				Coverage:    ev.Analysis.Coverage(s),
				MemoryBound: s.MemoryBound,
			})
		}
		for _, d := range ev.Diagnostics {
			line.Diagnostics = append(line.Diagnostics, d.String())
		}
		if full {
			if data, err := hotspot.EncodeAnalysis(ev.Analysis); err == nil {
				line.Analysis = data
			}
		}
		if !send(line) {
			return
		}
		flush()
	}

	sum := wireSummary{
		Type: "summary", State: sess.state,
		Workload:          sess.summary.Workload,
		LayoutFingerprint: sess.summary.LayoutFingerprint,
		Total:             len(sess.variants),
		Computed:          sess.summary.Computed,
		FromJournal:       sess.summary.FromJournal,
		FromStore:         sess.summary.FromStore,
		SkippedPrepare:    sess.summary.SkippedPrepare,
		Confidence:        sess.summary.Confidence,
		Degraded:          sess.degraded,
		Error:             sess.errMsg,
		Baseline:          sess.base.Name,
		BaselineTimeS:     baseline,
		ReplayOrder:       sess.replayOrder,
	}
	if sess.adaptive != nil {
		sum.Mode = modeAdaptive
		sum.Evals = sess.adaptive.Evals
		sum.GridSize = sess.adaptive.GridSize
		sum.Rounds = len(sess.adaptive.Rounds)
		sum.Converged = sess.adaptive.Converged
	}
	analyses := sess.analyses()
	if best := explore.Best(analyses); best >= 0 {
		sum.Best = sess.variants[best].Name
	}
	for _, p := range explore.Pareto(sess.variants, analyses, explore.RelativeCost) {
		sum.Pareto = append(sum.Pareto, wirePareto{
			Variant: p.Machine.Name, Cost: p.Cost, TimeS: p.Time,
		})
	}
	_ = send(sum)
}

// defaultBudget mirrors pipeline.WithWorkers(0): GOMAXPROCS.
func defaultBudget() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}
