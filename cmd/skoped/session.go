package main

import (
	"context"
	"errors"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"skope/internal/cliflags"
	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/pipeline"
	"skope/internal/resilience"
	"skope/internal/store"
	"skope/internal/workloads"
)

// sessionRequest is the POST /v1/sessions body. Everything except the
// sweep axes is optional; omitted knobs inherit the daemon's defaults.
type sessionRequest struct {
	// Bench names a built-in benchmark; Source submits minilang text
	// instead. Exactly one must be set.
	Bench  string  `json:"bench,omitempty"`
	Source string  `json:"source,omitempty"`
	Scale  float64 `json:"scale,omitempty"`

	// Machine is the base preset the sweep axes vary around.
	Machine string `json:"machine,omitempty"`
	// Sweep lists the grid axes, e.g. "mem-bandwidth=16,32,64".
	Sweep []string `json:"sweep"`

	// Mode selects the sweep strategy: "" or "exact" evaluates the full
	// grid (the golden reference); "adaptive" runs the surrogate-guided
	// search, evaluating only the variants the acquisition loop chooses
	// and streaming a round trace alongside the results.
	Mode string `json:"mode,omitempty"`
	// AdaptiveBudget caps the adaptive search's evaluations (0 = converge
	// on patience alone); AdaptiveSeed keys its deterministic bootstrap
	// sample.
	AdaptiveBudget int    `json:"adaptive_budget,omitempty"`
	AdaptiveSeed   uint64 `json:"adaptive_seed,omitempty"`

	// Workers is the session's worker budget — tokens it holds from the
	// daemon's global semaphore while running (default 1).
	Workers int `json:"workers,omitempty"`

	// Limits and Lenient override the daemon's guard defaults.
	Limits  string `json:"limits,omitempty"`
	Lenient *bool  `json:"lenient,omitempty"`

	// Coverage, Leanness and Spots override the hot-spot criteria.
	Coverage float64 `json:"coverage,omitempty"`
	Leanness float64 `json:"leanness,omitempty"`
	Spots    *int    `json:"spots,omitempty"`

	// MinConfidence, Retries and VariantTimeout ("30s") are the sweep's
	// quality floor and resilience knobs.
	MinConfidence  float64 `json:"min_confidence,omitempty"`
	Retries        int     `json:"retries,omitempty"`
	VariantTimeout string  `json:"variant_timeout,omitempty"`

	// JournalID makes the sweep durable: completed variants are appended
	// to <data-dir>/<journal_id>.journal, and a later session with the
	// same ID — same daemon or a restarted one — resumes it, replaying
	// journaled variants in their original completion order.
	JournalID string `json:"journal_id,omitempty"`
}

// Session states.
const (
	stateQueued   = "queued" // waiting for worker-budget tokens
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// Session sweep modes.
const (
	modeExact    = "exact"
	modeAdaptive = "adaptive"
)

// session is one submitted sweep and its lifecycle. All mutable fields are
// behind mu; done closes when the terminal state is reached.
type session struct {
	id      string
	req     sessionRequest
	created time.Time

	workload *workloads.Workload
	base     *hw.Machine
	variants []*hw.Machine
	axes     []explore.Axis
	workers  int
	opts     []pipeline.Option
	jpath    string

	cancel context.CancelFunc
	done   chan struct{}

	mu          sync.Mutex
	state       string
	finished    time.Time // when the terminal state was reached (GC clock)
	errMsg      string
	degraded    bool
	progress    explore.Progress
	evals       []*pipeline.Eval // index-aligned with variants
	baseEval    *pipeline.Eval
	summary     *pipeline.SweepSummary
	replayOrder []string // journal keys in original completion order (resumed sessions)
	// Adaptive-mode state: the round trace grows as rounds complete (the
	// result stream tails it live) and the final search outcome lands in
	// adaptive when the session finishes.
	rounds   []explore.RoundTrace
	adaptive *explore.AdaptiveResult
}

func (s *session) setState(state string) {
	s.mu.Lock()
	s.state = state
	s.mu.Unlock()
}

func (s *session) snapshotState() (state, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.errMsg
}

// jid validates journal IDs: they become file names under -data-dir.
var jid = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// newSession validates the request against the daemon defaults and
// assembles everything the runner needs. Validation failures surface as
// *requestError (HTTP 400); nothing is computed yet.
func (srv *server) newSession(id string, req sessionRequest) (*session, error) {
	if (req.Bench == "") == (req.Source == "") {
		return nil, badRequest("exactly one of bench or source is required")
	}
	if len(req.Sweep) == 0 {
		return nil, badRequest("sweep axes are required")
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	var w *workloads.Workload
	var err error
	if req.Source != "" {
		w = &workloads.Workload{
			Name:        "session-" + id,
			Description: "submitted source (session " + id + ")",
			Source:      req.Source,
			Seed:        1,
		}
	} else if w, err = workloads.Get(req.Bench, workloads.Scale(scale)); err != nil {
		return nil, badRequest(err.Error())
	}

	preset := req.Machine
	if preset == "" {
		preset = srv.cfg.machine
	}
	base, err := hw.Preset(preset)
	if err != nil {
		return nil, badRequest(err.Error())
	}
	var sw cliflags.Sweep
	for _, spec := range req.Sweep {
		if err := sw.Axes.Set(spec); err != nil {
			return nil, badRequest("sweep: " + err.Error())
		}
	}
	axes, err := sw.Axes.Axes()
	if err != nil {
		return nil, badRequest("sweep: " + err.Error())
	}
	variants, err := sw.Variants(base)
	if err != nil {
		return nil, badRequest("sweep: " + err.Error())
	}
	switch req.Mode {
	case "", modeExact, modeAdaptive:
	default:
		return nil, badRequest(`mode must be "exact" or "adaptive"`)
	}

	limSrc := srv.cfg.grd.Limits
	if req.Limits != "" {
		limSrc = req.Limits
	}
	lim, err := guard.ParseLimits(limSrc)
	if err != nil {
		return nil, badRequest("limits: " + err.Error())
	}
	lenient := srv.cfg.grd.Lenient
	if req.Lenient != nil {
		lenient = *req.Lenient
	}
	crit := srv.cfg.crit.Resolve()
	if req.Coverage != 0 {
		crit.TimeCoverage = req.Coverage
	}
	if req.Leanness != 0 {
		crit.CodeLeanness = req.Leanness
	}
	if req.Spots != nil {
		crit.MaxSpots = *req.Spots
	}
	var timeout time.Duration
	if req.VariantTimeout != "" {
		if timeout, err = time.ParseDuration(req.VariantTimeout); err != nil {
			return nil, badRequest("variant_timeout: " + err.Error())
		}
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cap(srv.sem) {
		workers = cap(srv.sem)
	}

	sess := &session{
		id:       id,
		req:      req,
		created:  time.Now(),
		workload: w,
		base:     base,
		variants: variants,
		axes:     axes,
		workers:  workers,
		state:    stateQueued,
		done:     make(chan struct{}),
	}
	sess.opts = []pipeline.Option{
		pipeline.WithLimits(lim),
		pipeline.WithLenient(lenient),
		pipeline.WithCriteria(crit),
		pipeline.WithWorkers(workers),
		pipeline.WithRetry(resilience.DefaultPolicy(req.Retries)),
		pipeline.WithVariantTimeout(timeout),
		pipeline.WithMinConfidence(req.MinConfidence),
		pipeline.WithProgress(func(p explore.Progress) {
			sess.mu.Lock()
			sess.progress = p
			sess.mu.Unlock()
		}),
	}
	if req.JournalID != "" {
		if !jid.MatchString(req.JournalID) {
			return nil, badRequest("journal_id must match " + jid.String())
		}
		sess.jpath = filepath.Join(srv.cfg.dataDir, req.JournalID+".journal")
	}
	return sess, nil
}

// run executes the session: acquire the worker budget, run the sweep
// through the shared store (and the session journal when named), record
// the outcome. It owns the session's terminal state.
func (srv *server) run(ctx context.Context, sess *session) {
	defer func() {
		// Terminal bookkeeping: stamp the finish time (the -session-ttl GC
		// clock), release the admission-control slot, then wake waiters.
		sess.mu.Lock()
		sess.finished = time.Now()
		sess.mu.Unlock()
		srv.mu.Lock()
		srv.active--
		srv.mu.Unlock()
		close(sess.done)
	}()

	// Hold `workers` tokens of the daemon's global budget for the whole
	// sweep. Tokens are acquired one at a time so several queued sessions
	// make progress as budget frees up; cancellation while queued releases
	// whatever was acquired.
	held := 0
	defer func() {
		for ; held > 0; held-- {
			<-srv.sem
		}
	}()
	for ; held < sess.workers; held++ {
		select {
		case srv.sem <- struct{}{}:
		case <-ctx.Done():
			sess.setState(stateCanceled)
			return
		}
	}
	sess.setState(stateRunning)

	opts := sess.opts
	if sess.jpath != "" {
		j, err := journal.Open(sess.jpath)
		if err != nil {
			sess.fail(err)
			return
		}
		defer j.Close()
		// Original completion order of the resumed run — the order the
		// replayed variants are reported in.
		var order []string
		for _, e := range j.Entries() {
			order = append(order, e.Key)
		}
		sess.mu.Lock()
		sess.replayOrder = order
		sess.mu.Unlock()
		opts = append(opts, pipeline.WithJournal(j))
	}

	if sess.req.Mode == modeAdaptive {
		srv.runAdaptive(ctx, sess, opts)
		return
	}

	all := append(append([]*hw.Machine{}, sess.variants...), sess.base)
	evals, sum, err := pipeline.SweepCached(ctx, sess.workload, all, srv.store, opts...)
	if err != nil && !tolerable(err) || evals == nil {
		if ctx.Err() != nil {
			sess.setState(stateCanceled)
			return
		}
		sess.fail(err)
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.baseEval = evals[len(all)-1]
	sess.evals = evals[:len(sess.variants)]
	sess.summary = sum
	sess.degraded = err != nil || sum.Confidence < 1 || len(sum.Diagnostics) > 0
	if err != nil {
		sess.errMsg = err.Error()
	}
	// A fully warm run never invoked the engine, so synthesize the final
	// progress from the summary.
	sess.progress = explore.Progress{
		Done: sum.Total, Total: sum.Total,
		Replayed: sum.FromJournal, Stored: sum.FromStore,
		Retried: sess.progress.Retried, Elapsed: time.Since(sess.created),
	}
	if sess.baseEval == nil {
		sess.state = stateFailed
		sess.errMsg = "baseline " + sess.base.Name + " failed to evaluate"
		return
	}
	sess.state = stateDone
}

// runAdaptive executes an "adaptive"-mode session: prepare once, run the
// surrogate-guided search through pipeline.SweepAdaptive (the shared
// store and the session journal ride along on the options, so the
// evaluations compose with the daemon's caching exactly like an exact
// sweep's), evaluate the baseline, and record the round trace + outcome.
// Called with the worker budget already held; the caller owns the
// terminal state on the paths that return early.
func (srv *server) runAdaptive(ctx context.Context, sess *session, opts []pipeline.Option) {
	if srv.store != nil {
		opts = append(opts, pipeline.WithStore(srv.store))
	}
	run, err := pipeline.Prepare(ctx, sess.workload, opts...)
	if err != nil {
		if ctx.Err() != nil {
			sess.setState(stateCanceled)
			return
		}
		sess.fail(err)
		return
	}
	aopt := explore.AdaptiveOptions{
		Seed:     sess.req.AdaptiveSeed,
		MaxEvals: sess.req.AdaptiveBudget,
		OnRound: func(tr explore.RoundTrace) {
			sess.mu.Lock()
			sess.rounds = append(sess.rounds, tr)
			sess.mu.Unlock()
		},
	}
	evals, ares, err := pipeline.SweepAdaptive(ctx, run, sess.variants, sess.axes, aopt, opts...)
	if err != nil && !tolerable(err) || evals == nil {
		if ctx.Err() != nil {
			sess.setState(stateCanceled)
			return
		}
		sess.fail(err)
		return
	}
	baseEval, berr := pipeline.Evaluate(ctx, run, sess.base, opts...)
	if berr != nil {
		if ctx.Err() != nil {
			sess.setState(stateCanceled)
			return
		}
		sess.fail(berr)
		return
	}

	sum := &pipeline.SweepSummary{
		Workload:    run.Workload.Name,
		Total:       len(sess.variants),
		Confidence:  run.Confidence,
		Diagnostics: run.Diagnostics,
	}
	for _, ev := range evals {
		if ev == nil {
			continue
		}
		switch ev.Provenance {
		case pipeline.FromJournal:
			sum.FromJournal++
		case pipeline.FromStore:
			sum.FromStore++
		default:
			sum.Computed++
		}
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.baseEval = baseEval
	sess.evals = evals
	sess.summary = sum
	sess.adaptive = ares
	sess.degraded = err != nil || run.Confidence < 1 || len(run.Diagnostics) > 0
	if err != nil {
		sess.errMsg = err.Error()
	}
	sess.progress = explore.Progress{
		Done: ares.Evals, Total: ares.GridSize,
		Replayed: sum.FromJournal, Stored: sum.FromStore,
		Retried: sess.progress.Retried, Elapsed: time.Since(sess.created),
	}
	sess.state = stateDone
}

func (s *session) fail(err error) {
	s.mu.Lock()
	s.state = stateFailed
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// tolerable reports whether a sweep error leaves usable results: poisoned
// variants (reported per-variant), or journal/store degradation (results
// complete, durability partial).
func tolerable(err error) bool {
	var sweepErr *explore.SweepError
	return errors.As(err, &sweepErr) ||
		errors.Is(err, explore.ErrJournalDegraded) ||
		errors.Is(err, store.ErrDegraded)
}

// ranked returns the indices of the session's healthy evals in ascending
// projected-time order.
func (s *session) ranked() []int {
	var order []int
	for i, ev := range s.evals {
		if ev != nil {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.evals[order[a]].Analysis.TotalTime < s.evals[order[b]].Analysis.TotalTime
	})
	return order
}

// analyses returns the session's analyses index-aligned with its variants
// (nil for failed variants) — the shape explore.Pareto consumes.
func (s *session) analyses() []*hotspot.Analysis {
	out := make([]*hotspot.Analysis, len(s.evals))
	for i, ev := range s.evals {
		if ev != nil {
			out[i] = ev.Analysis
		}
	}
	return out
}

// badRequest marks a client error (HTTP 400).
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

func badRequest(msg string) error { return &requestError{msg: msg} }
