package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"skope/internal/guard"
	"skope/internal/journal"
)

// testServer builds a daemon around a temp data dir. storePath == "" runs
// without the shared store.
func testServer(t *testing.T, dataDir, storePath string, budget int) (*server, *httptest.Server) {
	t.Helper()
	cfg := daemonConfig{
		addr:       "unused",
		storePath:  storePath,
		dataDir:    dataDir,
		machine:    "bgq",
		maxWorkers: budget,
	}
	cfg.crit.Coverage, cfg.crit.Leanness, cfg.crit.MaxSpots = 0.90, 0.50, 10
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// submit posts a session and returns its ID.
func submit(t *testing.T, base string, req sessionRequest) string {
	t.Helper()
	resp, out := postJSON(t, base+"/v1/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, out)
	}
	return out["id"].(string)
}

// waitState polls the session until it reaches a terminal state.
func waitState(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info := getJSON(t, base+"/v1/sessions/"+id)
		switch info["state"] {
		case stateDone, stateFailed, stateCanceled:
			return info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session %s did not finish", id)
	return nil
}

// streamLines fetches the session's result stream and splits it into
// result lines and the summary trailer (progress lines are dropped).
func streamLines(t *testing.T, base, id, query string) ([]map[string]any, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/results" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var results []map[string]any
	var summary map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch line["type"] {
		case "result":
			results = append(results, line)
		case "summary":
			summary = line
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary trailer")
	}
	return results, summary
}

func sradSession() sessionRequest {
	return sessionRequest{
		Bench: "srad",
		Sweep: []string{"mem-bandwidth=16,32,64", "freq-ghz=1.6,2.4"},
	}
}

func TestHealthzAndParams(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), filepath.Join(t.TempDir(), "cas"), 2)
	h := getJSON(t, ts.URL+"/v1/healthz")
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}
	if h["store"] == nil {
		t.Error("healthz missing store stats")
	}
	p := getJSON(t, ts.URL+"/v1/params")
	for _, key := range []string{"benchmarks", "machines", "sweep_parameters", "limit_keys"} {
		if p[key] == nil {
			t.Errorf("params missing %s", key)
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 2)
	id := submit(t, ts.URL, sradSession())
	info := waitState(t, ts.URL, id)
	if info["state"] != stateDone {
		t.Fatalf("session ended %v (%v)", info["state"], info["error"])
	}
	results, summary := streamLines(t, ts.URL, id, "?full=1")
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	prev := 0.0
	for i, r := range results {
		if int(r["rank"].(float64)) != i+1 {
			t.Errorf("rank %v at position %d", r["rank"], i)
		}
		tt := r["total_time_s"].(float64)
		if tt < prev {
			t.Errorf("results not ranked: %g after %g", tt, prev)
		}
		prev = tt
		if r["speedup"].(float64) <= 0 {
			t.Errorf("bad speedup %v", r["speedup"])
		}
		if r["analysis"] == nil {
			t.Errorf("?full=1 line %d missing analysis payload", i)
		}
		if r["provenance"] != "computed" {
			t.Errorf("provenance %v, want computed", r["provenance"])
		}
	}
	if summary["pareto"] == nil || summary["baseline"] != "BlueGene/Q" && summary["baseline"] == "" {
		t.Errorf("summary incomplete: %v", summary)
	}
	if int(summary["total"].(float64)) != 6 {
		t.Errorf("summary total %v", summary["total"])
	}
	// The session list knows it too.
	l := getJSON(t, ts.URL+"/v1/sessions")
	if n := len(l["sessions"].([]any)); n != 1 {
		t.Errorf("list has %d sessions", n)
	}
}

// TestAdaptiveSession drives the "adaptive" session mode end to end:
// the surrogate-guided search runs instead of the exhaustive sweep, the
// NDJSON stream carries the round trace, and the summary reports the
// evaluation savings against the grid size.
func TestAdaptiveSession(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 2)
	id := submit(t, ts.URL, sessionRequest{
		Bench: "sord",
		Sweep: []string{"freq-ghz=1.2,1.6,2.0,2.4", "mem-latency=80,110,150", "hit-l1=0.9,0.95,0.99"},
		Mode:  "adaptive", AdaptiveSeed: 13,
	})
	info := waitState(t, ts.URL, id)
	if info["state"] != stateDone {
		t.Fatalf("adaptive session ended %v (%v)", info["state"], info["error"])
	}
	if info["mode"] != "adaptive" {
		t.Errorf("session mode = %v", info["mode"])
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var results, rounds []map[string]any
	var summary map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch line["type"] {
		case "result":
			results = append(results, line)
		case "round":
			rounds = append(rounds, line)
		case "summary":
			summary = line
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary trailer")
	}

	if summary["mode"] != "adaptive" {
		t.Errorf("summary mode = %v", summary["mode"])
	}
	evals := int(summary["evals"].(float64))
	gridSize := int(summary["grid_size"].(float64))
	if gridSize != 36 {
		t.Errorf("grid_size = %d, want 36", gridSize)
	}
	if evals <= 0 || evals >= gridSize {
		t.Errorf("evals = %d of %d: adaptive session did not save evaluations", evals, gridSize)
	}
	if len(results) != evals {
		t.Errorf("stream carried %d results for %d evaluations", len(results), evals)
	}
	if len(rounds) == 0 {
		t.Fatal("no round lines on the adaptive stream")
	}
	if len(rounds) != int(summary["rounds"].(float64)) {
		t.Errorf("%d round lines, summary says %v", len(rounds), summary["rounds"])
	}
	for i, r := range rounds {
		if int(r["round"].(float64)) != i+1 {
			t.Errorf("round line %d has round %v", i, r["round"])
		}
		if int(r["grid_size"].(float64)) != gridSize {
			t.Errorf("round %d grid_size = %v", i, r["grid_size"])
		}
	}
	last := rounds[len(rounds)-1]
	if int(last["total_evals"].(float64)) != evals {
		t.Errorf("final round total_evals %v != summary evals %d", last["total_evals"], evals)
	}
	// The ranked top result is the incumbent the trace converged on.
	if results[0]["machine_fingerprint"] != last["incumbent_fp"] {
		t.Errorf("top result %v != final incumbent %v", results[0]["machine_fingerprint"], last["incumbent_fp"])
	}

	// Unknown modes are rejected up front.
	resp2, out := postJSON(t, ts.URL+"/v1/sessions", sessionRequest{
		Bench: "sord", Sweep: []string{"freq-ghz=1.6,2.4"}, Mode: "exhaustive-ish",
	})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode accepted: %d (%v)", resp2.StatusCode, out)
	}
}

func TestSessionValidation(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 1)
	bad := []sessionRequest{
		{},              // no workload
		{Bench: "srad"}, // no axes
		{Bench: "nosuch", Sweep: []string{"mem-bandwidth=1,2"}},
		{Bench: "srad", Source: "x", Sweep: []string{"mem-bandwidth=1,2"}},
		{Bench: "srad", Sweep: []string{"nosuch-param=1,2"}},
		{Bench: "srad", Sweep: []string{"mem-bandwidth=1,2"}, Machine: "vax"},
		{Bench: "srad", Sweep: []string{"mem-bandwidth=1,2"}, Limits: "nosuch=1"},
		{Bench: "srad", Sweep: []string{"mem-bandwidth=1,2"}, VariantTimeout: "soon"},
		{Bench: "srad", Sweep: []string{"mem-bandwidth=1,2"}, JournalID: "../escape"},
	}
	for i, req := range bad {
		resp, out := postJSON(t, ts.URL+"/v1/sessions", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("request %d: status %d (%v)", i, resp.StatusCode, out)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
	if r, err := http.Get(ts.URL + "/v1/sessions/s-999999"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Errorf("missing session lookup: %v %v", r.StatusCode, err)
	} else {
		r.Body.Close()
	}
}

// TestConcurrentSessions is the scale acceptance: four sessions submitted
// back-to-back run under the shared worker budget — with per-session guard
// limits isolating one deliberately broken session — and all reach a
// terminal state with correct results.
func TestConcurrentSessions(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), filepath.Join(t.TempDir(), "cas"), 8)
	reqs := []sessionRequest{
		{Bench: "srad", Sweep: []string{"mem-bandwidth=16,32,64"}, Workers: 2},
		{Bench: "sord", Sweep: []string{"net-latency-us=1,2,4"}, Workers: 2},
		{Bench: "cfd", Sweep: []string{"freq-ghz=1.6,2.4"}, Workers: 2},
		// Per-session limits: this one is strangled and must fail alone.
		{Bench: "chargei", Sweep: []string{"mem-bandwidth=16,32"}, Workers: 2, Limits: "bet-nodes=2"},
	}
	ids := make([]string, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		ids[i] = submit(t, ts.URL, req)
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			waitState(t, ts.URL, id)
		}(ids[i])
	}
	wg.Wait()
	for i, id := range ids {
		info := getJSON(t, ts.URL+"/v1/sessions/"+id)
		if i == 3 {
			if info["state"] != stateFailed {
				t.Errorf("limited session ended %v, want failed", info["state"])
			} else if msg, _ := info["error"].(string); !strings.Contains(msg, "limit") {
				t.Errorf("limited session error %q does not name the limit", msg)
			}
			continue
		}
		if info["state"] != stateDone {
			t.Errorf("session %s ended %v (%v)", id, info["state"], info["error"])
		}
	}
	h := getJSON(t, ts.URL+"/v1/healthz")
	if int(h["busy_workers"].(float64)) != 0 {
		t.Errorf("worker tokens leaked: %v", h["busy_workers"])
	}
}

// TestCancelQueuedSession: a session waiting on the worker budget can be
// canceled before it ever runs.
func TestCancelQueuedSession(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 1)
	// Occupy the whole budget with a real sweep...
	first := submit(t, ts.URL, sessionRequest{
		Bench: "srad", Sweep: []string{"mem-bandwidth=8,12,16,24,32,48,64,96"},
	})
	// ...then cancel a queued session before the budget frees up.
	queued := submit(t, ts.URL, sradSession())
	resp, out := postJSON(t, ts.URL+"/v1/sessions/"+queued+"/cancel", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %v", resp.StatusCode, out)
	}
	if out["state"] != stateCanceled {
		t.Errorf("canceled session state %v", out["state"])
	}
	_, summary := streamLines(t, ts.URL, queued, "")
	if summary["state"] != stateCanceled {
		t.Errorf("stream summary state %v", summary["state"])
	}
	if info := waitState(t, ts.URL, first); info["state"] != stateDone {
		t.Errorf("first session ended %v", info["state"])
	}
}

// TestSharedStoreAcrossSessions: a second identical session is served
// entirely from the store the first one populated — preparation skipped,
// zero model builds, bit-identical result lines.
func TestSharedStoreAcrossSessions(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), filepath.Join(t.TempDir(), "cas"), 4)
	req := sradSession()

	cold := submit(t, ts.URL, req)
	if info := waitState(t, ts.URL, cold); info["state"] != stateDone {
		t.Fatalf("cold session ended %v (%v)", info["state"], info["error"])
	}
	coldResults, coldSummary := streamLines(t, ts.URL, cold, "?full=1")
	if coldSummary["skipped_prepare"] != false {
		t.Errorf("cold session skipped preparation")
	}

	disarm := guard.Arm("core.body", func(detail string) {
		t.Errorf("warm session built a BET (at %s)", detail)
	})
	defer disarm()
	warm := submit(t, ts.URL, req)
	if info := waitState(t, ts.URL, warm); info["state"] != stateDone {
		t.Fatalf("warm session ended %v (%v)", info["state"], info["error"])
	}
	warmResults, warmSummary := streamLines(t, ts.URL, warm, "?full=1")
	if warmSummary["skipped_prepare"] != true {
		t.Errorf("warm session did not skip preparation: %v", warmSummary)
	}
	if warmSummary["from_store"].(float64) == 0 {
		t.Errorf("warm session not served from store: %v", warmSummary)
	}
	if len(warmResults) != len(coldResults) {
		t.Fatalf("result counts differ: %d vs %d", len(warmResults), len(coldResults))
	}
	for i := range coldResults {
		c, w := coldResults[i], warmResults[i]
		if w["provenance"] != "store" {
			t.Errorf("warm result %d provenance %v", i, w["provenance"])
		}
		// Identical content, different provenance.
		for _, key := range []string{"variant", "total_time_s", "speedup", "confidence"} {
			if c[key] != w[key] {
				t.Errorf("result %d field %s drifted: %v vs %v", i, key, c[key], w[key])
			}
		}
		ca, _ := json.Marshal(c["analysis"])
		wa, _ := json.Marshal(w["analysis"])
		if !bytes.Equal(ca, wa) {
			t.Errorf("result %d analysis not identical", i)
		}
	}
}

// TestResumeAfterRestart is the durability acceptance: a journaled session
// on one daemon, the daemon dies, and a fresh daemon over the same data
// dir resumes the sweep by journal ID — every journaled variant replayed
// (zero recomputation) in its original completion order, with identical
// results.
func TestResumeAfterRestart(t *testing.T) {
	dataDir := t.TempDir()
	req := sradSession()
	req.JournalID = "night-run"

	srvA, tsA := testServer(t, dataDir, "", 4)
	id := submit(t, tsA.URL, req)
	if info := waitState(t, tsA.URL, id); info["state"] != stateDone {
		t.Fatalf("first session ended %v (%v)", info["state"], info["error"])
	}
	firstResults, _ := streamLines(t, tsA.URL, id, "")
	tsA.Close()
	srvA.Close() // the daemon "kill"

	srvB, tsB := testServer(t, dataDir, "", 4)
	defer srvB.Close()
	id2 := submit(t, tsB.URL, req)
	info := waitState(t, tsB.URL, id2)
	if info["state"] != stateDone {
		t.Fatalf("resumed session ended %v (%v)", info["state"], info["error"])
	}
	results, summary := streamLines(t, tsB.URL, id2, "")
	if n := int(summary["from_journal"].(float64)); n < len(results) {
		t.Errorf("only %d of %d variants replayed from journal", n, len(results))
	}
	for i := range firstResults {
		if results[i]["provenance"] != "journal" {
			t.Errorf("resumed result %d provenance %v", i, results[i]["provenance"])
		}
		for _, key := range []string{"variant", "total_time_s", "confidence"} {
			if firstResults[i][key] != results[i][key] {
				t.Errorf("resumed result %d field %s drifted", i, key)
			}
		}
	}

	// The resumed session reports the journal's original completion order.
	order, ok := summary["replay_order"].([]any)
	if !ok || len(order) == 0 {
		t.Fatalf("resumed summary has no replay_order: %v", summary)
	}
	j, err := journal.Open(filepath.Join(dataDir, "night-run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	entries := j.Entries()
	if len(entries) != len(order) {
		t.Fatalf("replay_order has %d keys, journal %d", len(order), len(entries))
	}
	for i, e := range entries {
		if order[i].(string) != e.Key {
			t.Errorf("replay_order[%d] = %v, journal order %s", i, order[i], e.Key)
		}
	}
}

// TestSubmittedSource: sessions can carry minilang source instead of a
// named benchmark.
func TestSubmittedSource(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 2)
	id := submit(t, ts.URL, sessionRequest{
		Source: `
global n: int = 64;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = exp(a[i]) * 0.5;
  }
}
`,
		Sweep: []string{"mem-bandwidth=16,32"},
	})
	if info := waitState(t, ts.URL, id); info["state"] != stateDone {
		t.Fatalf("source session ended %v (%v)", info["state"], info["error"])
	}
	results, _ := streamLines(t, ts.URL, id, "")
	if len(results) != 2 {
		t.Errorf("got %d results, want 2", len(results))
	}
}
