package main

// Tests of the sharded-job surface and the drain behavior. Workers here
// are in-process shard.Worker instances speaking real HTTP to the
// daemon's handler — the same protocol `skoped -worker` speaks.

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"skope/internal/guard"
	"skope/internal/journal"
	"skope/internal/shard"
)

func TestShardJobLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	srv, ts := testServer(t, dataDir, filepath.Join(t.TempDir(), "cas"), 2)

	resp, out := postJSON(t, ts.URL+"/v1/shards", shardRequest{
		Bench:     "sord",
		Sweep:     []string{"mem-bandwidth=16,32"},
		ShardSize: 1,
		Lease:     "5s",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, out)
	}
	status := out["status"].(map[string]any)
	jobID := status["job"].(string)
	spec := out["spec"].(map[string]any)
	if spec["layout"] == "" || spec["layout"] == nil {
		t.Fatal("job spec missing layout fingerprint")
	}
	if n := len(out["shards"].([]any)); n != 2 {
		t.Fatalf("got %d shards, want 2", n)
	}

	// The job is listed, and harvesting before completion is refused.
	l := getJSON(t, ts.URL+"/v1/shards")
	if n := len(l["jobs"].([]any)); n != 1 {
		t.Fatalf("job list has %d jobs", n)
	}
	hresp, _ := postJSON(t, ts.URL+"/v1/shards/"+jobID+"/harvest", struct{}{})
	if hresp.StatusCode != http.StatusConflict {
		t.Fatalf("harvest before done: status %d", hresp.StatusCode)
	}

	// One in-process worker over real HTTP — what `skoped -worker` runs.
	w := &shard.Worker{
		Client:  &shard.Client{BaseURL: ts.URL},
		JobID:   jobID,
		ID:      "w1",
		DataDir: t.TempDir(),
		Poll:    10 * time.Millisecond,
	}
	stats, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Variants != 2 {
		t.Fatalf("worker stats = %+v, want 2 variants", stats)
	}
	detail := getJSON(t, ts.URL+"/v1/shards/"+jobID)
	if done := detail["status"].(map[string]any)["done"]; done != true {
		t.Fatalf("job not done: %v", detail["status"])
	}

	// Harvest: merged journal under -data-dir, results replayed into the
	// shared store. Harvesting twice returns the same (cached) outcome.
	hresp, hout := postJSON(t, ts.URL+"/v1/shards/"+jobID+"/harvest", struct{}{})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("harvest: status %d: %v", hresp.StatusCode, hout)
	}
	if int(hout["records"].(float64)) != 2 || int(hout["from_journal"].(float64)) != 2 {
		t.Fatalf("harvest = %v, want 2 records all from journal", hout)
	}
	mergedPath := filepath.Join(dataDir, jobID+".journal")
	var n int
	if _, err := journal.Scan(mergedPath, func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("merged journal has %d records, want 2", n)
	}
	if _, again := postJSON(t, ts.URL+"/v1/shards/"+jobID+"/harvest", struct{}{}); again["records"].(float64) != 2 {
		t.Fatalf("second harvest = %v", again)
	}
	if srv.store.Len() == 0 {
		t.Fatal("harvest stored nothing in the shared store")
	}

	// The store is now warm for sessions: the same sweep is served from
	// the sharded job's results with zero recomputation.
	id := submit(t, ts.URL, sessionRequest{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}})
	info := waitState(t, ts.URL, id)
	if info["state"] != stateDone {
		t.Fatalf("session ended %v (%v)", info["state"], info["error"])
	}
	_, summary := streamLines(t, ts.URL, id, "")
	if int(summary["from_store"].(float64)) < 2 {
		t.Errorf("session not served from harvested store: %v", summary)
	}
}

// TestShardJobRecoveryAcrossRestart kills the daemon mid-job and builds a
// fresh one on the same -data-dir: the coordinator log rebuilds the job,
// healthz reports the recovery, the same worker reconnects and finishes
// without re-evaluating anything it journaled, and harvest — which must
// re-prepare the workload lazily, since the recovered job has none —
// produces the full merged journal and retires the coordinator log.
func TestShardJobRecoveryAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sharded sweep across a daemon restart")
	}
	dataDir := t.TempDir()
	workerDir := t.TempDir()
	_, ts1 := testServer(t, dataDir, "", 2)

	// Slow evaluations down enough that the kill lands mid-job.
	disarm := guard.Arm("explore.evaluate", func(string) { time.Sleep(50 * time.Millisecond) })
	defer disarm()

	resp, out := postJSON(t, ts1.URL+"/v1/shards", shardRequest{
		Bench:     "sord",
		Sweep:     []string{"mem-bandwidth=16,32,64,96"},
		ShardSize: 1,
		Lease:     "2s",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, out)
	}
	jobID := out["status"].(map[string]any)["job"].(string)
	logPath := filepath.Join(dataDir, jobID+".coordlog")
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("no coordinator log after submit: %v", err)
	}

	// The worker runs until at least one shard is durably complete, then
	// its context is cut — standing in for the whole machine pausing while
	// the daemon dies.
	wctx, stop := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w := &shard.Worker{
			Client:  &shard.Client{BaseURL: ts1.URL, Timeout: 5 * time.Second},
			JobID:   jobID,
			ID:      "w1",
			DataDir: workerDir,
			Poll:    10 * time.Millisecond,
		}
		_, _ = w.Run(wctx)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		detail := getJSON(t, ts1.URL+"/v1/shards/"+jobID)
		st := detail["status"].(map[string]any)
		if st["completed"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard completed in time: %v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	<-workerDone
	ts1.Close() // the daemon dies; its t.Cleanup close becomes a no-op

	// The restart: a fresh daemon on the same -data-dir recovers the job.
	srv2, ts2 := testServer(t, dataDir, "", 2)
	if srv2.recoveredJobs != 1 {
		t.Fatalf("recovered %d jobs, want 1", srv2.recoveredJobs)
	}
	h := getJSON(t, ts2.URL+"/v1/healthz")
	shardsInfo, ok := h["shards"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no shards section: %v", h)
	}
	if shardsInfo["recovered_jobs"].(float64) != 1 || shardsInfo["recovered_records"].(float64) < 1 {
		t.Fatalf("healthz shards = %v, want a recovered job with records", shardsInfo)
	}

	// The same worker reconnects to the new daemon and finishes. Replaying
	// its own journal covers anything it evaluated before the cut; the
	// recovered coordinator serves completed shards from the log.
	w2 := &shard.Worker{
		Client:  &shard.Client{BaseURL: ts2.URL, Timeout: 5 * time.Second},
		JobID:   jobID,
		ID:      "w1",
		DataDir: workerDir,
		Poll:    10 * time.Millisecond,
	}
	stats, err := w2.Run(context.Background())
	if err != nil {
		t.Fatalf("worker after restart: %v (stats %+v)", err, stats)
	}

	// Harvest on the recovered daemon: lazy re-prepare, full merge, log
	// retired.
	hresp, hout := postJSON(t, ts2.URL+"/v1/shards/"+jobID+"/harvest", struct{}{})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("harvest: status %d: %v", hresp.StatusCode, hout)
	}
	if int(hout["records"].(float64)) != 4 {
		t.Fatalf("harvest = %v, want 4 records", hout)
	}
	var n int
	if _, err := journal.Scan(filepath.Join(dataDir, jobID+".journal"), func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("merged journal has %d records, want 4", n)
	}
	if _, err := os.Stat(logPath); !os.IsNotExist(err) {
		t.Fatalf("coordinator log not retired after harvest: %v", err)
	}
}

func TestShardSubmitValidation(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 1)
	cases := []shardRequest{
		{Sweep: []string{"mem-bandwidth=16,32"}},                                     // no workload
		{Bench: "sord"},                                                              // no sweep
		{Bench: "sord", Sweep: []string{"bogus-param=1"}},                            // unknown axis
		{Bench: "nosuch", Sweep: []string{"mem-bandwidth=16,32"}},                    // unknown bench
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, Lease: "oops"},       // bad lease
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, Lease: "10ms"},       // lease too short
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, Machine: "vax"},      // unknown machine
		{Bench: "sord", Source: "x", Sweep: []string{"mem-bandwidth=16,32"}},         // both workloads
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, VariantTimeout: "z"}, // bad timeout
	}
	for i, req := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/shards", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%v), want 400", i, resp.StatusCode, out)
		}
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts := testServer(t, t.TempDir(), "", 1)

	// A fabricated in-flight session: drain must wait for its done signal.
	hang := &session{id: "s-hang", state: stateRunning, done: make(chan struct{})}
	srv.mu.Lock()
	srv.sessions[hang.id] = hang
	srv.mu.Unlock()

	srv.beginDrain()
	if h := getJSON(t, ts.URL+"/v1/healthz"); h["status"] != "draining" {
		t.Errorf("healthz during drain = %v", h["status"])
	}
	// New submissions are refused with 503...
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", sradSession())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("session submit during drain: status %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/shards", shardRequest{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shard submit during drain: status %d, want 503", resp.StatusCode)
	}
	// ...while reads keep serving.
	if p := getJSON(t, ts.URL+"/v1/params"); p["benchmarks"] == nil {
		t.Error("params stopped serving during drain")
	}

	// awaitSessions times out while the session runs, succeeds once done.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if srv.awaitSessions(ctx) {
		t.Error("awaitSessions reported drained with a session in flight")
	}
	close(hang.done)
	if !srv.awaitSessions(context.Background()) {
		t.Error("awaitSessions failed with all sessions done")
	}

	// Clean up the fabricated session so the shared Close path (which
	// waits on done and calls cancel) stays happy.
	srv.mu.Lock()
	delete(srv.sessions, hang.id)
	srv.mu.Unlock()
}
