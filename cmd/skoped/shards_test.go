package main

// Tests of the sharded-job surface and the drain behavior. Workers here
// are in-process shard.Worker instances speaking real HTTP to the
// daemon's handler — the same protocol `skoped -worker` speaks.

import (
	"context"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"skope/internal/journal"
	"skope/internal/shard"
)

func TestShardJobLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	srv, ts := testServer(t, dataDir, filepath.Join(t.TempDir(), "cas"), 2)

	resp, out := postJSON(t, ts.URL+"/v1/shards", shardRequest{
		Bench:     "sord",
		Sweep:     []string{"mem-bandwidth=16,32"},
		ShardSize: 1,
		Lease:     "5s",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, out)
	}
	status := out["status"].(map[string]any)
	jobID := status["job"].(string)
	spec := out["spec"].(map[string]any)
	if spec["layout"] == "" || spec["layout"] == nil {
		t.Fatal("job spec missing layout fingerprint")
	}
	if n := len(out["shards"].([]any)); n != 2 {
		t.Fatalf("got %d shards, want 2", n)
	}

	// The job is listed, and harvesting before completion is refused.
	l := getJSON(t, ts.URL+"/v1/shards")
	if n := len(l["jobs"].([]any)); n != 1 {
		t.Fatalf("job list has %d jobs", n)
	}
	hresp, _ := postJSON(t, ts.URL+"/v1/shards/"+jobID+"/harvest", struct{}{})
	if hresp.StatusCode != http.StatusConflict {
		t.Fatalf("harvest before done: status %d", hresp.StatusCode)
	}

	// One in-process worker over real HTTP — what `skoped -worker` runs.
	w := &shard.Worker{
		Client:  &shard.Client{BaseURL: ts.URL},
		JobID:   jobID,
		ID:      "w1",
		DataDir: t.TempDir(),
		Poll:    10 * time.Millisecond,
	}
	stats, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Variants != 2 {
		t.Fatalf("worker stats = %+v, want 2 variants", stats)
	}
	detail := getJSON(t, ts.URL+"/v1/shards/"+jobID)
	if done := detail["status"].(map[string]any)["done"]; done != true {
		t.Fatalf("job not done: %v", detail["status"])
	}

	// Harvest: merged journal under -data-dir, results replayed into the
	// shared store. Harvesting twice returns the same (cached) outcome.
	hresp, hout := postJSON(t, ts.URL+"/v1/shards/"+jobID+"/harvest", struct{}{})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("harvest: status %d: %v", hresp.StatusCode, hout)
	}
	if int(hout["records"].(float64)) != 2 || int(hout["from_journal"].(float64)) != 2 {
		t.Fatalf("harvest = %v, want 2 records all from journal", hout)
	}
	mergedPath := filepath.Join(dataDir, jobID+".journal")
	var n int
	if _, err := journal.Scan(mergedPath, func(string, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("merged journal has %d records, want 2", n)
	}
	if _, again := postJSON(t, ts.URL+"/v1/shards/"+jobID+"/harvest", struct{}{}); again["records"].(float64) != 2 {
		t.Fatalf("second harvest = %v", again)
	}
	if srv.store.Len() == 0 {
		t.Fatal("harvest stored nothing in the shared store")
	}

	// The store is now warm for sessions: the same sweep is served from
	// the sharded job's results with zero recomputation.
	id := submit(t, ts.URL, sessionRequest{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}})
	info := waitState(t, ts.URL, id)
	if info["state"] != stateDone {
		t.Fatalf("session ended %v (%v)", info["state"], info["error"])
	}
	_, summary := streamLines(t, ts.URL, id, "")
	if int(summary["from_store"].(float64)) < 2 {
		t.Errorf("session not served from harvested store: %v", summary)
	}
}

func TestShardSubmitValidation(t *testing.T) {
	_, ts := testServer(t, t.TempDir(), "", 1)
	cases := []shardRequest{
		{Sweep: []string{"mem-bandwidth=16,32"}},                                     // no workload
		{Bench: "sord"},                                                              // no sweep
		{Bench: "sord", Sweep: []string{"bogus-param=1"}},                            // unknown axis
		{Bench: "nosuch", Sweep: []string{"mem-bandwidth=16,32"}},                    // unknown bench
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, Lease: "oops"},       // bad lease
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, Lease: "10ms"},       // lease too short
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, Machine: "vax"},      // unknown machine
		{Bench: "sord", Source: "x", Sweep: []string{"mem-bandwidth=16,32"}},         // both workloads
		{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}, VariantTimeout: "z"}, // bad timeout
	}
	for i, req := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/shards", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%v), want 400", i, resp.StatusCode, out)
		}
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts := testServer(t, t.TempDir(), "", 1)

	// A fabricated in-flight session: drain must wait for its done signal.
	hang := &session{id: "s-hang", state: stateRunning, done: make(chan struct{})}
	srv.mu.Lock()
	srv.sessions[hang.id] = hang
	srv.mu.Unlock()

	srv.beginDrain()
	if h := getJSON(t, ts.URL+"/v1/healthz"); h["status"] != "draining" {
		t.Errorf("healthz during drain = %v", h["status"])
	}
	// New submissions are refused with 503...
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", sradSession())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("session submit during drain: status %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/shards", shardRequest{Bench: "sord", Sweep: []string{"mem-bandwidth=16,32"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shard submit during drain: status %d, want 503", resp.StatusCode)
	}
	// ...while reads keep serving.
	if p := getJSON(t, ts.URL+"/v1/params"); p["benchmarks"] == nil {
		t.Error("params stopped serving during drain")
	}

	// awaitSessions times out while the session runs, succeeds once done.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if srv.awaitSessions(ctx) {
		t.Error("awaitSessions reported drained with a session in flight")
	}
	close(hang.done)
	if !srv.awaitSessions(context.Background()) {
		t.Error("awaitSessions failed with all sessions done")
	}

	// Clean up the fabricated session so the shared Close path (which
	// waits on done and calls cancel) stays happy.
	srv.mu.Lock()
	delete(srv.sessions, hang.id)
	srv.mu.Unlock()
}
