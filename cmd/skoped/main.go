// Command skoped is the long-running analysis service: the skope pipeline
// behind an HTTP/JSON API, with a content-addressed result store shared by
// every session, process, and the skope CLI.
//
// A session is one design-space sweep: a workload (built-in benchmark or
// submitted minilang source), a machine grid around a base preset, and the
// evaluation settings (criteria, guard limits, lenient mode, confidence
// floor). Sessions run concurrently under a global worker budget — each
// session holds its requested workers as tokens of a counting semaphore —
// and their results are served as a chunked JSON-lines stream: progress
// while running, then the ranked variants, then a summary trailer with the
// Pareto frontier.
//
// Every result the daemon computes is written through to the
// content-addressed store (-store). Results are keyed by what they are —
// workload model fingerprint x machine fingerprint x evaluation settings —
// so a session repeating a sweep any other session, process, or CLI run
// has done is served with zero recomputation: the workload is not even
// re-prepared, and the streamed results are bit-identical.
//
// Sessions that name a journal_id additionally append every completed
// variant to a crash-safe journal under -data-dir. After a daemon kill, a
// new session with the same journal_id resumes the sweep: journaled
// variants are replayed bit-identically in their original completion
// order, and only the remainder is computed.
//
// Sharded jobs distribute one sweep across worker processes (possibly on
// other machines). POST /v1/shards creates a coordinated job — the daemon
// prepares the workload, pins its layout fingerprint, and partitions the
// grid into leased shards — and `skoped -worker http://daemon:8080` joins
// as a worker: it leases shards, journals every variant crash-safely, and
// heartbeats; a worker that dies loses its lease and its shards are
// stolen by the survivors under a higher fencing epoch, so the dead
// worker's late reports are rejected instead of merged. POST
// /v1/shards/{job}/harvest merges the results into a journal under
// -data-dir and replays them into the shared store, bit-identical to a
// single-process sweep.
//
// Sharded jobs survive the daemon itself. Each job writes a coordinator
// log (<data-dir>/<job>.coordlog): the spec, every lease grant, and every
// completed shard are fsync'd before the worker hears the acknowledgment.
// At startup the daemon recovers every coordinator log found under
// -data-dir — completed shards come back with zero re-evaluation, live
// leases are honored under their original epochs, and stale workers stay
// fenced — so reconnecting workers just resume. Harvest retires the log.
// Worker RPCs carry a per-attempt deadline (-rpc-timeout) and are retried
// with exponential backoff; the protocol is idempotent under retries, so
// a dropped acknowledgment never double-merges a shard. /v1/healthz
// reports the shard counters (jobs, stale_fenced, recovered_jobs,
// recovered_records, log_degraded) alongside the session gauges.
//
// The daemon sheds load instead of falling over: -max-sessions bounds the
// sessions queued or running at once (excess submissions get 503 with a
// Retry-After hint, same contract as draining), -session-ttl
// garbage-collects finished sessions so the table stays bounded, and
// NDJSON result streams carry a per-write deadline (-stream-write-timeout)
// so a stalled reader is disconnected rather than pinning the stream. A
// background scrubber (-scrub-interval) re-verifies every store record,
// quarantines corrupt ones — visible in /v1/healthz — and lets the next
// matching evaluation transparently recompute and replace them.
//
// On SIGTERM or SIGINT the daemon drains: new session and job submissions
// are refused with 503 while running sessions get up to -drain-timeout to
// finish (result streams and the shard worker protocol keep serving);
// whatever is still running after the timeout is canceled and the daemon
// exits 1 instead of 0.
//
// Usage:
//
//	skoped -addr :8080 -store skoped.cas -data-dir /var/lib/skoped \
//	       [-max-workers 16] [-max-sessions 64] [-session-ttl 1h] \
//	       [-scrub-interval 10m] [-stream-write-timeout 30s] \
//	       [-limits ...] [-lenient] \
//	       [-coverage 0.9] [-leanness 0.5] [-spots 10] [-drain-timeout 30s]
//	skoped -worker http://daemon:8080 [-worker-id w1] [-data-dir /var/lib/skoped] \
//	       [-rpc-timeout 30s]
//
// Endpoints:
//
//	GET  /v1/healthz               liveness + session count (+ draining)
//	GET  /v1/params                benchmarks, machine presets, sweep axes, limit keys
//	POST /v1/sessions              submit a sweep session
//	GET  /v1/sessions              list sessions
//	GET  /v1/sessions/{id}         inspect one session
//	GET  /v1/sessions/{id}/results stream results (chunked JSON lines)
//	POST /v1/sessions/{id}/cancel  cancel a running session
//	POST /v1/shards                create a sharded job
//	GET  /v1/shards                list sharded jobs
//	GET  /v1/shards/{job}          job status, spec, and partition
//	POST /v1/shards/{job}/harvest  merge a done job into the store
//	POST /v1/shards/{job}/...      worker protocol (register, lease, heartbeat, complete, fail)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skope/internal/cliflags"
	"skope/internal/shard"
)

func main() {
	var cfg daemonConfig
	cfg.register(flag.CommandLine)
	flag.Parse()
	if cfg.worker != "" {
		os.Exit(runWorker(cfg))
	}
	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skoped:", err)
		os.Exit(1)
	}
	fmt.Printf("skoped: listening on %s (store %s, data dir %s, worker budget %d)\n",
		cfg.addr, cfg.storePath, cfg.dataDir, cfg.maxWorkers)

	// Header/read/idle timeouts bound what a slow or hostile client can
	// pin (slowloris, abandoned keep-alives). WriteTimeout deliberately
	// stays zero: NDJSON result streams are long-lived by design and get
	// per-write deadlines in handleResults (-stream-write-timeout) instead
	// of a whole-response budget.
	hsrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hsrv.ListenAndServe() }()

	select {
	case err := <-errc:
		srv.Close()
		fmt.Fprintln(os.Stderr, "skoped:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Drain: refuse new submissions, let in-flight sessions finish within
	// the timeout, then shut the listener down and cancel the rest. A
	// second signal aborts immediately via the restored default handler.
	stop()
	srv.beginDrain()
	fmt.Printf("skoped: draining: refusing new submissions, waiting up to %s for running sessions\n",
		cfg.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drained := srv.awaitSessions(dctx)
	_ = hsrv.Shutdown(dctx)
	srv.Close()
	if !drained {
		fmt.Fprintln(os.Stderr, "skoped: drain timeout: canceled remaining sessions")
		os.Exit(1)
	}
	fmt.Println("skoped: drained cleanly")
}

// runWorker is the -worker mode: join the coordinator at the given URL as
// a shard worker and process open jobs until none remain (exit 0) or the
// process is told to stop (SIGTERM/SIGINT also exit 0 — the journals are
// crash-safe and the leases expire, so stopping a worker is always safe).
func runWorker(cfg daemonConfig) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	id := cfg.workerID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client := &shard.Client{BaseURL: strings.TrimRight(cfg.worker, "/"), Timeout: cfg.net.RPCTimeout}
	for {
		jobs, err := client.List(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skoped: worker:", err)
			return 1
		}
		jobID := ""
		for _, st := range jobs {
			if !st.Done {
				jobID = st.JobID
				break
			}
		}
		if jobID == "" {
			fmt.Printf("skoped: worker %s: no open jobs\n", id)
			return 0
		}
		w := &shard.Worker{Client: client, JobID: jobID, ID: id, DataDir: cfg.dataDir, RPCTimeout: cfg.net.RPCTimeout}
		stats, err := w.Run(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Printf("skoped: worker %s: stopped\n", id)
				return 0
			}
			fmt.Fprintf(os.Stderr, "skoped: worker %s: job %s: %v\n", id, jobID, err)
			return 1
		}
		fmt.Printf("skoped: worker %s: job %s done (%d shards, %d variants, %d replayed, %d rpc retries)\n",
			id, jobID, stats.Shards, stats.Variants, stats.Replayed, stats.RPCRetries)
	}
}

// daemonConfig is the daemon's command line. The guard and criteria
// surfaces are the shared cliflags definitions — identical to cmd/skope
// and cmd/skopec — and act as per-session defaults that a session request
// can override.
type daemonConfig struct {
	grd   cliflags.Guard
	crit  cliflags.Criteria
	serve cliflags.Serve
	net   cliflags.Net

	addr         string
	storePath    string
	dataDir      string
	machine      string
	maxWorkers   int
	drainTimeout time.Duration
	worker       string
	workerID     string
}

func (c *daemonConfig) register(fs *flag.FlagSet) {
	c.grd.Register(fs)
	c.crit.Register(fs, 0.90, 0.50, 10)
	c.serve.Register(fs)
	c.net.Register(fs)
	fs.StringVar(&c.addr, "addr", "localhost:8080", "listen address")
	fs.StringVar(&c.storePath, "store", "skoped.cas", "content-addressed result store file shared by all sessions (empty = no store)")
	fs.StringVar(&c.dataDir, "data-dir", ".", "directory for session journals (resume by journal_id) and shard journals")
	fs.StringVar(&c.machine, "machine", "bgq", "default base machine preset for sessions that name none")
	fs.IntVar(&c.maxWorkers, "max-workers", 0, "global worker budget shared by all sessions (0 = GOMAXPROCS)")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "on SIGTERM/SIGINT: refuse new submissions and wait this long for running sessions before shutting down")
	fs.StringVar(&c.worker, "worker", "", "run as a shard worker against the coordinator daemon at this URL instead of serving")
	fs.StringVar(&c.workerID, "worker-id", "", "shard worker identity (default: hostname-pid)")
}
