// Command skoped is the long-running analysis service: the skope pipeline
// behind an HTTP/JSON API, with a content-addressed result store shared by
// every session, process, and the skope CLI.
//
// A session is one design-space sweep: a workload (built-in benchmark or
// submitted minilang source), a machine grid around a base preset, and the
// evaluation settings (criteria, guard limits, lenient mode, confidence
// floor). Sessions run concurrently under a global worker budget — each
// session holds its requested workers as tokens of a counting semaphore —
// and their results are served as a chunked JSON-lines stream: progress
// while running, then the ranked variants, then a summary trailer with the
// Pareto frontier.
//
// Every result the daemon computes is written through to the
// content-addressed store (-store). Results are keyed by what they are —
// workload model fingerprint x machine fingerprint x evaluation settings —
// so a session repeating a sweep any other session, process, or CLI run
// has done is served with zero recomputation: the workload is not even
// re-prepared, and the streamed results are bit-identical.
//
// Sessions that name a journal_id additionally append every completed
// variant to a crash-safe journal under -data-dir. After a daemon kill, a
// new session with the same journal_id resumes the sweep: journaled
// variants are replayed bit-identically in their original completion
// order, and only the remainder is computed.
//
// Usage:
//
//	skoped -addr :8080 -store skoped.cas -data-dir /var/lib/skoped \
//	       [-max-workers 16] [-limits ...] [-lenient] \
//	       [-coverage 0.9] [-leanness 0.5] [-spots 10]
//
// Endpoints:
//
//	GET  /v1/healthz               liveness + session count
//	GET  /v1/params                benchmarks, machine presets, sweep axes, limit keys
//	POST /v1/sessions              submit a sweep session
//	GET  /v1/sessions              list sessions
//	GET  /v1/sessions/{id}         inspect one session
//	GET  /v1/sessions/{id}/results stream results (chunked JSON lines)
//	POST /v1/sessions/{id}/cancel  cancel a running session
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"skope/internal/cliflags"
)

func main() {
	var cfg daemonConfig
	cfg.register(flag.CommandLine)
	flag.Parse()
	srv, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skoped:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("skoped: listening on %s (store %s, data dir %s, worker budget %d)\n",
		cfg.addr, cfg.storePath, cfg.dataDir, cfg.maxWorkers)
	if err := http.ListenAndServe(cfg.addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "skoped:", err)
		os.Exit(1)
	}
}

// daemonConfig is the daemon's command line. The guard and criteria
// surfaces are the shared cliflags definitions — identical to cmd/skope
// and cmd/skopec — and act as per-session defaults that a session request
// can override.
type daemonConfig struct {
	grd  cliflags.Guard
	crit cliflags.Criteria

	addr       string
	storePath  string
	dataDir    string
	machine    string
	maxWorkers int
}

func (c *daemonConfig) register(fs *flag.FlagSet) {
	c.grd.Register(fs)
	c.crit.Register(fs, 0.90, 0.50, 10)
	fs.StringVar(&c.addr, "addr", "localhost:8080", "listen address")
	fs.StringVar(&c.storePath, "store", "skoped.cas", "content-addressed result store file shared by all sessions (empty = no store)")
	fs.StringVar(&c.dataDir, "data-dir", ".", "directory for session journals (resume by journal_id)")
	fs.StringVar(&c.machine, "machine", "bgq", "default base machine preset for sessions that name none")
	fs.IntVar(&c.maxWorkers, "max-workers", 0, "global worker budget shared by all sessions (0 = GOMAXPROCS)")
}
