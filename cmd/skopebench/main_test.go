package main

import (
	"bytes"
	"strings"
	"testing"

	"skope/internal/workloads"
)

// TestRunFullReport drives the entire evaluation once and checks every
// section header appears. This is the repository's broadest integration
// test (all five benchmarks, both machines, every artifact).
func TestRunFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf, workloads.ScaleTest); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"FIG2", "FIG3", "TAB1", "TAB1b", "TAB2", "FIG4", "SENS",
		"FIG5", "FIG10", "FIG11", "FIG12", "FIG13",
		"FIG6", "FIG7", "FIG8", "FIG9", "BETSZ", "QAVG", "ABL", "FUT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %s", want)
		}
	}
	if !strings.Contains(out, "average") {
		t.Error("quality summary lacks average row")
	}
}
