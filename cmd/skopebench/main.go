// Command skopebench regenerates every table and figure of the paper's
// evaluation section on the simulator substrate and prints them in order.
// With -out it additionally writes the full report to a file (used to
// produce EXPERIMENTS.md data).
//
// Usage:
//
//	skopebench [-scale 1] [-out results.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"skope/internal/experiments"
	"skope/internal/report"
	"skope/internal/workloads"
)

func main() {
	var (
		scale = flag.Float64("scale", 1, "workload scale factor")
		out   = flag.String("out", "", "also write the report to this file")
	)
	flag.Parse()
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skopebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := run(w, workloads.Scale(*scale)); err != nil {
		fmt.Fprintln(os.Stderr, "skopebench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scale workloads.Scale) error {
	ctx := experiments.NewContext(scale)
	section := func(title string) { fmt.Fprintf(w, "\n==================== %s ====================\n\n", title) }

	type textExp struct {
		title string
		f     func(*experiments.Context) (string, error)
	}
	type tableExp struct {
		title string
		f     func(*experiments.Context) (*report.Table, error)
	}
	type seriesExp struct {
		title string
		f     func(*experiments.Context) (*report.Series, error)
	}

	for _, e := range []textExp{
		{"FIG2: pedagogical skeleton / BST / BET", experiments.Fig2},
		{"FIG3: individual and merged hot paths", experiments.Fig3},
	} {
		section(e.title)
		s, err := e.f(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, s)
	}

	for _, e := range []tableExp{
		{"TAB1: top-10 hot spots, Prof vs Modl", experiments.Table1},
		{"TAB1b: cross-machine portability", experiments.Table1Portability},
		{"TAB2: CFD top-10 hot spots", experiments.Table2},
		{"FIG4: SORD selection quality incl. cross-machine", experiments.Fig4},
	} {
		section(e.title)
		t, err := e.f(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t)
	}

	for _, e := range []seriesExp{
		{"FIG5: SORD coverage curves on Xeon", experiments.Fig5},
		{"SENS: cache-hit-ratio sensitivity (extension)", experiments.HitRateSensitivity},
		{"FIG10: CFD coverage curves on BG/Q", experiments.Fig10},
		{"FIG11: SRAD coverage curves on BG/Q", experiments.Fig11},
		{"FIG12: CHARGEI coverage curves on BG/Q", experiments.Fig12},
		{"FIG13: STASSUIJ coverage curves on BG/Q", experiments.Fig13},
	} {
		section(e.title)
		s, err := e.f(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, s)
	}

	for _, e := range []tableExp{
		{"FIG6: SORD time breakdown on BG/Q", experiments.Fig6},
		{"FIG7: SORD time breakdown on Xeon", experiments.Fig7},
		{"FIG8: SORD measured issue rate / L1 behaviour", experiments.Fig8},
	} {
		section(e.title)
		t, err := e.f(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t)
	}

	section("FIG9: SORD hot path on BG/Q")
	s, err := experiments.Fig9(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, s)

	for _, e := range []tableExp{
		{"BETSZ: BET size vs source", experiments.BETSizes},
		{"QAVG: selection quality, all cases", experiments.QualitySummary},
		{"ABL: error-source ablations", experiments.Ablations},
		{"FUT: conceptual future-machine projection (extension)", experiments.FutureProjection},
	} {
		section(e.title)
		t, err := e.f(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t)
	}
	return nil
}
