module skope

go 1.22
