GO ?= go

.PHONY: all build vet fmt-check test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# Race-detect the concurrency-heavy packages (worker pools, memo caches).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/explore/...

bench:
	$(GO) test -bench=. -benchmem ./...

check: build vet fmt-check test
