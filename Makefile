GO ?= go

.PHONY: all build vet fmt-check test race bench bench-store bench-shard bench-adaptive bench-smoke chaos chaos-disk chaos-net fuzz-short check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# One gate: vet + the full suite under the race detector (worker pools,
# memo caches, and fault-injection points are all concurrency-sensitive).
test: vet
	$(GO) test -race ./...

# Race-detect the concurrency-heavy packages (worker pools, memo caches).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/explore/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Cold-vs-warm throughput of the content-addressed result store; the
# pinned numbers live in BENCH_store.json.
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepCached' -benchmem ./internal/pipeline/

# 1-vs-4 worker scaling of the sharded sweep protocol (modeled per-eval
# latency; see BENCH_shard.json for why and the pinned numbers).
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedSweep' -benchtime 3x ./internal/shard/

# Exhaustive vs surrogate-guided evals-to-optimum on the 600-variant
# parity grid; the adaptive side asserts it found the exact exhaustive
# optimum. Pinned numbers live in BENCH_adaptive.json.
bench-adaptive:
	$(GO) test -run '^$$' -bench 'BenchmarkAdaptiveVsExhaustive' -benchtime 3x ./internal/explore/

# One-iteration smoke over the store benchmarks: proves the cold and warm
# paths still run (and that warm is actually warm — the benchmark fails if
# preparation is not skipped) without paying for a full measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepCached' -benchtime 1x ./internal/pipeline/

# The shard protocol under fire: the full shard suite with the race
# detector, including the kill-and-resume chaos test (worker subprocesses
# SIGKILLed mid-shard, replacements resume from the journals, merged
# result asserted bit-identical to a single-process sweep).
chaos:
	$(GO) test -race -count=1 ./internal/shard/

# The durability layers under disk fire: the scriptable-fault suites of
# iofault, journal, and store, the pipeline chaos-disk scenarios (failing
# fsync, ENOSPC mid-sweep, torn final record, EIO on reopen — all five
# workloads, bit-identical-or-explicitly-degraded), and the daemon
# robustness tests (overload shedding, session GC, stalled streams, the
# self-healing scrubber), all under the race detector.
chaos-disk:
	$(GO) test -race -count=1 ./internal/iofault/ ./internal/journal/ ./internal/store/
	$(GO) test -race -count=1 -run 'TestChaosDisk' ./internal/pipeline/
	$(GO) test -race -count=1 -run 'TestOverloadShedding|TestSessionGC|TestStalledStreamReader|TestScrubberQuarantinesAndHeals' ./cmd/skoped/

# The distributed protocol under network fire: the netfault seam's own
# suite, the shard chaos-net scenarios (partition-then-fence, the RPC
# fault grid with dropped/duplicated/truncated/500'd calls, coordinator
# killed and restarted mid-job from its log), the coordinator crash-safety
# unit tests, and the daemon restart-recovery test — all under the race
# detector. Every scenario asserts the merged result is bit-identical to
# a single-process sweep with zero re-evaluation of durable work.
chaos-net:
	$(GO) test -race -count=1 ./internal/netfault/
	$(GO) test -race -count=1 -run 'TestChaosNet|TestCoordinatorLog|TestCoordinatorRecovery|TestRecoverEmptyLog' ./internal/shard/
	$(GO) test -race -count=1 -run 'TestShardJobRecoveryAcrossRestart' ./cmd/skoped/

# Short fuzz smoke over the three parser frontiers and the adaptive
# planner's axis-spec surface (10s per target).
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test ./internal/expr -run FuzzExprParse -fuzz FuzzExprParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/skeleton -run FuzzSkeletonParse -fuzz FuzzSkeletonParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/minilang -run FuzzMinilangParse -fuzz FuzzMinilangParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/explore -run '^$$' -fuzz FuzzAdaptivePlannerAxes -fuzztime $(FUZZTIME)

check: build vet fmt-check test
