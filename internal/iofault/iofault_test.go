package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openRW(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestDiskPassthrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, Disk, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "he" {
		t.Fatalf("ReadFile = %q, %v; want \"he\"", data, err)
	}
}

func TestFailNthWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	ff := New(nil, Plan{FailWriteAt: 2})
	f := openRW(t, ff, path)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2 = %v; want ErrInjected wrapping EIO", err)
	}
	if n != 0 {
		t.Fatalf("write 2 wrote %d bytes; want 0 (no ShortWrite)", n)
	}
	if _, err := f.Write([]byte("cccc")); err != nil {
		t.Fatalf("write 3: %v (only the Nth write fails)", err)
	}
	if st := ff.Stats(); st.Writes != 3 || st.Injected != 1 || st.BytesWritten != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	ff := New(nil, Plan{FailWriteAt: 1, ShortWrite: true})
	f := openRW(t, ff, path)
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v; want ErrInjected", err)
	}
	if n != 4 {
		t.Fatalf("short write kept %d bytes; want 4", n)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "abcd" {
		t.Fatalf("on disk: %q; want the torn prefix \"abcd\"", data)
	}
}

func TestByteBudgetENOSPC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	ff := New(nil, Plan{ByteBudget: 10})
	f := openRW(t, ff, path)
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := f.Write([]byte("90abcdef"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v; want injected ENOSPC", err)
	}
	if n != 2 {
		t.Fatalf("fill write kept %d bytes; want 2 (budget filled exactly)", n)
	}
	// The disk stays full: later writes fail with zero bytes kept.
	if n, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) || n != 0 {
		t.Fatalf("post-full write = %d, %v; want 0, ENOSPC", n, err)
	}
}

func TestFailSyncAndTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	ff := New(nil, Plan{FailSyncAt: 1, FailTruncate: true})
	f := openRW(t, ff, path)
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1 = %v; want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 2 = %v; only the Nth sync fails", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate = %v; want ErrInjected (FailTruncate)", err)
	}
}

func TestFailOpen(t *testing.T) {
	dir := t.TempDir()
	ff := New(nil, Plan{FailOpenAt: 2, OpenErr: syscall.EACCES})
	if _, err := ff.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		t.Fatalf("open 1: %v", err)
	}
	_, err := ff.Open(filepath.Join(dir, "a"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EACCES) {
		t.Fatalf("open 2 = %v; want injected EACCES", err)
	}
}
