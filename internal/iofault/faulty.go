package iofault

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
)

// ErrInjected marks every error a Faulty FS manufactures, so tests can
// tell an injected fault from a real one with errors.Is. Injected errors
// also wrap their OS-level cause (syscall.EIO, syscall.ENOSPC, or the
// error the Plan names), so code that classifies by errno sees exactly
// what a real disk would have produced.
var ErrInjected = errors.New("iofault: injected fault")

// Plan scripts a Faulty FS. Counters are 1-based and global across every
// file the FS has opened — "fail the 3rd write" means the 3rd write
// issued through this FS, wherever it lands — which keeps fault timing
// deterministic for a single-threaded writer like the journal. Zero
// values mean "never fail".
type Plan struct {
	// FailWriteAt fails the Nth Write with WriteErr (default EIO).
	FailWriteAt int
	// ShortWrite makes the failing write a torn one: roughly half the
	// bytes reach the file before the error — the footprint of a crash
	// or I/O error mid-frame.
	ShortWrite bool
	WriteErr   error

	// FailSyncAt fails the Nth Sync with SyncErr (default EIO). The
	// preceding Write succeeds, so the bytes are in the page cache but
	// never acknowledged durable — the fsyncgate shape.
	FailSyncAt int
	SyncErr    error

	// FailOpenAt fails the Nth Open/OpenFile with OpenErr (default EIO).
	FailOpenAt int
	OpenErr    error

	// FailTruncate fails every Truncate — blocking, e.g., the journal's
	// post-failure rollback so the torn frame stays on disk.
	FailTruncate bool

	// ByteBudget is the disk's remaining capacity: once cumulative bytes
	// written reach it, writes fill the budget exactly and then fail with
	// ENOSPC. 0 means unlimited.
	ByteBudget int64
}

// Stats counts what flowed through a Faulty FS.
type Stats struct {
	Opens, Writes, Syncs int
	BytesWritten         int64
	// Injected counts faults actually delivered.
	Injected int
}

// Faulty wraps a base FS (nil = Disk) and delivers the Plan's faults at
// their scripted points. Safe for concurrent use; the shared counters
// make concurrent fault timing first-come-first-served.
type Faulty struct {
	base FS

	mu   sync.Mutex
	plan Plan
	st   Stats
}

// New returns a Faulty FS over base executing plan.
func New(base FS, plan Plan) *Faulty {
	if base == nil {
		base = Disk
	}
	return &Faulty{base: base, plan: plan}
}

// Stats returns a snapshot of the counters.
func (ff *Faulty) Stats() Stats {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.st
}

// injected manufactures one fault error: ErrInjected wrapping the
// OS-level cause so both errors.Is checks hold.
func injected(op string, cause, dflt error) error {
	if cause == nil {
		cause = dflt
	}
	return fmt.Errorf("%w: %s: %w", ErrInjected, op, cause)
}

func (ff *Faulty) open(name string, real func() (File, error)) (File, error) {
	ff.mu.Lock()
	ff.st.Opens++
	if ff.plan.FailOpenAt > 0 && ff.st.Opens == ff.plan.FailOpenAt {
		ff.st.Injected++
		ff.mu.Unlock()
		return nil, injected("open "+name, ff.plan.OpenErr, syscall.EIO)
	}
	ff.mu.Unlock()
	f, err := real()
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: ff, f: f}, nil
}

func (ff *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return ff.open(name, func() (File, error) { return ff.base.OpenFile(name, flag, perm) })
}

func (ff *Faulty) Open(name string) (File, error) {
	return ff.open(name, func() (File, error) { return ff.base.Open(name) })
}

// faultyFile intercepts the mutating operations; reads and seeks pass
// through untouched.
type faultyFile struct {
	fs *Faulty
	f  File
}

func (f *faultyFile) Read(p []byte) (int, error)                { return f.f.Read(p) }
func (f *faultyFile) Seek(off int64, whence int) (int64, error) { return f.f.Seek(off, whence) }
func (f *faultyFile) Close() error                              { return f.f.Close() }

func (f *faultyFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.st.Writes++
	plan := &f.fs.plan

	// A scripted write fault or an exhausted byte budget turns this write
	// into a partial (possibly empty) one followed by the fault error.
	var ferr error
	keep := 0
	switch {
	case plan.FailWriteAt > 0 && f.fs.st.Writes == plan.FailWriteAt:
		ferr = injected("write", plan.WriteErr, syscall.EIO)
		if plan.ShortWrite {
			keep = len(p) / 2
		}
	case plan.ByteBudget > 0 && f.fs.st.BytesWritten+int64(len(p)) > plan.ByteBudget:
		ferr = injected("write", nil, syscall.ENOSPC)
		if keep = int(plan.ByteBudget - f.fs.st.BytesWritten); keep < 0 {
			keep = 0
		}
	}
	if ferr != nil {
		f.fs.st.Injected++
		n := 0
		if keep > 0 {
			n, _ = f.f.Write(p[:keep])
		}
		f.fs.st.BytesWritten += int64(n)
		return n, ferr
	}
	n, err := f.f.Write(p)
	f.fs.st.BytesWritten += int64(n)
	return n, err
}

func (f *faultyFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.st.Syncs++
	if f.fs.plan.FailSyncAt > 0 && f.fs.st.Syncs == f.fs.plan.FailSyncAt {
		f.fs.st.Injected++
		f.fs.mu.Unlock()
		return injected("fsync", f.fs.plan.SyncErr, syscall.EIO)
	}
	f.fs.mu.Unlock()
	return f.f.Sync()
}

func (f *faultyFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	if f.fs.plan.FailTruncate {
		f.fs.st.Injected++
		f.fs.mu.Unlock()
		return injected("truncate", nil, syscall.EIO)
	}
	f.fs.mu.Unlock()
	return f.f.Truncate(size)
}
