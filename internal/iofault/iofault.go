// Package iofault is the file-I/O seam under skope's durability layers.
// The journal (and with it the content-addressed store and the per-shard
// worker journals) opens its files through the FS interface; production
// code passes Disk, a zero-cost passthrough to the os package, and tests
// pass a Faulty FS scripted to fail the Nth write, fail an fsync,
// short-write a frame and then error, run out of disk after a byte
// budget, or refuse an open outright.
//
// The point is falsifiability: "fsync failure degrades the sweep without
// voiding results", "a torn write recovers cleanly on reopen", and
// "ENOSPC mid-sweep loses only the suffix" are durability claims that had
// only ever been exercised by SIGKILL. With a deterministic fault plan
// the disk itself can fail on cue, and each claim becomes an assertion.
package iofault

import (
	"io"
	"os"
)

// File is the slice of *os.File the journal actually uses. Anything that
// can read, write, seek, truncate, fsync, and close can back a journal.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	// Truncate cuts the file to size bytes (torn-tail removal, rollback).
	Truncate(size int64) error
	// Sync flushes to stable storage — the durability point of every
	// journal append.
	Sync() error
	Close() error
}

// FS opens files. Two entry points mirror the journal's two access
// patterns: OpenFile for the owning read-write handle (journal.Open),
// Open for read-only walks (journal.Scan).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
}

// osFS is the passthrough implementation.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

// Disk is the production FS: the real filesystem, no interception.
var Disk FS = osFS{}
