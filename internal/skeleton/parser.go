package skeleton

import (
	"fmt"
	"strings"

	"skope/internal/expr"
	"skope/internal/guard"
)

// Parse parses skeleton source text under the default guard limits.
// source names the input for diagnostics.
func Parse(source, text string) (*Program, error) {
	return ParseWithLimits(source, text, nil)
}

// ParseWithLimits parses under explicit guard limits (nil means
// guard.Default): source size, block-nesting depth, and the nesting of
// every attribute expression are capped, returning guard.ErrLimit errors.
func ParseWithLimits(source, text string, lim *guard.Limits) (*Program, error) {
	if err := lim.CheckSource(len(text)); err != nil {
		return nil, fmt.Errorf("%s: %w", source, err)
	}
	p := &sparser{source: source, lim: lim.Or()}
	return p.parse(text)
}

// MustParse parses text and panics on error; intended for embedded skeletons
// in workloads, examples, and tests.
func MustParse(source, text string) *Program {
	prog, err := Parse(source, text)
	if err != nil {
		panic(err)
	}
	return prog
}

type sparser struct {
	source string
	lim    *guard.Limits
	// lenient switches error recovery on: expression attributes that fail
	// to parse become expr.Hole values recorded in diags instead of
	// aborting the statement. Strict parsing never sets it.
	lenient bool
	diags   []guard.Diagnostic
}

// ltok is a lexical token within one line.
type ltok struct {
	text     string
	isString bool // was a quoted string literal
}

func (p *sparser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.source, line, fmt.Sprintf(format, args...))
}

// scanLine tokenizes one source line. Strings are double-quoted without
// escapes; '#' starts a comment.
func (p *sparser) scanLine(lineNo int, s string) ([]ltok, error) {
	var toks []ltok
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '#':
			return toks, nil
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j >= len(s) {
				return nil, p.errf(lineNo, "unterminated string literal")
			}
			toks = append(toks, ltok{text: s[i+1 : j], isString: true})
			i = j + 1
		case isWordChar(c):
			j := i
			for j < len(s) && isWordChar(s[j]) {
				j++
			}
			toks = append(toks, ltok{text: s[i:j]})
			i = j
		default:
			// Multi-char operators used by expressions.
			for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||"} {
				if strings.HasPrefix(s[i:], op) {
					toks = append(toks, ltok{text: op})
					i += len(op)
					goto next
				}
			}
			toks = append(toks, ltok{text: string(c)})
			i++
		next:
		}
	}
	return toks, nil
}

func isWordChar(c byte) bool {
	return c == '_' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// kv is a parsed key=value attribute list plus positional (bare) tokens.
type kvlist struct {
	keys   []string
	vals   map[string]expr.Expr
	strs   map[string]string // string-valued attributes (labels)
	bare   []ltok
	lineNo int
	p      *sparser
}

// parseKV splits toks into key=value attributes. A new attribute starts at
// any top-level (paren depth 0) IDENT followed by a bare "=" that is not
// part of a comparison. Value tokens are rejoined and parsed as expressions,
// so values may contain spaces. Quoted values become string attributes.
func (p *sparser) parseKV(lineNo int, toks []ltok) (*kvlist, error) {
	kv := &kvlist{
		vals: make(map[string]expr.Expr), strs: make(map[string]string),
		lineNo: lineNo, p: p,
	}
	// Find attribute starts.
	depth := 0
	starts := []int{}
	for i := 0; i < len(toks); i++ {
		switch toks[i].text {
		case "(", "[":
			depth++
		case ")", "]":
			depth--
		}
		if depth == 0 && i+1 < len(toks) && !toks[i].isString && isIdentTok(toks[i].text) &&
			toks[i+1].text == "=" && !toks[i+1].isString {
			starts = append(starts, i)
			i++ // skip '='
		}
	}
	if len(starts) == 0 {
		kv.bare = toks
		return kv, nil
	}
	kv.bare = toks[:starts[0]]
	for si, s := range starts {
		end := len(toks)
		if si+1 < len(starts) {
			end = starts[si+1]
		}
		key := toks[s].text
		valToks := toks[s+2 : end]
		if len(valToks) == 0 {
			return nil, p.errf(lineNo, "attribute %q has empty value", key)
		}
		if len(valToks) == 1 && valToks[0].isString {
			kv.strs[key] = valToks[0].text
			kv.keys = append(kv.keys, key)
			continue
		}
		src := joinToks(valToks)
		e, err := expr.ParseWithLimits(src, p.lim)
		if err != nil {
			if !p.lenient {
				return nil, p.errf(lineNo, "attribute %q: %v", key, err)
			}
			p.diag(guard.SevError, "expr-hole", p.errf(lineNo, "attribute %q: %v", key, err).Error())
			e = expr.Hole{Text: src}
		}
		kv.vals[key] = e
		kv.keys = append(kv.keys, key)
	}
	return kv, nil
}

func isIdentTok(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func joinToks(toks []ltok) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.text
	}
	return strings.Join(parts, " ")
}

// get returns the expression attribute for key, or def if absent.
func (kv *kvlist) get(key string, def expr.Expr) expr.Expr {
	if e, ok := kv.vals[key]; ok {
		return e
	}
	return def
}

func (kv *kvlist) str(key, def string) string {
	if s, ok := kv.strs[key]; ok {
		return s
	}
	return def
}

// check validates that only allowed attribute keys appear.
func (kv *kvlist) check(allowed ...string) error {
	ok := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	for _, k := range kv.keys {
		if !ok[k] {
			return kv.p.errf(kv.lineNo, "unknown attribute %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// frame is a block-nesting stack entry during parsing.
type frame struct {
	kind string // "def", "for", "while", "if"
	line int
	// For defs.
	fn *FuncDef
	// For loops.
	loop  *Loop
	while *While
	// For ifs.
	ifs     *If
	curBody []Stmt // accumulates statements of the open arm/body
	inElse  bool
	// broken marks a def frame whose registration the lenient parser has
	// already diagnosed away (malformed header, duplicate, nested def);
	// its body is parsed for alignment but discarded. Strict parsing never
	// sets it.
	broken bool
}

func (p *sparser) parse(text string) (*Program, error) {
	prog := &Program{ByName: make(map[string]*FuncDef), Source: p.source}
	var stack []*frame

	appendStmt := func(s Stmt) error {
		if len(stack) == 0 {
			return p.errf(s.Pos(), "statement outside function definition")
		}
		top := stack[len(stack)-1]
		top.curBody = append(top.curBody, s)
		return nil
	}

	push := func(f *frame) error {
		stack = append(stack, f)
		if err := p.lim.CheckNestDepth(len(stack)); err != nil {
			return fmt.Errorf("%s:%d: %w", p.source, f.line, err)
		}
		return nil
	}

	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		lineNo := ln + 1
		toks, err := p.scanLine(lineNo, raw)
		if err != nil {
			return nil, err
		}
		if len(toks) == 0 {
			continue
		}
		head := toks[0].text
		rest := toks[1:]
		switch head {
		case "def":
			if len(stack) != 0 {
				return nil, p.errf(lineNo, "nested function definitions are not allowed")
			}
			fn, err := p.parseDef(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if _, dup := prog.ByName[fn.Name]; dup {
				return nil, p.errf(lineNo, "duplicate function %q", fn.Name)
			}
			if err := push(&frame{kind: "def", line: lineNo, fn: fn}); err != nil {
				return nil, err
			}

		case "for":
			loop, err := p.parseFor(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := push(&frame{kind: "for", line: lineNo, loop: loop}); err != nil {
				return nil, err
			}

		case "while":
			w, err := p.parseWhile(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := push(&frame{kind: "while", line: lineNo, while: w}); err != nil {
				return nil, err
			}

		case "if":
			cond, err := p.parseCond(lineNo, rest)
			if err != nil {
				return nil, err
			}
			ifs := &If{stmtBase: stmtBase{Line: lineNo}}
			ifs.Cases = append(ifs.Cases, IfCase{Cond: cond, Line: lineNo})
			if err := push(&frame{kind: "if", line: lineNo, ifs: ifs}); err != nil {
				return nil, err
			}

		case "elif":
			if len(stack) == 0 || stack[len(stack)-1].kind != "if" {
				return nil, p.errf(lineNo, "elif outside if")
			}
			top := stack[len(stack)-1]
			if top.inElse {
				return nil, p.errf(lineNo, "elif after else")
			}
			cond, err := p.parseCond(lineNo, rest)
			if err != nil {
				return nil, err
			}
			top.ifs.Cases[len(top.ifs.Cases)-1].Body = top.curBody
			top.curBody = nil
			top.ifs.Cases = append(top.ifs.Cases, IfCase{Cond: cond, Line: lineNo})

		case "else":
			if len(stack) == 0 || stack[len(stack)-1].kind != "if" {
				return nil, p.errf(lineNo, "else outside if")
			}
			top := stack[len(stack)-1]
			if top.inElse {
				return nil, p.errf(lineNo, "duplicate else")
			}
			if len(rest) != 0 {
				return nil, p.errf(lineNo, "unexpected tokens after else")
			}
			top.ifs.Cases[len(top.ifs.Cases)-1].Body = top.curBody
			top.curBody = nil
			top.inElse = true

		case "end":
			if len(rest) != 0 {
				return nil, p.errf(lineNo, "unexpected tokens after end")
			}
			if len(stack) == 0 {
				return nil, p.errf(lineNo, "end without open block")
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var closed Stmt
			switch top.kind {
			case "def":
				top.fn.Body = top.curBody
				prog.Funcs = append(prog.Funcs, top.fn)
				prog.ByName[top.fn.Name] = top.fn
				continue
			case "for":
				top.loop.Body = top.curBody
				closed = top.loop
			case "while":
				top.while.Body = top.curBody
				closed = top.while
			case "if":
				if top.inElse {
					top.ifs.Else = top.curBody
				} else {
					top.ifs.Cases[len(top.ifs.Cases)-1].Body = top.curBody
				}
				closed = top.ifs
			}
			if err := appendStmt(closed); err != nil {
				return nil, err
			}

		case "comp":
			s, err := p.parseComp(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		case "comm":
			s, err := p.parseComm(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		case "lib":
			s, err := p.parseLib(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		case "call":
			s, err := p.parseCall(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		case "set":
			s, err := p.parseSet(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		case "var":
			s, err := p.parseVar(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		case "return", "break", "continue":
			kv, err := p.parseKV(lineNo, rest)
			if err != nil {
				return nil, err
			}
			if err := kv.check("prob"); err != nil {
				return nil, err
			}
			if len(kv.bare) != 0 {
				return nil, p.errf(lineNo, "unexpected tokens after %s", head)
			}
			prob := kv.get("prob", nil)
			var s Stmt
			switch head {
			case "return":
				s = &Return{stmtBase: stmtBase{Line: lineNo}, Prob: prob}
			case "break":
				s = &Break{stmtBase: stmtBase{Line: lineNo}, Prob: prob}
			case "continue":
				s = &Continue{stmtBase: stmtBase{Line: lineNo}, Prob: prob}
			}
			if err := appendStmt(s); err != nil {
				return nil, err
			}

		default:
			return nil, p.errf(lineNo, "unknown statement %q", head)
		}
	}
	if len(stack) != 0 {
		top := stack[len(stack)-1]
		return nil, p.errf(top.line, "unclosed %s block", top.kind)
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("%s: no function definitions", p.source)
	}
	return prog, nil
}

// parseDef parses: IDENT ( params )
func (p *sparser) parseDef(lineNo int, toks []ltok) (*FuncDef, error) {
	if len(toks) < 3 || !isIdentTok(toks[0].text) || toks[1].text != "(" || toks[len(toks)-1].text != ")" {
		return nil, p.errf(lineNo, "malformed def; want: def name(p1, p2, ...)")
	}
	fn := &FuncDef{Name: toks[0].text, Line: lineNo}
	inner := toks[2 : len(toks)-1]
	expectIdent := true
	for _, t := range inner {
		if expectIdent {
			if !isIdentTok(t.text) {
				return nil, p.errf(lineNo, "malformed parameter list")
			}
			fn.Params = append(fn.Params, t.text)
			expectIdent = false
		} else {
			if t.text != "," {
				return nil, p.errf(lineNo, "malformed parameter list")
			}
			expectIdent = true
		}
	}
	if expectIdent && len(fn.Params) > 0 {
		return nil, p.errf(lineNo, "trailing comma in parameter list")
	}
	return fn, nil
}

// parseFor parses: IDENT = from : to [: step] [label="..."]
//
// The range uses ':' which is not an expression operator, so the header is
// parsed directly rather than through parseKV. A trailing label="..."
// attribute is stripped first.
func (p *sparser) parseFor(lineNo int, toks []ltok) (*Loop, error) {
	label := ""
	var core []ltok
	for i := 0; i < len(toks); i++ {
		if toks[i].text == "label" && !toks[i].isString &&
			i+2 < len(toks) && toks[i+1].text == "=" && toks[i+2].isString {
			label = toks[i+2].text
			i += 2
			continue
		}
		core = append(core, toks[i])
	}
	if len(core) < 3 || !isIdentTok(core[0].text) || core[0].isString || core[1].text != "=" {
		return nil, p.errf(lineNo, "malformed for; want: for i = from : to [: step]")
	}
	loopVar := core[0].text
	// Split remainder on top-level ':'.
	var parts [][]ltok
	cur := []ltok{}
	depth := 0
	for _, t := range core[2:] {
		switch t.text {
		case "(", "[":
			depth++
		case ")", "]":
			depth--
		}
		if depth == 0 && t.text == ":" {
			parts = append(parts, cur)
			cur = nil
			continue
		}
		cur = append(cur, t)
	}
	parts = append(parts, cur)
	if len(parts) < 2 || len(parts) > 3 {
		return nil, p.errf(lineNo, "for range must be from:to or from:to:step")
	}
	exprs := make([]expr.Expr, len(parts))
	for i, part := range parts {
		if len(part) == 0 {
			return nil, p.errf(lineNo, "empty range component in for header")
		}
		e, err := expr.ParseWithLimits(joinToks(part), p.lim)
		if err != nil {
			return nil, p.errf(lineNo, "for range: %v", err)
		}
		exprs[i] = e
	}
	loop := &Loop{
		stmtBase: stmtBase{Line: lineNo},
		Var:      loopVar, From: exprs[0], To: exprs[1], Label: label,
	}
	if len(exprs) == 3 {
		loop.Step = exprs[2]
	}
	return loop, nil
}

func (p *sparser) parseWhile(lineNo int, toks []ltok) (*While, error) {
	kv, err := p.parseKV(lineNo, toks)
	if err != nil {
		return nil, err
	}
	if err := kv.check("iters", "label"); err != nil {
		return nil, err
	}
	if len(kv.bare) != 0 {
		return nil, p.errf(lineNo, "unexpected tokens in while header")
	}
	iters := kv.get("iters", nil)
	if iters == nil {
		return nil, p.errf(lineNo, "while requires iters=<expected trip count>")
	}
	return &While{stmtBase: stmtBase{Line: lineNo}, Iters: iters, Label: kv.str("label", "")}, nil
}

// parseCond parses an if/elif condition: either prob=<expr> or cond=<expr>,
// or a bare expression (treated as cond).
func (p *sparser) parseCond(lineNo int, toks []ltok) (CondSpec, error) {
	kv, err := p.parseKV(lineNo, toks)
	if err != nil {
		return CondSpec{}, err
	}
	if e, ok := kv.vals["prob"]; ok {
		if err := kv.check("prob"); err != nil {
			return CondSpec{}, err
		}
		return CondSpec{Kind: CondProb, X: e}, nil
	}
	if e, ok := kv.vals["cond"]; ok {
		if err := kv.check("cond"); err != nil {
			return CondSpec{}, err
		}
		return CondSpec{Kind: CondExpr, X: e}, nil
	}
	if len(kv.bare) > 0 && len(kv.keys) == 0 {
		e, err := expr.ParseWithLimits(joinToks(kv.bare), kv.p.lim)
		if err != nil {
			return CondSpec{}, p.errf(lineNo, "if condition: %v", err)
		}
		return CondSpec{Kind: CondExpr, X: e}, nil
	}
	// A bare "k == 1" tokenizes with '=' handled as '=='; but "k = 1" would
	// look like an attribute named k. Reject with a pointed message.
	return CondSpec{}, p.errf(lineNo, "if requires prob=<p>, cond=<expr>, or a bare comparison")
}

func (p *sparser) parseComp(lineNo int, toks []ltok) (*Comp, error) {
	kv, err := p.parseKV(lineNo, toks)
	if err != nil {
		return nil, err
	}
	if err := kv.check("flops", "iops", "loads", "stores", "dsize", "divs", "insts", "vec", "name"); err != nil {
		return nil, err
	}
	if len(kv.bare) != 0 {
		return nil, p.errf(lineNo, "unexpected tokens in comp")
	}
	c := &Comp{
		stmtBase: stmtBase{Line: lineNo},
		Name:     kv.str("name", fmt.Sprintf("L%d", lineNo)),
		M: Metrics{
			FLOPs:  kv.get("flops", expr.Const(0)),
			IOPs:   kv.get("iops", expr.Const(0)),
			Loads:  kv.get("loads", expr.Const(0)),
			Stores: kv.get("stores", expr.Const(0)),
			DSize:  kv.get("dsize", expr.Const(8)),
			Divs:   kv.get("divs", expr.Const(0)),
			Insts:  kv.get("insts", nil),
			Vec:    kv.get("vec", expr.Const(1)),
		},
	}
	return c, nil
}

func (p *sparser) parseComm(lineNo int, toks []ltok) (*Comm, error) {
	kv, err := p.parseKV(lineNo, toks)
	if err != nil {
		return nil, err
	}
	if err := kv.check("bytes", "msgs", "name"); err != nil {
		return nil, err
	}
	if len(kv.bare) != 0 {
		return nil, p.errf(lineNo, "unexpected tokens in comm")
	}
	bytes := kv.get("bytes", nil)
	if bytes == nil {
		return nil, p.errf(lineNo, "comm requires bytes=<expr>")
	}
	return &Comm{
		stmtBase: stmtBase{Line: lineNo},
		Bytes:    bytes,
		Msgs:     kv.get("msgs", expr.Const(1)),
		Name:     kv.str("name", fmt.Sprintf("comm@L%d", lineNo)),
	}, nil
}

func (p *sparser) parseLib(lineNo int, toks []ltok) (*Lib, error) {
	if len(toks) == 0 || !isIdentTok(toks[0].text) {
		return nil, p.errf(lineNo, "malformed lib; want: lib <func> [count=<n>]")
	}
	fn := toks[0].text
	kv, err := p.parseKV(lineNo, toks[1:])
	if err != nil {
		return nil, err
	}
	if err := kv.check("count", "name"); err != nil {
		return nil, err
	}
	if len(kv.bare) != 0 {
		return nil, p.errf(lineNo, "unexpected tokens in lib")
	}
	return &Lib{
		stmtBase: stmtBase{Line: lineNo},
		Func:     fn,
		Count:    kv.get("count", expr.Const(1)),
		Name:     kv.str("name", fmt.Sprintf("%s@L%d", fn, lineNo)),
	}, nil
}

func (p *sparser) parseCall(lineNo int, toks []ltok) (*Call, error) {
	if len(toks) < 3 || !isIdentTok(toks[0].text) || toks[1].text != "(" || toks[len(toks)-1].text != ")" {
		return nil, p.errf(lineNo, "malformed call; want: call name(arg, ...)")
	}
	c := &Call{stmtBase: stmtBase{Line: lineNo}, Func: toks[0].text}
	inner := toks[2 : len(toks)-1]
	if len(inner) == 0 {
		return c, nil
	}
	// Split on top-level commas.
	var cur []ltok
	depth := 0
	flush := func() error {
		if len(cur) == 0 {
			return p.errf(lineNo, "empty argument in call")
		}
		e, err := expr.ParseWithLimits(joinToks(cur), p.lim)
		if err != nil {
			return p.errf(lineNo, "call argument: %v", err)
		}
		c.Args = append(c.Args, e)
		cur = nil
		return nil
	}
	for _, t := range inner {
		switch t.text {
		case "(", "[":
			depth++
		case ")", "]":
			depth--
		}
		if depth == 0 && t.text == "," {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		cur = append(cur, t)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *sparser) parseSet(lineNo int, toks []ltok) (*Set, error) {
	if len(toks) < 3 || !isIdentTok(toks[0].text) || toks[1].text != "=" {
		return nil, p.errf(lineNo, "malformed set; want: set name = expr")
	}
	e, err := expr.ParseWithLimits(joinToks(toks[2:]), p.lim)
	if err != nil {
		return nil, p.errf(lineNo, "set value: %v", err)
	}
	return &Set{stmtBase: stmtBase{Line: lineNo}, Name: toks[0].text, Value: e}, nil
}

// parseVar parses: IDENT [ e1 ] [ e2 ] ... [attrs]
func (p *sparser) parseVar(lineNo int, toks []ltok) (*VarDecl, error) {
	if len(toks) == 0 || !isIdentTok(toks[0].text) {
		return nil, p.errf(lineNo, "malformed var; want: var name[e1][e2] [dsize=8]")
	}
	v := &VarDecl{stmtBase: stmtBase{Line: lineNo}, Name: toks[0].text, DSize: expr.Const(8)}
	i := 1
	for i < len(toks) && toks[i].text == "[" {
		depth := 1
		j := i + 1
		for j < len(toks) && depth > 0 {
			switch toks[j].text {
			case "[":
				depth++
			case "]":
				depth--
			}
			if depth == 0 {
				break
			}
			j++
		}
		if j >= len(toks) {
			return nil, p.errf(lineNo, "unterminated [ in var declaration")
		}
		e, err := expr.ParseWithLimits(joinToks(toks[i+1:j]), p.lim)
		if err != nil {
			return nil, p.errf(lineNo, "var extent: %v", err)
		}
		v.Extents = append(v.Extents, e)
		i = j + 1
	}
	kv, err := p.parseKV(lineNo, toks[i:])
	if err != nil {
		return nil, err
	}
	if err := kv.check("dsize"); err != nil {
		return nil, err
	}
	if len(kv.bare) != 0 {
		return nil, p.errf(lineNo, "unexpected tokens in var declaration")
	}
	v.DSize = kv.get("dsize", expr.Const(8))
	return v, nil
}
