// Package skeleton implements the SKOPE-style code-skeleton workload
// modeling language from the paper. A code skeleton explicitly expresses all
// control flow of the original application — functions, loops, branches,
// calls — but replaces concrete instruction sequences with performance
// characteristics: iteration counts, instruction mixes, data access sizes,
// and branch-outcome probabilities (obtained from local profiling or
// developer hints).
//
// The concrete syntax is line-oriented:
//
//	# comment
//	def main(n, m)
//	  var A[n*m]
//	  for i=0:n label="outer"
//	    comp flops=4 loads=2 stores=1 dsize=8 name="stencil"
//	    if prob=0.3
//	      set knob = 1
//	    else
//	      set knob = 0
//	    end
//	    call foo(i, knob)
//	  end
//	end
//
//	def foo(x, k)
//	  if cond = k == 1
//	    comp flops=100*x loads=2*x dsize=8 name="heavy"
//	  end
//	  while iters=n/2
//	    comp flops=8 loads=3 name="solve"
//	    break prob=0.01
//	  end
//	end
//
// Statement kinds: def/end, for, while, if/elif/else, comp, lib, call, set,
// var, return, break, continue. Key=value attributes take expressions in the
// syntax of package expr; values may contain spaces (the parser re-splits a
// line on top-level `key=` boundaries).
package skeleton

import (
	"fmt"

	"skope/internal/expr"
)

// Program is a parsed code skeleton: an ordered set of function definitions.
type Program struct {
	Funcs []*FuncDef
	// ByName indexes Funcs by function name.
	ByName map[string]*FuncDef
	// Source names the origin of the skeleton (file name or workload id).
	Source string
}

// Func returns the named function definition, or an error naming what is
// missing.
func (p *Program) Func(name string) (*FuncDef, error) {
	f, ok := p.ByName[name]
	if !ok {
		return nil, fmt.Errorf("skeleton: no function %q in %s", name, p.Source)
	}
	return f, nil
}

// StaticStatements counts the statements in the program, the paper's measure
// of source size used when reporting BET size ratios (§IV-B).
func (p *Program) StaticStatements() int {
	n := 0
	for _, f := range p.Funcs {
		n++ // the def itself
		n += countStmts(f.Body)
	}
	return n
}

func countStmts(body []Stmt) int {
	n := 0
	for _, s := range body {
		n++
		switch t := s.(type) {
		case *Loop:
			n += countStmts(t.Body)
		case *While:
			n += countStmts(t.Body)
		case *If:
			for _, c := range t.Cases {
				n += countStmts(c.Body)
			}
			n += countStmts(t.Else)
		}
	}
	return n
}

// FuncDef is one "def" block.
type FuncDef struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a skeleton statement.
type Stmt interface {
	// Pos returns the 1-based source line of the statement.
	Pos() int
	stmtNode()
}

type stmtBase struct{ Line int }

// Pos implements Stmt.
func (s stmtBase) Pos() int  { return s.Line }
func (s stmtBase) stmtNode() {}

// Metrics is the per-invocation performance characterization of a comp
// statement: the static instruction mix and data movement of one dynamic
// execution of the modeled code block. All counts are expressions over the
// enclosing context (loop indices, function parameters, input variables).
type Metrics struct {
	// FLOPs is the floating-point operation count.
	FLOPs expr.Expr
	// IOPs is the fixed-point (integer) operation count.
	IOPs expr.Expr
	// Loads and Stores count data elements read/written.
	Loads, Stores expr.Expr
	// DSize is the size in bytes of one data element (default 8).
	DSize expr.Expr
	// Divs counts floating-point divisions, a subset of FLOPs. The default
	// hardware model treats all FLOPs as equal — exactly the simplification
	// the paper identifies as the source of the CFD spot-6 underestimate —
	// but the count is preserved so ablations can model divides separately.
	Divs expr.Expr
	// Insts is the number of static instructions attributed to the block,
	// used by the code-leanness criterion. If nil it defaults to the sum of
	// the operation counts evaluated with all loop bounds at 1.
	Insts expr.Expr
	// Vec is the vectorizable width hint (1 = scalar).
	Vec expr.Expr
}

// Comp models a straight-line computational block.
type Comp struct {
	stmtBase
	// Name is the block label; defaults to "L<line>". Hot spots are
	// reported by this name.
	Name string
	M    Metrics
}

// Comm models a communication phase of a multi-node execution (halo
// exchange, reduction, ...): Msgs messages totaling Bytes bytes per
// execution. This implements the paper's stated future work — projecting
// hot regions for multi-node executions — as a first-order extension: the
// hardware model charges per-message latency plus bandwidth time.
type Comm struct {
	stmtBase
	// Bytes is the total data volume per execution.
	Bytes expr.Expr
	// Msgs is the number of messages per execution (default 1).
	Msgs expr.Expr
	// Name labels the phase; defaults to "comm@L<line>".
	Name string
}

// Lib models a call to an opaque library function (e.g. exp, rand), handled
// semi-analytically per §IV-C of the paper.
type Lib struct {
	stmtBase
	// Func is the library function name (must be known to libmodel).
	Func string
	// Count is the number of invocations per execution of this statement.
	Count expr.Expr
	// Name labels the call site; defaults to "<func>@L<line>".
	Name string
}

// Loop is a counted loop: for v = From : To (exclusive) step Step.
type Loop struct {
	stmtBase
	Var      string
	From, To expr.Expr
	Step     expr.Expr // nil means 1
	Label    string
	Body     []Stmt
}

// While is a loop whose trip count is known only statistically, from
// profiling or developer hints.
type While struct {
	stmtBase
	// Iters is the expected trip count.
	Iters expr.Expr
	Label string
	Body  []Stmt
}

// CondKind discriminates branch condition specifications.
type CondKind int

const (
	// CondProb is a statistical outcome: the branch falls through with the
	// given probability (from the branch profiler).
	CondProb CondKind = iota
	// CondExpr is a deterministic condition over context variables.
	CondExpr
)

// CondSpec is a branch condition: either a fall-through probability or an
// evaluable predicate over the current context.
type CondSpec struct {
	Kind CondKind
	X    expr.Expr
}

// IfCase is one arm of an if/elif chain.
type IfCase struct {
	Cond CondSpec
	Body []Stmt
	Line int
}

// If is a conditional with zero or more elif arms and an optional else.
type If struct {
	stmtBase
	Cases []IfCase
	Else  []Stmt
}

// Call invokes another skeleton function with argument expressions.
type Call struct {
	stmtBase
	Func string
	Args []expr.Expr
}

// Set binds a context variable, possibly forking contexts downstream when it
// occurs under a probabilistic branch.
type Set struct {
	stmtBase
	Name  string
	Value expr.Expr
}

// VarDecl declares an array and its extent, contributing to the modeled data
// footprint. Extents are expressions over the context.
type VarDecl struct {
	stmtBase
	Name    string
	Extents []expr.Expr
	// DSize is the element size in bytes (default 8).
	DSize expr.Expr
}

// Hole stands in for a statement the lenient parser could not understand.
// It preserves the statement's position (and raw text, for diagnostics) so
// downstream stages can count and attribute the lost content; the model
// charges it zero work and marks everything it covers as assumed.
type Hole struct {
	stmtBase
	// Text is the raw source line that failed to parse.
	Text string
}

// Return exits the enclosing function, optionally with a probability (for
// data-dependent early returns observed by the profiler).
type Return struct {
	stmtBase
	Prob expr.Expr // nil means 1
}

// Break exits the enclosing loop with an optional per-iteration probability.
type Break struct {
	stmtBase
	Prob expr.Expr // nil means 1
}

// Continue skips to the next iteration with an optional probability.
type Continue struct {
	stmtBase
	Prob expr.Expr // nil means 1
}
