package skeleton

import (
	"fmt"
	"strings"

	"skope/internal/expr"
	"skope/internal/guard"
)

// ParseLenient parses skeleton text in error-recovering mode. Instead of
// aborting at the first syntax error it resynchronizes at line and block
// boundaries, records one guard.Diagnostic per recovery, and emits a
// partial program in which unparseable statements become explicit *Hole
// nodes (and unparseable attribute expressions become expr.Hole values).
// It never fails: the returned program is always non-nil, and an input
// with no salvageable content yields an empty program plus diagnostics.
//
// On input that the strict parser accepts, ParseLenient returns a
// structurally identical program and zero diagnostics, so lenient mode on
// intact sources is bit-identical to strict mode.
//
// Recovery rules:
//   - an unparseable statement line becomes a *Hole at its position;
//   - a malformed for/while/if header still opens its block (so the
//     matching "end" stays aligned) with the unknown quantity replaced by
//     an expr.Hole, which the lenient model build resolves to its prior;
//   - a malformed, duplicate, or nested "def" parses its body for
//     alignment but is not registered;
//   - orphan end/elif/else lines are skipped; blocks left open at EOF are
//     closed implicitly;
//   - blocks beyond the nesting cap are dropped wholesale (one
//     diagnostic), keeping the tree bounded.
func ParseLenient(source, text string, lim *guard.Limits) (*Program, []guard.Diagnostic) {
	p := &sparser{source: source, lim: lim.Or(), lenient: true}
	if err := p.lim.CheckSource(len(text)); err != nil {
		p.diag(guard.SevError, "limit", fmt.Sprintf("%s: %v", source, err))
		return &Program{ByName: make(map[string]*FuncDef), Source: source}, p.diags
	}
	prog := p.parseLenient(text)
	return prog, p.diags
}

func (p *sparser) diag(sev guard.Severity, code, msg string) {
	p.diags = append(p.diags, guard.Diagnostic{
		Severity: sev, Stage: "skeleton", Code: code, Message: msg,
	})
}

// diagf records a diagnostic positioned like a parse error.
func (p *sparser) diagf(sev guard.Severity, code string, lineNo int, format string, args ...any) {
	p.diag(sev, code, p.errf(lineNo, format, args...).Error())
}

// parseLenient mirrors parse() with recovery at every strict return site.
func (p *sparser) parseLenient(text string) *Program {
	prog := &Program{ByName: make(map[string]*FuncDef), Source: p.source}
	var stack []*frame
	skip := 0 // depth of blocks dropped at the nesting cap

	place := func(s Stmt) bool {
		if len(stack) == 0 {
			return false
		}
		top := stack[len(stack)-1]
		top.curBody = append(top.curBody, s)
		return true
	}
	// hole records a syntax diagnostic and, when inside a block, preserves
	// the lost line as a Hole statement.
	hole := func(lineNo int, raw string, err error) {
		p.diag(guard.SevError, "syntax", err.Error())
		place(&Hole{stmtBase: stmtBase{Line: lineNo}, Text: strings.TrimSpace(raw)})
	}
	push := func(f *frame) bool {
		if err := p.lim.CheckNestDepth(len(stack) + 1); err != nil {
			if skip == 0 {
				p.diagf(guard.SevError, "limit", f.line, "%v; block and its contents dropped", err)
			}
			skip++
			return false
		}
		stack = append(stack, f)
		return true
	}
	// closeFrame finishes one block exactly like the strict "end" case.
	closeFrame := func(top *frame) {
		var closed Stmt
		switch top.kind {
		case "def":
			if top.broken {
				return
			}
			top.fn.Body = top.curBody
			prog.Funcs = append(prog.Funcs, top.fn)
			prog.ByName[top.fn.Name] = top.fn
			return
		case "for":
			top.loop.Body = top.curBody
			closed = top.loop
		case "while":
			top.while.Body = top.curBody
			closed = top.while
		case "if":
			if top.inElse {
				top.ifs.Else = top.curBody
			} else {
				top.ifs.Cases[len(top.ifs.Cases)-1].Body = top.curBody
			}
			closed = top.ifs
		}
		if !place(closed) {
			p.diagf(guard.SevError, "outside-function", closed.Pos(), "statement outside function definition")
		}
	}

	lines := strings.Split(text, "\n")
	for ln, raw := range lines {
		lineNo := ln + 1
		toks, err := p.scanLine(lineNo, raw)
		if err != nil {
			if skip == 0 {
				hole(lineNo, raw, err)
			}
			continue
		}
		if len(toks) == 0 {
			continue
		}
		head := toks[0].text
		rest := toks[1:]
		if skip > 0 {
			// Inside a dropped block: track nesting so the matching end
			// re-aligns, discard everything else.
			switch head {
			case "def", "for", "while", "if":
				skip++
			case "end":
				skip--
			}
			continue
		}
		switch head {
		case "def":
			fn, err := p.parseDef(lineNo, rest)
			broken := false
			if err != nil {
				p.diag(guard.SevError, "syntax", err.Error())
				fn = &FuncDef{Name: fmt.Sprintf("_recovered@L%d", lineNo), Line: lineNo}
				broken = true
			}
			if len(stack) != 0 {
				p.diagf(guard.SevError, "nested-def", lineNo, "nested function definitions are not allowed")
				broken = true
			}
			if _, dup := prog.ByName[fn.Name]; dup {
				p.diagf(guard.SevError, "duplicate-function", lineNo, "duplicate function %q", fn.Name)
				broken = true
			}
			push(&frame{kind: "def", line: lineNo, fn: fn, broken: broken})

		case "for":
			loop, err := p.parseFor(lineNo, rest)
			if err != nil {
				p.diag(guard.SevError, "syntax", err.Error())
				loop = &Loop{
					stmtBase: stmtBase{Line: lineNo},
					Var:      "_", From: expr.Const(0),
					To: expr.Hole{Text: strings.TrimSpace(raw)},
				}
			}
			push(&frame{kind: "for", line: lineNo, loop: loop})

		case "while":
			w, err := p.parseWhile(lineNo, rest)
			if err != nil {
				p.diag(guard.SevError, "syntax", err.Error())
				w = &While{
					stmtBase: stmtBase{Line: lineNo},
					Iters:    expr.Hole{Text: strings.TrimSpace(raw)},
				}
			}
			push(&frame{kind: "while", line: lineNo, while: w})

		case "if":
			cond, err := p.parseCond(lineNo, rest)
			if err != nil {
				p.diag(guard.SevError, "syntax", err.Error())
				cond = CondSpec{Kind: CondProb, X: expr.Hole{Text: strings.TrimSpace(raw)}}
			}
			ifs := &If{stmtBase: stmtBase{Line: lineNo}}
			ifs.Cases = append(ifs.Cases, IfCase{Cond: cond, Line: lineNo})
			push(&frame{kind: "if", line: lineNo, ifs: ifs})

		case "elif":
			if len(stack) == 0 || stack[len(stack)-1].kind != "if" {
				p.diagf(guard.SevError, "orphan-elif", lineNo, "elif outside if")
				continue
			}
			top := stack[len(stack)-1]
			if top.inElse {
				p.diagf(guard.SevError, "orphan-elif", lineNo, "elif after else")
				continue
			}
			cond, err := p.parseCond(lineNo, rest)
			if err != nil {
				p.diag(guard.SevError, "syntax", err.Error())
				cond = CondSpec{Kind: CondProb, X: expr.Hole{Text: strings.TrimSpace(raw)}}
			}
			top.ifs.Cases[len(top.ifs.Cases)-1].Body = top.curBody
			top.curBody = nil
			top.ifs.Cases = append(top.ifs.Cases, IfCase{Cond: cond, Line: lineNo})

		case "else":
			if len(stack) == 0 || stack[len(stack)-1].kind != "if" {
				p.diagf(guard.SevError, "orphan-else", lineNo, "else outside if")
				continue
			}
			top := stack[len(stack)-1]
			if top.inElse {
				p.diagf(guard.SevError, "orphan-else", lineNo, "duplicate else")
				continue
			}
			if len(rest) != 0 {
				p.diagf(guard.SevWarn, "trailing-tokens", lineNo, "unexpected tokens after else (ignored)")
			}
			top.ifs.Cases[len(top.ifs.Cases)-1].Body = top.curBody
			top.curBody = nil
			top.inElse = true

		case "end":
			if len(rest) != 0 {
				p.diagf(guard.SevWarn, "trailing-tokens", lineNo, "unexpected tokens after end (ignored)")
			}
			if len(stack) == 0 {
				p.diagf(guard.SevWarn, "orphan-end", lineNo, "end without open block (ignored)")
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			closeFrame(top)

		case "comp", "comm", "lib", "call", "set", "var":
			var s Stmt
			var err error
			switch head {
			case "comp":
				s, err = p.parseComp(lineNo, rest)
			case "comm":
				s, err = p.parseComm(lineNo, rest)
			case "lib":
				s, err = p.parseLib(lineNo, rest)
			case "call":
				s, err = p.parseCall(lineNo, rest)
			case "set":
				s, err = p.parseSet(lineNo, rest)
			case "var":
				s, err = p.parseVar(lineNo, rest)
			}
			if err != nil {
				hole(lineNo, raw, err)
				continue
			}
			if !place(s) {
				p.diagf(guard.SevError, "outside-function", lineNo, "statement outside function definition")
			}

		case "return", "break", "continue":
			s, err := p.parseJump(lineNo, head, rest)
			if err != nil {
				hole(lineNo, raw, err)
				continue
			}
			if !place(s) {
				p.diagf(guard.SevError, "outside-function", lineNo, "statement outside function definition")
			}

		default:
			hole(lineNo, raw, p.errf(lineNo, "unknown statement %q", head))
		}
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p.diagf(guard.SevWarn, "unclosed-block", top.line, "unclosed %s block (implicitly closed)", top.kind)
		closeFrame(top)
	}
	if len(prog.Funcs) == 0 {
		p.diag(guard.SevError, "no-functions", fmt.Sprintf("%s: no function definitions", p.source))
	}
	return prog
}

// parseJump parses a return/break/continue statement body.
func (p *sparser) parseJump(lineNo int, head string, toks []ltok) (Stmt, error) {
	kv, err := p.parseKV(lineNo, toks)
	if err != nil {
		return nil, err
	}
	if err := kv.check("prob"); err != nil {
		return nil, err
	}
	if len(kv.bare) != 0 {
		return nil, p.errf(lineNo, "unexpected tokens after %s", head)
	}
	prob := kv.get("prob", nil)
	switch head {
	case "return":
		return &Return{stmtBase: stmtBase{Line: lineNo}, Prob: prob}, nil
	case "break":
		return &Break{stmtBase: stmtBase{Line: lineNo}, Prob: prob}, nil
	default:
		return &Continue{stmtBase: stmtBase{Line: lineNo}, Prob: prob}, nil
	}
}
