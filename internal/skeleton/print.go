package skeleton

import (
	"fmt"
	"strings"

	"skope/internal/expr"
)

// Format renders the program back into parseable skeleton syntax. The output
// round-trips: Parse(Format(p)) is structurally identical to p.
func Format(p *Program) string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "def %s(%s)\n", f.Name, strings.Join(f.Params, ", "))
		writeBody(&b, f.Body, 1)
		b.WriteString("end\n")
	}
	return b.String()
}

func writeBody(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch t := s.(type) {
		case *Comp:
			fmt.Fprintf(b, "%scomp", ind)
			writeMetric(b, "flops", t.M.FLOPs, 0)
			writeMetric(b, "iops", t.M.IOPs, 0)
			writeMetric(b, "loads", t.M.Loads, 0)
			writeMetric(b, "stores", t.M.Stores, 0)
			writeMetric(b, "dsize", t.M.DSize, 8)
			writeMetric(b, "divs", t.M.Divs, 0)
			if t.M.Insts != nil {
				fmt.Fprintf(b, " insts=%s", t.M.Insts)
			}
			writeMetric(b, "vec", t.M.Vec, 1)
			fmt.Fprintf(b, " name=%q\n", t.Name)
		case *Lib:
			fmt.Fprintf(b, "%slib %s count=%s name=%q\n", ind, t.Func, t.Count, t.Name)
		case *Comm:
			fmt.Fprintf(b, "%scomm bytes=%s", ind, t.Bytes)
			writeMetric(b, "msgs", t.Msgs, 1)
			fmt.Fprintf(b, " name=%q\n", t.Name)
		case *Loop:
			fmt.Fprintf(b, "%sfor %s = %s : %s", ind, t.Var, t.From, t.To)
			if t.Step != nil {
				fmt.Fprintf(b, " : %s", t.Step)
			}
			if t.Label != "" {
				fmt.Fprintf(b, " label=%q", t.Label)
			}
			b.WriteByte('\n')
			writeBody(b, t.Body, depth+1)
			fmt.Fprintf(b, "%send\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile iters=%s", ind, t.Iters)
			if t.Label != "" {
				fmt.Fprintf(b, " label=%q", t.Label)
			}
			b.WriteByte('\n')
			writeBody(b, t.Body, depth+1)
			fmt.Fprintf(b, "%send\n", ind)
		case *If:
			for i, c := range t.Cases {
				kw := "if"
				if i > 0 {
					kw = "elif"
				}
				switch c.Cond.Kind {
				case CondProb:
					fmt.Fprintf(b, "%s%s prob=%s\n", ind, kw, c.Cond.X)
				case CondExpr:
					fmt.Fprintf(b, "%s%s cond=%s\n", ind, kw, c.Cond.X)
				}
				writeBody(b, c.Body, depth+1)
			}
			if t.Else != nil {
				fmt.Fprintf(b, "%selse\n", ind)
				writeBody(b, t.Else, depth+1)
			}
			fmt.Fprintf(b, "%send\n", ind)
		case *Call:
			args := make([]string, len(t.Args))
			for i, a := range t.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(b, "%scall %s(%s)\n", ind, t.Func, strings.Join(args, ", "))
		case *Set:
			fmt.Fprintf(b, "%sset %s = %s\n", ind, t.Name, t.Value)
		case *VarDecl:
			fmt.Fprintf(b, "%svar %s", ind, t.Name)
			for _, e := range t.Extents {
				fmt.Fprintf(b, "[%s]", e)
			}
			if v, ok := expr.IsConst(t.DSize); !ok || v != 8 {
				fmt.Fprintf(b, " dsize=%s", t.DSize)
			}
			b.WriteByte('\n')
		case *Hole:
			// Render as a comment so the output still round-trips through
			// the strict parser (the hole itself has no concrete syntax).
			fmt.Fprintf(b, "%s# hole: %s\n", ind, strings.ReplaceAll(t.Text, "\n", " "))
		case *Return:
			writeJump(b, ind, "return", t.Prob)
		case *Break:
			writeJump(b, ind, "break", t.Prob)
		case *Continue:
			writeJump(b, ind, "continue", t.Prob)
		}
	}
}

// writeMetric emits " key=expr" unless the expression is the constant def.
func writeMetric(b *strings.Builder, key string, e expr.Expr, def float64) {
	if e == nil {
		return
	}
	if v, ok := expr.IsConst(e); ok && v == def {
		return
	}
	fmt.Fprintf(b, " %s=%s", key, e)
}

func writeJump(b *strings.Builder, ind, kw string, prob expr.Expr) {
	if prob == nil {
		fmt.Fprintf(b, "%s%s\n", ind, kw)
		return
	}
	fmt.Fprintf(b, "%s%s prob=%s\n", ind, kw, prob)
}
