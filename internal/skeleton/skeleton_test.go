package skeleton

import (
	"strings"
	"testing"

	"skope/internal/expr"
)

// pedagogical is a small skeleton exercising every statement kind; it mirrors
// the shape of the paper's Figure 2(a) example.
const pedagogical = `
# pedagogical example
def main(n, m)
  var A[n][m]
  var B[n*m] dsize=4
  set knob = 0
  for i = 0 : n label="outer"
    comp flops=4 loads=2 stores=1 dsize=8 name="init"
    if prob=0.3
      set knob = 1
    else
      set knob = 0
    end
    call foo(i, knob)
  end
  while iters=m/2 label="conv"
    comp flops=8*m loads=3*m name="solve"
    break prob=0.01
  end
  lib exp count=n name="expcall"
end

def foo(x, k)
  if cond = k == 1
    comp flops=100*x loads=2*x name="heavy"
  elif prob=0.5
    for j = 0 : x
      comp flops=10 loads=1 name="light"
      continue prob=0.2
    end
  end
  return prob=0.1
  comp flops=1 name="tail"
end
`

func parsePedagogical(t *testing.T) *Program {
	t.Helper()
	p, err := Parse("pedagogical", pedagogical)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParsePedagogicalStructure(t *testing.T) {
	p := parsePedagogical(t)
	if len(p.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(p.Funcs))
	}
	main, err := p.Func("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(main.Params) != 2 || main.Params[0] != "n" || main.Params[1] != "m" {
		t.Errorf("main params = %v", main.Params)
	}
	// main body: var, var, set, for, while, lib
	if len(main.Body) != 6 {
		t.Fatalf("main body has %d stmts, want 6", len(main.Body))
	}
	loop, ok := main.Body[3].(*Loop)
	if !ok {
		t.Fatalf("main.Body[3] is %T, want *Loop", main.Body[3])
	}
	if loop.Var != "i" || loop.Label != "outer" {
		t.Errorf("loop = %+v", loop)
	}
	if got := expr.MustEval(loop.To, expr.Env{"n": 7}); got != 7 {
		t.Errorf("loop.To eval = %g", got)
	}
	// loop body: comp, if, call
	if len(loop.Body) != 3 {
		t.Fatalf("loop body has %d stmts, want 3", len(loop.Body))
	}
	comp := loop.Body[0].(*Comp)
	if comp.Name != "init" {
		t.Errorf("comp name = %q", comp.Name)
	}
	if v := expr.MustEval(comp.M.FLOPs, nil); v != 4 {
		t.Errorf("comp flops = %g", v)
	}
	ifs := loop.Body[1].(*If)
	if len(ifs.Cases) != 1 || ifs.Cases[0].Cond.Kind != CondProb {
		t.Errorf("if cases = %+v", ifs.Cases)
	}
	if ifs.Else == nil {
		t.Error("if has no else")
	}
	call := loop.Body[2].(*Call)
	if call.Func != "foo" || len(call.Args) != 2 {
		t.Errorf("call = %+v", call)
	}
	w, ok := main.Body[4].(*While)
	if !ok || w.Label != "conv" {
		t.Fatalf("main.Body[4] = %#v", main.Body[4])
	}
	if _, ok := w.Body[1].(*Break); !ok {
		t.Errorf("while body[1] = %T, want *Break", w.Body[1])
	}
	lib, ok := main.Body[5].(*Lib)
	if !ok || lib.Func != "exp" || lib.Name != "expcall" {
		t.Fatalf("main.Body[5] = %#v", main.Body[5])
	}

	foo, _ := p.Func("foo")
	ifs2 := foo.Body[0].(*If)
	if len(ifs2.Cases) != 2 {
		t.Fatalf("foo if has %d cases, want 2", len(ifs2.Cases))
	}
	if ifs2.Cases[0].Cond.Kind != CondExpr {
		t.Error("foo if case 0 should be CondExpr")
	}
	if ifs2.Cases[1].Cond.Kind != CondProb {
		t.Error("foo if case 1 should be CondProb")
	}
	ret, ok := foo.Body[1].(*Return)
	if !ok || ret.Prob == nil {
		t.Fatalf("foo.Body[1] = %#v", foo.Body[1])
	}
}

func TestValidatePedagogical(t *testing.T) {
	if err := Validate(parsePedagogical(t)); err != nil {
		t.Fatal(err)
	}
}

func TestStaticStatements(t *testing.T) {
	p := parsePedagogical(t)
	// Count by hand: main def(1) + var,var,set,for,while,lib(6) +
	// for body comp,if,call(3) + if arms set,set(2) + while body comp,break(2)
	// + foo def(1) + if,return,comp(3) + arms comp,for(2) + for body
	// comp,continue(2) = 22
	if got := p.StaticStatements(); got != 22 {
		t.Errorf("StaticStatements = %d, want 22", got)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p1 := parsePedagogical(t)
	text := Format(p1)
	p2, err := Parse("roundtrip", text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Errorf("Format not a fixed point:\n--- first\n%s\n--- second\n%s", text, Format(p2))
	}
	if p1.StaticStatements() != p2.StaticStatements() {
		t.Errorf("statement count changed across round trip: %d != %d",
			p1.StaticStatements(), p2.StaticStatements())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no funcs":         "# empty\n",
		"stmt outside def": "comp flops=1\n",
		"unclosed def":     "def main()\n",
		"end extra":        "def main()\nend\nend\n",
		"bad for":          "def main()\nfor foo\nend\nend\n",
		"bad range":        "def main()\nfor i = 1\nend\nend\n",
		"elif outside":     "def main()\nelif prob=0.5\nend\n",
		"else outside":     "def main()\nelse\nend\n",
		"dup else":         "def main()\nif prob=0.5\nelse\nelse\nend\nend\n",
		"elif after else":  "def main()\nif prob=0.5\nelse\nelif prob=0.1\nend\nend\n",
		"unknown stmt":     "def main()\nfrobnicate\nend\n",
		"unknown attr":     "def main()\ncomp zops=3\nend\n",
		"bad while":        "def main()\nwhile\nend\nend\n",
		"unterminated str": "def main()\ncomp name=\"x\nend\n",
		"dup func":         "def f()\nend\ndef f()\nend\n",
		"nested def":       "def f()\ndef g()\nend\nend\n",
		"bad call":         "def main()\ncall 3()\nend\n",
		"empty call arg":   "def main()\ncall f(,)\nend\n",
		"bad set":          "def main()\nset = 3\nend\n",
		"if bare assign":   "def main()\nif k\nend\nend\n# still ok",
	}
	for name, src := range cases {
		if name == "if bare assign" {
			continue // bare identifier condition is legal (CondExpr)
		}
		if _, err := Parse(name, src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestBareConditionExpr(t *testing.T) {
	p, err := Parse("t", "def main(k)\nif k > 3\ncomp flops=1\nend\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	ifs := p.Funcs[0].Body[0].(*If)
	if ifs.Cases[0].Cond.Kind != CondExpr {
		t.Error("bare comparison should be CondExpr")
	}
	v := expr.MustEval(ifs.Cases[0].Cond.X, expr.Env{"k": 5})
	if v != 1 {
		t.Errorf("cond eval = %g", v)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]string{
		"undefined call": "def main()\ncall nosuch()\nend\n",
		"arity mismatch": "def main()\ncall f(1)\nend\ndef f(a, b)\nend\n",
		"break outside":  "def main()\nbreak\nend\n",
		"cont outside":   "def main()\ncontinue\nend\n",
		"recursion":      "def main()\ncall f()\nend\ndef f()\ncall main()\nend\n",
		"self recursion": "def main()\ncall main()\nend\n",
	}
	for name, src := range cases {
		p, err := Parse(name, src)
		if err != nil {
			t.Fatalf("%s: parse failed: %v", name, err)
		}
		if err := Validate(p); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
	// Missing entry.
	p, _ := Parse("noentry", "def f()\nend\n")
	if err := Validate(p); err == nil {
		t.Error("Validate without main succeeded")
	}
	if err := ValidateEntry(p, "f"); err != nil {
		t.Errorf("ValidateEntry(f): %v", err)
	}
}

func TestAttributesWithSpaces(t *testing.T) {
	src := "def main(n)\ncomp flops=4 * n + 1 loads=n * 2 name=\"spaced\"\nend\n"
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Funcs[0].Body[0].(*Comp)
	if v := expr.MustEval(c.M.FLOPs, expr.Env{"n": 10}); v != 41 {
		t.Errorf("flops eval = %g, want 41", v)
	}
	if v := expr.MustEval(c.M.Loads, expr.Env{"n": 10}); v != 20 {
		t.Errorf("loads eval = %g, want 20", v)
	}
}

func TestForWithStep(t *testing.T) {
	p, err := Parse("t", "def main(n)\nfor i = 0 : n : 2\ncomp flops=1\nend\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Funcs[0].Body[0].(*Loop)
	if loop.Step == nil {
		t.Fatal("step not parsed")
	}
	if v := expr.MustEval(loop.Step, nil); v != 2 {
		t.Errorf("step = %g", v)
	}
}

func TestVarDeclExtents(t *testing.T) {
	p, err := Parse("t", "def main(n, m)\nvar A[n][m + 1] dsize=4\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	v := p.Funcs[0].Body[0].(*VarDecl)
	if len(v.Extents) != 2 {
		t.Fatalf("extents = %d, want 2", len(v.Extents))
	}
	if got := expr.MustEval(v.Extents[1], expr.Env{"m": 4}); got != 5 {
		t.Errorf("extent[1] = %g", got)
	}
	if got := expr.MustEval(v.DSize, nil); got != 4 {
		t.Errorf("dsize = %g", got)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "\n# leading comment\n\ndef main()  # trailing comment\n  comp flops=1  # another\n\nend\n"
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs[0].Body) != 1 {
		t.Errorf("body = %d stmts", len(p.Funcs[0].Body))
	}
}

func TestDefaultCompName(t *testing.T) {
	p, err := Parse("t", "def main()\ncomp flops=1\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Funcs[0].Body[0].(*Comp)
	if !strings.HasPrefix(c.Name, "L") {
		t.Errorf("default comp name = %q", c.Name)
	}
}

func TestFuncMissingError(t *testing.T) {
	p := parsePedagogical(t)
	if _, err := p.Func("nosuch"); err == nil {
		t.Error("Func(nosuch) should fail")
	}
}
