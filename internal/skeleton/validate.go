package skeleton

import (
	"fmt"

	"skope/internal/guard"
)

// Validate performs semantic checks on a parsed program:
//
//   - every called function is defined with a matching arity,
//   - break/continue appear only inside loops,
//   - the call graph contains no recursion (the BET construction inlines
//     callee trees, so recursion would not terminate; the paper targets
//     scientific array codes where this holds),
//   - entry ("main" by default) exists.
func Validate(p *Program) error {
	return ValidateEntry(p, "main")
}

// ValidateEntry is Validate with a configurable entry function name.
func ValidateEntry(p *Program, entry string) error {
	if _, err := p.Func(entry); err != nil {
		return err
	}
	for _, f := range p.Funcs {
		if err := checkBody(p, f, f.Body, 0); err != nil {
			return err
		}
	}
	return checkRecursion(p, entry)
}

// ValidateLenient runs the same checks as ValidateEntry but demotes
// recoverable findings — undefined callees, arity mismatches, misplaced
// break/continue — to diagnostics, because the lenient model build has a
// per-site fallback for each of them. Two conditions stay hard errors
// regardless of mode: a missing entry function (nothing to model) and
// recursion (BET construction inlines callees, so recursion would not
// terminate; it is a resource guard, not a degradation).
func ValidateLenient(p *Program, entry string) ([]guard.Diagnostic, error) {
	if _, err := p.Func(entry); err != nil {
		return nil, err
	}
	var diags []guard.Diagnostic
	for _, f := range p.Funcs {
		for _, err := range bodyFindings(p, f.Body, 0, nil) {
			diags = append(diags, guard.Diagnostic{
				Severity: guard.SevWarn, Stage: "validate", Code: "semantic",
				Message: err.Error(),
			})
		}
	}
	if err := checkRecursion(p, entry); err != nil {
		return diags, err
	}
	return diags, nil
}

// bodyFindings is checkBody's accumulating twin: it records every semantic
// finding in a body instead of stopping at the first.
func bodyFindings(p *Program, body []Stmt, loopDepth int, acc []error) []error {
	for _, s := range body {
		switch t := s.(type) {
		case *Call:
			callee, ok := p.ByName[t.Func]
			if !ok {
				acc = append(acc, fmt.Errorf("%s:%d: call to undefined function %q", p.Source, t.Pos(), t.Func))
			} else if len(t.Args) != len(callee.Params) {
				acc = append(acc, fmt.Errorf("%s:%d: call to %q with %d args, want %d",
					p.Source, t.Pos(), t.Func, len(t.Args), len(callee.Params)))
			}
		case *Break:
			if loopDepth == 0 {
				acc = append(acc, fmt.Errorf("%s:%d: break outside loop", p.Source, t.Pos()))
			}
		case *Continue:
			if loopDepth == 0 {
				acc = append(acc, fmt.Errorf("%s:%d: continue outside loop", p.Source, t.Pos()))
			}
		case *Loop:
			acc = bodyFindings(p, t.Body, loopDepth+1, acc)
		case *While:
			acc = bodyFindings(p, t.Body, loopDepth+1, acc)
		case *If:
			for _, c := range t.Cases {
				acc = bodyFindings(p, c.Body, loopDepth, acc)
			}
			acc = bodyFindings(p, t.Else, loopDepth, acc)
		}
	}
	return acc
}

func checkBody(p *Program, f *FuncDef, body []Stmt, loopDepth int) error {
	for _, s := range body {
		switch t := s.(type) {
		case *Call:
			callee, ok := p.ByName[t.Func]
			if !ok {
				return fmt.Errorf("%s:%d: call to undefined function %q", p.Source, t.Pos(), t.Func)
			}
			if len(t.Args) != len(callee.Params) {
				return fmt.Errorf("%s:%d: call to %q with %d args, want %d",
					p.Source, t.Pos(), t.Func, len(t.Args), len(callee.Params))
			}
		case *Break:
			if loopDepth == 0 {
				return fmt.Errorf("%s:%d: break outside loop", p.Source, t.Pos())
			}
		case *Continue:
			if loopDepth == 0 {
				return fmt.Errorf("%s:%d: continue outside loop", p.Source, t.Pos())
			}
		case *Loop:
			if err := checkBody(p, f, t.Body, loopDepth+1); err != nil {
				return err
			}
		case *While:
			if err := checkBody(p, f, t.Body, loopDepth+1); err != nil {
				return err
			}
		case *If:
			for _, c := range t.Cases {
				if err := checkBody(p, f, c.Body, loopDepth); err != nil {
					return err
				}
			}
			if err := checkBody(p, f, t.Else, loopDepth); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkRecursion DFS-colors the call graph from entry and reports a cycle.
func checkRecursion(p *Program, entry string) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("%s: recursive call cycle: %v -> %s", p.Source, path, name)
		case black:
			return nil
		}
		color[name] = gray
		f := p.ByName[name]
		if f != nil {
			for _, callee := range calledFuncs(f.Body, nil) {
				if err := visit(callee, append(path, name)); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	return visit(entry, nil)
}

func calledFuncs(body []Stmt, acc []string) []string {
	for _, s := range body {
		switch t := s.(type) {
		case *Call:
			acc = append(acc, t.Func)
		case *Loop:
			acc = calledFuncs(t.Body, acc)
		case *While:
			acc = calledFuncs(t.Body, acc)
		case *If:
			for _, c := range t.Cases {
				acc = calledFuncs(c.Body, acc)
			}
			acc = calledFuncs(t.Else, acc)
		}
	}
	return acc
}
