package skeleton_test

import (
	"strings"
	"testing"

	"skope/internal/interp"
	"skope/internal/minilang"
	"skope/internal/skeleton"
	"skope/internal/translate"
	"skope/internal/workloads"
)

// workloadSkeletons translates the five benchmarks into skeleton text so
// the fuzz corpus starts from real generated skeletons. Translation runs
// without a profile (the documented skeleton-prior fallback): each fuzz
// worker re-seeds on startup, so the corpus must not cost five profiling
// executions per process.
func workloadSkeletons(f *testing.F) []string {
	f.Helper()
	var out []string
	for _, w := range workloads.All(workloads.ScaleTest) {
		prog, err := minilang.Parse(w.Name, w.Source)
		if err != nil {
			f.Fatal(err)
		}
		if err := minilang.Check(prog); err != nil {
			f.Fatal(err)
		}
		res, err := translate.Translate(prog, interp.NewProfile())
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, res.Text)
	}
	return out
}

// FuzzSkeletonParse checks that the skeleton parser never panics or
// overflows the stack: arbitrary input either parses (and validates
// without crashing) or yields a descriptive error, with guard limits
// bounding nesting depth and source size.
func FuzzSkeletonParse(f *testing.F) {
	for _, text := range workloadSkeletons(f) {
		f.Add(text)
	}
	for _, s := range []string{
		"def main(n)\nend",
		"def main(n)\n  for i = 0 : n label=\"l\"\n    comp flops=n name=\"k\"\n  end\nend",
		"def main(n)\n  if prob=0.5\n    call f(n)\n  end\nend\n\ndef f(n)\nend",
		"def main(n)\n" + strings.Repeat("  for i = 0 : n\n", 200) + strings.Repeat("  end\n", 200) + "end",
		"def main(n)\n  comp flops=" + strings.Repeat("(", 400) + "1" + strings.Repeat(")", 400) + "\nend",
		"",
		"def",
		"end end end",
		"\x00\xff",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := skeleton.Parse("fuzz", src)

		// Lenient mode must never panic and always return a non-nil
		// partial program; rejected input must carry at least one
		// diagnostic, accepted input none (and an identical program).
		lprog, diags := skeleton.ParseLenient("fuzz", src, nil)
		if lprog == nil {
			t.Fatalf("ParseLenient(%q) returned a nil program", src)
		}
		_ = skeleton.Format(lprog)
		_, _ = skeleton.ValidateLenient(lprog, "main")
		if err != nil {
			if len(diags) == 0 {
				t.Fatalf("ParseLenient(%q): strict parse failed (%v) but no diagnostics", src, err)
			}
		} else {
			if len(diags) != 0 {
				t.Fatalf("ParseLenient(%q): diagnostics %v on input the strict parser accepts", src, diags)
			}
			if got, want := skeleton.Format(lprog), skeleton.Format(prog); got != want {
				t.Fatalf("ParseLenient(%q) formats differently from strict:\n%s\nvs\n%s", src, got, want)
			}
		}

		if err != nil {
			return
		}
		// Whatever parses must survive validation and printing.
		_ = skeleton.Validate(prog)
		_ = skeleton.Format(prog)
	})
}
