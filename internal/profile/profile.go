// Package profile provides the unified block-time ranking used to compare
// the analytical projections (Modl) against simulator measurements (Prof),
// and the paper's selection-quality metric (§VI).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"skope/internal/hotspot"
	"skope/internal/sim"
)

// Entry is one block's share of a profile.
type Entry struct {
	ID   string
	Time float64 // seconds
}

// Ranked is a profile: blocks sorted by descending time.
type Ranked struct {
	// Label names the profile in reports (e.g. "Modl BG/Q", "Prof Xeon").
	Label string
	// Entries is sorted by time descending.
	Entries []Entry
	// ByID maps block ID to time.
	ByID map[string]float64
	// Total is the profile's total time.
	Total float64
}

// New builds a ranked profile from raw entries.
func New(label string, entries []Entry) *Ranked {
	r := &Ranked{Label: label, ByID: make(map[string]float64, len(entries))}
	for _, e := range entries {
		r.ByID[e.ID] += e.Time
		r.Total += e.Time
	}
	r.Entries = make([]Entry, 0, len(r.ByID))
	for id, t := range r.ByID {
		r.Entries = append(r.Entries, Entry{ID: id, Time: t})
	}
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].Time != r.Entries[j].Time {
			return r.Entries[i].Time > r.Entries[j].Time
		}
		return r.Entries[i].ID < r.Entries[j].ID
	})
	return r
}

// FromAnalysis converts a model projection into a ranked profile.
func FromAnalysis(a *hotspot.Analysis) *Ranked {
	entries := make([]Entry, 0, len(a.Blocks))
	for _, b := range a.Blocks {
		entries = append(entries, Entry{ID: b.BlockID, Time: b.T})
	}
	return New("Modl "+a.Machine.Name, entries)
}

// FromSim converts a simulator measurement into a ranked profile.
func FromSim(r *sim.Result) *Ranked {
	entries := make([]Entry, 0, len(r.Blocks))
	for _, b := range r.Blocks {
		entries = append(entries, Entry{ID: b.ID, Time: b.Seconds(r.Machine)})
	}
	return New("Prof "+r.Machine.Name, entries)
}

// TopIDs returns the IDs of the first n blocks.
func (r *Ranked) TopIDs(n int) []string {
	if n > len(r.Entries) {
		n = len(r.Entries)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.Entries[i].ID
	}
	return out
}

// CoverageOf returns the fraction of this profile's total time spent in the
// given blocks. Unknown IDs contribute zero.
func (r *Ranked) CoverageOf(ids []string) float64 {
	if r.Total == 0 {
		return 0
	}
	seen := map[string]bool{}
	sum := 0.0
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		sum += r.ByID[id]
	}
	return sum / r.Total
}

// Coverage returns one block's share of the total.
func (r *Ranked) Coverage(id string) float64 {
	if r.Total == 0 {
		return 0
	}
	return r.ByID[id] / r.Total
}

// CoverageCurve returns cumulative coverage of this profile over the given
// block sequence — the y-values of the paper's coverage figures.
func (r *Ranked) CoverageCurve(ids []string) []float64 {
	out := make([]float64, len(ids))
	cum := 0.0
	for i, id := range ids {
		cum += r.Coverage(id)
		out[i] = cum
	}
	return out
}

// RankOf returns the 1-based rank of a block, 0 if absent.
func (r *Ranked) RankOf(id string) int {
	for i, e := range r.Entries {
		if e.ID == id {
			return i + 1
		}
	}
	return 0
}

// SelectionQuality is the paper's quality metric for a projected hot-spot
// selection, reconstructed per DESIGN.md: the measured runtime coverage of
// the projected selection divided by the measured coverage of the
// equally-sized measured-best selection. 1.0 means the projection picked
// blocks covering as much measured time as a perfect selection of the same
// size; the paper reports an average of 0.958 and a floor of 0.80.
func SelectionQuality(measured *Ranked, projected []string) float64 {
	if len(projected) == 0 {
		return 0
	}
	best := measured.CoverageOf(measured.TopIDs(len(projected)))
	if best == 0 {
		return 0
	}
	return measured.CoverageOf(projected) / best
}

// TopOverlap counts how many block IDs the two top-n lists share — the
// paper's Table I cross-machine portability statistic (SORD shares only
// 4 of its top 10 between Xeon and BG/Q).
func TopOverlap(a, b []string) int {
	set := make(map[string]bool, len(a))
	for _, id := range a {
		set[id] = true
	}
	n := 0
	for _, id := range b {
		if set[id] {
			n++
		}
	}
	return n
}

// String renders the top of the profile for debugging.
func (r *Ranked) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total %.4g s)\n", r.Label, r.Total)
	for i, e := range r.Entries {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&b, "%2d. %-32s %6.2f%%\n", i+1, e.ID, 100*r.Coverage(e.ID))
	}
	return b.String()
}
