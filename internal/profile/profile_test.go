package profile

import (
	"math"
	"testing"
	"testing/quick"
)

func mk(label string, pairs ...any) *Ranked {
	var entries []Entry
	for i := 0; i < len(pairs); i += 2 {
		entries = append(entries, Entry{ID: pairs[i].(string), Time: pairs[i+1].(float64)})
	}
	return New(label, entries)
}

func TestNewSortsAndMerges(t *testing.T) {
	r := mk("t", "a", 1.0, "b", 5.0, "a", 2.0, "c", 4.0)
	if r.Total != 12 {
		t.Errorf("total = %g", r.Total)
	}
	want := []string{"b", "c", "a"}
	got := r.TopIDs(10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if r.ByID["a"] != 3 {
		t.Errorf("duplicate entries not merged: %g", r.ByID["a"])
	}
}

func TestCoverage(t *testing.T) {
	r := mk("t", "a", 6.0, "b", 3.0, "c", 1.0)
	if r.Coverage("a") != 0.6 {
		t.Errorf("coverage a = %g", r.Coverage("a"))
	}
	if got := r.CoverageOf([]string{"a", "b"}); got != 0.9 {
		t.Errorf("coverage a+b = %g", got)
	}
	// Duplicates and unknowns are harmless.
	if got := r.CoverageOf([]string{"a", "a", "zz"}); got != 0.6 {
		t.Errorf("coverage with dup/unknown = %g", got)
	}
	curve := r.CoverageCurve([]string{"a", "b", "c"})
	if math.Abs(curve[2]-1) > 1e-12 {
		t.Errorf("curve end = %g", curve[2])
	}
}

func TestRankOf(t *testing.T) {
	r := mk("t", "a", 6.0, "b", 3.0)
	if r.RankOf("a") != 1 || r.RankOf("b") != 2 || r.RankOf("x") != 0 {
		t.Error("RankOf broken")
	}
}

func TestSelectionQualityPerfect(t *testing.T) {
	meas := mk("prof", "a", 6.0, "b", 3.0, "c", 1.0)
	if q := SelectionQuality(meas, []string{"a", "b"}); q != 1 {
		t.Errorf("perfect selection quality = %g", q)
	}
}

func TestSelectionQualityImperfect(t *testing.T) {
	meas := mk("prof", "a", 6.0, "b", 3.0, "c", 1.0)
	// Projection picked a and c instead of a and b: (6+1)/(6+3) = 7/9.
	q := SelectionQuality(meas, []string{"a", "c"})
	if math.Abs(q-7.0/9.0) > 1e-12 {
		t.Errorf("quality = %g, want %g", q, 7.0/9.0)
	}
	// Empty and unknown selections.
	if SelectionQuality(meas, nil) != 0 {
		t.Error("empty selection quality != 0")
	}
	if SelectionQuality(meas, []string{"zz"}) != 0 {
		t.Error("unknown-only selection quality != 0")
	}
}

func TestSelectionQualityBounds(t *testing.T) {
	meas := mk("prof", "a", 5.0, "b", 4.0, "c", 3.0, "d", 2.0, "e", 1.0)
	f := func(pick uint8) bool {
		ids := []string{"a", "b", "c", "d", "e"}
		var sel []string
		for i, id := range ids {
			if pick&(1<<uint(i)) != 0 {
				sel = append(sel, id)
			}
		}
		if len(sel) == 0 {
			return SelectionQuality(meas, sel) == 0
		}
		q := SelectionQuality(meas, sel)
		return q >= 0 && q <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestTopOverlap(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"c", "d", "e", "f"}
	if TopOverlap(a, b) != 2 {
		t.Errorf("overlap = %d", TopOverlap(a, b))
	}
	if TopOverlap(nil, b) != 0 {
		t.Error("nil overlap != 0")
	}
}

func TestEmptyProfile(t *testing.T) {
	r := New("empty", nil)
	if r.Total != 0 || r.Coverage("a") != 0 || r.CoverageOf([]string{"a"}) != 0 {
		t.Error("empty profile not zero")
	}
}

func TestStringOutput(t *testing.T) {
	r := mk("p", "a", 1.0)
	if len(r.String()) == 0 {
		t.Error("empty String")
	}
}
