package hw

import "math"

// WireMachine is the canonical serialized form of a Machine: every float
// travels as its IEEE-754 bit pattern, so encode/decode round-trips are
// exact to the bit and the encoded bytes are a stable identity for the
// machine. It backs the content-addressed result store, where a decoded
// machine must compare (and fingerprint) identical to the one that was
// stored.
//
// The JSON field names are part of the on-disk store contract; append new
// fields rather than renaming or reordering.
type WireMachine struct {
	Name string `json:"name"`

	FreqGHz        uint64 `json:"freq"`
	IssueWidth     int    `json:"issue"`
	FPOpsPerCycle  uint64 `json:"fp"`
	IntOpsPerCycle uint64 `json:"int"`
	VectorWidth    int    `json:"vec"`
	AutoVectorize  bool   `json:"autovec,omitempty"`

	DivLatencyCyc int  `json:"divlat"`
	Prefetch      bool `json:"prefetch,omitempty"`

	L1SizeB       int `json:"l1size"`
	L1LineB       int `json:"l1line"`
	L1Assoc       int `json:"l1assoc"`
	L1LatencyCyc  int `json:"l1lat"`
	LLCSizeB      int `json:"llcsize"`
	LLCLineB      int `json:"llcline"`
	LLCAssoc      int `json:"llcassoc"`
	LLCLatencyCyc int `json:"llclat"`
	MemLatencyCyc int `json:"memlat"`

	MemBandwidthGBs uint64 `json:"membw"`
	MemConcurrency  uint64 `json:"memconc"`
	HitL1           uint64 `json:"hitl1"`
	HitLLC          uint64 `json:"hitllc"`

	NetLatencyUs    uint64 `json:"netlat"`
	NetBandwidthGBs uint64 `json:"netbw"`
}

// Wire converts the machine to its canonical serialized form.
func (m *Machine) Wire() WireMachine {
	f := math.Float64bits
	return WireMachine{
		Name:    m.Name,
		FreqGHz: f(m.FreqGHz), IssueWidth: m.IssueWidth,
		FPOpsPerCycle: f(m.FPOpsPerCycle), IntOpsPerCycle: f(m.IntOpsPerCycle),
		VectorWidth: m.VectorWidth, AutoVectorize: m.AutoVectorize,
		DivLatencyCyc: m.DivLatencyCyc, Prefetch: m.Prefetch,
		L1SizeB: m.L1SizeB, L1LineB: m.L1LineB, L1Assoc: m.L1Assoc, L1LatencyCyc: m.L1LatencyCyc,
		LLCSizeB: m.LLCSizeB, LLCLineB: m.LLCLineB, LLCAssoc: m.LLCAssoc, LLCLatencyCyc: m.LLCLatencyCyc,
		MemLatencyCyc:   m.MemLatencyCyc,
		MemBandwidthGBs: f(m.MemBandwidthGBs), MemConcurrency: f(m.MemConcurrency),
		HitL1: f(m.HitL1), HitLLC: f(m.HitLLC),
		NetLatencyUs: f(m.NetLatencyUs), NetBandwidthGBs: f(m.NetBandwidthGBs),
	}
}

// Machine converts the wire form back to a Machine. The result is
// bit-identical to the machine Wire was called on: same Fingerprint, same
// projected times on every model.
func (w WireMachine) Machine() *Machine {
	f := math.Float64frombits
	return &Machine{
		Name:    w.Name,
		FreqGHz: f(w.FreqGHz), IssueWidth: w.IssueWidth,
		FPOpsPerCycle: f(w.FPOpsPerCycle), IntOpsPerCycle: f(w.IntOpsPerCycle),
		VectorWidth: w.VectorWidth, AutoVectorize: w.AutoVectorize,
		DivLatencyCyc: w.DivLatencyCyc, Prefetch: w.Prefetch,
		L1SizeB: w.L1SizeB, L1LineB: w.L1LineB, L1Assoc: w.L1Assoc, L1LatencyCyc: w.L1LatencyCyc,
		LLCSizeB: w.LLCSizeB, LLCLineB: w.LLCLineB, LLCAssoc: w.LLCAssoc, LLCLatencyCyc: w.LLCLatencyCyc,
		MemLatencyCyc:   w.MemLatencyCyc,
		MemBandwidthGBs: f(w.MemBandwidthGBs), MemConcurrency: f(w.MemConcurrency),
		HitL1: f(w.HitL1), HitLLC: f(w.HitLLC),
		NetLatencyUs: f(w.NetLatencyUs), NetBandwidthGBs: f(w.NetBandwidthGBs),
	}
}
