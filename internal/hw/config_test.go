package hw

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteConfig(&buf, BGQ()); err != nil {
		t.Fatal(err)
	}
	m, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *m != *BGQ() {
		t.Errorf("round trip changed machine:\n%+v\n%+v", m, BGQ())
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.json")
	if err := SaveConfig(path, XeonE5()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Xeon E5-2420" || m.FreqGHz != 1.9 {
		t.Errorf("loaded machine = %+v", m)
	}
}

func TestReadConfigRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"bad json":       "{",
		"unknown field":  `{"Name":"x","Turbo":true}`,
		"fails validate": `{"Name":"x","FreqGHz":0}`,
	}
	for name, src := range cases {
		if _, err := ReadConfig(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConfigEditableSweep(t *testing.T) {
	// The intended workflow: dump a preset, tweak one field, reload.
	var buf bytes.Buffer
	if err := WriteConfig(&buf, BGQ()); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(buf.String(), `"MemBandwidthGBs": 28`, `"MemBandwidthGBs": 56`, 1)
	if edited == buf.String() {
		t.Fatalf("field not found in encoding:\n%s", buf.String())
	}
	m, err := ReadConfig(strings.NewReader(edited))
	if err != nil {
		t.Fatal(err)
	}
	if m.MemBandwidthGBs != 56 {
		t.Errorf("edited bandwidth = %g", m.MemBandwidthGBs)
	}
}
