package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for name, f := range Presets() {
		if err := f().Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestPresetLookup(t *testing.T) {
	m, err := Preset("bgq")
	if err != nil || m.Name != "BG/Q" {
		t.Fatalf("Preset(bgq) = %v, %v", m, err)
	}
	if f, err := Preset("future"); err != nil || f.VectorWidth != 8 {
		t.Fatalf("Preset(future) = %v, %v", f, err)
	}
	if _, err := Preset("vax"); err == nil {
		t.Error("Preset(vax) should fail")
	}
}

func TestFutureMachineIsComputeRich(t *testing.T) {
	// The conceptual node must have a much higher roofline ridge point
	// than the 2014 machines: blocks memory-bound today may turn
	// compute-bound on it (and vice versa for latency-sensitive code).
	fut := NewModel(Future())
	if fut.RidgePoint() >= NewModel(BGQ()).RidgePoint()*2 {
		t.Errorf("HBM bandwidth should LOWER the ridge point: future %g vs bgq %g",
			fut.RidgePoint(), NewModel(BGQ()).RidgePoint())
	}
	w := BlockWork{FLOPs: 100, Loads: 100, Stores: 50, DSizeB: 8}
	q := NewModel(BGQ()).Estimate(w)
	f := fut.Estimate(w)
	if f.T >= q.T {
		t.Errorf("future machine not faster: %g vs %g", f.T, q.T)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Machine){
		func(m *Machine) { m.Name = "" },
		func(m *Machine) { m.FreqGHz = 0 },
		func(m *Machine) { m.IssueWidth = 0 },
		func(m *Machine) { m.FPOpsPerCycle = 0 },
		func(m *Machine) { m.VectorWidth = 0 },
		func(m *Machine) { m.L1SizeB = 0 },
		func(m *Machine) { m.L1SizeB = m.L1LineB*m.L1Assoc + 1 },
		func(m *Machine) { m.LLCSizeB = 0 },
		func(m *Machine) { m.L1LatencyCyc = 0 },
		func(m *Machine) { m.MemBandwidthGBs = 0 },
		func(m *Machine) { m.MemConcurrency = 0 },
		func(m *Machine) { m.HitL1 = 1.5 },
		func(m *Machine) { m.HitLLC = -0.1 },
		func(m *Machine) { m.DivLatencyCyc = 0 },
	}
	for i, mut := range mutations {
		m := BGQ()
		mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := &Machine{FreqGHz: 2}
	if got := m.CyclesToSeconds(2e9); got != 1 {
		t.Errorf("CyclesToSeconds = %g, want 1", got)
	}
}

func TestBlockWorkAddAndScale(t *testing.T) {
	a := BlockWork{FLOPs: 10, IOPs: 2, Loads: 4, Stores: 0, DSizeB: 8, Divs: 1, Vec: 1}
	b := BlockWork{FLOPs: 5, Loads: 0, Stores: 4, DSizeB: 4, Vec: 4}
	a.Add(b)
	if a.FLOPs != 15 || a.IOPs != 2 || a.Loads != 4 || a.Stores != 4 || a.Divs != 1 {
		t.Errorf("Add result = %+v", a)
	}
	if a.DSizeB != 6 { // weighted average of 8 (4 accesses) and 4 (4 accesses)
		t.Errorf("Add DSizeB = %g, want 6", a.DSizeB)
	}
	if a.Vec != 4 {
		t.Errorf("Add Vec = %g, want 4", a.Vec)
	}
	s := a.Scale(2)
	if s.FLOPs != 30 || s.Loads != 8 || s.DSizeB != 6 {
		t.Errorf("Scale result = %+v", s)
	}
}

func TestOperationalIntensity(t *testing.T) {
	w := BlockWork{FLOPs: 16, Loads: 1, Stores: 1, DSizeB: 8}
	if oi := w.OperationalIntensity(); oi != 1 {
		t.Errorf("OI = %g, want 1", oi)
	}
	pure := BlockWork{FLOPs: 5}
	if !math.IsInf(pure.OperationalIntensity(), 1) {
		t.Error("OI with no bytes should be +Inf")
	}
}

func TestEstimateBasicShape(t *testing.T) {
	mo := NewModel(BGQ())
	// Compute-heavy block: Tc should dominate.
	hot := mo.Estimate(BlockWork{FLOPs: 1e6, Loads: 10, Stores: 0, DSizeB: 8})
	if hot.MemoryBound {
		t.Error("compute-heavy block classified memory-bound")
	}
	if hot.Tc <= 0 || hot.T <= 0 {
		t.Errorf("estimate = %+v", hot)
	}
	// Memory-heavy block: Tm should dominate.
	cold := mo.Estimate(BlockWork{FLOPs: 1, Loads: 1e6, Stores: 1e6, DSizeB: 8})
	if !cold.MemoryBound {
		t.Error("memory-heavy block classified compute-bound")
	}
	// T = Tc + Tm - To identity.
	if math.Abs(hot.T-(hot.Tc+hot.Tm-hot.To)) > 1e-18 {
		t.Error("T != Tc + Tm - To")
	}
}

func TestOverlapDegreeMonotone(t *testing.T) {
	if overlapDegree(0) != 0 {
		t.Errorf("delta(0) = %g, want 0", overlapDegree(0))
	}
	prev := -1.0
	for _, n := range []float64{0, 1, 10, 100, 1e4, 1e8} {
		d := overlapDegree(n)
		if d < prev {
			t.Errorf("delta not monotone at %g", n)
		}
		if d < 0 || d >= 1 {
			t.Errorf("delta(%g) = %g out of [0,1)", n, d)
		}
		prev = d
	}
	if overlapDegree(-5) != 0 {
		t.Error("negative FLOPs should clamp to delta 0")
	}
}

// Property: the extended roofline is consistent: max(Tc,Tm) <= T <= Tc+Tm,
// and all components are non-negative, for arbitrary workloads.
func TestQuickEstimateBounds(t *testing.T) {
	mo := NewModel(XeonE5())
	f := func(flops, iops, loads, stores uint32, dsize uint8) bool {
		w := BlockWork{
			FLOPs: float64(flops % 1e6), IOPs: float64(iops % 1e6),
			Loads: float64(loads % 1e6), Stores: float64(stores % 1e6),
			DSizeB: float64(dsize%16) + 1,
		}
		e := mo.Estimate(w)
		if e.Tc < 0 || e.Tm < 0 || e.To < 0 || e.T < 0 {
			return false
		}
		if e.To > math.Min(e.Tc, e.Tm)+1e-18 {
			return false
		}
		lo := math.Max(e.Tc, e.Tm) - 1e-18
		hi := e.Tc + e.Tm + 1e-18
		return e.T >= lo && e.T <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVectorAwareFasterOnVectorizableBlocks(t *testing.T) {
	m := BGQ()
	base := NewModel(m).Estimate(BlockWork{FLOPs: 1e6, Vec: 4})
	vec := NewVectorAwareModel(m).Estimate(BlockWork{FLOPs: 1e6, Vec: 4})
	if vec.Tc >= base.Tc {
		t.Errorf("vector-aware Tc %g not < base Tc %g", vec.Tc, base.Tc)
	}
	// Scalar blocks are unaffected.
	baseS := NewModel(m).Estimate(BlockWork{FLOPs: 1e6, Vec: 1})
	vecS := NewVectorAwareModel(m).Estimate(BlockWork{FLOPs: 1e6, Vec: 1})
	if baseS.Tc != vecS.Tc {
		t.Error("vector-aware model changed scalar block estimate")
	}
}

func TestDivAwareSlowerOnDivisionBlocks(t *testing.T) {
	m := BGQ()
	w := BlockWork{FLOPs: 1000, Divs: 500}
	base := NewModel(m).Estimate(w)
	div := NewDivAwareModel(m).Estimate(w)
	if div.Tc <= base.Tc {
		t.Errorf("div-aware Tc %g not > base Tc %g", div.Tc, base.Tc)
	}
	// Division-free blocks are unaffected.
	w2 := BlockWork{FLOPs: 1000}
	if NewDivAwareModel(m).Estimate(w2).Tc != NewModel(m).Estimate(w2).Tc {
		t.Error("div-aware model changed division-free block estimate")
	}
}

func TestRooflineBoundAndRidge(t *testing.T) {
	mo := NewModel(BGQ())
	ridge := mo.RidgePoint()
	if ridge <= 0 {
		t.Fatalf("ridge = %g", ridge)
	}
	peak := mo.RooflineBound(math.Inf(1))
	if mo.RooflineBound(ridge*10) != peak {
		t.Error("beyond ridge should hit peak")
	}
	low := mo.RooflineBound(ridge / 10)
	if low >= peak {
		t.Error("below ridge should be bandwidth-limited")
	}
	// Bound is monotone in OI.
	if mo.RooflineBound(0.1) > mo.RooflineBound(0.2) {
		t.Error("roofline bound not monotone")
	}
}

func TestXeonMoreMemoryBoundThanBGQ(t *testing.T) {
	// The paper observes the memory share of hot-spot time grows on Xeon
	// relative to BG/Q (Fig. 7): higher clock and memory latency make the
	// same block relatively more memory-bound.
	w := BlockWork{FLOPs: 2000, Loads: 800, Stores: 200, DSizeB: 8}
	q := NewModel(BGQ()).Estimate(w)
	x := NewModel(XeonE5()).Estimate(w)
	shareQ := q.Tm / (q.Tc + q.Tm)
	shareX := x.Tm / (x.Tc + x.Tm)
	if shareX <= shareQ {
		t.Errorf("memory share on Xeon (%g) not > BG/Q (%g)", shareX, shareQ)
	}
}
