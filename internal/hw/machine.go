// Package hw defines parameterized hardware performance models: machine
// descriptions and the extended roofline model the paper uses to project the
// execution time of each code block (§V-A).
//
// A single Machine struct serves both consumers in this repository:
//
//   - the analytical model (package hotspot) reads only the coarse,
//     first-order parameters — frequency, scalar issue rates, cache/memory
//     latencies, bandwidth, and the constant cache-hit assumption — exactly
//     the abstraction level of the paper;
//   - the validation simulator (package sim) additionally uses the detailed
//     parameters the analytical model deliberately ignores: real cache
//     geometry (sets/ways/line size), division latency, and vector width.
//
// That split reproduces the paper's central premise: the model trades
// accuracy for speed and hardware-independence, and its known error sources
// (no division modeling, no vectorization modeling, no real cache behaviour)
// are visible when compared against the detailed machine.
package hw

import "fmt"

// Machine describes a target architecture configuration.
type Machine struct {
	// Name identifies the configuration in reports (e.g. "BG/Q").
	Name string

	// FreqGHz is the core clock in GHz.
	FreqGHz float64
	// IssueWidth is the maximum instructions issued per cycle.
	IssueWidth int
	// FPOpsPerCycle is the scalar floating-point throughput per cycle used
	// by the analytical model. The paper's model does not credit SIMD; the
	// simulator applies VectorWidth on top of this for vectorized blocks.
	FPOpsPerCycle float64
	// IntOpsPerCycle is the scalar fixed-point throughput per cycle.
	IntOpsPerCycle float64
	// VectorWidth is the SIMD width in 64-bit lanes (used by the simulator
	// and by the optional vector-aware model extension; 1 = scalar).
	VectorWidth int
	// AutoVectorize marks toolchains that vectorize any clean loop, not
	// only explicitly annotated ones (the paper: the Xeon binary is
	// "highly vectorized by default", while IBM XL on BG/Q vectorizes
	// selectively).
	AutoVectorize bool

	// DivLatencyCyc is the latency of one FP division (simulator only; the
	// analytical model treats divisions as ordinary FLOPs, which the paper
	// identifies as its CFD error source).
	DivLatencyCyc int
	// Prefetch enables the simulator's next-line L1 prefetcher: on a miss
	// the following line is filled as well, making sequential streams
	// nearly free while leaving irregular access untouched. The analytical
	// model ignores prefetching entirely (another first-order
	// simplification available as a co-design knob).
	Prefetch bool

	// L1 cache geometry and latency (per core).
	L1SizeB, L1LineB, L1Assoc int
	L1LatencyCyc              int
	// LLC (shared last-level cache) geometry and latency.
	LLCSizeB, LLCLineB, LLCAssoc int
	LLCLatencyCyc                int
	// MemLatencyCyc is the DRAM access latency in cycles.
	MemLatencyCyc int
	// MemBandwidthGBs is the peak DRAM bandwidth in GB/s.
	MemBandwidthGBs float64
	// MemConcurrency is the number of overlapping outstanding memory
	// accesses assumed by the latency term of the roofline model.
	MemConcurrency float64

	// HitL1 and HitLLC are the constant cache hit ratios assumed by the
	// analytical model (the paper fixes both at 0.85 and notes observed
	// workloads fall between 0.75 and 0.95).
	HitL1, HitLLC float64

	// NetLatencyUs and NetBandwidthGBs parameterize the interconnect for
	// the multi-node projection extension (the paper's stated future
	// work): one message costs NetLatencyUs microseconds plus
	// bytes / NetBandwidthGBs of serialization time.
	NetLatencyUs    float64
	NetBandwidthGBs float64
}

// CommTime projects the wall time of a communication phase: msgs messages
// totaling bytes bytes.
func (m *Machine) CommTime(bytes, msgs float64) float64 {
	if msgs < 0 {
		msgs = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return msgs*m.NetLatencyUs*1e-6 + bytes/(m.NetBandwidthGBs*1e9)
}

// Validate checks that the machine description is physically meaningful.
func (m *Machine) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("hw: machine has no name")
	case m.FreqGHz <= 0:
		return fmt.Errorf("hw: %s: frequency must be positive", m.Name)
	case m.IssueWidth <= 0:
		return fmt.Errorf("hw: %s: issue width must be positive", m.Name)
	case m.FPOpsPerCycle <= 0 || m.IntOpsPerCycle <= 0:
		return fmt.Errorf("hw: %s: op throughputs must be positive", m.Name)
	case m.VectorWidth < 1:
		return fmt.Errorf("hw: %s: vector width must be >= 1", m.Name)
	case m.L1SizeB <= 0 || m.L1LineB <= 0 || m.L1Assoc <= 0:
		return fmt.Errorf("hw: %s: invalid L1 geometry", m.Name)
	case m.LLCSizeB <= 0 || m.LLCLineB <= 0 || m.LLCAssoc <= 0:
		return fmt.Errorf("hw: %s: invalid LLC geometry", m.Name)
	case m.L1SizeB%(m.L1LineB*m.L1Assoc) != 0:
		return fmt.Errorf("hw: %s: L1 size not divisible by line*assoc", m.Name)
	case m.LLCSizeB%(m.LLCLineB*m.LLCAssoc) != 0:
		return fmt.Errorf("hw: %s: LLC size not divisible by line*assoc", m.Name)
	case m.L1LatencyCyc <= 0 || m.LLCLatencyCyc <= 0 || m.MemLatencyCyc <= 0:
		return fmt.Errorf("hw: %s: latencies must be positive", m.Name)
	case m.MemBandwidthGBs <= 0:
		return fmt.Errorf("hw: %s: bandwidth must be positive", m.Name)
	case m.MemConcurrency <= 0:
		return fmt.Errorf("hw: %s: memory concurrency must be positive", m.Name)
	case m.HitL1 < 0 || m.HitL1 > 1 || m.HitLLC < 0 || m.HitLLC > 1:
		return fmt.Errorf("hw: %s: hit ratios must be in [0,1]", m.Name)
	case m.DivLatencyCyc <= 0:
		return fmt.Errorf("hw: %s: division latency must be positive", m.Name)
	case m.NetLatencyUs <= 0 || m.NetBandwidthGBs <= 0:
		return fmt.Errorf("hw: %s: network parameters must be positive", m.Name)
	}
	return nil
}

// CyclesToSeconds converts a cycle count on this machine to seconds.
func (m *Machine) CyclesToSeconds(cycles float64) float64 {
	return cycles / (m.FreqGHz * 1e9)
}

// BGQ returns a single-core model of an IBM Blue Gene/Q Power A2 node as
// characterized in the paper's §VI: 1.6 GHz, 16 KB L1D, 32 MB shared L2
// with 51-cycle latency, 180-cycle DRAM latency. The A2 core is a 4-way SMT
// in-order core; we model 2-wide issue and modest scalar FP throughput with
// QPX vector width 4 available to the simulator.
func BGQ() *Machine {
	return &Machine{
		Name:           "BG/Q",
		FreqGHz:        1.6,
		IssueWidth:     2,
		FPOpsPerCycle:  2, // scalar FMA
		IntOpsPerCycle: 2,
		VectorWidth:    4, // QPX: 4 doubles
		AutoVectorize:  false,
		DivLatencyCyc:  32,

		L1SizeB: 16 << 10, L1LineB: 64, L1Assoc: 8, L1LatencyCyc: 6,
		LLCSizeB: 32 << 20, LLCLineB: 128, LLCAssoc: 16, LLCLatencyCyc: 51,
		MemLatencyCyc:   180,
		MemBandwidthGBs: 28,
		MemConcurrency:  4,
		HitL1:           0.85, HitLLC: 0.85,
		// 5-D torus: ~2 GB/s per link, low latency.
		NetLatencyUs: 2.5, NetBandwidthGBs: 2,
	}
}

// XeonE5 returns a single-core model of the paper's Intel Xeon E5-2420
// node: 1.9 GHz, larger out-of-order core with wide SIMD (AVX), smaller
// shared LLC than BG/Q, faster processing but relatively more expensive
// memory access — the combination the paper credits for the machines'
// different hot-spot rankings and the larger memory share in Fig. 7.
func XeonE5() *Machine {
	return &Machine{
		Name:           "Xeon E5-2420",
		FreqGHz:        1.9,
		IssueWidth:     4,
		FPOpsPerCycle:  4, // scalar add+mul pipes with FMA-like throughput
		IntOpsPerCycle: 4,
		VectorWidth:    4, // AVX: 4 doubles
		AutoVectorize:  true,
		DivLatencyCyc:  22,

		L1SizeB: 32 << 10, L1LineB: 64, L1Assoc: 8, L1LatencyCyc: 4,
		LLCSizeB: 15 << 20, LLCLineB: 64, LLCAssoc: 20, LLCLatencyCyc: 40,
		MemLatencyCyc:   300,
		MemBandwidthGBs: 34,
		MemConcurrency:  4,
		HitL1:           0.85, HitLLC: 0.85,
		// QDR InfiniBand-class cluster interconnect.
		NetLatencyUs: 1.5, NetBandwidthGBs: 4,
	}
}

// Future returns a conceptual next-generation node — the co-design target
// the paper motivates ("predict and understand application behavior on
// emerging or conceptual systems"): a wide-SIMD, high-bandwidth (HBM-class)
// design with aggressive memory concurrency but long absolute DRAM latency,
// and a fast fat-tree interconnect. No such machine exists to profile on —
// exactly the situation where only model-based projection is available.
func Future() *Machine {
	return &Machine{
		Name:           "FutureNode",
		FreqGHz:        2.4,
		IssueWidth:     6,
		FPOpsPerCycle:  8,
		IntOpsPerCycle: 6,
		VectorWidth:    8, // 512-bit SIMD
		AutoVectorize:  true,
		DivLatencyCyc:  16,
		Prefetch:       true,

		L1SizeB: 64 << 10, L1LineB: 64, L1Assoc: 8, L1LatencyCyc: 5,
		LLCSizeB: 64 << 20, LLCLineB: 64, LLCAssoc: 16, LLCLatencyCyc: 45,
		MemLatencyCyc:   420, // HBM: high bandwidth, long latency
		MemBandwidthGBs: 400,
		MemConcurrency:  32, // deep miss queues hide the latency

		HitL1: 0.85, HitLLC: 0.85,
		NetLatencyUs: 0.9, NetBandwidthGBs: 12,
	}
}

// Presets lists the built-in machine models by CLI name.
func Presets() map[string]func() *Machine {
	return map[string]func() *Machine{
		"bgq":    BGQ,
		"xeon":   XeonE5,
		"future": Future,
	}
}

// Preset returns the named preset machine.
func Preset(name string) (*Machine, error) {
	f, ok := Presets()[name]
	if !ok {
		return nil, fmt.Errorf("hw: unknown machine preset %q (want bgq or xeon)", name)
	}
	return f(), nil
}
