package hw

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Fingerprint returns a stable 64-bit hex digest of every parameter of
// the machine (including its name). Two machines fingerprint equal iff
// every field — compared at the bit level for floats — is equal, so the
// digest is a durable identity for a design-space variant: the sweep
// journal keys completed work on it, and resumed sweeps use it to decide
// which variants can be replayed instead of recomputed.
//
// The field order below is part of the on-disk journal contract; append
// new fields at the end rather than reordering.
func (m *Machine) Fingerprint() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	f := func(v float64) { u64(math.Float64bits(v)) }
	i := func(v int) { u64(uint64(int64(v))) }
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}
	h.Write([]byte(m.Name))
	h.Write([]byte{0}) // terminate the name so "a"+fields != "ab"+fields
	f(m.FreqGHz)
	i(m.IssueWidth)
	f(m.FPOpsPerCycle)
	f(m.IntOpsPerCycle)
	i(m.VectorWidth)
	b(m.AutoVectorize)
	i(m.DivLatencyCyc)
	b(m.Prefetch)
	i(m.L1SizeB)
	i(m.L1LineB)
	i(m.L1Assoc)
	i(m.L1LatencyCyc)
	i(m.LLCSizeB)
	i(m.LLCLineB)
	i(m.LLCAssoc)
	i(m.LLCLatencyCyc)
	i(m.MemLatencyCyc)
	f(m.MemBandwidthGBs)
	f(m.MemConcurrency)
	f(m.HitL1)
	f(m.HitLLC)
	f(m.NetLatencyUs)
	f(m.NetBandwidthGBs)
	return fmt.Sprintf("%016x", h.Sum64())
}
