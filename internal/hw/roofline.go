package hw

import "math"

// BlockWork is the numeric per-invocation workload characterization of a
// code block, produced by evaluating a skeleton comp statement's metric
// expressions under a BET context.
type BlockWork struct {
	// FLOPs and IOPs are floating-point and fixed-point operation counts.
	FLOPs, IOPs float64
	// Loads and Stores count data elements moved.
	Loads, Stores float64
	// DSizeB is the element size in bytes.
	DSizeB float64
	// Divs is the number of FP divisions included in FLOPs.
	Divs float64
	// Vec is the vectorizable width hint carried from the skeleton (the
	// base roofline model ignores it; the vector-aware extension and the
	// simulator use it).
	Vec float64
}

// Add accumulates other into w (element sizes are combined by weighted
// average over access counts).
func (w *BlockWork) Add(o BlockWork) {
	accW := w.Loads + w.Stores
	accO := o.Loads + o.Stores
	if accW+accO > 0 {
		w.DSizeB = (w.DSizeB*accW + o.DSizeB*accO) / (accW + accO)
	}
	w.FLOPs += o.FLOPs
	w.IOPs += o.IOPs
	w.Loads += o.Loads
	w.Stores += o.Stores
	w.Divs += o.Divs
	if o.Vec > w.Vec {
		w.Vec = o.Vec
	}
}

// Scale returns w with every count multiplied by k.
func (w BlockWork) Scale(k float64) BlockWork {
	return BlockWork{
		FLOPs: w.FLOPs * k, IOPs: w.IOPs * k,
		Loads: w.Loads * k, Stores: w.Stores * k,
		DSizeB: w.DSizeB, Divs: w.Divs * k, Vec: w.Vec,
	}
}

// Bytes returns the data volume moved by one invocation.
func (w BlockWork) Bytes() float64 { return (w.Loads + w.Stores) * w.DSizeB }

// OperationalIntensity returns FLOPs per byte moved — the classic roofline
// x-axis. Returns +Inf when no data moves.
func (w BlockWork) OperationalIntensity() float64 {
	b := w.Bytes()
	if b == 0 {
		return math.Inf(1)
	}
	return w.FLOPs / b
}

// Estimate is the roofline projection for one invocation of a code block.
type Estimate struct {
	// Tc is the computation time in seconds.
	Tc float64
	// Tm is the memory access time in seconds.
	Tm float64
	// To is the overlapped time in seconds: min(Tc, Tm) * delta.
	To float64
	// T is the projected wall time: Tc + Tm - To.
	T float64
	// Delta is the overlap degree used.
	Delta float64
	// MemoryBound reports whether Tm > Tc (the roofline verdict on the
	// block's bottleneck).
	MemoryBound bool
}

// Model projects block execution times on a Machine. The zero value is not
// usable; construct with NewModel.
type Model struct {
	m *Machine
	// vectorAware enables the optional extension that credits the skeleton
	// vec hint with SIMD speedup (off in the paper's model; used for the
	// ablation study of the STASSUIJ error source).
	vectorAware bool
	// divAware enables the optional extension that charges FP divisions
	// their real latency (off in the paper's model; used for the ablation
	// of the CFD error source).
	divAware bool
}

// NewModel returns the paper's first-order roofline model for machine m.
func NewModel(m *Machine) *Model { return &Model{m: m} }

// NewVectorAwareModel returns the roofline model with the SIMD extension
// enabled (ablation: removes the paper's STASSUIJ overestimate).
func NewVectorAwareModel(m *Machine) *Model { return &Model{m: m, vectorAware: true} }

// NewDivAwareModel returns the roofline model with division-latency
// modeling enabled (ablation: removes the paper's CFD underestimate).
func NewDivAwareModel(m *Machine) *Model { return &Model{m: m, divAware: true} }

// Machine returns the machine the model projects onto.
func (mo *Model) Machine() *Machine { return mo.m }

// Estimate projects the time of one invocation of a block with workload w,
// following §V-A:
//
//	Tc = compute time from operation counts and scalar issue rates
//	Tm = max(latency-limited, bandwidth-limited) data movement time under
//	     the constant cache-hit assumption
//	To = min(Tc, Tm) * delta, delta = 1 - 1/sqrt(1 + FLOPs)
//	T  = Tc + Tm - To
func (mo *Model) Estimate(w BlockWork) Estimate {
	m := mo.m

	fpops := w.FLOPs
	divCycles := 0.0
	if mo.divAware {
		// Charge divisions separately at their real latency and remove
		// them from the throughput term.
		fpops = math.Max(0, w.FLOPs-w.Divs)
		divCycles = w.Divs * float64(m.DivLatencyCyc) / float64(m.IssueWidth)
	}
	fpRate := m.FPOpsPerCycle
	if mo.vectorAware && w.Vec > 1 {
		fpRate *= math.Min(w.Vec, float64(m.VectorWidth))
	}
	compCycles := fpops/fpRate + w.IOPs/m.IntOpsPerCycle + divCycles
	tc := m.CyclesToSeconds(compCycles)

	accesses := w.Loads + w.Stores
	// Constant-hit-ratio expected latency per access.
	perAccess := m.HitL1*float64(m.L1LatencyCyc) +
		(1-m.HitL1)*(m.HitLLC*float64(m.LLCLatencyCyc)+
			(1-m.HitLLC)*float64(m.MemLatencyCyc))
	tmLat := m.CyclesToSeconds(accesses * perAccess / m.MemConcurrency)
	dramBytes := w.Bytes() * (1 - m.HitL1) * (1 - m.HitLLC)
	tmBW := dramBytes / (m.MemBandwidthGBs * 1e9)
	tm := math.Max(tmLat, tmBW)

	delta := overlapDegree(w.FLOPs)
	to := math.Min(tc, tm) * delta
	return Estimate{
		Tc: tc, Tm: tm, To: to, T: tc + tm - to,
		Delta:       delta,
		MemoryBound: tm > tc,
	}
}

// overlapDegree implements the paper's heuristic that the chance of
// computation/memory overlap grows with the block's floating-point count:
// delta = 1 - 1/sqrt(1 + Nfp), so 0 for pure data movement and -> 1 for
// compute-rich blocks. (The exact formula is garbled in the published text;
// see DESIGN.md for the reconstruction rationale.)
func overlapDegree(nfp float64) float64 {
	if nfp < 0 {
		nfp = 0
	}
	return 1 - 1/math.Sqrt(1+nfp)
}

// RooflineBound returns the classic roofline performance bound in FLOP/s
// for operational intensity oi on machine m: min(peak, oi * bandwidth).
// Peak here is the scalar analytical peak (FPOpsPerCycle * freq).
func (mo *Model) RooflineBound(oi float64) float64 {
	m := mo.m
	peak := m.FPOpsPerCycle * m.FreqGHz * 1e9
	if math.IsInf(oi, 1) {
		return peak
	}
	return math.Min(peak, oi*m.MemBandwidthGBs*1e9)
}

// RidgePoint returns the operational intensity (FLOPs/byte) at which the
// machine transitions from memory-bound to compute-bound.
func (mo *Model) RidgePoint() float64 {
	m := mo.m
	return (m.FPOpsPerCycle * m.FreqGHz) / m.MemBandwidthGBs
}
