package hw

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteConfig serializes a machine description as indented JSON — the
// interchange format for custom architecture configurations in co-design
// sweeps (cmd/skope -machine-file).
func WriteConfig(w io.Writer, m *Machine) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadConfig parses and validates a machine description from JSON.
func ReadConfig(r io.Reader) (*Machine, error) {
	var m Machine
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("hw: bad machine config: %v", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadConfig reads a machine description from a JSON file.
func LoadConfig(path string) (*Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hw: %v", err)
	}
	defer f.Close()
	return ReadConfig(f)
}

// SaveConfig writes a machine description to a JSON file.
func SaveConfig(path string, m *Machine) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hw: %v", err)
	}
	defer f.Close()
	return WriteConfig(f, m)
}
