package minilang

import "fmt"

// Check performs semantic analysis: name resolution, light type checking,
// and structural validation. On success the AST is annotated (expression
// result types, resolved declarations) and safe for the translator,
// interpreter and simulator to consume without further checks.
//
// Rules:
//   - arrays are global; elements are accessed with a full index list;
//   - int and float mix freely in arithmetic (result float); comparisons
//     and logical operators yield int;
//   - assignment to an int variable truncates float values;
//   - user (non-builtin) function calls may appear only as standalone
//     statements or as the entire right-hand side of an assignment, so call
//     boundaries stay explicit for cost attribution;
//   - recursion is rejected (the skeleton pipeline inlines call trees);
//   - break/continue must be inside loops; main() must exist, have no
//     parameters, and return nothing.
func Check(p *Program) error {
	c := &checker{p: p}
	for _, g := range p.Globals {
		if err := c.checkGlobal(g); err != nil {
			return err
		}
	}
	for _, f := range p.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	main, ok := p.FuncByName["main"]
	if !ok {
		return fmt.Errorf("%s: no main function", p.Source)
	}
	if len(main.Params) != 0 || main.Ret != TypeVoid {
		return fmt.Errorf("%s:%s: main must take no parameters and return nothing", p.Source, main.Pos)
	}
	return c.checkRecursion()
}

// MustCheck panics if Check fails; for embedded workloads.
func MustCheck(p *Program) *Program {
	if err := Check(p); err != nil {
		panic(err)
	}
	return p
}

type checker struct {
	p  *Program
	fn *FuncDecl
	// scopes is a stack of local scopes mapping name -> type.
	scopes    []map[string]BaseType
	loopDepth int
}

func (c *checker) errf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s:%s: %s", c.p.Source, pos, fmt.Sprintf(format, args...))
}

func (c *checker) checkGlobal(g *GlobalDecl) error {
	if g.Type.Base == TypeVoid {
		return c.errf(g.Pos, "global %q has no type", g.Name)
	}
	// Extents may reference only literals and previously declared scalar
	// globals, so initialization order is well defined.
	for _, e := range g.Type.Extents {
		if err := c.checkExtent(g, e); err != nil {
			return err
		}
	}
	if g.Init != nil {
		if err := c.checkExtent(g, g.Init); err != nil {
			return err
		}
	}
	return nil
}

// checkExtent validates a global extent/initializer expression: constants
// and previously declared scalar globals combined with arithmetic.
func (c *checker) checkExtent(g *GlobalDecl, e Expr) error {
	switch t := e.(type) {
	case *IntLit:
		return nil
	case *FloatLit:
		return nil
	case *VarRef:
		prev, ok := c.p.GlobalByName[t.Name]
		if !ok {
			return c.errf(t.Pos, "global %q references unknown name %q", g.Name, t.Name)
		}
		if prev == g {
			return c.errf(t.Pos, "global %q references itself", g.Name)
		}
		if prev.Type.IsArray() {
			return c.errf(t.Pos, "global %q references array %q in a constant expression", g.Name, t.Name)
		}
		if !declaredBefore(c.p, prev, g) {
			return c.errf(t.Pos, "global %q references %q before its declaration", g.Name, t.Name)
		}
		t.Global = true
		t.T = prev.Type.Base
		return nil
	case *Binary:
		if t.Op.IsLogical() {
			return c.errf(t.Pos, "logical operator in constant expression")
		}
		if err := c.checkExtent(g, t.L); err != nil {
			return err
		}
		if err := c.checkExtent(g, t.R); err != nil {
			return err
		}
		t.T = numericResult(t.Op, t.L.ResultType(), t.R.ResultType())
		return nil
	case *Unary:
		if err := c.checkExtent(g, t.X); err != nil {
			return err
		}
		t.T = t.X.ResultType()
		return nil
	}
	return c.errf(e.ExprPos(), "unsupported expression in global declaration")
}

func declaredBefore(p *Program, a, b *GlobalDecl) bool {
	for _, g := range p.Globals {
		if g == a {
			return true
		}
		if g == b {
			return false
		}
	}
	return false
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = []map[string]BaseType{{}}
	c.loopDepth = 0
	for _, prm := range f.Params {
		if prm.Base == TypeVoid {
			return c.errf(f.Pos, "parameter %q has no type", prm.Name)
		}
		if _, dup := c.scopes[0][prm.Name]; dup {
			return c.errf(f.Pos, "duplicate parameter %q", prm.Name)
		}
		c.scopes[0][prm.Name] = prm.Base
	}
	return c.checkBlock(f.Body)
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]BaseType{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, t BaseType) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return c.errf(pos, "duplicate declaration of %q", name)
	}
	top[name] = t
	return nil
}

// lookupLocal resolves name in the local scope stack.
func (c *checker) lookupLocal(name string) (BaseType, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return TypeVoid, false
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch t := s.(type) {
	case *VarDecl:
		if t.Init != nil {
			// A declaration may be initialized by a whole user call, like
			// an assignment RHS.
			if err := c.checkExpr(t.Init, ctxCall); err != nil {
				return err
			}
		}
		return c.declare(t.Pos, t.Name, t.Base)

	case *Assign:
		if err := c.checkExpr(t.RHS, ctxCall); err != nil {
			return err
		}
		switch lhs := t.LHS.(type) {
		case *VarRef:
			if err := c.checkExpr(lhs, ctxValue); err != nil {
				return err
			}
			if lhs.Global {
				g := c.p.GlobalByName[lhs.Name]
				if g.Type.IsArray() {
					return c.errf(t.Pos, "cannot assign whole array %q", lhs.Name)
				}
			}
		case *Index:
			if err := c.checkExpr(lhs, ctxValue); err != nil {
				return err
			}
		default:
			return c.errf(t.Pos, "left side of assignment is not assignable")
		}
		return nil

	case *For:
		for _, e := range []Expr{t.From, t.To} {
			if err := c.checkExpr(e, ctxValue); err != nil {
				return err
			}
		}
		if t.Step != nil {
			if err := c.checkExpr(t.Step, ctxValue); err != nil {
				return err
			}
		}
		c.push()
		defer c.pop()
		if err := c.declare(t.Pos, t.Var, TypeInt); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(t.Body)

	case *While:
		if err := c.checkExpr(t.Cond, ctxValue); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(t.Body)

	case *If:
		if err := c.checkExpr(t.Cond, ctxValue); err != nil {
			return err
		}
		if err := c.checkBlock(t.Then); err != nil {
			return err
		}
		if t.Else != nil {
			return c.checkBlock(t.Else)
		}
		return nil

	case *ExprStmt:
		return c.checkExpr(t.X, ctxStmt)

	case *Return:
		if c.fn.Ret == TypeVoid {
			if t.X != nil {
				return c.errf(t.Pos, "%s returns no value", c.fn.Name)
			}
			return nil
		}
		if t.X == nil {
			return c.errf(t.Pos, "%s must return a %s", c.fn.Name, c.fn.Ret)
		}
		return c.checkExpr(t.X, ctxValue)

	case *Break:
		if c.loopDepth == 0 {
			return c.errf(t.Pos, "break outside loop")
		}
		return nil

	case *Continue:
		if c.loopDepth == 0 {
			return c.errf(t.Pos, "continue outside loop")
		}
		return nil
	}
	return c.errf(s.StmtPos(), "unhandled statement %T", s)
}

// Expression contexts: ctxValue is a nested value position (no user calls),
// ctxCall is the whole RHS of an assignment (user calls returning values
// allowed), ctxStmt is statement position (void user calls allowed).
const (
	ctxValue = iota
	ctxCall
	ctxStmt
)

// checkExpr resolves and types e under the given expression context.
func (c *checker) checkExpr(e Expr, ectx int) error {
	switch t := e.(type) {
	case *IntLit, *FloatLit:
		return nil

	case *VarRef:
		if bt, ok := c.lookupLocal(t.Name); ok {
			t.T = bt
			return nil
		}
		if g, ok := c.p.GlobalByName[t.Name]; ok {
			if g.Type.IsArray() {
				return c.errf(t.Pos, "array %q used without index", t.Name)
			}
			t.Global = true
			t.T = g.Type.Base
			return nil
		}
		return c.errf(t.Pos, "undefined variable %q", t.Name)

	case *Index:
		g, ok := c.p.GlobalByName[t.Name]
		if !ok {
			return c.errf(t.Pos, "undefined array %q", t.Name)
		}
		if !g.Type.IsArray() {
			return c.errf(t.Pos, "%q is not an array", t.Name)
		}
		if len(t.Indices) != len(g.Type.Extents) {
			return c.errf(t.Pos, "array %q has %d dimensions, %d indices given",
				t.Name, len(g.Type.Extents), len(t.Indices))
		}
		for _, ix := range t.Indices {
			if err := c.checkExpr(ix, ctxValue); err != nil {
				return err
			}
		}
		t.Decl = g
		t.T = g.Type.Base
		return nil

	case *Binary:
		if err := c.checkExpr(t.L, ctxValue); err != nil {
			return err
		}
		if err := c.checkExpr(t.R, ctxValue); err != nil {
			return err
		}
		if t.Op.IsComparison() || t.Op.IsLogical() {
			t.T = TypeInt
			return nil
		}
		t.T = numericResult(t.Op, t.L.ResultType(), t.R.ResultType())
		return nil

	case *Unary:
		if err := c.checkExpr(t.X, ctxValue); err != nil {
			return err
		}
		if t.Op == "!" {
			t.T = TypeInt
		} else {
			t.T = t.X.ResultType()
		}
		return nil

	case *Call:
		if arity, ok := Builtins[t.Name]; ok {
			if len(t.Args) != arity {
				return c.errf(t.Pos, "%s expects %d arguments, got %d", t.Name, arity, len(t.Args))
			}
			if t.Name == "exchange" && ectx != ctxStmt {
				return c.errf(t.Pos, "exchange() must be a standalone statement")
			}
			for _, a := range t.Args {
				if err := c.checkExpr(a, ctxValue); err != nil {
					return err
				}
			}
			t.Builtin = true
			t.T = TypeFloat
			return nil
		}
		f, ok := c.p.FuncByName[t.Name]
		if !ok {
			return c.errf(t.Pos, "call to undefined function %q", t.Name)
		}
		if ectx == ctxValue {
			return c.errf(t.Pos, "call to %q must be a standalone statement or the whole right-hand side of an assignment", t.Name)
		}
		if len(t.Args) != len(f.Params) {
			return c.errf(t.Pos, "%s expects %d arguments, got %d", t.Name, len(f.Params), len(t.Args))
		}
		for _, a := range t.Args {
			if err := c.checkExpr(a, ctxValue); err != nil {
				return err
			}
		}
		if f.Ret == TypeVoid && ectx != ctxStmt {
			return c.errf(t.Pos, "void function %q used as a value", t.Name)
		}
		t.Decl = f
		t.T = f.Ret
		return nil
	}
	return c.errf(e.ExprPos(), "unhandled expression %T", e)
}

// numericResult implements the int/float promotion rules. Integer division
// truncates (C-like); any float operand promotes the result.
func numericResult(op BinOp, l, r BaseType) BaseType {
	if l == TypeFloat || r == TypeFloat {
		return TypeFloat
	}
	_ = op
	return TypeInt
}

// checkRecursion rejects call cycles: the skeleton pipeline inlines callee
// trees, so recursion would not terminate (the paper targets scientific
// array codes where this holds).
func (c *checker) checkRecursion() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(f *FuncDecl) error
	visit = func(f *FuncDecl) error {
		switch color[f.Name] {
		case gray:
			return fmt.Errorf("%s: recursion involving %q is not supported", c.p.Source, f.Name)
		case black:
			return nil
		}
		color[f.Name] = gray
		var err error
		walkCalls(f.Body, func(call *Call) {
			if err != nil || call.Builtin || call.Decl == nil {
				return
			}
			err = visit(call.Decl)
		})
		if err != nil {
			return err
		}
		color[f.Name] = black
		return nil
	}
	for _, f := range c.p.Funcs {
		if err := visit(f); err != nil {
			return err
		}
	}
	return nil
}

// walkCalls visits every Call expression in a block, recursively.
func walkCalls(b *Block, visit func(*Call)) {
	for _, s := range b.Stmts {
		walkStmtCalls(s, visit)
	}
}

func walkStmtCalls(s Stmt, visit func(*Call)) {
	switch t := s.(type) {
	case *VarDecl:
		if t.Init != nil {
			walkExprCalls(t.Init, visit)
		}
	case *Assign:
		walkExprCalls(t.LHS, visit)
		walkExprCalls(t.RHS, visit)
	case *For:
		walkExprCalls(t.From, visit)
		walkExprCalls(t.To, visit)
		if t.Step != nil {
			walkExprCalls(t.Step, visit)
		}
		walkCalls(t.Body, visit)
	case *While:
		walkExprCalls(t.Cond, visit)
		walkCalls(t.Body, visit)
	case *If:
		walkExprCalls(t.Cond, visit)
		walkCalls(t.Then, visit)
		if t.Else != nil {
			walkCalls(t.Else, visit)
		}
	case *ExprStmt:
		walkExprCalls(t.X, visit)
	case *Return:
		if t.X != nil {
			walkExprCalls(t.X, visit)
		}
	}
}

func walkExprCalls(e Expr, visit func(*Call)) {
	switch t := e.(type) {
	case *Binary:
		walkExprCalls(t.L, visit)
		walkExprCalls(t.R, visit)
	case *Unary:
		walkExprCalls(t.X, visit)
	case *Index:
		for _, ix := range t.Indices {
			walkExprCalls(ix, visit)
		}
	case *Call:
		for _, a := range t.Args {
			walkExprCalls(a, visit)
		}
		visit(t)
	}
}
