package minilang

import (
	"fmt"
	"strings"
)

// Format renders a program back into parseable minilang source. The output
// round-trips: parsing it yields a structurally identical program (modulo
// source positions). Used by tooling that rewrites or generates programs.
func Format(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s: %s", g.Name, formatType(g.Type))
		if g.Init != nil {
			fmt.Fprintf(&b, " = %s", FormatExpr(g.Init))
		}
		b.WriteString(";\n")
	}
	for i, f := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			b.WriteByte('\n')
		}
		params := make([]string, len(f.Params))
		for j, prm := range f.Params {
			params[j] = fmt.Sprintf("%s: %s", prm.Name, prm.Base)
		}
		fmt.Fprintf(&b, "func %s(%s)", f.Name, strings.Join(params, ", "))
		if f.Ret != TypeVoid {
			fmt.Fprintf(&b, ": %s", f.Ret)
		}
		b.WriteString(" {\n")
		formatBlock(&b, f.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func formatType(t Type) string {
	var b strings.Builder
	for _, e := range t.Extents {
		fmt.Fprintf(&b, "[%s]", FormatExpr(e))
	}
	b.WriteString(t.Base.String())
	return b.String()
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range blk.Stmts {
		switch t := s.(type) {
		case *VarDecl:
			fmt.Fprintf(b, "%svar %s: %s", ind, t.Name, t.Base)
			if t.Init != nil {
				fmt.Fprintf(b, " = %s", FormatExpr(t.Init))
			}
			b.WriteString(";\n")
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, FormatExpr(t.LHS), FormatExpr(t.RHS))
		case *For:
			fmt.Fprintf(b, "%sfor %s = %s .. %s", ind, t.Var, FormatExpr(t.From), FormatExpr(t.To))
			if t.Step != nil {
				fmt.Fprintf(b, " step %s", FormatExpr(t.Step))
			}
			if t.Vec {
				b.WriteString(" @vec")
			}
			b.WriteString(" {\n")
			formatBlock(b, t.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, FormatExpr(t.Cond))
			formatBlock(b, t.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, FormatExpr(t.Cond))
			formatBlock(b, t.Then, depth+1)
			if t.Else != nil {
				fmt.Fprintf(b, "%s} else {\n", ind)
				formatBlock(b, t.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", ind, FormatExpr(t.X))
		case *Return:
			if t.X != nil {
				fmt.Fprintf(b, "%sreturn %s;\n", ind, FormatExpr(t.X))
			} else {
				fmt.Fprintf(b, "%sreturn;\n", ind)
			}
		case *Break:
			fmt.Fprintf(b, "%sbreak;\n", ind)
		case *Continue:
			fmt.Fprintf(b, "%scontinue;\n", ind)
		}
	}
}

// FormatExpr renders an expression in parseable form. Binary expressions
// are fully parenthesized, so precedence never needs reconstructing.
func FormatExpr(e Expr) string {
	switch t := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", t.Val)
	case *FloatLit:
		s := fmt.Sprintf("%g", t.Val)
		// Keep float literals lexically float (the parser types by form).
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		return t.Name
	case *Index:
		var b strings.Builder
		b.WriteString(t.Name)
		for _, ix := range t.Indices {
			fmt.Fprintf(&b, "[%s]", FormatExpr(ix))
		}
		return b.String()
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(t.L), t.Op, FormatExpr(t.R))
	case *Unary:
		return fmt.Sprintf("%s(%s)", t.Op, FormatExpr(t.X))
	case *Call:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", t.Name, strings.Join(args, ", "))
	}
	return "?"
}
