package minilang

import "fmt"

// BaseType is a scalar type.
type BaseType int

// Scalar types. TypeVoid is the "return type" of procedures.
const (
	TypeVoid BaseType = iota
	TypeInt
	TypeFloat
)

func (t BaseType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeVoid:
		return "void"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Type is a scalar or array type. Arrays carry extent expressions, which
// for globals must be constant after global-initializer evaluation.
type Type struct {
	Base    BaseType
	Extents []Expr // nil for scalars
}

// IsArray reports whether the type has extents.
func (t Type) IsArray() bool { return len(t.Extents) > 0 }

func (t Type) String() string {
	s := ""
	for range t.Extents {
		s += "[]"
	}
	return s + t.Base.String()
}

// Program is a parsed minilang compilation unit.
type Program struct {
	Source  string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl

	GlobalByName map[string]*GlobalDecl
	FuncByName   map[string]*FuncDecl
}

// Func returns the named function or an error.
func (p *Program) Func(name string) (*FuncDecl, error) {
	f, ok := p.FuncByName[name]
	if !ok {
		return nil, fmt.Errorf("minilang: no function %q in %s", name, p.Source)
	}
	return f, nil
}

// GlobalDecl declares a module-level scalar or array.
type GlobalDecl struct {
	Name string
	Type Type
	Init Expr // optional for scalars; must be nil for arrays
	Pos  Pos
}

// Param is a scalar function parameter.
type Param struct {
	Name string
	Base BaseType
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    BaseType // TypeVoid for procedures
	Body   *Block
	Pos    Pos
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// Stmt is a statement node.
type Stmt interface {
	StmtPos() Pos
	stmt()
}

type stmtBase struct{ Pos Pos }

// StmtPos returns the statement's source position.
func (s stmtBase) StmtPos() Pos { return s.Pos }
func (s stmtBase) stmt()        {}

// VarDecl declares a local scalar.
type VarDecl struct {
	stmtBase
	Name string
	Base BaseType
	Init Expr // optional
}

// Assign stores RHS into LHS (a scalar variable or array element).
type Assign struct {
	stmtBase
	LHS Expr // *VarRef or *Index
	RHS Expr
}

// For is a counted loop: Var runs From .. To (exclusive), step Step (1 if
// nil). Vec marks the loop as compiler-vectorizable (the simulator applies
// the machine's SIMD width to FP work in its directly-nested straight-line
// statements; the analytical model deliberately ignores the hint).
type For struct {
	stmtBase
	Var  string
	From Expr
	To   Expr
	Step Expr // nil = 1
	Vec  bool
	Body *Block
}

// While loops while Cond is true.
type While struct {
	stmtBase
	Cond Expr
	Body *Block
}

// If is a conditional with optional else (either *Block or a nested *If for
// else-if chains, normalized by the parser to ElseBlock possibly holding a
// single If statement).
type If struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block // nil if absent
}

// ExprStmt evaluates an expression for its effects (function calls).
type ExprStmt struct {
	stmtBase
	X Expr
}

// Return exits the enclosing function with an optional value.
type Return struct {
	stmtBase
	X Expr // nil for bare return
}

// Break exits the innermost loop.
type Break struct{ stmtBase }

// Continue skips to the next iteration of the innermost loop.
type Continue struct{ stmtBase }

// Expr is an expression node. Type information is filled in by Check.
type Expr interface {
	ExprPos() Pos
	// ResultType returns the type computed by semantic analysis
	// (TypeVoid before Check runs).
	ResultType() BaseType
	expr()
}

type exprBase struct {
	Pos Pos
	T   BaseType
}

// ExprPos returns the expression's source position.
func (e exprBase) ExprPos() Pos         { return e.Pos }
func (e exprBase) ResultType() BaseType { return e.T }
func (e exprBase) expr()                {}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Val float64
}

// VarRef references a scalar variable (local, parameter, or global).
type VarRef struct {
	exprBase
	Name string
	// Global is set by Check when the reference resolves to a global.
	Global bool
}

// Index references an element of a global array.
type Index struct {
	exprBase
	Name    string
	Indices []Expr
	// Decl is resolved by Check.
	Decl *GlobalDecl
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpAnd: "&&", OpOr: "||",
}

func (o BinOp) String() string { return binOpNames[o] }

// IsComparison reports whether the operator yields a boolean (int 0/1).
func (o BinOp) IsComparison() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return true
	}
	return false
}

// IsLogical reports whether the operator is && or ||.
func (o BinOp) IsLogical() bool { return o == OpAnd || o == OpOr }

// Binary applies a binary operator.
type Binary struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// Unary applies negation (-) or logical not (!).
type Unary struct {
	exprBase
	Op string // "-" or "!"
	X  Expr
}

// Call invokes a builtin math function or a user function.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Builtin is set by Check for math-library calls.
	Builtin bool
	// Decl is resolved by Check for user calls.
	Decl *FuncDecl
}
