package minilang

import (
	"fmt"
	"strings"
)

// Lexer tokenizes minilang source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	name string
}

// NewLexer returns a lexer over src; name labels diagnostics.
func NewLexer(name, src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, name: name}
}

// Lex tokenizes the whole input, returning the token stream terminated by
// an EOF token.
func Lex(name, src string) ([]Token, error) {
	lx := NewLexer(name, src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *Lexer) errf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s:%s: %s", lx.name, pos, fmt.Sprintf(format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return Token{}, lx.errf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: lx.pos()}, nil

scan:
	pos := lx.pos()
	c := lx.peek()
	switch {
	case isLetter(c):
		start := lx.off
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigitB(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case isDigitB(c):
		start := lx.off
		isFloat := false
		for lx.off < len(lx.src) {
			ch := lx.peek()
			if isDigitB(ch) {
				lx.advance()
				continue
			}
			if ch == '.' && lx.peek2() != '.' { // not the range operator ".."
				isFloat = true
				lx.advance()
				continue
			}
			if ch == 'e' || ch == 'E' {
				nxt := lx.peek2()
				if isDigitB(nxt) || nxt == '+' || nxt == '-' {
					isFloat = true
					lx.advance() // e
					lx.advance() // sign or digit
					continue
				}
			}
			break
		}
		text := lx.src[start:lx.off]
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case c == '"':
		lx.advance()
		start := lx.off
		for lx.off < len(lx.src) && lx.peek() != '"' {
			if lx.peek() == '\n' {
				return Token{}, lx.errf(pos, "newline in string literal")
			}
			lx.advance()
		}
		if lx.off >= len(lx.src) {
			return Token{}, lx.errf(pos, "unterminated string literal")
		}
		text := lx.src[start:lx.off]
		lx.advance() // closing quote
		return Token{Kind: TokString, Text: text, Pos: pos}, nil

	default:
		for _, op := range []string{"..", "==", "!=", "<=", ">=", "&&", "||"} {
			if strings.HasPrefix(lx.src[lx.off:], op) {
				lx.advance()
				lx.advance()
				return Token{Kind: TokPunct, Text: op, Pos: pos}, nil
			}
		}
		switch c {
		case '+', '-', '*', '/', '%', '<', '>', '=', '!', '(', ')', '{', '}', '[', ']', ',', ';', ':', '@':
			lx.advance()
			return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil
		}
		return Token{}, lx.errf(pos, "unexpected character %q", string(c))
	}
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigitB(c byte) bool { return c >= '0' && c <= '9' }
