package minilang

import "fmt"

// Segment is a straight-line run of simple statements within one block — a
// source basic block. Segments are the unit of cost attribution shared by
// the static translator (which emits one skeleton comp per segment) and the
// timing simulator (which attributes measured cycles per segment), so the
// analytical projection and the measured profile key on identical block
// identities.
type Segment struct {
	// Stmts are the member statements, in order.
	Stmts []Stmt
	// FuncName is the enclosing function.
	FuncName string
	// Pos is the position of the first statement.
	Pos Pos
}

// Label returns the block label: "L<line>" of the first statement.
func (s *Segment) Label() string { return fmt.Sprintf("L%d", s.Pos.Line) }

// BlockID returns "<func>/L<line>", the stable profile-matching identity.
func (s *Segment) BlockID() string { return s.FuncName + "/" + s.Label() }

// SegmentsOf splits the direct statements of a block into segments. A
// simple statement is a scalar declaration, an assignment, or an expression
// statement that performs no user-function call; control statements and
// user calls terminate segments and belong to none.
func SegmentsOf(funcName string, b *Block) []Segment {
	var out []Segment
	var cur []Stmt
	flush := func() {
		if len(cur) > 0 {
			out = append(out, Segment{Stmts: cur, FuncName: funcName, Pos: cur[0].StmtPos()})
			cur = nil
		}
	}
	for _, s := range b.Stmts {
		if IsSimpleStmt(s) {
			cur = append(cur, s)
			continue
		}
		flush()
	}
	flush()
	return out
}

// IsSimpleStmt reports whether s belongs in a straight-line segment. User
// calls and exchange() communication phases break segments: both transfer
// control (or time) out of the block and are modeled at their call sites.
func IsSimpleStmt(s Stmt) bool {
	switch t := s.(type) {
	case *VarDecl:
		return t.Init == nil || !containsNonSimple(t.Init)
	case *Assign:
		return !containsNonSimple(t.RHS) && !containsNonSimple(t.LHS)
	case *ExprStmt:
		return !containsNonSimple(t.X)
	}
	return false
}

func containsNonSimple(e Expr) bool {
	found := false
	walkExprCalls(e, func(c *Call) {
		if !c.Builtin || c.Name == "exchange" {
			found = true
		}
	})
	return found
}

// SegmentFor returns the segment of b containing s, or nil when s is not a
// simple statement of b.
func SegmentFor(funcName string, b *Block, s Stmt) *Segment {
	segs := SegmentsOf(funcName, b)
	for i := range segs {
		for _, m := range segs[i].Stmts {
			if m == s {
				return &segs[i]
			}
		}
	}
	return nil
}

// ContainsUserCall reports whether e contains a call to a user (non-
// builtin) function.
func ContainsUserCall(e Expr) bool {
	found := false
	walkExprCalls(e, func(c *Call) {
		if !c.Builtin {
			found = true
		}
	})
	return found
}

// OpCounts is a static operation census of an expression or statement: the
// translator's estimate of the instruction mix of one execution.
type OpCounts struct {
	// FLOPs counts floating-point arithmetic operations.
	FLOPs int
	// Divs counts floating-point divisions (a subset of FLOPs).
	Divs int
	// IOPs counts integer operations (including comparisons and index
	// arithmetic).
	IOPs int
	// Loads and Stores count array element accesses.
	Loads, Stores int
	// Lib counts builtin math-library invocations by name.
	Lib map[string]int
}

// Add accumulates o into c.
func (c *OpCounts) Add(o OpCounts) {
	c.FLOPs += o.FLOPs
	c.Divs += o.Divs
	c.IOPs += o.IOPs
	c.Loads += o.Loads
	c.Stores += o.Stores
	for k, v := range o.Lib {
		if c.Lib == nil {
			c.Lib = map[string]int{}
		}
		c.Lib[k] += v
	}
}

// Insts returns the total static instruction estimate.
func (c OpCounts) Insts() int {
	n := c.FLOPs + c.IOPs + c.Loads + c.Stores
	for _, v := range c.Lib {
		n += v
	}
	return n
}

// CountExpr statically counts the operations of one evaluation of e,
// assuming no short-circuiting (both operands of && / || are charged —
// matching the translator's first-order approximation).
func CountExpr(e Expr) OpCounts {
	var c OpCounts
	countExpr(e, false, &c)
	return c
}

func countExpr(e Expr, store bool, c *OpCounts) {
	switch t := e.(type) {
	case *IntLit, *FloatLit:
	case *VarRef:
		// Scalars are register-resident: no memory traffic counted, which
		// mirrors the paper's "stack variables are not captured" caveat.
	case *Index:
		for _, ix := range t.Indices {
			countExpr(ix, false, c)
			// Address computation: one integer multiply-add per dimension.
			c.IOPs++
		}
		if store {
			c.Stores++
		} else {
			c.Loads++
		}
	case *Binary:
		countExpr(t.L, false, c)
		countExpr(t.R, false, c)
		isFloat := t.L.ResultType() == TypeFloat || t.R.ResultType() == TypeFloat
		if isFloat && !t.Op.IsLogical() {
			c.FLOPs++
			if t.Op == OpDiv {
				c.Divs++
			}
		} else {
			c.IOPs++
		}
	case *Unary:
		countExpr(t.X, false, c)
		if t.X.ResultType() == TypeFloat && t.Op == "-" {
			c.FLOPs++
		} else {
			c.IOPs++
		}
	case *Call:
		for _, a := range t.Args {
			countExpr(a, false, c)
		}
		if t.Builtin {
			if c.Lib == nil {
				c.Lib = map[string]int{}
			}
			c.Lib[t.Name]++
		}
		// User calls are modeled at their call site by the translator, not
		// charged to the segment.
	}
}

// CountStmt statically counts the operations of one execution of a simple
// statement.
func CountStmt(s Stmt) OpCounts {
	var c OpCounts
	switch t := s.(type) {
	case *VarDecl:
		if t.Init != nil {
			countExpr(t.Init, false, &c)
		}
	case *Assign:
		countExpr(t.RHS, false, &c)
		countExpr(t.LHS, true, &c)
	case *ExprStmt:
		countExpr(t.X, false, &c)
	}
	return c
}

// CountSegment sums CountStmt over a segment's statements.
func CountSegment(seg *Segment) OpCounts {
	var c OpCounts
	for _, s := range seg.Stmts {
		c.Add(CountStmt(s))
	}
	return c
}
