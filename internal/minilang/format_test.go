package minilang

import (
	"strings"
	"testing"
)

func TestFormatRoundTripSample(t *testing.T) {
	p1 := parseSample(t)
	text := Format(p1)
	p2, err := Parse("rt", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if err := Check(p2); err != nil {
		t.Fatalf("re-check: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Errorf("Format not a fixed point:\n--- first\n%s\n--- second\n%s", text, Format(p2))
	}
}

func TestFormatPreservesStructure(t *testing.T) {
	src := `
global n: int = 4;
global a: [n][n + 1]float;

func main() {
  var x: float = 1.5;
  for i = 0 .. n step 2 @vec {
    a[i][0] = x / 2.0;
  }
  while (x > 0.1) {
    x = x * 0.5;
    if (x < 0.2) {
      break;
    } else {
      continue;
    }
  }
  helper(n);
}

func helper(k: int): int {
  if (k > 2) {
    return k - 1;
  }
  return 0;
}
`
	p1, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p1); err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	for _, want := range []string{
		"global a: [n][(n + 1)]float;", "step 2 @vec", "while (", "} else {",
		"break;", "continue;", "return (k - 1);", "func helper(k: int): int",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q:\n%s", want, text)
		}
	}
	p2, err := Parse("rt", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if err := Check(p2); err != nil {
		t.Fatal(err)
	}
}

func TestFormatExprForms(t *testing.T) {
	src := `
global a: [8]float;
func main() {
  var x: float = -(1.5) + abs(-(2.0));
  a[3] = pow(x, 2.0);
  var ok: int = !(x > 1.0) && (x != 0.0) || (x == 0.0);
}
`
	p1, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p1); err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	p2, err := Parse("rt", text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if err := Check(p2); err != nil {
		t.Fatal(err)
	}
	// Float literal stays float across the round trip.
	if !strings.Contains(text, "2.0") && !strings.Contains(text, "2)") {
		t.Errorf("float literal lost:\n%s", text)
	}
}

func TestFloatLiteralStaysFloat(t *testing.T) {
	// 4.0 formats with a decimal point so it re-parses as a float (integer
	// division semantics would otherwise change).
	src := "global r: float;\nfunc main() { r = 9.0 / 4.0; }"
	p1, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p1); err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	if strings.Contains(text, "9 /") || strings.Contains(text, "/ 4)") {
		t.Errorf("float literals degraded to ints:\n%s", text)
	}
}
