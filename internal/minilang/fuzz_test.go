package minilang_test

import (
	"strings"
	"testing"

	"skope/internal/minilang"
	"skope/internal/workloads"
)

// FuzzMinilangParse checks that the minilang front end never panics or
// overflows the stack on arbitrary input: Parse and Check either succeed
// or return a descriptive error (guard limits bound nesting and size).
func FuzzMinilangParse(f *testing.F) {
	// Seed with the five real benchmark programs, so mutations explore the
	// grammar the pipeline actually exercises.
	for _, w := range workloads.All(workloads.ScaleTest) {
		f.Add(w.Source)
	}
	for _, s := range []string{
		"func main() {}",
		"global n: int = 8;\nfunc main() { for i = 0 .. n { } }",
		"func main() { if 1 < 2 { } else if 2 < 3 { } else { } }",
		"func main() {" + strings.Repeat(" if 1 < 2 {", 300) + strings.Repeat(" }", 300) + " }",
		"func main() { x = " + strings.Repeat("(", 400) + "1" + strings.Repeat(")", 400) + "; }",
		"func f(" + strings.Repeat("a,", 100) + "b: int) {}",
		"",
		"func",
		"\x00\xff",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minilang.Parse("fuzz", src)

		// Lenient mode must never panic and always return a non-nil
		// partial program; rejected input must carry at least one
		// diagnostic, accepted input none (and an identical program).
		lprog, diags := minilang.ParseLenient("fuzz", src, nil)
		if lprog == nil {
			t.Fatalf("ParseLenient(%q) returned a nil program", src)
		}
		_ = minilang.Check(lprog)
		_ = minilang.Format(lprog)
		_ = minilang.StmtCount(lprog)
		if err != nil {
			if len(diags) == 0 {
				t.Fatalf("ParseLenient(%q): strict parse failed (%v) but no diagnostics", src, err)
			}
		} else {
			if len(diags) != 0 {
				t.Fatalf("ParseLenient(%q): diagnostics %v on input the strict parser accepts", src, diags)
			}
			if got, want := minilang.Format(lprog), minilang.Format(prog); got != want {
				t.Fatalf("ParseLenient(%q) formats differently from strict:\n%s\nvs\n%s", src, got, want)
			}
		}

		if err != nil {
			return
		}
		// Whatever parses must survive semantic analysis and formatting.
		_ = minilang.Check(prog)
		_ = minilang.Format(prog)
	})
}
