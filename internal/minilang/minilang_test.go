package minilang

import (
	"strings"
	"testing"
)

const sample = `
// sample program
global n: int = 64;
global tol: float = 0.001;
global a: [n][n]float;
global b: [n * n]float;

func main() {
  init();
  var iter: int = 0;
  var err: float = 1.0;
  while (err > tol) {
    err = sweep();
    iter = iter + 1;
    if (iter > 100) {
      break;
    }
  }
}

func init() {
  for i = 0 .. n {
    for j = 0 .. n @vec {
      a[i][j] = rand();
    }
  }
}

func sweep(): float {
  var acc: float = 0.0;
  for i = 1 .. n - 1 {
    for j = 1 .. n - 1 {
      var v: float = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]) / 4.0;
      acc = acc + abs(v - a[i][j]);
      b[i * n + j] = v;
    }
  }
  return acc / (n * n);
}
`

func parseSample(t *testing.T) *Program {
	t.Helper()
	p, err := Parse("sample", sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("t", "for i = 0 .. n { a[i] = 3.5e2; } // c\n/* block */ x != y")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tk.Text)
	}
	want := []string{"for", "i", "=", "0", "..", "n", "{", "a", "[", "i", "]", "=", "3.5e2", ";", "}", "x", "!=", "y"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v", kinds)
	}
}

func TestLexNumberKinds(t *testing.T) {
	toks, _ := Lex("t", "42 4.5 1e3 2..5")
	if toks[0].Kind != TokInt {
		t.Error("42 not int")
	}
	if toks[1].Kind != TokFloat {
		t.Error("4.5 not float")
	}
	if toks[2].Kind != TokFloat {
		t.Error("1e3 not float")
	}
	// "2..5" must lex as 2, .., 5 (not 2. then .5).
	if toks[3].Kind != TokInt || toks[4].Text != ".." || toks[5].Kind != TokInt {
		t.Errorf("range lexing broken: %v %v %v", toks[3], toks[4], toks[5])
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"\"unterminated", "/* unterminated", "$"} {
		if _, err := Lex("t", src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestParseSampleStructure(t *testing.T) {
	p := parseSample(t)
	if len(p.Globals) != 4 || len(p.Funcs) != 3 {
		t.Fatalf("globals=%d funcs=%d", len(p.Globals), len(p.Funcs))
	}
	a := p.GlobalByName["a"]
	if !a.Type.IsArray() || len(a.Type.Extents) != 2 || a.Type.Base != TypeFloat {
		t.Errorf("a type = %s", a.Type)
	}
	sweep := p.FuncByName["sweep"]
	if sweep.Ret != TypeFloat {
		t.Errorf("sweep ret = %s", sweep.Ret)
	}
	// init's inner loop carries @vec.
	initFn := p.FuncByName["init"]
	outer := initFn.Body.Stmts[0].(*For)
	inner := outer.Body.Stmts[0].(*For)
	if outer.Vec || !inner.Vec {
		t.Errorf("vec flags: outer=%v inner=%v", outer.Vec, inner.Vec)
	}
}

func TestSemaTypes(t *testing.T) {
	p := parseSample(t)
	sweep := p.FuncByName["sweep"]
	ret := sweep.Body.Stmts[2].(*Return)
	if ret.X.ResultType() != TypeFloat {
		t.Errorf("return type = %s", ret.X.ResultType())
	}
	// n*n is int.
	div := ret.X.(*Binary)
	if div.R.ResultType() != TypeInt {
		t.Errorf("n*n type = %s", div.R.ResultType())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no funcs":       "global n: int = 1;",
		"local array":    "func main() { var a: [3]float; }",
		"bad top":        "int x;",
		"unclosed block": "func main() {",
		"bad for":        "func main() { for { } }",
		"missing semi":   "func main() { var x: int = 1 }",
		"bad assign":     "func main() { 3 = x; }",
		"array init":     "global a: [4]float = 3; func main() {}",
		"dup func":       "func f() {} func f() {} func main() {}",
		"dup global":     "global n: int; global n: int; func main() {}",
		"bad annotation": "func main() { for i = 0 .. 3 @simd { } }",
		"else dangling":  "func main() { else {} }",
	}
	for name, src := range cases {
		if _, err := Parse(name, src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          "func f() {}",
		"main params":      "func main(x: int) {}",
		"main ret":         "func main(): int { return 1; }",
		"undefined var":    "func main() { var x: int = y; }",
		"undefined func":   "func main() { f(); }",
		"undefined array":  "func main() { a[0] = 1; }",
		"wrong dims":       "global a: [4][4]float; func main() { a[0] = 1.0; }",
		"scalar indexed":   "global n: int = 3; func main() { n[0] = 1; }",
		"array as scalar":  "global a: [4]float; func main() { var x: float = a; }",
		"whole array":      "global a: [4]float; func main() { a = 1; }",
		"break outside":    "func main() { break; }",
		"continue outside": "func main() { continue; }",
		"recursion":        "func main() { f(); } func f() { f(); }",
		"mutual recursion": "func main() { f(); } func f() { g(); } func g() { f(); }",
		"void as value":    "func main() { var x: float = 0; x = f(); } func f() {}",
		"nested user call": "func main() { var x: float = f() + 1; } func f(): float { return 1.0; }",
		"builtin arity":    "func main() { var x: float = exp(1, 2); }",
		"user arity":       "func main() { f(1); } func f() {}",
		"ret missing":      "func f(): float { return; } func main() {}",
		"ret extra":        "func f() { return 1; } func main() {}",
		"dup param":        "func f(x: int, x: int) {} func main() {}",
		"dup local":        "func main() { var x: int; var x: int; }",
		"extent unknown":   "global a: [m]float; func main() {}",
		"extent self":      "global m: int = m; func main() {}",
		"extent forward":   "global a: [m]float; global m: int = 4; func main() {}",
		"extent array ref": "global a: [4]float; global b: [a]float; func main() {}",
	}
	for name, src := range cases {
		p, err := Parse(name, src)
		if err != nil {
			t.Fatalf("%s: parse failed: %v", name, err)
		}
		if err := Check(p); err == nil {
			t.Errorf("%s: Check succeeded, want error", name)
		}
	}
}

func TestAssignWithUserCallRHSAllowed(t *testing.T) {
	src := "func main() { var x: float = 0; x = f(); } func f(): float { return 2.0; }"
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatalf("whole-RHS user call should be allowed: %v", err)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func main() {
  var x: int = 1;
  if (x > 2) { x = 0; }
  else if (x > 1) { x = 1; }
  else { x = 2; }
}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	ifs := p.Funcs[0].Body.Stmts[1].(*If)
	if ifs.Else == nil {
		t.Fatal("no else")
	}
	nested, ok := ifs.Else.Stmts[0].(*If)
	if !ok {
		t.Fatal("else-if not normalized to nested If")
	}
	if nested.Else == nil {
		t.Error("final else missing")
	}
}

func TestSegments(t *testing.T) {
	src := `
func main() {
  var x: float = 1.0;
  x = x * 2.0;
  for i = 0 .. 4 {
    x = x + 1.0;
  }
  x = x - 1.0;
  f();
  x = x / 2.0;
}

func f() {}
`
	p, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	main := p.FuncByName["main"]
	segs := SegmentsOf("main", main.Body)
	// Segment 1: var + assign; segment 2: after loop; segment 3: after call.
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	if len(segs[0].Stmts) != 2 || len(segs[1].Stmts) != 1 || len(segs[2].Stmts) != 1 {
		t.Errorf("segment sizes: %d %d %d", len(segs[0].Stmts), len(segs[1].Stmts), len(segs[2].Stmts))
	}
	if segs[0].BlockID() != "main/L3" {
		t.Errorf("segment 1 id = %s", segs[0].BlockID())
	}
	// SegmentFor finds the member.
	if got := SegmentFor("main", main.Body, main.Body.Stmts[1]); got == nil || got.Pos != segs[0].Pos {
		t.Error("SegmentFor failed")
	}
	if got := SegmentFor("main", main.Body, main.Body.Stmts[2]); got != nil {
		t.Error("SegmentFor matched a control statement")
	}
}

func TestCountExpr(t *testing.T) {
	p := parseSample(t)
	sweep := p.FuncByName["sweep"]
	inner := sweep.Body.Stmts[1].(*For).Body.Stmts[0].(*For)
	// var v = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]) / 4.0;
	decl := inner.Body.Stmts[0].(*VarDecl)
	c := CountStmt(decl)
	if c.Loads != 4 {
		t.Errorf("loads = %d, want 4", c.Loads)
	}
	if c.FLOPs != 4 { // 3 adds + 1 div
		t.Errorf("flops = %d, want 4", c.FLOPs)
	}
	if c.Divs != 1 {
		t.Errorf("divs = %d, want 1", c.Divs)
	}
	// Index arithmetic: i-1, i+1, j-1, j+1 are IOPs plus addressing IOPs.
	if c.IOPs < 8 {
		t.Errorf("iops = %d, want >= 8", c.IOPs)
	}
	// acc = acc + abs(v - a[i][j]);
	asn := inner.Body.Stmts[1].(*Assign)
	c2 := CountStmt(asn)
	if c2.Lib["abs"] != 1 {
		t.Errorf("lib abs = %d", c2.Lib["abs"])
	}
	if c2.Loads != 1 || c2.Stores != 0 {
		t.Errorf("acc stmt loads/stores = %d/%d", c2.Loads, c2.Stores)
	}
	// b[i*n+j] = v;
	st := inner.Body.Stmts[2].(*Assign)
	c3 := CountStmt(st)
	if c3.Stores != 1 {
		t.Errorf("store count = %d", c3.Stores)
	}
}

func TestOpCountsAddAndInsts(t *testing.T) {
	a := OpCounts{FLOPs: 2, IOPs: 3, Loads: 1, Lib: map[string]int{"exp": 1}}
	b := OpCounts{FLOPs: 1, Divs: 1, Stores: 2, Lib: map[string]int{"exp": 2, "rand": 1}}
	a.Add(b)
	if a.FLOPs != 3 || a.Divs != 1 || a.Stores != 2 || a.Lib["exp"] != 3 || a.Lib["rand"] != 1 {
		t.Errorf("Add result = %+v", a)
	}
	if a.Insts() != 3+3+1+2+3+1 {
		t.Errorf("Insts = %d", a.Insts())
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("t", "func main() {\n  var x: int = ;\n}")
	if err == nil || !strings.Contains(err.Error(), "t:2:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestFuncLookup(t *testing.T) {
	p := parseSample(t)
	if _, err := p.Func("sweep"); err != nil {
		t.Error(err)
	}
	if _, err := p.Func("nosuch"); err == nil {
		t.Error("Func(nosuch) should fail")
	}
}
