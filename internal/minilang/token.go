// Package minilang implements the source language analyzed by the
// toolchain. It stands in for the C/Fortran + ROSE-compiler half of the
// paper's application analysis engine (see DESIGN.md): a small, statically
// typed scientific array language with functions, counted and conditional
// loops, branches, global arrays, and math library calls.
//
// The five paper benchmarks are written in minilang (package workloads).
// Three independent consumers operate on the same AST:
//
//   - package translate performs the static source-to-source translation
//     into SKOPE-style code skeletons (instruction mix, data accesses,
//     control structure);
//   - package interp executes the program with branch instrumentation, the
//     gcov-style local profiling pass that supplies branch-outcome
//     statistics to the skeleton;
//   - package sim executes the program on a detailed machine timing model
//     (caches, latencies, vector units) to produce the measured profile the
//     analytical projections are validated against.
package minilang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt    // integer literal
	TokFloat  // floating literal
	TokString // quoted string (reserved for future use)
	TokPunct  // operator or punctuation
	TokKeyword
)

var tokKindNames = [...]string{"EOF", "identifier", "integer", "float", "string", "punct", "keyword"}

func (k TokKind) String() string {
	if int(k) < len(tokKindNames) {
		return tokKindNames[k]
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Keywords of the language.
var keywords = map[string]bool{
	"func": true, "global": true, "var": true, "for": true, "while": true,
	"if": true, "else": true, "return": true, "break": true, "continue": true,
	"step": true, "int": true, "float": true,
}

// Builtins are the math-library functions handled semi-analytically by the
// toolchain (§IV-C). The bool records whether the function takes two
// arguments (pow, min, max, mod) or one; rand takes zero.
var Builtins = map[string]int{
	"exp": 1, "log": 1, "sqrt": 1, "sin": 1, "cos": 1, "abs": 1, "floor": 1,
	"pow": 2, "min": 2, "max": 2, "mod": 2,
	"rand": 0,
	// exchange(bytes, msgs) models a communication phase (halo exchange,
	// reduction) of a multi-node execution; it returns 0. The translator
	// maps it to a skeleton comm statement, and the simulator charges the
	// machine's interconnect cost.
	"exchange": 2,
}
