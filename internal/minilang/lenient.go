package minilang

import (
	"fmt"

	"skope/internal/guard"
)

// ParseLenient parses minilang source in error-recovering mode. Instead of
// aborting at the first syntax error it drops the offending statement or
// top-level declaration, resynchronizes at the next ';', block boundary,
// or top-level keyword, records one guard.Diagnostic per recovery, and
// returns whatever program structure survived. The returned program is
// always non-nil; an input with no salvageable content yields an empty
// program plus diagnostics.
//
// On input that the strict parser accepts, ParseLenient returns a
// structurally identical program and zero diagnostics.
//
// Each "parse/syntax" diagnostic corresponds to exactly one dropped
// statement or declaration, which is how the pipeline derives its parse
// confidence (kept / (kept + dropped)).
func ParseLenient(name, src string, lim *guard.Limits) (*Program, []guard.Diagnostic) {
	empty := func(d guard.Diagnostic) (*Program, []guard.Diagnostic) {
		return &Program{
			Source:       name,
			GlobalByName: make(map[string]*GlobalDecl),
			FuncByName:   make(map[string]*FuncDecl),
		}, []guard.Diagnostic{d}
	}
	if err := lim.CheckSource(len(src)); err != nil {
		return empty(guard.Diagnostic{
			Severity: guard.SevError, Stage: "parse", Code: "limit",
			Message: fmt.Sprintf("%s: %v", name, err),
		})
	}
	toks, err := Lex(name, src)
	if err != nil {
		// The lexer fails only on malformed characters/literals; without a
		// token stream there is nothing to recover from.
		return empty(guard.Diagnostic{
			Severity: guard.SevError, Stage: "parse", Code: "lex",
			Message: err.Error(),
		})
	}
	if err := lim.CheckTokens(len(toks)); err != nil {
		return empty(guard.Diagnostic{
			Severity: guard.SevError, Stage: "parse", Code: "limit",
			Message: fmt.Sprintf("%s: %v", name, err),
		})
	}
	p := &mparser{name: name, toks: toks, lim: lim.Or(), lenient: true}
	prog := p.parseProgramLenient()
	return prog, p.diags
}

func (p *mparser) diag(sev guard.Severity, code, msg string) {
	p.diags = append(p.diags, guard.Diagnostic{
		Severity: sev, Stage: "parse", Code: code, Message: msg,
	})
}

// parseProgramLenient mirrors parseProgram with per-declaration recovery.
func (p *mparser) parseProgramLenient() *Program {
	prog := &Program{
		Source:       p.name,
		GlobalByName: make(map[string]*GlobalDecl),
		FuncByName:   make(map[string]*FuncDecl),
	}
	for p.cur().Kind != TokEOF {
		switch {
		case p.atKw("global"):
			g, err := p.parseGlobal()
			if err != nil {
				p.recoverTop(err)
				continue
			}
			if _, dup := prog.GlobalByName[g.Name]; dup {
				p.diag(guard.SevError, "duplicate", p.errf(p.cur(), "duplicate global %q", g.Name).Error())
				continue
			}
			prog.Globals = append(prog.Globals, g)
			prog.GlobalByName[g.Name] = g
		case p.atKw("func"):
			f, err := p.parseFunc()
			if err != nil {
				p.recoverTop(err)
				continue
			}
			if _, dup := prog.FuncByName[f.Name]; dup {
				p.diag(guard.SevError, "duplicate", p.errf(p.cur(), "duplicate function %q", f.Name).Error())
				continue
			}
			prog.Funcs = append(prog.Funcs, f)
			prog.FuncByName[f.Name] = f
		default:
			p.recoverTop(p.errf(p.cur(), "expected global or func at top level, found %q", p.cur().Text))
		}
	}
	if len(prog.Funcs) == 0 {
		p.diag(guard.SevError, "no-functions", fmt.Sprintf("%s: no functions", p.name))
	}
	return prog
}

// recoverTop records a dropped top-level declaration and skips ahead to
// the next top-level keyword (brace-aware, so a keyword inside a stray
// block does not resynchronize too early).
func (p *mparser) recoverTop(err error) {
	p.diag(guard.SevError, "syntax", err.Error())
	p.dropped++
	depth := 0
	// Always make progress, even when already positioned at a keyword.
	if p.cur().Kind == TokEOF {
		return
	}
	if p.atPunct("{") {
		depth++
	}
	p.next()
	for {
		switch {
		case p.cur().Kind == TokEOF:
			return
		case depth == 0 && (p.atKw("func") || p.atKw("global")):
			return
		case p.atPunct("{"):
			depth++
		case p.atPunct("}"):
			if depth > 0 {
				depth--
			}
		}
		p.next()
	}
}

// resyncStmt skips tokens after a failed statement: past the next ';' at
// the current brace depth, or up to (not past) the enclosing block's '}'.
func (p *mparser) resyncStmt() {
	depth := 0
	for {
		switch {
		case p.cur().Kind == TokEOF:
			return
		case p.atPunct("{"):
			depth++
		case p.atPunct("}"):
			if depth == 0 {
				return // leave for parseBlock to close
			}
			depth--
		case p.atPunct(";") && depth == 0:
			p.next()
			return
		}
		p.next()
	}
}

// StmtCount returns the number of statements in the program plus one per
// declaration — the denominator of the lenient parse-confidence score.
func StmtCount(prog *Program) int {
	n := len(prog.Globals)
	for _, f := range prog.Funcs {
		n++
		n += blockStmtCount(f.Body)
	}
	return n
}

func blockStmtCount(b *Block) int {
	if b == nil {
		return 0
	}
	n := 0
	for _, s := range b.Stmts {
		n++
		switch t := s.(type) {
		case *For:
			n += blockStmtCount(t.Body)
		case *While:
			n += blockStmtCount(t.Body)
		case *If:
			n += blockStmtCount(t.Then)
			n += blockStmtCount(t.Else)
		}
	}
	return n
}
