package minilang

import (
	"fmt"
	"strconv"

	"skope/internal/guard"
)

// Parse lexes and parses minilang source under the default guard limits;
// name labels diagnostics.
func Parse(name, src string) (*Program, error) {
	return ParseWithLimits(name, src, nil)
}

// ParseWithLimits parses under explicit guard limits (nil means
// guard.Default): source size, token count, expression nesting, and
// statement-block nesting are all capped, returning guard.ErrLimit errors
// instead of unbounded recursion or allocation.
func ParseWithLimits(name, src string, lim *guard.Limits) (*Program, error) {
	if err := lim.CheckSource(len(src)); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	toks, err := Lex(name, src)
	if err != nil {
		return nil, err
	}
	if err := lim.CheckTokens(len(toks)); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &mparser{name: name, toks: toks, lim: lim.Or()}
	return p.parseProgram()
}

// MustParse parses src and panics on error; for embedded workloads.
func MustParse(name, src string) *Program {
	prog, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return prog
}

type mparser struct {
	name string
	toks []Token
	i    int
	lim  *guard.Limits
	// exprDepth and nestDepth track live parser recursion against the
	// guard limits (anchored at parseExpr/parseUnary and parseBlock).
	exprDepth, nestDepth int
	// lenient switches statement-level error recovery on inside
	// parseBlock (see lenient.go). Strict parsing never sets it.
	lenient bool
	diags   []guard.Diagnostic
	dropped int // statements/declarations lost to recovery
}

func (p *mparser) enterExpr() error {
	p.exprDepth++
	if err := p.lim.CheckExprDepth(p.exprDepth); err != nil {
		return fmt.Errorf("%s:%s: %w", p.name, p.cur().Pos, err)
	}
	return nil
}

func (p *mparser) enterBlock() error {
	p.nestDepth++
	if err := p.lim.CheckNestDepth(p.nestDepth); err != nil {
		return fmt.Errorf("%s:%s: %w", p.name, p.cur().Pos, err)
	}
	return nil
}

func (p *mparser) cur() Token  { return p.toks[p.i] }
func (p *mparser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *mparser) errf(t Token, format string, args ...any) error {
	return fmt.Errorf("%s:%s: %s", p.name, t.Pos, fmt.Sprintf(format, args...))
}

func (p *mparser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *mparser) atPunct(text string) bool { return p.at(TokPunct, text) }
func (p *mparser) atKw(text string) bool    { return p.at(TokKeyword, text) }

func (p *mparser) expectPunct(text string) (Token, error) {
	if !p.atPunct(text) {
		return Token{}, p.errf(p.cur(), "expected %q, found %q", text, p.cur().Text)
	}
	return p.next(), nil
}

func (p *mparser) expectKw(text string) (Token, error) {
	if !p.atKw(text) {
		return Token{}, p.errf(p.cur(), "expected keyword %q, found %q", text, p.cur().Text)
	}
	return p.next(), nil
}

func (p *mparser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, p.errf(p.cur(), "expected identifier, found %q", p.cur().Text)
	}
	return p.next(), nil
}

func (p *mparser) parseProgram() (*Program, error) {
	prog := &Program{
		Source:       p.name,
		GlobalByName: make(map[string]*GlobalDecl),
		FuncByName:   make(map[string]*FuncDecl),
	}
	for p.cur().Kind != TokEOF {
		switch {
		case p.atKw("global"):
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.GlobalByName[g.Name]; dup {
				return nil, p.errf(p.cur(), "duplicate global %q", g.Name)
			}
			prog.Globals = append(prog.Globals, g)
			prog.GlobalByName[g.Name] = g
		case p.atKw("func"):
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.FuncByName[f.Name]; dup {
				return nil, p.errf(p.cur(), "duplicate function %q", f.Name)
			}
			prog.Funcs = append(prog.Funcs, f)
			prog.FuncByName[f.Name] = f
		default:
			return nil, p.errf(p.cur(), "expected global or func at top level, found %q", p.cur().Text)
		}
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("%s: no functions", p.name)
	}
	return prog, nil
}

func (p *mparser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expectKw("global")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Type: typ, Pos: kw.Pos}
	if p.atPunct("=") {
		p.next()
		g.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if typ.IsArray() {
			return nil, p.errf(name, "array global %q cannot have an initializer", g.Name)
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *mparser) parseType() (Type, error) {
	var t Type
	for p.atPunct("[") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return t, err
		}
		t.Extents = append(t.Extents, e)
		if _, err := p.expectPunct("]"); err != nil {
			return t, err
		}
	}
	base, err := p.parseBaseType()
	if err != nil {
		return t, err
	}
	t.Base = base
	return t, nil
}

func (p *mparser) parseBaseType() (BaseType, error) {
	switch {
	case p.atKw("int"):
		p.next()
		return TypeInt, nil
	case p.atKw("float"):
		p.next()
		return TypeFloat, nil
	}
	return TypeVoid, p.errf(p.cur(), "expected type, found %q", p.cur().Text)
}

func (p *mparser) parseFunc() (*FuncDecl, error) {
	kw, _ := p.expectKw("func")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Pos: kw.Pos, Ret: TypeVoid}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.atPunct(")") {
		if len(f.Params) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, Param{Name: pn.Text, Base: base})
	}
	p.next() // ")"
	if p.atPunct(":") {
		p.next()
		f.Ret, err = p.parseBaseType()
		if err != nil {
			return nil, err
		}
	}
	f.Body, err = p.parseBlock()
	return f, err
}

func (p *mparser) parseBlock() (*Block, error) {
	if err := p.enterBlock(); err != nil {
		return nil, err
	}
	defer func() { p.nestDepth-- }()
	open, err := p.expectPunct("{")
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: open.Pos}
	for !p.atPunct("}") {
		if p.cur().Kind == TokEOF {
			if p.lenient {
				p.diag(guard.SevWarn, "unclosed-block",
					p.errf(open, "unterminated block (implicitly closed)").Error())
				return b, nil
			}
			return nil, p.errf(open, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			if p.lenient {
				// Drop the statement, resynchronize at the next ';' or
				// the block's closing '}', and keep parsing.
				p.diag(guard.SevError, "syntax", err.Error())
				p.dropped++
				p.resyncStmt()
				continue
			}
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // "}"
	return b, nil
}

func (p *mparser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atKw("var"):
		return p.parseVarDecl()
	case p.atKw("for"):
		return p.parseFor()
	case p.atKw("while"):
		return p.parseWhile()
	case p.atKw("if"):
		return p.parseIf()
	case p.atKw("return"):
		p.next()
		r := &Return{stmtBase: stmtBase{Pos: t.Pos}}
		if !p.atPunct(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return r, nil
	case p.atKw("break"):
		p.next()
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Break{stmtBase{Pos: t.Pos}}, nil
	case p.atKw("continue"):
		p.next()
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Continue{stmtBase{Pos: t.Pos}}, nil
	default:
		// Expression or assignment.
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.atPunct("=") {
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			switch lhs.(type) {
			case *VarRef, *Index:
			default:
				return nil, p.errf(t, "left side of assignment is not assignable")
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &Assign{stmtBase: stmtBase{Pos: t.Pos}, LHS: lhs, RHS: rhs}, nil
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase: stmtBase{Pos: t.Pos}, X: lhs}, nil
	}
}

func (p *mparser) parseVarDecl() (Stmt, error) {
	kw, _ := p.expectKw("var")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	if p.atPunct("[") {
		return nil, p.errf(kw, "arrays must be declared global (local %q)", name.Text)
	}
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{stmtBase: stmtBase{Pos: kw.Pos}, Name: name.Text, Base: base}
	if p.atPunct("=") {
		p.next()
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *mparser) parseFor() (Stmt, error) {
	kw, _ := p.expectKw("for")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("="); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(".."); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f := &For{stmtBase: stmtBase{Pos: kw.Pos}, Var: name.Text, From: from, To: to}
	if p.atKw("step") {
		p.next()
		f.Step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.atPunct("@") {
		p.next()
		ann, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if ann.Text != "vec" {
			return nil, p.errf(ann, "unknown loop annotation @%s (only @vec)", ann.Text)
		}
		f.Vec = true
	}
	f.Body, err = p.parseBlock()
	return f, err
}

func (p *mparser) parseWhile() (Stmt, error) {
	kw, _ := p.expectKw("while")
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	w := &While{stmtBase: stmtBase{Pos: kw.Pos}, Cond: cond}
	w.Body, err = p.parseBlock()
	return w, err
}

func (p *mparser) parseIf() (Stmt, error) {
	// "else if" chains recurse here without passing through parseBlock,
	// so the chain counts against the nesting limit as well.
	if err := p.enterBlock(); err != nil {
		return nil, err
	}
	defer func() { p.nestDepth-- }()
	kw, _ := p.expectKw("if")
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	s := &If{stmtBase: stmtBase{Pos: kw.Pos}, Cond: cond}
	s.Then, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.atKw("else") {
		p.next()
		if p.atKw("if") {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = &Block{Stmts: []Stmt{nested}, Pos: nested.StmtPos()}
		} else {
			s.Else, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Expression parsing with C-like precedence:
// or > and > comparison > additive > multiplicative > unary > postfix.
// parseExpr and parseUnary are the recursion anchors for the expression
// nesting limit: parenthesized/indexed/call subexpressions re-enter via
// parseExpr, unary chains recurse in parseUnary.
func (p *mparser) parseExpr() (Expr, error) {
	if err := p.enterExpr(); err != nil {
		return nil, err
	}
	defer func() { p.exprDepth-- }()
	return p.parseOr()
}

func (p *mparser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atPunct("||") {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: pos}, Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *mparser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.atPunct("&&") {
		pos := p.next().Pos
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: pos}, Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]BinOp{
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
}

func (p *mparser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokPunct {
		if op, ok := cmpOps[p.cur().Text]; ok {
			pos := p.next().Pos
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{exprBase: exprBase{Pos: pos}, Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *mparser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := OpAdd
		if p.cur().Text == "-" {
			op = OpSub
		}
		pos := p.next().Pos
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: pos}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *mparser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") || p.atPunct("%") {
		var op BinOp
		switch p.cur().Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpRem
		}
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: pos}, Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *mparser) parseUnary() (Expr, error) {
	if p.atPunct("-") || p.atPunct("!") {
		if err := p.enterExpr(); err != nil {
			return nil, err
		}
		defer func() { p.exprDepth-- }()
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *mparser) parsePostfix() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer literal")
		}
		return &IntLit{exprBase: exprBase{Pos: t.Pos, T: TypeInt}, Val: v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t, "bad float literal")
		}
		return &FloatLit{exprBase: exprBase{Pos: t.Pos, T: TypeFloat}, Val: v}, nil
	case TokIdent:
		p.next()
		switch {
		case p.atPunct("("):
			p.next()
			call := &Call{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for !p.atPunct(")") {
				if len(call.Args) > 0 {
					if _, err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // ")"
			return call, nil
		case p.atPunct("["):
			idx := &Index{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for p.atPunct("[") {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				idx.Indices = append(idx.Indices, e)
				if _, err := p.expectPunct("]"); err != nil {
					return nil, err
				}
			}
			return idx, nil
		default:
			return &VarRef{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
		}
	case TokPunct:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf(t, "unexpected token %q in expression", t.Text)
}
