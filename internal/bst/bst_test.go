package bst

import (
	"strings"
	"testing"

	"skope/internal/expr"
	"skope/internal/skeleton"
)

const fixture = `
def main(n, m)
  var A[n][m]
  set knob = 0
  for i = 0 : n label="outer"
    comp flops=4 loads=2 stores=1 name="init"
    if prob=0.3
      set knob = 1
    else
      set knob = 0
    end
    call foo(i, knob)
  end
  lib exp count=n name="expcall"
end

def foo(x, k)
  if cond = k == 1
    comp flops=100*x loads=2*x name="heavy"
  end
  while iters=10
    comp flops=8 name="solve"
    break prob=0.01
  end
  return
end
`

func build(t *testing.T) *Tree {
	t.Helper()
	prog, err := skeleton.Parse("fixture", fixture)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildStructure(t *testing.T) {
	tree := build(t)
	if len(tree.Order) != 2 {
		t.Fatalf("got %d function roots", len(tree.Order))
	}
	main, err := tree.Func("main")
	if err != nil {
		t.Fatal(err)
	}
	if main.Kind != KindFunc || main.FuncName != "main" {
		t.Errorf("main root = %+v", main)
	}
	// main children: var, set, loop, lib
	if len(main.Children) != 4 {
		t.Fatalf("main has %d children, want 4", len(main.Children))
	}
	loop := main.Children[2]
	if loop.Kind != KindLoop || loop.Label() != "outer" {
		t.Errorf("loop node = kind %s label %q", loop.Kind, loop.Label())
	}
	// loop children: comp, branch, call
	if len(loop.Children) != 3 {
		t.Fatalf("loop has %d children", len(loop.Children))
	}
	branch := loop.Children[1]
	if branch.Kind != KindBranch {
		t.Fatalf("branch kind = %s", branch.Kind)
	}
	// branch children: case + else
	if len(branch.Children) != 2 {
		t.Fatalf("branch has %d children", len(branch.Children))
	}
	if branch.Children[0].Kind != KindCase || branch.Children[1].Kind != KindElse {
		t.Errorf("branch children kinds = %s, %s", branch.Children[0].Kind, branch.Children[1].Kind)
	}
	if _, err := tree.Func("nosuch"); err == nil {
		t.Error("Func(nosuch) should fail")
	}
}

func TestNodeIDsUniqueAndPreorder(t *testing.T) {
	tree := build(t)
	seen := make(map[int]bool)
	count := 0
	for _, root := range tree.Order {
		Walk(root, func(n *Node) bool {
			if seen[n.ID] {
				t.Errorf("duplicate node ID %d", n.ID)
			}
			seen[n.ID] = true
			count++
			return true
		})
	}
	if count != tree.NumNodes() {
		t.Errorf("walk count %d != NumNodes %d", count, tree.NumNodes())
	}
}

func TestWalkPrune(t *testing.T) {
	tree := build(t)
	main, _ := tree.Func("main")
	visited := 0
	Walk(main, func(n *Node) bool {
		visited++
		return n.Kind != KindLoop // prune below the loop
	})
	// main + var + set + loop + lib = 5
	if visited != 5 {
		t.Errorf("visited %d nodes with pruning, want 5", visited)
	}
}

func TestBlockIDStable(t *testing.T) {
	tree := build(t)
	foo, _ := tree.Func("foo")
	var heavy *Node
	Walk(foo, func(n *Node) bool {
		if n.Kind == KindComp && n.Label() == "heavy" {
			heavy = n
		}
		return true
	})
	if heavy == nil {
		t.Fatal("heavy comp not found")
	}
	if heavy.BlockID() != "foo/heavy" {
		t.Errorf("BlockID = %q", heavy.BlockID())
	}
}

func TestStaticInsts(t *testing.T) {
	prog := skeleton.MustParse("t", "def main(n)\ncomp flops=4 loads=2 stores=1\ncomp flops=3*n loads=n\ncomp insts=7 flops=100\ncomp\nend\n")
	body := prog.Funcs[0].Body
	cases := []struct {
		idx  int
		want int
	}{
		{0, 7}, // 4+2+1
		{1, 4}, // 3*1 + 1
		{2, 7}, // explicit insts
		{3, 1}, // floor of 1
	}
	for _, c := range cases {
		comp := body[c.idx].(*skeleton.Comp)
		if got := StaticInsts(comp); got != c.want {
			t.Errorf("StaticInsts(#%d) = %d, want %d", c.idx, got, c.want)
		}
	}
}

func TestTotalStaticInsts(t *testing.T) {
	tree := build(t)
	// init: 4+2+1=7; heavy: 100*1+2*1=102; solve: 8; lib: 4 => 121
	if got := tree.TotalStaticInsts(); got != 121 {
		t.Errorf("TotalStaticInsts = %d, want 121", got)
	}
}

func TestDumpContainsStructure(t *testing.T) {
	tree := build(t)
	d := tree.Dump()
	for _, want := range []string{"func main", "loop outer", "comp init", "branch", "case", "else", "lib expcall", "while"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

func TestEvalAtOnesNegativeClamped(t *testing.T) {
	e := expr.MustParse("0 - 5")
	if v := evalAtOnes(e); v != 0 {
		t.Errorf("evalAtOnes(-5) = %g, want 0", v)
	}
	if v := evalAtOnes(nil); v != 0 {
		t.Errorf("evalAtOnes(nil) = %g, want 0", v)
	}
}

func TestKindString(t *testing.T) {
	if KindFunc.String() != "func" || KindContinue.String() != "continue" {
		t.Error("Kind.String broken")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("out-of-range Kind.String broken")
	}
}
