// Package bst implements the Block Skeleton Tree of the paper (Figure 2(b)):
// the parsed, input-independent tree form of a code skeleton. Each node
// corresponds to one skeleton statement; statements that encapsulate other
// statements (function definitions, loops, branches) own them as children.
//
// The BST deliberately contains no information about the input — it alone
// does not determine control flow or data flow. The Bayesian Execution Tree
// (package core) conceptually traverses the BST, mounting callee trees at
// call sites, to mimic the run-time execution for a given input context.
package bst

import (
	"fmt"
	"math"
	"strings"

	"skope/internal/expr"
	"skope/internal/skeleton"
)

// Kind classifies BST nodes.
type Kind int

// Node kinds. Branch nodes own one Case child per if/elif arm plus an
// optional Else child; bodies hang off those group nodes.
const (
	KindFunc Kind = iota
	KindComp
	KindLib
	KindComm
	KindLoop
	KindWhile
	KindBranch
	KindCase
	KindElse
	KindCall
	KindSet
	KindVar
	KindReturn
	KindBreak
	KindContinue
	// KindHole marks a statement the lenient parser could not understand:
	// a placeholder carrying position but no modelable content. Strict
	// model builds reject it; lenient builds charge it zero work and mark
	// the surrounding projection as assumed.
	KindHole
)

var kindNames = [...]string{
	"func", "comp", "lib", "comm", "loop", "while", "branch", "case", "else",
	"call", "set", "var", "return", "break", "continue", "hole",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one BST node.
type Node struct {
	// ID is unique within the Tree, assigned in construction (pre-order).
	ID   int
	Kind Kind
	// FuncName is the skeleton function this node belongs to.
	FuncName string
	// Line is the source line of the underlying statement.
	Line int

	// Stmt is the underlying skeleton statement (nil for KindFunc,
	// KindCase, KindElse).
	Stmt skeleton.Stmt
	// Fn is set for KindFunc nodes.
	Fn *skeleton.FuncDef
	// Case is set for KindCase nodes.
	Case *skeleton.IfCase

	Children []*Node
}

// Label returns a human-readable identity for the node: the comp/lib block
// name, loop label, or kind@line.
func (n *Node) Label() string {
	switch n.Kind {
	case KindFunc:
		return n.FuncName
	case KindComp:
		return n.Stmt.(*skeleton.Comp).Name
	case KindLib:
		return n.Stmt.(*skeleton.Lib).Name
	case KindComm:
		return n.Stmt.(*skeleton.Comm).Name
	case KindLoop:
		if l := n.Stmt.(*skeleton.Loop); l.Label != "" {
			return l.Label
		}
	case KindWhile:
		if w := n.Stmt.(*skeleton.While); w.Label != "" {
			return w.Label
		}
	}
	return fmt.Sprintf("%s@%s:%d", n.Kind, n.FuncName, n.Line)
}

// BlockID returns the stable identity used to match analytical projections
// against measured profiles: "<func>/<label>".
func (n *Node) BlockID() string {
	return n.FuncName + "/" + n.Label()
}

// Tree is the BST of a whole program: one rooted tree per function.
type Tree struct {
	Prog  *skeleton.Program
	Funcs map[string]*Node
	// Order lists function roots in program order.
	Order []*Node
	nodes int
}

// NumNodes returns the total number of nodes in the tree.
func (t *Tree) NumNodes() int { return t.nodes }

// Func returns the BST root of the named function.
func (t *Tree) Func(name string) (*Node, error) {
	n, ok := t.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("bst: no function %q", name)
	}
	return n, nil
}

// Build constructs the BST for a validated skeleton program.
func Build(prog *skeleton.Program) (*Tree, error) {
	t := &Tree{Prog: prog, Funcs: make(map[string]*Node, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		root := &Node{
			ID: t.nextID(), Kind: KindFunc, FuncName: f.Name, Line: f.Line, Fn: f,
		}
		var err error
		root.Children, err = t.buildBody(f.Name, f.Body)
		if err != nil {
			return nil, err
		}
		t.Funcs[f.Name] = root
		t.Order = append(t.Order, root)
	}
	return t, nil
}

// MustBuild builds the BST and panics on error; for embedded fixtures.
func MustBuild(prog *skeleton.Program) *Tree {
	t, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) nextID() int {
	t.nodes++
	return t.nodes
}

func (t *Tree) buildBody(fn string, body []skeleton.Stmt) ([]*Node, error) {
	var out []*Node
	for _, s := range body {
		n := &Node{ID: t.nextID(), FuncName: fn, Line: s.Pos(), Stmt: s}
		switch st := s.(type) {
		case *skeleton.Comp:
			n.Kind = KindComp
		case *skeleton.Lib:
			n.Kind = KindLib
		case *skeleton.Comm:
			n.Kind = KindComm
		case *skeleton.Loop:
			n.Kind = KindLoop
			kids, err := t.buildBody(fn, st.Body)
			if err != nil {
				return nil, err
			}
			n.Children = kids
		case *skeleton.While:
			n.Kind = KindWhile
			kids, err := t.buildBody(fn, st.Body)
			if err != nil {
				return nil, err
			}
			n.Children = kids
		case *skeleton.If:
			n.Kind = KindBranch
			for i := range st.Cases {
				c := &st.Cases[i]
				cn := &Node{
					ID: t.nextID(), Kind: KindCase, FuncName: fn, Line: c.Line, Case: c,
				}
				kids, err := t.buildBody(fn, c.Body)
				if err != nil {
					return nil, err
				}
				cn.Children = kids
				n.Children = append(n.Children, cn)
			}
			if st.Else != nil {
				en := &Node{ID: t.nextID(), Kind: KindElse, FuncName: fn, Line: st.Pos()}
				kids, err := t.buildBody(fn, st.Else)
				if err != nil {
					return nil, err
				}
				en.Children = kids
				n.Children = append(n.Children, en)
			}
		case *skeleton.Call:
			n.Kind = KindCall
		case *skeleton.Set:
			n.Kind = KindSet
		case *skeleton.VarDecl:
			n.Kind = KindVar
		case *skeleton.Return:
			n.Kind = KindReturn
		case *skeleton.Break:
			n.Kind = KindBreak
		case *skeleton.Continue:
			n.Kind = KindContinue
		case *skeleton.Hole:
			n.Kind = KindHole
		default:
			return nil, fmt.Errorf("bst: unhandled statement type %T at line %d", s, s.Pos())
		}
		out = append(out, n)
	}
	return out, nil
}

// Walk visits n and its descendants in pre-order. If visit returns false the
// subtree below the current node is skipped.
func Walk(n *Node, visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, visit)
	}
}

// StaticInsts estimates the static instruction footprint of a comp
// statement, the unit of the paper's code-leanness criterion. If the
// skeleton supplies an explicit constant insts attribute it is used;
// otherwise the operation-count expressions are evaluated with every free
// variable bound to 1 (i.e. treating symbolic counts as loop-carried, so one
// static instruction per operation kind instance), with a floor of 1.
func StaticInsts(c *skeleton.Comp) int {
	if c.M.Insts != nil {
		if v, ok := expr.IsConst(c.M.Insts); ok && v > 0 {
			return int(math.Round(v))
		}
	}
	total := 0.0
	for _, e := range []expr.Expr{c.M.FLOPs, c.M.IOPs, c.M.Loads, c.M.Stores} {
		total += evalAtOnes(e)
	}
	if total < 1 {
		return 1
	}
	return int(math.Round(total))
}

// LibStaticInsts is the static footprint charged to a library call site.
// A call is a handful of static instructions regardless of its dynamic cost.
const LibStaticInsts = 4

// CommStaticInsts is the static footprint charged to a communication call
// site (an MPI call is a few instructions of application code).
const CommStaticInsts = 4

func evalAtOnes(e expr.Expr) float64 {
	if e == nil {
		return 0
	}
	env := expr.Env{}
	for _, v := range expr.FreeVars(e) {
		env[v] = 1
	}
	val, err := e.Eval(env)
	if err != nil || val < 0 {
		return 0
	}
	return val
}

// TotalStaticInsts sums StaticInsts over all comp and lib nodes of the
// program: the denominator of the code-leanness criterion.
func (t *Tree) TotalStaticInsts() int {
	total := 0
	for _, root := range t.Order {
		Walk(root, func(n *Node) bool {
			switch n.Kind {
			case KindComp:
				total += StaticInsts(n.Stmt.(*skeleton.Comp))
			case KindLib:
				total += LibStaticInsts
			case KindComm:
				total += CommStaticInsts
			}
			return true
		})
	}
	return total
}

// Dump renders the tree structure for debugging and golden tests.
func (t *Tree) Dump() string {
	var b strings.Builder
	for _, root := range t.Order {
		dumpNode(&b, root, 0)
	}
	return b.String()
}

func dumpNode(b *strings.Builder, n *Node, depth int) {
	fmt.Fprintf(b, "%s%s %s (line %d)\n", strings.Repeat("  ", depth), n.Kind, n.Label(), n.Line)
	for _, c := range n.Children {
		dumpNode(b, c, depth+1)
	}
}
