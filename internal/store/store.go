// Package store is the content-addressed evaluation cache behind the
// long-running analysis service (cmd/skoped) and cmd/skope's -store mode:
// a durable map from what an evaluation *is* to what it *produced*, shared
// by every session, sweep, and process that points at the same file.
//
// Identity, not provenance, is the key. An analytical evaluation is fully
// determined by three fingerprints:
//
//   - the layout fingerprint (hotspot.Layout.Fingerprint): the workload's
//     machine-independent model — source, profile, translation, priors;
//   - the machine fingerprint (hw.Machine.Fingerprint): every hardware
//     parameter of the variant, bit-exact;
//   - the mode digest (ModeDigest): the evaluation settings that shape the
//     served result — selection criteria, lenient mode, confidence floor.
//
// Two requests that agree on all three would compute bit-identical results,
// so the store may serve either from the other's record — across sessions,
// processes, and restarts. Values are canonically encoded analyses
// (hotspot.EncodeAnalysis), so a cache hit decodes to the exact bits a
// fresh evaluation would produce.
//
// A second, small namespace maps a *preparation digest* (PrepDigest: the
// workload source and the options that shape its preparation) to the layout
// fingerprint that preparing it produced, plus the preparation's confidence
// and diagnostics. That mapping is what lets a warm sweep skip preparation
// — and with it core.Build — entirely: digest the source, look up the
// layout fingerprint, serve every variant by key.
//
// Durability rides on the journal package: one crc32c-framed, fsync-per-
// append log with torn-tail recovery, safe for concurrent readers and
// writers within a process. (Like the sweep journal, the file is owned by
// one process at a time; cross-process sharing is sequential.)
package store

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/iofault"
	"skope/internal/journal"
	"skope/internal/workloads"
)

// ErrDegraded marks a store that stopped accepting writes mid-run: reads
// (and the computation itself) are unaffected, but new results are no
// longer being persisted. Callers that treat the cache as best-effort can
// errors.Is for this and downgrade to a warning.
var ErrDegraded = errors.New("result store degraded")

const (
	metaStoreKey = "store"
	metaStoreVal = "skope-cas"
	metaVersion  = "version"
	versionVal   = "1"

	evalPrefix = "e/"
	prepPrefix = "p/"
)

// Stats counts cache outcomes since the store was opened.
type Stats struct {
	// Hits and Misses count GetEval lookups.
	Hits, Misses int
	// PrepHits and PrepMisses count GetPrep lookups.
	PrepHits, PrepMisses int
	// Puts counts successful appends (eval and prep records).
	Puts int
}

// HitRate returns the fraction of eval lookups served from the store.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Store is an open content-addressed result store. It is safe for
// concurrent use.
type Store struct {
	jnl *journal.Journal

	mu    sync.Mutex
	stats Stats
	// quarantine holds keys a scrub (or a failed decode) found corrupt.
	// Quarantined keys read as misses — the next matching evaluation
	// recomputes and its Put replaces the record, lifting the quarantine.
	// Lazily allocated so a zero-value-adjacent Store still works.
	quarantine map[string]bool
	scrubRuns  int
	lastScrub  ScrubReport
}

// Open opens (creating if absent) the store at path, recovering every
// intact record; a torn tail left by a crash mid-append is discarded, so
// recovery never serves a partial result. Opening a file that is not a
// skope result store fails rather than overwriting it.
func Open(path string) (*Store, error) {
	return OpenFS(iofault.Disk, path)
}

// OpenFS is Open through an explicit file abstraction (nil = the disk) —
// the seam the disk-fault chaos suite injects through.
func OpenFS(fsys iofault.FS, path string) (*Store, error) {
	j, err := journal.OpenFS(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := j.SetMeta(map[string]string{metaStoreKey: metaStoreVal, metaVersion: versionVal}); err != nil {
		j.Close()
		return nil, fmt.Errorf("store: %s is not a result store: %w", path, err)
	}
	return &Store{jnl: j}, nil
}

// quarantineKey marks a key corrupt. Callers hold s.mu.
func (s *Store) quarantineKey(key string) {
	if s.quarantine == nil {
		s.quarantine = make(map[string]bool)
	}
	s.quarantine[key] = true
}

// evalKey composes the content address of one evaluation.
func evalKey(layoutFP, machineFP, mode string) string {
	return evalPrefix + layoutFP + "/" + machineFP + "/" + mode
}

// GetEval returns the cached analysis for the (layout, machine, mode)
// triple, decoded to the exact bits the original evaluation produced. The
// boolean reports whether the store had the record; a record that exists
// but cannot be decoded returns an error (the store's framing makes silent
// corruption unreachable, so this indicates a version skew) and is
// quarantined so the next lookup recomputes instead of failing again. A
// quarantined key reads as a miss.
func (s *Store) GetEval(layoutFP, machineFP, mode string) (*hotspot.Analysis, bool, error) {
	key := evalKey(layoutFP, machineFP, mode)
	s.mu.Lock()
	if s.quarantine[key] {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.mu.Unlock()
	payload, ok := s.jnl.Get(key)
	s.mu.Lock()
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	a, err := hotspot.DecodeAnalysis(payload)
	if err != nil {
		s.mu.Lock()
		s.quarantineKey(key)
		s.mu.Unlock()
		return nil, true, fmt.Errorf("store: eval %s/%s/%s: %w", layoutFP, machineFP, mode, err)
	}
	return a, true, nil
}

// PutEval durably records one evaluation result under its content address.
// The record is fsynced before PutEval returns; re-putting an existing key
// overwrites it (the encoding is deterministic, so the bytes are identical
// for identical results) and lifts any quarantine on it — the replacement
// is a freshly computed, known-good record. A persistence failure wraps
// ErrDegraded: the computed result is unaffected, it just was not cached.
func (s *Store) PutEval(layoutFP, machineFP, mode string, a *hotspot.Analysis) error {
	data, err := hotspot.EncodeAnalysis(a)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	key := evalKey(layoutFP, machineFP, mode)
	if err := s.jnl.Append(key, data); err != nil {
		return fmt.Errorf("store: %w: %w", ErrDegraded, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	delete(s.quarantine, key)
	s.mu.Unlock()
	return nil
}

// Prep is the cached outcome of preparing one workload: the layout
// fingerprint its model resolves to, plus the preparation's confidence and
// diagnostics, so a warm run can reproduce the cold run's degradation
// report without re-preparing.
type Prep struct {
	LayoutFingerprint string
	Confidence        float64
	Diagnostics       []guard.Diagnostic
}

// prepRecord is Prep's wire form (confidence as IEEE-754 bits).
type prepRecord struct {
	Layout string             `json:"layout"`
	Conf   uint64             `json:"conf"`
	Diags  []guard.Diagnostic `json:"diags,omitempty"`
}

// GetPrep looks up the preparation outcome for a PrepDigest. Like
// GetEval, a quarantined key reads as a miss and an undecodable record is
// quarantined as it is reported.
func (s *Store) GetPrep(digest string) (Prep, bool, error) {
	key := prepPrefix + digest
	s.mu.Lock()
	if s.quarantine[key] {
		s.stats.PrepMisses++
		s.mu.Unlock()
		return Prep{}, false, nil
	}
	s.mu.Unlock()
	payload, ok := s.jnl.Get(key)
	s.mu.Lock()
	if ok {
		s.stats.PrepHits++
	} else {
		s.stats.PrepMisses++
	}
	s.mu.Unlock()
	if !ok {
		return Prep{}, false, nil
	}
	var rec prepRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		s.mu.Lock()
		s.quarantineKey(key)
		s.mu.Unlock()
		return Prep{}, true, fmt.Errorf("store: prep %s: %w", digest, err)
	}
	return Prep{
		LayoutFingerprint: rec.Layout,
		Confidence:        math.Float64frombits(rec.Conf),
		Diagnostics:       rec.Diags,
	}, true, nil
}

// PutPrep durably records one preparation outcome. Persistence failures
// wrap ErrDegraded; a successful overwrite lifts any quarantine.
func (s *Store) PutPrep(digest string, p Prep) error {
	payload, err := json.Marshal(prepRecord{
		Layout: p.LayoutFingerprint,
		Conf:   math.Float64bits(p.Confidence),
		Diags:  p.Diagnostics,
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	key := prepPrefix + digest
	if err := s.jnl.Append(key, payload); err != nil {
		return fmt.Errorf("store: %w: %w", ErrDegraded, err)
	}
	s.mu.Lock()
	s.stats.Puts++
	delete(s.quarantine, key)
	s.mu.Unlock()
	return nil
}

// Stats returns the cumulative cache counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of records (eval and prep) in the store.
func (s *Store) Len() int { return s.jnl.Len() }

// Recovered reports how many records Open replayed from disk and whether a
// torn tail was discarded.
func (s *Store) Recovered() (records int, tornTail bool) { return s.jnl.Recovered() }

// Path returns the store's file path.
func (s *Store) Path() string { return s.jnl.Path() }

// Close releases the underlying file. Records already put are durable
// regardless.
func (s *Store) Close() error { return s.jnl.Close() }

// digest hex-encodes the first 16 bytes of a sha256 over the given parts,
// length-framing each part so concatenation cannot alias.
func digest(parts ...string) string {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(p))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// ModeDigest digests the evaluation settings that are part of a result's
// identity beyond the workload and the machine: the hot-spot selection
// criteria, lenient mode, and the confidence floor. Criteria shape the
// Selection a served Eval carries and minimum confidence decides whether a
// variant is served at all, so results computed under different settings
// must never alias; lenient mode is included for defense in depth (it also
// shifts the layout fingerprint). See DESIGN.md, "content-addressed
// result store".
func ModeDigest(crit hotspot.Criteria, lenient bool, minConfidence float64) string {
	return digest(
		fmt.Sprintf("crit=%016x,%016x,%d",
			math.Float64bits(crit.TimeCoverage), math.Float64bits(crit.CodeLeanness), crit.MaxSpots),
		fmt.Sprintf("lenient=%t", lenient),
		fmt.Sprintf("minconf=%016x", math.Float64bits(minConfidence)),
	)
}

// PrepDigest digests everything that determines the outcome of preparing a
// workload: its name, exact source text, profiling seed, lenient mode, and
// the guard limits (which decide what a build may reject). Two
// preparations with equal digests produce identical layouts, so the digest
// can stand in for running the preparation at all.
func PrepDigest(w *workloads.Workload, lenient bool, lim *guard.Limits) string {
	return digest(
		w.Name,
		w.Source,
		fmt.Sprintf("seed=%d", w.Seed),
		fmt.Sprintf("lenient=%t", lenient),
		"limits="+lim.String(),
	)
}
