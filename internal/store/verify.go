package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"skope/internal/hotspot"
	"skope/internal/journal"
)

// Verify is the store's scrub: a read-only walk of every record in the
// file that goes one level deeper than the journal's crc32c framing. The
// framing proves the bytes on disk are the bytes that were appended; the
// scrub proves those bytes still mean something — every eval record must
// canonically decode (hotspot.DecodeAnalysis) and re-encode to the exact
// payload stored, every prep record must parse, and every key must live
// in a known namespace. Verify never modifies the file; Repair truncates
// a torn tail after verifying the rest.

// Problem is one record that failed verification.
type Problem struct {
	// Key is the record's content address.
	Key string `json:"key"`
	// Err describes what failed: decode error, non-canonical encoding,
	// or an unknown key namespace.
	Err string `json:"err"`
}

// VerifyReport is the outcome of one store scrub.
type VerifyReport struct {
	// Path is the scrubbed file.
	Path string `json:"path"`
	// Records counts intact record lines (appends, not distinct keys).
	Records int `json:"records"`
	// Evals and Preps count records per namespace (duplicates included).
	Evals int `json:"evals"`
	Preps int `json:"preps"`
	// TornTail reports a partial final line — recoverable damage that
	// Repair would truncate away.
	TornTail bool `json:"torn_tail"`
	// TornOffset is the size the file would have after repair; equal to
	// the file size when intact.
	TornOffset int64 `json:"torn_offset"`
	// Problems lists records whose payloads failed verification. Framing
	// corruption never lands here — it fails the scrub outright — so a
	// problem means version skew or a foreign writer, not bit rot.
	Problems []Problem `json:"problems,omitempty"`
}

// Clean reports whether the scrub found nothing wrong.
func (r VerifyReport) Clean() bool {
	return !r.TornTail && len(r.Problems) == 0
}

// Verify scrubs the store at path without opening it for writing: the
// journal framing (crc32c per record) is re-checked line by line, the
// store header is validated, and every record's payload is decoded and —
// for eval records — canonically re-encoded and compared byte-for-byte
// against what is stored. Payload-level failures are collected on the
// report; framing corruption before the end of the file fails with an
// error wrapping journal.ErrCorrupt. A torn tail is reported, not an
// error — it is what Repair (or the next Open) removes.
func Verify(path string) (VerifyReport, error) {
	rep := VerifyReport{Path: path}
	scan, err := journal.Scan(path, func(key string, payload []byte) error {
		rep.Records++
		if p, ok := verifyRecord(key, payload); !ok {
			rep.Problems = append(rep.Problems, p)
		} else if strings.HasPrefix(key, evalPrefix) {
			rep.Evals++
		} else {
			rep.Preps++
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	if scan.Meta[metaStoreKey] != metaStoreVal {
		return rep, fmt.Errorf("store: %s is not a result store (header %v)", path, scan.Meta)
	}
	if scan.Meta[metaVersion] != versionVal {
		return rep, fmt.Errorf("store: %s: unsupported store version %q (want %q)",
			path, scan.Meta[metaVersion], versionVal)
	}
	rep.TornTail = scan.TornTail
	rep.TornOffset = scan.TornOffset
	return rep, nil
}

// verifyRecord checks one record's payload against its namespace.
func verifyRecord(key string, payload []byte) (Problem, bool) {
	switch {
	case strings.HasPrefix(key, evalPrefix):
		if strings.Count(key, "/") != 3 {
			return Problem{Key: key, Err: "malformed eval key (want e/<layout>/<machine>/<mode>)"}, false
		}
		a, err := hotspot.DecodeAnalysis(payload)
		if err != nil {
			return Problem{Key: key, Err: err.Error()}, false
		}
		again, err := hotspot.EncodeAnalysis(a)
		if err != nil {
			return Problem{Key: key, Err: fmt.Sprintf("re-encode: %v", err)}, false
		}
		if !bytes.Equal(again, payload) {
			return Problem{Key: key, Err: "payload is not canonical (re-encode differs)"}, false
		}
	case strings.HasPrefix(key, prepPrefix):
		var rec prepRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return Problem{Key: key, Err: err.Error()}, false
		}
		if rec.Layout == "" {
			return Problem{Key: key, Err: "prep record missing layout fingerprint"}, false
		}
	default:
		return Problem{Key: key, Err: "unknown key namespace"}, false
	}
	return Problem{}, true
}

// Repair scrubs the store and, if the scrub found a torn tail, truncates
// it. The returned report describes the file as found (TornTail true if a
// tail was removed); the boolean reports whether a repair happened. Like
// Verify, it refuses on mid-file corruption or a non-store file — Repair
// only ever removes the one partial line a crash mid-append can leave.
func Repair(path string) (VerifyReport, bool, error) {
	rep, err := Verify(path)
	if err != nil {
		return rep, false, err
	}
	if !rep.TornTail {
		return rep, false, nil
	}
	if _, _, err := journal.Repair(path); err != nil {
		return rep, false, err
	}
	return rep, true, nil
}
