package store

import (
	"sort"
)

// Scrub is the in-process counterpart of Verify: the same record-level
// checks (canonical decode/re-encode for evals, parse + layout presence
// for preps, known namespaces), run against an *open* store's in-memory
// record set instead of a closed file. Where Verify reports and Repair
// truncates, Scrub acts: a record that fails verification is quarantined
// — its key reads as a miss until a fresh Put replaces it — so the next
// matching evaluation transparently recomputes and heals the store. The
// skoped daemon runs Scrub periodically (-scrub-interval) and surfaces
// the outcome in /v1/healthz.

// ScrubReport is the outcome of one scrub pass.
type ScrubReport struct {
	// Checked counts the distinct records examined.
	Checked int `json:"checked"`
	// Quarantined counts keys this pass newly quarantined.
	Quarantined int `json:"quarantined"`
	// Healed counts keys that left quarantine: their record now verifies
	// clean (replaced by a fresh Put since the damage was found).
	Healed int `json:"healed"`
	// Bad is the total quarantine size after the pass.
	Bad int `json:"bad"`
	// Problems lists the records currently failing verification, sorted
	// by key.
	Problems []Problem `json:"problems,omitempty"`
}

// Scrub verifies every record the store currently holds and updates the
// quarantine set: failing records are quarantined (reading as misses so
// the next matching evaluation recomputes and replaces them), previously
// quarantined keys whose records verify clean are released. Verification
// runs without the store lock — decode work dominates — so concurrent
// evaluations are not stalled by a scrub.
func (s *Store) Scrub() ScrubReport {
	entries := s.jnl.Entries()
	var rep ScrubReport
	bad := make(map[string]Problem)
	for _, e := range entries {
		rep.Checked++
		if p, ok := verifyRecord(e.Key, e.Payload); !ok {
			bad[e.Key] = p
		}
	}

	s.mu.Lock()
	for key := range s.quarantine {
		if _, still := bad[key]; !still {
			delete(s.quarantine, key)
			rep.Healed++
		}
	}
	for key, p := range bad {
		if !s.quarantine[key] {
			s.quarantineKey(key)
			rep.Quarantined++
		}
		rep.Problems = append(rep.Problems, p)
	}
	sort.Slice(rep.Problems, func(i, j int) bool { return rep.Problems[i].Key < rep.Problems[j].Key })
	rep.Bad = len(s.quarantine)
	s.scrubRuns++
	s.lastScrub = rep
	s.mu.Unlock()
	return rep
}

// ScrubStats returns how many scrub passes have run on this handle and
// the last pass's report (zero value if none have).
func (s *Store) ScrubStats() (runs int, last ScrubReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubRuns, s.lastScrub
}

// Quarantined returns the currently quarantined keys, sorted.
func (s *Store) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.quarantine))
	for k := range s.quarantine {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
