package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
)

// populatedStore builds a store with one eval and one prep record and
// returns its path.
func populatedStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cas.journal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l := testLayout(t)
	a := analyzeOn(t, l, hw.BGQ())
	mode := ModeDigest(hotspot.DefaultCriteria(), false, 0)
	if err := s.PutEval(l.Fingerprint(), a.Machine.Fingerprint(), mode, a); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPrep("deadbeef", Prep{LayoutFingerprint: l.Fingerprint(), Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	return path
}

// rawAppend opens the store file as a journal and appends one arbitrary
// record, bypassing the store's typed Put paths.
func rawAppend(t *testing.T, path, key string, payload []byte) {
	t.Helper()
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(key, payload); err != nil {
		t.Fatal(err)
	}
}

func storeTearTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestVerifyCleanStore(t *testing.T) {
	path := populatedStore(t)
	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("clean store failed scrub: %+v", rep)
	}
	if rep.Records != 2 || rep.Evals != 1 || rep.Preps != 1 {
		t.Errorf("counts = %d records / %d evals / %d preps, want 2/1/1", rep.Records, rep.Evals, rep.Preps)
	}
}

func TestVerifyReportsTornTailWithoutModifying(t *testing.T) {
	path := populatedStore(t)
	storeTearTail(t, path)
	before, _ := os.Stat(path)

	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.Clean() {
		t.Errorf("scrub of torn store = %+v, want TornTail", rep)
	}
	if rep.Records != 2 || len(rep.Problems) != 0 {
		t.Errorf("intact records must still verify: %+v", rep)
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Fatalf("Verify changed the file: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestRepairTruncatesStoreTornTail(t *testing.T) {
	path := populatedStore(t)
	intact, _ := os.Stat(path)
	storeTearTail(t, path)

	rep, repaired, err := Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if !repaired || !rep.TornTail {
		t.Errorf("Repair = (%+v, %v), want a repair of a torn tail", rep, repaired)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != intact.Size() {
		t.Errorf("repaired size %d, want %d", fi.Size(), intact.Size())
	}
	// Second pass: nothing to do, store is clean and reopens.
	rep, repaired, err = Repair(path)
	if err != nil || repaired || !rep.Clean() {
		t.Errorf("second Repair = (%+v, %v, %v), want clean no-op", rep, repaired, err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Errorf("repaired store has %d records, want 2", s.Len())
	}
}

func TestVerifyFlagsNonCanonicalEval(t *testing.T) {
	path := populatedStore(t)
	l := testLayout(t)
	a := analyzeOn(t, l, hw.BGQ())
	data, err := hotspot.EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	// Valid JSON, decodes fine — but a byte of trailing whitespace means
	// the stored payload is not what a canonical re-encode produces.
	rawAppend(t, path, evalKey("lfp", "mfp", "mode"), append(data, ' '))

	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 1 {
		t.Fatalf("problems = %+v, want exactly the non-canonical record", rep.Problems)
	}
	if rep.Problems[0].Key != evalKey("lfp", "mfp", "mode") {
		t.Errorf("problem key = %q", rep.Problems[0].Key)
	}
}

func TestVerifyFlagsUndecodableRecords(t *testing.T) {
	path := populatedStore(t)
	rawAppend(t, path, evalKey("lfp", "mfp", "mode"), []byte(`{"v":999}`))
	rawAppend(t, path, prepPrefix+"cafe", []byte(`not json`))
	rawAppend(t, path, "e/missing-segments", []byte(`{}`))
	rawAppend(t, path, "x/alien", []byte(`{}`))

	rep, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 4 {
		t.Fatalf("problems = %+v, want 4", rep.Problems)
	}
	if rep.Evals != 1 || rep.Preps != 1 {
		t.Errorf("healthy counts = %d evals / %d preps, want 1/1", rep.Evals, rep.Preps)
	}
}

func TestVerifyRejectsNonStoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "other.journal")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetMeta(map[string]string{"kind": "sweep"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Verify(path); err == nil {
		t.Fatal("Verify accepted a non-store journal")
	}
	if _, _, err := Repair(path); err == nil {
		t.Fatal("Repair accepted a non-store journal")
	}
}

func TestVerifyRefusesMidFileCorruption(t *testing.T) {
	path := populatedStore(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte well inside the file (inside the first record's payload).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(path); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("Verify err = %v, want journal.ErrCorrupt", err)
	}
	if _, _, err := Repair(path); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("Repair err = %v, want journal.ErrCorrupt", err)
	}
}
