package store

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/libmodel"
	"skope/internal/skeleton"
	"skope/internal/workloads"
)

// testLayout builds one small prepared layout for store tests.
func testLayout(t *testing.T) *hotspot.Layout {
	t.Helper()
	src := `
def main(n)
  for i = 0 : n
    comp flops=500 loads=8 name="kernel"
  end
  comm bytes=n*4 msgs=1 name="edge"
end
`
	prog, err := skeleton.Parse("storetest", src)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	bet, err := core.Build(context.Background(), tree, expr.Env{"n": 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	libs, err := libmodel.Default()
	if err != nil {
		t.Fatal(err)
	}
	l, err := hotspot.NewLayout(bet, libs)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func analyzeOn(t *testing.T, l *hotspot.Layout, m *hw.Machine) *hotspot.Analysis {
	t.Helper()
	a, err := l.Analyze(hw.NewModel(m))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cas.journal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	l := testLayout(t)
	a := analyzeOn(t, l, hw.BGQ())
	mode := ModeDigest(hotspot.DefaultCriteria(), false, 0)
	layoutFP := l.Fingerprint()
	machFP := a.Machine.Fingerprint()

	if _, ok, err := s.GetEval(layoutFP, machFP, mode); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := s.PutEval(layoutFP, machFP, mode, a); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetEval(layoutFP, machFP, mode)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if math.Float64bits(got.TotalTime) != math.Float64bits(a.TotalTime) {
		t.Errorf("TotalTime not bit-identical")
	}
	if got.Machine.Fingerprint() != machFP {
		t.Errorf("machine fingerprint changed through store")
	}
	// Stored bytes are canonical: re-encoding the retrieved analysis
	// reproduces them.
	e1, _ := hotspot.EncodeAnalysis(a)
	e2, _ := hotspot.EncodeAnalysis(got)
	if !bytes.Equal(e1, e2) {
		t.Errorf("stored analysis is not canonically identical")
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

func TestStorePrepRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cas.journal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	w, err := workloads.Get("srad", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dig := PrepDigest(w, true, nil)
	if _, ok, _ := s.GetPrep(dig); ok {
		t.Fatal("prep present in empty store")
	}
	in := Prep{
		LayoutFingerprint: "deadbeef",
		Confidence:        0.75,
		Diagnostics: []guard.Diagnostic{
			{Severity: guard.SevWarn, Stage: "profile", Code: "prior", Message: "used prior"},
		},
	}
	if err := s.PutPrep(dig, in); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetPrep(dig)
	if err != nil || !ok {
		t.Fatalf("get prep: ok=%v err=%v", ok, err)
	}
	if got.LayoutFingerprint != in.LayoutFingerprint ||
		math.Float64bits(got.Confidence) != math.Float64bits(in.Confidence) ||
		len(got.Diagnostics) != 1 || got.Diagnostics[0] != in.Diagnostics[0] {
		t.Errorf("prep round trip: got %+v, want %+v", got, in)
	}
}

func TestDigestsDiscriminate(t *testing.T) {
	w1, err := workloads.Get("srad", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workloads.Get("srad", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	base := PrepDigest(w1, false, nil)
	if PrepDigest(w2, false, nil) == base {
		t.Error("PrepDigest ignores workload scale")
	}
	if PrepDigest(w1, true, nil) == base {
		t.Error("PrepDigest ignores lenient mode")
	}
	lim := guard.Default()
	lim.MaxBETNodes = 7
	if PrepDigest(w1, false, lim) == base {
		t.Error("PrepDigest ignores guard limits")
	}

	crit := hotspot.DefaultCriteria()
	m0 := ModeDigest(crit, false, 0)
	crit2 := crit
	crit2.MaxSpots = 3
	if ModeDigest(crit2, false, 0) == m0 {
		t.Error("ModeDigest ignores criteria")
	}
	if ModeDigest(crit, true, 0) == m0 {
		t.Error("ModeDigest ignores lenient mode")
	}
	if ModeDigest(crit, false, 0.5) == m0 {
		t.Error("ModeDigest ignores confidence floor")
	}
}

// TestStoreConcurrent exercises mixed readers and writers; run with -race.
func TestStoreConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cas.journal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	l := testLayout(t)
	layoutFP := l.Fingerprint()
	mode := ModeDigest(hotspot.DefaultCriteria(), false, 0)

	// A handful of distinct machines, analyzed up front.
	machines := make([]*hw.Machine, 6)
	analyses := make([]*hotspot.Analysis, 6)
	for i := range machines {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("bgq-%d", i)
		m.FreqGHz *= 1 + float64(i)*0.1
		machines[i] = m
		analyses[i] = analyzeOn(t, l, m)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				i := (g + iter) % len(machines)
				fp := machines[i].Fingerprint()
				if g%2 == 0 {
					if err := s.PutEval(layoutFP, fp, mode, analyses[i]); err != nil {
						errs <- err
						return
					}
				}
				a, ok, err := s.GetEval(layoutFP, fp, mode)
				if err != nil {
					errs <- err
					return
				}
				if ok && a.Machine.Fingerprint() != fp {
					errs <- fmt.Errorf("got analysis for %s under key %s", a.Machine.Fingerprint(), fp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Len() != len(machines) {
		t.Errorf("store holds %d records, want %d", s.Len(), len(machines))
	}
}

// TestStoreRestartAndTornTail proves durability: records put before a
// "crash" (plus a torn half-written tail) are all served after reopening,
// and the torn bytes are discarded rather than surfaced.
func TestStoreRestartAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cas.journal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	l := testLayout(t)
	layoutFP := l.Fingerprint()
	mode := ModeDigest(hotspot.DefaultCriteria(), false, 0)
	a := analyzeOn(t, l, hw.BGQ())
	machFP := a.Machine.Fingerprint()
	if err := s.PutEval(layoutFP, machFP, mode, a); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPrep("prep-digest", Prep{LayoutFingerprint: layoutFP, Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close() // simulate the process dying (records are already fsynced)

	// A crash mid-append leaves a torn final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"key":"e/half-writ`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if n, torn := s2.Recovered(); n != 2 || !torn {
		t.Errorf("Recovered() = (%d, %v), want (2, true)", n, torn)
	}
	got, ok, err := s2.GetEval(layoutFP, machFP, mode)
	if err != nil || !ok {
		t.Fatalf("eval lost across restart: ok=%v err=%v", ok, err)
	}
	if math.Float64bits(got.TotalTime) != math.Float64bits(a.TotalTime) {
		t.Errorf("recovered analysis not bit-identical")
	}
	p, ok, err := s2.GetPrep("prep-digest")
	if err != nil || !ok || p.LayoutFingerprint != layoutFP {
		t.Fatalf("prep lost across restart: %+v ok=%v err=%v", p, ok, err)
	}
	// The store stays writable after recovery.
	if err := s2.PutPrep("prep-2", Prep{LayoutFingerprint: "ff"}); err != nil {
		t.Errorf("put after torn-tail recovery: %v", err)
	}
}

// TestStoreRejectsForeignFile ensures Open refuses a journal written by a
// different producer (e.g. a sweep journal) instead of mixing records.
func TestStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Same file, claimed by a different meta binding — must refuse.
	if _, err := openAs(path, "other-producer"); err == nil {
		t.Fatal("store opened a foreign journal")
	}
}

// openAs opens path as if a different producer owned it.
func openAs(path, producer string) (*Store, error) {
	j, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	if err := j.SetMeta(map[string]string{metaStoreKey: producer, metaVersion: versionVal}); err != nil {
		j.Close()
		return nil, err
	}
	return &Store{jnl: j}, nil
}
