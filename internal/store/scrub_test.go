package store

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/iofault"
)

// scrubFixture opens a store with one good eval, one good prep, and one
// corrupt eval record (valid journal frame, garbage payload), returning
// the store and the corrupt record's address parts.
func scrubFixture(t *testing.T) (s *Store, layoutFP, machineFP, mode string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cas.journal")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l := testLayout(t)
	a := analyzeOn(t, l, hw.BGQ())
	mode = ModeDigest(hotspot.DefaultCriteria(), false, 0)
	layoutFP, machineFP = l.Fingerprint(), a.Machine.Fingerprint()
	if err := st.PutEval(layoutFP, machineFP, mode, a); err != nil {
		t.Fatal(err)
	}
	if err := st.PutPrep("deadbeef", Prep{LayoutFingerprint: layoutFP, Confidence: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt the eval by overwriting its key with garbage, the way a
	// foreign writer or version skew would: the frame is valid, the
	// payload is not an analysis.
	rawAppend(t, path, evalKey(layoutFP, machineFP, mode), []byte("not an analysis"))

	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, layoutFP, machineFP, mode
}

func TestScrubQuarantinesCorruptRecord(t *testing.T) {
	s, layoutFP, machineFP, mode := scrubFixture(t)
	rep := s.Scrub()
	if rep.Checked != 2 || rep.Quarantined != 1 || rep.Bad != 1 || rep.Healed != 0 {
		t.Fatalf("first scrub = %+v", rep)
	}
	if len(rep.Problems) != 1 || rep.Problems[0].Key != evalKey(layoutFP, machineFP, mode) {
		t.Fatalf("problems = %+v", rep.Problems)
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != evalKey(layoutFP, machineFP, mode) {
		t.Fatalf("Quarantined = %v", q)
	}

	// A quarantined key reads as a miss — no decode error, no stale data.
	a, ok, err := s.GetEval(layoutFP, machineFP, mode)
	if a != nil || ok || err != nil {
		t.Fatalf("GetEval on quarantined key = (%v, %v, %v); want a clean miss", a, ok, err)
	}

	// Re-scrubbing is idempotent: nothing newly quarantined, nothing
	// healed, same bad set.
	rep = s.Scrub()
	if rep.Quarantined != 0 || rep.Healed != 0 || rep.Bad != 1 {
		t.Fatalf("second scrub = %+v", rep)
	}
	if runs, last := s.ScrubStats(); runs != 2 || last.Bad != 1 {
		t.Fatalf("ScrubStats = (%d, %+v)", runs, last)
	}
}

func TestPutHealsQuarantine(t *testing.T) {
	s, layoutFP, machineFP, mode := scrubFixture(t)
	s.Scrub()

	// The recompute-and-replace path: a fresh Put of the quarantined key
	// lifts the quarantine immediately and the record serves again.
	a := analyzeOn(t, testLayout(t), hw.BGQ())
	if err := s.PutEval(layoutFP, machineFP, mode, a); err != nil {
		t.Fatal(err)
	}
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantine survived the healing Put: %v", q)
	}
	got, ok, err := s.GetEval(layoutFP, machineFP, mode)
	if err != nil || !ok || got == nil {
		t.Fatalf("GetEval after heal = (%v, %v, %v)", got, ok, err)
	}
	// The next scrub confirms the heal (the record verifies clean now)
	// and reports nothing bad.
	if rep := s.Scrub(); rep.Bad != 0 || rep.Quarantined != 0 {
		t.Fatalf("scrub after heal = %+v", rep)
	}
}

func TestGetEvalSelfQuarantines(t *testing.T) {
	// No scrub at all: the first read of a corrupt record reports the
	// decode error once, then the key reads as a miss so the caller's
	// recompute path takes over.
	s, layoutFP, machineFP, mode := scrubFixture(t)
	_, ok, err := s.GetEval(layoutFP, machineFP, mode)
	if !ok || err == nil {
		t.Fatalf("first read of corrupt record = (%v, %v); want (true, decode error)", ok, err)
	}
	if _, ok, err := s.GetEval(layoutFP, machineFP, mode); ok || err != nil {
		t.Fatalf("second read = (%v, %v); want a clean miss", ok, err)
	}
}

func TestPutDegradedWrapsSentinel(t *testing.T) {
	// Once the underlying journal's append path fails, Put errors must be
	// classifiable as ErrDegraded (sweeps downgrade them to warnings) and
	// still carry the OS-level cause.
	path := filepath.Join(t.TempDir(), "cas.journal")
	// Writes: 1 = store header; every later write fails.
	ff := iofault.New(nil, iofault.Plan{FailWriteAt: 2})
	s, err := OpenFS(ff, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l := testLayout(t)
	a := analyzeOn(t, l, hw.BGQ())
	perr := s.PutEval(l.Fingerprint(), a.Machine.Fingerprint(), "m", a)
	if !errors.Is(perr, ErrDegraded) || !errors.Is(perr, syscall.EIO) {
		t.Fatalf("PutEval = %v; want ErrDegraded wrapping EIO", perr)
	}
	if perr := s.PutPrep("d", Prep{LayoutFingerprint: "x"}); !errors.Is(perr, ErrDegraded) {
		t.Fatalf("PutPrep after journal failure = %v; want ErrDegraded", perr)
	}
	// Reads are unaffected by the degraded append path.
	if _, ok, err := s.GetEval("a", "b", "c"); ok || err != nil {
		t.Fatalf("GetEval on degraded store = (%v, %v)", ok, err)
	}
}
