// Package guard is the pipeline-wide resource-governance and
// fault-isolation layer. Every stage that consumes untrusted input — the
// expression, skeleton and minilang parsers, BET construction, the
// simulator — enforces the caps defined here and reports violations as
// typed errors (ErrLimit) instead of exhausting the stack or the heap.
// Worker boundaries (pipeline, explore) convert panics into per-item
// errors through Recover, so one poisoned variant never kills a sweep, and
// degraded or suspicious results travel as structured Diagnostics instead
// of silent garbage.
//
// The package also hosts the fault-injection test harness: named
// FaultPoints that production code calls via Hit (a no-op unless a test
// armed them with Arm), letting tests prove each isolation boundary holds.
package guard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrLimit marks every resource-limit violation. Wrap-aware:
// errors.Is(err, guard.ErrLimit) identifies a rejected input regardless of
// which stage enforced the cap.
var ErrLimit = errors.New("resource limit exceeded")

// LimitError reports one exceeded cap: which limit, the offending value,
// and the configured maximum.
type LimitError struct {
	// What names the limit ("source bytes", "expression depth", ...).
	What string
	// Value is the observed quantity; Max the configured cap.
	Value, Max int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("guard: %s %d exceeds limit %d", e.What, e.Value, e.Max)
}

// Unwrap ties every LimitError to the ErrLimit sentinel.
func (e *LimitError) Unwrap() error { return ErrLimit }

// Exceeded builds the canonical limit-violation error.
func Exceeded(what string, value, max int) error {
	return &LimitError{What: what, Value: value, Max: max}
}

// Limits caps the resources one input may consume across the pipeline.
// The zero value means "no explicit configuration"; use Default for the
// standard caps. A nil *Limits is everywhere treated as Default, so
// callers that do not care simply pass nil.
type Limits struct {
	// MaxSourceBytes caps the size of one source text (minilang,
	// skeleton, or machine description).
	MaxSourceBytes int
	// MaxTokens caps the lexical token count of one minilang source.
	MaxTokens int
	// MaxExprDepth caps expression-AST nesting (parser recursion).
	MaxExprDepth int
	// MaxNestDepth caps statement-block nesting (loops/branches/defs).
	MaxNestDepth int
	// MaxBETNodes caps the size of one Bayesian Execution Tree.
	MaxBETNodes int
	// MaxContexts caps simultaneously live contexts per BET statement.
	MaxContexts int
}

// Default returns the standard caps. They are far above anything the five
// workloads need (guards must not perturb legitimate analyses) while
// keeping adversarial inputs bounded.
func Default() *Limits {
	return &Limits{
		MaxSourceBytes: 4 << 20, // 4 MiB of source text
		MaxTokens:      1 << 20, // ~1M tokens
		MaxExprDepth:   200,     // expression nesting
		MaxNestDepth:   100,     // statement-block nesting
		MaxBETNodes:    1 << 20, // matches core's historical default
		MaxContexts:    256,     // matches core's historical default
	}
}

// Or returns l, or Default when l is nil.
func (l *Limits) Or() *Limits {
	if l == nil {
		return Default()
	}
	return l
}

// CheckSource verifies a source text size against MaxSourceBytes.
func (l *Limits) CheckSource(n int) error {
	if lim := l.Or(); n > lim.MaxSourceBytes {
		return Exceeded("source bytes", n, lim.MaxSourceBytes)
	}
	return nil
}

// CheckTokens verifies a token count against MaxTokens.
func (l *Limits) CheckTokens(n int) error {
	if lim := l.Or(); n > lim.MaxTokens {
		return Exceeded("lexical tokens", n, lim.MaxTokens)
	}
	return nil
}

// CheckExprDepth verifies expression nesting against MaxExprDepth.
func (l *Limits) CheckExprDepth(n int) error {
	if lim := l.Or(); n > lim.MaxExprDepth {
		return Exceeded("expression depth", n, lim.MaxExprDepth)
	}
	return nil
}

// CheckNestDepth verifies block nesting against MaxNestDepth.
func (l *Limits) CheckNestDepth(n int) error {
	if lim := l.Or(); n > lim.MaxNestDepth {
		return Exceeded("nesting depth", n, lim.MaxNestDepth)
	}
	return nil
}

// limitFields maps CLI keys to Limits fields, in presentation order.
var limitFields = []struct {
	key  string
	get  func(*Limits) *int
	help string
}{
	{"source-bytes", func(l *Limits) *int { return &l.MaxSourceBytes }, "max source text size in bytes"},
	{"tokens", func(l *Limits) *int { return &l.MaxTokens }, "max lexical tokens per source"},
	{"expr-depth", func(l *Limits) *int { return &l.MaxExprDepth }, "max expression nesting depth"},
	{"nest-depth", func(l *Limits) *int { return &l.MaxNestDepth }, "max statement-block nesting depth"},
	{"bet-nodes", func(l *Limits) *int { return &l.MaxBETNodes }, "max Bayesian Execution Tree nodes"},
	{"contexts", func(l *Limits) *int { return &l.MaxContexts }, "max live contexts per BET statement"},
}

// ParseLimits parses a comma-separated key=value override list (e.g.
// "expr-depth=64,bet-nodes=100000") on top of the defaults. Keys are the
// ones Help lists; every value must be a positive integer.
func ParseLimits(spec string) (*Limits, error) {
	l := Default()
	if strings.TrimSpace(spec) == "" {
		return l, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("guard: limit %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("guard: limit %s needs a positive integer, got %q", key, val)
		}
		found := false
		for _, f := range limitFields {
			if f.key == key {
				*f.get(l) = n
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("guard: unknown limit %q (known: %s)", key, strings.Join(LimitKeys(), ", "))
		}
	}
	return l, nil
}

// LimitKeys returns the ParseLimits keys in presentation order.
func LimitKeys() []string {
	out := make([]string, len(limitFields))
	for i, f := range limitFields {
		out[i] = f.key
	}
	return out
}

// Help returns one usage line per limit key, for CLI -list output.
func Help() []string {
	def := Default()
	out := make([]string, len(limitFields))
	for i, f := range limitFields {
		out[i] = fmt.Sprintf("%-14s %s (default %d)", f.key, f.help, *f.get(def))
	}
	return out
}

// String renders the limits as a ParseLimits-compatible spec.
func (l *Limits) String() string {
	lim := l.Or()
	parts := make([]string, len(limitFields))
	for i, f := range limitFields {
		parts[i] = fmt.Sprintf("%s=%d", f.key, *f.get(lim))
	}
	return strings.Join(parts, ",")
}

// Severity grades a Diagnostic. SevWarn (the zero value, so existing
// construction sites stay warnings) marks a substituted or suspect value
// the pipeline papered over; SevError marks content that was lost — a
// statement the lenient parser had to drop or replace with a hole.
type Severity int

const (
	// SevWarn marks degraded-but-present content (prior substitutions,
	// non-finite projections).
	SevWarn Severity = iota
	// SevError marks lost content (unparseable statements, holes).
	SevError
)

// String renders the conventional lowercase severity label.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic is a structured, non-fatal warning attached to an analysis
// result: the computation completed, but part of it is degraded or
// numerically suspect. Diagnostics never alter the floating-point results
// they describe; they only make degradation visible.
type Diagnostic struct {
	// Severity grades the degradation (SevWarn or SevError).
	Severity Severity
	// Stage names the producing pipeline stage ("translate", "roofline",
	// "hotspot", ...).
	Stage string
	// Code is a stable machine-readable identifier ("missing-profile",
	// "non-finite-time", ...).
	Code string
	// BlockID attributes the warning to a source block, when one applies.
	BlockID string
	// Message is the human-readable explanation.
	Message string
}

// String renders "stage/code [block]: message".
func (d Diagnostic) String() string {
	if d.BlockID != "" {
		return fmt.Sprintf("%s/%s [%s]: %s", d.Stage, d.Code, d.BlockID, d.Message)
	}
	return fmt.Sprintf("%s/%s: %s", d.Stage, d.Code, d.Message)
}

// SortDiagnostics orders diagnostics deterministically (stage, code,
// block, message) for stable reports and goldens.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.BlockID != b.BlockID {
			return a.BlockID < b.BlockID
		}
		return a.Message < b.Message
	})
}
