package guard

import (
	"errors"
	"strings"
	"testing"
)

func TestLimitError(t *testing.T) {
	err := Exceeded("expression depth", 300, 200)
	if !errors.Is(err, ErrLimit) {
		t.Errorf("Exceeded not Is(ErrLimit): %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Value != 300 || le.Max != 200 {
		t.Errorf("LimitError fields wrong: %+v", le)
	}
	if !strings.Contains(err.Error(), "expression depth") {
		t.Errorf("message does not name the limit: %v", err)
	}
}

func TestNilLimitsActAsDefault(t *testing.T) {
	var l *Limits
	def := Default()
	if l.Or().MaxExprDepth != def.MaxExprDepth {
		t.Error("nil limits do not default")
	}
	if err := l.CheckSource(def.MaxSourceBytes); err != nil {
		t.Errorf("at-limit source rejected: %v", err)
	}
	if err := l.CheckSource(def.MaxSourceBytes + 1); !errors.Is(err, ErrLimit) {
		t.Errorf("over-limit source accepted: %v", err)
	}
	if err := l.CheckExprDepth(def.MaxExprDepth + 1); !errors.Is(err, ErrLimit) {
		t.Errorf("over-limit depth accepted: %v", err)
	}
	if err := l.CheckNestDepth(def.MaxNestDepth + 1); !errors.Is(err, ErrLimit) {
		t.Errorf("over-limit nesting accepted: %v", err)
	}
	if err := l.CheckTokens(def.MaxTokens + 1); !errors.Is(err, ErrLimit) {
		t.Errorf("over-limit tokens accepted: %v", err)
	}
}

func TestParseLimits(t *testing.T) {
	l, err := ParseLimits("expr-depth=64, bet-nodes=1000")
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxExprDepth != 64 || l.MaxBETNodes != 1000 {
		t.Errorf("overrides not applied: %+v", l)
	}
	if l.MaxTokens != Default().MaxTokens {
		t.Error("unspecified key lost its default")
	}
	if got, err := ParseLimits(""); err != nil || got.MaxExprDepth != Default().MaxExprDepth {
		t.Errorf("empty spec = %+v, %v", got, err)
	}
	for _, bad := range []string{"expr-depth", "expr-depth=0", "expr-depth=-1", "expr-depth=x", "nope=3"} {
		if _, err := ParseLimits(bad); err == nil {
			t.Errorf("ParseLimits(%q) accepted", bad)
		}
	}
	// Round trip through String.
	if _, err := ParseLimits(l.String()); err != nil {
		t.Errorf("String() not re-parseable: %v", err)
	}
}

func TestRecover(t *testing.T) {
	fn := func() (err error) {
		defer Recover(&err, "stage %s", "x")
		panic("boom")
	}
	err := fn()
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("recovered error not Is(ErrPanic): %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError fields wrong: %+v", pe)
	}
	if !strings.Contains(err.Error(), "stage x") {
		t.Errorf("prefix lost: %v", err)
	}
	// No panic: err untouched.
	ok := func() (err error) {
		defer Recover(&err, "stage")
		return nil
	}
	if err := ok(); err != nil {
		t.Errorf("Recover fabricated error: %v", err)
	}
}

func TestFaultPoints(t *testing.T) {
	var got []string
	disarm := Arm("test.point", func(detail string) { got = append(got, detail) })
	Hit("test.point", "a")
	Hit("other.point", "ignored")
	Hit("test.point", "b")
	disarm()
	disarm() // idempotent
	Hit("test.point", "after-disarm")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("fault point fired %v, want [a b]", got)
	}
	if faultArmed.Load() != 0 {
		t.Errorf("armed count leaked: %d", faultArmed.Load())
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Stage: "roofline", Code: "non-finite-time", BlockID: "main/L3", Message: "T is NaN"}
	if s := d.String(); !strings.Contains(s, "roofline/non-finite-time") || !strings.Contains(s, "main/L3") {
		t.Errorf("String() = %q", s)
	}
	ds := []Diagnostic{{Stage: "b"}, {Stage: "a", Code: "z"}, {Stage: "a", Code: "y"}}
	SortDiagnostics(ds)
	if ds[0].Code != "y" || ds[1].Code != "z" || ds[2].Stage != "b" {
		t.Errorf("sort order wrong: %v", ds)
	}
}
