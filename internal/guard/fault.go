package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrPanic marks errors produced by recovering a panic at an isolation
// boundary. errors.Is(err, guard.ErrPanic) distinguishes a crash converted
// to an error from an ordinary failure.
var ErrPanic = errors.New("recovered panic")

// PanicError carries a recovered panic value plus the stack at the point
// of recovery.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured during recovery.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Unwrap ties every PanicError to the ErrPanic sentinel.
func (e *PanicError) Unwrap() error { return ErrPanic }

// Recover converts an in-flight panic into an error assigned to *err,
// prefixed for attribution. Use it deferred at isolation boundaries:
//
//	defer guard.Recover(&err, "explore: variant %d", i)
//
// If no panic is in flight, or *err is already set and no panic occurred,
// it does nothing. The original panic value and stack stay reachable via
// errors.As with *PanicError.
func Recover(err *error, format string, args ...any) {
	r := recover()
	if r == nil {
		return
	}
	pe := &PanicError{Value: r, Stack: debug.Stack()}
	*err = fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), pe)
}

// faultArmed counts currently armed fault points; the zero fast path keeps
// Hit free in production (one atomic load, no lock).
var (
	faultArmed  atomic.Int32
	faultMu     sync.Mutex
	faultPoints map[string]func(detail string)
)

// Hit triggers the named fault point with a detail string (a block ID, a
// machine name — whatever identifies the unit being processed). It is a
// no-op unless a test armed the point with Arm; production code sprinkles
// Hit calls at isolation boundaries so tests can inject failures exactly
// where a real fault would surface.
func Hit(point, detail string) {
	if faultArmed.Load() == 0 {
		return
	}
	faultMu.Lock()
	fn := faultPoints[point]
	faultMu.Unlock()
	if fn != nil {
		fn(detail)
	}
}

// Arm installs fn at the named fault point and returns a disarm function.
// fn runs on whatever goroutine Hits the point and may panic (to test
// panic isolation), block, or cancel a context (to test cancellation).
// Tests must call the returned disarm (usually via t.Cleanup).
func Arm(point string, fn func(detail string)) (disarm func()) {
	faultMu.Lock()
	defer faultMu.Unlock()
	if faultPoints == nil {
		faultPoints = make(map[string]func(string))
	}
	if _, dup := faultPoints[point]; dup {
		panic(fmt.Sprintf("guard: fault point %q armed twice", point))
	}
	faultPoints[point] = fn
	faultArmed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			faultMu.Lock()
			defer faultMu.Unlock()
			delete(faultPoints, point)
			faultArmed.Add(-1)
		})
	}
}
