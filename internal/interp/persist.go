package interp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The paper's profiling pass runs once on a local machine and its results
// are "reused to analyze and project performance across different
// architectures" — so profiles are persistable: JSON with branch and loop
// statistics keyed by site.

// WriteProfile serializes a profile as indented JSON.
func WriteProfile(w io.Writer, p *Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadProfile parses a profile from JSON.
func ReadProfile(r io.Reader) (*Profile, error) {
	p := NewProfile()
	if err := json.NewDecoder(r).Decode(p); err != nil {
		return nil, fmt.Errorf("interp: bad profile: %v", err)
	}
	if p.Branches == nil {
		p.Branches = map[string]*BranchStat{}
	}
	if p.Loops == nil {
		p.Loops = map[string]*LoopStat{}
	}
	for site, st := range p.Branches {
		if st == nil || st.Total < 0 || st.Taken < 0 || st.Taken > st.Total {
			return nil, fmt.Errorf("interp: profile branch %q is inconsistent", site)
		}
	}
	for site, st := range p.Loops {
		if st == nil || st.Execs < 0 || st.Trips < 0 {
			return nil, fmt.Errorf("interp: profile loop %q is inconsistent", site)
		}
	}
	return p, nil
}

// SaveProfile writes a profile to a JSON file.
func SaveProfile(path string, p *Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("interp: %v", err)
	}
	defer f.Close()
	return WriteProfile(f, p)
}

// LoadProfile reads a profile from a JSON file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("interp: %v", err)
	}
	defer f.Close()
	return ReadProfile(f)
}
