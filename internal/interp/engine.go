// Package interp implements a tree-walking execution engine for minilang
// programs, parameterized by an Observer that receives fine-grained dynamic
// events: arithmetic operations, memory accesses with concrete addresses,
// library calls, branch outcomes, and loop trip counts.
//
// Two consumers plug into the engine:
//
//   - the branch profiler (Profile in this package), the paper's gcov
//     substitute: it listens only to branch and loop events and produces the
//     hardware-independent statistics folded into code skeletons;
//   - the machine timing simulator (package sim), the paper's physical
//     validation machine substitute: it listens to every event, drives a
//     cache hierarchy with the observed addresses, and attributes cycles to
//     source blocks.
package interp

import (
	"context"
	"fmt"
	"math"

	"skope/internal/guard"
	"skope/internal/minilang"
)

// OpClass classifies dynamic arithmetic operations.
type OpClass int

// Operation classes reported to observers.
const (
	OpFloat    OpClass = iota // FP add/sub/mul/compare
	OpFloatDiv                // FP division
	OpInt                     // integer op (arith, compare, addressing)
)

func (c OpClass) String() string {
	switch c {
	case OpFloat:
		return "fp"
	case OpFloatDiv:
		return "fdiv"
	case OpInt:
		return "int"
	}
	return "op?"
}

// VecLevel describes the vectorization context of a dynamic operation.
// Machine models decide what to credit: VecAnnotated loops (@vec) are
// vectorized by every compiler; VecAuto loops (clean single-segment bodies
// without control flow) are vectorized only by aggressive compilers (the
// paper's "highly vectorized by default" Xeon toolchain vs the selective
// IBM XL on BG/Q).
type VecLevel int

// Vectorization contexts.
const (
	VecNone VecLevel = iota
	VecAuto
	VecAnnotated
)

func (v VecLevel) String() string {
	switch v {
	case VecNone:
		return "scalar"
	case VecAuto:
		return "auto-vec"
	case VecAnnotated:
		return "annotated-vec"
	}
	return "vec?"
}

// Observer receives dynamic execution events. Implementations must be cheap;
// the engine calls them in the hot path.
type Observer interface {
	// EnterBlock reports that subsequent events belong to the source block
	// with the given ID ("<func>/L<line>" for segments, "<func>/for@L<n>"
	// and "<func>/if@L<n>" for control overhead).
	EnterBlock(id string)
	// Op reports one arithmetic operation with its vectorization context.
	Op(class OpClass, vec VecLevel)
	// Access reports a data memory access at a byte address.
	Access(addr uint64, size int, store bool)
	// LibCall reports a math-library invocation with its vector context.
	LibCall(name string, vec VecLevel)
	// Comm reports a communication phase: msgs messages totaling bytes
	// bytes (the exchange() builtin; multi-node modeling extension).
	Comm(bytes, msgs float64)
	// Branch reports an if outcome at the given site.
	Branch(site string, taken bool)
	// LoopTrips reports a completed loop execution and its trip count.
	LoopTrips(site string, trips int64)
}

// NopObserver is an Observer that ignores everything; embed it to implement
// only some events.
type NopObserver struct{}

// EnterBlock implements Observer.
func (NopObserver) EnterBlock(string) {}

// Op implements Observer.
func (NopObserver) Op(OpClass, VecLevel) {}

// Access implements Observer.
func (NopObserver) Access(uint64, int, bool) {}

// LibCall implements Observer.
func (NopObserver) LibCall(string, VecLevel) {}

// Comm implements Observer.
func (NopObserver) Comm(float64, float64) {}

// Branch implements Observer.
func (NopObserver) Branch(string, bool) {}

// LoopTrips implements Observer.
func (NopObserver) LoopTrips(string, int64) {}

// Site formats a control-site key: "<func>@<line>:<col>". Branch and loop
// statistics are keyed by site.
func Site(funcName string, pos minilang.Pos) string {
	return fmt.Sprintf("%s@%d:%d", funcName, pos.Line, pos.Col)
}

// Array is a runtime global array: flat row-major float64 storage plus its
// simulated base address.
type Array struct {
	Data    []float64
	Extents []int64
	Base    uint64
	Elem    int // element size in bytes (8)
}

// Options configure an engine run.
type Options struct {
	// MaxSteps bounds total executed statements to catch runaway loops
	// (default 2^34).
	MaxSteps int64
	// Seed seeds the deterministic rand() stream (default 1).
	Seed uint64
	// Observer receives events; nil means no observation.
	Observer Observer
	// Ctx bounds the run: cancellation or a deadline stops execution within
	// ctxCheckMask+1 statements (default context.Background()).
	Ctx context.Context
}

// Engine executes a checked minilang program.
type Engine struct {
	prog *minilang.Program
	obs  Observer

	// Globals holds scalar globals by name.
	Globals map[string]float64
	// Arrays holds array globals by name.
	Arrays map[string]*Array

	rng      uint64
	steps    int64
	maxSteps int64
	ctx      context.Context

	// stmtSeg maps simple statements to their segments, precomputed.
	stmtSeg map[minilang.Stmt]*minilang.Segment
	// loopVec caches the vectorization level of each counted loop.
	loopVec map[*minilang.For]VecLevel
	// curBlock is the current attribution block ID.
	curBlock string
}

// New prepares an engine: evaluates global initializers in declaration
// order, allocates arrays, and precomputes segment attribution. The program
// must have passed minilang.Check.
func New(prog *minilang.Program, opts *Options) (*Engine, error) {
	e := &Engine{
		prog:     prog,
		Globals:  make(map[string]float64),
		Arrays:   make(map[string]*Array),
		rng:      1,
		maxSteps: 1 << 34,
		ctx:      context.Background(),
		stmtSeg:  make(map[minilang.Stmt]*minilang.Segment),
		loopVec:  make(map[*minilang.For]VecLevel),
	}
	if opts != nil {
		if opts.MaxSteps > 0 {
			e.maxSteps = opts.MaxSteps
		}
		if opts.Seed != 0 {
			e.rng = opts.Seed
		}
		if opts.Ctx != nil {
			e.ctx = opts.Ctx
		}
		e.obs = opts.Observer
	}
	if e.obs == nil {
		e.obs = NopObserver{}
	}

	// Initialize globals in order; array extents may reference previously
	// declared scalars.
	var base uint64 = 1 << 12 // leave page zero unused
	for _, g := range prog.Globals {
		if !g.Type.IsArray() {
			v := 0.0
			if g.Init != nil {
				var err error
				v, err = e.constEval(g.Init)
				if err != nil {
					return nil, fmt.Errorf("%s: global %s: %v", prog.Source, g.Name, err)
				}
			}
			if g.Type.Base == minilang.TypeInt {
				v = math.Trunc(v)
			}
			e.Globals[g.Name] = v
			continue
		}
		arr := &Array{Elem: 8}
		total := int64(1)
		for _, ex := range g.Type.Extents {
			v, err := e.constEval(ex)
			if err != nil {
				return nil, fmt.Errorf("%s: extent of %s: %v", prog.Source, g.Name, err)
			}
			n := int64(math.Trunc(v))
			if n <= 0 {
				return nil, fmt.Errorf("%s: array %s has non-positive extent %d", prog.Source, g.Name, n)
			}
			arr.Extents = append(arr.Extents, n)
			total *= n
			if total > 1<<31 {
				return nil, fmt.Errorf("%s: array %s too large (%d elements)", prog.Source, g.Name, total)
			}
		}
		arr.Data = make([]float64, total)
		arr.Base = base
		base += uint64(total*int64(arr.Elem)+4095) &^ 4095 // page-align next array
		e.Arrays[g.Name] = arr
	}

	// Precompute statement -> segment mapping for attribution.
	for _, f := range prog.Funcs {
		e.indexSegments(f.Name, f.Body)
	}
	return e, nil
}

func (e *Engine) indexSegments(fn string, b *minilang.Block) {
	segs := minilang.SegmentsOf(fn, b)
	for i := range segs {
		for _, s := range segs[i].Stmts {
			e.stmtSeg[s] = &segs[i]
		}
	}
	for _, s := range b.Stmts {
		switch t := s.(type) {
		case *minilang.For:
			e.indexSegments(fn, t.Body)
		case *minilang.While:
			e.indexSegments(fn, t.Body)
		case *minilang.If:
			e.indexSegments(fn, t.Then)
			if t.Else != nil {
				e.indexSegments(fn, t.Else)
			}
		}
	}
}

// constEval evaluates global-declaration expressions (literals, previously
// initialized globals, arithmetic).
func (e *Engine) constEval(x minilang.Expr) (float64, error) {
	switch t := x.(type) {
	case *minilang.IntLit:
		return float64(t.Val), nil
	case *minilang.FloatLit:
		return t.Val, nil
	case *minilang.VarRef:
		v, ok := e.Globals[t.Name]
		if !ok {
			return 0, fmt.Errorf("reference to uninitialized global %q", t.Name)
		}
		return v, nil
	case *minilang.Binary:
		l, err := e.constEval(t.L)
		if err != nil {
			return 0, err
		}
		r, err := e.constEval(t.R)
		if err != nil {
			return 0, err
		}
		return applyBinary(t, l, r)
	case *minilang.Unary:
		v, err := e.constEval(t.X)
		if err != nil {
			return 0, err
		}
		if t.Op == "!" {
			return b2f(v == 0), nil
		}
		return -v, nil
	}
	return 0, fmt.Errorf("unsupported constant expression %T", x)
}

// Run executes main(). It may be called once per engine.
func (e *Engine) Run() error {
	main := e.prog.FuncByName["main"]
	_, _, err := e.callFunc(main, nil)
	return err
}

// Steps returns the number of statements executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// control is the non-local control outcome of statement execution.
type control int

const (
	ctrlNone control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// frame is a function activation record.
type frame struct {
	fn     *minilang.FuncDecl
	locals map[string]float64
	// vec is the vectorization context of the innermost enclosing loop
	// body while executing its directly nested simple statements.
	vec VecLevel
}

func (e *Engine) errf(pos minilang.Pos, format string, args ...any) error {
	return fmt.Errorf("%s:%s: runtime: %s", e.prog.Source, pos, fmt.Sprintf(format, args...))
}

// ctxCheckMask gates the cancellation check to every 1024th statement: fine
// enough that a deadline lands within microseconds, coarse enough to keep
// ctx.Err() out of the interpreter's hot path.
const ctxCheckMask = 1<<10 - 1

// budget charges one statement against the step budget and, periodically,
// against the run's context deadline. The guard.Hit call is a
// fault-injection point (no-op unless a test arms "interp.step").
func (e *Engine) budget(pos minilang.Pos) error {
	e.steps++
	if e.steps > e.maxSteps {
		return e.errf(pos, "step budget exceeded (%d); runaway loop?", e.maxSteps)
	}
	if e.steps&ctxCheckMask == 0 {
		guard.Hit("interp.step", e.prog.Source)
		if err := e.ctx.Err(); err != nil {
			return fmt.Errorf("%s:%s: %w", e.prog.Source, pos, err)
		}
	}
	return nil
}

func (e *Engine) callFunc(fn *minilang.FuncDecl, args []float64) (float64, control, error) {
	fr := &frame{fn: fn, locals: make(map[string]float64, len(fn.Params)+8)}
	for i, p := range fn.Params {
		v := args[i]
		if p.Base == minilang.TypeInt {
			v = math.Trunc(v)
		}
		fr.locals[p.Name] = v
	}
	ret, ctrl, err := e.execBlock(fr, fn.Body)
	if err != nil {
		return 0, ctrlNone, err
	}
	if ctrl == ctrlReturn {
		return ret, ctrlNone, nil
	}
	return 0, ctrlNone, nil
}

func (e *Engine) execBlock(fr *frame, b *minilang.Block) (float64, control, error) {
	for _, s := range b.Stmts {
		ret, ctrl, err := e.execStmt(fr, s)
		if err != nil || ctrl != ctrlNone {
			return ret, ctrl, err
		}
	}
	return 0, ctrlNone, nil
}

// enterBlockFor switches attribution to the block owning s, if needed.
func (e *Engine) enterBlockFor(id string) {
	if id != e.curBlock {
		e.curBlock = id
		e.obs.EnterBlock(id)
	}
}

func (e *Engine) execStmt(fr *frame, s minilang.Stmt) (float64, control, error) {
	if err := e.budget(s.StmtPos()); err != nil {
		return 0, ctrlNone, err
	}
	if seg := e.stmtSeg[s]; seg != nil {
		e.enterBlockFor(seg.BlockID())
	}
	switch t := s.(type) {
	case *minilang.VarDecl:
		v := 0.0
		if t.Init != nil {
			var err error
			v, err = e.eval(fr, t.Init)
			if err != nil {
				return 0, ctrlNone, err
			}
		}
		if t.Base == minilang.TypeInt {
			v = math.Trunc(v)
		}
		fr.locals[t.Name] = v
		return 0, ctrlNone, nil

	case *minilang.Assign:
		v, err := e.eval(fr, t.RHS)
		if err != nil {
			return 0, ctrlNone, err
		}
		return 0, ctrlNone, e.assign(fr, t.LHS, v)

	case *minilang.ExprStmt:
		_, err := e.eval(fr, t.X)
		return 0, ctrlNone, err

	case *minilang.For:
		return e.execFor(fr, t)

	case *minilang.While:
		return e.execWhile(fr, t)

	case *minilang.If:
		e.enterBlockFor(fmt.Sprintf("%s/if@L%d", fr.fn.Name, t.Pos.Line))
		cond, err := e.eval(fr, t.Cond)
		if err != nil {
			return 0, ctrlNone, err
		}
		taken := cond != 0
		e.obs.Branch(Site(fr.fn.Name, t.Pos), taken)
		if taken {
			return e.execBlock(fr, t.Then)
		}
		if t.Else != nil {
			return e.execBlock(fr, t.Else)
		}
		return 0, ctrlNone, nil

	case *minilang.Return:
		if t.X != nil {
			v, err := e.eval(fr, t.X)
			if err != nil {
				return 0, ctrlNone, err
			}
			if fr.fn.Ret == minilang.TypeInt {
				v = math.Trunc(v)
			}
			return v, ctrlReturn, nil
		}
		return 0, ctrlReturn, nil

	case *minilang.Break:
		return 0, ctrlBreak, nil

	case *minilang.Continue:
		return 0, ctrlContinue, nil
	}
	return 0, ctrlNone, e.errf(s.StmtPos(), "unhandled statement %T", s)
}

func (e *Engine) execFor(fr *frame, t *minilang.For) (float64, control, error) {
	blockID := fmt.Sprintf("%s/for@L%d", fr.fn.Name, t.Pos.Line)
	e.enterBlockFor(blockID)
	from, err := e.eval(fr, t.From)
	if err != nil {
		return 0, ctrlNone, err
	}
	to, err := e.eval(fr, t.To)
	if err != nil {
		return 0, ctrlNone, err
	}
	step := 1.0
	if t.Step != nil {
		step, err = e.eval(fr, t.Step)
		if err != nil {
			return 0, ctrlNone, err
		}
	}
	step = math.Trunc(step)
	if step == 0 {
		return 0, ctrlNone, e.errf(t.Pos, "for step is zero")
	}
	i := math.Trunc(from)
	to = math.Trunc(to)
	// Vector context applies to this loop's own body only: a nested loop
	// re-decides from its own annotation or shape.
	saveVec := fr.vec
	fr.vec = e.vecLevel(t)
	defer func() { fr.vec = saveVec }()
	var trips int64
	for (step > 0 && i < to) || (step < 0 && i > to) {
		// Loop bookkeeping: compare + increment.
		e.enterBlockFor(blockID)
		e.obs.Op(OpInt, VecNone)
		e.obs.Op(OpInt, VecNone)
		fr.locals[t.Var] = i
		trips++
		ret, ctrl, err := e.execBlock(fr, t.Body)
		if err != nil {
			return 0, ctrlNone, err
		}
		switch ctrl {
		case ctrlBreak:
			e.obs.LoopTrips(Site(fr.fn.Name, t.Pos), trips)
			return 0, ctrlNone, nil
		case ctrlReturn:
			e.obs.LoopTrips(Site(fr.fn.Name, t.Pos), trips)
			return ret, ctrlReturn, nil
		}
		i += step
		if err := e.budget(t.Pos); err != nil {
			return 0, ctrlNone, err
		}
	}
	e.obs.LoopTrips(Site(fr.fn.Name, t.Pos), trips)
	return 0, ctrlNone, nil
}

func (e *Engine) execWhile(fr *frame, t *minilang.While) (float64, control, error) {
	blockID := fmt.Sprintf("%s/while@L%d", fr.fn.Name, t.Pos.Line)
	var trips int64
	for {
		e.enterBlockFor(blockID)
		cond, err := e.eval(fr, t.Cond)
		if err != nil {
			return 0, ctrlNone, err
		}
		if cond == 0 {
			break
		}
		trips++
		ret, ctrl, err := e.execBlock(fr, t.Body)
		if err != nil {
			return 0, ctrlNone, err
		}
		switch ctrl {
		case ctrlBreak:
			e.obs.LoopTrips(Site(fr.fn.Name, t.Pos), trips)
			return 0, ctrlNone, nil
		case ctrlReturn:
			e.obs.LoopTrips(Site(fr.fn.Name, t.Pos), trips)
			return ret, ctrlReturn, nil
		}
		if err := e.budget(t.Pos); err != nil {
			return 0, ctrlNone, err
		}
	}
	e.obs.LoopTrips(Site(fr.fn.Name, t.Pos), trips)
	return 0, ctrlNone, nil
}

func (e *Engine) assign(fr *frame, lhs minilang.Expr, v float64) error {
	switch t := lhs.(type) {
	case *minilang.VarRef:
		if t.ResultType() == minilang.TypeInt {
			v = math.Trunc(v)
		}
		if t.Global {
			e.Globals[t.Name] = v
			return nil
		}
		fr.locals[t.Name] = v
		return nil
	case *minilang.Index:
		arr, off, err := e.element(fr, t)
		if err != nil {
			return err
		}
		if t.ResultType() == minilang.TypeInt {
			v = math.Trunc(v)
		}
		e.obs.Access(arr.Base+uint64(off)*uint64(arr.Elem), arr.Elem, true)
		arr.Data[off] = v
		return nil
	}
	return e.errf(lhs.ExprPos(), "not assignable")
}

// element resolves an Index expression to its array and flat offset,
// evaluating and bounds-checking the index list.
func (e *Engine) element(fr *frame, t *minilang.Index) (*Array, int64, error) {
	arr := e.Arrays[t.Name]
	if arr == nil {
		return nil, 0, e.errf(t.Pos, "no storage for array %q", t.Name)
	}
	var off int64
	for d, ix := range t.Indices {
		v, err := e.eval(fr, ix)
		if err != nil {
			return nil, 0, err
		}
		// Address arithmetic: one int op per dimension.
		e.obs.Op(OpInt, fr.vec)
		i := int64(math.Trunc(v))
		if i < 0 || i >= arr.Extents[d] {
			return nil, 0, e.errf(t.Pos, "index %d out of range [0,%d) in dimension %d of %q",
				i, arr.Extents[d], d, t.Name)
		}
		off = off*arr.Extents[d] + i
	}
	return arr, off, nil
}

func (e *Engine) eval(fr *frame, x minilang.Expr) (float64, error) {
	switch t := x.(type) {
	case *minilang.IntLit:
		return float64(t.Val), nil
	case *minilang.FloatLit:
		return t.Val, nil

	case *minilang.VarRef:
		if t.Global {
			return e.Globals[t.Name], nil
		}
		v, ok := fr.locals[t.Name]
		if !ok {
			return 0, e.errf(t.Pos, "unbound local %q", t.Name)
		}
		return v, nil

	case *minilang.Index:
		arr, off, err := e.element(fr, t)
		if err != nil {
			return 0, err
		}
		e.obs.Access(arr.Base+uint64(off)*uint64(arr.Elem), arr.Elem, false)
		return arr.Data[off], nil

	case *minilang.Binary:
		// Short-circuit logical operators.
		if t.Op == minilang.OpAnd || t.Op == minilang.OpOr {
			l, err := e.eval(fr, t.L)
			if err != nil {
				return 0, err
			}
			e.obs.Op(OpInt, fr.vec)
			if t.Op == minilang.OpAnd && l == 0 {
				return 0, nil
			}
			if t.Op == minilang.OpOr && l != 0 {
				return 1, nil
			}
			r, err := e.eval(fr, t.R)
			if err != nil {
				return 0, err
			}
			return b2f(r != 0), nil
		}
		l, err := e.eval(fr, t.L)
		if err != nil {
			return 0, err
		}
		r, err := e.eval(fr, t.R)
		if err != nil {
			return 0, err
		}
		e.reportBinaryOp(t, fr.vec)
		v, err := applyBinary(t, l, r)
		if err != nil {
			return 0, e.errf(t.Pos, "%v", err)
		}
		return v, nil

	case *minilang.Unary:
		v, err := e.eval(fr, t.X)
		if err != nil {
			return 0, err
		}
		if t.Op == "!" {
			e.obs.Op(OpInt, fr.vec)
			return b2f(v == 0), nil
		}
		if t.X.ResultType() == minilang.TypeFloat {
			e.obs.Op(OpFloat, fr.vec)
		} else {
			e.obs.Op(OpInt, fr.vec)
		}
		return -v, nil

	case *minilang.Call:
		args := make([]float64, len(t.Args))
		for i, a := range t.Args {
			v, err := e.eval(fr, a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		if t.Builtin {
			if t.Name == "exchange" {
				// Attribute the communication to its own block, matching
				// the skeleton translator's comm statement.
				e.enterBlockFor(fmt.Sprintf("%s/comm@L%d", fr.fn.Name, t.Pos.Line))
				e.obs.Comm(args[0], args[1])
				return 0, nil
			}
			e.obs.LibCall(t.Name, fr.vec)
			return e.callBuiltin(t, args)
		}
		// User call: attribution moves to the callee; restore afterwards.
		saveVec := fr.vec
		fr.vec = VecNone
		v, _, err := e.callFunc(t.Decl, args)
		fr.vec = saveVec
		// Force re-attribution on return to the caller.
		e.curBlock = ""
		return v, err
	}
	return 0, e.errf(x.ExprPos(), "unhandled expression %T", x)
}

// vecLevel classifies a counted loop: @vec annotations are honoured by
// every machine; a clean body — a single straight-line segment with no
// control flow or user calls — is auto-vectorizable by aggressive
// compilers.
func (e *Engine) vecLevel(t *minilang.For) VecLevel {
	if lvl, ok := e.loopVec[t]; ok {
		return lvl
	}
	lvl := VecNone
	if t.Vec {
		lvl = VecAnnotated
	} else if simpleLoopBody(t.Body) {
		lvl = VecAuto
	}
	e.loopVec[t] = lvl
	return lvl
}

// simpleLoopBody reports whether every statement of the body is a simple
// straight-line statement (auto-vectorization candidate).
func simpleLoopBody(b *minilang.Block) bool {
	if len(b.Stmts) == 0 {
		return false
	}
	for _, s := range b.Stmts {
		if !minilang.IsSimpleStmt(s) {
			return false
		}
	}
	return true
}

// reportBinaryOp classifies and reports one binary operation.
func (e *Engine) reportBinaryOp(t *minilang.Binary, vec VecLevel) {
	isFloat := t.L.ResultType() == minilang.TypeFloat || t.R.ResultType() == minilang.TypeFloat
	switch {
	case isFloat && t.Op == minilang.OpDiv:
		e.obs.Op(OpFloatDiv, vec)
	case isFloat:
		e.obs.Op(OpFloat, vec)
	default:
		e.obs.Op(OpInt, vec)
	}
}

func applyBinary(t *minilang.Binary, l, r float64) (float64, error) {
	isInt := t.ResultType() == minilang.TypeInt
	switch t.Op {
	case minilang.OpAdd:
		return truncIf(l+r, isInt), nil
	case minilang.OpSub:
		return truncIf(l-r, isInt), nil
	case minilang.OpMul:
		return truncIf(l*r, isInt), nil
	case minilang.OpDiv:
		if isInt {
			if r == 0 {
				return 0, fmt.Errorf("integer division by zero")
			}
			return math.Trunc(l / r), nil
		}
		return l / r, nil // IEEE semantics for float
	case minilang.OpRem:
		if r == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return math.Mod(l, r), nil
	case minilang.OpLt:
		return b2f(l < r), nil
	case minilang.OpLe:
		return b2f(l <= r), nil
	case minilang.OpGt:
		return b2f(l > r), nil
	case minilang.OpGe:
		return b2f(l >= r), nil
	case minilang.OpEq:
		return b2f(l == r), nil
	case minilang.OpNe:
		return b2f(l != r), nil
	}
	return 0, fmt.Errorf("unhandled operator %s", t.Op)
}

func truncIf(v float64, isInt bool) float64 {
	if isInt {
		return math.Trunc(v)
	}
	return v
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (e *Engine) callBuiltin(t *minilang.Call, args []float64) (float64, error) {
	switch t.Name {
	case "exp":
		return math.Exp(args[0]), nil
	case "log":
		if args[0] <= 0 {
			return 0, e.errf(t.Pos, "log of non-positive value %g", args[0])
		}
		return math.Log(args[0]), nil
	case "sqrt":
		if args[0] < 0 {
			return 0, e.errf(t.Pos, "sqrt of negative value %g", args[0])
		}
		return math.Sqrt(args[0]), nil
	case "sin":
		return math.Sin(args[0]), nil
	case "cos":
		return math.Cos(args[0]), nil
	case "abs":
		return math.Abs(args[0]), nil
	case "floor":
		return math.Floor(args[0]), nil
	case "pow":
		return math.Pow(args[0], args[1]), nil
	case "min":
		return math.Min(args[0], args[1]), nil
	case "max":
		return math.Max(args[0], args[1]), nil
	case "mod":
		if args[1] == 0 {
			return 0, e.errf(t.Pos, "mod by zero")
		}
		return math.Mod(args[0], args[1]), nil
	case "rand":
		return e.nextRand(), nil
	}
	return 0, e.errf(t.Pos, "unknown builtin %q", t.Name)
}

// nextRand is a deterministic xorshift64* stream in [0, 1).
func (e *Engine) nextRand() float64 {
	x := e.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	e.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}
