package interp

import (
	"path/filepath"
	"strings"
	"testing"

	"skope/internal/minilang"
)

func collectProfile(t *testing.T, src string) *Profile {
	t.Helper()
	prog := minilang.MustCheck(minilang.MustParse("p", src))
	pr := NewProfiler()
	e, err := New(prog, &Options{Observer: pr})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return pr.P
}

const persistSrc = `
global acc: int;
func main() {
  for i = 0 .. 100 {
    if (i % 5 == 0) {
      acc = acc + 1;
    }
  }
  var j: int = 0;
  while (j < 7) {
    j = j + 1;
  }
}
`

func TestProfileRoundTrip(t *testing.T) {
	p := collectProfile(t, persistSrc)
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	q, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != p.String() {
		t.Errorf("round trip changed profile:\n%s\nvs\n%s", p, q)
	}
	// Semantics preserved.
	for site, st := range p.Branches {
		if got := q.Branches[site]; got == nil || got.Prob() != st.Prob() {
			t.Errorf("branch %s lost: %+v", site, got)
		}
	}
	for site, st := range p.Loops {
		if got := q.Loops[site]; got == nil || got.Mean() != st.Mean() {
			t.Errorf("loop %s lost: %+v", site, got)
		}
	}
}

func TestReadProfileRejectsInconsistent(t *testing.T) {
	cases := map[string]string{
		"bad json":    "{",
		"neg total":   `{"Branches":{"f@1:1":{"Taken":0,"Total":-1}},"Loops":{}}`,
		"taken>total": `{"Branches":{"f@1:1":{"Taken":5,"Total":2}},"Loops":{}}`,
		"neg trips":   `{"Branches":{},"Loops":{"f@1:1":{"Trips":-3,"Execs":1}}}`,
	}
	for name, src := range cases {
		if _, err := ReadProfile(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadProfileEmptyMaps(t *testing.T) {
	p, err := ReadProfile(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Branches == nil || p.Loops == nil {
		t.Error("nil maps not initialized")
	}
}

func TestLoadProfileMissing(t *testing.T) {
	if _, err := LoadProfile(filepath.Join(t.TempDir(), "no.json")); err == nil {
		t.Error("missing file accepted")
	}
}
