package interp

import (
	"fmt"
	"sort"
	"strings"
)

// BranchStat is the profiled outcome distribution of one branch site.
type BranchStat struct {
	Taken, Total int64
}

// Prob returns the fall-through (taken) probability; 0.5 when never seen.
func (b BranchStat) Prob() float64 {
	if b.Total == 0 {
		return 0.5
	}
	return float64(b.Taken) / float64(b.Total)
}

// LoopStat is the profiled trip-count distribution of one loop site.
type LoopStat struct {
	// Trips is the total iterations over all executions; Execs the number
	// of times the loop statement ran.
	Trips, Execs int64
	MinTrips     int64
	MaxTrips     int64
}

// Mean returns the average trip count per execution.
func (l LoopStat) Mean() float64 {
	if l.Execs == 0 {
		return 0
	}
	return float64(l.Trips) / float64(l.Execs)
}

// Profile is the output of the local branch-profiling run (the paper's gcov
// pass): hardware-independent branch and loop statistics, keyed by site
// ("<func>@<line>:<col>").
type Profile struct {
	Branches map[string]*BranchStat
	Loops    map[string]*LoopStat
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		Branches: make(map[string]*BranchStat),
		Loops:    make(map[string]*LoopStat),
	}
}

// Profiler is the Observer that collects a Profile. It ignores operation
// and memory events: branch statistics are hardware independent, which is
// why the paper needs only one local profiling run reusable across targets.
type Profiler struct {
	NopObserver
	P *Profile
}

// NewProfiler returns a profiler with an empty profile.
func NewProfiler() *Profiler { return &Profiler{P: NewProfile()} }

// Branch implements Observer.
func (pr *Profiler) Branch(site string, taken bool) {
	st := pr.P.Branches[site]
	if st == nil {
		st = &BranchStat{}
		pr.P.Branches[site] = st
	}
	st.Total++
	if taken {
		st.Taken++
	}
}

// LoopTrips implements Observer.
func (pr *Profiler) LoopTrips(site string, trips int64) {
	st := pr.P.Loops[site]
	if st == nil {
		st = &LoopStat{MinTrips: trips, MaxTrips: trips}
		pr.P.Loops[site] = st
	}
	st.Execs++
	st.Trips += trips
	if trips < st.MinTrips {
		st.MinTrips = trips
	}
	if trips > st.MaxTrips {
		st.MaxTrips = trips
	}
}

// CollectProfile runs the program once under the profiler and returns the
// branch/loop statistics.
func CollectProfile(e *Engine, pr *Profiler) (*Profile, error) {
	if err := e.Run(); err != nil {
		return nil, err
	}
	return pr.P, nil
}

// String renders the profile deterministically for goldens and debugging.
func (p *Profile) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(p.Branches))
	for k := range p.Branches {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := p.Branches[k]
		fmt.Fprintf(&b, "branch %s taken %d/%d p=%.4f\n", k, st.Taken, st.Total, st.Prob())
	}
	keys = keys[:0]
	for k := range p.Loops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := p.Loops[k]
		fmt.Fprintf(&b, "loop %s execs %d mean %.4g min %d max %d\n",
			k, st.Execs, st.Mean(), st.MinTrips, st.MaxTrips)
	}
	return b.String()
}
