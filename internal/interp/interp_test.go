package interp

import (
	"math"
	"strings"
	"testing"

	"skope/internal/minilang"
)

func run(t *testing.T, src string, opts *Options) *Engine {
	t.Helper()
	e := prep(t, src, opts)
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func prep(t *testing.T, src string, opts *Options) *Engine {
	t.Helper()
	prog, err := minilang.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	e, err := New(prog, opts)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	return e
}

func TestArithmeticAndGlobals(t *testing.T) {
	e := run(t, `
global x: float;
global k: int;
func main() {
  x = 3.0 * 4.0 + 1.0 / 2.0;
  k = 7 / 2;
}
`, nil)
	if e.Globals["x"] != 12.5 {
		t.Errorf("x = %g", e.Globals["x"])
	}
	if e.Globals["k"] != 3 { // integer division truncates
		t.Errorf("k = %g", e.Globals["k"])
	}
}

func TestArrayRoundTrip(t *testing.T) {
	e := run(t, `
global n: int = 8;
global a: [n][n]float;
global sum: float;
func main() {
  for i = 0 .. n {
    for j = 0 .. n {
      a[i][j] = i * 10 + j;
    }
  }
  sum = 0.0;
  for i = 0 .. n {
    sum = sum + a[i][i];
  }
}
`, nil)
	// sum of ii*10+i for i in 0..8 = 11*(0+..+7) = 11*28
	if e.Globals["sum"] != 308 {
		t.Errorf("sum = %g, want 308", e.Globals["sum"])
	}
}

func TestGlobalInitOrderAndExtents(t *testing.T) {
	e := prep(t, `
global n: int = 4;
global m: int = n * 2;
global a: [n * m]float;
func main() {}
`, nil)
	arr := e.Arrays["a"]
	if arr == nil || arr.Extents[0] != 32 {
		t.Fatalf("array a = %+v", arr)
	}
	if arr.Base == 0 || arr.Base%4096 != 0 {
		t.Errorf("array base not page aligned: %d", arr.Base)
	}
}

func TestControlFlow(t *testing.T) {
	e := run(t, `
global hits: int;
global brk: int;
func main() {
  hits = 0;
  for i = 0 .. 100 {
    if (i % 2 == 0) {
      continue;
    }
    hits = hits + 1;
    if (i >= 51) {
      break;
    }
  }
  brk = helper(10);
}
func helper(limit: int): int {
  var c: int = 0;
  var i: int = 0;
  while (i < 100) {
    c = c + 2;
    i = i + 1;
    if (i >= limit) {
      return c;
    }
  }
  return c;
}
`, nil)
	// odd numbers 1..51 = 26 hits
	if e.Globals["hits"] != 26 {
		t.Errorf("hits = %g, want 26", e.Globals["hits"])
	}
	if e.Globals["brk"] != 20 {
		t.Errorf("brk = %g, want 20", e.Globals["brk"])
	}
}

func TestBuiltins(t *testing.T) {
	e := run(t, `
global r: float;
func main() {
  r = exp(0.0) + sqrt(16.0) + abs(0.0 - 3.0) + floor(2.9) + pow(2.0, 10.0)
    + min(1.0, 2.0) + max(1.0, 2.0) + sin(0.0) + cos(0.0) + log(1.0) + mod(7.0, 4.0);
}
`, nil)
	want := 1.0 + 4 + 3 + 2 + 1024 + 1 + 2 + 0 + 1 + 0 + 3
	if math.Abs(e.Globals["r"]-want) > 1e-12 {
		t.Errorf("r = %g, want %g", e.Globals["r"], want)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
global s: float;
func main() {
  s = 0.0;
  for i = 0 .. 1000 {
    var v: float = rand();
    if (v < 0.0) { s = 0.0 - 1.0; }
    if (v >= 1.0) { s = 0.0 - 2.0; }
    s = s + v;
  }
}
`
	e1 := run(t, src, &Options{Seed: 42})
	e2 := run(t, src, &Options{Seed: 42})
	e3 := run(t, src, &Options{Seed: 43})
	if e1.Globals["s"] != e2.Globals["s"] {
		t.Error("rand not deterministic per seed")
	}
	if e1.Globals["s"] == e3.Globals["s"] {
		t.Error("rand identical across seeds")
	}
	if e1.Globals["s"] < 0 {
		t.Error("rand out of [0,1)")
	}
	mean := e1.Globals["s"] / 1000
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("rand mean = %g, want ~0.5", mean)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"oob":      "global a: [4]float; func main() { a[7] = 1.0; }",
		"oob neg":  "global a: [4]float; func main() { var i: int = 0 - 1; a[i] = 1.0; }",
		"int div0": "global k: int; func main() { var z: int = 0; k = 1 / z; }",
		"rem0":     "global k: int; func main() { var z: int = 0; k = 1 % z; }",
		"log0":     "global x: float; func main() { x = log(0.0); }",
		"sqrtneg":  "global x: float; func main() { x = sqrt(0.0 - 1.0); }",
		"mod0":     "global x: float; func main() { x = mod(1.0, 0.0); }",
		"zerostep": "func main() { var s: int = 0; for i = 0 .. 4 step s { } }",
	}
	for name, src := range cases {
		e := prep(t, src, nil)
		if err := e.Run(); err == nil {
			t.Errorf("%s: Run succeeded, want error", name)
		}
	}
}

func TestStepBudget(t *testing.T) {
	e := prep(t, "global x: int; func main() { while (1 > 0) { x = x + 1; } }", &Options{MaxSteps: 1000})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("expected step budget error, got %v", err)
	}
}

func TestBadArrayExtent(t *testing.T) {
	prog := minilang.MustCheck(minilang.MustParse("t", "global n: int = 0; global a: [n]float; func main() {}"))
	if _, err := New(prog, nil); err == nil {
		t.Error("zero extent accepted")
	}
	prog2 := minilang.MustCheck(minilang.MustParse("t", "global a: [99999999999]float; func main() {}"))
	if _, err := New(prog2, nil); err == nil {
		t.Error("huge extent accepted")
	}
}

func TestProfilerBranchStats(t *testing.T) {
	src := `
global acc: int;
func main() {
  acc = 0;
  for i = 0 .. 1000 {
    if (i % 4 == 0) {
      acc = acc + 1;
    }
  }
}
`
	pr := NewProfiler()
	e := prep(t, src, &Options{Observer: pr})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pr.P.Branches) != 1 {
		t.Fatalf("branches = %d", len(pr.P.Branches))
	}
	for _, st := range pr.P.Branches {
		if st.Total != 1000 || st.Taken != 250 {
			t.Errorf("branch stat = %+v", st)
		}
		if st.Prob() != 0.25 {
			t.Errorf("prob = %g", st.Prob())
		}
	}
	for _, st := range pr.P.Loops {
		if st.Execs != 1 || st.Trips != 1000 {
			t.Errorf("loop stat = %+v", st)
		}
	}
}

func TestProfilerLoopStats(t *testing.T) {
	src := `
func main() {
  for i = 0 .. 10 {
    inner(i);
  }
}
func inner(k: int) {
  var j: int = 0;
  while (j < k) {
    j = j + 1;
  }
}
`
	pr := NewProfiler()
	e := prep(t, src, &Options{Observer: pr})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var whileStat *LoopStat
	for site, st := range pr.P.Loops {
		if strings.HasPrefix(site, "inner@") {
			whileStat = st
		}
	}
	if whileStat == nil {
		t.Fatal("while loop not profiled")
	}
	if whileStat.Execs != 10 || whileStat.Trips != 45 {
		t.Errorf("while stat = %+v", whileStat)
	}
	if whileStat.Mean() != 4.5 || whileStat.MinTrips != 0 || whileStat.MaxTrips != 9 {
		t.Errorf("while stat = %+v mean %g", whileStat, whileStat.Mean())
	}
}

func TestProfileStringDeterministic(t *testing.T) {
	src := "func main() { for i = 0 .. 4 { if (i > 1) { } } }"
	pr := NewProfiler()
	e := prep(t, src, &Options{Observer: pr})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s1 := pr.P.String()
	if !strings.Contains(s1, "branch main@") || !strings.Contains(s1, "loop main@") {
		t.Errorf("profile string:\n%s", s1)
	}
}

func TestBranchStatDefaults(t *testing.T) {
	var b BranchStat
	if b.Prob() != 0.5 {
		t.Errorf("empty branch prob = %g", b.Prob())
	}
	var l LoopStat
	if l.Mean() != 0 {
		t.Errorf("empty loop mean = %g", l.Mean())
	}
}

// eventCounter records raw observer events for attribution tests.
type eventCounter struct {
	NopObserver
	blocks  []string
	ops     map[OpClass]int
	vecOps  int
	autoOps int
	acc     int
	stores  int
	libs    map[string]int
	vecLibs int
}

func newEventCounter() *eventCounter {
	return &eventCounter{ops: map[OpClass]int{}, libs: map[string]int{}}
}

func (c *eventCounter) EnterBlock(id string) { c.blocks = append(c.blocks, id) }
func (c *eventCounter) Op(cl OpClass, vec VecLevel) {
	c.ops[cl]++
	if vec == VecAnnotated {
		c.vecOps++
	}
	if vec == VecAuto {
		c.autoOps++
	}
}
func (c *eventCounter) Access(addr uint64, size int, store bool) {
	c.acc++
	if store {
		c.stores++
	}
}
func (c *eventCounter) LibCall(name string, vec VecLevel) {
	c.libs[name]++
	if vec == VecAnnotated {
		c.vecLibs++
	}
}

func TestObserverEvents(t *testing.T) {
	src := `
global a: [10]float;
func main() {
  for i = 0 .. 10 {
    a[i] = exp(a[i]) + 1.0;
  }
}
`
	ec := newEventCounter()
	e := prep(t, src, &Options{Observer: ec})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 loads + 10 stores
	if ec.acc != 20 || ec.stores != 10 {
		t.Errorf("accesses = %d stores = %d", ec.acc, ec.stores)
	}
	if ec.libs["exp"] != 10 {
		t.Errorf("exp calls = %d", ec.libs["exp"])
	}
	// 10 FP adds
	if ec.ops[OpFloat] != 10 {
		t.Errorf("fp ops = %d", ec.ops[OpFloat])
	}
	// Attribution blocks include the for header and the body segment.
	joined := strings.Join(ec.blocks, " ")
	if !strings.Contains(joined, "main/for@L4") || !strings.Contains(joined, "main/L5") {
		t.Errorf("blocks = %v", ec.blocks)
	}
}

func TestVecContextReported(t *testing.T) {
	src := `
global a: [64]float;
func main() {
  for i = 0 .. 64 @vec {
    a[i] = a[i] * 2.0;
  }
  for i = 0 .. 64 {
    a[i] = a[i] * 2.0;
  }
}
`
	ec := newEventCounter()
	e := prep(t, src, &Options{Observer: ec})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Annotated-vector ops come only from the first loop; the second,
	// being a clean single-segment body, reports auto-vectorizable ops.
	if ec.vecOps == 0 {
		t.Fatal("no annotated-vector ops reported")
	}
	if ec.autoOps == 0 {
		t.Fatal("no auto-vectorizable ops reported for the clean plain loop")
	}
	totalFP := ec.ops[OpFloat]
	if totalFP != 128 {
		t.Errorf("fp ops = %d, want 128", totalFP)
	}
}

func TestVecDoesNotLeakIntoNestedLoop(t *testing.T) {
	src := `
global a: [8][8]float;
func main() {
  for i = 0 .. 8 @vec {
    for j = 0 .. 8 {
      a[i][j] = a[i][j] + 1.0;
    }
  }
}
`
	ec := newEventCounter()
	e := prep(t, src, &Options{Observer: ec})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ec.vecOps != 0 {
		t.Errorf("annotated vec context leaked into nested non-vec loop: %d", ec.vecOps)
	}
}

func TestAddressesDistinctPerArray(t *testing.T) {
	src := `
global a: [16]float;
global b: [16]float;
func main() {
  a[0] = 1.0;
  b[0] = 2.0;
}
`
	var addrs []uint64
	obs := &addrRecorder{addrs: &addrs}
	e := prep(t, src, &Options{Observer: obs})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Errorf("addresses = %v", addrs)
	}
}

type addrRecorder struct {
	NopObserver
	addrs *[]uint64
}

func (r *addrRecorder) Access(addr uint64, size int, store bool) {
	*r.addrs = append(*r.addrs, addr)
}

func TestNestedCallReturnsValue(t *testing.T) {
	e := run(t, `
global out: float;
func main() {
  out = square(7.0);
}
func square(x: float): float {
  return x * x;
}
`, nil)
	if e.Globals["out"] != 49 {
		t.Errorf("out = %g", e.Globals["out"])
	}
}

func TestNegativeStepLoop(t *testing.T) {
	e := run(t, `
global sum: int;
func main() {
  sum = 0;
  for i = 10 .. 0 step 0 - 2 {
    sum = sum + i;
  }
}
`, nil)
	// 10+8+6+4+2 = 30
	if e.Globals["sum"] != 30 {
		t.Errorf("sum = %g, want 30", e.Globals["sum"])
	}
}

func TestShortCircuit(t *testing.T) {
	// a[9] would be out of bounds if && didn't short-circuit.
	e := run(t, `
global a: [4]float;
global ok: int;
func main() {
  var i: int = 9;
  if (i < 4 && a[i] > 0.0) {
    ok = 1;
  } else {
    ok = 2;
  }
}
`, nil)
	if e.Globals["ok"] != 2 {
		t.Errorf("ok = %g", e.Globals["ok"])
	}
}
