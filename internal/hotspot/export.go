package hotspot

import (
	"encoding/json"
	"fmt"
	"io"
)

// The paper positions its hot-spot output as input to developers,
// architecture designers, and "existing auto-tuning systems" (§II-b).
// Report is the machine-readable form of an analysis for such consumers.

// Report is the serializable summary of an Analysis.
type Report struct {
	// Machine names the projected target.
	Machine string `json:"machine"`
	// TotalSeconds is the projected total time.
	TotalSeconds float64 `json:"total_seconds"`
	// Blocks lists every block in rank order.
	Blocks []BlockReport `json:"blocks"`
}

// BlockReport is one block of a Report.
type BlockReport struct {
	Rank        int     `json:"rank"`
	BlockID     string  `json:"block_id"`
	Func        string  `json:"func"`
	Line        int     `json:"line"`
	Seconds     float64 `json:"seconds"`
	Coverage    float64 `json:"coverage"`
	ComputeSec  float64 `json:"compute_seconds"`
	MemorySec   float64 `json:"memory_seconds"`
	OverlapSec  float64 `json:"overlap_seconds"`
	MemoryBound bool    `json:"memory_bound"`
	Invocations float64 `json:"invocations"`
	FLOPs       float64 `json:"flops"`
	Bytes       float64 `json:"bytes"`
	Library     bool    `json:"library,omitempty"`
	Comm        bool    `json:"comm,omitempty"`
}

// Export builds the serializable report of the analysis.
func (a *Analysis) Export() *Report {
	r := &Report{Machine: a.Machine.Name, TotalSeconds: a.TotalTime}
	for i, b := range a.Blocks {
		r.Blocks = append(r.Blocks, BlockReport{
			Rank: i + 1, BlockID: b.BlockID, Func: b.FuncName, Line: b.Line,
			Seconds: b.T, Coverage: a.Coverage(b),
			ComputeSec: b.Tc, MemorySec: b.Tm, OverlapSec: b.To,
			MemoryBound: b.MemoryBound, Invocations: b.Invocations,
			FLOPs: b.Work.FLOPs, Bytes: b.Work.Bytes(),
			Library: b.IsLib, Comm: b.IsComm,
		})
	}
	return r
}

// WriteJSON writes the analysis report as indented JSON.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Export())
}

// ReadReport parses a previously exported report.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("hotspot: bad report: %v", err)
	}
	return &rep, nil
}
