package hotspot

import (
	"context"
	"fmt"
	"math"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

// stubLibs is a trivial LibModeler for tests.
type stubLibs map[string]hw.BlockWork

func (s stubLibs) LibWork(name string) (hw.BlockWork, error) {
	w, ok := s[name]
	if !ok {
		return hw.BlockWork{}, fmt.Errorf("stub: unknown lib %q", name)
	}
	return w, nil
}

func analyze(t *testing.T, src string, input expr.Env, libs LibModeler) *Analysis {
	t.Helper()
	prog, err := skeleton.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	bet, err := core.Build(context.Background(), tree, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), libs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

const threeBlocks = `
def main(n)
  for i = 0 : n
    comp flops=1000 loads=10 name="big"
  end
  for j = 0 : n
    comp flops=10 loads=200 stores=200 name="mem"
  end
  comp flops=5 name="tiny"
end
`

func TestAnalyzeRanksByProjectedTime(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	if len(a.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(a.Blocks))
	}
	if a.Blocks[len(a.Blocks)-1].BlockID != "main/tiny" {
		t.Errorf("tiny should rank last, order: %v", ids(a.Blocks))
	}
	// Times descending.
	for i := 1; i < len(a.Blocks); i++ {
		if a.Blocks[i].T > a.Blocks[i-1].T {
			t.Errorf("blocks not sorted by time at %d", i)
		}
	}
	// Total equals sum.
	sum := 0.0
	for _, b := range a.Blocks {
		sum += b.T
	}
	if math.Abs(sum-a.TotalTime) > 1e-15 {
		t.Errorf("TotalTime %g != sum %g", a.TotalTime, sum)
	}
}

func TestAnalyzeAggregatesMultipleContexts(t *testing.T) {
	src := `
def main(n)
  if prob=0.5
    set k = 2
  else
    set k = 4
  end
  call work(k)
end

def work(k)
  for i = 0 : k * 100
    comp flops=100 name="spot"
  end
end
`
	a := analyze(t, src, expr.Env{"n": 1}, nil)
	b, ok := a.ByID["work/spot"]
	if !ok {
		t.Fatalf("spot missing, have %v", ids(a.Blocks))
	}
	// Two BET nodes (two contexts), combined invocations = 0.5*200 + 0.5*400.
	if len(b.Nodes) != 2 {
		t.Errorf("spot has %d BET nodes, want 2", len(b.Nodes))
	}
	if math.Abs(b.Invocations-300) > 1e-9 {
		t.Errorf("invocations = %g, want 300", b.Invocations)
	}
}

func TestAnalyzeMemoryBoundVerdicts(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	if a.ByID["main/big"].MemoryBound {
		t.Error("compute block classified memory-bound")
	}
	if !a.ByID["main/mem"].MemoryBound {
		t.Error("memory block classified compute-bound")
	}
}

func TestAnalyzeLibBlocks(t *testing.T) {
	src := "def main(n)\nlib exp count=n name=\"e\"\ncomp flops=1 name=\"c\"\nend\n"
	libs := stubLibs{"exp": {FLOPs: 20, IOPs: 5, Loads: 2, DSizeB: 8}}
	a := analyze(t, src, expr.Env{"n": 1000}, libs)
	e := a.ByID["main/e"]
	if e == nil || !e.IsLib {
		t.Fatalf("lib block missing or not marked: %+v", e)
	}
	if e.Work.FLOPs != 20000 {
		t.Errorf("lib total FLOPs = %g, want 20000", e.Work.FLOPs)
	}
	if e.StaticInsts != bst.LibStaticInsts {
		t.Errorf("lib static insts = %d", e.StaticInsts)
	}
}

func TestAnalyzeLibErrors(t *testing.T) {
	src := "def main()\nlib exp count=1\nend\n"
	prog := skeleton.MustParse("t", src)
	tree := bst.MustBuild(prog)
	bet := core.MustBuild(tree, nil, nil)
	if _, err := Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), nil); err == nil {
		t.Error("Analyze without lib model should fail")
	}
	if _, err := Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), stubLibs{}); err == nil {
		t.Error("Analyze with unknown lib should fail")
	}
}

func TestSelectMeetsCriteria(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	sel := Select(a, Criteria{TimeCoverage: 0.90, CodeLeanness: 1.0})
	if sel.Coverage < 0.90 {
		t.Errorf("coverage = %g, want >= 0.90", sel.Coverage)
	}
	if len(sel.Spots) == 0 || len(sel.Spots) == len(a.Blocks) && sel.Coverage < 1 {
		t.Errorf("selection = %v", ids(sel.Spots))
	}
	// Spots must be a prefix under unlimited leanness.
	for i, s := range sel.Spots {
		if s != a.Blocks[i] {
			t.Errorf("spot %d is not rank-%d block", i, i)
		}
	}
}

func TestSelectRespectsLeanness(t *testing.T) {
	// Three blocks: the heaviest has a huge static footprint.
	src := `
def main(n)
  for i = 0 : n
    comp flops=10000 insts=900 name="fat"
  end
  for j = 0 : n
    comp flops=1000 insts=50 name="lean1"
  end
  comp flops=100 insts=50 name="lean2"
end
`
	a := analyze(t, src, expr.Env{"n": 10}, nil)
	// Budget of 20% of 1000 insts = 200: "fat" (900) cannot fit once a
	// spot exists, but greedy always takes at least one spot; so force the
	// case where fat is skipped by making the budget fit lean blocks only.
	sel := Select(a, Criteria{TimeCoverage: 0.99, CodeLeanness: 0.2})
	if len(sel.Spots) == 0 {
		t.Fatal("empty selection")
	}
	if sel.Spots[0].Label != "fat" {
		// fat ranks first by time and is always taken as the first spot.
		t.Errorf("first spot = %s", sel.Spots[0].Label)
	}
	// With fat consuming 900/1000, no further spot fits a 0.2 budget.
	if len(sel.Spots) != 1 {
		t.Errorf("selection = %v, want only fat", ids(sel.Spots))
	}
	if sel.Leanness <= 0 {
		t.Error("leanness not computed")
	}
}

func TestSelectSkipsOversizedTakesSmaller(t *testing.T) {
	src := `
def main(n)
  for i = 0 : n
    comp flops=5000 insts=100 name="a"
  end
  for j = 0 : n
    comp flops=4000 insts=900 name="b"
  end
  for k = 0 : n
    comp flops=3000 insts=100 name="c"
  end
end
`
	a := analyze(t, src, expr.Env{"n": 10}, nil)
	// Budget = 0.25 * 1100 = 275: a (100) fits, b (900) does not, c (100)
	// fits — the greedy must skip b and still take c.
	sel := Select(a, Criteria{TimeCoverage: 0.999, CodeLeanness: 0.25})
	got := ids(sel.Spots)
	if len(sel.Spots) != 2 || sel.Spots[0].Label != "a" || sel.Spots[1].Label != "c" {
		t.Errorf("selection = %v, want [main/a main/c]", got)
	}
}

func TestSelectMaxSpots(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	sel := Select(a, Criteria{TimeCoverage: 1.0, CodeLeanness: 1.0, MaxSpots: 2})
	if len(sel.Spots) != 2 {
		t.Errorf("MaxSpots not honored: %d spots", len(sel.Spots))
	}
}

func TestSelectEmptyAnalysis(t *testing.T) {
	a := &Analysis{}
	sel := Select(a, DefaultCriteria())
	if len(sel.Spots) != 0 || sel.Coverage != 0 {
		t.Errorf("empty selection = %+v", sel)
	}
}

func TestCoverageCurveMonotone(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	curve := a.CoverageCurve(a.Blocks)
	prev := 0.0
	for i, v := range curve {
		if v < prev {
			t.Errorf("curve not monotone at %d", i)
		}
		prev = v
	}
	if math.Abs(curve[len(curve)-1]-1) > 1e-9 {
		t.Errorf("full curve should reach 1, got %g", curve[len(curve)-1])
	}
}

func TestRankOf(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	if r := a.RankOf(a.Blocks[0].BlockID); r != 1 {
		t.Errorf("RankOf first = %d", r)
	}
	if r := a.RankOf("nosuch"); r != 0 {
		t.Errorf("RankOf missing = %d", r)
	}
}

func TestTopN(t *testing.T) {
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	if got := len(a.TopN(2)); got != 2 {
		t.Errorf("TopN(2) = %d blocks", got)
	}
	if got := len(a.TopN(99)); got != 3 {
		t.Errorf("TopN(99) = %d blocks", got)
	}
}

func TestBreakdownIdentity(t *testing.T) {
	// Aggregate times satisfy T = Tc + Tm - To per block.
	a := analyze(t, threeBlocks, expr.Env{"n": 100}, nil)
	for _, b := range a.Blocks {
		if math.Abs(b.T-(b.Tc+b.Tm-b.To)) > 1e-15 {
			t.Errorf("%s: T != Tc+Tm-To", b.BlockID)
		}
	}
}

func TestDefaultCriteria(t *testing.T) {
	c := DefaultCriteria()
	if c.TimeCoverage != 0.90 || c.CodeLeanness != 0.10 {
		t.Errorf("DefaultCriteria = %+v", c)
	}
}

func ids(blocks []*Block) []string {
	out := make([]string, len(blocks))
	for i, b := range blocks {
		out[i] = b.BlockID
	}
	return out
}
