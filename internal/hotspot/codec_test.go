package hotspot

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

// codecAnalysis builds a small analysis (including a comm block and a lib
// block, so every wire field is exercised) plus the layout it came from.
func codecAnalysis(t *testing.T) (*Analysis, *Layout) {
	t.Helper()
	src := `
def main(n)
  for i = 0 : n
    comp flops=1000 loads=10 name="big"
  end
  comm bytes=n*8 msgs=2 name="halo"
  lib sort count=n name="order"
  comp flops=5 name="tiny"
end
`
	prog, err := skeleton.Parse("codec", src)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	bet, err := core.Build(context.Background(), tree, expr.Env{"n": 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	libs := stubLibs{"sort": {FLOPs: 3, IOPs: 10, Loads: 2, Stores: 1, DSizeB: 8}}
	l, err := NewLayout(bet, libs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Analyze(hw.NewModel(hw.BGQ()))
	if err != nil {
		t.Fatal(err)
	}
	return a, l
}

func TestCodecRoundTripExact(t *testing.T) {
	a, _ := codecAnalysis(t)
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAnalysis(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalStaticInsts != a.TotalStaticInsts {
		t.Errorf("TotalStaticInsts %d != %d", got.TotalStaticInsts, a.TotalStaticInsts)
	}
	if math.Float64bits(got.TotalTime) != math.Float64bits(a.TotalTime) {
		t.Errorf("TotalTime bits differ: %x vs %x", math.Float64bits(got.TotalTime), math.Float64bits(a.TotalTime))
	}
	if math.Float64bits(got.Confidence) != math.Float64bits(a.Confidence) {
		t.Errorf("Confidence bits differ")
	}
	if got.Machine.Fingerprint() != a.Machine.Fingerprint() {
		t.Errorf("machine fingerprint changed across round trip")
	}
	if len(got.Blocks) != len(a.Blocks) {
		t.Fatalf("got %d blocks, want %d", len(got.Blocks), len(a.Blocks))
	}
	for i, b := range a.Blocks {
		g := got.Blocks[i]
		if g.BlockID != b.BlockID || g.Label != b.Label || g.FuncName != b.FuncName || g.Line != b.Line {
			t.Errorf("block %d identity differs: %+v vs %+v", i, g, b)
		}
		if g.IsLib != b.IsLib || g.IsComm != b.IsComm || g.MemoryBound != b.MemoryBound || g.StaticInsts != b.StaticInsts {
			t.Errorf("block %s flags differ", b.BlockID)
		}
		for _, pair := range [][2]float64{
			{g.Tc, b.Tc}, {g.Tm, b.Tm}, {g.To, b.To}, {g.T, b.T},
			{g.Invocations, b.Invocations}, {g.CommBytes, b.CommBytes},
			{g.Work.FLOPs, b.Work.FLOPs}, {g.Work.IOPs, b.Work.IOPs},
			{g.Work.Loads, b.Work.Loads}, {g.Work.Stores, b.Work.Stores},
			{g.Work.DSizeB, b.Work.DSizeB}, {g.Work.Divs, b.Work.Divs},
			{g.Work.Vec, b.Work.Vec},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Errorf("block %s: float differs bit-wise: %g vs %g", b.BlockID, pair[0], pair[1])
			}
		}
		if got.ByID[b.BlockID] != g {
			t.Errorf("ByID not rebuilt for %s", b.BlockID)
		}
	}
	if !reflect.DeepEqual(got.Diagnostics, a.Diagnostics) {
		t.Errorf("diagnostics differ: %v vs %v", got.Diagnostics, a.Diagnostics)
	}
	// Decoded analyses drop the in-memory tree by design.
	if got.BET != nil {
		t.Errorf("decoded analysis should not carry a BET")
	}
}

func TestCodecDeterministic(t *testing.T) {
	a, _ := codecAnalysis(t)
	d1, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatalf("encoding is not deterministic")
	}
	// encode(decode(encode(a))) == encode(a): the canonical form is a
	// fixed point, so stored bytes can be compared for identity.
	dec, err := DecodeAnalysis(d1)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := EncodeAnalysis(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d3) {
		t.Fatalf("re-encoding a decoded analysis changed the bytes")
	}
}

func TestCodecVersionGuard(t *testing.T) {
	a, _ := codecAnalysis(t)
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`{"v":1,`), []byte(`{"v":99,`), 1)
	if _, err := DecodeAnalysis(bad); err == nil {
		t.Fatal("decoding a future wire version should fail")
	}
	if _, err := DecodeAnalysis([]byte("not json")); err == nil {
		t.Fatal("decoding garbage should fail")
	}
}

func TestGraftRelinksNodes(t *testing.T) {
	a, l := codecAnalysis(t)
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAnalysis(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range dec.Blocks {
		if b.Nodes != nil {
			t.Fatalf("decoded block %s has Nodes before graft", b.BlockID)
		}
	}
	if err := l.Graft(dec); err != nil {
		t.Fatal(err)
	}
	if dec.BET == nil {
		t.Errorf("graft did not restore the BET")
	}
	for _, b := range dec.Blocks {
		want := a.ByID[b.BlockID]
		if len(b.Nodes) != len(want.Nodes) {
			t.Errorf("block %s: %d nodes after graft, want %d", b.BlockID, len(b.Nodes), len(want.Nodes))
		}
	}
	// Grafting onto a foreign layout must fail, not mislink.
	dec.Blocks[0].BlockID = "other/alien"
	if err := l.Graft(dec); err == nil {
		t.Fatal("grafting an analysis with unknown blocks should fail")
	}
}
