package hotspot

import "sort"

// Criteria configures hot-spot selection (§V-B). The code-leanness
// constraint takes precedence over the time-coverage goal: if no selection
// satisfies both, coverage is maximized subject to leanness.
type Criteria struct {
	// TimeCoverage is the minimum fraction of total projected time the hot
	// spots should jointly cover (paper default: 0.90).
	TimeCoverage float64
	// CodeLeanness is the maximum fraction of total static instructions
	// the hot spots may jointly contain (paper default: 0.10).
	CodeLeanness float64
	// MaxSpots optionally caps the number of selected spots (0 = no cap);
	// the paper's tables and figures use top-10 views.
	MaxSpots int
}

// DefaultCriteria returns the paper's §VII settings: coverage >= 90% of
// runtime within <= 10% of the instructions.
func DefaultCriteria() Criteria {
	return Criteria{TimeCoverage: 0.90, CodeLeanness: 0.10}
}

// ScaledCriteria returns the evaluation settings used with this
// repository's scaled-down benchmark sources. The paper applies a 10%
// leanness budget to full applications (SORD alone is 5139 lines); the
// minilang versions are ~50x smaller while their hot loops are the same
// handful of statements, so the equivalent instruction budget is a much
// larger fraction of the program. Coverage (90%) and the 10-spot reporting
// view match the paper's figures.
func ScaledCriteria() Criteria {
	return Criteria{TimeCoverage: 0.90, CodeLeanness: 0.50, MaxSpots: 10}
}

// Selection is the outcome of hot-spot identification.
type Selection struct {
	// Spots lists the chosen blocks in descending projected-time order.
	Spots []*Block
	// Coverage is the fraction of total projected time the spots cover.
	Coverage float64
	// Leanness is the fraction of static instructions the spots contain.
	Leanness float64
	// Criteria echoes the selection parameters.
	Criteria Criteria
}

// Select runs the paper's greedy approximation to the (NP-complete,
// knapsack-like) hot-spot selection problem: blocks are considered in
// descending projected-time order; a block is taken if it fits the
// remaining leanness budget; selection stops once the coverage target is
// met (or candidates are exhausted, maximizing coverage under the budget).
func Select(a *Analysis, crit Criteria) *Selection {
	sel := &Selection{Criteria: crit}
	if a.TotalTime <= 0 || a.TotalStaticInsts <= 0 {
		return sel
	}
	instBudget := int(crit.CodeLeanness * float64(a.TotalStaticInsts))
	usedInsts := 0
	coveredTime := 0.0
	for _, b := range a.Blocks {
		if crit.MaxSpots > 0 && len(sel.Spots) >= crit.MaxSpots {
			break
		}
		if coveredTime/a.TotalTime >= crit.TimeCoverage {
			break
		}
		if usedInsts+b.StaticInsts > instBudget && len(sel.Spots) > 0 {
			// Greedy knapsack: skip blocks that do not fit, keep trying
			// smaller ones. (Always take at least one block so selection
			// is never empty when work exists.)
			continue
		}
		sel.Spots = append(sel.Spots, b)
		usedInsts += b.StaticInsts
		coveredTime += b.T
	}
	sel.Coverage = coveredTime / a.TotalTime
	sel.Leanness = float64(usedInsts) / float64(a.TotalStaticInsts)
	return sel
}

// CoverageCurve returns the cumulative coverage after each of the first n
// selected spots: point i is the summed coverage of spots[0..i]. This is
// the y-axis of the paper's Figures 4-5 and 10-13.
func (a *Analysis) CoverageCurve(spots []*Block) []float64 {
	out := make([]float64, len(spots))
	cum := 0.0
	for i, b := range spots {
		cum += a.Coverage(b)
		out[i] = cum
	}
	return out
}

// RankOf returns the 1-based rank of the block in the analysis ordering, or
// 0 if the block is unknown.
func (a *Analysis) RankOf(blockID string) int {
	for i, b := range a.Blocks {
		if b.BlockID == blockID {
			return i + 1
		}
	}
	return 0
}

// SortByTime sorts blocks by descending time (stable on BlockID). Exposed
// for tests and report code that re-rank subsets.
func SortByTime(blocks []*Block) {
	sort.SliceStable(blocks, func(i, j int) bool {
		if blocks[i].T != blocks[j].T {
			return blocks[i].T > blocks[j].T
		}
		return blocks[i].BlockID < blocks[j].BlockID
	})
}
