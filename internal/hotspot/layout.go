package hotspot

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/guard"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

// BlockTimes is the machine-dependent half of one block's characterization:
// the aggregate projected times over all of the block's BET leaves. It is
// the unit the design-space exploration engine caches — a block's times
// depend only on a small subset of machine parameters (the roofline inputs
// for comp/lib blocks, the network parameters for comm blocks), so variants
// that leave that subset unchanged can reuse them verbatim.
type BlockTimes struct {
	// Tc, Tm, To, T are the aggregate projected times in seconds.
	Tc, Tm, To, T float64
	// MemoryBound is the roofline verdict for the block's dominant node.
	MemoryBound bool
}

// layoutLeaf is one BET leaf's machine-independent contribution record.
type layoutLeaf struct {
	// perInv is the per-invocation workload of comp/lib leaves.
	perInv hw.BlockWork
	// bytes and msgs describe comm leaves.
	bytes, msgs float64
	// enr scales the per-invocation estimate.
	enr float64
}

// layoutBlock groups the leaves of one source block in leaf order.
type layoutBlock struct {
	// proto carries the static fields and machine-independent aggregates;
	// its time fields are zero and filled per machine by Assemble.
	proto  Block
	leaves []layoutLeaf
}

// Layout is the machine-independent skeleton of an Analysis: which BET
// leaves aggregate into which source blocks, with every per-invocation
// workload already resolved (including library models). Building it once
// and projecting it onto many machines is the heart of the exploration
// engine; Analyze itself is NewLayout + Layout.Analyze, so cached and
// uncached projections follow the identical floating-point path.
type Layout struct {
	bet              *core.BET
	totalStaticInsts int
	// blocks is every source block in first-encounter (leaf) order; comp
	// and comm are the non-comm and comm subsets in the same order.
	blocks []*layoutBlock
	comp   []*layoutBlock
	comm   []*layoutBlock
	// confidence and betDiags carry the BET's measured-vs-assumed score
	// and prior-substitution record into every assembled analysis (and
	// into the fingerprint, so a journal written by a lenient run never
	// replays into a strict one).
	confidence float64
	betDiags   []guard.Diagnostic
}

// NewLayout resolves the machine-independent half of the analysis: block
// grouping, per-invocation workloads, library characterizations, and the
// ENR-scaled aggregate work. It fails on library blocks the modeler does
// not know.
func NewLayout(bet *core.BET, libs LibModeler) (*Layout, error) {
	l := &Layout{
		bet: bet, totalStaticInsts: bet.Tree.TotalStaticInsts(),
		confidence: bet.Confidence, betDiags: bet.Diagnostics,
	}
	byID := make(map[string]*layoutBlock)
	for _, n := range bet.Leaves() {
		id := n.BlockID()
		lb := byID[id]
		if lb == nil {
			lb = &layoutBlock{proto: Block{
				BlockID: id, Label: n.Label(), FuncName: n.BST.FuncName,
				Line: n.BST.Line, IsLib: n.Kind() == bst.KindLib,
			}}
			switch n.Kind() {
			case bst.KindComp:
				lb.proto.StaticInsts = bst.StaticInsts(n.BST.Stmt.(*skeleton.Comp))
			case bst.KindLib:
				lb.proto.StaticInsts = bst.LibStaticInsts
			case bst.KindComm:
				lb.proto.IsComm = true
				lb.proto.StaticInsts = bst.CommStaticInsts
			}
			byID[id] = lb
			l.blocks = append(l.blocks, lb)
			if lb.proto.IsComm {
				l.comm = append(l.comm, lb)
			} else {
				l.comp = append(l.comp, lb)
			}
		}
		lb.proto.Invocations += n.ENR
		lb.proto.Nodes = append(lb.proto.Nodes, n)
		if n.Kind() == bst.KindComm {
			lb.proto.CommBytes += n.CommBytes * n.ENR
			lb.leaves = append(lb.leaves, layoutLeaf{
				bytes: n.CommBytes, msgs: n.CommMsgs, enr: n.ENR,
			})
			continue
		}
		var perInv hw.BlockWork
		switch n.Kind() {
		case bst.KindComp:
			perInv = n.Work
		case bst.KindLib:
			if libs == nil {
				return nil, fmt.Errorf("hotspot: block %s calls library %q but no library model was supplied", id, n.LibFunc)
			}
			lw, err := libs.LibWork(n.LibFunc)
			if err != nil {
				return nil, fmt.Errorf("hotspot: block %s: %w", id, err)
			}
			perInv = lw.Scale(n.LibCount)
		}
		lb.proto.Work.Add(perInv.Scale(n.ENR))
		lb.leaves = append(lb.leaves, layoutLeaf{perInv: perInv, enr: n.ENR})
	}
	return l, nil
}

// NumComp and NumComm report how many comp/lib and comm blocks the layout
// holds — the lengths CompTimes and CommTimes return and Assemble expects.
func (l *Layout) NumComp() int { return len(l.comp) }
func (l *Layout) NumComm() int { return len(l.comm) }

// Fingerprint digests the layout's full machine-independent content:
// block identities and order, every leaf's per-invocation workload
// (bit-level for floats), ENR scaling, and comm volumes. Two layouts
// fingerprint equal iff CompTimes/CommTimes/Assemble would produce
// identical results for any machine — which makes the digest the right
// binding between a sweep journal and the workload that wrote it: replay
// is refused the moment the source, profile, or translation changed.
func (l *Layout) Fingerprint() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		h.Write(buf)
	}
	i := func(v int) {
		binary.LittleEndian.PutUint64(buf, uint64(int64(v)))
		h.Write(buf)
	}
	s := func(v string) {
		h.Write([]byte(v))
		h.Write([]byte{0})
	}
	i(l.totalStaticInsts)
	i(len(l.comp))
	i(len(l.comm))
	f(l.confidence)
	i(len(l.betDiags))
	for _, d := range l.betDiags {
		s(d.Severity.String())
		s(d.String())
	}
	for _, lb := range l.blocks {
		s(lb.proto.BlockID)
		if lb.proto.IsComm {
			s("comm")
		} else {
			s("comp")
		}
		i(len(lb.leaves))
		for _, lf := range lb.leaves {
			f(lf.enr)
			f(lf.bytes)
			f(lf.msgs)
			w := lf.perInv
			f(w.FLOPs)
			f(w.IOPs)
			f(w.Loads)
			f(w.Stores)
			f(w.DSizeB)
			f(w.Divs)
			f(w.Vec)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// CompTimes projects every comp and lib block onto the given roofline
// model, in the layout's block order. The result depends only on the
// machine parameters the model reads (clocks, issue rates, cache/memory
// latencies, hit ratios, concurrency, bandwidth — never the network).
func (l *Layout) CompTimes(model *hw.Model) []BlockTimes {
	out := make([]BlockTimes, len(l.comp))
	for i, lb := range l.comp {
		bt := &out[i]
		for _, lf := range lb.leaves {
			est := model.Estimate(lf.perInv)
			tcontrib := est.T * lf.enr
			bt.Tc += est.Tc * lf.enr
			bt.Tm += est.Tm * lf.enr
			bt.To += est.To * lf.enr
			bt.T += tcontrib
			if est.MemoryBound && tcontrib >= bt.T/2 {
				bt.MemoryBound = true
			}
		}
	}
	return out
}

// CommTimes projects every comm block onto machine m's interconnect, in
// the layout's block order. The result depends only on the network
// parameters (NetLatencyUs, NetBandwidthGBs).
func (l *Layout) CommTimes(m *hw.Machine) []BlockTimes {
	out := make([]BlockTimes, len(l.comm))
	for i, lb := range l.comm {
		bt := &out[i]
		for _, lf := range lb.leaves {
			t := m.CommTime(lf.bytes, lf.msgs) * lf.enr
			bt.Tm += t
			bt.T += t
		}
		bt.MemoryBound = true
	}
	return out
}

// Assemble combines per-block times (as produced by CompTimes and
// CommTimes, possibly from a cache) into a full Analysis for machine m.
// It fails if the slices do not match the layout's block counts — the
// symptom of a cache keyed on a stale layout. Non-finite block times
// (NaN/Inf from degenerate machine parameters) do not fail the assembly;
// they are surfaced on Analysis.Diagnostics so callers can degrade
// gracefully instead of silently ranking on garbage.
func (l *Layout) Assemble(m *hw.Machine, comp, comm []BlockTimes) (*Analysis, error) {
	if len(comp) != len(l.comp) || len(comm) != len(l.comm) {
		return nil, fmt.Errorf("hotspot: Assemble on %s with %d comp and %d comm times, layout has %d and %d (per-block cache built from a different layout?)",
			m.Name, len(comp), len(comm), len(l.comp), len(l.comm))
	}
	a := &Analysis{
		Machine:          m,
		ByID:             make(map[string]*Block, len(l.blocks)),
		TotalStaticInsts: l.totalStaticInsts,
		BET:              l.bet,
		Blocks:           make([]*Block, 0, len(l.blocks)),
	}
	backing := make([]Block, len(l.blocks))
	ci, mi := 0, 0
	for bi, lb := range l.blocks {
		b := &backing[bi]
		*b = lb.proto
		var bt BlockTimes
		if lb.proto.IsComm {
			bt = comm[mi]
			mi++
		} else {
			bt = comp[ci]
			ci++
		}
		b.Tc, b.Tm, b.To, b.T = bt.Tc, bt.Tm, bt.To, bt.T
		b.MemoryBound = bt.MemoryBound
		if !isFinite(bt.T) || !isFinite(bt.Tc) || !isFinite(bt.Tm) || !isFinite(bt.To) {
			a.Diagnostics = append(a.Diagnostics, guard.Diagnostic{
				Stage: "roofline", Code: "non-finite-time", BlockID: b.BlockID,
				Message: fmt.Sprintf("projected times on %s are not finite (Tc=%g Tm=%g To=%g T=%g); check the machine parameters",
					m.Name, bt.Tc, bt.Tm, bt.To, bt.T),
			})
		}
		a.ByID[b.BlockID] = b
		a.Blocks = append(a.Blocks, b)
		a.TotalTime += bt.T
	}
	sort.SliceStable(a.Blocks, func(i, j int) bool {
		if a.Blocks[i].T != a.Blocks[j].T {
			return a.Blocks[i].T > a.Blocks[j].T
		}
		return a.Blocks[i].BlockID < a.Blocks[j].BlockID
	})
	// Confidence: the BET's measured-vs-assumed score, further reduced to
	// the finite fraction of block projections when the machine produced
	// NaN/Inf times (weakest-stage composition).
	nonFinite := len(a.Diagnostics)
	a.Confidence = l.confidence
	if len(l.blocks) > 0 && nonFinite > 0 {
		if frac := float64(len(l.blocks)-nonFinite) / float64(len(l.blocks)); frac < a.Confidence {
			a.Confidence = frac
		}
	}
	a.Diagnostics = append(a.Diagnostics, l.betDiags...)
	guard.SortDiagnostics(a.Diagnostics)
	return a, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Analyze projects the layout onto one machine — the single-variant path
// Analyze (the package function) uses, and the uncached path the
// exploration engine's memoization must match bit for bit.
func (l *Layout) Analyze(model *hw.Model) (*Analysis, error) {
	return l.Assemble(model.Machine(), l.CompTimes(model), l.CommTimes(model.Machine()))
}
