package hotspot

import (
	"context"
	"math"
	"strings"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

// multiRank is a manually written multi-node skeleton (the original SKOPE
// workflow): a rank-parameterized stencil step with a halo exchange.
const multiRank = `
def main(nx, ny, nz, ranks, nt)
  set planes = nz / ranks
  for t = 0 : nt label="time"
    for k = 0 : planes label="kloop"
      comp flops=30*ny*nx loads=8*ny*nx stores=2*ny*nx name="stencil"
    end
    comm bytes=2*ny*nx*8 msgs=2 name="halo"
  end
end
`

func commAnalysis(t *testing.T, ranks float64) *Analysis {
	t.Helper()
	prog, err := skeleton.Parse("mpi", multiRank)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	bet, err := core.Build(context.Background(), tree, expr.Env{
		"nx": 128, "ny": 128, "nz": 64, "ranks": ranks, "nt": 10,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCommParsesAndFormats(t *testing.T) {
	prog, err := skeleton.Parse("c", multiRank)
	if err != nil {
		t.Fatal(err)
	}
	text := skeleton.Format(prog)
	if !strings.Contains(text, "comm bytes=") || !strings.Contains(text, "msgs=2") {
		t.Errorf("Format lost comm:\n%s", text)
	}
	if _, err := skeleton.Parse("rt", text); err != nil {
		t.Fatalf("comm round trip: %v", err)
	}
}

func TestCommParseErrors(t *testing.T) {
	cases := []string{
		"def main()\ncomm\nend\n",             // missing bytes
		"def main()\ncomm bytes=8 foo=1\nend", // unknown attr
	}
	for _, src := range cases {
		if _, err := skeleton.Parse("e", src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestCommBlockModeled(t *testing.T) {
	a := commAnalysis(t, 8)
	halo, ok := a.ByID["main/halo"]
	if !ok {
		t.Fatalf("halo block missing: %v", ids(a.Blocks))
	}
	if !halo.IsComm || !halo.MemoryBound {
		t.Errorf("halo flags: %+v", halo)
	}
	// 10 time steps x 2*128*128*8 bytes.
	wantBytes := 10.0 * 2 * 128 * 128 * 8
	if math.Abs(halo.CommBytes-wantBytes) > 1e-6 {
		t.Errorf("comm bytes = %g, want %g", halo.CommBytes, wantBytes)
	}
	// Time matches the machine's network model.
	m := hw.BGQ()
	want := 10 * m.CommTime(2*128*128*8, 2)
	if math.Abs(halo.T-want) > 1e-15 {
		t.Errorf("halo T = %g, want %g", halo.T, want)
	}
}

func TestStrongScalingCrossover(t *testing.T) {
	// Compute shrinks with ranks; comm stays constant: beyond some rank
	// count the halo exchange must dominate — the co-design insight the
	// multi-node extension exists to expose.
	commShare := func(ranks float64) float64 {
		a := commAnalysis(t, ranks)
		return a.Coverage(a.ByID["main/halo"])
	}
	s1, s64 := commShare(1), commShare(64)
	if s64 <= s1 {
		t.Errorf("comm share did not grow with ranks: %g -> %g", s1, s64)
	}
	if s64 < 0.05 {
		t.Errorf("comm share at 64 ranks suspiciously small: %g", s64)
	}
	// Total per-rank time must shrink with ranks (strong scaling).
	t1 := commAnalysis(t, 1).TotalTime
	t64 := commAnalysis(t, 64).TotalTime
	if t64 >= t1 {
		t.Errorf("no strong scaling: %g -> %g", t1, t64)
	}
}

func TestCommTimeModel(t *testing.T) {
	m := hw.BGQ()
	zero := m.CommTime(0, 0)
	if zero != 0 {
		t.Errorf("CommTime(0,0) = %g", zero)
	}
	// One 1 MB message: latency + bandwidth term.
	want := 2.5e-6 + 1e6/(2*1e9)
	if got := m.CommTime(1e6, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("CommTime = %g, want %g", got, want)
	}
	// Negative inputs clamp.
	if m.CommTime(-5, -5) != 0 {
		t.Error("negative comm inputs not clamped")
	}
}

func TestCommInSelectionAndHotPath(t *testing.T) {
	a := commAnalysis(t, 256) // comm-dominated regime
	sel := Select(a, Criteria{TimeCoverage: 0.9, CodeLeanness: 1, MaxSpots: 2})
	foundComm := false
	for _, s := range sel.Spots {
		if s.IsComm {
			foundComm = true
		}
	}
	if !foundComm {
		t.Errorf("comm block not selected in comm-dominated regime: %v", ids(sel.Spots))
	}
}

func TestMachineNetworkValidation(t *testing.T) {
	m := hw.BGQ()
	m.NetLatencyUs = 0
	if err := m.Validate(); err == nil {
		t.Error("zero network latency accepted")
	}
	m = hw.BGQ()
	m.NetBandwidthGBs = -1
	if err := m.Validate(); err == nil {
		t.Error("negative network bandwidth accepted")
	}
}
