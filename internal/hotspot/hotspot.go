// Package hotspot implements the paper's hot-region analysis (§V): per-block
// performance estimation over the Bayesian Execution Tree with the extended
// roofline model, and hot-spot identification under the time-coverage /
// code-leanness criteria.
package hotspot

import (
	"context"
	"fmt"

	"skope/internal/core"
	"skope/internal/guard"
	"skope/internal/hw"
)

// LibModeler supplies semi-analytical performance characterizations of
// opaque library functions (§IV-C): the average dynamic instruction mix of
// one invocation, obtained by profiling on a local machine.
type LibModeler interface {
	// LibWork returns the per-invocation workload of the named library
	// function. It returns an error for unknown functions.
	LibWork(name string) (hw.BlockWork, error)
}

// Block aggregates the projected cost of one source code block (identified
// by BlockID) over the whole modeled execution, possibly spanning several
// BET nodes (different contexts or call sites).
type Block struct {
	// BlockID is "<func>/<label>", stable across model and measurement.
	BlockID string
	// Label and FuncName identify the block for reporting.
	Label, FuncName string
	// Line is the skeleton source line.
	Line int
	// IsLib marks semi-analytically modeled library call sites.
	IsLib bool
	// IsComm marks communication phases (multi-node extension); their
	// time comes from the machine's network parameters, not the roofline.
	IsComm bool
	// CommBytes is the total communicated volume for comm blocks.
	CommBytes float64

	// Invocations is the total expected number of executions (sum of ENR).
	Invocations float64
	// Work is the total workload over all invocations.
	Work hw.BlockWork
	// Tc, Tm, To, T are the aggregate projected times in seconds
	// (per-invocation roofline estimate scaled by ENR, summed over nodes).
	Tc, Tm, To, T float64
	// MemoryBound is the roofline verdict for the block's dominant node.
	MemoryBound bool
	// StaticInsts is the static instruction footprint (leanness unit).
	StaticInsts int

	// Nodes are the BET nodes that contributed, for hot-path extraction.
	Nodes []*core.Node
}

// Analysis is the per-block performance projection of one workload on one
// machine.
type Analysis struct {
	// Machine is the projected target.
	Machine *hw.Machine
	// Blocks is sorted by projected time, descending.
	Blocks []*Block
	// ByID indexes Blocks.
	ByID map[string]*Block
	// TotalTime is the projected total over all blocks, seconds.
	TotalTime float64
	// TotalStaticInsts is the program's static instruction footprint.
	TotalStaticInsts int
	// BET is the tree the analysis was computed from.
	BET *core.BET
	// Diagnostics records numeric-hygiene findings (non-finite projected
	// times and the like) plus every prior substitution a lenient model
	// build papered over. Empty on a clean projection; sorted by stage,
	// code, block.
	Diagnostics []guard.Diagnostic
	// Confidence is the measured-vs-assumed coverage of the projection:
	// the BET's confidence score further reduced by the fraction of
	// blocks with non-finite projected times. Exactly 1.0 for a strict
	// build on sane machine parameters.
	Confidence float64
}

// Degraded reports whether any part of the projection rests on fallback
// priors, recovered parses, or non-finite arithmetic.
func (a *Analysis) Degraded() bool {
	return a.Confidence < 1 || len(a.Diagnostics) > 0
}

// Analyze characterizes every comp and lib block of the BET with the given
// roofline model, following §V-A: per-invocation estimate times ENR,
// aggregated per source block. It is NewLayout followed by Layout.Analyze;
// callers that project the same BET onto many machines should build the
// Layout once (or use the exploration engine, which additionally caches
// per-block times across machine variants).
//
// The machine behind the model is validated first, so degenerate variants
// (zero bandwidth, negative latencies) fail with a descriptive error before
// any roofline arithmetic can produce NaN rankings. ctx bounds the work:
// cancellation is honored between the layout and projection stages.
func Analyze(ctx context.Context, bet *core.BET, model *hw.Model, libs LibModeler) (*Analysis, error) {
	m := model.Machine()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("hotspot: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("hotspot: analyze on %s: %w", m.Name, err)
	}
	l, err := NewLayout(bet, libs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("hotspot: analyze on %s: %w", m.Name, err)
	}
	return l.Analyze(model)
}

// Coverage returns the fraction of total projected time spent in block b.
func (a *Analysis) Coverage(b *Block) float64 {
	if a.TotalTime == 0 {
		return 0
	}
	return b.T / a.TotalTime
}

// TopN returns the first n blocks by projected time (all if fewer).
func (a *Analysis) TopN(n int) []*Block {
	if n > len(a.Blocks) {
		n = len(a.Blocks)
	}
	return a.Blocks[:n]
}
