// Package hotspot implements the paper's hot-region analysis (§V): per-block
// performance estimation over the Bayesian Execution Tree with the extended
// roofline model, and hot-spot identification under the time-coverage /
// code-leanness criteria.
package hotspot

import (
	"fmt"
	"sort"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

// LibModeler supplies semi-analytical performance characterizations of
// opaque library functions (§IV-C): the average dynamic instruction mix of
// one invocation, obtained by profiling on a local machine.
type LibModeler interface {
	// LibWork returns the per-invocation workload of the named library
	// function. It returns an error for unknown functions.
	LibWork(name string) (hw.BlockWork, error)
}

// Block aggregates the projected cost of one source code block (identified
// by BlockID) over the whole modeled execution, possibly spanning several
// BET nodes (different contexts or call sites).
type Block struct {
	// BlockID is "<func>/<label>", stable across model and measurement.
	BlockID string
	// Label and FuncName identify the block for reporting.
	Label, FuncName string
	// Line is the skeleton source line.
	Line int
	// IsLib marks semi-analytically modeled library call sites.
	IsLib bool
	// IsComm marks communication phases (multi-node extension); their
	// time comes from the machine's network parameters, not the roofline.
	IsComm bool
	// CommBytes is the total communicated volume for comm blocks.
	CommBytes float64

	// Invocations is the total expected number of executions (sum of ENR).
	Invocations float64
	// Work is the total workload over all invocations.
	Work hw.BlockWork
	// Tc, Tm, To, T are the aggregate projected times in seconds
	// (per-invocation roofline estimate scaled by ENR, summed over nodes).
	Tc, Tm, To, T float64
	// MemoryBound is the roofline verdict for the block's dominant node.
	MemoryBound bool
	// StaticInsts is the static instruction footprint (leanness unit).
	StaticInsts int

	// Nodes are the BET nodes that contributed, for hot-path extraction.
	Nodes []*core.Node
}

// Analysis is the per-block performance projection of one workload on one
// machine.
type Analysis struct {
	// Machine is the projected target.
	Machine *hw.Machine
	// Blocks is sorted by projected time, descending.
	Blocks []*Block
	// ByID indexes Blocks.
	ByID map[string]*Block
	// TotalTime is the projected total over all blocks, seconds.
	TotalTime float64
	// TotalStaticInsts is the program's static instruction footprint.
	TotalStaticInsts int
	// BET is the tree the analysis was computed from.
	BET *core.BET
}

// Analyze characterizes every comp and lib block of the BET with the given
// roofline model, following §V-A: per-invocation estimate times ENR,
// aggregated per source block.
func Analyze(bet *core.BET, model *hw.Model, libs LibModeler) (*Analysis, error) {
	a := &Analysis{
		Machine:          model.Machine(),
		ByID:             make(map[string]*Block),
		TotalStaticInsts: bet.Tree.TotalStaticInsts(),
		BET:              bet,
	}
	for _, n := range bet.Leaves() {
		id := n.BlockID()
		b := a.ByID[id]
		if b == nil {
			b = &Block{
				BlockID: id, Label: n.Label(), FuncName: n.BST.FuncName,
				Line: n.BST.Line, IsLib: n.Kind() == bst.KindLib,
			}
			switch n.Kind() {
			case bst.KindComp:
				b.StaticInsts = bst.StaticInsts(n.BST.Stmt.(*skeleton.Comp))
			case bst.KindLib:
				b.StaticInsts = bst.LibStaticInsts
			case bst.KindComm:
				b.IsComm = true
				b.StaticInsts = bst.CommStaticInsts
			}
			a.ByID[id] = b
			a.Blocks = append(a.Blocks, b)
		}
		if n.Kind() == bst.KindComm {
			// Communication phases: latency + bandwidth time on the
			// interconnect; no computation overlap modeled (first order).
			t := model.Machine().CommTime(n.CommBytes, n.CommMsgs) * n.ENR
			b.Invocations += n.ENR
			b.CommBytes += n.CommBytes * n.ENR
			b.Tm += t
			b.T += t
			b.MemoryBound = true
			b.Nodes = append(b.Nodes, n)
			a.TotalTime += t
			continue
		}
		var perInv hw.BlockWork
		switch n.Kind() {
		case bst.KindComp:
			perInv = n.Work
		case bst.KindLib:
			if libs == nil {
				return nil, fmt.Errorf("hotspot: block %s calls library %q but no library model was supplied", id, n.LibFunc)
			}
			lw, err := libs.LibWork(n.LibFunc)
			if err != nil {
				return nil, fmt.Errorf("hotspot: block %s: %v", id, err)
			}
			perInv = lw.Scale(n.LibCount)
		}
		est := model.Estimate(perInv)
		b.Invocations += n.ENR
		b.Work.Add(perInv.Scale(n.ENR))
		tcontrib := est.T * n.ENR
		b.Tc += est.Tc * n.ENR
		b.Tm += est.Tm * n.ENR
		b.To += est.To * n.ENR
		b.T += tcontrib
		if est.MemoryBound && tcontrib >= b.T/2 {
			b.MemoryBound = true
		}
		b.Nodes = append(b.Nodes, n)
		a.TotalTime += tcontrib
	}
	sort.SliceStable(a.Blocks, func(i, j int) bool {
		if a.Blocks[i].T != a.Blocks[j].T {
			return a.Blocks[i].T > a.Blocks[j].T
		}
		return a.Blocks[i].BlockID < a.Blocks[j].BlockID
	})
	return a, nil
}

// Coverage returns the fraction of total projected time spent in block b.
func (a *Analysis) Coverage(b *Block) float64 {
	if a.TotalTime == 0 {
		return 0
	}
	return b.T / a.TotalTime
}

// TopN returns the first n blocks by projected time (all if fewer).
func (a *Analysis) TopN(n int) []*Block {
	if n > len(a.Blocks) {
		n = len(a.Blocks)
	}
	return a.Blocks[:n]
}
