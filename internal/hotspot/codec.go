// Canonical serialization of an Analysis — the value format of the
// content-addressed result store.
//
// Two properties define "canonical" here:
//
//   - exactness: every float travels as its IEEE-754 bit pattern, so a
//     decoded analysis reproduces the original to the bit (times,
//     confidence, workloads — nothing is re-derived or re-rounded);
//   - determinism: encoding the same analysis always yields the same
//     bytes (struct field order is fixed, blocks are written in the
//     analysis's sorted order), so encode(decode(encode(a))) ==
//     encode(a) and stored bytes can be compared for identity.
//
// What is deliberately not serialized: the BET and the per-block Node
// lists, which are in-memory pointers into the prepared workload. A
// decoded analysis therefore supports selection, ranking, coverage and
// reporting, but not hot-path extraction — callers that hold the matching
// Layout can re-link the tree with Layout.Graft.
package hotspot

import (
	"encoding/json"
	"fmt"
	"math"

	"skope/internal/guard"
	"skope/internal/hw"
)

// codecVersion guards the wire format; bump on any incompatible change.
const codecVersion = 1

// wireWork is hw.BlockWork with floats as bit patterns.
type wireWork struct {
	FLOPs  uint64 `json:"fl"`
	IOPs   uint64 `json:"io"`
	Loads  uint64 `json:"ld"`
	Stores uint64 `json:"st"`
	DSizeB uint64 `json:"ds"`
	Divs   uint64 `json:"dv"`
	Vec    uint64 `json:"vc"`
}

func workToWire(w hw.BlockWork) wireWork {
	f := math.Float64bits
	return wireWork{
		FLOPs: f(w.FLOPs), IOPs: f(w.IOPs), Loads: f(w.Loads), Stores: f(w.Stores),
		DSizeB: f(w.DSizeB), Divs: f(w.Divs), Vec: f(w.Vec),
	}
}

func workFromWire(w wireWork) hw.BlockWork {
	f := math.Float64frombits
	return hw.BlockWork{
		FLOPs: f(w.FLOPs), IOPs: f(w.IOPs), Loads: f(w.Loads), Stores: f(w.Stores),
		DSizeB: f(w.DSizeB), Divs: f(w.Divs), Vec: f(w.Vec),
	}
}

// wireBlock is one Block without its Node pointers.
type wireBlock struct {
	ID          string   `json:"id"`
	Label       string   `json:"label"`
	Func        string   `json:"func"`
	Line        int      `json:"line"`
	Lib         bool     `json:"lib,omitempty"`
	Comm        bool     `json:"comm,omitempty"`
	CommBytes   uint64   `json:"cbytes,omitempty"`
	Invocations uint64   `json:"inv"`
	Work        wireWork `json:"work"`
	Tc          uint64   `json:"tc"`
	Tm          uint64   `json:"tm"`
	To          uint64   `json:"to"`
	T           uint64   `json:"t"`
	MemoryBound bool     `json:"mb,omitempty"`
	StaticInsts int      `json:"insts"`
}

// wireDiag is one guard.Diagnostic.
type wireDiag struct {
	Severity int    `json:"sev,omitempty"`
	Stage    string `json:"stage"`
	Code     string `json:"code"`
	BlockID  string `json:"block,omitempty"`
	Message  string `json:"msg"`
}

// wireAnalysis is the versioned envelope.
type wireAnalysis struct {
	Version     int            `json:"v"`
	Machine     hw.WireMachine `json:"machine"`
	Blocks      []wireBlock    `json:"blocks"`
	TotalTime   uint64         `json:"total"`
	TotalInsts  int            `json:"insts"`
	Confidence  uint64         `json:"conf"`
	Diagnostics []wireDiag     `json:"diags,omitempty"`
}

// EncodeAnalysis serializes the analysis canonically (see the file
// comment). The BET and per-block Nodes are not part of the encoding.
func EncodeAnalysis(a *Analysis) ([]byte, error) {
	w := wireAnalysis{
		Version:    codecVersion,
		Machine:    a.Machine.Wire(),
		Blocks:     make([]wireBlock, len(a.Blocks)),
		TotalTime:  math.Float64bits(a.TotalTime),
		TotalInsts: a.TotalStaticInsts,
		Confidence: math.Float64bits(a.Confidence),
	}
	f := math.Float64bits
	for i, b := range a.Blocks {
		w.Blocks[i] = wireBlock{
			ID: b.BlockID, Label: b.Label, Func: b.FuncName, Line: b.Line,
			Lib: b.IsLib, Comm: b.IsComm, CommBytes: f(b.CommBytes),
			Invocations: f(b.Invocations), Work: workToWire(b.Work),
			Tc: f(b.Tc), Tm: f(b.Tm), To: f(b.To), T: f(b.T),
			MemoryBound: b.MemoryBound, StaticInsts: b.StaticInsts,
		}
	}
	for _, d := range a.Diagnostics {
		w.Diagnostics = append(w.Diagnostics, wireDiag{
			Severity: int(d.Severity), Stage: d.Stage, Code: d.Code,
			BlockID: d.BlockID, Message: d.Message,
		})
	}
	data, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("hotspot: encode analysis on %s: %w", a.Machine.Name, err)
	}
	return data, nil
}

// DecodeAnalysis reconstructs an Analysis from EncodeAnalysis bytes. Every
// scalar is bit-identical to the encoded original; BET and per-block Nodes
// come back nil (see Layout.Graft).
func DecodeAnalysis(data []byte) (*Analysis, error) {
	var w wireAnalysis
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("hotspot: decode analysis: %w", err)
	}
	if w.Version != codecVersion {
		return nil, fmt.Errorf("hotspot: decode analysis: wire version %d (want %d)", w.Version, codecVersion)
	}
	f := math.Float64frombits
	a := &Analysis{
		Machine:          w.Machine.Machine(),
		Blocks:           make([]*Block, 0, len(w.Blocks)),
		ByID:             make(map[string]*Block, len(w.Blocks)),
		TotalTime:        f(w.TotalTime),
		TotalStaticInsts: w.TotalInsts,
		Confidence:       f(w.Confidence),
	}
	backing := make([]Block, len(w.Blocks))
	for i, wb := range w.Blocks {
		b := &backing[i]
		*b = Block{
			BlockID: wb.ID, Label: wb.Label, FuncName: wb.Func, Line: wb.Line,
			IsLib: wb.Lib, IsComm: wb.Comm, CommBytes: f(wb.CommBytes),
			Invocations: f(wb.Invocations), Work: workFromWire(wb.Work),
			Tc: f(wb.Tc), Tm: f(wb.Tm), To: f(wb.To), T: f(wb.T),
			MemoryBound: wb.MemoryBound, StaticInsts: wb.StaticInsts,
		}
		a.Blocks = append(a.Blocks, b)
		a.ByID[b.BlockID] = b
	}
	for _, d := range w.Diagnostics {
		a.Diagnostics = append(a.Diagnostics, guard.Diagnostic{
			Severity: guard.Severity(d.Severity), Stage: d.Stage, Code: d.Code,
			BlockID: d.BlockID, Message: d.Message,
		})
	}
	return a, nil
}

// Graft re-links a decoded analysis to the in-memory model it was
// originally computed from: the layout's BET and the per-block Node lists,
// which the canonical encoding deliberately drops. After a successful
// graft the analysis supports hot-path extraction again. It fails if any
// analysis block is unknown to the layout — the symptom of grafting onto a
// different workload, which callers should treat as a cache miss.
func (l *Layout) Graft(a *Analysis) error {
	byID := make(map[string]*layoutBlock, len(l.blocks))
	for _, lb := range l.blocks {
		byID[lb.proto.BlockID] = lb
	}
	for _, b := range a.Blocks {
		lb, ok := byID[b.BlockID]
		if !ok {
			return fmt.Errorf("hotspot: graft: block %s not in layout (analysis from a different workload?)", b.BlockID)
		}
		b.Nodes = lb.proto.Nodes
	}
	a.BET = l.bet
	return nil
}
