package translate

import (
	"context"
	"strings"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/libmodel"
	"skope/internal/minilang"
	"skope/internal/sim"
)

// prepProgram parses, checks and profiles a minilang program.
func prepProgram(t *testing.T, src string) (*minilang.Program, *interp.Profile) {
	t.Helper()
	prog, err := minilang.Parse("tp", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatal(err)
	}
	pr := interp.NewProfiler()
	e, err := interp.New(prog, &interp.Options{Observer: pr})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return prog, pr.P
}

const pipelineSrc = `
global n: int = 256;
global a: [n][n]float;
global b: [n][n]float;
global total: float;

func main() {
  fill();
  smooth();
  reduce();
}

func fill() {
  for i = 0 .. n {
    for j = 0 .. n {
      a[i][j] = rand();
    }
  }
}

func smooth() {
  for i = 1 .. n - 1 {
    for j = 1 .. n - 1 {
      b[i][j] = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1] + a[i][j]) * 0.2;
    }
  }
}

func reduce() {
  total = 0.0;
  for i = 0 .. n {
    for j = 0 .. n {
      if (b[i][j] > 0.5) {
        total = total + b[i][j];
      }
    }
  }
}
`

func TestInputEnv(t *testing.T) {
	prog, _ := prepProgram(t, pipelineSrc)
	env, err := InputEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	if env["n"] != 256 {
		t.Errorf("n = %g", env["n"])
	}
	if _, ok := env["a"]; ok {
		t.Error("array leaked into input env")
	}
}

func TestTranslatePipeline(t *testing.T) {
	prog, prof := prepProgram(t, pipelineSrc)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Structural expectations.
	for _, want := range []string{
		"def main(", "def fill(", "def smooth(", "def reduce(",
		"call fill()", "call smooth()", "call reduce()",
		"var a[n][n]", "for i = 0 : n", "comp", "lib rand",
		"if prob=",
	} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("skeleton missing %q:\n%s", want, res.Text)
		}
	}
	// The generated skeleton must parse (Translate validates) and build a
	// BET with no context blowup.
	tree := bst.MustBuild(res.Prog)
	bet, err := core.Build(context.Background(), tree, res.Input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := bet.SizeRatio(); r > 2 {
		t.Errorf("BET size ratio = %g, want <= 2", r)
	}
}

func TestTranslatedBranchProbability(t *testing.T) {
	src := `
global n: int = 1000;
global hits: int;
func main() {
  hits = 0;
  for i = 0 .. n {
    if (i % 10 == 0) {
      hits = hits + 1;
    }
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "if prob=0.1") {
		t.Errorf("profiled probability not folded in:\n%s", res.Text)
	}
}

func TestTranslatedWhileUsesProfiledTrips(t *testing.T) {
	src := `
global x: float;
func main() {
  x = 1000.0;
  while (x > 1.0) {
    x = x * 0.5;
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "while iters=10 label=\"while@L5\"") {
		t.Errorf("profiled while trips missing:\n%s", res.Text)
	}
}

func TestDataDependentForFallsBackToProfile(t *testing.T) {
	src := `
global a: [64]float;
global k: int;
func main() {
  a[0] = 40.0;
  k = a[0];
  for i = 0 .. k {
    a[1] = a[1] + 1.0;
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	// k is data-dependent (loaded from an array): the loop must become a
	// profiled while.
	if !strings.Contains(res.Text, "while iters=40") {
		t.Errorf("data-dependent for not profile-estimated:\n%s", res.Text)
	}
}

func TestStaticBoundsStaySymbolic(t *testing.T) {
	src := `
global n: int = 128;
global a: [n]float;
func main() {
  var half: int = n / 2;
  for i = 0 .. half {
    a[i] = 1.0;
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "set half = floor((n) / (2))") {
		t.Errorf("tracked scalar not set:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "for i = 0 : half") {
		t.Errorf("static bound not symbolic:\n%s", res.Text)
	}
	// And the BET must evaluate it to 64 iterations.
	tree := bst.MustBuild(res.Prog)
	bet, err := core.Build(context.Background(), tree, res.Input, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	core.Walk(bet.Root, func(nd *core.Node) bool {
		if nd.Kind() == bst.KindLoop && nd.Iters == 64 {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("loop iters != 64 in BET:\n%s", bet.Dump())
	}
}

func TestVecHintPropagates(t *testing.T) {
	src := `
global n: int = 64;
global a: [n]float;
func main() {
  for i = 0 .. n @vec {
    a[i] = a[i] * 2.0;
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "vec=8") {
		t.Errorf("vec hint missing:\n%s", res.Text)
	}
}

func TestCallArgsTranslated(t *testing.T) {
	src := `
global n: int = 32;
global a: [n]float;
func main() {
  work(n * 2);
}
func work(m: int) {
  for i = 0 .. m {
    a[0] = a[0] + 1.0;
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "call work((n * 2))") {
		t.Errorf("call args not symbolic:\n%s", res.Text)
	}
	tree := bst.MustBuild(res.Prog)
	bet, err := core.Build(context.Background(), tree, res.Input, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	core.Walk(bet.Root, func(nd *core.Node) bool {
		if nd.Kind() == bst.KindLoop {
			got = nd.Iters
		}
		return true
	})
	if got != 64 {
		t.Errorf("callee loop iters = %g, want 64", got)
	}
}

func TestSegmentBlockIDsMatchSimulator(t *testing.T) {
	prog, prof := prepProgram(t, pipelineSrc)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(context.Background(), prog, hw.BGQ(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := bst.MustBuild(res.Prog)
	bet, err := core.Build(context.Background(), tree, res.Input, nil)
	if err != nil {
		t.Fatal(err)
	}
	libs, err := libmodel.Default()
	if err != nil {
		t.Fatal(err)
	}
	a, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), libs)
	if err != nil {
		t.Fatal(err)
	}
	// Every modeled comp block with meaningful time must exist in the
	// measured profile under the same ID.
	for _, blk := range a.Blocks {
		if a.Coverage(blk) < 0.01 {
			continue
		}
		if simRes.ByID[blk.BlockID] == nil {
			t.Errorf("modeled block %s absent from simulation (sim has %v)",
				blk.BlockID, topIDs(simRes, 10))
		}
	}
	// And the dominant blocks must agree: smooth's stencil is the top
	// measured block; the model must rank it in its top 2.
	top := simRes.Blocks[0].ID
	if r := a.RankOf(top); r == 0 || r > 2 {
		t.Errorf("top measured block %s ranks %d in model", top, r)
	}
}

func TestUnevaluableCallArgWarns(t *testing.T) {
	src := `
global a: [8]float;
func main() {
  var k: int = 0;
  k = a[0];
  work(k);
}
func work(m: int) {
  a[1] = a[1] + 1.0;
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Error("expected a warning for data-dependent call argument")
	}
	if !strings.Contains(res.Text, "call work(0)") {
		t.Errorf("fallback arg missing:\n%s", res.Text)
	}
}

func TestNoProfileStaticProgram(t *testing.T) {
	src := `
global n: int = 16;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = 1.0;
  }
}
`
	prog, err := minilang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Translate(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("static program produced warnings: %v", res.Warnings)
	}
}

func TestIntDivisionFloored(t *testing.T) {
	env := expr.Env{"n": 7}
	e := expr.MustParse("floor((n) / (2))")
	if v := expr.MustEval(e, env); v != 3 {
		t.Errorf("floored int division = %g", v)
	}
}

func topIDs(r *sim.Result, n int) []string {
	out := []string{}
	for _, b := range r.TopN(n) {
		out = append(out, b.ID)
	}
	return out
}

func TestExchangeTranslation(t *testing.T) {
	src := `
global n: int = 32;
global a: [n]float;
func main() {
  for t = 0 .. 4 {
    a[0] = a[0] + 1.0;
    exchange(n * 8, 2);
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "comm bytes=(n * 8) msgs=2 name=\"comm@L7\"") {
		t.Errorf("exchange not translated:\n%s", res.Text)
	}
}

func TestExchangeDataDependentArgsWarn(t *testing.T) {
	src := `
global a: [8]float;
func main() {
  var b: int = 0;
  b = a[0];
  exchange(b, 1);
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Error("expected warning for data-dependent exchange volume")
	}
	if !strings.Contains(res.Text, "comm bytes=0") {
		t.Errorf("fallback bytes missing:\n%s", res.Text)
	}
}

func TestInputEnvArithmeticGlobals(t *testing.T) {
	src := `
global n: int = 4;
global m: int = n * 3 + 2;
global half: int = m / 2;
global r: int = m % 5;
global neg: int = -(n);
global notv: int = !(0);
global f: float = 1.0 / 4.0;
func main() {}
`
	prog, err := minilang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatal(err)
	}
	env, err := InputEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"n": 4, "m": 14, "half": 7, "r": 4, "neg": -4, "notv": 1, "f": 0.25}
	for k, v := range want {
		if env[k] != v {
			t.Errorf("%s = %g, want %g", k, env[k], v)
		}
	}
}

func TestInputEnvDivZero(t *testing.T) {
	src := "global z: int = 0;\nglobal bad: int = 4 / z;\nfunc main() {}"
	prog, err := minilang.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := InputEnv(prog); err == nil {
		t.Error("division by zero in global init accepted")
	}
}

func TestVarDeclWithUserCallInit(t *testing.T) {
	src := `
global a: [8]float;
func main() {
  var x: float = helper();
  a[0] = x;
}
func helper(): float {
  return 2.5;
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "call helper()") {
		t.Errorf("call-in-decl not translated:\n%s", res.Text)
	}
}

func TestWhileWithoutProfileWarns(t *testing.T) {
	// A while loop inside a never-executed branch has no profile entry.
	src := `
global flag: int = 0;
global x: float;
func main() {
  if (flag == 1) {
    while (x > 0.0) {
      x = x - 1.0;
    }
  }
}
`
	prog, prof := prepProgram(t, src)
	res, err := Translate(prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "no profile entry") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected no-profile warning, got %v", res.Warnings)
	}
}
