// Package translate implements the static half of the paper's application
// analysis engine: a source-to-source translator from minilang programs to
// SKOPE-style code skeletons (the role played by the ROSE compiler pass in
// the paper). It statically characterizes each straight-line segment's
// instruction mix and array accesses, preserves the control structure
// (loops, branches, calls), and folds in the branch profiler's statistics
// (fall-through probabilities, expected trip counts) exactly as the paper's
// gcov pass feeds SKOPE.
//
// Block identities are shared with the timing simulator: a source segment
// starting at line N of function f becomes skeleton comp "f/LN"; library
// calls inside it become "f/LN:<func>"; loop and branch control overhead
// blocks ("f/for@LN", "f/if@LN") exist only on the measured side — the
// first-order model deliberately ignores them, one of the paper's stated
// inaccuracy sources (§VII-C).
package translate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"skope/internal/expr"
	"skope/internal/interp"
	"skope/internal/minilang"
	"skope/internal/skeleton"
)

// Result is a completed translation.
type Result struct {
	// Text is the generated skeleton source.
	Text string
	// Prog is the parsed and validated skeleton.
	Prog *skeleton.Program
	// Input is the initial BET context: the program's global scalars.
	Input expr.Env
	// Warnings lists lossy translations (unevaluable call arguments,
	// profile-estimated loop bounds for which no profile entry existed).
	Warnings []string
}

// Translate converts a checked minilang program into a code skeleton,
// using prof for data-dependent branch probabilities and loop trip counts.
// prof may be nil only for programs whose control flow is fully static.
func Translate(prog *minilang.Program, prof *interp.Profile) (*Result, error) {
	input, err := InputEnv(prog)
	if err != nil {
		return nil, err
	}
	tr := &translator{prog: prog, prof: prof, input: input, dirtyGlobals: dirtyGlobals(prog)}
	text, err := tr.run()
	if err != nil {
		return nil, err
	}
	sk, err := skeleton.Parse(prog.Source+".skel", text)
	if err != nil {
		return nil, fmt.Errorf("translate: generated skeleton does not parse: %v\n%s", err, text)
	}
	if err := skeleton.Validate(sk); err != nil {
		return nil, fmt.Errorf("translate: generated skeleton invalid: %v\n%s", err, text)
	}
	return &Result{Text: text, Prog: sk, Input: input, Warnings: tr.warnings}, nil
}

// InputEnv evaluates the program's scalar globals — the input context the
// BET is built with (array dimensions and input-size parameters).
func InputEnv(prog *minilang.Program) (expr.Env, error) {
	env := expr.Env{}
	for _, g := range prog.Globals {
		if g.Type.IsArray() {
			continue
		}
		v := 0.0
		if g.Init != nil {
			var err error
			v, err = constEval(g.Init, env)
			if err != nil {
				return nil, fmt.Errorf("translate: global %s: %v", g.Name, err)
			}
		}
		if g.Type.Base == minilang.TypeInt {
			v = math.Trunc(v)
		}
		env[g.Name] = v
	}
	return env, nil
}

func constEval(e minilang.Expr, env expr.Env) (float64, error) {
	switch t := e.(type) {
	case *minilang.IntLit:
		return float64(t.Val), nil
	case *minilang.FloatLit:
		return t.Val, nil
	case *minilang.VarRef:
		v, ok := env[t.Name]
		if !ok {
			return 0, fmt.Errorf("unknown name %q", t.Name)
		}
		return v, nil
	case *minilang.Binary:
		l, err := constEval(t.L, env)
		if err != nil {
			return 0, err
		}
		r, err := constEval(t.R, env)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case minilang.OpAdd:
			return l + r, nil
		case minilang.OpSub:
			return l - r, nil
		case minilang.OpMul:
			return l * r, nil
		case minilang.OpDiv:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			if t.ResultType() == minilang.TypeInt {
				return math.Trunc(l / r), nil
			}
			return l / r, nil
		case minilang.OpRem:
			if r == 0 {
				return 0, fmt.Errorf("remainder by zero")
			}
			return math.Mod(l, r), nil
		}
		return 0, fmt.Errorf("unsupported operator in constant expression")
	case *minilang.Unary:
		v, err := constEval(t.X, env)
		if err != nil {
			return 0, err
		}
		if t.Op == "!" {
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return -v, nil
	}
	return 0, fmt.Errorf("unsupported constant expression %T", e)
}

type translator struct {
	prog     *minilang.Program
	prof     *interp.Profile
	input    expr.Env
	warnings []string
	b        strings.Builder
	// dirtyGlobals are scalar globals assigned anywhere at runtime: their
	// input-context values may be stale, so they start untracked in every
	// function (local set statements can re-track them within one
	// function's linear flow).
	dirtyGlobals map[string]bool
}

func (tr *translator) warnf(pos minilang.Pos, format string, args ...any) {
	tr.warnings = append(tr.warnings,
		fmt.Sprintf("%s:%s: %s", tr.prog.Source, pos, fmt.Sprintf(format, args...)))
}

func (tr *translator) run() (string, error) {
	fmt.Fprintf(&tr.b, "# skeleton generated from %s\n", tr.prog.Source)
	for fi, f := range tr.prog.Funcs {
		if fi > 0 {
			tr.b.WriteByte('\n')
		}
		params := make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = p.Name
		}
		fmt.Fprintf(&tr.b, "def %s(%s)\n", f.Name, strings.Join(params, ", "))
		// Array declarations are documented in main. Extents are evaluated
		// at program initialization, when every scalar global still holds
		// its declared value, so the full input context is usable here.
		if f.Name == "main" {
			initTracked := map[string]bool{}
			for name := range tr.input {
				initTracked[name] = true
			}
			for _, g := range tr.prog.Globals {
				if !g.Type.IsArray() {
					continue
				}
				fmt.Fprintf(&tr.b, "  var %s", g.Name)
				for _, ex := range g.Type.Extents {
					s, ok := tr.exprString(ex, initTracked)
					if !ok {
						s = "1"
					}
					fmt.Fprintf(&tr.b, "[%s]", s)
				}
				tr.b.WriteByte('\n')
			}
		}
		tracked := map[string]bool{}
		for name := range tr.input {
			if !tr.dirtyGlobals[name] {
				tracked[name] = true
			}
		}
		for _, p := range f.Params {
			tracked[p.Name] = true
		}
		if err := tr.block(f, f.Body, 1, tracked, false); err != nil {
			return "", err
		}
		tr.b.WriteString("end\n")
	}
	return tr.b.String(), nil
}

// block emits the skeleton statements for one minilang block. tracked is
// the set of scalar names whose values the BET can evaluate; it is mutated
// in statement order (the skeleton set statements keep it in sync).
func (tr *translator) block(f *minilang.FuncDecl, b *minilang.Block, depth int, tracked map[string]bool, vec bool) error {
	ind := strings.Repeat("  ", depth)
	segs := minilang.SegmentsOf(f.Name, b)
	segStart := map[minilang.Stmt]*minilang.Segment{}
	for i := range segs {
		segStart[segs[i].Stmts[0]] = &segs[i]
	}
	inSeg := map[minilang.Stmt]bool{}
	for i := range segs {
		for _, s := range segs[i].Stmts {
			inSeg[s] = true
		}
	}

	for _, s := range b.Stmts {
		if seg, ok := segStart[s]; ok {
			tr.emitSegment(f, seg, ind, tracked, vec)
			continue
		}
		if inSeg[s] {
			continue // already covered by its segment's comp
		}
		if err := tr.control(f, s, depth, tracked, vec); err != nil {
			return err
		}
	}
	return nil
}

// emitSegment emits set statements for tracked scalar dataflow, the comp
// summary, and lib statements for builtin calls.
func (tr *translator) emitSegment(f *minilang.FuncDecl, seg *minilang.Segment, ind string, tracked map[string]bool, vec bool) {
	// Dataflow first: keep control-relevant scalars evaluable.
	for _, s := range seg.Stmts {
		var name string
		var rhs minilang.Expr
		switch t := s.(type) {
		case *minilang.VarDecl:
			name, rhs = t.Name, t.Init
		case *minilang.Assign:
			if vr, ok := t.LHS.(*minilang.VarRef); ok {
				name, rhs = vr.Name, t.RHS
			}
		}
		if name == "" {
			continue
		}
		if rhs == nil {
			tracked[name] = true // zero-initialized declaration
			fmt.Fprintf(&tr.b, "%sset %s = 0\n", ind, name)
			continue
		}
		if text, ok := tr.exprString(rhs, tracked); ok {
			tracked[name] = true
			fmt.Fprintf(&tr.b, "%sset %s = %s\n", ind, name, text)
		} else {
			// Data-dependent value: the BET cannot evaluate it.
			delete(tracked, name)
		}
	}

	c := minilang.CountSegment(seg)
	fmt.Fprintf(&tr.b, "%scomp", ind)
	writeCount := func(key string, v int) {
		if v != 0 {
			fmt.Fprintf(&tr.b, " %s=%d", key, v)
		}
	}
	writeCount("flops", c.FLOPs)
	writeCount("iops", c.IOPs)
	writeCount("loads", c.Loads)
	writeCount("stores", c.Stores)
	writeCount("divs", c.Divs)
	writeCount("insts", c.Insts())
	if vec {
		fmt.Fprintf(&tr.b, " vec=8")
	}
	fmt.Fprintf(&tr.b, " name=%q\n", seg.Label())

	libNames := make([]string, 0, len(c.Lib))
	for name := range c.Lib {
		libNames = append(libNames, name)
	}
	sort.Strings(libNames)
	for _, name := range libNames {
		fmt.Fprintf(&tr.b, "%slib %s count=%d name=%q\n", ind, name, c.Lib[name], seg.Label()+":"+name)
	}
}

// control emits a control statement (loop, branch, call, jump).
func (tr *translator) control(f *minilang.FuncDecl, s minilang.Stmt, depth int, tracked map[string]bool, vec bool) error {
	ind := strings.Repeat("  ", depth)
	switch t := s.(type) {
	case *minilang.For:
		return tr.forLoop(f, t, depth, tracked)

	case *minilang.While:
		site := interp.Site(f.Name, t.Pos)
		iters, ok := tr.profiledTrips(site)
		if !ok {
			tr.warnf(t.Pos, "while loop has no profile entry; assuming 1 iteration")
			iters = 1
		}
		fmt.Fprintf(&tr.b, "%swhile iters=%s label=%q\n", ind, expr.Const(iters), fmt.Sprintf("while@L%d", t.Pos.Line))
		inner := cloneSet(tracked)
		if err := tr.block(f, t.Body, depth+1, inner, false); err != nil {
			return err
		}
		fmt.Fprintf(&tr.b, "%send\n", ind)
		tr.untrackAssigned(t.Body, tracked)
		return nil

	case *minilang.If:
		site := interp.Site(f.Name, t.Pos)
		p := 0.5
		if tr.prof != nil {
			if st, ok := tr.prof.Branches[site]; ok {
				p = st.Prob()
			} else {
				tr.warnf(t.Pos, "branch has no profile entry; assuming p=0.5")
			}
		} else {
			tr.warnf(t.Pos, "no profile supplied; branch assumed p=0.5")
		}
		fmt.Fprintf(&tr.b, "%sif prob=%s\n", ind, expr.Const(p))
		thenTracked := cloneSet(tracked)
		if err := tr.block(f, t.Then, depth+1, thenTracked, vec); err != nil {
			return err
		}
		if t.Else != nil {
			fmt.Fprintf(&tr.b, "%selse\n", ind)
			elseTracked := cloneSet(tracked)
			if err := tr.block(f, t.Else, depth+1, elseTracked, vec); err != nil {
				return err
			}
		}
		fmt.Fprintf(&tr.b, "%send\n", ind)
		tr.untrackAssigned(t.Then, tracked)
		if t.Else != nil {
			tr.untrackAssigned(t.Else, tracked)
		}
		return nil

	case *minilang.ExprStmt:
		// Control statements outside segments are user calls or
		// exchange() communication phases.
		if call, ok := t.X.(*minilang.Call); ok {
			if call.Builtin && call.Name == "exchange" {
				tr.emitComm(f, call, ind, tracked)
				return nil
			}
			if !call.Builtin {
				tr.emitCall(f, call, ind, tracked)
				return nil
			}
		}
		return fmt.Errorf("translate: %s:%s: unexpected expression statement outside segment", tr.prog.Source, t.Pos)

	case *minilang.Assign:
		// Assignment with a user-call RHS: the call is modeled; the
		// assigned variable becomes untracked.
		if call, ok := t.RHS.(*minilang.Call); ok && !call.Builtin {
			tr.emitCall(f, call, ind, tracked)
			if vr, ok := t.LHS.(*minilang.VarRef); ok {
				delete(tracked, vr.Name)
			}
			return nil
		}
		return fmt.Errorf("translate: %s:%s: unexpected assignment outside segment", tr.prog.Source, t.Pos)

	case *minilang.VarDecl:
		if t.Init != nil {
			if call, ok := t.Init.(*minilang.Call); ok && !call.Builtin {
				tr.emitCall(f, call, ind, tracked)
				delete(tracked, t.Name)
				return nil
			}
		}
		return fmt.Errorf("translate: %s:%s: unexpected declaration outside segment", tr.prog.Source, t.Pos)

	case *minilang.Return:
		fmt.Fprintf(&tr.b, "%sreturn\n", ind)
		return nil
	case *minilang.Break:
		fmt.Fprintf(&tr.b, "%sbreak\n", ind)
		return nil
	case *minilang.Continue:
		fmt.Fprintf(&tr.b, "%scontinue\n", ind)
		return nil
	}
	return fmt.Errorf("translate: %s:%s: unhandled statement %T", tr.prog.Source, s.StmtPos(), s)
}

func (tr *translator) forLoop(f *minilang.FuncDecl, t *minilang.For, depth int, tracked map[string]bool) error {
	ind := strings.Repeat("  ", depth)
	label := fmt.Sprintf("for@L%d", t.Pos.Line)
	from, okF := tr.exprString(t.From, tracked)
	to, okT := tr.exprString(t.To, tracked)
	step, okS := "", true
	if t.Step != nil {
		step, okS = tr.exprString(t.Step, tracked)
	}
	inner := cloneSet(tracked)
	if okF && okT && okS {
		fmt.Fprintf(&tr.b, "%sfor %s = %s : %s", ind, t.Var, from, to)
		if t.Step != nil {
			fmt.Fprintf(&tr.b, " : %s", step)
		}
		fmt.Fprintf(&tr.b, " label=%q\n", label)
		inner[t.Var] = true
	} else {
		// Data-dependent bounds: fall back to the profiled trip count, as
		// the paper does for loops with uncertain boundaries.
		site := interp.Site(f.Name, t.Pos)
		iters, ok := tr.profiledTrips(site)
		if !ok {
			tr.warnf(t.Pos, "for loop with data-dependent bounds has no profile entry; assuming 1 iteration")
			iters = 1
		}
		fmt.Fprintf(&tr.b, "%swhile iters=%s label=%q\n", ind, expr.Const(iters), label)
		delete(inner, t.Var)
	}
	if err := tr.block(f, t.Body, depth+1, inner, t.Vec); err != nil {
		return err
	}
	fmt.Fprintf(&tr.b, "%send\n", ind)
	tr.untrackAssigned(t.Body, tracked)
	return nil
}

func (tr *translator) profiledTrips(site string) (float64, bool) {
	if tr.prof == nil {
		return 0, false
	}
	st, ok := tr.prof.Loops[site]
	if !ok {
		return 0, false
	}
	return st.Mean(), true
}

// emitComm translates exchange(bytes, msgs) into a skeleton comm statement
// whose block ID matches the simulator's attribution.
func (tr *translator) emitComm(f *minilang.FuncDecl, call *minilang.Call, ind string, tracked map[string]bool) {
	args := make([]string, 2)
	for i, a := range call.Args {
		if s, ok := tr.exprString(a, tracked); ok {
			args[i] = s
		} else {
			tr.warnf(call.Pos, "exchange argument %d is data-dependent; passing 0", i+1)
			args[i] = "0"
		}
	}
	fmt.Fprintf(&tr.b, "%scomm bytes=%s msgs=%s name=%q\n",
		ind, args[0], args[1], fmt.Sprintf("comm@L%d", call.Pos.Line))
}

func (tr *translator) emitCall(f *minilang.FuncDecl, call *minilang.Call, ind string, tracked map[string]bool) {
	args := make([]string, len(call.Args))
	for i, a := range call.Args {
		if s, ok := tr.exprString(a, tracked); ok {
			args[i] = s
		} else {
			tr.warnf(call.Pos, "argument %d of call to %s is data-dependent; passing 0", i+1, call.Name)
			args[i] = "0"
		}
	}
	fmt.Fprintf(&tr.b, "%scall %s(%s)\n", ind, call.Name, strings.Join(args, ", "))
}

// untrackAssigned conservatively removes every scalar assigned anywhere in
// a nested block from the tracked set: after a loop or branch, the BET's
// linear context cannot know their values.
func (tr *translator) untrackAssigned(b *minilang.Block, tracked map[string]bool) {
	for _, s := range b.Stmts {
		switch t := s.(type) {
		case *minilang.Assign:
			if vr, ok := t.LHS.(*minilang.VarRef); ok {
				delete(tracked, vr.Name)
			}
		case *minilang.VarDecl:
			delete(tracked, t.Name)
		case *minilang.For:
			tr.untrackAssigned(t.Body, tracked)
		case *minilang.While:
			tr.untrackAssigned(t.Body, tracked)
		case *minilang.If:
			tr.untrackAssigned(t.Then, tracked)
			if t.Else != nil {
				tr.untrackAssigned(t.Else, tracked)
			}
		}
	}
}

// exprString converts a minilang expression to skeleton expression syntax.
// It returns ok=false when the expression depends on values the BET cannot
// evaluate (array elements, untracked scalars, calls).
func (tr *translator) exprString(e minilang.Expr, tracked map[string]bool) (string, bool) {
	switch t := e.(type) {
	case *minilang.IntLit:
		return fmt.Sprintf("%d", t.Val), true
	case *minilang.FloatLit:
		return expr.Const(t.Val).String(), true
	case *minilang.VarRef:
		// Globals are in the input context unless assigned at runtime
		// (dirty); locals must be tracked through set statements.
		if tracked[t.Name] {
			return t.Name, true
		}
		return "", false
	case *minilang.Binary:
		l, okL := tr.exprString(t.L, tracked)
		r, okR := tr.exprString(t.R, tracked)
		if !okL || !okR {
			return "", false
		}
		op := t.Op.String()
		if t.Op == minilang.OpDiv && t.ResultType() == minilang.TypeInt {
			// Integer division truncates; skeleton division is exact.
			return fmt.Sprintf("floor((%s) / (%s))", l, r), true
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r), true
	case *minilang.Unary:
		x, ok := tr.exprString(t.X, tracked)
		if !ok {
			return "", false
		}
		if t.Op == "!" {
			return fmt.Sprintf("!(%s)", x), true
		}
		return fmt.Sprintf("(-%s)", x), true
	}
	return "", false
}

// dirtyGlobals returns the scalar globals assigned anywhere in the program.
func dirtyGlobals(prog *minilang.Program) map[string]bool {
	dirty := map[string]bool{}
	var walkBlock func(b *minilang.Block)
	walkStmt := func(s minilang.Stmt) {
		if a, ok := s.(*minilang.Assign); ok {
			if vr, ok := a.LHS.(*minilang.VarRef); ok && vr.Global {
				dirty[vr.Name] = true
			}
		}
	}
	walkBlock = func(b *minilang.Block) {
		for _, s := range b.Stmts {
			walkStmt(s)
			switch t := s.(type) {
			case *minilang.For:
				walkBlock(t.Body)
			case *minilang.While:
				walkBlock(t.Body)
			case *minilang.If:
				walkBlock(t.Then)
				if t.Else != nil {
					walkBlock(t.Else)
				}
			}
		}
	}
	for _, f := range prog.Funcs {
		walkBlock(f.Body)
	}
	return dirty
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
