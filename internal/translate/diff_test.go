package translate

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/interp"
	"skope/internal/minilang"
)

// TestQuickModelMatchesMeasuredTripCounts is the end-to-end differential
// property: for randomly generated structured programs (nested affine
// loops, modulo and rand()-probability branches, no context-forking
// assignments), the BET's expected execution count of every loop
// (ENR x Iters) must equal the interpreter's measured total trip count.
//
// This holds exactly, not just in expectation: deterministic modulo
// branches are profiled at their true frequency, rand() branches at their
// realized frequency from the same profiling run, and affine loop bounds
// evaluated at the expected loop-variable value average correctly — so the
// model's statistics reproduce the measured totals.
func TestQuickModelMatchesMeasuredTripCounts(t *testing.T) {
	f := func(seed uint32) bool {
		src := genProgram(uint64(seed))
		prog, err := minilang.Parse("gen", src)
		if err != nil {
			t.Logf("seed %d: parse: %v\n%s", seed, err, src)
			return false
		}
		if err := minilang.Check(prog); err != nil {
			t.Logf("seed %d: check: %v\n%s", seed, err, src)
			return false
		}
		profiler := interp.NewProfiler()
		eng, err := interp.New(prog, &interp.Options{Observer: profiler, Seed: uint64(seed) + 7})
		if err != nil {
			t.Logf("seed %d: new: %v", seed, err)
			return false
		}
		if err := eng.Run(); err != nil {
			t.Logf("seed %d: run: %v\n%s", seed, err, src)
			return false
		}
		res, err := Translate(prog, profiler.P)
		if err != nil {
			t.Logf("seed %d: translate: %v\n%s", seed, err, src)
			return false
		}
		tree, err := bst.Build(res.Prog)
		if err != nil {
			t.Logf("seed %d: bst: %v", seed, err)
			return false
		}
		bet, err := core.Build(context.Background(), tree, res.Input, nil)
		if err != nil {
			t.Logf("seed %d: bet: %v\n%s", seed, err, res.Text)
			return false
		}

		// Model-side: total executions per loop block.
		modelTrips := map[string]float64{}
		core.Walk(bet.Root, func(n *core.Node) bool {
			if n.Kind() == bst.KindLoop || n.Kind() == bst.KindWhile {
				modelTrips[n.Label()] += n.ENR * n.Iters
			}
			return true
		})

		// Measured side: profiler loop statistics, keyed by source line.
		for site, st := range profiler.P.Loops {
			line := lineOfSite(site)
			label := fmt.Sprintf("for@L%d", line)
			got, ok := modelTrips[label]
			if !ok {
				// Data-dependent loops become while@; the generator emits
				// only static bounds, so every loop must be found.
				t.Logf("seed %d: loop %s (label %s) missing from model\n%s\nskeleton:\n%s",
					seed, site, label, src, res.Text)
				return false
			}
			want := float64(st.Trips)
			if math.Abs(got-want) > 1e-6*math.Max(want, 1) {
				t.Logf("seed %d: loop %s: model %.6f vs measured %g\nsource:\n%s\nskeleton:\n%s\nbet:\n%s",
					seed, site, got, want, src, res.Text, bet.Dump())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func lineOfSite(site string) int {
	// site = "main@<line>:<col>"
	var line, col int
	at := strings.IndexByte(site, '@')
	fmt.Sscanf(site[at+1:], "%d:%d", &line, &col)
	return line
}

// genProgram emits a random structured minilang program: nested counted
// loops with affine bounds, modulo branches, rand-probability branches,
// and straight-line float work. No assignments feed control flow, so the
// BET needs no context forking and expectations are exact.
//
// Two deliberate restrictions isolate the exact-equality regime:
//
//   - loops under a branch use only constant or global bounds: a bound
//     referencing an outer loop variable inside a branch conditioned on
//     that variable makes the conditional mean of the bound differ from
//     the unconditional mean the model uses (correlated branch outcomes);
//   - at most one variable-dependent bound on any loop-nest path: chained
//     or repeated dependence (k bounded by i inside j bounded by i) makes
//     totals quadratic in the outer variable, which a first-order
//     expected-value model cannot reproduce (Jensen-style error).
//
// Both excluded cases are real, inherent errors of the paper's statistical
// approach (its §VII-C "jittering" discussion), not implementation bugs;
// inside the independent/affine regime the model must be exact.
func genProgram(seed uint64) string {
	r := &lcg{state: seed*2654435761 + 12345}
	var b strings.Builder
	n := 4 + r.intn(8)
	fmt.Fprintf(&b, "global n: int = %d;\nglobal acc: float;\nglobal a: [64]float;\n\n", n)
	b.WriteString("func main() {\n")
	genBlock(r, &b, 1, 0, nil)
	b.WriteString("}\n")
	return b.String()
}

type lcg struct{ state uint64 }

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state >> 11
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

var loopVarNames = []string{"i", "j", "k", "m2", "p"}

// genVar is a loop variable in scope; chainable marks variables of
// constant-range loops, safe to use in a nested bound.
type genVar struct {
	name      string
	chainable bool
}

func genBlock(r *lcg, b *strings.Builder, depth, loopDepth int, vars []genVar) {
	genBlockB(r, b, depth, loopDepth, vars, false)
}

// nonChainable returns vars with every entry marked non-chainable, for
// subtrees where no further variable-dependent bounds are allowed.
func nonChainable(vars []genVar) []genVar {
	out := make([]genVar, len(vars))
	for i, v := range vars {
		out[i] = genVar{v.name, false}
	}
	return out
}

func pickVar(r *lcg, vars []genVar) string {
	return vars[r.intn(len(vars))].name
}

func genBlockB(r *lcg, b *strings.Builder, depth, loopDepth int, vars []genVar, underBranch bool) {
	ind := strings.Repeat("  ", depth)
	stmts := 1 + r.intn(3)
	for s := 0; s < stmts; s++ {
		switch choice := r.intn(6); {
		case choice <= 1 && loopDepth < 3 && depth < 5:
			// Counted loop with affine bounds.
			v := loopVarNames[loopDepth]
			from := r.intn(3)
			var to string
			chainable := true
			var chainables []genVar
			for _, gv := range vars {
				if gv.chainable {
					chainables = append(chainables, gv)
				}
			}
			switch r.intn(3) {
			case 0:
				to = fmt.Sprintf("%d", from+1+r.intn(6))
			case 1:
				to = "n"
			default:
				if len(chainables) > 0 && !underBranch {
					to = pickVar(r, chainables) + " + 2"
					chainable = false
				} else {
					to = "n"
				}
			}
			fmt.Fprintf(b, "%sfor %s = %d .. %s {\n", ind, v, from, to)
			inner := append(vars, genVar{v, chainable})
			if !chainable {
				// Variable-dependent loop: its whole subtree must stay
				// free of further variable-dependent bounds.
				inner = nonChainable(inner)
			}
			genBlockB(r, b, depth+1, loopDepth+1, inner, underBranch)
			fmt.Fprintf(b, "%s}\n", ind)
		case choice == 2 && depth < 5:
			// Modulo branch on a loop variable (deterministic, profiled).
			if len(vars) == 0 {
				fmt.Fprintf(b, "%sacc = acc + 1.0;\n", ind)
				continue
			}
			v := pickVar(r, vars)
			k := 2 + r.intn(3)
			fmt.Fprintf(b, "%sif (%s %% %d == 0) {\n", ind, v, k)
			genBlockB(r, b, depth+1, loopDepth, vars, true)
			if r.intn(2) == 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				genBlockB(r, b, depth+1, loopDepth, vars, true)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case choice == 3 && depth < 5:
			// Probabilistic branch on rand().
			p := 0.2 + 0.6*float64(r.intn(100))/100
			fmt.Fprintf(b, "%sif (rand() < %.2f) {\n", ind, p)
			genBlockB(r, b, depth+1, loopDepth, vars, true)
			fmt.Fprintf(b, "%s}\n", ind)
		default:
			// Straight-line work.
			idx := "1"
			if len(vars) > 0 {
				idx = fmt.Sprintf("mod(%s, 64.0)", pickVar(r, vars))
			}
			fmt.Fprintf(b, "%sacc = acc + a[%s] * 1.5 + 0.25;\n", ind, idx)
		}
	}
}
