package journal_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"skope/internal/journal"
)

// writeJournal builds a journal with the given records and returns its path.
func writeJournal(t *testing.T, name string, meta map[string]string, recs map[string]string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetMeta(meta); err != nil {
		t.Fatal(err)
	}
	for k, v := range recs {
		if err := j.Append(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	return path
}

func tearTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestScanIntactJournal(t *testing.T) {
	path := writeJournal(t, "a.journal", map[string]string{"layout": "fp1"},
		map[string]string{"k1": "v1", "k2": "v2"})
	var keys []string
	rep, err := journal.Scan(path, func(key string, payload []byte) error {
		keys = append(keys, key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.TornTail {
		t.Errorf("report = %+v, want 2 records, no torn tail", rep)
	}
	if rep.Meta["layout"] != "fp1" {
		t.Errorf("meta = %v", rep.Meta)
	}
	if len(keys) != 2 {
		t.Errorf("fn saw %d records", len(keys))
	}
	fi, _ := os.Stat(path)
	if rep.TornOffset != fi.Size() {
		t.Errorf("TornOffset = %d, file size %d", rep.TornOffset, fi.Size())
	}
}

func TestScanDoesNotModifyTornJournal(t *testing.T) {
	path := writeJournal(t, "a.journal", map[string]string{"layout": "fp1"},
		map[string]string{"k1": "v1"})
	tearTail(t, path)
	before, _ := os.Stat(path)

	rep, err := journal.Scan(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.Records != 1 {
		t.Errorf("report = %+v, want torn tail with 1 intact record", rep)
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Fatalf("Scan changed the file: %d -> %d bytes", before.Size(), after.Size())
	}
	if rep.TornOffset >= before.Size() {
		t.Errorf("TornOffset = %d not before file end %d", rep.TornOffset, before.Size())
	}
}

func TestScanRejectsMidFileCorruption(t *testing.T) {
	path := writeJournal(t, "a.journal", map[string]string{"layout": "fp1"},
		map[string]string{"k1": "v1"})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the first record line (after the header line),
	// leaving the trailing record intact so the damage is mid-file once we
	// append another record.
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the k1 record (located before the k2 line).
	idx := len(data) - 10
	full[idx] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Scan(path, nil); !errors.Is(err, journal.ErrCorrupt) {
		t.Fatalf("Scan err = %v, want ErrCorrupt", err)
	}
}

func TestScanFnErrorAborts(t *testing.T) {
	path := writeJournal(t, "a.journal", map[string]string{"layout": "fp1"},
		map[string]string{"k1": "v1", "k2": "v2"})
	sentinel := errors.New("stop")
	if _, err := journal.Scan(path, func(string, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want fn's sentinel", err)
	}
}

func TestRepairTruncatesTornTail(t *testing.T) {
	path := writeJournal(t, "a.journal", map[string]string{"layout": "fp1"},
		map[string]string{"k1": "v1", "k2": "v2"})
	intact, _ := os.Stat(path)
	tearTail(t, path)

	records, repaired, err := journal.Repair(path)
	if err != nil {
		t.Fatal(err)
	}
	if records != 2 || !repaired {
		t.Errorf("Repair = (%d, %v), want (2, true)", records, repaired)
	}
	fi, _ := os.Stat(path)
	if fi.Size() != intact.Size() {
		t.Errorf("repaired size %d, want %d", fi.Size(), intact.Size())
	}
	// Idempotent: a second repair is a no-op.
	records, repaired, err = journal.Repair(path)
	if err != nil || records != 2 || repaired {
		t.Errorf("second Repair = (%d, %v, %v), want (2, false, nil)", records, repaired, err)
	}
	// The repaired journal opens cleanly with both records.
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if n, torn := j.Recovered(); n != 2 || torn {
		t.Errorf("Recovered = (%d, %v) after repair", n, torn)
	}
}
