package journal_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"skope/internal/journal"
)

func openT(t *testing.T, path string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j := openT(t, path)
	if j.Meta() != nil {
		t.Error("fresh journal has meta")
	}
	if err := j.SetMeta(map[string]string{"layout": "abc123"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("fp1", []byte("payload-1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("fp2", []byte("payload-2")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openT(t, path)
	if got := j2.Meta()["layout"]; got != "abc123" {
		t.Errorf("recovered meta layout = %q", got)
	}
	recs := j2.Replay()
	if len(recs) != 2 || string(recs["fp1"]) != "payload-1" || string(recs["fp2"]) != "payload-2" {
		t.Errorf("Replay = %v", recs)
	}
	if n, torn := j2.Recovered(); n != 2 || torn {
		t.Errorf("Recovered = (%d, %v), want (2, false)", n, torn)
	}
	// Resume binding: same meta ok, different meta refused.
	if err := j2.SetMeta(map[string]string{"layout": "abc123"}); err != nil {
		t.Errorf("matching SetMeta failed: %v", err)
	}
	if err := j2.SetMeta(map[string]string{"layout": "OTHER"}); !errors.Is(err, journal.ErrMetaMismatch) {
		t.Errorf("mismatched SetMeta = %v, want ErrMetaMismatch", err)
	}
}

func TestAppendRequiresMeta(t *testing.T) {
	j := openT(t, filepath.Join(t.TempDir(), "j"))
	if err := j.Append("k", []byte("v")); !errors.Is(err, journal.ErrNoMeta) {
		t.Errorf("Append before SetMeta = %v, want ErrNoMeta", err)
	}
}

func TestTornTailIsDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openT(t, path)
	if err := j.SetMeta(map[string]string{"w": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("good", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-Append: a partial, unterminated frame.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"key":"torn","pay`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openT(t, path)
	if n, torn := j2.Recovered(); n != 1 || !torn {
		t.Fatalf("Recovered = (%d, %v), want (1, true)", n, torn)
	}
	recs := j2.Replay()
	if len(recs) != 1 || string(recs["good"]) != "kept" {
		t.Errorf("Replay after torn tail = %v", recs)
	}
	// The tail must be physically gone so future appends start clean.
	if err := j2.Append("next", []byte("v")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openT(t, path)
	if j3.Len() != 2 {
		t.Errorf("after truncate+append journal has %d records, want 2", j3.Len())
	}
}

func TestCorruptionBeforeTailIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openT(t, path)
	if err := j.SetMeta(nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the first record's checksum (line 2 of 3).
	lines[1] = "00000000 " + strings.SplitN(lines[1], " ", 2)[1]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Open(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("mid-file corruption not rejected: %v", err)
	}
}

func TestNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	if err := os.WriteFile(path, []byte("# totally a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Open(path); err == nil {
		t.Error("garbage file accepted as journal")
	}
}

func TestLastRecordWins(t *testing.T) {
	j := openT(t, filepath.Join(t.TempDir(), "j"))
	if err := j.SetMeta(nil); err != nil {
		t.Fatal(err)
	}
	j.Append("k", []byte("first"))
	j.Append("k", []byte("second"))
	if got := string(j.Replay()["k"]); got != "second" {
		t.Errorf("duplicate key replayed %q, want second", got)
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d, want 1", j.Len())
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openT(t, path)
	if err := j.SetMeta(map[string]string{"l": "v"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := string(rune('a'+w)) + "-" + string(rune('0'+i%10)) + string(rune('0'+i/10))
				if err := j.Append(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	j2 := openT(t, path)
	if j2.Len() != 200 {
		t.Errorf("recovered %d records, want 200", j2.Len())
	}
	for k, v := range j2.Replay() {
		if k != string(v) {
			t.Errorf("record %q holds %q", k, v)
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openT(t, path)
	j.SetMeta(nil)
	if err := j.Append("empty", nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openT(t, path)
	if v, ok := j2.Replay()["empty"]; !ok || len(v) != 0 {
		t.Errorf("empty payload lost: %v %v", v, ok)
	}
}

func TestEntriesPreserveCompletionOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openT(t, path)
	j.SetMeta(nil)
	keys := []string{"c", "a", "z", "b", "m"}
	for i, k := range keys {
		if err := j.Append(k, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Rewriting an existing key keeps its original position but serves the
	// newest payload (last record wins, like Replay).
	if err := j.Append("a", []byte("new")); err != nil {
		t.Fatal(err)
	}
	check := func(j *journal.Journal, where string) {
		t.Helper()
		entries := j.Entries()
		if len(entries) != len(keys) {
			t.Fatalf("%s: %d entries, want %d", where, len(entries), len(keys))
		}
		for i, e := range entries {
			if e.Key != keys[i] {
				t.Errorf("%s: entry %d is %q, want %q", where, i, e.Key, keys[i])
			}
		}
		if got := string(entries[1].Payload); got != "new" {
			t.Errorf("%s: rewritten key serves %q, want \"new\"", where, got)
		}
	}
	check(j, "live")
	j.Close()
	// The order must survive recovery, including last-wins dedupe.
	check(openT(t, path), "recovered")
}

func TestEntriesCopiesPayloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j := openT(t, path)
	j.SetMeta(nil)
	if err := j.Append("k", []byte("orig")); err != nil {
		t.Fatal(err)
	}
	e := j.Entries()[0]
	copy(e.Payload, "XXXX")
	if got := string(j.Entries()[0].Payload); got != "orig" {
		t.Errorf("mutating a returned payload leaked into the journal: %q", got)
	}
}
