package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"skope/internal/iofault"
)

// Scan is the read-only counterpart of Open: it walks the journal at path
// without repairing anything, reporting what a recovery would find. Open
// silently truncates a torn tail — correct for resuming work, wrong for a
// scrub (a verifier must not modify what it verifies) and wrong for merge
// inputs it does not own. Scan leaves the file untouched.

// ErrCorrupt marks damage Scan found before the end of the file — a bad
// frame or checksum followed by more data. A torn tail (the one partial
// line a crash mid-Append can leave) is NOT corruption; it is reported on
// ScanReport.TornTail instead.
var ErrCorrupt = errors.New("journal corrupt")

// ScanReport is the outcome of one read-only journal walk.
type ScanReport struct {
	// Meta is the journal's header binding.
	Meta map[string]string
	// Records counts intact record lines (appends, not distinct keys).
	Records int
	// TornTail reports a partial final line — recoverable damage that
	// Open (or Repair) would truncate away.
	TornTail bool
	// TornOffset is the file offset of the torn tail (the size the file
	// would have after repair); equal to the file size when intact.
	TornOffset int64
}

// Scan walks the journal at path read-only, calling fn for every intact
// record line in file order (duplicate keys are delivered each time they
// appear; the last call for a key carries its effective payload). fn may
// be nil. A torn tail is reported on the ScanReport, not as an error;
// corruption before the end of the file fails with an error wrapping
// ErrCorrupt. An error from fn aborts the walk and is returned as-is.
func Scan(path string, fn func(key string, payload []byte) error) (ScanReport, error) {
	return ScanFS(iofault.Disk, path, fn)
}

// ScanFS is Scan through an explicit file abstraction (nil = the disk),
// mirroring OpenFS for read-only walks.
func ScanFS(fsys iofault.FS, path string, fn func(key string, payload []byte) error) (ScanReport, error) {
	var rep ScanReport
	if fsys == nil {
		fsys = iofault.Disk
	}
	f, err := fsys.Open(path)
	if err != nil {
		return rep, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	var good int64
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return rep, fmt.Errorf("journal %s: %w", path, err)
		}
		payload, perr := parseLine(line)
		if perr != nil || err == io.EOF {
			if lineNo == 0 {
				return rep, fmt.Errorf("journal %s: not a journal (bad or torn header): %w", path, ErrCorrupt)
			}
			if _, after := r.ReadByte(); after != io.EOF {
				return rep, fmt.Errorf("journal %s: line %d: corrupt record before end of file (%v): %w",
					path, lineNo+1, perr, ErrCorrupt)
			}
			rep.TornTail = true
			rep.TornOffset = good
			return rep, nil
		}
		lineNo++
		if lineNo == 1 {
			var h header
			if uerr := json.Unmarshal(payload, &h); uerr != nil || h.Magic != magic {
				return rep, fmt.Errorf("journal %s: not a journal (bad header): %w", path, ErrCorrupt)
			}
			if h.Version != version {
				return rep, fmt.Errorf("journal %s: unsupported version %d (want %d): %w", path, h.Version, version, ErrCorrupt)
			}
			rep.Meta = h.Meta
		} else {
			var rec record
			if uerr := json.Unmarshal(payload, &rec); uerr != nil {
				return rep, fmt.Errorf("journal %s: line %d: bad record (%v): %w", path, lineNo, uerr, ErrCorrupt)
			}
			rep.Records++
			if fn != nil {
				if ferr := fn(rec.Key, rec.Payload); ferr != nil {
					return rep, ferr
				}
			}
		}
		good += int64(len(line))
	}
	rep.TornOffset = good
	return rep, nil
}

// Repair truncates the journal's torn tail, if it has one, and reports
// what it did: the number of intact records kept and whether a tail was
// removed. It refuses (like Scan) on mid-file corruption. Repairing an
// intact journal is a no-op.
func Repair(path string) (records int, repaired bool, err error) {
	return RepairFS(iofault.Disk, path)
}

// RepairFS is Repair through an explicit file abstraction (nil = the
// disk).
func RepairFS(fsys iofault.FS, path string) (records int, repaired bool, err error) {
	if fsys == nil {
		fsys = iofault.Disk
	}
	rep, err := ScanFS(fsys, path, nil)
	if err != nil {
		return 0, false, err
	}
	if !rep.TornTail {
		return rep.Records, false, nil
	}
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return rep.Records, false, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(rep.TornOffset); err != nil {
		return rep.Records, false, fmt.Errorf("journal %s: truncating torn tail: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return rep.Records, false, fmt.Errorf("journal %s: %w", path, err)
	}
	return rep.Records, true, nil
}
