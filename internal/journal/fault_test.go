package journal_test

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"skope/internal/iofault"
	"skope/internal/journal"
)

// seedJournal writes a header + n records through fsys and leaves the
// journal open for the caller.
func seedJournal(t *testing.T, fsys iofault.FS, path string, n int) *journal.Journal {
	t.Helper()
	j, err := journal.OpenFS(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetMeta(map[string]string{"layout": "L"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(key(i), []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

func key(i int) string { return string(rune('k')) + string(rune('0'+i)) }

// TestAppendFailureSticky: the first write failure rolls the file back
// and permanently disables appends — later Appends refuse with
// ErrWriteFailed, reads keep serving, and a clean reopen sees exactly the
// pre-failure records.
func TestAppendFailureSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	// Write 1 = header, writes 2-3 = records, write 4 fails torn.
	ff := iofault.New(nil, iofault.Plan{FailWriteAt: 4, ShortWrite: true})
	j := seedJournal(t, ff, path, 2)
	defer j.Close()

	err := j.Append("doomed", []byte("x"))
	if !errors.Is(err, journal.ErrWriteFailed) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("failing append = %v; want ErrWriteFailed wrapping EIO", err)
	}
	if err := j.Append("after", []byte("y")); !errors.Is(err, journal.ErrWriteFailed) {
		t.Fatalf("post-failure append = %v; want sticky ErrWriteFailed", err)
	}
	if j.Err() == nil {
		t.Fatal("Err() = nil after write failure")
	}
	// In-memory replay still serves everything that reached disk.
	if j.Len() != 2 {
		t.Fatalf("Len = %d after failure; want the 2 durable records", j.Len())
	}
	if _, ok := j.Get(key(0)); !ok {
		t.Fatal("pre-failure record lost from reads")
	}
	j.Close()

	// The rollback truncated the torn frame: a clean reopen recovers the
	// two records with no torn tail at all.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatalf("reopen after rollback: %v", err)
	}
	defer j2.Close()
	if n, torn := j2.Recovered(); n != 2 || torn {
		t.Fatalf("Recovered = (%d, %v); want (2, false): rollback should have removed the tear", n, torn)
	}
}

// TestAppendFailureTornTailSurvivesFailedRollback: when the rollback
// truncate also fails, the torn frame stays on disk — and reopen still
// recovers cleanly, because a torn tail is exactly what recovery removes.
func TestAppendFailureTornTailSurvivesFailedRollback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	ff := iofault.New(nil, iofault.Plan{FailWriteAt: 4, ShortWrite: true, FailTruncate: true})
	j := seedJournal(t, ff, path, 2)
	if err := j.Append("doomed", []byte("x")); !errors.Is(err, journal.ErrWriteFailed) {
		t.Fatalf("failing append = %v", err)
	}
	j.Close()

	// Scan sees the tear (proof the rollback really was blocked)...
	rep, err := journal.Scan(path, nil)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !rep.TornTail || rep.Records != 2 {
		t.Fatalf("scan = %+v; want torn tail after 2 records", rep)
	}
	// ...and Open discards it.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if n, torn := j2.Recovered(); n != 2 || !torn {
		t.Fatalf("Recovered = (%d, %v); want (2, true)", n, torn)
	}
	if err := j2.Append("fresh", []byte("z")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestFsyncFailureSticky: the write lands but fsync fails — the record
// was never acknowledged durable, so the journal rolls it back and goes
// read-only just like a failed write.
func TestFsyncFailureSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	// Syncs: 1 = header, 2-3 = records, 4 fails (the 3rd record's).
	ff := iofault.New(nil, iofault.Plan{FailSyncAt: 4})
	j := seedJournal(t, ff, path, 2)
	err := j.Append("doomed", []byte("x"))
	if !errors.Is(err, journal.ErrWriteFailed) || !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("append with failing fsync = %v", err)
	}
	if j.Len() != 2 {
		t.Fatalf("unacknowledged record visible: Len = %d", j.Len())
	}
	j.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if n, _ := j2.Recovered(); n != 2 {
		t.Fatalf("Recovered = %d; the unsynced record must not survive", n)
	}
}

// TestENOSPCDegrades: a full disk stops the journal mid-run; what was
// durably appended before the budget ran out replays on a clean reopen.
func TestENOSPCDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	// Measure how much a header + 2 records cost, then budget for that.
	probe := seedJournal(t, iofault.Disk, filepath.Join(dir, "probe"), 2)
	probe.Close()
	fi, err := iofault.Disk.Open(filepath.Join(dir, "probe"))
	if err != nil {
		t.Fatal(err)
	}
	size, err := fi.Seek(0, 2)
	fi.Close()
	if err != nil {
		t.Fatal(err)
	}

	ff := iofault.New(nil, iofault.Plan{ByteBudget: size + 1})
	j, err := journal.OpenFS(ff, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetMeta(map[string]string{"layout": "L"}); err != nil {
		t.Fatal(err)
	}
	wrote := 0
	var aerr error
	for i := 0; i < 5; i++ {
		if aerr = j.Append(key(i), []byte{byte('a' + i)}); aerr != nil {
			break
		}
		wrote++
	}
	if !errors.Is(aerr, syscall.ENOSPC) || !errors.Is(aerr, journal.ErrWriteFailed) {
		t.Fatalf("append on full disk = %v; want ErrWriteFailed wrapping ENOSPC", aerr)
	}
	if wrote != 2 {
		t.Fatalf("wrote %d records before ENOSPC; want 2", wrote)
	}
	j.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	defer j2.Close()
	if n, _ := j2.Recovered(); n != wrote {
		t.Fatalf("Recovered = %d; want the %d durable records", n, wrote)
	}
}

// TestEIOOnReopen: an injected open failure surfaces as an error (never a
// silently empty journal), and the same file opens fine once the fault
// clears.
func TestEIOOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	seedJournal(t, iofault.Disk, path, 3).Close()

	ff := iofault.New(nil, iofault.Plan{FailOpenAt: 1})
	if _, err := journal.OpenFS(ff, path); !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("faulty reopen = %v; want ErrInjected", err)
	}
	j, err := journal.Open(path)
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer j.Close()
	if n, _ := j.Recovered(); n != 3 {
		t.Fatalf("Recovered = %d, want 3", n)
	}
}

// TestSetMetaAfterFailure: the sticky failure also guards the header
// path.
func TestSetMetaAfterFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	ff := iofault.New(nil, iofault.Plan{FailWriteAt: 1})
	j, err := journal.OpenFS(ff, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.SetMeta(map[string]string{"layout": "L"}); !errors.Is(err, journal.ErrWriteFailed) {
		t.Fatalf("SetMeta on failing write = %v", err)
	}
	if err := j.SetMeta(map[string]string{"layout": "L"}); !errors.Is(err, journal.ErrWriteFailed) {
		t.Fatalf("second SetMeta = %v; want sticky ErrWriteFailed", err)
	}
}
