// Package journal implements an append-only, crash-safe record log for
// long-running sweeps. Each record is one completed unit of work keyed by
// an opaque string (the explore engine keys on the variant machine's
// fingerprint); a sweep that dies mid-run reopens its journal and replays
// the completed records instead of recomputing them.
//
// Durability model: every Append writes one framed line and fsyncs before
// returning, so a record is either fully on disk or not in the journal at
// all. Each line carries a CRC32 of its payload; Open tolerates a torn
// tail (the one partial line an interrupted write can leave) by truncating
// the file back to the last intact record — replay never yields a corrupt
// or partial record.
//
// File format (version 1), one line per entry:
//
//	<crc32c-hex> <json>\n
//
// The first line is a header {"magic","version","meta"} binding the
// journal to the work that produced it (the explore engine stores a layout
// fingerprint in meta, refusing to resume a journal written for a
// different workload). Every following line is a record {"key","payload"}.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"skope/internal/iofault"
)

const (
	magic   = "skope-journal"
	version = 1
)

// ErrMetaMismatch marks an attempt to reuse a journal under a different
// meta binding than it was created with — resuming a sweep of workload A
// from workload B's journal, or after the layout changed.
var ErrMetaMismatch = errors.New("journal meta mismatch")

// ErrNoMeta marks an Append on a journal whose header has not been
// written yet (SetMeta must run first).
var ErrNoMeta = errors.New("journal meta not set")

// ErrWriteFailed marks a journal whose append path failed once — a write
// or fsync error. The journal goes read-only: the failed frame is rolled
// back (best effort), everything recovered or appended before the failure
// stays replayable, and every later Append or SetMeta refuses with this
// error. Appending past a failed write would bury a torn frame mid-file,
// turning recoverable damage into fatal corruption; and after a failed
// fsync the kernel may have dropped the very pages it acknowledged, so
// the only safe stance is to stop trusting the file with new records.
var ErrWriteFailed = errors.New("journal write failed; appends disabled")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type header struct {
	Magic   string            `json:"magic"`
	Version int               `json:"version"`
	Meta    map[string]string `json:"meta,omitempty"`
}

type record struct {
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// Journal is an open journal file. It is safe for concurrent use.
type Journal struct {
	mu        sync.Mutex
	f         iofault.File
	path      string
	meta      map[string]string
	records   map[string][]byte
	order     []string // distinct keys in first-append order
	recovered int
	truncated bool
	size      int64 // offset just past the last line known intact on disk
	failed    error // sticky after a write/fsync failure: appends disabled
}

// Open opens (creating if absent) the journal at path and recovers its
// contents: the meta header and every intact record. A torn final line —
// the footprint of a crash mid-Append — is discarded by truncating the
// file back to the last intact record; corruption anywhere before the
// tail is an error, since an fsync-per-record log cannot produce it.
func Open(path string) (*Journal, error) {
	return OpenFS(iofault.Disk, path)
}

// OpenFS is Open through an explicit file abstraction — the seam the
// disk-fault chaos suite injects through. Production callers use Open
// (equivalently, OpenFS with iofault.Disk); nil falls back to the disk.
func OpenFS(fsys iofault.FS, path string) (*Journal, error) {
	if fsys == nil {
		fsys = iofault.Disk
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path, records: make(map[string][]byte)}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the file line by line, stopping at the first damaged
// line. If the damage is anything but a torn tail, it is corruption.
func (j *Journal) recover() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	r := bufio.NewReaderSize(j.f, 1<<16)
	var good int64 // offset just past the last intact line
	lineNo := 0
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
		payload, perr := parseLine(line)
		if perr != nil || err == io.EOF {
			// Damaged or unterminated line: legitimate only as the very
			// last line (a torn Append) after an intact header. A damaged
			// first line means this is not (or no longer is) a journal —
			// refuse rather than truncate someone else's file.
			if lineNo == 0 {
				return fmt.Errorf("journal %s: not a journal (bad or torn header); remove the file to start fresh", j.path)
			}
			if _, after := r.ReadByte(); after != io.EOF {
				return fmt.Errorf("journal %s: line %d: corrupt record before end of file: %v",
					j.path, lineNo+1, perr)
			}
			j.truncated = true
			break
		}
		lineNo++
		if lineNo == 1 {
			var h header
			if uerr := json.Unmarshal(payload, &h); uerr != nil || h.Magic != magic {
				return fmt.Errorf("journal %s: not a journal (bad header)", j.path)
			}
			if h.Version != version {
				return fmt.Errorf("journal %s: unsupported version %d (want %d)", j.path, h.Version, version)
			}
			j.meta = h.Meta
		} else {
			var rec record
			if uerr := json.Unmarshal(payload, &rec); uerr != nil {
				return fmt.Errorf("journal %s: line %d: bad record: %w", j.path, lineNo, uerr)
			}
			if _, seen := j.records[rec.Key]; !seen {
				j.order = append(j.order, rec.Key)
			}
			j.records[rec.Key] = rec.Payload
			j.recovered++
		}
		good += int64(len(line))
	}
	if j.truncated {
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("journal %s: truncating torn tail: %w", j.path, err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal %s: %w", j.path, err)
		}
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	j.size = good
	return nil
}

// parseLine validates one framed line and returns its JSON payload.
func parseLine(line []byte) ([]byte, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	sp := bytes.IndexByte(line, ' ')
	if sp != 8 {
		return nil, errors.New("malformed frame")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, errors.New("malformed checksum")
	}
	payload := line[9:]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// writeLine frames, writes and fsyncs one payload. A write or fsync
// failure permanently disables the append path (ErrWriteFailed): the
// frame is rolled back to the last known-good offset so the damage is
// not buried under later appends, and replay of everything already
// durable stays available. Called with j.mu held.
func (j *Journal) writeLine(payload []byte) error {
	if j.failed != nil {
		return fmt.Errorf("journal %s: %w", j.path, j.failed)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%08x ", crc32.Checksum(payload, crcTable))
	buf.Write(payload)
	buf.WriteByte('\n')
	_, werr := j.f.Write(buf.Bytes())
	if werr == nil {
		if serr := j.f.Sync(); serr != nil {
			werr = fmt.Errorf("fsync: %w", serr)
		}
	}
	if werr != nil {
		// Best-effort rollback: cut the file back to the last line known
		// intact. If the truncate itself fails, the torn frame stays on
		// disk — still recoverable, because a torn *tail* is exactly what
		// Open and Scan are built to discard.
		if terr := j.f.Truncate(j.size); terr == nil {
			_, _ = j.f.Seek(j.size, io.SeekStart)
			_ = j.f.Sync()
		}
		j.failed = fmt.Errorf("%w: %w", ErrWriteFailed, werr)
		return fmt.Errorf("journal %s: %w", j.path, j.failed)
	}
	j.size += int64(buf.Len())
	return nil
}

// Err returns the sticky failure that put the journal into read-only
// mode, or nil while the append path is healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Meta returns the journal's meta binding (nil until SetMeta has run or a
// header was recovered).
func (j *Journal) Meta() map[string]string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.meta == nil {
		return nil
	}
	out := make(map[string]string, len(j.meta))
	for k, v := range j.meta {
		out[k] = v
	}
	return out
}

// SetMeta binds the journal to its producer. On a fresh journal it writes
// the header; on a recovered one it verifies the stored meta matches and
// returns ErrMetaMismatch (with the differing key) if not.
func (j *Journal) SetMeta(meta map[string]string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.meta != nil {
		for k, v := range meta {
			if got := j.meta[k]; got != v {
				return fmt.Errorf("journal %s: key %q is %q, want %q: %w", j.path, k, got, v, ErrMetaMismatch)
			}
		}
		if len(j.meta) != len(meta) {
			return fmt.Errorf("journal %s: recovered %d meta keys, want %d: %w", j.path, len(j.meta), len(meta), ErrMetaMismatch)
		}
		return nil
	}
	payload, err := json.Marshal(header{Magic: magic, Version: version, Meta: meta})
	if err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if err := j.writeLine(payload); err != nil {
		return err
	}
	j.meta = make(map[string]string, len(meta))
	for k, v := range meta {
		j.meta[k] = v
	}
	return nil
}

// Append durably records one completed unit of work: the line is on disk
// (fsynced) when Append returns nil. Appending a key again overwrites its
// replayed value (last record wins), which keeps Append idempotent for
// deterministic work.
func (j *Journal) Append(key string, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.meta == nil {
		return fmt.Errorf("journal %s: %w", j.path, ErrNoMeta)
	}
	p, err := json.Marshal(record{Key: key, Payload: payload})
	if err != nil {
		return fmt.Errorf("journal %s: %w", j.path, err)
	}
	if err := j.writeLine(p); err != nil {
		return err
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	if _, seen := j.records[key]; !seen {
		j.order = append(j.order, key)
	}
	j.records[key] = cp
	return nil
}

// Entry is one journal record as returned by Entries: its key and the
// latest payload appended under it.
type Entry struct {
	Key     string
	Payload []byte
}

// Entries returns a copy of every intact record in original completion
// order: distinct keys appear in the order they were first appended
// (recovered records first, in file order), each carrying its most recent
// payload. This is the ordered counterpart of Replay — resuming consumers
// (the skoped daemon streaming a dead session's results) use it to replay
// work in the order it originally finished.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, 0, len(j.order))
	for _, k := range j.order {
		v := j.records[k]
		cp := make([]byte, len(v))
		copy(cp, v)
		out = append(out, Entry{Key: k, Payload: cp})
	}
	return out
}

// Get returns a copy of the latest payload appended under key, if any.
// It is the point-lookup counterpart of Replay, for consumers (the result
// store) that address individual records rather than replaying the log.
func (j *Journal) Get(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.records[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

// Replay returns a copy of every intact record currently in the journal
// (recovered at Open plus any appended since), keyed as appended. The map
// carries no ordering; use Entries for original completion order.
func (j *Journal) Replay() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.records))
	for k, v := range j.records {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// Len returns the number of distinct record keys in the journal.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Recovered returns how many records Open replayed from disk, and whether
// a torn tail was discarded during recovery.
func (j *Journal) Recovered() (records int, tornTail bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered, j.truncated
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file. Records already appended are durable
// regardless — Close exists for descriptor hygiene, not flushing.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
