package experiments

import (
	"context"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/profile"
	"skope/internal/report"
)

// HitRateSensitivity sweeps the model's constant cache-hit assumption over
// the range the paper quotes for real workloads (0.75–0.95, fixed at 0.85
// in all its experiments; §V-A footnote) and reports the SORD top-10
// selection quality on BG/Q at each setting. The paper asserts the
// constant "is not tuned specifically for benchmarks presented in this
// paper"; this experiment quantifies how much tuning could matter.
func HitRateSensitivity(c *Context) (*report.Series, error) {
	ev, err := c.Eval("sord", "bgq")
	if err != nil {
		return nil, err
	}
	run, err := c.Run("sord")
	if err != nil {
		return nil, err
	}
	s := report.NewSeries(
		"Sensitivity: SORD/BG-Q selection quality vs assumed cache hit ratio",
		"hit-ratio", "quality")
	for _, hit := range []float64{0.75, 0.80, 0.85, 0.90, 0.95} {
		m := hw.BGQ()
		m.HitL1, m.HitLLC = hit, hit
		analysis, err := hotspot.Analyze(context.Background(), run.BET, hw.NewModel(m), run.Libs)
		if err != nil {
			return nil, err
		}
		modl := profile.FromAnalysis(analysis)
		q := profile.SelectionQuality(ev.Prof, modl.TopIDs(10))
		s.Add(hit, q)
	}
	return s, nil
}
