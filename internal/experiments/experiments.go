// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the simulator substrate. Each experiment has a
// driver function returning a renderable artifact; cmd/skopebench prints
// them all and bench_test.go exposes one testing.B benchmark per artifact.
//
// Artifact index (see DESIGN.md for the full mapping):
//
//	FIG2  pedagogical skeleton / BST / BET views
//	FIG3  individual and merged hot paths for the pedagogical example
//	TAB1  top-10 hot spots, Prof vs Modl, both machines, five benchmarks
//	TAB2  CFD top-10 hot spots with coverage
//	FIG4  SORD hot-spot selection quality incl. cross-machine portability
//	FIG5  SORD coverage curves on Xeon
//	FIG6  per-spot compute/memory/overlap breakdown, SORD on BG/Q
//	FIG7  same on Xeon
//	FIG8  measured issue rate and instructions-per-L1-miss per hot spot
//	FIG9  SORD hot path on BG/Q
//	FIG10..FIG13  coverage curves for CFD, SRAD, CHARGEI, STASSUIJ
//	BETSZ BET-size-to-source ratios (§IV-B claim)
//	QAVG  selection quality for all ten workload x machine cases
//	ABL   ablations of the paper's two known error sources (divisions,
//	      vectorization)
package experiments

import (
	"context"
	"fmt"
	"strings"

	"skope/internal/hotpath"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/profile"
	"skope/internal/report"
	"skope/internal/workloads"
)

// Context caches prepared runs and machine evaluations so a sequence of
// experiments reuses the expensive profiling and simulation passes.
type Context struct {
	// Scale selects workload input sizes.
	Scale workloads.Scale
	// Crit is the hot-spot selection criteria (ScaledCriteria by default).
	Crit hotspot.Criteria

	runs  map[string]*pipeline.Run
	evals map[string]*pipeline.Eval
}

// NewContext returns a context at the given scale with scaled criteria.
func NewContext(s workloads.Scale) *Context {
	return &Context{
		Scale: s,
		Crit:  hotspot.ScaledCriteria(),
		runs:  map[string]*pipeline.Run{},
		evals: map[string]*pipeline.Eval{},
	}
}

// Machines returns the two paper machines keyed by short name.
func Machines() map[string]*hw.Machine {
	return map[string]*hw.Machine{"bgq": hw.BGQ(), "xeon": hw.XeonE5()}
}

// Run returns the prepared pipeline run for a benchmark, cached.
func (c *Context) Run(name string) (*pipeline.Run, error) {
	if r, ok := c.runs[name]; ok {
		return r, nil
	}
	r, err := pipeline.PrepareByName(context.Background(), name, c.Scale)
	if err != nil {
		return nil, err
	}
	c.runs[name] = r
	return r, nil
}

// Eval returns the cached evaluation of a benchmark on a machine ("bgq" or
// "xeon").
func (c *Context) Eval(name, mach string) (*pipeline.Eval, error) {
	key := name + "/" + mach
	if e, ok := c.evals[key]; ok {
		return e, nil
	}
	m, ok := Machines()[mach]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown machine %q", mach)
	}
	run, err := c.Run(name)
	if err != nil {
		return nil, err
	}
	e, err := pipeline.Evaluate(context.Background(), run, m, pipeline.WithCriteria(c.Crit))
	if err != nil {
		return nil, err
	}
	c.evals[key] = e
	return e, nil
}

// Fig2 renders the pedagogical example's three views: the code skeleton,
// its Block Skeleton Tree, and the Bayesian Execution Tree with contexts
// and probabilities (the paper's Figure 2).
func Fig2(c *Context) (string, error) {
	prog, env, bet, err := pedagogicalBET()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("--- Figure 2(a): code skeleton ---\n")
	b.WriteString(formatSkeleton(prog))
	b.WriteString("\n--- Figure 2(b): block skeleton tree ---\n")
	b.WriteString(bet.Tree.Dump())
	fmt.Fprintf(&b, "\n--- Figure 2(c): Bayesian execution tree (input %s) ---\n", envString(env))
	b.WriteString(bet.Dump())
	fmt.Fprintf(&b, "\nBET nodes: %d, source statements: %d, size ratio: %.2f\n",
		bet.NumNodes(), bet.Tree.Prog.StaticStatements(), bet.SizeRatio())
	return b.String(), nil
}

// Fig3 renders the pedagogical example's individual hot-spot paths and the
// merged hot path (the paper's Figure 3).
func Fig3(c *Context) (string, error) {
	_, _, bet, err := pedagogicalBET()
	if err != nil {
		return "", err
	}
	libs, err := libModel()
	if err != nil {
		return "", err
	}
	a, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), libs)
	if err != nil {
		return "", err
	}
	sel := hotspot.Select(a, hotspot.Criteria{TimeCoverage: 0.95, CodeLeanness: 1, MaxSpots: 3})
	var b strings.Builder
	b.WriteString("--- Figure 3(a): individual paths per hot spot ---\n")
	for _, path := range hotpath.Individual(sel.Spots) {
		labels := make([]string, len(path))
		for i, n := range path {
			labels[i] = n.Label()
		}
		fmt.Fprintf(&b, "%s\n", strings.Join(labels, " -> "))
	}
	b.WriteString("\n--- Figure 3(b): merged hot path ---\n")
	b.WriteString(hotpath.Extract(bet.Root, sel.Spots).Render())
	return b.String(), nil
}

// Table1 reproduces Table I: the top-10 hot spots of every benchmark on
// both machines, measured (Prof) versus model-projected (Modl), with match
// markers. The paper's observation that hot-spot lists differ across
// machines is reported in the companion portability table (Fig4 for SORD).
func Table1(c *Context) (*report.Table, error) {
	t := &report.Table{
		Title: "Table I: top-10 hot spots, Prof vs Modl (both machines)",
		Header: []string{
			"bench", "rank",
			"Prof BG/Q", "Modl BG/Q", "=",
			"Prof Xeon", "Modl Xeon", "=",
		},
	}
	for _, name := range workloads.Names() {
		q, err := c.Eval(name, "bgq")
		if err != nil {
			return nil, err
		}
		x, err := c.Eval(name, "xeon")
		if err != nil {
			return nil, err
		}
		profQ, modlQ := q.Prof.TopIDs(10), q.Modl.TopIDs(10)
		profX, modlX := x.Prof.TopIDs(10), x.Modl.TopIDs(10)
		n := maxLen(profQ, modlQ, profX, modlX)
		for i := 0; i < n; i++ {
			t.AddRow(
				name, i+1,
				at(profQ, i), at(modlQ, i), match(profQ, modlQ, i),
				at(profX, i), at(modlX, i), match(profX, modlX, i),
			)
		}
	}
	return t, nil
}

// Table1Portability reports the cross-machine hot-spot overlap per
// benchmark (the paper's §I SORD observation: only 4 of the top 10 shared).
func Table1Portability(c *Context) (*report.Table, error) {
	t := &report.Table{
		Title:  "Cross-machine portability: top-10 overlap between BG/Q and Xeon (measured)",
		Header: []string{"bench", "shared of top-10", "same order"},
	}
	for _, name := range workloads.Names() {
		q, err := c.Eval(name, "bgq")
		if err != nil {
			return nil, err
		}
		x, err := c.Eval(name, "xeon")
		if err != nil {
			return nil, err
		}
		a, b := q.Prof.TopIDs(10), x.Prof.TopIDs(10)
		same := "yes"
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				same = "no"
				break
			}
		}
		t.AddRow(name, profile.TopOverlap(a, b), same)
	}
	return t, nil
}

// Table2 reproduces Table II: the CFD top-10 hot spots with projected and
// measured coverage.
func Table2(c *Context) (*report.Table, error) {
	ev, err := c.Eval("cfd", "bgq")
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Table II: CFD top-10 hot spots on BG/Q",
		Header: []string{"rank", "Modl block", "Modl cov%", "meas cov%", "meas rank"},
	}
	for i, id := range ev.Modl.TopIDs(10) {
		t.AddRow(i+1, id,
			fmt.Sprintf("%.2f", 100*ev.Modl.Coverage(id)),
			fmt.Sprintf("%.2f", 100*ev.Prof.Coverage(id)),
			ev.Prof.RankOf(id))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: SORD hot-spot selection quality on BG/Q,
// including the cross-machine baselines Prof.Q(x) (Xeon-derived spots used
// on BG/Q) and Prof.X(q): empirical selections do not transfer while the
// model's do.
func Fig4(c *Context) (*report.Table, error) {
	q, err := c.Eval("sord", "bgq")
	if err != nil {
		return nil, err
	}
	x, err := c.Eval("sord", "xeon")
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Figure 4: SORD selection quality (top-10 selections)",
		Header: []string{"selection", "evaluated on", "quality"},
	}
	add := func(label, on string, meas *profile.Ranked, sel []string) {
		t.AddRow(label, on, fmt.Sprintf("%.3f", profile.SelectionQuality(meas, sel)))
	}
	add("Prof.Q (measured BG/Q)", "BG/Q", q.Prof, q.Prof.TopIDs(10))
	add("Modl.Q (model BG/Q)", "BG/Q", q.Prof, q.Modl.TopIDs(10))
	add("Prof.Q(x) (measured Xeon)", "BG/Q", q.Prof, x.Prof.TopIDs(10))
	add("Prof.X (measured Xeon)", "Xeon", x.Prof, x.Prof.TopIDs(10))
	add("Modl.X (model Xeon)", "Xeon", x.Prof, x.Modl.TopIDs(10))
	add("Prof.X(q) (measured BG/Q)", "Xeon", x.Prof, q.Prof.TopIDs(10))
	return t, nil
}

// CoverageCurves builds the Prof / Modl(p) / Modl(m) cumulative coverage
// curves of the paper's Figures 5 and 10-13 for one benchmark and machine:
//
//	Prof    — measured coverage of the measured top-k selection
//	Modl(p) — projected coverage of the model's top-k selection
//	Modl(m) — measured coverage of the model's top-k selection
func CoverageCurves(c *Context, bench, mach string, title string) (*report.Series, error) {
	ev, err := c.Eval(bench, mach)
	if err != nil {
		return nil, err
	}
	s := report.NewSeries(title, "spots", "Prof", "Modl(p)", "Modl(m)")
	profIDs := ev.Prof.TopIDs(10)
	modlIDs := ev.Modl.TopIDs(10)
	profCurve := ev.Prof.CoverageCurve(profIDs)
	modlP := ev.Modl.CoverageCurve(modlIDs)
	modlM := ev.Prof.CoverageCurve(modlIDs)
	n := len(profCurve)
	if len(modlP) < n {
		n = len(modlP)
	}
	for i := 0; i < n; i++ {
		s.Add(float64(i+1), profCurve[i], modlP[i], modlM[i])
	}
	return s, nil
}

// Fig5 is SORD's coverage curves on Xeon.
func Fig5(c *Context) (*report.Series, error) {
	return CoverageCurves(c, "sord", "xeon", "Figure 5: SORD coverage on Xeon")
}

// Fig10 .. Fig13 are the per-benchmark coverage curves on BG/Q.
func Fig10(c *Context) (*report.Series, error) {
	return CoverageCurves(c, "cfd", "bgq", "Figure 10: CFD coverage on BG/Q")
}

// Fig11 is SRAD's coverage curves on BG/Q.
func Fig11(c *Context) (*report.Series, error) {
	return CoverageCurves(c, "srad", "bgq", "Figure 11: SRAD coverage on BG/Q")
}

// Fig12 is CHARGEI's coverage curves on BG/Q.
func Fig12(c *Context) (*report.Series, error) {
	return CoverageCurves(c, "chargei", "bgq", "Figure 12: CHARGEI coverage on BG/Q")
}

// Fig13 is STASSUIJ's coverage curves on BG/Q.
func Fig13(c *Context) (*report.Series, error) {
	return CoverageCurves(c, "stassuij", "bgq", "Figure 13: STASSUIJ coverage on BG/Q")
}

// Breakdown reproduces Figures 6 and 7: the model's per-hot-spot split of
// time into compute-only, overlapped, and memory-only shares.
func Breakdown(c *Context, mach, title string) (*report.Table, error) {
	ev, err := c.Eval("sord", mach)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  title,
		Header: []string{"rank", "block", "comp-only%", "overlap%", "mem-only%", "bound"},
	}
	for i, blk := range ev.Analysis.TopN(10) {
		if blk.T <= 0 {
			continue
		}
		compOnly := (blk.Tc - blk.To) / blk.T
		memOnly := (blk.Tm - blk.To) / blk.T
		overlap := blk.To / blk.T
		bound := "compute"
		if blk.MemoryBound {
			bound = "memory"
		}
		t.AddRow(i+1, blk.BlockID,
			fmt.Sprintf("%.1f", 100*compOnly),
			fmt.Sprintf("%.1f", 100*overlap),
			fmt.Sprintf("%.1f", 100*memOnly),
			bound)
	}
	return t, nil
}

// Fig6 is the SORD BG/Q breakdown.
func Fig6(c *Context) (*report.Table, error) {
	return Breakdown(c, "bgq", "Figure 6: SORD per-spot time breakdown on BG/Q (model)")
}

// Fig7 is the SORD Xeon breakdown (the paper observes a larger memory
// share than on BG/Q).
func Fig7(c *Context) (*report.Table, error) {
	return Breakdown(c, "xeon", "Figure 7: SORD per-spot time breakdown on Xeon (model)")
}

// Fig8 reproduces Figure 8: measured issue rate and instructions per L1
// miss for SORD's measured top-10 spots on BG/Q — the profile-side signals
// that correlate with the model's memory-bound verdicts.
func Fig8(c *Context) (*report.Table, error) {
	ev, err := c.Eval("sord", "bgq")
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:  "Figure 8: SORD measured issue rate and insts/L1-miss on BG/Q",
		Header: []string{"rank", "block", "insts/cycle", "insts per L1 miss"},
	}
	for i, b := range ev.Sim.TopN(10) {
		t.AddRow(i+1, b.ID,
			fmt.Sprintf("%.3f", b.IssueRate()),
			fmt.Sprintf("%.1f", b.InstsPerL1Miss()))
	}
	return t, nil
}

// Fig9 renders SORD's merged hot path on BG/Q (the paper's Figure 9),
// annotated with iteration counts, probabilities and contexts.
func Fig9(c *Context) (string, error) {
	ev, err := c.Eval("sord", "bgq")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 9: SORD hot path on BG/Q\n")
	b.WriteString(ev.HotPath.Render())
	return b.String(), nil
}

// BETSizes reports the BET-to-source size ratio per benchmark (§IV-B: the
// paper reports an average of 0.88, never exceeding 2).
func BETSizes(c *Context) (*report.Table, error) {
	t := &report.Table{
		Title:  "BET size vs source statements (paper: avg 0.88, max < 2)",
		Header: []string{"bench", "BET nodes", "source stmts", "ratio"},
	}
	sum := 0.0
	for _, name := range workloads.Names() {
		run, err := c.Run(name)
		if err != nil {
			return nil, err
		}
		r := run.BET.SizeRatio()
		sum += r
		t.AddRow(name, run.BET.NumNodes(), run.BET.Tree.Prog.StaticStatements(),
			fmt.Sprintf("%.2f", r))
	}
	t.AddRow("average", "", "", fmt.Sprintf("%.2f", sum/float64(len(workloads.Names()))))
	return t, nil
}

// QualitySummary reports the selection quality of every benchmark x machine
// case (paper §VIII: average 95.8%, never below 80%).
func QualitySummary(c *Context) (*report.Table, error) {
	t := &report.Table{
		Title:  "Selection quality, all cases (paper: avg 0.958, min 0.80)",
		Header: []string{"bench", "machine", "quality(top-10)", "quality(criteria)"},
	}
	sum, n := 0.0, 0
	for _, name := range workloads.Names() {
		for _, mach := range []string{"bgq", "xeon"} {
			ev, err := c.Eval(name, mach)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, ev.Machine.Name,
				fmt.Sprintf("%.3f", ev.Quality),
				fmt.Sprintf("%.3f", ev.SelectionQuality))
			sum += ev.Quality
			n++
		}
	}
	t.AddRow("average", "", fmt.Sprintf("%.3f", sum/float64(n)), "")
	return t, nil
}

// Ablations quantifies the paper's two diagnosed error sources by enabling
// the corresponding model extension and reporting the per-spot projection
// shift: divisions for CFD's velocity block (§VII-B), vectorization for
// STASSUIJ's spmm block.
func Ablations(c *Context) (*report.Table, error) {
	t := &report.Table{
		Title:  "Ablations: error sources diagnosed in the paper",
		Header: []string{"case", "block", "base cov%", "aware cov%", "measured cov%"},
	}
	// CFD divisions.
	cfdRun, err := c.Run("cfd")
	if err != nil {
		return nil, err
	}
	base, err := c.Eval("cfd", "bgq")
	if err != nil {
		return nil, err
	}
	divEval, err := pipeline.Evaluate(context.Background(), cfdRun, hw.BGQ(),
		pipeline.WithModelFunc(hw.NewDivAwareModel), pipeline.WithCriteria(c.Crit))
	if err != nil {
		return nil, err
	}
	velID := blockOfFunc(base, "compute_velocity")
	if velID != "" {
		t.AddRow("CFD divisions", velID,
			fmt.Sprintf("%.2f", 100*base.Modl.Coverage(velID)),
			fmt.Sprintf("%.2f", 100*divEval.Modl.Coverage(velID)),
			fmt.Sprintf("%.2f", 100*base.Prof.Coverage(velID)))
	}
	// STASSUIJ vectorization.
	stRun, err := c.Run("stassuij")
	if err != nil {
		return nil, err
	}
	stBase, err := c.Eval("stassuij", "bgq")
	if err != nil {
		return nil, err
	}
	vecEval, err := pipeline.Evaluate(context.Background(), stRun, hw.BGQ(),
		pipeline.WithModelFunc(hw.NewVectorAwareModel), pipeline.WithCriteria(c.Crit))
	if err != nil {
		return nil, err
	}
	spmmID := blockOfFunc(stBase, "spmm")
	if spmmID != "" {
		t.AddRow("STASSUIJ vectorization", spmmID,
			fmt.Sprintf("%.2f", 100*stBase.Modl.Coverage(spmmID)),
			fmt.Sprintf("%.2f", 100*vecEval.Modl.Coverage(spmmID)),
			fmt.Sprintf("%.2f", 100*stBase.Prof.Coverage(spmmID)))
	}
	return t, nil
}

// blockOfFunc returns the hottest non-library modeled block of a function.
func blockOfFunc(ev *pipeline.Eval, fn string) string {
	for _, b := range ev.Analysis.Blocks {
		if b.FuncName == fn && !b.IsLib {
			return b.BlockID
		}
	}
	return ""
}

func at(ids []string, i int) string {
	if i < len(ids) {
		return ids[i]
	}
	return "-"
}

func match(a, b []string, i int) string {
	if i < len(a) && i < len(b) && a[i] == b[i] {
		return "*"
	}
	return ""
}

func maxLen(lists ...[]string) int {
	n := 0
	for _, l := range lists {
		if len(l) > n {
			n = len(l)
		}
	}
	return n
}

func envString(env map[string]float64) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	// deterministic small set; simple insertion sort
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%g", k, env[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
