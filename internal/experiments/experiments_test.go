package experiments

import (
	"fmt"
	"strings"
	"testing"

	"skope/internal/report"
	"skope/internal/workloads"
)

// sharedCtx caches runs/evals across the experiment tests.
var sharedCtx = NewContext(workloads.ScaleTest)

func TestFig2(t *testing.T) {
	out, err := Fig2(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2(a)", "Figure 2(b)", "Figure 2(c)", "def main", "size ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}
}

func TestFig3(t *testing.T) {
	out, err := Fig3(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "->") || !strings.Contains(out, "HOT SPOT") {
		t.Errorf("Fig3 output incomplete:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5*5 {
		t.Errorf("Table1 has only %d rows", len(tab.Rows))
	}
	s := tab.String()
	for _, name := range workloads.Names() {
		if !strings.Contains(s, name) {
			t.Errorf("Table1 missing %s", name)
		}
	}
	// Matches must exist (the model gets most ranks right).
	if !strings.Contains(s, "*") {
		t.Error("Table1 has no rank matches at all")
	}
}

func TestTable1Portability(t *testing.T) {
	tab, err := Table1Portability(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("portability rows = %d", len(tab.Rows))
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || !strings.Contains(tab.String(), "cfd") && !strings.Contains(tab.String(), "compute") {
		t.Errorf("Table2 suspicious:\n%s", tab)
	}
}

func TestFig4QualityOrdering(t *testing.T) {
	tab, err := Fig4(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Fig4 rows = %d", len(tab.Rows))
	}
	// Row 0 is Prof.Q on itself: quality exactly 1.
	if tab.Rows[0][2] != "1.000" {
		t.Errorf("Prof.Q self-quality = %s", tab.Rows[0][2])
	}
}

func TestCoverageCurveFigures(t *testing.T) {
	figs := map[string]func(*Context) (*report.Series, error){
		"fig5":  Fig5,
		"fig10": Fig10,
		"fig11": Fig11,
		"fig12": Fig12,
		"fig13": Fig13,
	}
	for name, f := range figs {
		s, err := f(sharedCtx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.X) == 0 {
			t.Fatalf("%s: empty series", name)
		}
		// Curves must be monotone nondecreasing and within [0, 1.01].
		for col := 0; col < 3; col++ {
			prev := 0.0
			for i, v := range s.Y[col] {
				if v < prev-1e-9 || v > 1.01 {
					t.Errorf("%s col %d not a valid coverage curve at %d: %g", name, col, i, v)
				}
				prev = v
			}
		}
	}
}

func TestFig6And7MemoryShareGrowsOnXeon(t *testing.T) {
	f6, err := Fig6(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) == 0 || len(f7.Rows) == 0 {
		t.Fatal("empty breakdowns")
	}
	memShare := func(rows [][]string) float64 {
		// Column 4 is mem-only%; average over spots.
		sum := 0.0
		for _, r := range rows {
			var v float64
			_, _ = sscanf(r[4], &v)
			sum += v
		}
		return sum / float64(len(rows))
	}
	q, x := memShare(f6.Rows), memShare(f7.Rows)
	if x <= q {
		t.Errorf("Xeon mem-only share (%.1f%%) not > BG/Q (%.1f%%), contra Fig.7", x, q)
	}
}

func TestFig8(t *testing.T) {
	tab, err := Fig8(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Fig8")
	}
}

func TestFig9(t *testing.T) {
	out, err := Fig9(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "HOT SPOT") || !strings.Contains(out, "main") {
		t.Errorf("Fig9 incomplete:\n%s", out)
	}
}

func TestBETSizes(t *testing.T) {
	tab, err := BETSizes(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Five benchmarks + average row.
	if len(tab.Rows) != 6 {
		t.Fatalf("BETSizes rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows[:5] {
		var ratio float64
		if _, err := sscanf(row[3], &ratio); err != nil {
			t.Fatalf("bad ratio cell %q", row[3])
		}
		if ratio <= 0 || ratio > 2 {
			t.Errorf("%s: BET size ratio %.2f outside (0, 2]", row[0], ratio)
		}
	}
}

func TestQualitySummaryMeetsPaperClaims(t *testing.T) {
	tab, err := QualitySummary(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 11 { // 10 cases + average
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows[:10] {
		var q float64
		if _, err := sscanf(row[2], &q); err != nil {
			t.Fatalf("bad quality cell %q", row[2])
		}
		if q < 0.80 {
			t.Errorf("%s on %s: top-10 quality %.3f < 0.80", row[0], row[1], q)
		}
	}
	var avg float64
	if _, err := sscanf(tab.Rows[10][2], &avg); err != nil {
		t.Fatal(err)
	}
	if avg < 0.90 {
		t.Errorf("average quality %.3f < 0.90", avg)
	}
	t.Logf("average top-10 selection quality: %.3f (paper: 0.958)", avg)
}

func TestAblationsShrinkErrors(t *testing.T) {
	tab, err := Ablations(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("ablation rows = %d:\n%s", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		var base, aware, meas float64
		mustScan(t, row[2], &base)
		mustScan(t, row[3], &aware)
		mustScan(t, row[4], &meas)
		errBase := abs(base - meas)
		errAware := abs(aware - meas)
		if errAware >= errBase {
			t.Errorf("%s: aware model error (%.2f) not < base error (%.2f)", row[0], errAware, errBase)
		}
	}
}

// ---- small test helpers ----

func sscanf(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func mustScan(t *testing.T, s string, v *float64) {
	t.Helper()
	if _, err := sscanf(s, v); err != nil {
		t.Fatalf("bad cell %q: %v", s, err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestHitRateSensitivity(t *testing.T) {
	s, err := HitRateSensitivity(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 5 {
		t.Fatalf("sweep points = %d", len(s.X))
	}
	for i, q := range s.Y[0] {
		if q < 0.5 || q > 1.0001 {
			t.Errorf("quality at hit=%.2f out of range: %g", s.X[i], q)
		}
	}
	// The paper's untuned 0.85 must already be near the sweep's best.
	best := 0.0
	var at085 float64
	for i, q := range s.Y[0] {
		if q > best {
			best = q
		}
		if s.X[i] == 0.85 {
			at085 = q
		}
	}
	if best-at085 > 0.10 {
		t.Errorf("0.85 setting (%.3f) is far from the sweep best (%.3f)", at085, best)
	}
}

func TestFutureProjection(t *testing.T) {
	tab, err := FutureProjection(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var s float64
		if _, err := fmt.Sscanf(row[5], "%fx", &s); err != nil {
			t.Fatalf("bad speedup cell %q", row[5])
		}
		if s <= 1 {
			t.Errorf("%s: conceptual machine not faster (%gx)", row[0], s)
		}
	}
}
