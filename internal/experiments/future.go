package experiments

import (
	"context"
	"fmt"

	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/report"
	"skope/internal/workloads"
)

// FutureProjection projects every benchmark onto the conceptual FutureNode
// machine — the paper's central use case: no such system exists to run or
// simulate on, so only the model-based analysis is available (each row is
// pure projection; there is no Prof column by construction). It reports the
// top hot spot and its bottleneck on BG/Q versus the future machine,
// showing where hot regions migrate as the architecture changes.
func FutureProjection(c *Context) (*report.Table, error) {
	t := &report.Table{
		Title: "Future-machine projection (no measured column: the machine is conceptual)",
		Header: []string{
			"bench", "top spot BG/Q", "bound", "top spot FutureNode", "bound", "speedup",
		},
	}
	fut := hw.NewModel(hw.Future())
	for _, name := range workloads.Names() {
		run, err := c.Run(name)
		if err != nil {
			return nil, err
		}
		base, err := c.Eval(name, "bgq")
		if err != nil {
			return nil, err
		}
		fa, err := hotspot.Analyze(context.Background(), run.BET, fut, run.Libs)
		if err != nil {
			return nil, err
		}
		bTop := base.Analysis.Blocks[0]
		fTop := fa.Blocks[0]
		t.AddRow(name,
			bTop.BlockID, boundOf(bTop),
			fTop.BlockID, boundOf(fTop),
			fmt.Sprintf("%.1fx", base.Analysis.TotalTime/fa.TotalTime))
	}
	return t, nil
}

func boundOf(b *hotspot.Block) string {
	if b.MemoryBound {
		return "memory"
	}
	return "compute"
}
