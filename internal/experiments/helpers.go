package experiments

import (
	"context"
	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/libmodel"
	"skope/internal/skeleton"
	"skope/internal/workloads"
)

// pedagogicalBET builds the Figure 2 example's BET.
func pedagogicalBET() (*skeleton.Program, expr.Env, *core.BET, error) {
	prog, env := workloads.Pedagogical()
	tree, err := bst.Build(prog)
	if err != nil {
		return nil, nil, nil, err
	}
	bet, err := core.Build(context.Background(), tree, env, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, env, bet, nil
}

func formatSkeleton(p *skeleton.Program) string { return skeleton.Format(p) }

func libModel() (*libmodel.Model, error) { return libmodel.Default() }
