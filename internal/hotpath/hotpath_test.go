package hotpath

import (
	"context"
	"strings"
	"testing"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/skeleton"
)

const src = `
def main(n)
  for i = 0 : n label="outer"
    call compute()
    if prob=0.2
      call rare()
    end
  end
  comp flops=1 name="coldtail"
end

def compute()
  for j = 0 : 100 label="inner"
    comp flops=5000 loads=20 name="kernel"
  end
  comp flops=2 name="bookkeeping"
end

def rare()
  comp flops=40000 loads=10 name="spike"
end
`

func setup(t *testing.T) (*core.BET, *hotspot.Analysis, *hotspot.Selection) {
	t.Helper()
	prog, err := skeleton.Parse("hp", src)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bst.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	bet, err := core.Build(context.Background(), tree, expr.Env{"n": 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := hotspot.Analyze(context.Background(), bet, hw.NewModel(hw.BGQ()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sel := hotspot.Select(a, hotspot.Criteria{TimeCoverage: 0.999, CodeLeanness: 1.0})
	return bet, a, sel
}

func TestIndividualPathsEndAtSpots(t *testing.T) {
	_, _, sel := setup(t)
	paths := Individual(sel.Spots)
	if len(paths) == 0 {
		t.Fatal("no individual paths")
	}
	for _, p := range paths {
		if len(p) < 2 {
			t.Errorf("path too short: %d", len(p))
		}
		if p[0].Label() != "main" {
			t.Errorf("path does not start at main: %s", p[0].Label())
		}
		last := p[len(p)-1]
		if k := last.Kind(); k != bst.KindComp && k != bst.KindLib {
			t.Errorf("path does not end at a leaf block: %s", k)
		}
	}
}

func TestExtractMergesSharedPrefix(t *testing.T) {
	bet, _, sel := setup(t)
	if len(sel.Spots) < 2 {
		t.Fatalf("need >= 2 spots, got %d: coverage %g", len(sel.Spots), sel.Coverage)
	}
	p := Extract(bet.Root, sel.Spots)
	if p.Root == nil {
		t.Fatal("empty merged path")
	}
	// The root must appear exactly once (merged), and the hot path must be
	// a subset of the BET.
	if p.Root.BET != bet.Root {
		t.Error("merged path root is not the BET root")
	}
	if p.NumNodes >= bet.NumNodes() {
		t.Errorf("hot path (%d) not smaller than BET (%d)", p.NumNodes, bet.NumNodes())
	}
	// Kernel is the dominant spot and must be present; coldtail must not.
	r := p.Render()
	if !strings.Contains(r, "kernel") {
		t.Errorf("render missing kernel:\n%s", r)
	}
	if strings.Contains(r, "coldtail") {
		t.Errorf("render contains cold block:\n%s", r)
	}
	if !strings.Contains(r, "HOT SPOT") {
		t.Errorf("render missing hot spot marker:\n%s", r)
	}
	if !strings.Contains(r, "x50") {
		t.Errorf("render missing outer loop iteration count:\n%s", r)
	}
}

func TestExtractNoSpots(t *testing.T) {
	bet, _, _ := setup(t)
	p := Extract(bet.Root, nil)
	if p.Root != nil || p.NumNodes != 0 {
		t.Errorf("empty extraction = %+v", p)
	}
	if !strings.Contains(p.Render(), "empty") {
		t.Error("empty render should say so")
	}
	if !strings.Contains(p.DOT(), "digraph") {
		t.Error("empty DOT should still be valid")
	}
}

func TestHotSpotMarkersMatchSelection(t *testing.T) {
	bet, _, sel := setup(t)
	p := Extract(bet.Root, sel.Spots)
	marked := map[string]bool{}
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.HotSpot != nil {
			marked[n.HotSpot.BlockID] = true
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
	for _, s := range sel.Spots {
		if !marked[s.BlockID] {
			t.Errorf("spot %s not marked in path", s.BlockID)
		}
	}
}

func TestDOTWellFormed(t *testing.T) {
	bet, _, sel := setup(t)
	d := Extract(bet.Root, sel.Spots).DOT()
	if !strings.HasPrefix(d, "digraph hotpath {") || !strings.HasSuffix(d, "}\n") {
		t.Errorf("DOT malformed:\n%s", d)
	}
	if !strings.Contains(d, "lightcoral") {
		t.Error("DOT missing hot spot styling")
	}
	if !strings.Contains(d, "->") {
		t.Error("DOT has no edges")
	}
}

func TestMiniAppSkeletonParses(t *testing.T) {
	bet, _, sel := setup(t)
	mini := Extract(bet.Root, sel.Spots).MiniAppSkeleton()
	prog, err := skeleton.Parse("miniapp", mini)
	if err != nil {
		t.Fatalf("mini-app skeleton does not parse: %v\n%s", err, mini)
	}
	if err := skeleton.Validate(prog); err != nil {
		t.Fatalf("mini-app skeleton invalid: %v\n%s", err, mini)
	}
	// The mini-app must itself be modelable and preserve the hot spots.
	tree := bst.MustBuild(prog)
	mbet, err := core.Build(context.Background(), tree, nil, nil)
	if err != nil {
		t.Fatalf("mini-app BET: %v", err)
	}
	found := false
	core.Walk(mbet.Root, func(n *core.Node) bool {
		if n.Label() == "kernel" {
			found = true
		}
		return true
	})
	if !found {
		t.Errorf("mini-app lost the kernel hot spot:\n%s", mini)
	}
}

func TestShortEnvTruncates(t *testing.T) {
	env := expr.Env{"alpha": 1, "beta": 2, "gamma": 3, "delta": 4, "e": 5, "f": 6}
	s := shortEnv(env)
	if !strings.Contains(s, "...") {
		t.Errorf("shortEnv did not truncate: %s", s)
	}
	if !strings.Contains(s, "alpha=1") {
		t.Errorf("shortEnv dropped long names: %s", s)
	}
}
