// Package hotpath implements the paper's hot-path extraction (§V-C): for
// each identified hot spot, the control-flow path leading to it is obtained
// by back-tracing its BET node's parents to the root; the per-spot paths are
// then merged — shared nodes and edges coalesce, distinct ones become
// branches — into a single stripped-down view of the workload containing
// only the hot spots and the control flow that reaches them.
//
// Because the BET tracks context values, the extracted path carries each
// node's iteration count, branching probability, expected repetitions and
// data sizes — the information the paper proposes for building
// mini-applications and for path-based optimization.
package hotpath

import (
	"fmt"
	"sort"
	"strings"

	"skope/internal/bst"
	"skope/internal/core"
	"skope/internal/expr"
	"skope/internal/hotspot"
)

// Node is one node of the merged hot path: a BET node retained because it
// is a hot spot or lies on the path to one.
type Node struct {
	// BET is the underlying execution-tree node.
	BET *core.Node
	// HotSpot is non-nil when this node belongs to a selected hot spot.
	HotSpot *hotspot.Block
	// Children are the retained sub-paths, in execution order.
	Children []*Node
}

// Path is the merged hot path of a workload.
type Path struct {
	// Root corresponds to the entry function.
	Root *Node
	// Spots lists the hot spots the path connects, in rank order.
	Spots []*hotspot.Block
	// NumNodes is the size of the merged path.
	NumNodes int
}

// Individual returns the per-spot back-traces (the paper's Figure 3(a)
// view): one root-to-spot node chain per BET node of each hot spot.
func Individual(spots []*hotspot.Block) [][]*core.Node {
	var out [][]*core.Node
	for _, s := range spots {
		for _, n := range s.Nodes {
			out = append(out, n.Path())
		}
	}
	return out
}

// Extract merges the back-traces of all selected hot spots into a single
// hot path (the Figure 3(b) view).
func Extract(root *core.Node, spots []*hotspot.Block) *Path {
	keep := make(map[*core.Node]bool)
	spotOf := make(map[*core.Node]*hotspot.Block)
	for _, s := range spots {
		for _, n := range s.Nodes {
			spotOf[n] = s
			for _, p := range n.Path() {
				keep[p] = true
			}
		}
	}
	p := &Path{Spots: spots}
	if !keep[root] {
		return p
	}
	p.Root = build(root, keep, spotOf, &p.NumNodes)
	return p
}

func build(n *core.Node, keep map[*core.Node]bool, spotOf map[*core.Node]*hotspot.Block, count *int) *Node {
	*count++
	out := &Node{BET: n, HotSpot: spotOf[n]}
	for _, c := range n.Children {
		if keep[c] {
			out.Children = append(out.Children, build(c, keep, spotOf, count))
		}
	}
	return out
}

// Render prints the hot path as an indented text tree annotated with
// conditional probabilities, expected iteration counts, total repetitions,
// and (for hot spots) the context bindings of the invocation.
func (p *Path) Render() string {
	if p.Root == nil {
		return "(empty hot path)\n"
	}
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		ind := strings.Repeat("  ", depth)
		bn := n.BET
		fmt.Fprintf(&b, "%s%s %s", ind, bn.Kind(), bn.Label())
		if bn.Prob != 1 {
			fmt.Fprintf(&b, " p=%.3g", bn.Prob)
		}
		if k := bn.Kind(); k == bst.KindLoop || k == bst.KindWhile {
			fmt.Fprintf(&b, " x%.4g", bn.Iters)
		}
		if n.HotSpot != nil {
			fmt.Fprintf(&b, "  <== HOT SPOT enr=%.4g ctx=%s", bn.ENR, shortEnv(bn.Env))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return b.String()
}

// shortEnv renders at most four context bindings, preferring input-like
// (non-loop-index) names, to keep hot-path listings readable.
func shortEnv(env expr.Env) string {
	names := make([]string, 0, len(env))
	for k := range env {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		// Longer names first (input sizes tend to be named; indices are
		// single letters), then lexicographic.
		if len(names[i]) != len(names[j]) {
			return len(names[i]) > len(names[j])
		}
		return names[i] < names[j]
	})
	if len(names) > 4 {
		names = names[:4]
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", k, env[k])
	}
	if len(env) > len(names) {
		b.WriteString(", ...")
	}
	b.WriteByte('}')
	return b.String()
}

// DOT renders the hot path in Graphviz dot syntax; hot spots are drawn as
// filled boxes.
func (p *Path) DOT() string {
	var b strings.Builder
	b.WriteString("digraph hotpath {\n  node [shape=box, fontsize=10];\n")
	if p.Root == nil {
		b.WriteString("}\n")
		return b.String()
	}
	var rec func(n *Node)
	rec = func(n *Node) {
		bn := n.BET
		attrs := ""
		if n.HotSpot != nil {
			attrs = ", style=filled, fillcolor=lightcoral"
		}
		label := fmt.Sprintf("%s %s", bn.Kind(), bn.Label())
		switch bn.Kind() {
		case bst.KindLoop, bst.KindWhile:
			label += fmt.Sprintf("\\nx%.4g", bn.Iters)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", bn.ID, label, attrs)
		for _, c := range n.Children {
			edge := ""
			if c.BET.Prob != 1 {
				edge = fmt.Sprintf(" [label=\"p=%.3g\"]", c.BET.Prob)
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", bn.ID, c.BET.ID, edge)
			rec(c)
		}
	}
	rec(p.Root)
	b.WriteString("}\n")
	return b.String()
}

// MiniAppSkeleton emits a skeleton-language program containing only the hot
// path — the paper's proposed starting point for constructing
// mini-applications. Control nodes become loops/branches with their modeled
// parameters baked in as constants; hot spots become comp statements with
// their evaluated per-invocation workloads.
func (p *Path) MiniAppSkeleton() string {
	var b strings.Builder
	b.WriteString("# mini-app skeleton extracted from the hot path\n")
	b.WriteString("def main()\n")
	if p.Root != nil {
		for _, c := range p.Root.Children {
			miniRec(&b, c, 1)
		}
	}
	b.WriteString("end\n")
	return b.String()
}

func miniRec(b *strings.Builder, n *Node, depth int) {
	ind := strings.Repeat("  ", depth)
	bn := n.BET
	switch bn.Kind() {
	case bst.KindLoop, bst.KindWhile:
		fmt.Fprintf(b, "%sfor i%d = 0 : %g label=%q\n", ind, bn.ID, bn.Iters, bn.Label())
		for _, c := range n.Children {
			miniRec(b, c, depth+1)
		}
		fmt.Fprintf(b, "%send\n", ind)
	case bst.KindBranch:
		// Collapse the branch into its retained arms.
		for _, c := range n.Children {
			miniRec(b, c, depth)
		}
	case bst.KindCase, bst.KindElse:
		fmt.Fprintf(b, "%sif prob=%g\n", ind, bn.Prob)
		for _, c := range n.Children {
			miniRec(b, c, depth+1)
		}
		fmt.Fprintf(b, "%send\n", ind)
	case bst.KindCall, bst.KindFunc:
		for _, c := range n.Children {
			miniRec(b, c, depth)
		}
	case bst.KindComp:
		w := bn.Work
		fmt.Fprintf(b, "%scomp flops=%g iops=%g loads=%g stores=%g dsize=%g name=%q\n",
			ind, w.FLOPs, w.IOPs, w.Loads, w.Stores, w.DSizeB, bn.Label())
	case bst.KindLib:
		fmt.Fprintf(b, "%slib %s count=%g name=%q\n", ind, bn.LibFunc, bn.LibCount, bn.Label())
	case bst.KindComm:
		fmt.Fprintf(b, "%scomm bytes=%g msgs=%g name=%q\n", ind, bn.CommBytes, bn.CommMsgs, bn.Label())
	default:
		for _, c := range n.Children {
			miniRec(b, c, depth)
		}
	}
}
