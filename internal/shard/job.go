package shard

import (
	"fmt"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/resilience"
	"skope/internal/workloads"
)

// JobSpec is the self-contained description of one sharded sweep — small
// enough to travel as JSON, complete enough that any worker can reproduce
// the exact grid from it. The base machine travels in wire form (IEEE-754
// bit patterns), axis values survive JSON exactly (Go round-trips float64
// through its shortest decimal form), and the grid order is deterministic,
// so every participant derives the same variants, fingerprints, and
// partition from the same spec.
//
// Deliberately absent: selection criteria and the confidence floor. The
// journal records workers produce are per-block times — mode-independent
// by construction — so those settings apply where the merged journal is
// finally replayed, not where the variants are evaluated.
type JobSpec struct {
	// Bench names a registry benchmark (workloads.Get) unless Source
	// inlines the program text directly.
	Bench string  `json:"bench"`
	Scale float64 `json:"scale,omitempty"`
	// Source, when non-empty, is the workload's minilang text; Bench then
	// only names it. Seed drives the deterministic profiling stream.
	Source string `json:"source,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`

	// Base is the grid's base machine, bit-exact.
	Base hw.WireMachine `json:"base"`
	// Axes are the swept parameters (explore.Axis vocabulary).
	Axes []explore.Axis `json:"axes"`

	// Lenient selects the error-recovering preparation pipeline.
	Lenient bool `json:"lenient,omitempty"`
	// Retries bounds per-variant retry attempts on transient failures.
	Retries int `json:"retries,omitempty"`
	// VariantTimeoutMs bounds each evaluation attempt (0 = none).
	VariantTimeoutMs int64 `json:"variant_timeout_ms,omitempty"`

	// LayoutFP is the layout fingerprint the prepared workload must
	// resolve to. It keys every shard fingerprint and the merged journal's
	// binding; a worker whose preparation disagrees (version skew, drifted
	// priors) must abort rather than contribute.
	LayoutFP string `json:"layout"`
	// ShardSize is the partition's variants-per-shard (< 1 selects 16).
	ShardSize int `json:"shard_size,omitempty"`

	// Indices, when non-nil, restricts the job to the named grid positions
	// (in the given order) instead of the full cross product. Adaptive
	// round planners use this to hand coordinators one acquisition batch
	// at a time as an ordinary mini-job: Variants, Shards, and the whole
	// lease/steal/merge protocol operate on the subset unchanged. Every
	// entry must lie inside the full grid; duplicates are rejected.
	Indices []int `json:"indices,omitempty"`
}

// Workload materializes the spec's workload: the inline source if present,
// the registry benchmark otherwise.
func (s *JobSpec) Workload() (*workloads.Workload, error) {
	if s.Source != "" {
		name := s.Bench
		if name == "" {
			name = "inline"
		}
		return &workloads.Workload{Name: name, Source: s.Source, Seed: s.Seed}, nil
	}
	if s.Bench == "" {
		return nil, fmt.Errorf("shard: job spec has neither bench nor source")
	}
	return workloads.Get(s.Bench, workloads.Scale(s.Scale))
}

// Grid returns the spec's design-space grid.
func (s *JobSpec) Grid() *explore.Grid {
	return &explore.Grid{Base: s.Base.Machine(), Axes: s.Axes}
}

// Variants materializes the grid in its deterministic order. When the
// spec carries Indices, the result is that subset of the full grid, in
// the spec's order; shard and result indices then refer to positions in
// the subset, and the spec's Indices slice is the map back to the grid.
func (s *JobSpec) Variants() ([]*hw.Machine, error) {
	full, err := s.Grid().Variants()
	if err != nil {
		return nil, err
	}
	if s.Indices == nil {
		return full, nil
	}
	seen := make(map[int]bool, len(s.Indices))
	sub := make([]*hw.Machine, len(s.Indices))
	for i, g := range s.Indices {
		if g < 0 || g >= len(full) {
			return nil, fmt.Errorf("shard: job index %d outside grid of %d variants", g, len(full))
		}
		if seen[g] {
			return nil, fmt.Errorf("shard: job index %d listed twice", g)
		}
		seen[g] = true
		sub[i] = full[g]
	}
	return sub, nil
}

// Shards partitions the spec's variants under its layout fingerprint.
func (s *JobSpec) Shards() ([]Shard, error) {
	variants, err := s.Variants()
	if err != nil {
		return nil, err
	}
	return Partition(s.LayoutFP, variants, s.ShardSize), nil
}

// Options translates the spec's evaluation settings into pipeline options
// for the worker's Prepare and Sweep calls.
func (s *JobSpec) Options() []pipeline.Option {
	opts := []pipeline.Option{pipeline.WithLenient(s.Lenient)}
	if s.Retries > 0 {
		opts = append(opts, pipeline.WithRetry(resilience.DefaultPolicy(s.Retries)))
	}
	if s.VariantTimeoutMs > 0 {
		opts = append(opts, pipeline.WithVariantTimeout(time.Duration(s.VariantTimeoutMs)*time.Millisecond))
	}
	return opts
}
