package shard_test

// Coordinator crash-safety: the log round-trips the exact lease/merge
// state, fencing epochs survive recovery (a pre-crash stale worker stays
// fenced after the restart), and a log that stops accepting writes
// degrades the job instead of killing it.

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"skope/internal/iofault"
	"skope/internal/shard"
)

func openTestLog(t *testing.T, path string) *shard.Log {
	t.Helper()
	log, err := shard.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestCoordinatorLogRecoveryRoundTrip(t *testing.T) {
	clock := newStepClock()
	path := filepath.Join(t.TempDir(), "j-rt.coordlog")
	spec := testSpec()
	log := openTestLog(t, path)
	c, err := shard.NewCoordinator(shard.Config{
		JobID: "j-rt", Spec: spec, Lease: time.Minute, Clock: clock.Now, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}

	// One shard completes, one is in flight when the daemon dies.
	done := mustLease(t, c, "a")
	if err := c.Complete("a", done.Shard.ID, done.Epoch, shardResults(variants, done.Shard), nil); err != nil {
		t.Fatal(err)
	}
	live := mustLease(t, c, "b")
	log.Close() // the crash: no flush needed — every append was fsynced

	relog := openTestLog(t, path)
	defer relog.Close()
	rc, err := shard.RecoverCoordinator(relog, shard.Config{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	st := rc.Status()
	if st.JobID != "j-rt" || st.Completed != 1 || st.Leased != 1 || st.Pending != 1 {
		t.Fatalf("recovered status = %+v", st)
	}
	if st.RecoveredShards != 1 || st.RecoveredRecords != done.Shard.Size() {
		t.Fatalf("recovery counters = %d shards / %d records, want 1 / %d",
			st.RecoveredShards, st.RecoveredRecords, done.Shard.Size())
	}

	// The completed shard's records survived byte-identically.
	want := c.MergedRecords()
	got := rc.MergedRecords()
	if len(got) != len(want) {
		t.Fatalf("recovered %d merged records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d drifted across recovery", i)
		}
	}

	// A retried delivery of the pre-crash completion is still idempotent.
	if err := rc.Complete("a", done.Shard.ID, done.Epoch, shardResults(variants, done.Shard), nil); err != nil {
		t.Fatalf("duplicate complete across restart: %v", err)
	}

	// The in-flight worker reconnects: its lease is honored under the
	// original epoch — heartbeat renews, completion lands.
	if _, err := rc.Heartbeat("b", live.Shard.ID, live.Epoch); err != nil {
		t.Fatalf("recovered lease heartbeat: %v", err)
	}
	if err := rc.Complete("b", live.Shard.ID, live.Epoch, shardResults(variants, live.Shard), nil); err != nil {
		t.Fatalf("recovered lease complete: %v", err)
	}

	// The recovered coordinator keeps logging: finish the job, crash
	// again, and the second recovery sees everything.
	rest := mustLease(t, rc, "b")
	if err := rc.Complete("b", rest.Shard.ID, rest.Epoch, shardResults(variants, rest.Shard), nil); err != nil {
		t.Fatal(err)
	}
	if !rc.Done() {
		t.Fatal("job not done")
	}
	relog.Close()
	relog2 := openTestLog(t, path)
	defer relog2.Close()
	rc2, err := shard.RecoverCoordinator(relog2, shard.Config{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if st := rc2.Status(); !st.Done || st.Merged != len(variants) {
		t.Fatalf("second recovery status = %+v", st)
	}
}

func TestCoordinatorRecoveryPreservesFencingEpochs(t *testing.T) {
	clock := newStepClock()
	path := filepath.Join(t.TempDir(), "j-fence.coordlog")
	spec := testSpec()
	log := openTestLog(t, path)
	c, err := shard.NewCoordinator(shard.Config{
		JobID: "j-fence", Spec: spec, Lease: time.Minute, Clock: clock.Now, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}

	// "old" holds epoch 1, goes silent, and the shard is stolen under
	// epoch 2. Then the daemon dies and the thief's lease expires during
	// the outage.
	old := mustLease(t, c, "old")
	clock.Advance(2 * time.Minute)
	thief := mustLease(t, c, "thief")
	if thief.Shard.ID != old.Shard.ID || thief.Epoch <= old.Epoch {
		t.Fatalf("thief grant = %+v, want %s past epoch %d", thief, old.Shard.ID, old.Epoch)
	}
	log.Close()
	clock.Advance(2 * time.Minute)

	relog := openTestLog(t, path)
	defer relog.Close()
	rc, err := shard.RecoverCoordinator(relog, shard.Config{Clock: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	// The thief's expired lease recovers as pending — exactly what lazy
	// expiry would decide — with the epoch preserved.
	if st := rc.Status(); st.Pending != 3 || st.Leased != 0 {
		t.Fatalf("recovered status = %+v, want all pending", st)
	}
	// The pre-crash stale worker stays fenced after the restart.
	if err := rc.Complete("old", old.Shard.ID, old.Epoch, shardResults(variants, old.Shard), nil); !errors.Is(err, shard.ErrStaleLease) {
		t.Fatalf("pre-crash stale complete: %v, want ErrStaleLease", err)
	}
	// A fresh grant moves past every epoch the log ever issued.
	fresh := mustLease(t, rc, "new")
	if fresh.Shard.ID != old.Shard.ID {
		t.Fatalf("fresh grant got %s, want %s", fresh.Shard.ID, old.Shard.ID)
	}
	if fresh.Epoch <= thief.Epoch {
		t.Fatalf("fresh epoch %d does not advance past the recovered %d", fresh.Epoch, thief.Epoch)
	}
}

func TestCoordinatorLogDegradationKeepsServing(t *testing.T) {
	clock := newStepClock()
	path := filepath.Join(t.TempDir(), "j-deg.coordlog")
	spec := testSpec()
	// The job record lands safely; a later append hits the dying disk.
	fs := iofault.New(nil, iofault.Plan{FailSyncAt: 4})
	log, err := shard.OpenLogFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	c, err := shard.NewCoordinator(shard.Config{
		JobID: "j-deg", Spec: spec, Lease: time.Minute, Clock: clock.Now, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	// The job completes in memory despite the log failing under it.
	for {
		g, err := c.Lease("w")
		if err != nil {
			t.Fatal(err)
		}
		if g.State == shard.LeaseDone {
			break
		}
		if err := c.Complete("w", g.Shard.ID, g.Epoch, shardResults(variants, g.Shard), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Status()
	if !st.Done || st.Merged != len(variants) {
		t.Fatalf("status = %+v, want done with all variants", st)
	}
	if !st.LogDegraded {
		t.Fatal("log write failure did not flip LogDegraded")
	}
}

func TestRecoverEmptyLogFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.coordlog")
	log := openTestLog(t, path)
	defer log.Close()
	if _, err := shard.RecoverCoordinator(log, shard.Config{}); err == nil {
		t.Fatal("recovered a coordinator from a log with no job record")
	}
}
