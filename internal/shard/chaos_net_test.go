package shard_test

// The network chaos suite: drive the real worker/coordinator protocol
// through the netfault seam and assert the fault-tolerance obligations —
// a partitioned worker's late reports are fenced cleanly, retried RPCs
// ride out drops/duplicates/truncation/5xx without corrupting the merge,
// and a coordinator killed and restarted mid-job recovers from its log
// so live workers reconnect and finish with zero re-evaluation.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"skope/internal/guard"
	"skope/internal/netfault"
	"skope/internal/resilience"
	"skope/internal/shard"
)

// TestChaosNetPartitionFencesStaleWorker is the partition-mid-lease
// scenario over real HTTP: worker A leases a shard and falls off the
// network, the lease expires, B steals and completes the shard, and A's
// late completion — carrying corrupted payloads, the worst case — gets a
// clean typed rejection instead of poisoning the merge.
func TestChaosNetPartitionFencesStaleWorker(t *testing.T) {
	spec := testSpec()
	clock := newStepClock()
	coord, base, jobID := serveJob(t, spec, shard.Config{
		JobID: "j-net-fence", Lease: time.Minute, Clock: clock.Now,
	})
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ft := netfault.New(nil, netfault.Plan{})
	a := &shard.Client{BaseURL: base.BaseURL, Transport: ft}
	respA, err := a.Lease(ctx, jobID, "a")
	if err != nil || respA.State != shard.LeaseGranted {
		t.Fatalf("a lease = %+v, %v", respA, err)
	}

	// The partition: every request from A dies with a connection reset.
	ft.Partition()
	if err := a.Heartbeat(ctx, jobID, "a", respA.Shard.ID, respA.Epoch); !errors.Is(err, netfault.ErrInjected) {
		t.Fatalf("partitioned heartbeat: %v, want an injected fault", err)
	}

	// A's lease expires; B steals the shard and completes it.
	clock.Advance(2 * time.Minute)
	respB, err := base.Lease(ctx, jobID, "b")
	if err != nil || respB.State != shard.LeaseGranted {
		t.Fatalf("b lease = %+v, %v", respB, err)
	}
	if respB.Shard.ID != respA.Shard.ID || respB.Epoch <= respA.Epoch {
		t.Fatalf("steal grant = %+v, want %s past epoch %d", respB, respA.Shard.ID, respA.Epoch)
	}
	good := shardResults(variants, *respB.Shard)
	if err := base.Complete(ctx, jobID, "b", respB.Shard.ID, respB.Epoch, good, nil); err != nil {
		t.Fatal(err)
	}

	// The partition heals and A's delayed completion finally arrives,
	// corrupted in the way only a half-dead worker can manage.
	ft.Heal()
	garbage := shardResults(variants, *respA.Shard)
	garbage[0].Payload = []byte(`{"variant":"garbage-from-the-partition"}`)
	err = a.Complete(ctx, jobID, "a", respA.Shard.ID, respA.Epoch, garbage, nil)
	if !errors.Is(err, shard.ErrStaleLease) {
		t.Fatalf("stale complete over HTTP: %v, want ErrStaleLease", err)
	}

	// The merge is untouched: every payload is B's.
	merged := make(map[string][]byte)
	for _, r := range coord.MergedRecords() {
		merged[r.Key] = r.Payload
	}
	for _, r := range good {
		if !bytes.Equal(merged[r.Key], r.Payload) {
			t.Fatalf("variant %s: merged payload is not the live holder's", r.Key)
		}
	}
	if st := coord.Status(); st.StaleFenced == 0 {
		t.Fatalf("StaleFenced = 0 after a fenced completion: %+v", st)
	}
}

// chaosNetWorker runs one in-process worker with a retry policy generous
// enough to ride out the injected faults.
func chaosNetWorker(client *shard.Client, jobID, id, dir string) *shard.Worker {
	return &shard.Worker{
		Client:  client,
		JobID:   jobID,
		ID:      id,
		DataDir: dir,
		Poll:    25 * time.Millisecond,
		Retry: resilience.Policy{
			MaxAttempts: 40,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
		},
	}
}

// TestChaosNetRPCFaultGrid drives one real sharded sweep per fault shape
// and asserts the worker finishes the job correctly with the fault
// provably fired. The drop-response and duplicate cases are the
// interesting ones: the server processes a request the client never sees
// answered (or sees answered twice), so the retry arrives as a duplicate
// delivery and only idempotent, epoch-fenced RPCs keep the merge exact.
func TestChaosNetRPCFaultGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sharded sweeps")
	}
	spec, run := sordSpec(t)

	cases := []struct {
		name  string
		plan  netfault.Plan
		fired func(netfault.Stats) int
	}{
		{"drop-request-lease", netfault.Plan{Verb: "lease", DropRequestAt: 1},
			func(s netfault.Stats) int { return s.Dropped }},
		{"drop-response-complete", netfault.Plan{Verb: "complete", DropResponseAt: 1},
			func(s netfault.Stats) int { return s.LostResps }},
		{"duplicate-complete", netfault.Plan{Verb: "complete", DuplicateAt: 1},
			func(s netfault.Stats) int { return s.Duplicated }},
		{"truncate-lease-response", netfault.Plan{Verb: "lease", TruncateAt: 1},
			func(s netfault.Stats) int { return s.Truncated }},
		{"server-error-register", netfault.Plan{Verb: "register", Status500At: 1},
			func(s netfault.Stats) int { return s.Injected500 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord, base, jobID := serveJob(t, spec, shard.Config{
				JobID: "j-net-" + tc.name, Lease: 30 * time.Second,
			})
			ft := netfault.New(nil, tc.plan)
			client := &shard.Client{BaseURL: base.BaseURL, Transport: ft, Timeout: 10 * time.Second}
			w := chaosNetWorker(client, jobID, "w-"+tc.name, t.TempDir())

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			stats, err := w.Run(ctx)
			if err != nil {
				t.Fatalf("worker: %v", err)
			}
			if got := tc.fired(ft.Stats()); got == 0 {
				t.Fatalf("fault never fired: stats = %+v", ft.Stats())
			}
			st := coord.Status()
			if !st.Done || st.Merged != 6 || st.Failed != 0 {
				t.Fatalf("status = %+v, want done with 6 merged", st)
			}
			switch tc.name {
			case "drop-request-lease", "drop-response-complete", "truncate-lease-response", "server-error-register":
				if stats.RPCRetries == 0 {
					t.Fatalf("client-visible fault cost no retries: %+v", stats)
				}
			case "duplicate-complete":
				// The duplicate is invisible to the client; the server saw
				// the same completion twice and must have merged once,
				// bit-identically to a single-process sweep.
				if stats.Shards != 3 {
					t.Fatalf("worker completed %d shards, want 3: %+v", stats.Shards, stats)
				}
				assertMergedMatchesDirect(t, coord, run, spec,
					filepath.Join(t.TempDir(), "merged.journal"))
			}
		})
	}
}

// TestChaosNetCoordinatorRestartMidJob kills the coordinator process
// boundary mid-job — the HTTP server goes away without closing the
// coordinator log, exactly what SIGKILL leaves — and restarts it on the
// same address from the log. Live workers ride out the outage on their
// retry policies, reconnect, and finish; nothing durable is re-evaluated
// and the merged result set is bit-identical to a direct sweep.
func TestChaosNetCoordinatorRestartMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full sharded sweep with a coordinator restart")
	}
	spec, run := sordSpec(t)
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	logPath := filepath.Join(dir, "j-restart.coordlog")
	const jobID = "j-restart"

	// Evaluation log: one line per evaluation that actually runs, plus
	// enough per-variant latency that the kill lands mid-job.
	var evMu sync.Mutex
	var evals []string
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		evMu.Lock()
		evals = append(evals, detail)
		evMu.Unlock()
		time.Sleep(100 * time.Millisecond)
	})
	defer disarm()
	evalCount := func() int {
		evMu.Lock()
		defer evMu.Unlock()
		return len(evals)
	}

	serve := func(coord *shard.Coordinator, addr string) (*http.Server, string) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		svc := shard.NewService()
		svc.Add(coord)
		mux := http.NewServeMux()
		svc.Mount(mux)
		hsrv := &http.Server{Handler: mux}
		go hsrv.Serve(ln)
		return hsrv, ln.Addr().String()
	}

	log1, err := shard.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := shard.NewCoordinator(shard.Config{
		JobID: jobID, Spec: spec, Lease: 1500 * time.Millisecond, Log: log1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hsrv1, addr := serve(coord1, "127.0.0.1:0")

	client := &shard.Client{BaseURL: "http://" + addr, Timeout: 2 * time.Second}
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	workerStats := make([]shard.WorkerStats, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := chaosNetWorker(client, jobID, fmt.Sprintf("w%d", i), dir)
			workerStats[i], workerErrs[i] = w.Run(ctx)
		}(i)
	}

	// Kill window: at least one shard durably completed, job not done.
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := coord1.Status()
		if st.Completed >= 1 && !st.Done {
			break
		}
		if st.Done {
			t.Fatal("job finished before the kill window")
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for the kill window: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The crash: the listener dies abruptly; the log is NOT closed (a
	// real SIGKILL closes nothing) — fsync-per-append is what makes the
	// bytes on disk complete anyway.
	if err := hsrv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot durability before the restart: any evaluation after this
	// point naming one of these variants is a re-evaluation bug.
	durable := journaledNames(t, dir, jobID, variants)
	evalsAtKill := evalCount()
	if len(durable) == 0 {
		t.Fatal("no durable variants at the kill — the test lost its premise")
	}

	// The restart: recover the coordinator from its log on the same
	// address. Lease epochs and completed shards come back; the workers'
	// retry policies bridge the gap.
	log2, err := shard.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	coord2, err := shard.RecoverCoordinator(log2, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := coord2.Status(); st.RecoveredShards < 1 {
		t.Fatalf("recovered coordinator replayed no shards: %+v", st)
	}
	hsrv2, _ := serve(coord2, addr)
	defer hsrv2.Close()

	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v (stats %+v)", i, err, workerStats[i])
		}
	}
	if !coord2.Done() {
		t.Fatalf("job not done after workers exited: %+v", coord2.Status())
	}
	st := coord2.Status()
	if st.Merged != len(variants) || st.Failed != 0 {
		t.Fatalf("status = %+v, want %d merged", st, len(variants))
	}

	// Zero re-evaluation: nothing durable at the kill ran again.
	evMu.Lock()
	after := append([]string(nil), evals[evalsAtKill:]...)
	evMu.Unlock()
	for _, name := range after {
		if durable[name] {
			t.Errorf("variant %q re-evaluated after it was durable at the coordinator kill", name)
		}
	}

	// The headline: bit-identical to a single-process sweep.
	assertMergedMatchesDirect(t, coord2, run, spec, filepath.Join(dir, "merged.journal"))
}
