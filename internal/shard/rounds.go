package shard

import (
	"fmt"
	"math"

	"skope/internal/explore"
)

// RoundPlanner adapts explore.AdaptivePlanner to the sharded-sweep
// protocol: instead of one coordinator distributing the full grid, the
// driver asks the planner for one acquisition round at a time, runs that
// round as an ordinary mini-job (a JobSpec whose Indices name the batch),
// and feeds the merged results back. Workers stay completely oblivious —
// they see a small grid-subset job with the usual shards, leases, and
// fingerprints — while the planner's surrogate decides what the next
// round's job contains.
//
// The per-variant objective travels as VariantResult.TimeBits and the
// confidence weight rides inside the journal payload
// (explore.RecordConfidence), so rounds need no protocol additions.
//
// Typical loop:
//
//	rp, _ := shard.NewRoundPlanner(spec, aopt)
//	for {
//		round, ok := rp.NextRound()
//		if !ok {
//			break
//		}
//		results, failures := runJob(round) // coordinator + workers
//		rp.Observe(round, results, failures)
//		trace := rp.EndRound()
//		...
//	}
//
// Not safe for concurrent use; one round's job may of course be executed
// by many workers concurrently.
type RoundPlanner struct {
	spec    JobSpec
	planner *explore.AdaptivePlanner
}

// NewRoundPlanner builds a planner over spec's full grid. spec must not
// itself carry Indices — the planner is the one who sets them, per round.
func NewRoundPlanner(spec JobSpec, opt explore.AdaptiveOptions) (*RoundPlanner, error) {
	if spec.Indices != nil {
		return nil, fmt.Errorf("shard: round planner needs the full-grid spec, not an index subset")
	}
	variants, err := spec.Variants()
	if err != nil {
		return nil, err
	}
	planner, err := explore.NewAdaptivePlanner(variants, spec.Axes, opt)
	if err != nil {
		return nil, err
	}
	return &RoundPlanner{spec: spec, planner: planner}, nil
}

// NextRound returns the next acquisition batch as a self-contained
// mini-job: a copy of the base spec with Indices set to the chosen grid
// positions. ok is false once the search has converged or exhausted its
// budget; the returned spec shares nothing mutable with the planner.
func (rp *RoundPlanner) NextRound() (JobSpec, bool) {
	batch := rp.planner.NextRound()
	if len(batch) == 0 {
		return JobSpec{}, false
	}
	round := rp.spec
	round.Indices = append([]int(nil), batch...)
	return round, true
}

// Observe feeds one completed round back into the surrogate. round must
// be a spec NextRound returned (its Indices translate subset positions
// back to grid positions); results and failures are the coordinator's
// merged outcome for that job, indexed in subset space. Results whose
// payload carries no confidence record train at full weight.
func (rp *RoundPlanner) Observe(round JobSpec, results []VariantResult, failures []VariantFailure) error {
	for _, r := range results {
		g, err := roundIndex(round, r.Index)
		if err != nil {
			return err
		}
		w := 1.0
		if conf, ok := explore.RecordConfidence(r.Payload); ok {
			w = conf
		}
		rp.planner.Observe(g, math.Float64frombits(r.TimeBits), w)
	}
	for _, f := range failures {
		g, err := roundIndex(round, f.Index)
		if err != nil {
			return err
		}
		rp.planner.ObserveFailure(g)
	}
	return nil
}

func roundIndex(round JobSpec, sub int) (int, error) {
	if sub < 0 || sub >= len(round.Indices) {
		return 0, fmt.Errorf("shard: round result index %d outside batch of %d", sub, len(round.Indices))
	}
	return round.Indices[sub], nil
}

// EndRound closes the current round: refits the surrogate, updates the
// convergence state, and returns the round's trace.
func (rp *RoundPlanner) EndRound() explore.RoundTrace { return rp.planner.EndRound() }

// Incumbent returns the best grid index and objective observed so far.
func (rp *RoundPlanner) Incumbent() (int, float64, bool) { return rp.planner.Incumbent() }

// Evals returns the evaluations issued so far, across all rounds.
func (rp *RoundPlanner) Evals() int { return rp.planner.Evals() }

// Converged reports whether the search stopped on patience rather than
// budget exhaustion.
func (rp *RoundPlanner) Converged() bool { return rp.planner.Converged() }

// Traces returns the completed rounds' traces.
func (rp *RoundPlanner) Traces() []explore.RoundTrace { return rp.planner.Traces() }
