package shard

// Crash-safety for the coordinator itself. The workers were already
// durable — every variant is fsynced into a per-shard journal before it
// counts — but through PR 9 the coordinator's side (the job spec, the
// lease table with its fencing epochs, the merged records) lived only in
// memory, so killing the daemon stranded every worker. A coordinator
// log closes that: each state transition that matters for recovery is
// appended to a crc32c journal (the same format, fsync discipline, and
// torn-tail recovery as the sweep journals) before the worker learns of
// it, and RecoverCoordinator rebuilds the exact lease/merge state on
// daemon restart. Reconnecting workers resume where they left off: live
// leases are honored under their original epochs, completed shards stay
// completed, and nothing durable is ever re-evaluated.
//
// What is logged (last-wins by key, the journal's replay semantics):
//
//	job            the JobSpec, job ID, and lease duration — written once
//	lease/<shard>  the current holder, fencing epoch, absolute deadline —
//	               appended on every grant and heartbeat renewal
//	done/<shard>   the shard's full result set and failures — appended
//	               on completion
//
// Expiry is deliberately not logged: a persisted deadline in the past
// recovers as "pending with its epoch preserved", which is exactly what
// lazy expiry would decide. Epochs must survive recovery — they only
// ever grow, so a pre-crash stale worker stays fenced after restart.
//
// A log write failure degrades rather than kills the job: the journal
// latches ErrWriteFailed, the coordinator flips LogDegraded in its
// status, and the job keeps serving from memory — the same
// fail-stop-then-degrade contract the sweep journals follow.

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"skope/internal/iofault"
	"skope/internal/journal"
)

const (
	logKind        = "shard-coordlog"
	logKeyJob      = "job"
	logLeasePrefix = "lease/"
	logDonePrefix  = "done/"
)

// Log is a coordinator's crash-safety journal.
type Log struct {
	j *journal.Journal
}

// OpenLog opens (or creates) a coordinator log on the disk.
func OpenLog(path string) (*Log, error) {
	return OpenLogFS(iofault.Disk, path)
}

// OpenLogFS opens a coordinator log through the given file abstraction —
// the disk-fault chaos suite injects here, exactly as it does for sweep
// journals.
func OpenLogFS(fsys iofault.FS, path string) (*Log, error) {
	j, err := journal.OpenFS(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("shard: coordinator log: %w", err)
	}
	return &Log{j: j}, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.j.Path() }

// Err returns the journal's sticky write error, if any.
func (l *Log) Err() error { return l.j.Err() }

// Close closes the underlying journal.
func (l *Log) Close() error { return l.j.Close() }

// begin binds a fresh log to its job (or verifies a reopened one).
func (l *Log) begin(jobID string) error {
	return l.j.SetMeta(map[string]string{"kind": logKind, "job": jobID})
}

func (l *Log) append(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return l.j.Append(key, payload)
}

// Wire shapes of the log records. Payloads ride as []byte (base64 in
// JSON) so the merged record bytes round-trip exactly — the recovered
// coordinator must serve byte-identical records or the bit-exactness
// invariant (and ErrConflict) would misfire after a restart.
type logJobRecord struct {
	JobID   string  `json:"job"`
	Spec    JobSpec `json:"spec"`
	LeaseMs int64   `json:"lease_ms"`
}

type logLeaseRecord struct {
	Worker     string `json:"worker"`
	Epoch      uint64 `json:"epoch"`
	DeadlineMs int64  `json:"deadline_ms"` // absolute, unix milliseconds
}

type logResult struct {
	Index    int    `json:"index"`
	Key      string `json:"key"`
	Payload  []byte `json:"payload"`
	TimeBits uint64 `json:"time"`
}

type logDoneRecord struct {
	Worker   string           `json:"worker"`
	Epoch    uint64           `json:"epoch"`
	Results  []logResult      `json:"results,omitempty"`
	Failures []VariantFailure `json:"failures,omitempty"`
}

// RecoveredJob is a coordinator log read back after a crash.
type RecoveredJob struct {
	JobID string
	Spec  JobSpec
	Lease time.Duration

	leases map[string]logLeaseRecord
	done   map[string]logDoneRecord
}

// Recover reads the log's replay state back. A log with no job record
// (created but never bound to a job) returns nil, nil.
func (l *Log) Recover() (*RecoveredJob, error) {
	meta := l.j.Meta()
	if meta == nil {
		return nil, nil
	}
	if kind := meta["kind"]; kind != logKind {
		return nil, fmt.Errorf("shard: %s is not a coordinator log (kind %q)", l.Path(), kind)
	}
	payload, ok := l.j.Get(logKeyJob)
	if !ok {
		return nil, nil
	}
	var job logJobRecord
	if err := json.Unmarshal(payload, &job); err != nil {
		return nil, fmt.Errorf("shard: coordinator log %s: job record: %w", l.Path(), err)
	}
	if job.JobID != meta["job"] {
		return nil, fmt.Errorf("shard: coordinator log %s: job record %q does not match meta %q",
			l.Path(), job.JobID, meta["job"])
	}
	rec := &RecoveredJob{
		JobID:  job.JobID,
		Spec:   job.Spec,
		Lease:  time.Duration(job.LeaseMs) * time.Millisecond,
		leases: make(map[string]logLeaseRecord),
		done:   make(map[string]logDoneRecord),
	}
	for _, e := range l.j.Entries() {
		switch {
		case strings.HasPrefix(e.Key, logLeasePrefix):
			var lr logLeaseRecord
			if err := json.Unmarshal(e.Payload, &lr); err != nil {
				return nil, fmt.Errorf("shard: coordinator log %s: %s: %w", l.Path(), e.Key, err)
			}
			rec.leases[strings.TrimPrefix(e.Key, logLeasePrefix)] = lr
		case strings.HasPrefix(e.Key, logDonePrefix):
			var dr logDoneRecord
			if err := json.Unmarshal(e.Payload, &dr); err != nil {
				return nil, fmt.Errorf("shard: coordinator log %s: %s: %w", l.Path(), e.Key, err)
			}
			rec.done[strings.TrimPrefix(e.Key, logDonePrefix)] = dr
		}
	}
	return rec, nil
}

// RecoveredRecords returns the number of merged variant records the log
// carries — what a restart serves with zero re-evaluation.
func (r *RecoveredJob) RecoveredRecords() int {
	n := 0
	for _, d := range r.done {
		n += len(d.Results)
	}
	return n
}

// RecoverCoordinator rebuilds a coordinator from its log: the job
// identity, spec, and lease duration come from the log's job record
// (overriding whatever cfg carries); completed shards are re-merged
// from their done records; unexpired leases are re-installed under
// their original epochs so their holders' heartbeats and completions
// keep working across the restart; expired leases recover as pending
// with the epoch preserved, so pre-crash stale workers stay fenced.
// The log stays attached: the recovered coordinator keeps appending.
func RecoverCoordinator(log *Log, cfg Config) (*Coordinator, error) {
	rec, err := log.Recover()
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, fmt.Errorf("shard: coordinator log %s has no job record", log.Path())
	}
	cfg.JobID = rec.JobID
	cfg.Spec = rec.Spec
	cfg.Lease = rec.Lease
	cfg.Log = nil // attach below; NewCoordinator must not rewrite the job record
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	for id, lr := range rec.leases {
		idx, err := c.shardByID(id)
		if err != nil {
			return nil, err
		}
		if lr.Epoch > c.epochs[idx] {
			c.epochs[idx] = lr.Epoch
		}
		deadline := time.UnixMilli(lr.DeadlineMs)
		if deadline.After(now) {
			c.state[idx] = shardLeased
			c.leases[idx] = lease{worker: lr.Worker, epoch: lr.Epoch, deadline: deadline}
			c.worker(lr.Worker)
		}
	}
	for id, dr := range rec.done {
		idx, err := c.shardByID(id)
		if err != nil {
			return nil, err
		}
		if dr.Epoch > c.epochs[idx] {
			c.epochs[idx] = dr.Epoch
		}
		results := make([]VariantResult, len(dr.Results))
		for i, r := range dr.Results {
			results[i] = VariantResult{
				Index: r.Index, Key: r.Key,
				Payload: json.RawMessage(r.Payload), TimeBits: r.TimeBits,
			}
		}
		if err := c.mergeShard(idx, dr.Worker, results, dr.Failures); err != nil {
			return nil, fmt.Errorf("shard: coordinator log %s: replaying %s: %w", log.Path(), id, err)
		}
		delete(c.leases, idx)
		c.state[idx] = shardDone
		c.recoveredRecords += len(results)
		c.recoveredShards++
	}
	c.log = log
	return c, nil
}

// Logging hooks, called under c.mu. A write failure flips the job into
// degraded mode: the coordinator keeps serving from memory and stops
// appending (the journal would refuse anyway — its failure is sticky).
func (c *Coordinator) logAppend(key string, v any) {
	if c.log == nil || c.logDegraded {
		return
	}
	if err := c.log.append(key, v); err != nil {
		c.logDegraded = true
		c.logErr = err
	}
}

func (c *Coordinator) logLease(idx int, l lease) {
	c.logAppend(logLeasePrefix+c.shards[idx].ID, logLeaseRecord{
		Worker: l.worker, Epoch: l.epoch, DeadlineMs: l.deadline.UnixMilli(),
	})
}

func (c *Coordinator) logDone(idx int, worker string, epoch uint64, results []VariantResult, failures []VariantFailure) {
	lrs := make([]logResult, len(results))
	for i, r := range results {
		lrs[i] = logResult{Index: r.Index, Key: r.Key, Payload: []byte(r.Payload), TimeBits: r.TimeBits}
	}
	c.logAppend(logDonePrefix+c.shards[idx].ID, logDoneRecord{
		Worker: worker, Epoch: epoch, Results: lrs, Failures: failures,
	})
}
