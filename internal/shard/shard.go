// Package shard is the fault-tolerant distribution layer over the explore
// engine: a coordinator/worker protocol that partitions a parameter grid
// into shards, leases them to workers under heartbeat-renewed deadlines,
// steals back the shards of stragglers and dead workers, and merges the
// workers' sweep journals — bit-exact and fingerprint-bound, so merge is
// dedupe — into one journal the engine can replay.
//
// The design leans on invariants the rest of the codebase already
// guarantees:
//
//   - a variant's identity is its machine fingerprint, and a journal
//     record is keyed by it (explore's resume layer), so two workers that
//     evaluate the same variant write byte-identical records and
//     overlapping work merges by deduplication, never by arbitration;
//   - the grid materializes in deterministic odometer order (explore.Grid),
//     so a shard is just an index range plus a digest over the variant
//     fingerprints it covers — any process can regenerate the partition
//     from the job spec and verify it got the same one;
//   - sweep journals are bound to the workload's layout fingerprint, so a
//     merged journal inherits the binding and a version-skewed worker is
//     caught at journal open, not at merge.
//
// Killing any subset of workers therefore loses nothing: their per-shard
// journals survive on disk, the coordinator re-leases the shards, and the
// next owner replays the journal instead of recomputing. The headline
// property — kill any subset mid-sweep, resume, and the merged result set
// is bit-identical to a single-process exhaustive sweep — is asserted by
// this package's chaos test.
package shard

import (
	"crypto/sha256"
	"fmt"

	"skope/internal/hw"
)

// Shard is one contiguous slice of a sweep grid — the unit of lease,
// steal, and journal ownership.
type Shard struct {
	// ID names the shard within its job ("s0003-1a2b3c4d"): the index for
	// humans, a fingerprint prefix against collisions across jobs.
	ID string `json:"id"`
	// Index is the shard's position in the partition.
	Index int `json:"index"`
	// Start and End bound the shard's variants, [Start, End), as indices
	// into the grid's deterministic variant order.
	Start int `json:"start"`
	End   int `json:"end"`
	// Fingerprint digests the layout fingerprint plus every covered
	// variant's machine fingerprint. Two processes that disagree on the
	// grid (version skew, a drifted machine preset) disagree here and are
	// rejected before they can mix results.
	Fingerprint string `json:"fingerprint"`
}

// Size returns the number of variants the shard covers.
func (s Shard) Size() int { return s.End - s.Start }

// Partition slices the variants into shards of at most size variants each
// (size < 1 selects 16), digesting each shard under the layout
// fingerprint. The partition is deterministic: same layout, same variants,
// same size → identical shards, so coordinator and workers can each
// compute it independently and cross-check by fingerprint.
func Partition(layoutFP string, variants []*hw.Machine, size int) []Shard {
	if size < 1 {
		size = 16
	}
	shards := make([]Shard, 0, (len(variants)+size-1)/size)
	for start := 0; start < len(variants); start += size {
		end := start + size
		if end > len(variants) {
			end = len(variants)
		}
		fp := shardFingerprint(layoutFP, variants[start:end])
		shards = append(shards, Shard{
			ID:          fmt.Sprintf("s%04d-%s", len(shards), fp[:8]),
			Index:       len(shards),
			Start:       start,
			End:         end,
			Fingerprint: fp,
		})
	}
	return shards
}

// shardFingerprint digests the layout fingerprint and the covered machine
// fingerprints, length-framing each part so concatenation cannot alias.
func shardFingerprint(layoutFP string, variants []*hw.Machine) string {
	h := sha256.New()
	frame := func(s string) {
		var lenbuf [8]byte
		for i := 0; i < 8; i++ {
			lenbuf[i] = byte(len(s) >> (8 * i))
		}
		h.Write(lenbuf[:])
		h.Write([]byte(s))
	}
	frame(layoutFP)
	for _, m := range variants {
		frame(m.Fingerprint())
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
