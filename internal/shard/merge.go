package shard

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"skope/internal/explore"
	"skope/internal/journal"
)

// Journal merging. Sweep journals are keyed by machine fingerprint and
// bound (via journal meta) to a layout fingerprint, and identical keys
// under identical bindings carry byte-identical payloads — evaluation is
// deterministic and every float travels as its bit pattern. Merging is
// therefore deduplication: collect every record, refuse if the invariant
// is ever violated, and write the union sorted by key. Sorting makes the
// merge order-independent — same inputs in any order produce a
// byte-identical merged journal — which the merge tests assert literally.

// MergeStats reports what one MergeJournals call saw.
type MergeStats struct {
	// Inputs counts source journals read; TornInputs counts those with a
	// torn tail (tolerated: the tail is the footprint of a SIGKILL
	// mid-append, exactly what the shard layer must absorb).
	Inputs, TornInputs int
	// Records counts intact input records including duplicates; Unique is
	// the merged record count.
	Records, Unique int
}

// MergeJournals merges the sweep journals at srcs into one journal at
// dst, bound to the given layout fingerprint. Every source must carry the
// same binding (a worker that prepared a different model must not
// contribute) and duplicate keys must carry byte-identical payloads
// (ErrConflict otherwise). A torn tail on a source is tolerated — its
// intact records merge, the tail is ignored, the source is not modified.
// The output is written atomically (temp file + rename) in sorted key
// order, so the merged bytes depend only on the merged record set, never
// on input order.
func MergeJournals(dst, layoutFP string, srcs ...string) (MergeStats, error) {
	var stats MergeStats
	merged := make(map[string][]byte)
	for _, src := range srcs {
		rep, err := journal.Scan(src, func(key string, payload []byte) error {
			stats.Records++
			if prev, dup := merged[key]; dup {
				if !bytes.Equal(prev, payload) {
					return fmt.Errorf("shard: merge %s: variant %s has two different payloads: %w",
						src, key, ErrConflict)
				}
				return nil
			}
			merged[key] = append([]byte(nil), payload...)
			return nil
		})
		if err != nil {
			return stats, err
		}
		if rep.Meta[explore.MetaLayoutKey] != layoutFP {
			return stats, fmt.Errorf("shard: merge %s: journal bound to layout %q, merging %q: %w",
				src, rep.Meta[explore.MetaLayoutKey], layoutFP, journal.ErrMetaMismatch)
		}
		stats.Inputs++
		if rep.TornTail {
			stats.TornInputs++
		}
	}
	stats.Unique = len(merged)
	records := make([]Record, 0, len(merged))
	for k, v := range merged {
		records = append(records, Record{Key: k, Payload: v})
	}
	return stats, writeMerged(dst, layoutFP, records)
}

// WriteMerged persists the coordinator's merged record set as a sweep
// journal at path, bound to the job's layout fingerprint — directly
// resumable by explore's UseJournal, so replaying it through an engine
// (with a store attached) is how a finished job lands in the CAS.
func (c *Coordinator) WriteMerged(path string) (int, error) {
	records := c.MergedRecords()
	if err := writeMerged(path, c.cfg.Spec.LayoutFP, records); err != nil {
		return 0, err
	}
	return len(records), nil
}

// writeMerged writes records (sorted by key) to a fresh journal at path,
// atomically: the journal is built at path+".tmp" with fsync-per-record,
// then renamed over path.
func writeMerged(path, layoutFP string, records []Record) error {
	sort.Slice(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	tmp := path + ".tmp"
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("shard: merge: %w", err)
	}
	j, err := journal.Open(tmp)
	if err != nil {
		return fmt.Errorf("shard: merge: %w", err)
	}
	if err := j.SetMeta(map[string]string{explore.MetaLayoutKey: layoutFP}); err != nil {
		j.Close()
		return fmt.Errorf("shard: merge: %w", err)
	}
	for _, r := range records {
		if err := j.Append(r.Key, r.Payload); err != nil {
			j.Close()
			return fmt.Errorf("shard: merge: %w", err)
		}
	}
	if err := j.Close(); err != nil {
		return fmt.Errorf("shard: merge: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shard: merge: %w", err)
	}
	return nil
}
