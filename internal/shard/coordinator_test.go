package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/shard"
)

// stepClock is a manually advanced time source.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock {
	return &stepClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testSpec is a 6-variant, 3-shard job over a synthetic layout binding.
// Coordinator logic never prepares the workload, so the fingerprint can be
// symbolic here; worker tests use real ones.
func testSpec() shard.JobSpec {
	return shard.JobSpec{
		Bench: "sord",
		Scale: 1,
		Base:  hw.BGQ().Wire(),
		Axes: []explore.Axis{
			{Param: "mem-bandwidth", Values: []float64{16, 32, 64}},
			{Param: "net-latency-us", Values: []float64{1, 2}},
		},
		LayoutFP:  "layout-under-test",
		ShardSize: 2,
	}
}

func testCoordinator(t *testing.T, clock *stepClock) (*shard.Coordinator, []*hw.Machine) {
	t.Helper()
	spec := testSpec()
	c, err := shard.NewCoordinator(shard.Config{
		JobID:            "j-test",
		Spec:             spec,
		Lease:            time.Minute,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Minute,
		Clock:            clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	return c, variants
}

// shardResults fabricates valid results for every variant of sh.
func shardResults(variants []*hw.Machine, sh shard.Shard) []shard.VariantResult {
	var out []shard.VariantResult
	for i := sh.Start; i < sh.End; i++ {
		out = append(out, shard.VariantResult{
			Index:    i,
			Key:      variants[i].Fingerprint(),
			Payload:  []byte(fmt.Sprintf(`{"variant":%d}`, i)),
			TimeBits: math.Float64bits(float64(10 - i)),
		})
	}
	return out
}

func mustLease(t *testing.T, c *shard.Coordinator, worker string) shard.Shard {
	t.Helper()
	state, sh, _, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("lease %s: %v", worker, err)
	}
	if state != shard.LeaseGranted {
		t.Fatalf("lease %s: state %q, want granted", worker, state)
	}
	return sh
}

func leaseState(t *testing.T, c *shard.Coordinator, worker string) shard.LeaseState {
	t.Helper()
	state, _, _, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("lease %s: %v", worker, err)
	}
	return state
}

func TestCoordinatorRequiresLayout(t *testing.T) {
	spec := testSpec()
	spec.LayoutFP = ""
	if _, err := shard.NewCoordinator(shard.Config{JobID: "j", Spec: spec}); err == nil {
		t.Fatal("NewCoordinator accepted a spec with no layout fingerprint")
	}
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	s0 := mustLease(t, c, "a")
	s1 := mustLease(t, c, "b")
	s2 := mustLease(t, c, "c")
	if s0.Index == s1.Index || s1.Index == s2.Index || s0.Index == s2.Index {
		t.Fatalf("duplicate shard grants: %d %d %d", s0.Index, s1.Index, s2.Index)
	}
	// Everything is leased: the next request waits.
	if st := leaseState(t, c, "d"); st != shard.LeaseWait {
		t.Fatalf("state %q, want wait", st)
	}

	for w, sh := range map[string]shard.Shard{"a": s0, "b": s1, "c": s2} {
		if err := c.Complete(w, sh.ID, shardResults(variants, sh), nil); err != nil {
			t.Fatalf("complete %s: %v", w, err)
		}
	}
	if !c.Done() {
		t.Fatal("job not done after all completions")
	}
	if st := leaseState(t, c, "d"); st != shard.LeaseDone {
		t.Fatalf("state %q, want done", st)
	}

	recs := c.MergedRecords()
	if len(recs) != len(variants) {
		t.Fatalf("merged %d records, want %d", len(recs), len(variants))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatal("merged records not in sorted key order")
		}
	}
	if got := c.Frontier().Len(); got == 0 {
		t.Fatal("frontier empty after completions")
	}

	st := c.Status()
	if !st.Done || st.Completed != 3 || st.Merged != len(variants) || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestCoordinatorLeaseExpiryStealsShard(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	s0 := mustLease(t, c, "dead")
	mustLease(t, c, "other1")
	mustLease(t, c, "other2")

	// Within the lease the shard is not re-granted.
	if st := leaseState(t, c, "thief"); st != shard.LeaseWait {
		t.Fatalf("state %q before expiry, want wait", st)
	}
	clock.Advance(2 * time.Minute)
	stolen := mustLease(t, c, "thief")
	if stolen.ID != s0.ID {
		t.Fatalf("thief got %s, want the expired %s", stolen.ID, s0.ID)
	}
	if got := c.Status().Steals; got < 1 {
		t.Fatalf("steals = %d, want >= 1", got)
	}
	// The dead worker's heartbeat is now refused.
	if _, err := c.Heartbeat("dead", s0.ID); !errors.Is(err, shard.ErrNotOwner) {
		t.Fatalf("heartbeat after steal: %v, want ErrNotOwner", err)
	}
	// But a late completion is still accepted — the records are valid.
	if err := c.Complete("dead", s0.ID, shardResults(variants, s0), nil); err != nil {
		t.Fatalf("late complete: %v", err)
	}
}

func TestCoordinatorHeartbeatRenews(t *testing.T) {
	clock := newStepClock()
	c, _ := testCoordinator(t, clock)

	sh := mustLease(t, c, "a")
	clock.Advance(45 * time.Second) // lease is 60s; renew at 45s
	if _, err := c.Heartbeat("a", sh.ID); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clock.Advance(45 * time.Second) // 90s from grant, 45s from renewal
	if _, err := c.Heartbeat("a", sh.ID); err != nil {
		t.Fatalf("renewed lease expired early: %v", err)
	}
	// A stranger cannot heartbeat someone else's lease.
	if _, err := c.Heartbeat("b", sh.ID); !errors.Is(err, shard.ErrNotOwner) {
		t.Fatalf("foreign heartbeat: %v, want ErrNotOwner", err)
	}
	// An unknown shard is its own error.
	if _, err := c.Heartbeat("a", "s9999-deadbeef"); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("unknown shard heartbeat: %v, want ErrUnknownShard", err)
	}
}

func TestCoordinatorCompleteValidation(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)
	sh := mustLease(t, c, "a")

	// Index outside the shard.
	bad := []shard.VariantResult{{Index: sh.End, Key: variants[sh.End].Fingerprint(), Payload: []byte(`{}`)}}
	if err := c.Complete("a", sh.ID, bad, nil); err == nil {
		t.Fatal("accepted an index outside the shard")
	}
	// Key that is not the variant's fingerprint (version skew).
	skewed := []shard.VariantResult{{Index: sh.Start, Key: "not-a-fingerprint", Payload: []byte(`{}`)}}
	if err := c.Complete("a", sh.ID, skewed, nil); !errors.Is(err, shard.ErrConflict) {
		t.Fatalf("skewed key: %v, want ErrConflict", err)
	}
	// Failure index outside the shard.
	if err := c.Complete("a", sh.ID, nil, []shard.VariantFailure{{Index: sh.End, Err: "x"}}); err == nil {
		t.Fatal("accepted a failure index outside the shard")
	}

	// A valid completion with one failure.
	results := shardResults(variants, sh)[:1]
	fails := []shard.VariantFailure{{Index: sh.Start + 1, Err: "confidence floor"}}
	if err := c.Complete("a", sh.ID, results, fails); err != nil {
		t.Fatalf("complete: %v", err)
	}
	recorded := c.Failures()
	if len(recorded) != 1 || recorded[0].Index != sh.Start+1 || recorded[0].Worker != "a" {
		t.Fatalf("failures = %+v", recorded)
	}
}

func TestCoordinatorDuplicateAndConflictingPayloads(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	sh := mustLease(t, c, "a")
	results := shardResults(variants, sh)
	if err := c.Complete("a", sh.ID, results, nil); err != nil {
		t.Fatalf("complete: %v", err)
	}

	// The same records again (overlapping work after a steal): dedupe.
	if err := c.Complete("b", sh.ID, results, nil); err != nil {
		t.Fatalf("duplicate complete: %v", err)
	}
	if got := c.Status().Merged; got != sh.Size() {
		t.Fatalf("merged = %d after dedupe, want %d", got, sh.Size())
	}

	// The same key with different bytes: refuse, never arbitrate.
	conflict := shardResults(variants, sh)
	conflict[0].Payload = []byte(`{"variant":"tampered"}`)
	if err := c.Complete("b", sh.ID, conflict, nil); !errors.Is(err, shard.ErrConflict) {
		t.Fatalf("conflicting payload: %v, want ErrConflict", err)
	}
}

func TestCoordinatorBreakerQuarantineAndProbe(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	// Two consecutive shard failures (threshold 2) quarantine the worker.
	for i := 0; i < 2; i++ {
		sh := mustLease(t, c, "flaky")
		if err := c.Fail("flaky", sh.ID, "boom"); err != nil {
			t.Fatalf("fail: %v", err)
		}
	}
	if st := leaseState(t, c, "flaky"); st != shard.LeaseQuarantined {
		t.Fatalf("state %q after threshold failures, want quarantined", st)
	}
	if q := c.Status().Quarantined; len(q) != 1 || q[0] != "flaky" {
		t.Fatalf("Quarantined = %v", q)
	}
	// Other workers are unaffected: the job completes around the pariah.
	for {
		state, sh, _, err := c.Lease("steady")
		if err != nil {
			t.Fatal(err)
		}
		if state == shard.LeaseDone {
			break
		}
		if state != shard.LeaseGranted {
			t.Fatalf("steady worker got state %q", state)
		}
		if err := c.Complete("steady", sh.ID, shardResults(variants, sh), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Done() {
		t.Fatal("job not done")
	}

	// After the cooldown the breaker admits a probe again — and a wasted
	// "done" response must not have consumed it.
	clock.Advance(11 * time.Minute)
	if st := leaseState(t, c, "flaky"); st != shard.LeaseDone {
		t.Fatalf("probe lease state %q, want done", st)
	}
}

func TestCoordinatorProbeRecovery(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	for i := 0; i < 2; i++ {
		sh := mustLease(t, c, "flaky")
		_ = c.Fail("flaky", sh.ID, "boom")
	}
	if st := leaseState(t, c, "flaky"); st != shard.LeaseQuarantined {
		t.Fatalf("state %q, want quarantined", st)
	}
	clock.Advance(11 * time.Minute)
	// Cooldown elapsed: exactly one probe lease is granted...
	sh := mustLease(t, c, "flaky")
	// ...and until it resolves, no second grant for this worker.
	if st := leaseState(t, c, "flaky"); st != shard.LeaseQuarantined {
		t.Fatalf("second probe state %q, want quarantined", st)
	}
	// The probe succeeding closes the breaker: leases flow again.
	if err := c.Complete("flaky", sh.ID, shardResults(variants, sh), nil); err != nil {
		t.Fatal(err)
	}
	if st := leaseState(t, c, "flaky"); st != shard.LeaseGranted {
		t.Fatalf("post-recovery state %q, want granted", st)
	}
	if q := c.Status().Quarantined; len(q) != 0 {
		t.Fatalf("Quarantined = %v after recovery", q)
	}
}

func TestCoordinatorFailReturnsShardToPool(t *testing.T) {
	clock := newStepClock()
	c, _ := testCoordinator(t, clock)

	sh := mustLease(t, c, "a")
	if err := c.Fail("a", sh.ID, "cannot open journal"); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Pending != 3 || st.Leased != 0 {
		t.Fatalf("status after fail = %+v, want all pending", st)
	}
	// Another worker picks the same shard back up.
	got := mustLease(t, c, "b")
	if got.ID != sh.ID {
		t.Fatalf("b got %s, want the returned %s", got.ID, sh.ID)
	}
}

func TestCoordinatorMergedRecordsAreCopies(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)
	sh := mustLease(t, c, "a")
	if err := c.Complete("a", sh.ID, shardResults(variants, sh), nil); err != nil {
		t.Fatal(err)
	}
	recs := c.MergedRecords()
	want := append([]byte(nil), recs[0].Payload...)
	recs[0].Payload[0] = 'X'
	again := c.MergedRecords()
	if !bytes.Equal(again[0].Payload, want) {
		t.Fatal("MergedRecords exposed internal payload storage")
	}
}
