package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/shard"
)

// stepClock is a manually advanced time source.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock {
	return &stepClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testSpec is a 6-variant, 3-shard job over a synthetic layout binding.
// Coordinator logic never prepares the workload, so the fingerprint can be
// symbolic here; worker tests use real ones.
func testSpec() shard.JobSpec {
	return shard.JobSpec{
		Bench: "sord",
		Scale: 1,
		Base:  hw.BGQ().Wire(),
		Axes: []explore.Axis{
			{Param: "mem-bandwidth", Values: []float64{16, 32, 64}},
			{Param: "net-latency-us", Values: []float64{1, 2}},
		},
		LayoutFP:  "layout-under-test",
		ShardSize: 2,
	}
}

func testCoordinator(t *testing.T, clock *stepClock) (*shard.Coordinator, []*hw.Machine) {
	t.Helper()
	spec := testSpec()
	c, err := shard.NewCoordinator(shard.Config{
		JobID:            "j-test",
		Spec:             spec,
		Lease:            time.Minute,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Minute,
		Clock:            clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	return c, variants
}

// shardResults fabricates valid results for every variant of sh.
func shardResults(variants []*hw.Machine, sh shard.Shard) []shard.VariantResult {
	var out []shard.VariantResult
	for i := sh.Start; i < sh.End; i++ {
		out = append(out, shard.VariantResult{
			Index:    i,
			Key:      variants[i].Fingerprint(),
			Payload:  []byte(fmt.Sprintf(`{"variant":%d}`, i)),
			TimeBits: math.Float64bits(float64(10 - i)),
		})
	}
	return out
}

func mustLease(t *testing.T, c *shard.Coordinator, worker string) shard.Grant {
	t.Helper()
	g, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("lease %s: %v", worker, err)
	}
	if g.State != shard.LeaseGranted {
		t.Fatalf("lease %s: state %q, want granted", worker, g.State)
	}
	return g
}

func leaseState(t *testing.T, c *shard.Coordinator, worker string) shard.LeaseState {
	t.Helper()
	g, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("lease %s: %v", worker, err)
	}
	return g.State
}

func TestCoordinatorRequiresLayout(t *testing.T) {
	spec := testSpec()
	spec.LayoutFP = ""
	if _, err := shard.NewCoordinator(shard.Config{JobID: "j", Spec: spec}); err == nil {
		t.Fatal("NewCoordinator accepted a spec with no layout fingerprint")
	}
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	g0 := mustLease(t, c, "a")
	g1 := mustLease(t, c, "b")
	g2 := mustLease(t, c, "c")
	if g0.Shard.Index == g1.Shard.Index || g1.Shard.Index == g2.Shard.Index || g0.Shard.Index == g2.Shard.Index {
		t.Fatalf("duplicate shard grants: %d %d %d", g0.Shard.Index, g1.Shard.Index, g2.Shard.Index)
	}
	// Everything is leased: the next request waits.
	if st := leaseState(t, c, "d"); st != shard.LeaseWait {
		t.Fatalf("state %q, want wait", st)
	}

	for w, g := range map[string]shard.Grant{"a": g0, "b": g1, "c": g2} {
		if err := c.Complete(w, g.Shard.ID, g.Epoch, shardResults(variants, g.Shard), nil); err != nil {
			t.Fatalf("complete %s: %v", w, err)
		}
	}
	if !c.Done() {
		t.Fatal("job not done after all completions")
	}
	if st := leaseState(t, c, "d"); st != shard.LeaseDone {
		t.Fatalf("state %q, want done", st)
	}

	recs := c.MergedRecords()
	if len(recs) != len(variants) {
		t.Fatalf("merged %d records, want %d", len(recs), len(variants))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatal("merged records not in sorted key order")
		}
	}
	if got := c.Frontier().Len(); got == 0 {
		t.Fatal("frontier empty after completions")
	}

	st := c.Status()
	if !st.Done || st.Completed != 3 || st.Merged != len(variants) || st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestCoordinatorLeaseExpiryStealsShard(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	g0 := mustLease(t, c, "dead")
	mustLease(t, c, "other1")
	mustLease(t, c, "other2")

	// Within the lease the shard is not re-granted.
	if st := leaseState(t, c, "thief"); st != shard.LeaseWait {
		t.Fatalf("state %q before expiry, want wait", st)
	}
	clock.Advance(2 * time.Minute)
	stolen := mustLease(t, c, "thief")
	if stolen.Shard.ID != g0.Shard.ID {
		t.Fatalf("thief got %s, want the expired %s", stolen.Shard.ID, g0.Shard.ID)
	}
	if stolen.Epoch <= g0.Epoch {
		t.Fatalf("steal did not bump the epoch: %d -> %d", g0.Epoch, stolen.Epoch)
	}
	if got := c.Status().Steals; got < 1 {
		t.Fatalf("steals = %d, want >= 1", got)
	}
	// The dead worker's heartbeat carries the old epoch: fenced.
	if _, err := c.Heartbeat("dead", g0.Shard.ID, g0.Epoch); !errors.Is(err, shard.ErrStaleLease) {
		t.Fatalf("heartbeat after steal: %v, want ErrStaleLease", err)
	}
	// And its late completion is fenced too — only the thief's report may
	// land, no matter how the deliveries race.
	if err := c.Complete("dead", g0.Shard.ID, g0.Epoch, shardResults(variants, g0.Shard), nil); !errors.Is(err, shard.ErrStaleLease) {
		t.Fatalf("late complete: %v, want ErrStaleLease", err)
	}
	if got := c.Status().StaleFenced; got != 2 {
		t.Fatalf("StaleFenced = %d, want 2", got)
	}
	// The thief's completion lands normally.
	if err := c.Complete("thief", stolen.Shard.ID, stolen.Epoch, shardResults(variants, stolen.Shard), nil); err != nil {
		t.Fatalf("thief complete: %v", err)
	}
}

func TestCoordinatorHeartbeatRenews(t *testing.T) {
	clock := newStepClock()
	c, _ := testCoordinator(t, clock)

	g := mustLease(t, c, "a")
	clock.Advance(45 * time.Second) // lease is 60s; renew at 45s
	if _, err := c.Heartbeat("a", g.Shard.ID, g.Epoch); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	clock.Advance(45 * time.Second) // 90s from grant, 45s from renewal
	if _, err := c.Heartbeat("a", g.Shard.ID, g.Epoch); err != nil {
		t.Fatalf("renewed lease expired early: %v", err)
	}
	// A stranger cannot heartbeat someone else's lease, even with the
	// right epoch.
	if _, err := c.Heartbeat("b", g.Shard.ID, g.Epoch); !errors.Is(err, shard.ErrNotOwner) {
		t.Fatalf("foreign heartbeat: %v, want ErrNotOwner", err)
	}
	// An unknown shard is its own error.
	if _, err := c.Heartbeat("a", "s9999-deadbeef", g.Epoch); !errors.Is(err, shard.ErrUnknownShard) {
		t.Fatalf("unknown shard heartbeat: %v, want ErrUnknownShard", err)
	}
}

func TestCoordinatorCompleteValidation(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)
	g := mustLease(t, c, "a")
	sh := g.Shard

	// Index outside the shard.
	bad := []shard.VariantResult{{Index: sh.End, Key: variants[sh.End].Fingerprint(), Payload: []byte(`{}`)}}
	if err := c.Complete("a", sh.ID, g.Epoch, bad, nil); err == nil {
		t.Fatal("accepted an index outside the shard")
	}
	// Key that is not the variant's fingerprint (version skew).
	skewed := []shard.VariantResult{{Index: sh.Start, Key: "not-a-fingerprint", Payload: []byte(`{}`)}}
	if err := c.Complete("a", sh.ID, g.Epoch, skewed, nil); !errors.Is(err, shard.ErrConflict) {
		t.Fatalf("skewed key: %v, want ErrConflict", err)
	}
	// Failure index outside the shard.
	if err := c.Complete("a", sh.ID, g.Epoch, nil, []shard.VariantFailure{{Index: sh.End, Err: "x"}}); err == nil {
		t.Fatal("accepted a failure index outside the shard")
	}

	// A valid completion with one failure.
	results := shardResults(variants, sh)[:1]
	fails := []shard.VariantFailure{{Index: sh.Start + 1, Err: "confidence floor"}}
	if err := c.Complete("a", sh.ID, g.Epoch, results, fails); err != nil {
		t.Fatalf("complete: %v", err)
	}
	recorded := c.Failures()
	if len(recorded) != 1 || recorded[0].Index != sh.Start+1 || recorded[0].Worker != "a" {
		t.Fatalf("failures = %+v", recorded)
	}
}

func TestCoordinatorDuplicateAndConflictingPayloads(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	g := mustLease(t, c, "a")
	results := shardResults(variants, g.Shard)
	if err := c.Complete("a", g.Shard.ID, g.Epoch, results, nil); err != nil {
		t.Fatalf("complete: %v", err)
	}

	// The same completion delivered again (a retry after a lost response):
	// acknowledged idempotently, nothing re-merged or double-counted.
	if err := c.Complete("a", g.Shard.ID, g.Epoch, results, nil); err != nil {
		t.Fatalf("duplicate complete: %v", err)
	}
	if got := c.Status().Merged; got != g.Shard.Size() {
		t.Fatalf("merged = %d after duplicate delivery, want %d", got, g.Shard.Size())
	}

	// The same key with different bytes: refuse, never arbitrate.
	g2 := mustLease(t, c, "b")
	conflict := shardResults(variants, g2.Shard)
	tampered := conflict[0]
	tampered.Payload = []byte(`{"variant":"tampered"}`)
	conflict = append(conflict, tampered)
	if err := c.Complete("b", g2.Shard.ID, g2.Epoch, conflict, nil); !errors.Is(err, shard.ErrConflict) {
		t.Fatalf("conflicting payload: %v, want ErrConflict", err)
	}
}

func TestCoordinatorBreakerQuarantineAndProbe(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	// Two consecutive shard failures (threshold 2) quarantine the worker.
	for i := 0; i < 2; i++ {
		g := mustLease(t, c, "flaky")
		if err := c.Fail("flaky", g.Shard.ID, g.Epoch, "boom"); err != nil {
			t.Fatalf("fail: %v", err)
		}
	}
	if st := leaseState(t, c, "flaky"); st != shard.LeaseQuarantined {
		t.Fatalf("state %q after threshold failures, want quarantined", st)
	}
	if q := c.Status().Quarantined; len(q) != 1 || q[0] != "flaky" {
		t.Fatalf("Quarantined = %v", q)
	}
	// Other workers are unaffected: the job completes around the pariah.
	for {
		g, err := c.Lease("steady")
		if err != nil {
			t.Fatal(err)
		}
		if g.State == shard.LeaseDone {
			break
		}
		if g.State != shard.LeaseGranted {
			t.Fatalf("steady worker got state %q", g.State)
		}
		if err := c.Complete("steady", g.Shard.ID, g.Epoch, shardResults(variants, g.Shard), nil); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Done() {
		t.Fatal("job not done")
	}

	// After the cooldown the breaker admits a probe again — and a wasted
	// "done" response must not have consumed it.
	clock.Advance(11 * time.Minute)
	if st := leaseState(t, c, "flaky"); st != shard.LeaseDone {
		t.Fatalf("probe lease state %q, want done", st)
	}
}

func TestCoordinatorProbeRecovery(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)

	for i := 0; i < 2; i++ {
		g := mustLease(t, c, "flaky")
		_ = c.Fail("flaky", g.Shard.ID, g.Epoch, "boom")
	}
	if st := leaseState(t, c, "flaky"); st != shard.LeaseQuarantined {
		t.Fatalf("state %q, want quarantined", st)
	}
	clock.Advance(11 * time.Minute)
	// Cooldown elapsed: exactly one probe lease is granted...
	probe := mustLease(t, c, "flaky")
	// ...and a repeated request re-delivers the same probe idempotently
	// (same shard, same epoch) instead of handing out a second shard.
	again := mustLease(t, c, "flaky")
	if again.Shard.ID != probe.Shard.ID || again.Epoch != probe.Epoch {
		t.Fatalf("second probe got %s epoch %d, want the idempotent %s epoch %d",
			again.Shard.ID, again.Epoch, probe.Shard.ID, probe.Epoch)
	}
	// The probe succeeding closes the breaker: leases flow again.
	if err := c.Complete("flaky", probe.Shard.ID, probe.Epoch, shardResults(variants, probe.Shard), nil); err != nil {
		t.Fatal(err)
	}
	if st := leaseState(t, c, "flaky"); st != shard.LeaseGranted {
		t.Fatalf("post-recovery state %q, want granted", st)
	}
	if q := c.Status().Quarantined; len(q) != 0 {
		t.Fatalf("Quarantined = %v after recovery", q)
	}
}

func TestCoordinatorFailReturnsShardToPool(t *testing.T) {
	clock := newStepClock()
	c, _ := testCoordinator(t, clock)

	g := mustLease(t, c, "a")
	if err := c.Fail("a", g.Shard.ID, g.Epoch, "cannot open journal"); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Pending != 3 || st.Leased != 0 {
		t.Fatalf("status after fail = %+v, want all pending", st)
	}
	// Another worker picks the same shard back up, under a fresh epoch.
	got := mustLease(t, c, "b")
	if got.Shard.ID != g.Shard.ID {
		t.Fatalf("b got %s, want the returned %s", got.Shard.ID, g.Shard.ID)
	}
	if got.Epoch <= g.Epoch {
		t.Fatalf("re-grant epoch %d not past the failed %d", got.Epoch, g.Epoch)
	}
}

func TestCoordinatorMergedRecordsAreCopies(t *testing.T) {
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)
	g := mustLease(t, c, "a")
	if err := c.Complete("a", g.Shard.ID, g.Epoch, shardResults(variants, g.Shard), nil); err != nil {
		t.Fatal(err)
	}
	recs := c.MergedRecords()
	want := append([]byte(nil), recs[0].Payload...)
	recs[0].Payload[0] = 'X'
	again := c.MergedRecords()
	if !bytes.Equal(again[0].Payload, want) {
		t.Fatal("MergedRecords exposed internal payload storage")
	}
}
