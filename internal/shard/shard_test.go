package shard_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"skope/internal/hw"
	"skope/internal/shard"
)

// testVariants builds n valid, distinct BG/Q variants (distinct memory
// bandwidths → distinct fingerprints).
func testVariants(t testing.TB, n int) []*hw.Machine {
	t.Helper()
	out := make([]*hw.Machine, n)
	for i := range out {
		m := hw.BGQ()
		m.Name = fmt.Sprintf("BG/Q[v%d]", i)
		m.MemBandwidthGBs = 16 + float64(i)
		if err := m.Validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", i, err)
		}
		out[i] = m
	}
	return out
}

func TestPartitionShapes(t *testing.T) {
	variants := testVariants(t, 10)
	shards := shard.Partition("layout-a", variants, 4)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	wantBounds := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	total := 0
	for i, s := range shards {
		if s.Index != i {
			t.Errorf("shard %d: Index = %d", i, s.Index)
		}
		if s.Start != wantBounds[i][0] || s.End != wantBounds[i][1] {
			t.Errorf("shard %d: [%d,%d), want [%d,%d)", i, s.Start, s.End, wantBounds[i][0], wantBounds[i][1])
		}
		if s.Size() != s.End-s.Start {
			t.Errorf("shard %d: Size() = %d", i, s.Size())
		}
		wantPrefix := fmt.Sprintf("s%04d-", i)
		if !strings.HasPrefix(s.ID, wantPrefix) {
			t.Errorf("shard %d: ID %q lacks prefix %q", i, s.ID, wantPrefix)
		}
		if !strings.HasSuffix(s.ID, s.Fingerprint[:8]) {
			t.Errorf("shard %d: ID %q does not carry fingerprint prefix %q", i, s.ID, s.Fingerprint[:8])
		}
		total += s.Size()
	}
	if total != len(variants) {
		t.Errorf("shards cover %d variants, want %d", total, len(variants))
	}
}

func TestPartitionDefaultSize(t *testing.T) {
	variants := testVariants(t, 20)
	shards := shard.Partition("layout-a", variants, 0)
	if len(shards) != 2 || shards[0].Size() != 16 || shards[1].Size() != 4 {
		t.Fatalf("size<1 should select 16: got %d shards, sizes %v", len(shards), shards)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	variants := testVariants(t, 9)
	a := shard.Partition("layout-a", variants, 3)
	b := shard.Partition("layout-a", testVariants(t, 9), 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs produced different partitions:\n%v\n%v", a, b)
	}
}

func TestPartitionFingerprintSensitivity(t *testing.T) {
	variants := testVariants(t, 6)
	base := shard.Partition("layout-a", variants, 3)

	// A different layout fingerprint changes every shard fingerprint.
	other := shard.Partition("layout-b", variants, 3)
	for i := range base {
		if base[i].Fingerprint == other[i].Fingerprint {
			t.Errorf("shard %d: fingerprint unchanged under a different layout", i)
		}
	}

	// Perturbing one variant changes exactly the shard that covers it.
	perturbed := testVariants(t, 6)
	perturbed[4].MemBandwidthGBs += 0.5
	after := shard.Partition("layout-a", perturbed, 3)
	if base[0].Fingerprint != after[0].Fingerprint {
		t.Errorf("shard 0 fingerprint changed by a variant it does not cover")
	}
	if base[1].Fingerprint == after[1].Fingerprint {
		t.Errorf("shard 1 fingerprint did not change with its variant")
	}
}
