package shard_test

// The chaos test: run a sharded sweep with real worker subprocesses,
// SIGKILL half of them mid-flight, resume with replacements, and assert
// the headline property — the merged result set is bit-identical to a
// single-process exhaustive sweep, with zero re-evaluation of variants
// that had already reached a shard journal when the workers died.
//
// The test binary doubles as the worker executable: TestMain checks
// SKOPE_SHARD_WORKER and, when set, runs chaosWorkerMain instead of the
// test suite (the standard helper-process pattern). The worker arms the
// explore.evaluate fault point to (a) append one line per *evaluation* to
// a shared log — replays from a journal never hit the point, which is
// exactly what makes the zero-re-evaluation assertion checkable — and
// (b) model per-variant latency, so kills land mid-shard.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/guard"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/shard"
	"skope/internal/workloads"
)

func TestMain(m *testing.M) {
	if os.Getenv("SKOPE_SHARD_WORKER") != "" {
		os.Exit(chaosWorkerMain())
	}
	os.Exit(m.Run())
}

// chaosWorkerMain is the subprocess entry point.
func chaosWorkerMain() int {
	var (
		url   = os.Getenv("SKOPE_SHARD_URL")
		job   = os.Getenv("SKOPE_SHARD_JOB")
		dir   = os.Getenv("SKOPE_SHARD_DIR")
		id    = os.Getenv("SKOPE_SHARD_ID")
		evlog = os.Getenv("SKOPE_SHARD_EVLOG")
	)
	slowMs, _ := strconv.Atoi(os.Getenv("SKOPE_SHARD_SLOW_MS"))
	var (
		logMu sync.Mutex
		logF  *os.File
	)
	if evlog != "" {
		f, err := os.OpenFile(evlog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			return 1
		}
		defer f.Close()
		logF = f
	}
	disarm := guard.Arm("explore.evaluate", func(detail string) {
		if logF != nil {
			logMu.Lock()
			fmt.Fprintf(logF, "%s\t%s\n", id, detail)
			logF.Sync()
			logMu.Unlock()
		}
		if slowMs > 0 {
			time.Sleep(time.Duration(slowMs) * time.Millisecond)
		}
	})
	defer disarm()

	w := &shard.Worker{
		Client:     &shard.Client{BaseURL: url},
		JobID:      job,
		ID:         id,
		DataDir:    dir,
		Poll:       50 * time.Millisecond,
		ReplayOnly: os.Getenv("SKOPE_SHARD_REPLAY_ONLY") != "",
	}
	if _, err := w.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "worker", id+":", err)
		return 1
	}
	return 0
}

// chaosSpec is a 24-variant, 12-shard job — enough shards that four
// workers are all mid-flight when the kills land.
func chaosSpec(t testing.TB) shard.JobSpec {
	t.Helper()
	run := preparedSord(t)
	layout, err := run.Layout()
	if err != nil {
		t.Fatal(err)
	}
	return shard.JobSpec{
		Bench: "sord",
		Scale: float64(workloads.ScaleTest),
		Base:  hw.BGQ().Wire(),
		Axes: []explore.Axis{
			{Param: "mem-bandwidth", Values: []float64{16, 24, 32, 48}},
			{Param: "net-latency-us", Values: []float64{1, 2, 4}},
			{Param: "freq-ghz", Values: []float64{1.6, 2.0}},
		},
		LayoutFP:  layout.Fingerprint(),
		ShardSize: 2,
	}
}

type chaosWorker struct {
	id  string
	cmd *exec.Cmd
	out bytes.Buffer
}

func spawnWorker(t *testing.T, url, job, dir, evlog, id string, slowMs int) *chaosWorker {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	w := &chaosWorker{id: id}
	w.cmd = exec.Command(exe)
	w.cmd.Env = append(os.Environ(),
		"SKOPE_SHARD_WORKER=1",
		"SKOPE_SHARD_URL="+url,
		"SKOPE_SHARD_JOB="+job,
		"SKOPE_SHARD_DIR="+dir,
		"SKOPE_SHARD_ID="+id,
		"SKOPE_SHARD_EVLOG="+evlog,
		"SKOPE_SHARD_SLOW_MS="+strconv.Itoa(slowMs),
	)
	w.cmd.Stdout = &w.out
	w.cmd.Stderr = &w.out
	if err := w.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return w
}

// evalLines reads the shared evaluation log: one "worker\tvariant" line
// per evaluation that actually ran.
func evalLines(t *testing.T, evlog string) []string {
	t.Helper()
	raw, err := os.ReadFile(evlog)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil
	}
	return lines
}

// journaledNames scans every shard journal and returns the variant names
// (the evaluation log's vocabulary) whose records are already durable.
func journaledNames(t *testing.T, dir, jobID string, variants []*hw.Machine) map[string]bool {
	t.Helper()
	fpToName := make(map[string]string, len(variants))
	for _, m := range variants {
		fpToName[m.Fingerprint()] = m.Name
	}
	paths, err := filepath.Glob(filepath.Join(dir, jobID+"-*.journal"))
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, p := range paths {
		// Scan tolerates torn tails — a SIGKILL mid-append leaves one.
		_, err := journal.Scan(p, func(key string, _ []byte) error {
			if name, ok := fpToName[key]; ok {
				names[name] = true
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan %s: %v", p, err)
		}
	}
	return names
}

func TestChaosKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := chaosSpec(t)
	run := preparedSord(t)
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}

	coord, client, jobID := serveJob(t, spec, shard.Config{
		JobID: "j-chaos",
		Lease: 1500 * time.Millisecond,
	})
	dir := t.TempDir()
	evlog := filepath.Join(dir, "evlog")
	const slowMs = 150

	// Four workers, then kill two once all four provably hold a lease.
	var workers []*chaosWorker
	for i := 0; i < 4; i++ {
		workers = append(workers, spawnWorker(t, client.BaseURL, jobID, dir, evlog, fmt.Sprintf("w%d", i), slowMs))
	}
	// The kill window: all four workers hold a lease (so the two victims
	// die mid-shard) and some variants are already durable (so the
	// zero-re-evaluation assertion has teeth).
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := coord.Status()
		if st.Leased == 4 && len(journaledNames(t, dir, jobID, variants)) >= 4 {
			break
		}
		if st.Done {
			t.Fatal("job finished before the kill window")
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for steady state: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// SIGKILL: no defers run, no journal close, no lease release. Every
	// one of the four held a lease a moment ago, so (short of a photo-
	// finish completion) the dead workers' shards must be stolen.
	for _, w := range workers[:2] {
		if err := w.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = w.cmd.Wait()
	}

	// Snapshot journals FIRST, the evaluation log second: an evaluation's
	// log line lands before its journal record, so any post-snapshot log
	// line naming a snapshotted variant is a genuine re-evaluation.
	durable := journaledNames(t, dir, jobID, variants)
	evalsAtSnapshot := len(evalLines(t, evlog))
	if len(durable) == 0 {
		t.Fatal("no variants journaled before the kill — the test lost its premise")
	}

	// Two replacement workers join the survivors; the dead workers never
	// come back (the permanently-dead case rides on the same run).
	for i := 4; i < 6; i++ {
		workers = append(workers, spawnWorker(t, client.BaseURL, jobID, dir, evlog, fmt.Sprintf("w%d", i), slowMs))
	}
	for _, w := range workers[2:] {
		if err := w.cmd.Wait(); err != nil {
			t.Fatalf("worker %s: %v\n%s", w.id, err, w.out.String())
		}
	}

	if !coord.Done() {
		t.Fatal("job not done after workers exited")
	}
	st := coord.Status()
	if st.Merged != len(variants) {
		t.Fatalf("merged %d of %d variants", st.Merged, len(variants))
	}
	if st.Failed != 0 {
		t.Fatalf("status reports %d failed variants: %+v", st.Failed, coord.Failures())
	}
	if st.Steals == 0 {
		t.Error("no leases were stolen — the kill landed between leases?")
	}

	// Zero re-evaluation: nothing that was durable at the kill was
	// evaluated again by the survivors or replacements.
	after := evalLines(t, evlog)[evalsAtSnapshot:]
	for _, line := range after {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) == 2 && durable[parts[1]] {
			t.Errorf("variant %q re-evaluated by %s after it was journaled", parts[1], parts[0])
		}
	}
	// (A variant evaluated by a dead worker whose record never reached
	// disk is legitimately re-evaluated by the thief — only durability
	// makes re-evaluation a bug, so the assertion is scoped to durable.)

	// The headline: merged results are bit-identical to a single-process
	// exhaustive sweep.
	assertMergedMatchesDirect(t, coord, run, spec, filepath.Join(dir, "merged.journal"))
}
