package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"skope/internal/resilience"
)

// Service is the coordinator's HTTP surface: a job registry plus the
// worker-protocol routes, mountable into any daemon's mux (cmd/skoped
// mounts it next to the session routes; the local multi-process mode and
// tests mount it on a httptest server). Job creation is left to the host
// — computing a job's layout fingerprint means preparing the workload,
// which each host schedules its own way — so the host creates Coordinators
// and Adds them here.
type Service struct {
	mu     sync.Mutex
	jobs   map[string]*Coordinator
	order  []string
	nextID int
}

// NewService returns an empty job registry.
func NewService() *Service {
	return &Service{jobs: make(map[string]*Coordinator)}
}

// Add registers a coordinator under its job ID. IDs of the minted form
// ("j-000042") advance the NextJobID counter past themselves, so a
// daemon that recovers persisted jobs at startup never mints a
// colliding ID for the next submission.
func (s *Service) Add(c *Coordinator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := c.cfg.JobID
	if _, dup := s.jobs[id]; !dup {
		s.order = append(s.order, id)
	}
	s.jobs[id] = c
	if rest, ok := strings.CutPrefix(id, "j-"); ok {
		if n, err := strconv.Atoi(rest); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
}

// NextJobID mints a fresh job ID ("j-000001", ...).
func (s *Service) NextJobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("j-%06d", s.nextID)
}

// Job returns the coordinator for the given job ID, if registered.
func (s *Service) Job(id string) (*Coordinator, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.jobs[id]
	return c, ok
}

// Statuses snapshots every registered job in creation order.
func (s *Service) Statuses() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Coordinator, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, c := range jobs {
		out[i] = c.Status()
	}
	return out
}

// Mount registers the shard routes on the mux: job listing and detail,
// plus the worker protocol (register, lease, heartbeat, complete, fail).
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/shards", s.handleList)
	mux.HandleFunc("GET /v1/shards/{job}", s.handleDetail)
	mux.HandleFunc("POST /v1/shards/{job}/register", s.handleRegister)
	mux.HandleFunc("POST /v1/shards/{job}/lease", s.handleLease)
	mux.HandleFunc("POST /v1/shards/{job}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /v1/shards/{job}/complete", s.handleComplete)
	mux.HandleFunc("POST /v1/shards/{job}/fail", s.handleFail)
}

// Wire shapes of the worker protocol.
type workerRequest struct {
	Worker string `json:"worker"`
	Shard  string `json:"shard,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Epoch is the fencing token from the shard's grant; heartbeat,
	// complete, and fail reports are rejected when it is stale.
	Epoch uint64 `json:"epoch,omitempty"`

	Results  []VariantResult  `json:"results,omitempty"`
	Failures []VariantFailure `json:"failures,omitempty"`
}

// LeaseResponse is the wire form of one lease request's outcome.
type LeaseResponse struct {
	State LeaseState `json:"state"`
	// Shard and Epoch are set when State is LeaseGranted.
	Shard *Shard `json:"shard,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// LeaseMs is the granted (or renewed) lease duration.
	LeaseMs int64 `json:"lease_ms,omitempty"`
}

// JobDetail is the wire form of one job: its live status plus everything
// a worker needs to participate (the spec to reproduce the grid, the
// partition to cross-check it).
type JobDetail struct {
	Status Status  `json:"status"`
	Spec   JobSpec `json:"spec"`
	Shards []Shard `json:"shards"`
}

// Protocol error codes (the "code" field of error responses), so clients
// can map HTTP errors back to the package's sentinel errors.
const (
	codeNotOwner     = "not_owner"
	codeConflict     = "conflict"
	codeUnknownShard = "unknown_shard"
	codeStaleLease   = "stale_epoch"
)

func shardWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func shardWriteError(w http.ResponseWriter, err error) {
	status, code := http.StatusBadRequest, ""
	switch {
	case errors.Is(err, ErrNotOwner):
		status, code = http.StatusConflict, codeNotOwner
	case errors.Is(err, ErrStaleLease):
		status, code = http.StatusConflict, codeStaleLease
	case errors.Is(err, ErrConflict):
		status, code = http.StatusConflict, codeConflict
	case errors.Is(err, ErrUnknownShard):
		status, code = http.StatusNotFound, codeUnknownShard
	}
	shardWriteJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// job resolves the {job} path segment; nil means the response was written.
func (s *Service) job(w http.ResponseWriter, r *http.Request) *Coordinator {
	id := r.PathValue("job")
	c, ok := s.Job(id)
	if !ok {
		shardWriteJSON(w, http.StatusNotFound, map[string]string{"error": "no job " + id})
	}
	return c
}

// decode parses the request body; false means the response was written.
func decode(w http.ResponseWriter, r *http.Request, req *workerRequest) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		shardWriteJSON(w, http.StatusBadRequest, map[string]string{"error": "body: " + err.Error()})
		return false
	}
	if req.Worker == "" {
		shardWriteJSON(w, http.StatusBadRequest, map[string]string{"error": "worker is required"})
		return false
	}
	return true
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	statuses := s.Statuses()
	sort.SliceStable(statuses, func(i, j int) bool { return statuses[i].JobID < statuses[j].JobID })
	shardWriteJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (s *Service) handleDetail(w http.ResponseWriter, r *http.Request) {
	c := s.job(w, r)
	if c == nil {
		return
	}
	shardWriteJSON(w, http.StatusOK, JobDetail{Status: c.Status(), Spec: c.Spec(), Shards: c.Shards()})
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	c := s.job(w, r)
	if c == nil {
		return
	}
	var req workerRequest
	if !decode(w, r, &req) {
		return
	}
	c.Register(req.Worker)
	shardWriteJSON(w, http.StatusOK, map[string]string{"worker": req.Worker})
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	c := s.job(w, r)
	if c == nil {
		return
	}
	var req workerRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := c.Lease(req.Worker)
	if err != nil {
		shardWriteError(w, err)
		return
	}
	resp := LeaseResponse{State: g.State, LeaseMs: g.Lease.Milliseconds()}
	if g.State == LeaseGranted {
		sh := g.Shard
		resp.Shard = &sh
		resp.Epoch = g.Epoch
	}
	shardWriteJSON(w, http.StatusOK, resp)
}

func (s *Service) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	c := s.job(w, r)
	if c == nil {
		return
	}
	var req workerRequest
	if !decode(w, r, &req) {
		return
	}
	d, err := c.Heartbeat(req.Worker, req.Shard, req.Epoch)
	if err != nil {
		shardWriteError(w, err)
		return
	}
	shardWriteJSON(w, http.StatusOK, LeaseResponse{State: LeaseGranted, LeaseMs: d.Milliseconds()})
}

func (s *Service) handleComplete(w http.ResponseWriter, r *http.Request) {
	c := s.job(w, r)
	if c == nil {
		return
	}
	var req workerRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Complete(req.Worker, req.Shard, req.Epoch, req.Results, req.Failures); err != nil {
		shardWriteError(w, err)
		return
	}
	shardWriteJSON(w, http.StatusOK, map[string]any{"merged": true})
}

func (s *Service) handleFail(w http.ResponseWriter, r *http.Request) {
	c := s.job(w, r)
	if c == nil {
		return
	}
	var req workerRequest
	if !decode(w, r, &req) {
		return
	}
	if err := c.Fail(req.Worker, req.Shard, req.Epoch, req.Reason); err != nil {
		shardWriteError(w, err)
		return
	}
	shardWriteJSON(w, http.StatusOK, map[string]any{"failed": true})
}

// ErrUnavailable marks a coordinator-side server error (HTTP 5xx): the
// coordinator exists but could not serve the request. Transient by
// classification — a restarting daemon answers 5xx or resets until it
// is back, and the worker's retry policy is what bridges the gap.
var ErrUnavailable = errors.New("coordinator unavailable")

// Client is the typed client of the worker protocol — what Worker.Run and
// the daemons' status commands speak. Every method takes a context and
// runs under a per-call deadline (Timeout), so one hung connection can
// never stall a worker past its heartbeat cadence; deadline misses are
// marked as attempt timeouts, which the retry classification treats as
// transient (the parent context expiring is not).
type Client struct {
	// BaseURL is the coordinator's root (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// HTTP overrides the whole HTTP client (tests pass a httptest
	// server's). When nil, a client over Transport is used.
	HTTP *http.Client
	// Transport, when HTTP is nil, is the RoundTripper to use (nil
	// selects http.DefaultTransport). The netfault chaos seam threads
	// in here.
	Transport http.RoundTripper
	// Timeout is the per-call deadline (default 30s, <0 disables). The
	// effective deadline is the earlier of this and the caller's
	// context — workers derive tighter per-RPC deadlines from their
	// lease duration and pass them via ctx.
	Timeout time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Transport: c.Transport}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout != 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

// protocolError reconstructs a sentinel-wrapped error from an error
// response body.
func protocolError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	_ = json.Unmarshal(body, &e)
	if e.Error == "" {
		e.Error = fmt.Sprintf("http %d", status)
	}
	switch e.Code {
	case codeNotOwner:
		return fmt.Errorf("%s: %w", e.Error, ErrNotOwner)
	case codeStaleLease:
		return fmt.Errorf("%s: %w", e.Error, ErrStaleLease)
	case codeConflict:
		return fmt.Errorf("%s: %w", e.Error, ErrConflict)
	case codeUnknownShard:
		return fmt.Errorf("%s: %w", e.Error, ErrUnknownShard)
	}
	if status >= 500 {
		return fmt.Errorf("%s: %w", e.Error, ErrUnavailable)
	}
	return errors.New(e.Error)
}

// do runs one HTTP exchange under the per-call deadline and reads the
// whole response. A deadline miss attributable to this call (the parent
// context is still live) is wrapped as a transient attempt timeout.
func (c *Client) do(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	callCtx := ctx
	if d := c.timeout(); d > 0 {
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(callCtx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	attemptTimeout := func(err error) error {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			return fmt.Errorf("%w: %w", resilience.ErrAttemptTimeout, err)
		}
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, nil, attemptTimeout(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, attemptTimeout(err)
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// call posts req to the job's verb route and decodes the response into
// out (out may be nil).
func (c *Client) call(ctx context.Context, job, verb string, req workerRequest, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("shard: client: %w", err)
	}
	url := fmt.Sprintf("%s/v1/shards/%s/%s", c.BaseURL, job, verb)
	status, respBody, err := c.do(ctx, http.MethodPost, url, body)
	if err != nil {
		return fmt.Errorf("shard: client %s %s: %w", verb, job, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("shard: client %s %s: %w", verb, job, protocolError(status, respBody))
	}
	if out != nil {
		if err := json.Unmarshal(respBody, out); err != nil {
			return fmt.Errorf("shard: client %s %s: %w", verb, job, err)
		}
	}
	return nil
}

// get fetches url and decodes the response into out.
func (c *Client) get(ctx context.Context, what, url string, out any) error {
	status, body, err := c.do(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("shard: client %s: %w", what, err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("shard: client %s: %w", what, protocolError(status, body))
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("shard: client %s: %w", what, err)
	}
	return nil
}

// List fetches every registered job's status, sorted by job ID — how a
// worker discovers open jobs without being told one.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out struct {
		Jobs []Status `json:"jobs"`
	}
	if err := c.get(ctx, "list", c.BaseURL+"/v1/shards", &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Detail fetches the job's status, spec, and partition.
func (c *Client) Detail(ctx context.Context, job string) (JobDetail, error) {
	var out JobDetail
	err := c.get(ctx, "detail "+job, fmt.Sprintf("%s/v1/shards/%s", c.BaseURL, job), &out)
	return out, err
}

// Register announces the worker to the job.
func (c *Client) Register(ctx context.Context, job, worker string) error {
	return c.call(ctx, job, "register", workerRequest{Worker: worker}, nil)
}

// Lease requests a shard.
func (c *Client) Lease(ctx context.Context, job, worker string) (LeaseResponse, error) {
	var out LeaseResponse
	err := c.call(ctx, job, "lease", workerRequest{Worker: worker}, &out)
	return out, err
}

// Heartbeat renews the worker's lease on the shard under its grant epoch.
func (c *Client) Heartbeat(ctx context.Context, job, worker, shardID string, epoch uint64) error {
	return c.call(ctx, job, "heartbeat", workerRequest{Worker: worker, Shard: shardID, Epoch: epoch}, nil)
}

// Complete reports the shard's results under its grant epoch.
func (c *Client) Complete(ctx context.Context, job, worker, shardID string, epoch uint64, results []VariantResult, failures []VariantFailure) error {
	return c.call(ctx, job, "complete", workerRequest{
		Worker: worker, Shard: shardID, Epoch: epoch, Results: results, Failures: failures,
	}, nil)
}

// Fail reports that the worker could not process the shard.
func (c *Client) Fail(ctx context.Context, job, worker, shardID string, epoch uint64, reason string) error {
	return c.call(ctx, job, "fail", workerRequest{Worker: worker, Shard: shardID, Epoch: epoch, Reason: reason}, nil)
}
