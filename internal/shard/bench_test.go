package shard_test

// Scaling benchmark for the sharded sweep: the same 24-variant job run by
// one worker process versus four. The container this is pinned on has a
// single CPU, so raw analytical evaluation cannot speed up by adding
// processes; instead each worker arms the explore.evaluate fault point to
// model a fixed per-evaluation latency (as a remote profiler or a slower
// machine would impose), and the benchmark measures how well the
// coordinator overlaps that latency across workers. BENCH_shard.json pins
// the numbers; regenerate with `make bench-shard`.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"skope/internal/shard"
)

// benchSlowMs is the modeled per-evaluation latency. At 24 variants the
// serial floor is 14.4s; four workers overlapping it have a 3.6s floor.
// The latency must dominate each worker's startup preparation (~0.4s of
// CPU, which serializes across processes on a single-CPU host) for the
// benchmark to measure coordination overlap rather than prepare cost.
const benchSlowMs = 600

func benchmarkShardedSweep(b *testing.B, workers int) {
	spec := chaosSpec(b)
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		coord, err := shard.NewCoordinator(shard.Config{
			JobID: "bench",
			Spec:  spec,
			Lease: 10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		svc := shard.NewService()
		svc.Add(coord)
		mux := http.NewServeMux()
		svc.Mount(mux)
		srv := httptest.NewServer(mux)
		dir := b.TempDir()
		b.StartTimer()

		procs := make([]*exec.Cmd, workers)
		for w := 0; w < workers; w++ {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				"SKOPE_SHARD_WORKER=1",
				"SKOPE_SHARD_URL="+srv.URL,
				"SKOPE_SHARD_JOB=bench",
				"SKOPE_SHARD_DIR="+dir,
				fmt.Sprintf("SKOPE_SHARD_ID=w%d", w),
				"SKOPE_SHARD_SLOW_MS="+strconv.Itoa(benchSlowMs),
			)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				b.Fatal(err)
			}
			procs[w] = cmd
		}
		for _, p := range procs {
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if !coord.Done() {
			b.Fatalf("job not done: %+v", coord.Status())
		}
		srv.Close()
		b.StartTimer()
	}
}

func BenchmarkShardedSweepWorkers1(b *testing.B) { benchmarkShardedSweep(b, 1) }
func BenchmarkShardedSweepWorkers4(b *testing.B) { benchmarkShardedSweep(b, 4) }
