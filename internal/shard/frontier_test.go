package shard_test

import (
	"sync"
	"testing"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/shard"
)

// costIsBandwidth scores a machine by its memory bandwidth, letting tests
// construct (cost, time) points directly: cost rides on MemBandwidthGBs.
func costIsBandwidth(m *hw.Machine) float64 { return m.MemBandwidthGBs }

func frontierMachine(cost float64) *hw.Machine {
	m := hw.BGQ()
	m.MemBandwidthGBs = cost
	return m
}

// addPoint offers (cost, time) to the frontier.
func addPoint(f *shard.Frontier, index int, cost, time float64) {
	f.Add(index, frontierMachine(cost), time)
}

// pairs extracts (cost, time) tuples for comparison.
func pairs(pts []explore.Point) [][2]float64 {
	out := make([][2]float64, len(pts))
	for i, p := range pts {
		out[i] = [2]float64{p.Cost, p.Time}
	}
	return out
}

func assertFrontier(t *testing.T, f *shard.Frontier, want [][2]float64) {
	t.Helper()
	got := pairs(f.Points())
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
}

func TestFrontierDominance(t *testing.T) {
	f := shard.NewFrontier(costIsBandwidth)
	addPoint(f, 0, 10, 5.0)
	addPoint(f, 1, 20, 3.0) // costlier but faster: survives
	addPoint(f, 2, 15, 6.0) // costlier and slower than (10,5): dominated
	addPoint(f, 3, 30, 4.0) // slower than (20,3) at higher cost: dominated
	assertFrontier(t, f, [][2]float64{{10, 5}, {20, 3}})

	// A strictly better point evicts what it dominates.
	addPoint(f, 4, 5, 2.5)
	assertFrontier(t, f, [][2]float64{{5, 2.5}})
}

func TestFrontierEqualAxes(t *testing.T) {
	f := shard.NewFrontier(costIsBandwidth)
	addPoint(f, 0, 10, 5.0)
	addPoint(f, 1, 10, 5.0) // exact duplicate: rejected
	assertFrontier(t, f, [][2]float64{{10, 5}})

	addPoint(f, 2, 10, 6.0) // equal cost, slower: rejected
	assertFrontier(t, f, [][2]float64{{10, 5}})

	addPoint(f, 3, 10, 4.0) // equal cost, faster: replaces
	assertFrontier(t, f, [][2]float64{{10, 4}})

	addPoint(f, 4, 12, 4.0) // equal time, costlier: rejected
	assertFrontier(t, f, [][2]float64{{10, 4}})

	addPoint(f, 5, 8, 4.0) // equal time, cheaper: replaces
	assertFrontier(t, f, [][2]float64{{8, 4}})
}

func TestFrontierMidEviction(t *testing.T) {
	f := shard.NewFrontier(costIsBandwidth)
	addPoint(f, 0, 10, 8)
	addPoint(f, 1, 20, 6)
	addPoint(f, 2, 30, 4)
	addPoint(f, 3, 40, 2)
	// (15, 3) dominates (20,6) and (30,4) but not (10,8) or (40,2).
	addPoint(f, 4, 15, 3)
	assertFrontier(t, f, [][2]float64{{10, 8}, {15, 3}, {40, 2}})
}

// bruteFrontier computes the non-dominated set directly.
func bruteFrontier(points [][2]float64) map[[2]float64]bool {
	out := make(map[[2]float64]bool)
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q == p {
				continue
			}
			if q[0] <= p[0] && q[1] <= p[1] {
				dominated = true
				break
			}
		}
		if !dominated {
			out[p] = true
		}
	}
	return out
}

func TestFrontierMatchesBruteForce(t *testing.T) {
	// A deterministic scatter with ties on both axes.
	var points [][2]float64
	for i := 0; i < 60; i++ {
		cost := float64(1 + (i*7)%13)
		time := float64(1 + (i*11)%17)
		points = append(points, [2]float64{cost, time})
	}
	f := shard.NewFrontier(costIsBandwidth)
	for i, p := range points {
		addPoint(f, i, p[0], p[1])
	}
	want := bruteFrontier(points)
	got := pairs(f.Points())
	if len(got) != len(want) {
		t.Fatalf("frontier has %d points, brute force %d: %v", len(got), len(want), got)
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("frontier point %v not in brute-force set", p)
		}
	}
	// And the order invariant: ascending cost, descending time.
	for i := 1; i < len(got); i++ {
		if got[i][0] <= got[i-1][0] || got[i][1] >= got[i-1][1] {
			t.Errorf("order violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func TestFrontierConcurrent(t *testing.T) {
	f := shard.NewFrontier(costIsBandwidth)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cost := float64(1 + (g*50+i*3)%23)
				time := float64(1 + (g*31+i*5)%19)
				addPoint(f, g*50+i, cost, time)
			}
		}(g)
	}
	wg.Wait()
	pts := pairs(f.Points())
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	// No surviving point may dominate another.
	for i, p := range pts {
		for j, q := range pts {
			if i != j && q[0] <= p[0] && q[1] <= p[1] {
				t.Fatalf("point %v dominated by %v", p, q)
			}
		}
	}
}
