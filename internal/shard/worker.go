package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/iofault"
	"skope/internal/journal"
	"skope/internal/pipeline"
	"skope/internal/resilience"
)

// ErrSkew marks a worker whose locally prepared model disagrees with the
// job spec — a different layout fingerprint or partition than the
// coordinator's. A skewed worker must not contribute records (they would
// be bit-different), so it aborts instead of registering.
var ErrSkew = errors.New("worker/coordinator version skew")

// Worker runs one participant of a sharded sweep: lease a shard, sweep
// its variants through the ordinary pipeline with a per-shard journal,
// report the journal's records, repeat until the coordinator says done.
//
// Durability is the journal's, not the worker's: every completed variant
// is fsynced into the shard's journal before it counts, so a worker
// SIGKILLed mid-shard leaves a journal the shard's next owner replays
// instead of recomputing — bit-identically, because replay re-runs the
// same deterministic assembly a live evaluation ends with.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// JobID and ID identify the job and this worker.
	JobID, ID string
	// DataDir holds the per-shard journals. Workers sharing a machine
	// must share it (that is what makes steal-and-replay free); workers
	// on different hosts each keep their own.
	DataDir string
	// Poll is the wait-state backoff (default 200ms).
	Poll time.Duration
	// Retry wraps every protocol call (default: 4 attempts, 50ms base).
	Retry resilience.Policy

	// ReplayOnly, when set, refuses to evaluate: the worker only serves
	// shards whose journals already cover every variant. Used by the
	// chaos test to prove resumed work is replayed, never recomputed.
	ReplayOnly bool

	// FS is the file abstraction the per-shard journals open through
	// (nil = the disk). The disk-fault chaos suite injects here.
	FS iofault.FS
}

func (w *Worker) fsys() iofault.FS {
	if w.FS != nil {
		return w.FS
	}
	return iofault.Disk
}

// WorkerStats tallies one Run.
type WorkerStats struct {
	// Shards counts completions this worker reported.
	Shards int
	// Variants counts variant records reported (including replayed ones);
	// Replayed counts those served from a journal instead of evaluated.
	Variants, Replayed int
	// Waits counts empty lease polls; Quarantines counts lease refusals.
	Waits, Quarantines int
	// LeasesLost counts shards abandoned because the lease expired or was
	// stolen mid-sweep.
	LeasesLost int
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

func (w *Worker) retry() resilience.Policy {
	p := w.Retry
	if p.MaxAttempts == 0 {
		p = resilience.Policy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond}
	}
	if p.Classify == nil {
		p.Classify = func(err error) bool {
			// Protocol verdicts are deterministic; retrying them is noise.
			if errors.Is(err, ErrConflict) || errors.Is(err, ErrNotOwner) ||
				errors.Is(err, ErrUnknownShard) || errors.Is(err, ErrSkew) {
				return false
			}
			return resilience.Retryable(err)
		}
	}
	return p
}

// call runs one protocol call under the worker's retry policy.
func (w *Worker) call(ctx context.Context, fn func() error) error {
	p := w.retry()
	_, err := p.Do(ctx, func(int) error { return fn() })
	return err
}

// Run participates in the job until every shard is done (nil), the
// context ends, or a deterministic protocol failure (skew, conflict)
// makes further participation wrong.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	var stats WorkerStats
	var detail JobDetail
	if err := w.call(ctx, func() error {
		var derr error
		detail, derr = w.Client.Detail(w.JobID)
		return derr
	}); err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	spec := detail.Spec

	variants, err := spec.Variants()
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	// Cross-check the partition before doing any work: if this binary
	// generates a different grid than the coordinator's, every shard
	// fingerprint differs and the mismatch surfaces here, not as a merge
	// conflict after hours of sweeping.
	local := Partition(spec.LayoutFP, variants, spec.ShardSize)
	if len(local) != len(detail.Shards) {
		return stats, fmt.Errorf("shard: worker %s: local partition has %d shards, coordinator %d: %w",
			w.ID, len(local), len(detail.Shards), ErrSkew)
	}
	for i := range local {
		if local[i].Fingerprint != detail.Shards[i].Fingerprint {
			return stats, fmt.Errorf("shard: worker %s: shard %d fingerprint mismatch: %w", w.ID, i, ErrSkew)
		}
	}

	wl, err := spec.Workload()
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	run, err := pipeline.Prepare(ctx, wl, spec.Options()...)
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: prepare: %w", w.ID, err)
	}
	layout, err := run.Layout()
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	if layout.Fingerprint() != spec.LayoutFP {
		return stats, fmt.Errorf("shard: worker %s: prepared layout %s, job wants %s: %w",
			w.ID, layout.Fingerprint(), spec.LayoutFP, ErrSkew)
	}
	if err := w.call(ctx, func() error { return w.Client.Register(w.JobID, w.ID) }); err != nil {
		return stats, fmt.Errorf("shard: worker %s: register: %w", w.ID, err)
	}

	for {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
		}
		var resp LeaseResponse
		if err := w.call(ctx, func() error {
			var lerr error
			resp, lerr = w.Client.Lease(w.JobID, w.ID)
			return lerr
		}); err != nil {
			return stats, fmt.Errorf("shard: worker %s: lease: %w", w.ID, err)
		}
		switch resp.State {
		case LeaseDone:
			return stats, nil
		case LeaseWait:
			stats.Waits++
			if err := sleep(ctx, w.poll()); err != nil {
				return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
			}
		case LeaseQuarantined:
			// Back off harder: the breaker admits a probe only after its
			// cooldown, and the job may finish without us meanwhile.
			stats.Quarantines++
			if err := sleep(ctx, 4*w.poll()); err != nil {
				return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
			}
		case LeaseGranted:
			if err := w.processShard(ctx, run, variants, spec, *resp.Shard,
				time.Duration(resp.LeaseMs)*time.Millisecond, &stats); err != nil {
				return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
			}
		default:
			return stats, fmt.Errorf("shard: worker %s: unknown lease state %q", w.ID, resp.State)
		}
	}
}

// journalPath is where a shard's journal lives. It depends only on the
// job and the shard, never the worker — a stolen shard's new owner opens
// the same file and replays the dead worker's completed variants.
func (w *Worker) journalPath(sh Shard) string {
	return filepath.Join(w.DataDir, fmt.Sprintf("%s-%s.journal", w.JobID, sh.ID))
}

// processShard sweeps one leased shard and reports it. Failures of the
// shard as a whole go back as Fail (the coordinator re-leases it);
// per-variant failures ride on Complete. A lost lease abandons silently —
// the thief owns the shard now, and this worker's journal appends up to
// that point remain valid for it.
func (w *Worker) processShard(ctx context.Context, run *pipeline.Run, variants []*hw.Machine, spec JobSpec, sh Shard, leaseFor time.Duration, stats *WorkerStats) error {
	slice := variants[sh.Start:sh.End]
	jnl, err := journal.OpenFS(w.fsys(), w.journalPath(sh))
	if err != nil {
		return w.failShard(ctx, sh, fmt.Errorf("journal: %w", err))
	}

	// Heartbeat until the shard is processed; a refused heartbeat means
	// the lease is lost and the sweep should stop burning cycles.
	sctx, lost := context.WithCancel(ctx)
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	interval := leaseFor / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-sctx.Done():
				return
			case <-t.C:
				if err := w.Client.Heartbeat(w.JobID, w.ID, sh.ID); errors.Is(err, ErrNotOwner) {
					lost()
					return
				}
			}
		}
	}()

	opts := append(spec.Options(), pipeline.WithJournal(jnl))
	var evals []*pipeline.Eval
	var sweepErr error
	if w.ReplayOnly {
		evals, sweepErr = w.replaySweep(sctx, run, slice, jnl, opts)
	} else {
		evals, sweepErr = pipeline.Sweep(sctx, run, slice, opts...)
	}
	close(hbStop)
	<-hbDone
	jnl.Close()

	if sctx.Err() != nil && ctx.Err() == nil {
		// Lease lost mid-sweep: abandon without reporting.
		lost()
		stats.LeasesLost++
		return nil
	}
	lost()
	if err := ctx.Err(); err != nil {
		return err
	}
	if sweepErr != nil && !tolerableSweepErr(sweepErr) {
		return w.failShard(ctx, sh, sweepErr)
	}

	results, replayed := collectResults(w.fsys(), w.journalPath(sh), sh, slice, evals)
	var failures []VariantFailure
	var se *explore.SweepError
	if errors.As(sweepErr, &se) {
		for _, ve := range se.Variants {
			failures = append(failures, VariantFailure{
				Index: sh.Start + ve.Index, Worker: w.ID, Err: ve.Err.Error(),
			})
		}
	}
	if err := w.call(ctx, func() error {
		return w.Client.Complete(w.JobID, w.ID, sh.ID, results, failures)
	}); err != nil {
		if errors.Is(err, ErrConflict) {
			return err // deterministic: stop before poisoning more shards
		}
		return w.failShard(ctx, sh, err)
	}
	stats.Shards++
	stats.Variants += len(results)
	stats.Replayed += replayed
	return nil
}

// replaySweep is the ReplayOnly path: every variant must come from the
// journal. It runs the same Sweep code with an armed trip wire — if the
// engine would evaluate anything, the worker errors out instead.
func (w *Worker) replaySweep(ctx context.Context, run *pipeline.Run, slice []*hw.Machine, jnl *journal.Journal, opts []pipeline.Option) ([]*pipeline.Eval, error) {
	if jnl.Len() < len(slice) {
		return nil, fmt.Errorf("shard: replay-only worker %s: journal has %d of %d variants", w.ID, jnl.Len(), len(slice))
	}
	return pipeline.Sweep(ctx, run, slice, opts...)
}

// failShard reports a whole-shard failure, preferring the original error.
func (w *Worker) failShard(ctx context.Context, sh Shard, cause error) error {
	if err := w.call(ctx, func() error {
		return w.Client.Fail(w.JobID, w.ID, sh.ID, cause.Error())
	}); err != nil {
		return fmt.Errorf("%v (and reporting it failed: %w)", cause, err)
	}
	return nil
}

// tolerableSweepErr reports whether the sweep's error still left a
// reportable result set: per-variant failures (they ride on Complete) or
// degraded-durability warnings.
func tolerableSweepErr(err error) bool {
	var se *explore.SweepError
	return errors.As(err, &se) || errors.Is(err, explore.ErrJournalDegraded)
}

// collectResults reads the shard journal back and pairs each record with
// its grid index and projected time. The journal — not the in-memory
// evals — is the source of record payloads, so what the coordinator
// merges is exactly what a resumed worker would replay.
func collectResults(fsys iofault.FS, path string, sh Shard, slice []*hw.Machine, evals []*pipeline.Eval) (results []VariantResult, replayed int) {
	indexOf := make(map[string]int, len(slice))
	for i, m := range slice {
		indexOf[m.Fingerprint()] = sh.Start + i
	}
	payloads := make(map[string][]byte)
	_, _ = journal.ScanFS(fsys, path, func(key string, payload []byte) error {
		if _, ours := indexOf[key]; ours {
			payloads[key] = append([]byte(nil), payload...)
		}
		return nil
	})
	for i, ev := range evals {
		if ev == nil {
			continue
		}
		key := slice[i].Fingerprint()
		payload, ok := payloads[key]
		if !ok {
			// Journaling degraded mid-shard: the eval exists but never
			// reached disk, so it cannot be reported as a journal record.
			continue
		}
		if ev.Provenance == pipeline.FromJournal {
			replayed++
		}
		results = append(results, VariantResult{
			Index:    sh.Start + i,
			Key:      key,
			Payload:  payload,
			TimeBits: math.Float64bits(ev.Analysis.TotalTime),
		})
	}
	return results, replayed
}

// sleep waits d or returns ctx's error early.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
