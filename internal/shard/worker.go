package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/iofault"
	"skope/internal/journal"
	"skope/internal/pipeline"
	"skope/internal/resilience"
)

// ErrSkew marks a worker whose locally prepared model disagrees with the
// job spec — a different layout fingerprint or partition than the
// coordinator's. A skewed worker must not contribute records (they would
// be bit-different), so it aborts instead of registering.
var ErrSkew = errors.New("worker/coordinator version skew")

// Worker runs one participant of a sharded sweep: lease a shard, sweep
// its variants through the ordinary pipeline with a per-shard journal,
// report the journal's records, repeat until the coordinator says done.
//
// Durability is the journal's, not the worker's: every completed variant
// is fsynced into the shard's journal before it counts, so a worker
// SIGKILLed mid-shard leaves a journal the shard's next owner replays
// instead of recomputing — bit-identically, because replay re-runs the
// same deterministic assembly a live evaluation ends with.
type Worker struct {
	// Client reaches the coordinator.
	Client *Client
	// JobID and ID identify the job and this worker.
	JobID, ID string
	// DataDir holds the per-shard journals. Workers sharing a machine
	// must share it (that is what makes steal-and-replay free); workers
	// on different hosts each keep their own.
	DataDir string
	// Poll is the wait-state backoff (default 200ms).
	Poll time.Duration
	// Retry wraps every protocol call (default: 4 attempts, 50ms base).
	Retry resilience.Policy
	// RPCTimeout is the per-attempt deadline on every protocol call
	// (default 30s; <0 disables). Heartbeats additionally cap it at a
	// third of the lease duration — a renewal that cannot finish within
	// its own cadence is as good as lost, and must not stall the next
	// tick behind a hung connection.
	RPCTimeout time.Duration

	// ReplayOnly, when set, refuses to evaluate: the worker only serves
	// shards whose journals already cover every variant. Used by the
	// chaos test to prove resumed work is replayed, never recomputed.
	ReplayOnly bool

	// FS is the file abstraction the per-shard journals open through
	// (nil = the disk). The disk-fault chaos suite injects here.
	FS iofault.FS
}

func (w *Worker) fsys() iofault.FS {
	if w.FS != nil {
		return w.FS
	}
	return iofault.Disk
}

// WorkerStats tallies one Run.
type WorkerStats struct {
	// Shards counts completions this worker reported.
	Shards int
	// Variants counts variant records reported (including replayed ones);
	// Replayed counts those served from a journal instead of evaluated.
	Variants, Replayed int
	// Waits counts empty lease polls; Quarantines counts lease refusals.
	Waits, Quarantines int
	// LeasesLost counts shards abandoned because the lease expired or was
	// stolen mid-sweep; StaleFenced counts reports the coordinator
	// rejected by epoch fencing (a subset of the lost leases).
	LeasesLost, StaleFenced int
	// RPCRetries counts protocol-call attempts beyond the first — what
	// the network cost this run beyond a perfect wire.
	RPCRetries int
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 200 * time.Millisecond
}

func (w *Worker) retry() resilience.Policy {
	p := w.Retry
	if p.MaxAttempts == 0 {
		p = resilience.Policy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond}
	}
	if p.Classify == nil {
		p.Classify = func(err error) bool {
			// Protocol verdicts are deterministic; retrying them is noise.
			// Timeouts, resets, and 5xx fall through to Retryable, which
			// treats them as transient.
			if errors.Is(err, ErrConflict) || errors.Is(err, ErrNotOwner) ||
				errors.Is(err, ErrStaleLease) ||
				errors.Is(err, ErrUnknownShard) || errors.Is(err, ErrSkew) {
				return false
			}
			return resilience.Retryable(err)
		}
	}
	return p
}

func (w *Worker) rpcTimeout() time.Duration {
	if w.RPCTimeout != 0 {
		return w.RPCTimeout
	}
	return 30 * time.Second
}

// call runs one protocol call under the worker's retry policy, giving
// each attempt its own deadline (d; 0 selects the worker's RPCTimeout)
// and tallying the retries spent.
func (w *Worker) call(ctx context.Context, stats *WorkerStats, d time.Duration, fn func(context.Context) error) error {
	if d == 0 {
		d = w.rpcTimeout()
	}
	p := w.retry()
	attempts, err := p.Do(ctx, func(int) error {
		actx := ctx
		if d > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		ferr := fn(actx)
		// A deadline miss chargeable to this attempt (the worker's own
		// context is still live) is transient: mark it so the retry
		// classification re-attempts instead of giving up.
		if ferr != nil && errors.Is(ferr, context.DeadlineExceeded) &&
			ctx.Err() == nil && !errors.Is(ferr, resilience.ErrAttemptTimeout) {
			ferr = fmt.Errorf("%w: %w", resilience.ErrAttemptTimeout, ferr)
		}
		return ferr
	})
	if stats != nil {
		stats.RPCRetries += attempts - 1
	}
	return err
}

// Run participates in the job until every shard is done (nil), the
// context ends, or a deterministic protocol failure (skew, conflict)
// makes further participation wrong.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	var stats WorkerStats
	var detail JobDetail
	if err := w.call(ctx, &stats, 0, func(actx context.Context) error {
		var derr error
		detail, derr = w.Client.Detail(actx, w.JobID)
		return derr
	}); err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	spec := detail.Spec

	variants, err := spec.Variants()
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	// Cross-check the partition before doing any work: if this binary
	// generates a different grid than the coordinator's, every shard
	// fingerprint differs and the mismatch surfaces here, not as a merge
	// conflict after hours of sweeping.
	local := Partition(spec.LayoutFP, variants, spec.ShardSize)
	if len(local) != len(detail.Shards) {
		return stats, fmt.Errorf("shard: worker %s: local partition has %d shards, coordinator %d: %w",
			w.ID, len(local), len(detail.Shards), ErrSkew)
	}
	for i := range local {
		if local[i].Fingerprint != detail.Shards[i].Fingerprint {
			return stats, fmt.Errorf("shard: worker %s: shard %d fingerprint mismatch: %w", w.ID, i, ErrSkew)
		}
	}

	wl, err := spec.Workload()
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	run, err := pipeline.Prepare(ctx, wl, spec.Options()...)
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: prepare: %w", w.ID, err)
	}
	layout, err := run.Layout()
	if err != nil {
		return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
	}
	if layout.Fingerprint() != spec.LayoutFP {
		return stats, fmt.Errorf("shard: worker %s: prepared layout %s, job wants %s: %w",
			w.ID, layout.Fingerprint(), spec.LayoutFP, ErrSkew)
	}
	if err := w.call(ctx, &stats, 0, func(actx context.Context) error {
		return w.Client.Register(actx, w.JobID, w.ID)
	}); err != nil {
		return stats, fmt.Errorf("shard: worker %s: register: %w", w.ID, err)
	}

	for {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
		}
		var resp LeaseResponse
		if err := w.call(ctx, &stats, 0, func(actx context.Context) error {
			var lerr error
			resp, lerr = w.Client.Lease(actx, w.JobID, w.ID)
			return lerr
		}); err != nil {
			return stats, fmt.Errorf("shard: worker %s: lease: %w", w.ID, err)
		}
		switch resp.State {
		case LeaseDone:
			return stats, nil
		case LeaseWait:
			stats.Waits++
			if err := sleep(ctx, w.poll()); err != nil {
				return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
			}
		case LeaseQuarantined:
			// Back off harder: the breaker admits a probe only after its
			// cooldown, and the job may finish without us meanwhile.
			stats.Quarantines++
			if err := sleep(ctx, 4*w.poll()); err != nil {
				return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
			}
		case LeaseGranted:
			if err := w.processShard(ctx, run, variants, spec, *resp.Shard, resp.Epoch,
				time.Duration(resp.LeaseMs)*time.Millisecond, &stats); err != nil {
				return stats, fmt.Errorf("shard: worker %s: %w", w.ID, err)
			}
		default:
			return stats, fmt.Errorf("shard: worker %s: unknown lease state %q", w.ID, resp.State)
		}
	}
}

// journalPath is where a shard's journal lives. It depends only on the
// job and the shard, never the worker — a stolen shard's new owner opens
// the same file and replays the dead worker's completed variants.
func (w *Worker) journalPath(sh Shard) string {
	return filepath.Join(w.DataDir, fmt.Sprintf("%s-%s.journal", w.JobID, sh.ID))
}

// heartbeatInterval derives this worker's renewal cadence: a third of
// the lease, scaled by a deterministic per-worker factor in [0.70, 1.00)
// so a fleet of workers sharing one lease duration spreads its renewals
// across the window instead of thundering against the coordinator in
// lockstep. Deterministic (a hash of the worker ID, not randomness):
// the same worker always renews on the same cadence, so chaos runs
// reproduce.
func (w *Worker) heartbeatInterval(leaseFor time.Duration) time.Duration {
	base := leaseFor / 3
	if base <= 0 {
		return time.Second
	}
	h := fnv.New32a()
	h.Write([]byte(w.ID))
	frac := float64(h.Sum32()%1000) / 1000
	return time.Duration(float64(base) * (0.70 + 0.30*frac))
}

// processShard sweeps one leased shard and reports it under the grant's
// fencing epoch. Failures of the shard as a whole go back as Fail (the
// coordinator re-leases it); per-variant failures ride on Complete. A
// lost lease — expiry, steal, or a fenced report — abandons silently:
// the thief owns the shard now, and this worker's journal appends up to
// that point remain valid for it.
func (w *Worker) processShard(ctx context.Context, run *pipeline.Run, variants []*hw.Machine, spec JobSpec, sh Shard, epoch uint64, leaseFor time.Duration, stats *WorkerStats) error {
	slice := variants[sh.Start:sh.End]
	jnl, err := journal.OpenFS(w.fsys(), w.journalPath(sh))
	if err != nil {
		return w.failShard(ctx, stats, sh, epoch, fmt.Errorf("journal: %w", err))
	}

	// Heartbeat until the shard is processed; a refused heartbeat means
	// the lease is lost and the sweep should stop burning cycles. Each
	// renewal gets its own deadline capped at a third of the lease — a
	// renewal slower than its own cadence is as good as lost, and must
	// not let a hung connection stall the ticker past expiry.
	sctx, lost := context.WithCancel(ctx)
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	hbTimeout := w.rpcTimeout()
	if third := leaseFor / 3; third > 0 && (hbTimeout <= 0 || third < hbTimeout) {
		hbTimeout = third
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(w.heartbeatInterval(leaseFor))
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-sctx.Done():
				return
			case <-t.C:
				hctx := sctx
				var hcancel context.CancelFunc = func() {}
				if hbTimeout > 0 {
					hctx, hcancel = context.WithTimeout(sctx, hbTimeout)
				}
				err := w.Client.Heartbeat(hctx, w.JobID, w.ID, sh.ID, epoch)
				hcancel()
				if errors.Is(err, ErrNotOwner) || errors.Is(err, ErrStaleLease) {
					lost()
					return
				}
				// Transient failures wait for the next tick — the lease
				// outlives a few missed renewals by construction.
			}
		}
	}()

	opts := append(spec.Options(), pipeline.WithJournal(jnl))
	var evals []*pipeline.Eval
	var sweepErr error
	if w.ReplayOnly {
		evals, sweepErr = w.replaySweep(sctx, run, slice, jnl, opts)
	} else {
		evals, sweepErr = pipeline.Sweep(sctx, run, slice, opts...)
	}
	close(hbStop)
	<-hbDone
	jnl.Close()

	if sctx.Err() != nil && ctx.Err() == nil {
		// Lease lost mid-sweep: abandon without reporting.
		lost()
		stats.LeasesLost++
		return nil
	}
	lost()
	if err := ctx.Err(); err != nil {
		return err
	}
	if sweepErr != nil && !tolerableSweepErr(sweepErr) {
		return w.failShard(ctx, stats, sh, epoch, sweepErr)
	}

	results, replayed := collectResults(w.fsys(), w.journalPath(sh), sh, slice, evals)
	var failures []VariantFailure
	var se *explore.SweepError
	if errors.As(sweepErr, &se) {
		for _, ve := range se.Variants {
			failures = append(failures, VariantFailure{
				Index: sh.Start + ve.Index, Worker: w.ID, Err: ve.Err.Error(),
			})
		}
	}
	if err := w.call(ctx, stats, 0, func(actx context.Context) error {
		return w.Client.Complete(actx, w.JobID, w.ID, sh.ID, epoch, results, failures)
	}); err != nil {
		if errors.Is(err, ErrStaleLease) || errors.Is(err, ErrNotOwner) {
			// Fenced off: the lease expired and the shard was re-granted
			// while we raced to report. The journal stays for the new
			// holder to replay — a lost lease, not a failure.
			stats.LeasesLost++
			stats.StaleFenced++
			return nil
		}
		if errors.Is(err, ErrConflict) {
			return err // deterministic: stop before poisoning more shards
		}
		return w.failShard(ctx, stats, sh, epoch, err)
	}
	stats.Shards++
	stats.Variants += len(results)
	stats.Replayed += replayed
	return nil
}

// replaySweep is the ReplayOnly path: every variant must come from the
// journal. It runs the same Sweep code with an armed trip wire — if the
// engine would evaluate anything, the worker errors out instead.
func (w *Worker) replaySweep(ctx context.Context, run *pipeline.Run, slice []*hw.Machine, jnl *journal.Journal, opts []pipeline.Option) ([]*pipeline.Eval, error) {
	if jnl.Len() < len(slice) {
		return nil, fmt.Errorf("shard: replay-only worker %s: journal has %d of %d variants", w.ID, jnl.Len(), len(slice))
	}
	return pipeline.Sweep(ctx, run, slice, opts...)
}

// failShard reports a whole-shard failure, preferring the original error.
func (w *Worker) failShard(ctx context.Context, stats *WorkerStats, sh Shard, epoch uint64, cause error) error {
	if err := w.call(ctx, stats, 0, func(actx context.Context) error {
		return w.Client.Fail(actx, w.JobID, w.ID, sh.ID, epoch, cause.Error())
	}); err != nil {
		if errors.Is(err, ErrStaleLease) {
			// The shard was re-granted before the failure report landed;
			// its outcome belongs to the new holder now.
			stats.StaleFenced++
			return nil
		}
		return fmt.Errorf("%v (and reporting it failed: %w)", cause, err)
	}
	return nil
}

// tolerableSweepErr reports whether the sweep's error still left a
// reportable result set: per-variant failures (they ride on Complete) or
// degraded-durability warnings.
func tolerableSweepErr(err error) bool {
	var se *explore.SweepError
	return errors.As(err, &se) || errors.Is(err, explore.ErrJournalDegraded)
}

// collectResults reads the shard journal back and pairs each record with
// its grid index and projected time. The journal — not the in-memory
// evals — is the source of record payloads, so what the coordinator
// merges is exactly what a resumed worker would replay.
func collectResults(fsys iofault.FS, path string, sh Shard, slice []*hw.Machine, evals []*pipeline.Eval) (results []VariantResult, replayed int) {
	indexOf := make(map[string]int, len(slice))
	for i, m := range slice {
		indexOf[m.Fingerprint()] = sh.Start + i
	}
	payloads := make(map[string][]byte)
	_, _ = journal.ScanFS(fsys, path, func(key string, payload []byte) error {
		if _, ours := indexOf[key]; ours {
			payloads[key] = append([]byte(nil), payload...)
		}
		return nil
	})
	for i, ev := range evals {
		if ev == nil {
			continue
		}
		key := slice[i].Fingerprint()
		payload, ok := payloads[key]
		if !ok {
			// Journaling degraded mid-shard: the eval exists but never
			// reached disk, so it cannot be reported as a journal record.
			continue
		}
		if ev.Provenance == pipeline.FromJournal {
			replayed++
		}
		results = append(results, VariantResult{
			Index:    sh.Start + i,
			Key:      key,
			Payload:  payload,
			TimeBits: math.Float64bits(ev.Analysis.TotalTime),
		})
	}
	return results, replayed
}

// sleep waits d or returns ctx's error early.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
