package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"skope/internal/explore"
	"skope/internal/journal"
	"skope/internal/shard"
)

// writeSweepJournal builds a sweep journal at dir/name bound to layoutFP,
// holding the given key→payload records in map-iteration-independent
// (slice) order.
func writeSweepJournal(t *testing.T, dir, name, layoutFP string, records [][2]string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetMeta(map[string]string{explore.MetaLayoutKey: layoutFP}); err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := j.Append(r[0], []byte(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// tearTail appends a torn (unterminated, checksum-less) line to a journal
// file, simulating a SIGKILL mid-append.
func tearTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"key":"torn`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, path string) (journal.ScanReport, map[string]string) {
	t.Helper()
	got := make(map[string]string)
	rep, err := journal.Scan(path, func(key string, payload []byte) error {
		got[key] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, got
}

func TestMergeJournalsDeduplicates(t *testing.T) {
	dir := t.TempDir()
	const fp = "layout-m"
	// Overlapping shards: v2 appears in both with identical bytes — the
	// footprint of a stolen shard finished twice.
	a := writeSweepJournal(t, dir, "a.journal", fp, [][2]string{
		{"v1", `{"t":1}`}, {"v2", `{"t":2}`},
	})
	b := writeSweepJournal(t, dir, "b.journal", fp, [][2]string{
		{"v2", `{"t":2}`}, {"v3", `{"t":3}`},
	})
	dst := filepath.Join(dir, "merged.journal")
	stats, err := shard.MergeJournals(dst, fp, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inputs != 2 || stats.Records != 4 || stats.Unique != 3 || stats.TornInputs != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	rep, got := scanAll(t, dst)
	if rep.Meta[explore.MetaLayoutKey] != fp {
		t.Fatalf("merged journal bound to %q, want %q", rep.Meta[explore.MetaLayoutKey], fp)
	}
	want := map[string]string{"v1": `{"t":1}`, "v2": `{"t":2}`, "v3": `{"t":3}`}
	if len(got) != len(want) {
		t.Fatalf("merged records = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("record %s = %q, want %q", k, got[k], v)
		}
	}
}

func TestMergeJournalsConflictingPayloads(t *testing.T) {
	dir := t.TempDir()
	const fp = "layout-m"
	a := writeSweepJournal(t, dir, "a.journal", fp, [][2]string{{"v1", `{"t":1}`}})
	b := writeSweepJournal(t, dir, "b.journal", fp, [][2]string{{"v1", `{"t":999}`}})
	_, err := shard.MergeJournals(filepath.Join(dir, "m.journal"), fp, a, b)
	if !errors.Is(err, shard.ErrConflict) {
		t.Fatalf("conflicting payloads: %v, want ErrConflict", err)
	}
}

func TestMergeJournalsRejectsForeignLayout(t *testing.T) {
	dir := t.TempDir()
	a := writeSweepJournal(t, dir, "a.journal", "layout-m", [][2]string{{"v1", `{"t":1}`}})
	alien := writeSweepJournal(t, dir, "alien.journal", "layout-other", [][2]string{{"v9", `{"t":9}`}})
	_, err := shard.MergeJournals(filepath.Join(dir, "m.journal"), "layout-m", a, alien)
	if !errors.Is(err, journal.ErrMetaMismatch) {
		t.Fatalf("foreign layout: %v, want ErrMetaMismatch", err)
	}
}

func TestMergeJournalsToleratesTornInput(t *testing.T) {
	dir := t.TempDir()
	const fp = "layout-m"
	a := writeSweepJournal(t, dir, "a.journal", fp, [][2]string{{"v1", `{"t":1}`}})
	b := writeSweepJournal(t, dir, "b.journal", fp, [][2]string{{"v2", `{"t":2}`}})
	tearTail(t, b)
	before, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "m.journal")
	stats, merr := shard.MergeJournals(dst, fp, a, b)
	if merr != nil {
		t.Fatal(merr)
	}
	if stats.TornInputs != 1 || stats.Unique != 2 {
		t.Fatalf("stats = %+v, want 1 torn input, 2 unique", stats)
	}
	// The torn source was read, not repaired: merge must never mutate its
	// inputs (the shard's owner may still be appending).
	after, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("merge modified a torn input journal")
	}
	_, got := scanAll(t, dst)
	if len(got) != 2 || got["v1"] == "" || got["v2"] == "" {
		t.Fatalf("merged records = %v", got)
	}
}

func TestMergeJournalsOrderIndependent(t *testing.T) {
	dir := t.TempDir()
	const fp = "layout-m"
	// Three journals with interleaved keys and one duplicate.
	a := writeSweepJournal(t, dir, "a.journal", fp, [][2]string{
		{"v5", `{"t":5}`}, {"v1", `{"t":1}`},
	})
	b := writeSweepJournal(t, dir, "b.journal", fp, [][2]string{
		{"v3", `{"t":3}`}, {"v1", `{"t":1}`},
	})
	c := writeSweepJournal(t, dir, "c.journal", fp, [][2]string{
		{"v2", `{"t":2}`},
	})

	orders := [][]string{
		{a, b, c}, {c, b, a}, {b, a, c}, {c, a, b},
	}
	var first []byte
	for i, srcs := range orders {
		dst := filepath.Join(dir, fmt.Sprintf("m%d.journal", i))
		if _, err := shard.MergeJournals(dst, fp, srcs...); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = raw
			continue
		}
		if !bytes.Equal(raw, first) {
			t.Fatalf("merge order %d produced different bytes than order 0", i)
		}
	}
}

func TestMergeJournalsAtomic(t *testing.T) {
	dir := t.TempDir()
	const fp = "layout-m"
	a := writeSweepJournal(t, dir, "a.journal", fp, [][2]string{{"v1", `{"t":1}`}})
	dst := filepath.Join(dir, "m.journal")
	// A stale temp file from a crashed previous merge must not wedge it.
	if err := os.WriteFile(dst+".tmp", []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.MergeJournals(dst, fp, a); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dst + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after merge")
	}
	_, got := scanAll(t, dst)
	if len(got) != 1 {
		t.Fatalf("merged records = %v", got)
	}
}

func TestCoordinatorWriteMergedMatchesMergeJournals(t *testing.T) {
	// The coordinator's in-memory merge and the on-disk journal merge must
	// agree byte-for-byte: both are presentations of the same record set.
	clock := newStepClock()
	c, variants := testCoordinator(t, clock)
	dir := t.TempDir()

	var journals []string
	for {
		g, err := c.Lease("w")
		if err != nil {
			t.Fatal(err)
		}
		if g.State == shard.LeaseDone {
			break
		}
		results := shardResults(variants, g.Shard)
		recs := make([][2]string, len(results))
		for i, r := range results {
			recs[i] = [2]string{r.Key, string(r.Payload)}
		}
		journals = append(journals,
			writeSweepJournal(t, dir, g.Shard.ID+".journal", "layout-under-test", recs))
		if err := c.Complete("w", g.Shard.ID, g.Epoch, results, nil); err != nil {
			t.Fatal(err)
		}
	}

	fromCoordinator := filepath.Join(dir, "coord.journal")
	n, err := c.WriteMerged(fromCoordinator)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(variants) {
		t.Fatalf("WriteMerged wrote %d records, want %d", n, len(variants))
	}
	fromJournals := filepath.Join(dir, "disk.journal")
	if _, err := shard.MergeJournals(fromJournals, "layout-under-test", journals...); err != nil {
		t.Fatal(err)
	}
	cb, err := os.ReadFile(fromCoordinator)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(fromJournals)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cb, jb) {
		t.Fatal("coordinator merge and journal merge produced different bytes")
	}
}
