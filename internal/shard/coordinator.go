package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/resilience"
)

// Lease protocol errors.
var (
	// ErrNotOwner marks a heartbeat or completion from a worker that no
	// longer holds the shard's lease (it expired and was stolen). The
	// worker should abandon the shard — its journal survives for the new
	// owner — and ask for a fresh lease.
	ErrNotOwner = errors.New("shard lease not held")
	// ErrConflict marks two workers reporting different payloads for the
	// same variant fingerprint — impossible under the bit-exactness
	// invariant, so it means a corrupted worker or a fingerprint
	// collision, and the job refuses to merge rather than pick a side.
	ErrConflict = errors.New("shard merge conflict")
	// ErrUnknownShard marks a report against a shard ID the job does not
	// have.
	ErrUnknownShard = errors.New("unknown shard")
	// ErrStaleLease marks a report carrying a fencing epoch older than the
	// shard's current one: the reporter's lease expired and the shard was
	// re-granted. Unlike ErrNotOwner (no lease at all), a stale epoch
	// proves the reporter once held the shard and lost it — its report is
	// cleanly rejected so it can never race the current holder's, no
	// matter how delayed, duplicated, or reordered its delivery was.
	ErrStaleLease = errors.New("stale lease epoch")
)

// LeaseState is the outcome of one lease request.
type LeaseState string

const (
	// LeaseGranted carries a shard to work on.
	LeaseGranted LeaseState = "lease"
	// LeaseWait means every remaining shard is currently leased: poll
	// again after the poll interval (a lease may expire or fail).
	LeaseWait LeaseState = "wait"
	// LeaseDone means every shard is complete; the worker can exit.
	LeaseDone LeaseState = "done"
	// LeaseQuarantined means this worker's breaker is open: the
	// coordinator refuses to lease to it until the breaker's cooldown
	// admits a probe.
	LeaseQuarantined LeaseState = "quarantined"
)

// VariantResult is one completed variant as a worker reports it: the
// journal record (key = machine fingerprint, payload = the sweep record's
// exact bytes) plus the variant's grid index and projected time for the
// streaming frontier.
type VariantResult struct {
	Index    int             `json:"index"`
	Key      string          `json:"key"`
	Payload  json.RawMessage `json:"payload"`
	TimeBits uint64          `json:"time"`
}

// VariantFailure is one variant a worker could not evaluate (validation
// rejection, confidence floor, exhausted retries). Failures are recorded,
// not retried by the coordinator: the engine below already retried
// transients, so what reaches here is deterministic for this spec.
type VariantFailure struct {
	Index  int    `json:"index"`
	Worker string `json:"worker"`
	Err    string `json:"err"`
}

// Config parameterizes a Coordinator.
type Config struct {
	// JobID names the job in the HTTP surface and status output.
	JobID string
	// Spec is the job being coordinated. The coordinator materializes the
	// grid once at construction and verifies the spec's LayoutFP is set.
	Spec JobSpec
	// Lease is how long a granted lease lives between heartbeats
	// (default 30s). Heartbeats renew it for another full interval.
	Lease time.Duration
	// BreakerThreshold and BreakerCooldown shape the per-worker circuit
	// breaker: Threshold consecutive shard failures quarantine the worker
	// (default 3); after Cooldown (default 4×Lease) one probe lease is
	// allowed again.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Cost scores variants for the streaming Pareto frontier (nil selects
	// explore.RelativeCost).
	Cost explore.CostFunc
	// Clock is the time source (nil selects time.Now; tests pin it).
	Clock func() time.Time
	// Log, when set, makes the coordinator crash-safe: the job record,
	// every lease grant/renewal (with its fencing epoch), and every
	// completed shard's results are appended to it before the worker
	// learns of them, so RecoverCoordinator rebuilds the exact state
	// after a daemon crash. Nil keeps the job memory-only.
	Log *Log
}

// workerInfo is the coordinator's per-worker bookkeeping.
type workerInfo struct {
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Stolen    int `json:"stolen"`
}

// shardState tracks one shard through the lease state machine.
type shardState int

const (
	shardPending shardState = iota // unleased, available
	shardLeased                    // held by a worker under deadline
	shardDone                      // every covered variant reported
)

type lease struct {
	worker   string
	epoch    uint64
	deadline time.Time
}

// Coordinator runs one job's lease state machine: shards move pending →
// leased → done, expire back to pending when their heartbeat deadline
// passes (work-stealing), and their results merge into a deduplicated
// record set bound to the job's layout fingerprint. Safe for concurrent
// use — every HTTP handler call lands here.
type Coordinator struct {
	cfg      Config
	variants []*hw.Machine
	shards   []Shard

	breaker  *resilience.Breaker
	frontier *Frontier

	mu     sync.Mutex
	state  []shardState
	leases map[int]lease // shard index → holder
	// epochs fences each shard: bumped on every grant, never reset —
	// not even by recovery — so a report carrying an old epoch is
	// rejected no matter when it arrives.
	epochs  []uint64
	workers map[string]*workerInfo
	merged  map[string][]byte // variant fingerprint → journal payload
	times   map[int]uint64    // variant index → projected-time bits
	// failed records variant failures by index (first report wins).
	failed      map[int]VariantFailure
	steals      int
	staleFenced int // reports rejected by epoch fencing

	// log is the crash-safety journal (nil = memory-only job). A write
	// failure latches logDegraded: the job keeps serving from memory.
	log              *Log
	logDegraded      bool
	logErr           error
	recoveredShards  int
	recoveredRecords int
}

// NewCoordinator builds the coordinator for one job, materializing and
// partitioning the spec's grid.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Spec.LayoutFP == "" {
		return nil, fmt.Errorf("shard: job %s: spec has no layout fingerprint", cfg.JobID)
	}
	variants, err := cfg.Spec.Variants()
	if err != nil {
		return nil, fmt.Errorf("shard: job %s: %w", cfg.JobID, err)
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 30 * time.Second
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 4 * cfg.Lease
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	shards := Partition(cfg.Spec.LayoutFP, variants, cfg.Spec.ShardSize)
	breaker := resilience.NewProbingBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	breaker.Clock = cfg.Clock
	c := &Coordinator{
		cfg:      cfg,
		variants: variants,
		shards:   shards,
		breaker:  breaker,
		frontier: NewFrontier(cfg.Cost),
		state:    make([]shardState, len(shards)),
		leases:   make(map[int]lease),
		epochs:   make([]uint64, len(shards)),
		workers:  make(map[string]*workerInfo),
		merged:   make(map[string][]byte),
		times:    make(map[int]uint64),
		failed:   make(map[int]VariantFailure),
	}
	if cfg.Log != nil {
		// The job record is the recovery anchor; failing to persist it
		// is a creation failure, not a degradation — an operator who
		// asked for a crash-safe job should not silently get a
		// memory-only one.
		if err := cfg.Log.begin(cfg.JobID); err != nil {
			return nil, fmt.Errorf("shard: job %s: log: %w", cfg.JobID, err)
		}
		if err := cfg.Log.append(logKeyJob, logJobRecord{
			JobID: cfg.JobID, Spec: cfg.Spec, LeaseMs: cfg.Lease.Milliseconds(),
		}); err != nil {
			return nil, fmt.Errorf("shard: job %s: log: %w", cfg.JobID, err)
		}
		c.log = cfg.Log
	}
	return c, nil
}

// Spec returns the job's spec (workers fetch it to reproduce the grid).
func (c *Coordinator) Spec() JobSpec { return c.cfg.Spec }

// Shards returns the job's partition.
func (c *Coordinator) Shards() []Shard { return c.shards }

// Register announces a worker. Idempotent; registration is bookkeeping,
// not authorization — an unregistered worker's lease request registers it.
func (c *Coordinator) Register(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.worker(worker)
}

func (c *Coordinator) worker(name string) *workerInfo {
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{}
		c.workers[name] = w
	}
	return w
}

// expireLeases returns every expired lease's shard to the pending pool.
// Called under c.mu from every entry point — expiry is lazy, there is no
// background goroutine to leak.
func (c *Coordinator) expireLeases() {
	now := c.cfg.Clock()
	for idx, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, idx)
			c.state[idx] = shardPending
			c.steals++
			c.worker(l.worker).Stolen++
		}
	}
}

// Grant is the outcome of one lease request. Epoch is the fencing token
// for the granted shard: the worker must present it on every heartbeat,
// completion, and failure report, and a report whose epoch is older than
// the shard's current one is rejected with ErrStaleLease.
type Grant struct {
	State LeaseState
	// Shard and Epoch are set when State is LeaseGranted.
	Shard Shard
	Epoch uint64
	// Lease is the granted lease duration.
	Lease time.Duration
}

// Lease grants the worker a pending shard, or reports why there is none:
// wait (all leased), done (all complete), or quarantined (this worker's
// breaker is open). The granted lease lives for the configured interval
// unless renewed by Heartbeat.
//
// Lease is idempotent per worker: if the worker already holds a live
// lease (its previous grant's response was lost on the wire and the
// request retried), the same shard is re-granted under the same epoch
// with a refreshed deadline, instead of handing one worker two shards.
func (c *Coordinator) Lease(worker string) (Grant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.worker(worker)
	c.expireLeases()
	for idx, l := range c.leases {
		if l.worker == worker {
			renewed := lease{worker: worker, epoch: l.epoch, deadline: c.cfg.Clock().Add(c.cfg.Lease)}
			c.leases[idx] = renewed
			c.logLease(idx, renewed)
			return Grant{State: LeaseGranted, Shard: c.shards[idx], Epoch: l.epoch, Lease: c.cfg.Lease}, nil
		}
	}
	pending := -1
	leased := 0
	for idx, st := range c.state {
		switch st {
		case shardPending:
			if pending < 0 {
				pending = idx
			}
		case shardLeased:
			leased++
		}
	}
	if pending < 0 {
		// Decide wait/done before consulting the breaker: an open
		// worker's half-open probe must not be consumed by a request
		// that could not have been granted anyway.
		if leased > 0 {
			return Grant{State: LeaseWait}, nil
		}
		return Grant{State: LeaseDone}, nil
	}
	if !c.breaker.Allow(worker) {
		return Grant{State: LeaseQuarantined}, nil
	}
	c.epochs[pending]++
	granted := lease{worker: worker, epoch: c.epochs[pending], deadline: c.cfg.Clock().Add(c.cfg.Lease)}
	c.state[pending] = shardLeased
	c.leases[pending] = granted
	// Persist the grant before the worker learns of it: after a crash
	// the recovered coordinator must never re-issue a live epoch.
	c.logLease(pending, granted)
	return Grant{State: LeaseGranted, Shard: c.shards[pending], Epoch: granted.epoch, Lease: c.cfg.Lease}, nil
}

// shardByID resolves a shard ID (under c.mu).
func (c *Coordinator) shardByID(id string) (int, error) {
	for idx, s := range c.shards {
		if s.ID == id {
			return idx, nil
		}
	}
	return -1, fmt.Errorf("shard: job %s: %q: %w", c.cfg.JobID, id, ErrUnknownShard)
}

// Heartbeat renews the worker's lease on the shard for another full lease
// interval. ErrNotOwner means the lease expired and may have been stolen;
// ErrStaleLease means the shard was re-granted under a newer epoch. In
// both cases the worker must abandon the shard.
func (c *Coordinator) Heartbeat(worker, shardID string, epoch uint64) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	idx, err := c.shardByID(shardID)
	if err != nil {
		return 0, err
	}
	if epoch != c.epochs[idx] {
		c.staleFenced++
		return 0, fmt.Errorf("shard: job %s: %s heartbeat on %s with epoch %d, current %d: %w",
			c.cfg.JobID, worker, shardID, epoch, c.epochs[idx], ErrStaleLease)
	}
	l, held := c.leases[idx]
	if !held || l.worker != worker {
		return 0, fmt.Errorf("shard: job %s: %s heartbeat on %s: %w", c.cfg.JobID, worker, shardID, ErrNotOwner)
	}
	renewed := lease{worker: worker, epoch: l.epoch, deadline: c.cfg.Clock().Add(c.cfg.Lease)}
	c.leases[idx] = renewed
	// Renewals are persisted so a coordinator restart honors the live
	// deadline instead of re-granting a shard its holder still works on.
	c.logLease(idx, renewed)
	return c.cfg.Lease, nil
}

// mergeShard validates and merges one shard's results and failures
// (under c.mu). Every record is validated against the grid — the index
// must lie in the shard, the key must be that variant's fingerprint, and
// a key reported twice must carry byte-equal payloads (ErrConflict
// otherwise: bit-exactness is the merge invariant, not a hope). Shared
// by Complete and log recovery, so a recovered coordinator re-applies
// exactly the live merge rules.
func (c *Coordinator) mergeShard(idx int, worker string, results []VariantResult, failures []VariantFailure) error {
	sh := c.shards[idx]
	for _, r := range results {
		if r.Index < sh.Start || r.Index >= sh.End {
			return fmt.Errorf("shard: job %s: %s reported index %d outside shard %s [%d,%d)",
				c.cfg.JobID, worker, r.Index, sh.ID, sh.Start, sh.End)
		}
		if want := c.variants[r.Index].Fingerprint(); r.Key != want {
			return fmt.Errorf("shard: job %s: %s variant %d: key %s, grid says %s (version skew?): %w",
				c.cfg.JobID, worker, r.Index, r.Key, want, ErrConflict)
		}
		if prev, dup := c.merged[r.Key]; dup {
			if !bytes.Equal(prev, r.Payload) {
				return fmt.Errorf("shard: job %s: variant %s reported with two different payloads: %w",
					c.cfg.JobID, r.Key, ErrConflict)
			}
			continue
		}
		c.merged[r.Key] = append([]byte(nil), r.Payload...)
		c.times[r.Index] = r.TimeBits
		c.frontier.Add(r.Index, c.variants[r.Index], math.Float64frombits(r.TimeBits))
	}
	for _, f := range failures {
		if f.Index < sh.Start || f.Index >= sh.End {
			return fmt.Errorf("shard: job %s: %s failed index %d outside shard %s",
				c.cfg.JobID, worker, f.Index, sh.ID)
		}
		if _, seen := c.failed[f.Index]; !seen {
			c.failed[f.Index] = VariantFailure{Index: f.Index, Worker: worker, Err: f.Err}
		}
	}
	return nil
}

// Complete merges one shard's results, fenced by the grant's epoch: a
// completion whose epoch is older than the shard's current one is
// rejected with ErrStaleLease — the lease expired and the shard was
// re-granted, so only the current holder's report may land, no matter
// how the deliveries race. Complete is idempotent: re-delivering a
// completion that already landed (a retry after a lost response) is
// acknowledged without re-merging, and a successful merge counts as the
// worker's breaker success.
func (c *Coordinator) Complete(worker, shardID string, epoch uint64, results []VariantResult, failures []VariantFailure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	idx, err := c.shardByID(shardID)
	if err != nil {
		return err
	}
	if epoch != c.epochs[idx] {
		c.staleFenced++
		return fmt.Errorf("shard: job %s: %s complete on %s with epoch %d, current %d: %w",
			c.cfg.JobID, worker, shardID, epoch, c.epochs[idx], ErrStaleLease)
	}
	if c.state[idx] == shardDone {
		// Duplicate delivery of the accepted completion: same epoch, so
		// it is the same report. Acknowledge without re-merging.
		return nil
	}
	if err := c.mergeShard(idx, worker, results, failures); err != nil {
		return err
	}
	if l, held := c.leases[idx]; held && l.worker == worker {
		delete(c.leases, idx)
	}
	c.state[idx] = shardDone
	// Persist before acknowledging: a crash after this append recovers
	// the shard as done with these exact bytes; a crash before it
	// recovers the shard as leased and the worker retries Complete.
	c.logDone(idx, worker, epoch, results, failures)
	w := c.worker(worker)
	w.Completed++
	c.breaker.Success(worker)
	return nil
}

// Fail reports that the worker could not process the shard at all (as
// opposed to individual variant failures, which ride on Complete). The
// shard returns to the pending pool for another worker; the failure feeds
// this worker's breaker, which quarantines it after the configured run of
// consecutive failures. Fail is fenced like Complete: a stale epoch is
// rejected, so a partitioned worker's late failure report cannot yank a
// re-granted shard out from under its new holder.
func (c *Coordinator) Fail(worker, shardID string, epoch uint64, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	idx, err := c.shardByID(shardID)
	if err != nil {
		return err
	}
	if epoch != c.epochs[idx] {
		c.staleFenced++
		return fmt.Errorf("shard: job %s: %s fail on %s with epoch %d, current %d: %w",
			c.cfg.JobID, worker, shardID, epoch, c.epochs[idx], ErrStaleLease)
	}
	if c.state[idx] == shardDone {
		// A late duplicate of a report about a finished shard changes
		// nothing; acknowledging is the idempotent answer.
		return nil
	}
	if l, held := c.leases[idx]; held && l.worker == worker {
		delete(c.leases, idx)
	}
	if c.state[idx] == shardLeased {
		c.state[idx] = shardPending
	}
	w := c.worker(worker)
	w.Failed++
	c.breaker.Failure(worker)
	return nil
}

// Done reports whether every shard has completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	for _, st := range c.state {
		if st != shardDone {
			return false
		}
	}
	return true
}

// Record is one merged journal record.
type Record struct {
	Key     string
	Payload []byte
}

// MergedRecords returns the deduplicated record set in deterministic
// (sorted-key) order — the exact sequence WriteMerged persists.
func (c *Coordinator) MergedRecords() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.merged))
	for k := range c.merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Record, len(keys))
	for i, k := range keys {
		out[i] = Record{Key: k, Payload: append([]byte(nil), c.merged[k]...)}
	}
	return out
}

// VariantResults returns every merged variant as the workers reported it
// — index, journal key, payload, projected-time bits — sorted by index.
// This is the feedback half of the adaptive round protocol: a RoundPlanner
// driver completes one round's mini-job, then feeds this slice (plus
// Failures) back into the planner to train the surrogate.
func (c *Coordinator) VariantResults() []VariantResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VariantResult, 0, len(c.times))
	for idx, bits := range c.times {
		key := c.variants[idx].Fingerprint()
		out = append(out, VariantResult{
			Index:    idx,
			Key:      key,
			Payload:  append([]byte(nil), c.merged[key]...),
			TimeBits: bits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Failures returns the recorded variant failures, sorted by index.
func (c *Coordinator) Failures() []VariantFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VariantFailure, 0, len(c.failed))
	for _, f := range c.failed {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Frontier returns the job's streaming Pareto frontier.
func (c *Coordinator) Frontier() *Frontier { return c.frontier }

// Status is the job's observable state, JSON-shaped for the HTTP surface.
type Status struct {
	JobID     string `json:"job"`
	Layout    string `json:"layout"`
	Variants  int    `json:"variants"`
	Shards    int    `json:"shards"`
	Pending   int    `json:"pending"`
	Leased    int    `json:"leased"`
	Completed int    `json:"completed"`
	// Merged counts deduplicated variant records; Failed counts variants
	// no worker could evaluate; Steals counts expired leases returned to
	// the pool; StaleFenced counts reports rejected by epoch fencing.
	Merged      int  `json:"merged"`
	Failed      int  `json:"failed"`
	Steals      int  `json:"steals"`
	StaleFenced int  `json:"stale_fenced,omitempty"`
	Done        bool `json:"done"`
	// RecoveredShards and RecoveredRecords count what a coordinator
	// restart replayed from its log; LogDegraded reports a crash-safety
	// log that stopped accepting appends (the job serves from memory).
	RecoveredShards  int  `json:"recovered_shards,omitempty"`
	RecoveredRecords int  `json:"recovered_records,omitempty"`
	LogDegraded      bool `json:"log_degraded,omitempty"`
	// Workers maps worker IDs to their tallies; Quarantined lists workers
	// whose breaker is currently open.
	Workers     map[string]workerInfo `json:"workers,omitempty"`
	Quarantined []string              `json:"quarantined,omitempty"`
	// FrontierSize is the current streaming Pareto frontier size.
	FrontierSize int `json:"frontier_size"`
}

// Status snapshots the job.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	st := Status{
		JobID:            c.cfg.JobID,
		Layout:           c.cfg.Spec.LayoutFP,
		Variants:         len(c.variants),
		Shards:           len(c.shards),
		Merged:           len(c.merged),
		Failed:           len(c.failed),
		Steals:           c.steals,
		StaleFenced:      c.staleFenced,
		RecoveredShards:  c.recoveredShards,
		RecoveredRecords: c.recoveredRecords,
		LogDegraded:      c.logDegraded,
		Workers:          make(map[string]workerInfo, len(c.workers)),
	}
	for _, s := range c.state {
		switch s {
		case shardPending:
			st.Pending++
		case shardLeased:
			st.Leased++
		case shardDone:
			st.Completed++
		}
	}
	st.Done = st.Completed == len(c.shards)
	for name, w := range c.workers {
		st.Workers[name] = *w
	}
	st.Quarantined = c.breaker.Open()
	st.FrontierSize = c.frontier.Len()
	return st
}
