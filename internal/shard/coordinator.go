package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/resilience"
)

// Lease protocol errors.
var (
	// ErrNotOwner marks a heartbeat or completion from a worker that no
	// longer holds the shard's lease (it expired and was stolen). The
	// worker should abandon the shard — its journal survives for the new
	// owner — and ask for a fresh lease.
	ErrNotOwner = errors.New("shard lease not held")
	// ErrConflict marks two workers reporting different payloads for the
	// same variant fingerprint — impossible under the bit-exactness
	// invariant, so it means a corrupted worker or a fingerprint
	// collision, and the job refuses to merge rather than pick a side.
	ErrConflict = errors.New("shard merge conflict")
	// ErrUnknownShard marks a report against a shard ID the job does not
	// have.
	ErrUnknownShard = errors.New("unknown shard")
)

// LeaseState is the outcome of one lease request.
type LeaseState string

const (
	// LeaseGranted carries a shard to work on.
	LeaseGranted LeaseState = "lease"
	// LeaseWait means every remaining shard is currently leased: poll
	// again after the poll interval (a lease may expire or fail).
	LeaseWait LeaseState = "wait"
	// LeaseDone means every shard is complete; the worker can exit.
	LeaseDone LeaseState = "done"
	// LeaseQuarantined means this worker's breaker is open: the
	// coordinator refuses to lease to it until the breaker's cooldown
	// admits a probe.
	LeaseQuarantined LeaseState = "quarantined"
)

// VariantResult is one completed variant as a worker reports it: the
// journal record (key = machine fingerprint, payload = the sweep record's
// exact bytes) plus the variant's grid index and projected time for the
// streaming frontier.
type VariantResult struct {
	Index    int             `json:"index"`
	Key      string          `json:"key"`
	Payload  json.RawMessage `json:"payload"`
	TimeBits uint64          `json:"time"`
}

// VariantFailure is one variant a worker could not evaluate (validation
// rejection, confidence floor, exhausted retries). Failures are recorded,
// not retried by the coordinator: the engine below already retried
// transients, so what reaches here is deterministic for this spec.
type VariantFailure struct {
	Index  int    `json:"index"`
	Worker string `json:"worker"`
	Err    string `json:"err"`
}

// Config parameterizes a Coordinator.
type Config struct {
	// JobID names the job in the HTTP surface and status output.
	JobID string
	// Spec is the job being coordinated. The coordinator materializes the
	// grid once at construction and verifies the spec's LayoutFP is set.
	Spec JobSpec
	// Lease is how long a granted lease lives between heartbeats
	// (default 30s). Heartbeats renew it for another full interval.
	Lease time.Duration
	// BreakerThreshold and BreakerCooldown shape the per-worker circuit
	// breaker: Threshold consecutive shard failures quarantine the worker
	// (default 3); after Cooldown (default 4×Lease) one probe lease is
	// allowed again.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Cost scores variants for the streaming Pareto frontier (nil selects
	// explore.RelativeCost).
	Cost explore.CostFunc
	// Clock is the time source (nil selects time.Now; tests pin it).
	Clock func() time.Time
}

// workerInfo is the coordinator's per-worker bookkeeping.
type workerInfo struct {
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Stolen    int `json:"stolen"`
}

// shardState tracks one shard through the lease state machine.
type shardState int

const (
	shardPending shardState = iota // unleased, available
	shardLeased                    // held by a worker under deadline
	shardDone                      // every covered variant reported
)

type lease struct {
	worker   string
	deadline time.Time
}

// Coordinator runs one job's lease state machine: shards move pending →
// leased → done, expire back to pending when their heartbeat deadline
// passes (work-stealing), and their results merge into a deduplicated
// record set bound to the job's layout fingerprint. Safe for concurrent
// use — every HTTP handler call lands here.
type Coordinator struct {
	cfg      Config
	variants []*hw.Machine
	shards   []Shard

	breaker  *resilience.Breaker
	frontier *Frontier

	mu      sync.Mutex
	state   []shardState
	leases  map[int]lease // shard index → holder
	workers map[string]*workerInfo
	merged  map[string][]byte // variant fingerprint → journal payload
	times   map[int]uint64    // variant index → projected-time bits
	// failed records variant failures by index (first report wins).
	failed map[int]VariantFailure
	steals int
}

// NewCoordinator builds the coordinator for one job, materializing and
// partitioning the spec's grid.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Spec.LayoutFP == "" {
		return nil, fmt.Errorf("shard: job %s: spec has no layout fingerprint", cfg.JobID)
	}
	variants, err := cfg.Spec.Variants()
	if err != nil {
		return nil, fmt.Errorf("shard: job %s: %w", cfg.JobID, err)
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 30 * time.Second
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 4 * cfg.Lease
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	shards := Partition(cfg.Spec.LayoutFP, variants, cfg.Spec.ShardSize)
	breaker := resilience.NewProbingBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	breaker.Clock = cfg.Clock
	return &Coordinator{
		cfg:      cfg,
		variants: variants,
		shards:   shards,
		breaker:  breaker,
		frontier: NewFrontier(cfg.Cost),
		state:    make([]shardState, len(shards)),
		leases:   make(map[int]lease),
		workers:  make(map[string]*workerInfo),
		merged:   make(map[string][]byte),
		times:    make(map[int]uint64),
		failed:   make(map[int]VariantFailure),
	}, nil
}

// Spec returns the job's spec (workers fetch it to reproduce the grid).
func (c *Coordinator) Spec() JobSpec { return c.cfg.Spec }

// Shards returns the job's partition.
func (c *Coordinator) Shards() []Shard { return c.shards }

// Register announces a worker. Idempotent; registration is bookkeeping,
// not authorization — an unregistered worker's lease request registers it.
func (c *Coordinator) Register(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.worker(worker)
}

func (c *Coordinator) worker(name string) *workerInfo {
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{}
		c.workers[name] = w
	}
	return w
}

// expireLeases returns every expired lease's shard to the pending pool.
// Called under c.mu from every entry point — expiry is lazy, there is no
// background goroutine to leak.
func (c *Coordinator) expireLeases() {
	now := c.cfg.Clock()
	for idx, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, idx)
			c.state[idx] = shardPending
			c.steals++
			c.worker(l.worker).Stolen++
		}
	}
}

// Lease grants the worker a pending shard, or reports why there is none:
// wait (all leased), done (all complete), or quarantined (this worker's
// breaker is open). The granted lease lives for the configured interval
// unless renewed by Heartbeat.
func (c *Coordinator) Lease(worker string) (LeaseState, Shard, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.worker(worker)
	c.expireLeases()
	pending := -1
	leased := 0
	for idx, st := range c.state {
		switch st {
		case shardPending:
			if pending < 0 {
				pending = idx
			}
		case shardLeased:
			leased++
		}
	}
	if pending < 0 {
		// Decide wait/done before consulting the breaker: an open
		// worker's half-open probe must not be consumed by a request
		// that could not have been granted anyway.
		if leased > 0 {
			return LeaseWait, Shard{}, 0, nil
		}
		return LeaseDone, Shard{}, 0, nil
	}
	if !c.breaker.Allow(worker) {
		return LeaseQuarantined, Shard{}, 0, nil
	}
	c.state[pending] = shardLeased
	c.leases[pending] = lease{worker: worker, deadline: c.cfg.Clock().Add(c.cfg.Lease)}
	return LeaseGranted, c.shards[pending], c.cfg.Lease, nil
}

// shardByID resolves a shard ID (under c.mu).
func (c *Coordinator) shardByID(id string) (int, error) {
	for idx, s := range c.shards {
		if s.ID == id {
			return idx, nil
		}
	}
	return -1, fmt.Errorf("shard: job %s: %q: %w", c.cfg.JobID, id, ErrUnknownShard)
}

// Heartbeat renews the worker's lease on the shard for another full lease
// interval. ErrNotOwner means the lease expired and may have been stolen:
// the worker must abandon the shard.
func (c *Coordinator) Heartbeat(worker, shardID string) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	idx, err := c.shardByID(shardID)
	if err != nil {
		return 0, err
	}
	l, held := c.leases[idx]
	if !held || l.worker != worker {
		return 0, fmt.Errorf("shard: job %s: %s heartbeat on %s: %w", c.cfg.JobID, worker, shardID, ErrNotOwner)
	}
	c.leases[idx] = lease{worker: worker, deadline: c.cfg.Clock().Add(c.cfg.Lease)}
	return c.cfg.Lease, nil
}

// Complete merges one shard's results. Every record is validated against
// the grid — the index must lie in the shard, the key must be that
// variant's fingerprint, and a key reported twice must carry byte-equal
// payloads (ErrConflict otherwise: bit-exactness is the merge invariant,
// not a hope). Completion is accepted even if the lease was stolen — the
// records are valid regardless of who held the lease when they landed —
// and counts as the worker's breaker success.
func (c *Coordinator) Complete(worker, shardID string, results []VariantResult, failures []VariantFailure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	idx, err := c.shardByID(shardID)
	if err != nil {
		return err
	}
	sh := c.shards[idx]
	for _, r := range results {
		if r.Index < sh.Start || r.Index >= sh.End {
			return fmt.Errorf("shard: job %s: %s reported index %d outside shard %s [%d,%d)",
				c.cfg.JobID, worker, r.Index, shardID, sh.Start, sh.End)
		}
		if want := c.variants[r.Index].Fingerprint(); r.Key != want {
			return fmt.Errorf("shard: job %s: %s variant %d: key %s, grid says %s (version skew?): %w",
				c.cfg.JobID, worker, r.Index, r.Key, want, ErrConflict)
		}
		if prev, dup := c.merged[r.Key]; dup {
			if !bytes.Equal(prev, r.Payload) {
				return fmt.Errorf("shard: job %s: variant %s reported with two different payloads: %w",
					c.cfg.JobID, r.Key, ErrConflict)
			}
			continue
		}
		c.merged[r.Key] = append([]byte(nil), r.Payload...)
		c.times[r.Index] = r.TimeBits
		c.frontier.Add(r.Index, c.variants[r.Index], math.Float64frombits(r.TimeBits))
	}
	for _, f := range failures {
		if f.Index < sh.Start || f.Index >= sh.End {
			return fmt.Errorf("shard: job %s: %s failed index %d outside shard %s",
				c.cfg.JobID, worker, f.Index, shardID)
		}
		if _, seen := c.failed[f.Index]; !seen {
			c.failed[f.Index] = VariantFailure{Index: f.Index, Worker: worker, Err: f.Err}
		}
	}
	if l, held := c.leases[idx]; held && l.worker == worker {
		delete(c.leases, idx)
	}
	c.state[idx] = shardDone
	w := c.worker(worker)
	w.Completed++
	c.breaker.Success(worker)
	return nil
}

// Fail reports that the worker could not process the shard at all (as
// opposed to individual variant failures, which ride on Complete). The
// shard returns to the pending pool for another worker; the failure feeds
// this worker's breaker, which quarantines it after the configured run of
// consecutive failures.
func (c *Coordinator) Fail(worker, shardID string, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	idx, err := c.shardByID(shardID)
	if err != nil {
		return err
	}
	if l, held := c.leases[idx]; held && l.worker == worker {
		delete(c.leases, idx)
	}
	if c.state[idx] == shardLeased {
		c.state[idx] = shardPending
	}
	w := c.worker(worker)
	w.Failed++
	c.breaker.Failure(worker)
	return nil
}

// Done reports whether every shard has completed.
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	for _, st := range c.state {
		if st != shardDone {
			return false
		}
	}
	return true
}

// Record is one merged journal record.
type Record struct {
	Key     string
	Payload []byte
}

// MergedRecords returns the deduplicated record set in deterministic
// (sorted-key) order — the exact sequence WriteMerged persists.
func (c *Coordinator) MergedRecords() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.merged))
	for k := range c.merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Record, len(keys))
	for i, k := range keys {
		out[i] = Record{Key: k, Payload: append([]byte(nil), c.merged[k]...)}
	}
	return out
}

// VariantResults returns every merged variant as the workers reported it
// — index, journal key, payload, projected-time bits — sorted by index.
// This is the feedback half of the adaptive round protocol: a RoundPlanner
// driver completes one round's mini-job, then feeds this slice (plus
// Failures) back into the planner to train the surrogate.
func (c *Coordinator) VariantResults() []VariantResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VariantResult, 0, len(c.times))
	for idx, bits := range c.times {
		key := c.variants[idx].Fingerprint()
		out = append(out, VariantResult{
			Index:    idx,
			Key:      key,
			Payload:  append([]byte(nil), c.merged[key]...),
			TimeBits: bits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Failures returns the recorded variant failures, sorted by index.
func (c *Coordinator) Failures() []VariantFailure {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VariantFailure, 0, len(c.failed))
	for _, f := range c.failed {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Frontier returns the job's streaming Pareto frontier.
func (c *Coordinator) Frontier() *Frontier { return c.frontier }

// Status is the job's observable state, JSON-shaped for the HTTP surface.
type Status struct {
	JobID     string `json:"job"`
	Layout    string `json:"layout"`
	Variants  int    `json:"variants"`
	Shards    int    `json:"shards"`
	Pending   int    `json:"pending"`
	Leased    int    `json:"leased"`
	Completed int    `json:"completed"`
	// Merged counts deduplicated variant records; Failed counts variants
	// no worker could evaluate; Steals counts expired leases returned to
	// the pool.
	Merged int  `json:"merged"`
	Failed int  `json:"failed"`
	Steals int  `json:"steals"`
	Done   bool `json:"done"`
	// Workers maps worker IDs to their tallies; Quarantined lists workers
	// whose breaker is currently open.
	Workers     map[string]workerInfo `json:"workers,omitempty"`
	Quarantined []string              `json:"quarantined,omitempty"`
	// FrontierSize is the current streaming Pareto frontier size.
	FrontierSize int `json:"frontier_size"`
}

// Status snapshots the job.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases()
	st := Status{
		JobID:    c.cfg.JobID,
		Layout:   c.cfg.Spec.LayoutFP,
		Variants: len(c.variants),
		Shards:   len(c.shards),
		Merged:   len(c.merged),
		Failed:   len(c.failed),
		Steals:   c.steals,
		Workers:  make(map[string]workerInfo, len(c.workers)),
	}
	for _, s := range c.state {
		switch s {
		case shardPending:
			st.Pending++
		case shardLeased:
			st.Leased++
		case shardDone:
			st.Completed++
		}
	}
	st.Done = st.Completed == len(c.shards)
	for name, w := range c.workers {
		st.Workers[name] = *w
	}
	st.Quarantined = c.breaker.Open()
	st.FrontierSize = c.frontier.Len()
	return st
}
