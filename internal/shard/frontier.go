package shard

import (
	"sort"
	"sync"

	"skope/internal/explore"
	"skope/internal/hw"
)

// Frontier is a streaming Pareto frontier over the (projected time, cost)
// plane: the coordinator feeds it each completed variant as workers report
// in, and at any moment Points returns the non-dominated set so far —
// the same frontier explore.Pareto would compute over the variants seen,
// without holding every analysis in memory. Safe for concurrent use.
type Frontier struct {
	cost explore.CostFunc

	mu  sync.Mutex
	pts []explore.Point // non-dominated so far, ascending cost
}

// NewFrontier returns an empty frontier under the given cost function
// (nil selects explore.RelativeCost).
func NewFrontier(cost explore.CostFunc) *Frontier {
	if cost == nil {
		cost = explore.RelativeCost
	}
	return &Frontier{cost: cost}
}

// Add offers one completed variant. It keeps the point only if no current
// point is at least as good on both axes, and evicts any points the new
// one dominates — the standard frontier invariant, maintained online.
func (f *Frontier) Add(index int, m *hw.Machine, time float64) {
	p := explore.Point{Index: index, Machine: m, Time: time, Cost: f.cost(m)}
	f.mu.Lock()
	defer f.mu.Unlock()
	// pts is sorted by strictly ascending cost and strictly descending
	// time (two points tied on either axis would dominate one another).
	// A point at or below p's cost that is also at or below its time
	// dominates p.
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].Cost >= p.Cost })
	if i > 0 && f.pts[i-1].Time <= p.Time {
		return // dominated (or tied) by a strictly cheaper point
	}
	if i < len(f.pts) && f.pts[i].Cost == p.Cost && f.pts[i].Time <= p.Time {
		return // dominated (or tied) by an equal-cost point
	}
	// p survives: drop every point it dominates — costlier-or-equal ones
	// that are not strictly faster. Descending time makes them a prefix.
	j := i
	for j < len(f.pts) && f.pts[j].Time >= p.Time {
		j++
	}
	f.pts = append(f.pts[:i], append([]explore.Point{p}, f.pts[j:]...)...)
}

// Points returns a copy of the current frontier, sorted by ascending cost
// (hence descending time).
func (f *Frontier) Points() []explore.Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]explore.Point, len(f.pts))
	copy(out, f.pts)
	return out
}

// Len returns the current frontier size.
func (f *Frontier) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pts)
}
