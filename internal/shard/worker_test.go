package shard_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/pipeline"
	"skope/internal/shard"
	"skope/internal/workloads"
)

// preparedRun caches the test workload's preparation (it includes a full
// profiling execution).
var (
	prepOnce sync.Once
	prepRun  *pipeline.Run
	prepErr  error
)

func preparedSord(t testing.TB) *pipeline.Run {
	t.Helper()
	prepOnce.Do(func() {
		prepRun, prepErr = pipeline.PrepareByName(context.Background(), "sord", workloads.ScaleTest)
	})
	if prepErr != nil {
		t.Fatalf("prepare sord: %v", prepErr)
	}
	return prepRun
}

// sordSpec builds a real 6-variant job spec for the sord benchmark, bound
// to its actual layout fingerprint.
func sordSpec(t testing.TB) (shard.JobSpec, *pipeline.Run) {
	t.Helper()
	run := preparedSord(t)
	layout, err := run.Layout()
	if err != nil {
		t.Fatal(err)
	}
	return shard.JobSpec{
		Bench: "sord",
		Scale: float64(workloads.ScaleTest),
		Base:  hw.BGQ().Wire(),
		Axes: []explore.Axis{
			{Param: "mem-bandwidth", Values: []float64{16, 32, 64}},
			{Param: "net-latency-us", Values: []float64{1, 2}},
		},
		LayoutFP:  layout.Fingerprint(),
		ShardSize: 2,
	}, run
}

// serveJob mounts a coordinator for spec on a test server and returns the
// coordinator, a client, and the job ID.
func serveJob(t *testing.T, spec shard.JobSpec, cfg shard.Config) (*shard.Coordinator, *shard.Client, string) {
	t.Helper()
	cfg.Spec = spec
	if cfg.JobID == "" {
		cfg.JobID = "j-worker-test"
	}
	coord, err := shard.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := shard.NewService()
	svc.Add(coord)
	mux := http.NewServeMux()
	svc.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return coord, &shard.Client{BaseURL: srv.URL, HTTP: srv.Client()}, cfg.JobID
}

// directSweep evaluates the spec's variants in-process with no journal —
// the reference result set for bit-identity assertions.
func directSweep(t *testing.T, run *pipeline.Run, spec shard.JobSpec) []*pipeline.Eval {
	t.Helper()
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	evals, err := pipeline.Sweep(context.Background(), run, variants, spec.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	return evals
}

// assertMergedMatchesDirect replays the merged journal and checks every
// analysis is byte-identical to the direct sweep's.
func assertMergedMatchesDirect(t *testing.T, coord *shard.Coordinator, run *pipeline.Run, spec shard.JobSpec, mergedPath string) {
	t.Helper()
	n, err := coord.WriteMerged(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(variants) {
		t.Fatalf("merged journal has %d records, want %d", n, len(variants))
	}
	jnl, err := journal.Open(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	replayed, err := pipeline.Sweep(context.Background(), run, variants,
		append(spec.Options(), pipeline.WithJournal(jnl))...)
	if err != nil {
		t.Fatal(err)
	}
	want := directSweep(t, run, spec)
	for i := range want {
		if replayed[i].Provenance != pipeline.FromJournal {
			t.Errorf("variant %d: provenance %v, want FromJournal", i, replayed[i].Provenance)
		}
		a, err := hotspot.EncodeAnalysis(replayed[i].Analysis)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hotspot.EncodeAnalysis(want[i].Analysis)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("variant %d: merged result differs from direct sweep", i)
		}
	}
}

func runWorker(t *testing.T, client *shard.Client, jobID, id, dataDir string) (shard.WorkerStats, error) {
	t.Helper()
	w := &shard.Worker{
		Client:  client,
		JobID:   jobID,
		ID:      id,
		DataDir: dataDir,
		Poll:    10 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return w.Run(ctx)
}

func TestWorkersCompleteJobOverHTTP(t *testing.T) {
	spec, run := sordSpec(t)
	coord, client, jobID := serveJob(t, spec, shard.Config{Lease: 30 * time.Second})
	dir := t.TempDir()

	var wg sync.WaitGroup
	stats := make([]shard.WorkerStats, 2)
	errs := make([]error, 2)
	for i, id := range []string{"w0", "w1"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			stats[i], errs[i] = runWorker(t, client, jobID, id, dir)
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if !coord.Done() {
		t.Fatal("job not done")
	}
	totalShards := stats[0].Shards + stats[1].Shards
	if totalShards != 3 {
		t.Fatalf("workers completed %d shards, want 3", totalShards)
	}
	if got := stats[0].Variants + stats[1].Variants; got != 6 {
		t.Fatalf("workers reported %d variants, want 6", got)
	}
	st := coord.Status()
	if st.Merged != 6 || st.Failed != 0 || len(st.Workers) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if coord.Frontier().Len() == 0 {
		t.Fatal("frontier empty")
	}
	assertMergedMatchesDirect(t, coord, run, spec, dir+"/merged.journal")
}

func TestWorkerResumesFromJournalsReplayOnly(t *testing.T) {
	spec, run := sordSpec(t)
	dir := t.TempDir()

	// First pass: one worker completes the whole job, leaving per-shard
	// journals behind.
	_, client1, job1 := serveJob(t, spec, shard.Config{JobID: "j-pass1", Lease: 30 * time.Second})
	if _, err := runWorker(t, client1, job1, "w0", dir); err != nil {
		t.Fatal(err)
	}

	// Second pass: a fresh coordinator for the same job ID (the crash-
	// and-restart scenario) and a replay-only worker — it refuses to
	// evaluate, so completing proves every variant came from the journals.
	coord2, client2, job2 := serveJob(t, spec, shard.Config{JobID: "j-pass1", Lease: 30 * time.Second})
	w := &shard.Worker{
		Client: client2, JobID: job2, ID: "w-replay", DataDir: dir,
		Poll: 10 * time.Millisecond, ReplayOnly: true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || st.Variants != 6 {
		t.Fatalf("replay worker stats = %+v", st)
	}
	if st.Replayed != 6 {
		t.Fatalf("replayed %d of 6 variants — resumed work was recomputed", st.Replayed)
	}
	assertMergedMatchesDirect(t, coord2, run, spec, dir+"/merged2.journal")
}

func TestWorkerRejectsSkewedLayout(t *testing.T) {
	spec, _ := sordSpec(t)
	spec.LayoutFP = "0000000000000000" // not what preparation will produce
	_, client, jobID := serveJob(t, spec, shard.Config{Lease: 30 * time.Second})
	w := &shard.Worker{
		Client: client, JobID: jobID, ID: "w-skew", DataDir: t.TempDir(),
		Poll: 10 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, err := w.Run(ctx)
	if !errors.Is(err, shard.ErrSkew) {
		t.Fatalf("skewed worker: %v, want ErrSkew", err)
	}
}

func TestWorkerQuarantineDoesNotVoidJob(t *testing.T) {
	spec, run := sordSpec(t)
	coord, client, jobID := serveJob(t, spec, shard.Config{
		Lease:            30 * time.Second,
		BreakerThreshold: 2,
	})
	goodDir := t.TempDir()

	// The bad worker's data dir is a regular file, so every journal open
	// fails: it reports Fail on each leased shard until the breaker
	// quarantines it.
	badDir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(badDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Let the bad worker run alone until the breaker quarantines it, so
	// the assertions don't race the good worker finishing first.
	var badStats shard.WorkerStats
	var badErr error
	badDone := make(chan struct{})
	go func() {
		defer close(badDone)
		badStats, badErr = runWorker(t, client, jobID, "bad", badDir)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for len(coord.Status().Quarantined) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bad worker never quarantined: %+v", coord.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}

	goodStats, goodErr := runWorker(t, client, jobID, "good", goodDir)
	<-badDone
	if goodErr != nil {
		t.Fatalf("good worker: %v", goodErr)
	}
	if badErr != nil {
		t.Fatalf("bad worker should idle out, not error: %v", badErr)
	}
	if !coord.Done() {
		t.Fatal("job not done")
	}
	st := coord.Status()
	if st.Merged != 6 {
		t.Fatalf("merged %d variants, want 6", st.Merged)
	}
	if goodStats.Shards != 3 || goodStats.Variants != 6 {
		t.Fatalf("good worker stats = %+v", goodStats)
	}
	if badStats.Shards != 0 || badStats.Quarantines == 0 {
		t.Fatalf("bad worker stats = %+v, want 0 shards and some quarantine polls", badStats)
	}
	if q := st.Quarantined; len(q) != 1 || q[0] != "bad" {
		t.Fatalf("Quarantined = %v, want [bad]", q)
	}
	if st.Workers["bad"].Failed < 2 {
		t.Fatalf("bad worker failures = %d, want >= 2", st.Workers["bad"].Failed)
	}
	_ = run
}

func TestServiceListAndDetail(t *testing.T) {
	spec, _ := sordSpec(t)
	coord, client, jobID := serveJob(t, spec, shard.Config{Lease: 30 * time.Second})

	detail, err := client.Detail(context.Background(), jobID)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Spec.LayoutFP != spec.LayoutFP {
		t.Fatalf("detail spec layout = %q, want %q", detail.Spec.LayoutFP, spec.LayoutFP)
	}
	if len(detail.Shards) != len(coord.Shards()) {
		t.Fatalf("detail has %d shards, want %d", len(detail.Shards), len(coord.Shards()))
	}
	// The spec survives the wire bit-exactly: a client-side partition from
	// the decoded spec matches the coordinator's.
	variants, err := detail.Spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	local := shard.Partition(detail.Spec.LayoutFP, variants, detail.Spec.ShardSize)
	for i := range local {
		if local[i].Fingerprint != detail.Shards[i].Fingerprint {
			t.Fatalf("shard %d fingerprint drifted across the wire", i)
		}
	}
	// Unknown jobs 404 with a typed error.
	if _, err := client.Lease(context.Background(), "no-such-job", "w"); err == nil {
		t.Fatal("lease against unknown job succeeded")
	}
}
