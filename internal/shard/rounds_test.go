package shard_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"skope/internal/explore"
	"skope/internal/hw"
	"skope/internal/pipeline"
	"skope/internal/shard"
	"skope/internal/workloads"
)

// roundSpec builds the adaptive round-protocol test job: a 36-variant sord
// grid, small shards so every round fans out over several leases.
func roundSpec(t testing.TB) (shard.JobSpec, *pipeline.Run) {
	t.Helper()
	run := preparedSord(t)
	layout, err := run.Layout()
	if err != nil {
		t.Fatal(err)
	}
	return shard.JobSpec{
		Bench: "sord",
		Scale: float64(workloads.ScaleTest),
		Base:  hw.BGQ().Wire(),
		Axes: []explore.Axis{
			{Param: "freq-ghz", Values: []float64{1.2, 1.6, 2.0, 2.4}},
			{Param: "mem-latency", Values: []float64{80, 110, 150}},
			{Param: "hit-l1", Values: []float64{0.9, 0.95, 0.99}},
		},
		LayoutFP:  layout.Fingerprint(),
		ShardSize: 4,
	}, run
}

// TestJobSpecIndicesSubset: a spec carrying Indices materializes exactly
// that grid subset, in order, and rejects out-of-range or duplicated
// entries — the property the whole round protocol leans on.
func TestJobSpecIndicesSubset(t *testing.T) {
	spec, _ := roundSpec(t)
	full, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}

	sub := spec
	sub.Indices = []int{7, 0, 35, 12}
	variants, err := sub.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 4 {
		t.Fatalf("subset has %d variants, want 4", len(variants))
	}
	for i, g := range sub.Indices {
		if variants[i].Fingerprint() != full[g].Fingerprint() {
			t.Errorf("subset position %d != grid position %d", i, g)
		}
	}
	// The subset partitions and coordinates like any other job.
	shards, err := sub.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0].End != 4 {
		t.Fatalf("subset shards = %+v", shards)
	}

	for _, bad := range [][]int{{-1}, {36}, {3, 3}} {
		b := spec
		b.Indices = bad
		if _, err := b.Variants(); err == nil {
			t.Errorf("Indices %v accepted", bad)
		}
	}
}

// TestRoundPlannerDrivesCoordinatedRounds is the distributed-adaptive
// integration test: the RoundPlanner hands out each acquisition round as
// an ordinary mini-job, real workers complete it over HTTP through the
// unchanged lease/steal/merge protocol, and the merged results train the
// surrogate. The search must converge on the same optimum an exhaustive
// in-process sweep finds, while evaluating only a fraction of the grid.
func TestRoundPlannerDrivesCoordinatedRounds(t *testing.T) {
	spec, run := roundSpec(t)

	// Exhaustive reference.
	variants, err := spec.Variants()
	if err != nil {
		t.Fatal(err)
	}
	evals, err := pipeline.Sweep(context.Background(), run, variants, spec.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	bestIdx, bestTime := -1, 0.0
	for i, ev := range evals {
		if ev == nil || ev.Analysis == nil {
			continue
		}
		if bestIdx < 0 || ev.Analysis.TotalTime < bestTime {
			bestIdx, bestTime = i, ev.Analysis.TotalTime
		}
	}

	rp, err := shard.NewRoundPlanner(spec, explore.AdaptiveOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	evaluated := 0
	for round := 1; ; round++ {
		if round > len(variants) {
			t.Fatal("round planner did not terminate")
		}
		job, ok := rp.NextRound()
		if !ok {
			break
		}
		evaluated += len(job.Indices)

		coord, client, jobID := serveJob(t, job,
			shard.Config{JobID: fmt.Sprintf("j-round-%d", round), Lease: 30 * time.Second})
		w := &shard.Worker{
			Client: client, JobID: jobID, ID: "w-adaptive", DataDir: t.TempDir(),
			Poll: 10 * time.Millisecond,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if _, err := w.Run(ctx); err != nil {
			cancel()
			t.Fatalf("round %d worker: %v", round, err)
		}
		cancel()
		if !coord.Done() {
			t.Fatalf("round %d job not done", round)
		}
		results := coord.VariantResults()
		if len(results) != len(job.Indices) {
			t.Fatalf("round %d merged %d of %d variants", round, len(results), len(job.Indices))
		}
		if err := rp.Observe(job, results, coord.Failures()); err != nil {
			t.Fatal(err)
		}
		tr := rp.EndRound()
		if tr.Round != round || tr.Evals != len(job.Indices) {
			t.Fatalf("round trace %+v does not match round %d (%d evals)", tr, round, len(job.Indices))
		}
	}

	idx, y, ok := rp.Incumbent()
	if !ok {
		t.Fatal("no incumbent after coordinated rounds")
	}
	if idx != bestIdx {
		t.Errorf("distributed adaptive incumbent %d, exhaustive optimum %d", idx, bestIdx)
	}
	if y != bestTime {
		t.Errorf("incumbent objective %v not float-exact against exhaustive %v", y, bestTime)
	}
	if rp.Evals() != evaluated {
		t.Errorf("planner spend %d != %d variants shipped through rounds", rp.Evals(), evaluated)
	}
	if evaluated >= len(variants) {
		t.Errorf("adaptive rounds evaluated the whole grid (%d of %d)", evaluated, len(variants))
	}
	if !rp.Converged() {
		t.Error("search did not converge on patience")
	}
	if len(rp.Traces()) == 0 {
		t.Error("no round traces recorded")
	}

	// The planner refuses a spec that is already a subset.
	bad := spec
	bad.Indices = []int{1, 2}
	if _, err := shard.NewRoundPlanner(bad, explore.AdaptiveOptions{}); err == nil {
		t.Error("round planner accepted an index-subset spec")
	}
}
