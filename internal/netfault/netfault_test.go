package netfault

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// echoServer counts deliveries per verb and echoes a JSON body.
func echoServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"path": r.URL.Path, "len": len(body), "ok": true,
		})
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func post(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(`{"worker":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	srv, hits := echoServer(t)
	ft := New(nil, Plan{DropRequestAt: 2})
	client := &http.Client{Transport: ft}

	if resp, err := post(t, client, srv.URL+"/v1/shards/j/lease"); err != nil {
		t.Fatalf("request 1: %v", err)
	} else {
		resp.Body.Close()
	}
	_, err := post(t, client, srv.URL+"/v1/shards/j/lease")
	if err == nil {
		t.Fatal("request 2 should have been dropped")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("dropped request error %v should wrap ErrInjected and ECONNRESET", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d deliveries, want 1 (the drop must precede delivery)", got)
	}
	st := ft.Stats()
	if st.Requests != 2 || st.Dropped != 1 || st.Injected() != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestDropResponseDeliversFirst(t *testing.T) {
	srv, hits := echoServer(t)
	ft := New(nil, Plan{DropResponseAt: 1})
	client := &http.Client{Transport: ft}

	if _, err := post(t, client, srv.URL+"/v1/shards/j/complete"); err == nil {
		t.Fatal("response should have been dropped")
	}
	// The defining property: the server DID process the request.
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d deliveries, want 1 (drop-response happens after delivery)", got)
	}
	if st := ft.Stats(); st.LostResps != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	srv, hits := echoServer(t)
	ft := New(nil, Plan{DuplicateAt: 1})
	client := &http.Client{Transport: ft}

	resp, err := post(t, client, srv.URL+"/v1/shards/j/complete")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Len int  `json:"len"`
		OK  bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.Len == 0 {
		t.Errorf("duplicate's surviving response %+v lost the request body", out)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d deliveries, want 2", got)
	}
	if st := ft.Stats(); st.Duplicated != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestTruncateCutsBody(t *testing.T) {
	srv, _ := echoServer(t)
	ft := New(nil, Plan{TruncateAt: 1})
	client := &http.Client{Transport: ft}

	resp, err := post(t, client, srv.URL+"/v1/shards/j")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading truncated body: %v", err)
	}
	var v map[string]any
	if json.Unmarshal(buf.Bytes(), &v) == nil {
		t.Errorf("truncated body %q still parses — nothing was cut", buf.String())
	}
	if st := ft.Stats(); st.Truncated != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestInjected500WithoutDelivery(t *testing.T) {
	srv, hits := echoServer(t)
	ft := New(nil, Plan{Status500At: 1})
	client := &http.Client{Transport: ft}

	resp, err := post(t, client, srv.URL+"/v1/shards/j/lease")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	if got := hits.Load(); got != 0 {
		t.Errorf("server saw %d deliveries, want 0 (the 500 is synthetic)", got)
	}
}

func TestDelayStalls(t *testing.T) {
	srv, _ := echoServer(t)
	ft := New(nil, Plan{DelayAt: 1, Delay: 50 * time.Millisecond})
	client := &http.Client{Transport: ft}

	start := time.Now()
	resp, err := post(t, client, srv.URL+"/v1/shards/j/heartbeat")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("request returned in %v, delay never applied", elapsed)
	}
	if st := ft.Stats(); st.Delayed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestVerbFilterScopesOrdinals(t *testing.T) {
	srv, hits := echoServer(t)
	ft := New(nil, Plan{Verb: "complete", DropRequestAt: 1})
	client := &http.Client{Transport: ft}

	// Non-matching verbs pass through and do not consume the ordinal.
	for i := 0; i < 3; i++ {
		resp, err := post(t, client, srv.URL+"/v1/shards/j/lease")
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		resp.Body.Close()
	}
	if _, err := post(t, client, srv.URL+"/v1/shards/j/complete"); err == nil {
		t.Fatal("first complete should have been dropped")
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d deliveries, want 3", got)
	}
	if st := ft.Stats(); st.Requests != 1 || st.Dropped != 1 {
		t.Errorf("stats %+v count non-matching verbs", st)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	srv, hits := echoServer(t)
	ft := New(nil, Plan{})
	client := &http.Client{Transport: ft}

	ft.Partition()
	if _, err := post(t, client, srv.URL+"/v1/shards/j/heartbeat"); !errors.Is(err, ErrPartitioned) && !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned request error %v should wrap ErrInjected", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d deliveries through a partition", got)
	}
	ft.Heal()
	resp, err := post(t, client, srv.URL+"/v1/shards/j/heartbeat")
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	resp.Body.Close()
	if st := ft.Stats(); st.Dropped != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestOneFaultPerRequest(t *testing.T) {
	srv, hits := echoServer(t)
	// Ordinal 1 matches both DropRequestAt and Status500At; drop wins and
	// the 500 never fires.
	ft := New(nil, Plan{DropRequestAt: 1, Status500At: 1})
	client := &http.Client{Transport: ft}
	if _, err := post(t, client, srv.URL+"/v1/shards/j/lease"); err == nil {
		t.Fatal("request should have been dropped")
	}
	resp, err := post(t, client, srv.URL+"/v1/shards/j/lease")
	if err != nil {
		t.Fatalf("request 2: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("request 2 status %d, want 200", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d deliveries, want 1", got)
	}
	if st := ft.Stats(); st.Injected() != 1 {
		t.Errorf("stats %+v, want exactly one injection", st)
	}
}
