// Package netfault is the network counterpart of internal/iofault: a
// scriptable http.RoundTripper seam that injects the faults a real
// network produces — dropped requests, dropped responses, duplicated
// deliveries, truncated bodies, server errors, latency, and full
// partitions — at exact, deterministic points.
//
// The seam sits between the shard worker's Client and the wire, so a
// test drives the real client/coordinator protocol under fire without a
// flaky network or sleeps. Faults follow the iofault idiom: a Plan names
// the Nth matching request (1-based, counted per Faulty instance), the
// injected errors wrap ErrInjected plus the realistic syscall cause
// (connection reset), and Stats reports what actually fired so tests can
// assert the fault path ran.
//
// The fault vocabulary is chosen to exercise distinct protocol
// obligations:
//
//   - DropRequestAt: the server never sees the request — pure retry.
//   - DropResponseAt: the server processed the request but the client
//     never learns it — the retry arrives as a DUPLICATE delivery, the
//     case that forces idempotent RPCs and epoch fencing.
//   - DuplicateAt: the request is delivered twice back to back —
//     reordered/duplicated delivery without a client-visible error.
//   - TruncateAt: the response body is cut mid-frame — the client must
//     treat a short read as a transient failure, never as data.
//   - Status500At: a synthetic 500 without delivery — transient by
//     classification.
//   - DelayAt/Delay: added latency, for deadline-derivation tests.
//
// Partition()/Heal() toggle a full partition at runtime, independent of
// the counted plan — the shape of a worker that falls off the network
// mid-lease and comes back after its shard was stolen.
package netfault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path"
	"sync"
	"syscall"
	"time"
)

// ErrInjected marks every fault this package produces. Injected errors
// also wrap the realistic cause (syscall.ECONNRESET), so code that
// classifies by cause sees what a real network would show.
var ErrInjected = errors.New("netfault: injected fault")

// ErrPartitioned marks a request refused because the transport is
// currently partitioned (Partition was called and Heal was not).
var ErrPartitioned = fmt.Errorf("%w: partitioned", ErrInjected)

// Plan scripts which requests fault. Counters are 1-based ordinals over
// the requests matching Verb, counted per Faulty instance; zero means
// "never". One request triggers at most one fault (checked in the order
// the fields are declared), so a plan can script different faults at
// different ordinals without interference.
type Plan struct {
	// Verb restricts the plan to requests whose URL path ends in this
	// segment ("lease", "complete", ...). Empty matches every request.
	Verb string

	// DropRequestAt resets the connection before the Nth matching
	// request reaches the server.
	DropRequestAt int
	// DropResponseAt delivers the Nth matching request — the server
	// processes it — then drops the response on the floor, so the
	// client sees a reset and retries a request the server already
	// handled.
	DropResponseAt int
	// DuplicateAt delivers the Nth matching request twice; the first
	// response is discarded and the second returned.
	DuplicateAt int
	// TruncateAt truncates the Nth matching response body halfway.
	TruncateAt int
	// Status500At replaces the Nth matching request with a synthetic
	// 500 response; the server never sees the request.
	Status500At int
	// DelayAt stalls the Nth matching request by Delay before
	// delivering it normally.
	DelayAt int
	Delay   time.Duration
}

// Stats counts what the transport did. Requests counts matching
// requests (the ordinal space of the plan); the fault counters count
// injections that actually fired.
type Stats struct {
	Requests    int
	Dropped     int // requests refused before delivery (DropRequestAt + partition)
	LostResps   int // responses dropped after delivery (DropResponseAt)
	Duplicated  int
	Truncated   int
	Injected500 int
	Delayed     int
}

// Injected reports the total number of faults that fired.
func (s Stats) Injected() int {
	return s.Dropped + s.LostResps + s.Duplicated + s.Truncated + s.Injected500 + s.Delayed
}

// Faulty is a RoundTripper that injects the plan's faults in front of a
// base transport. Safe for concurrent use; the fault decision is made
// under a lock, the network call itself outside it.
type Faulty struct {
	base http.RoundTripper

	mu          sync.Mutex
	plan        Plan
	st          Stats
	partitioned bool
}

// New wraps base (nil selects http.DefaultTransport) with the plan.
func New(base http.RoundTripper, plan Plan) *Faulty {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Faulty{base: base, plan: plan}
}

// Stats snapshots the injection counters.
func (f *Faulty) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Partition makes every subsequent request fail with ErrPartitioned
// until Heal. Partitioned requests do not consume plan ordinals.
func (f *Faulty) Partition() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = true
}

// Heal ends a partition.
func (f *Faulty) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = false
}

// fault is the decision for one request.
type fault int

const (
	faultNone fault = iota
	faultDropRequest
	faultDropResponse
	faultDuplicate
	faultTruncate
	fault500
	faultDelay
)

// decide classifies one request under the lock and bumps the counters
// for faults whose effect is decided here.
func (f *Faulty) decide(req *http.Request) fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitioned {
		f.st.Dropped++
		return faultDropRequest
	}
	if f.plan.Verb != "" && path.Base(req.URL.Path) != f.plan.Verb {
		return faultNone
	}
	f.st.Requests++
	n := f.st.Requests
	switch n {
	case f.plan.DropRequestAt:
		f.st.Dropped++
		return faultDropRequest
	case f.plan.DropResponseAt:
		f.st.LostResps++
		return faultDropResponse
	case f.plan.DuplicateAt:
		f.st.Duplicated++
		return faultDuplicate
	case f.plan.TruncateAt:
		f.st.Truncated++
		return faultTruncate
	case f.plan.Status500At:
		f.st.Injected500++
		return fault500
	case f.plan.DelayAt:
		f.st.Delayed++
		return faultDelay
	}
	return faultNone
}

func injected(verb string, cause error) error {
	return fmt.Errorf("%w: %s: %w", ErrInjected, verb, cause)
}

// RoundTrip applies the plan to one request.
func (f *Faulty) RoundTrip(req *http.Request) (*http.Response, error) {
	verb := path.Base(req.URL.Path)
	switch f.decide(req) {
	case faultDropRequest:
		// The request never reaches the server; the connection resets.
		return nil, injected(verb, syscall.ECONNRESET)

	case faultDropResponse:
		// Deliver the request — the server's state changes — then lose
		// the response, so the client must retry something already done.
		resp, err := f.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, injected(verb, syscall.ECONNRESET)

	case faultDuplicate:
		// Deliver twice; the server sees the same request back to back.
		second, err := cloneRequest(req)
		if err != nil {
			return nil, injected(verb, err)
		}
		if resp, ferr := f.base.RoundTrip(req); ferr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return f.base.RoundTrip(second)

	case faultTruncate:
		resp, err := f.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, injected(verb, rerr)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
		resp.ContentLength = int64(len(body) / 2)
		return resp, nil

	case fault500:
		// A synthetic 500 without delivery: the transient-server-error
		// shape, injected deterministically.
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(bytes.NewReader([]byte(`{"error":"netfault: injected server error"}`))),
			Request: req,
		}, nil

	case faultDelay:
		f.mu.Lock()
		d := f.plan.Delay
		f.mu.Unlock()
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-t.C:
		}
	}
	return f.base.RoundTrip(req)
}

// cloneRequest rebuilds a request whose body can be sent again (the
// first delivery consumed the original body).
func cloneRequest(req *http.Request) (*http.Request, error) {
	out := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return out, nil
	}
	if req.GetBody == nil {
		return nil, errors.New("request body is not replayable")
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	out.Body = body
	return out, nil
}
