package report

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "demo", Header: []string{"name", "value", "note"}}
	t.AddRow("alpha", 1.5, "plain")
	t.AddRow("beta", 42, "with, comma")
	t.AddRow("gamma", "x", `quote " inside`)
	return t
}

func TestTableString(t *testing.T) {
	s := sampleTable().String()
	for _, want := range []string{"== demo ==", "name", "alpha", "1.5", "42", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	// Columns align: every data line at least as wide as the header line's
	// first column.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 3 rows -> 6? title+header+sep+3 = 6
		// title + header + separator + 3 rows
		if len(lines) != 6 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
}

func TestTableCSVEscaping(t *testing.T) {
	csv := sampleTable().CSV()
	if !strings.Contains(csv, `"with, comma"`) {
		t.Errorf("comma cell not quoted:\n%s", csv)
	}
	if !strings.Contains(csv, `"quote "" inside"`) {
		t.Errorf("quote cell not escaped:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "name,value,note\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 4 {
		t.Errorf("csv line count = %d", got)
	}
}

func TestAddRowFormats(t *testing.T) {
	tab := &Table{Header: []string{"a"}}
	tab.AddRow(3.14159)
	tab.AddRow(7)
	tab.AddRow("s")
	tab.AddRow(true)
	if tab.Rows[0][0] != "3.142" {
		t.Errorf("float cell = %q", tab.Rows[0][0])
	}
	if tab.Rows[1][0] != "7" || tab.Rows[2][0] != "s" || tab.Rows[3][0] != "true" {
		t.Errorf("rows = %v", tab.Rows)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("curve", "x", "a", "b")
	s.Add(1, 0.5, 0.25)
	s.Add(2, 1.0) // missing b defaults to 0
	out := s.String()
	for _, want := range []string{"curve", "x", "a", "b", "0.5000", "0.2500", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("series missing %q:\n%s", want, out)
		}
	}
	if len(s.Y[1]) != 2 || s.Y[1][1] != 0 {
		t.Errorf("missing y not defaulted: %v", s.Y)
	}
}

func TestSeriesBars(t *testing.T) {
	s := NewSeries("bars", "k", "v")
	s.Add(1, 2)
	s.Add(2, 4)
	out := s.Bars(0)
	if !strings.Contains(out, "####") {
		t.Errorf("bars missing marks:\n%s", out)
	}
	if s.Bars(5) != "" || s.Bars(-1) != "" {
		t.Error("out-of-range column should render empty")
	}
	// All-zero column renders without panic.
	z := NewSeries("z", "k", "v")
	z.Add(1, 0)
	if !strings.Contains(z.Bars(0), "0.0000") {
		t.Error("zero bars broken")
	}
}

func TestEmptyTable(t *testing.T) {
	tab := &Table{Header: []string{"only"}}
	if !strings.Contains(tab.String(), "only") {
		t.Error("empty table should render header")
	}
	if !strings.HasPrefix(tab.CSV(), "only\n") {
		t.Error("empty table CSV broken")
	}
}
