// Package report renders the evaluation artifacts — tables and figure data
// series — as aligned text and CSV, for the benchmark harness and the
// command-line tools.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is figure data: one x column and one or more named y columns —
// the text form of the paper's line charts.
type Series struct {
	Title  string
	XLabel string
	Names  []string
	X      []float64
	Y      [][]float64 // Y[i] is the i-th named column, len == len(X)
}

// NewSeries allocates a series with the given y-column names.
func NewSeries(title, xlabel string, names ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, Names: names, Y: make([][]float64, len(names))}
}

// Add appends one x point with its y values (one per named column).
func (s *Series) Add(x float64, ys ...float64) {
	s.X = append(s.X, x)
	for i := range s.Names {
		v := 0.0
		if i < len(ys) {
			v = ys[i]
		}
		s.Y[i] = append(s.Y[i], v)
	}
}

// String renders the series as an aligned column listing.
func (s *Series) String() string {
	t := &Table{Title: s.Title, Header: append([]string{s.XLabel}, s.Names...)}
	for i, x := range s.X {
		cells := make([]any, 0, 1+len(s.Names))
		cells = append(cells, fmt.Sprintf("%g", x))
		for j := range s.Names {
			cells = append(cells, fmt.Sprintf("%.4f", s.Y[j][i]))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Bars renders a simple horizontal bar view of one y column (scaled to
// width 40), useful for quick visual inspection in terminals.
func (s *Series) Bars(col int) string {
	if col < 0 || col >= len(s.Names) {
		return ""
	}
	maxV := 0.0
	for _, v := range s.Y[col] {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s (%s) --\n", s.Title, s.Names[col])
	for i, x := range s.X {
		n := 0
		if maxV > 0 {
			n = int(s.Y[col][i] / maxV * 40)
		}
		fmt.Fprintf(&b, "%6g |%s %.4f\n", x, strings.Repeat("#", n), s.Y[col][i])
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
