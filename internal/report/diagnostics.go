package report

import (
	"fmt"
	"strings"

	"skope/internal/guard"
)

// Diagnostics renders a diagnostic list as an aligned table (severity,
// stage, code, block, message), sorted the way guard.SortDiagnostics
// leaves it. An empty list renders as the empty string, so callers can
// print the result unconditionally.
func Diagnostics(title string, ds []guard.Diagnostic) string {
	if len(ds) == 0 {
		return ""
	}
	t := &Table{Title: title, Header: []string{"SEV", "STAGE", "CODE", "BLOCK", "MESSAGE"}}
	for _, d := range ds {
		t.AddRow(d.Severity.String(), d.Stage, d.Code, d.BlockID, d.Message)
	}
	return t.String()
}

// Confidence renders a one-line confidence summary for CLI footers:
// the score, a qualitative bucket, and the diagnostic count.
func Confidence(score float64, ds []guard.Diagnostic) string {
	bucket := "full"
	switch {
	case score >= 1:
		bucket = "full"
	case score >= 0.9:
		bucket = "high"
	case score >= 0.5:
		bucket = "partial"
	default:
		bucket = "low"
	}
	errs, warns := 0, 0
	for _, d := range ds {
		if d.Severity == guard.SevError {
			errs++
		} else {
			warns++
		}
	}
	s := fmt.Sprintf("confidence %.4g (%s)", score, bucket)
	var parts []string
	if errs > 0 {
		parts = append(parts, fmt.Sprintf("%d error(s)", errs))
	}
	if warns > 0 {
		parts = append(parts, fmt.Sprintf("%d warning(s)", warns))
	}
	if len(parts) > 0 {
		s += ": " + strings.Join(parts, ", ")
	}
	return s
}
