package resilience

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrOpen marks work refused because its failure class tripped the
// circuit breaker: the class failed deterministically often enough that
// further retries would only burn the sweep's time budget.
var ErrOpen = errors.New("circuit open")

// Breaker is a per-class circuit breaker. A class is any string the
// caller uses to bucket failures that share a deterministic cause — the
// explore engine uses the failure kind (validation, panic, timeout, ...),
// so a grid full of variants that all die the same way stops burning its
// retry budget after the first few.
//
// Semantics are deliberately simple: Failure(class) increments the
// class's counter; once it reaches Threshold the class is open and
// Allow(class) reports false for the rest of the breaker's lifetime.
// Success(class) before the trip resets the counter (failures must be
// consecutive to prove determinism). There is no half-open probe state: a
// sweep is a finite batch, not a service — if a class opened, the
// operator reruns with -resume after fixing the cause.
type Breaker struct {
	// Threshold is the number of consecutive failures per class that
	// opens the circuit. Values < 1 mean the default of 3.
	Threshold int

	mu    sync.Mutex
	fails map[string]int
	open  map[string]bool
}

// NewBreaker returns a breaker that opens a class after threshold
// consecutive failures (threshold < 1 selects the default of 3).
func NewBreaker(threshold int) *Breaker {
	return &Breaker{Threshold: threshold}
}

func (b *Breaker) threshold() int {
	if b.Threshold < 1 {
		return 3
	}
	return b.Threshold
}

// Allow reports whether work of the given class should still be
// attempted (or retried). A nil breaker allows everything.
func (b *Breaker) Allow(class string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open[class]
}

// Failure records one failure of the class and reports whether this
// failure tripped the circuit open.
func (b *Breaker) Failure(class string) (opened bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open[class] {
		return false
	}
	if b.fails == nil {
		b.fails = make(map[string]int)
	}
	b.fails[class]++
	if b.fails[class] >= b.threshold() {
		if b.open == nil {
			b.open = make(map[string]bool)
		}
		b.open[class] = true
		return true
	}
	return false
}

// Success records one success of the class, resetting its consecutive
// failure counter (an already-open class stays open).
func (b *Breaker) Success(class string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.fails, class)
}

// Open returns the currently open classes, sorted.
func (b *Breaker) Open() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.open))
	for c := range b.open {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// OpenError returns an error wrapping ErrOpen for the given class,
// suitable for attaching to refused work.
func OpenError(class string) error {
	return fmt.Errorf("failure class %q: %w", class, ErrOpen)
}
