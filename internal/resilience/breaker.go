package resilience

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrOpen marks work refused because its failure class tripped the
// circuit breaker: the class failed deterministically often enough that
// further retries would only burn the sweep's time budget.
var ErrOpen = errors.New("circuit open")

// Breaker is a per-class circuit breaker. A class is any string the
// caller uses to bucket failures that share a deterministic cause — the
// explore engine uses the failure kind (validation, panic, timeout, ...),
// so a grid full of variants that all die the same way stops burning its
// retry budget after the first few.
//
// Semantics: Failure(class) increments the class's counter; once it
// reaches Threshold the class is open and Allow(class) reports false.
// Success(class) before the trip resets the counter (failures must be
// consecutive to prove determinism).
//
// Without a Cooldown an opened class stays open for the breaker's
// lifetime — the right call for a finite batch sweep, where an open class
// means a deterministic fault the operator fixes before rerunning. With a
// Cooldown the breaker serves long-lived callers (the shard coordinator
// quarantining workers): once the cooldown has elapsed after the trip,
// Allow grants exactly one half-open probe for the class; Success on the
// probe closes the circuit, Failure re-opens it and restarts the cooldown.
type Breaker struct {
	// Threshold is the number of consecutive failures per class that
	// opens the circuit. Values < 1 mean the default of 3.
	Threshold int
	// Cooldown is how long an open class stays hard-open before one
	// half-open probe is allowed. Zero (the default) disables probing:
	// an open class stays open forever.
	Cooldown time.Duration

	// Clock is the breaker's time source (nil means time.Now). Callers
	// that already run under an injected clock — the shard coordinator,
	// tests — set it so cooldowns observe the same time as everything
	// else.
	Clock func() time.Time

	mu      sync.Mutex
	fails   map[string]int
	open    map[string]bool
	opened  map[string]time.Time // when the class (re-)tripped
	probing map[string]bool      // a half-open probe is in flight
}

// NewBreaker returns a breaker that opens a class after threshold
// consecutive failures (threshold < 1 selects the default of 3) and, once
// open, keeps it open for the breaker's lifetime.
func NewBreaker(threshold int) *Breaker {
	return &Breaker{Threshold: threshold}
}

// NewProbingBreaker returns a breaker with half-open recovery: an open
// class allows one probe after cooldown; the probe's Success closes the
// circuit, its Failure re-opens it for another cooldown.
func NewProbingBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown}
}

func (b *Breaker) clock() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold < 1 {
		return 3
	}
	return b.Threshold
}

// Allow reports whether work of the given class should still be
// attempted (or retried). A nil breaker allows everything. With a
// Cooldown configured, the first Allow after an open class's cooldown
// elapses returns true exactly once — the half-open probe — and further
// calls stay false until that probe reports Success or Failure.
func (b *Breaker) Allow(class string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open[class] {
		return true
	}
	if b.Cooldown <= 0 || b.probing[class] {
		return false
	}
	if b.clock().Sub(b.opened[class]) < b.Cooldown {
		return false
	}
	if b.probing == nil {
		b.probing = make(map[string]bool)
	}
	b.probing[class] = true
	return true
}

// Failure records one failure of the class and reports whether this
// failure tripped the circuit open. A failed half-open probe re-opens
// the class and restarts its cooldown.
func (b *Breaker) Failure(class string) (opened bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open[class] {
		if b.probing[class] {
			// The probe failed: back to hard-open for another cooldown.
			delete(b.probing, class)
			b.opened[class] = b.clock()
		}
		return false
	}
	if b.fails == nil {
		b.fails = make(map[string]int)
	}
	b.fails[class]++
	if b.fails[class] >= b.threshold() {
		if b.open == nil {
			b.open = make(map[string]bool)
		}
		b.open[class] = true
		if b.opened == nil {
			b.opened = make(map[string]time.Time)
		}
		b.opened[class] = b.clock()
		return true
	}
	return false
}

// Success records one success of the class, resetting its consecutive
// failure counter. A successful half-open probe closes the circuit; an
// open class with no probe in flight stays open (the success belongs to
// work admitted before the trip).
func (b *Breaker) Success(class string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.fails, class)
	if b.probing[class] {
		delete(b.probing, class)
		delete(b.open, class)
		delete(b.opened, class)
	}
}

// Open returns the currently open classes, sorted.
func (b *Breaker) Open() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.open))
	for c := range b.open {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// OpenError returns an error wrapping ErrOpen for the given class,
// suitable for attaching to refused work.
func OpenError(class string) error {
	return fmt.Errorf("failure class %q: %w", class, ErrOpen)
}
