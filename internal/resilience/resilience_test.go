package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"skope/internal/guard"
	"skope/internal/resilience"
)

// noSleep is the test hook that records requested backoffs instead of
// actually waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestDoSucceedsWithinBudget(t *testing.T) {
	var delays []time.Duration
	p := resilience.Policy{MaxAttempts: 4, Sleep: noSleep(&delays)}
	calls := 0
	attempts, err := p.Do(context.Background(), func(n int) error {
		calls++
		if n != calls {
			t.Errorf("attempt number %d, want %d", n, calls)
		}
		if n < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("Do = (%d, %v), calls %d; want (3, nil, 3)", attempts, err, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	var delays []time.Duration
	p := resilience.Policy{MaxAttempts: 3, Sleep: noSleep(&delays)}
	boom := errors.New("still broken")
	attempts, err := p.Do(context.Background(), func(int) error { return boom })
	if !errors.Is(err, boom) || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want (3, boom)", attempts, err)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestDoZeroPolicyMeansSingleAttempt(t *testing.T) {
	var p resilience.Policy
	calls := 0
	attempts, err := p.Do(context.Background(), func(int) error { calls++; return errors.New("x") })
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("zero policy: %d attempts, %d calls, err %v", attempts, calls, err)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := resilience.Policy{MaxAttempts: 5, Sleep: noSleep(new([]time.Duration))}
	calls := 0
	cause := errors.New("bad machine")
	_, err := p.Do(context.Background(), func(int) error {
		calls++
		return fmt.Errorf("wrapped: %w", resilience.Permanent(cause))
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, cause) || !resilience.IsPermanent(err) {
		t.Errorf("cause lost through Permanent: %v", err)
	}
}

func TestDoStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := resilience.Policy{MaxAttempts: 5}
	calls := 0
	attempts, err := p.Do(ctx, func(int) error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if calls != 1 || attempts != 1 {
		t.Errorf("canceled Do kept going: %d calls", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("anything"), true},
		{fmt.Errorf("recovered: %w", guard.ErrPanic), true},
		{context.Canceled, false},
		{fmt.Errorf("sweep: %w", context.Canceled), false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("variant: %w", resilience.ErrAttemptTimeout), true},
		{resilience.Permanent(errors.New("validation")), false},
		{fmt.Errorf("wrap: %w", resilience.Permanent(errors.New("validation"))), false},
		{guard.ErrLimit, false},
		{fmt.Errorf("bet: %w", guard.ErrLimit), false},
		{&guard.LimitError{What: "BET nodes", Value: 11, Max: 10}, false},
		{fmt.Errorf("variant: %w", &guard.LimitError{What: "contexts", Value: 3, Max: 2}), false},
	}
	for _, c := range cases {
		if got := resilience.Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := resilience.Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: -1} // Jitter<0 clamps to none: deterministic
	wants := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, want := range wants {
		if got := p.Backoff(i + 1); got != want*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
}

func TestBackoffJitterStaysInBand(t *testing.T) {
	p := resilience.Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.2}
	for i := 0; i < 200; i++ {
		d := p.Backoff(1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered Backoff(1) = %v outside ±20%% band", d)
		}
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := resilience.NewBreaker(3)
	for i := 0; i < 2; i++ {
		if opened := b.Failure("panic"); opened {
			t.Fatalf("breaker opened after %d failures", i+1)
		}
		if !b.Allow("panic") {
			t.Fatalf("breaker closed after %d failures", i+1)
		}
	}
	if opened := b.Failure("panic"); !opened {
		t.Fatal("third failure did not open the circuit")
	}
	if b.Allow("panic") {
		t.Error("open circuit still allows")
	}
	if b.Allow("timeout") {
		// Different class is unaffected.
	} else {
		t.Error("unrelated class tripped")
	}
	if got := b.Open(); len(got) != 1 || got[0] != "panic" {
		t.Errorf("Open() = %v", got)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := resilience.NewBreaker(2)
	b.Failure("flaky")
	b.Success("flaky")
	if opened := b.Failure("flaky"); opened {
		t.Error("non-consecutive failures opened the circuit")
	}
	if !b.Allow("flaky") {
		t.Error("circuit open after interleaved success")
	}
}

func TestBreakerNilIsNoOp(t *testing.T) {
	var b *resilience.Breaker
	if !b.Allow("x") {
		t.Error("nil breaker denied")
	}
	if b.Failure("x") {
		t.Error("nil breaker opened")
	}
	b.Success("x")
	if b.Open() != nil {
		t.Error("nil breaker has open classes")
	}
}

func TestOpenError(t *testing.T) {
	err := resilience.OpenError("validate")
	if !errors.Is(err, resilience.ErrOpen) {
		t.Errorf("OpenError not Is(ErrOpen): %v", err)
	}
}

func TestDefaultPolicyRetries(t *testing.T) {
	if got := resilience.DefaultPolicy(4).Retries(); got != 4 {
		t.Errorf("DefaultPolicy(4).Retries() = %d", got)
	}
	if got := (resilience.Policy{}).Retries(); got != 0 {
		t.Errorf("zero policy Retries() = %d", got)
	}
}
