package resilience

// Half-open probe recovery tests. These live in the internal test package
// so they can pin the breaker's clock; the black-box breaker behavior is
// covered in resilience_test.go.

import (
	"testing"
	"time"
)

// tickClock returns a breaker clock the test advances by hand.
func tickClock(b *Breaker) *time.Time {
	now := time.Unix(1000, 0)
	b.Clock = func() time.Time { return now }
	return &now
}

func trip(t *testing.T, b *Breaker, class string) {
	t.Helper()
	for i := 0; i < b.threshold(); i++ {
		b.Failure(class)
	}
	if b.Allow(class) {
		t.Fatalf("class %q not open after %d failures", class, b.threshold())
	}
}

func TestBreakerNoCooldownStaysOpen(t *testing.T) {
	b := NewBreaker(2)
	now := tickClock(b)
	trip(t, b, "timeout")
	*now = now.Add(time.Hour)
	if b.Allow("timeout") {
		t.Error("breaker without cooldown granted a probe")
	}
}

func TestBreakerProbeAfterCooldown(t *testing.T) {
	b := NewProbingBreaker(2, time.Minute)
	now := tickClock(b)
	trip(t, b, "timeout")

	// Hard-open until the cooldown elapses.
	*now = now.Add(30 * time.Second)
	if b.Allow("timeout") {
		t.Fatal("probe granted before cooldown elapsed")
	}
	*now = now.Add(31 * time.Second)
	if !b.Allow("timeout") {
		t.Fatal("no probe after cooldown elapsed")
	}
	// Exactly one probe: further requests are refused while it runs.
	if b.Allow("timeout") {
		t.Fatal("second probe granted while first in flight")
	}

	// The probe succeeds: circuit closed, traffic flows again.
	b.Success("timeout")
	if !b.Allow("timeout") {
		t.Error("circuit still open after successful probe")
	}
	if got := b.Open(); len(got) != 0 {
		t.Errorf("Open() = %v after recovery, want empty", got)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewProbingBreaker(2, time.Minute)
	now := tickClock(b)
	trip(t, b, "panic")

	*now = now.Add(2 * time.Minute)
	if !b.Allow("panic") {
		t.Fatal("no probe after cooldown")
	}
	b.Failure("panic")
	// Re-opened: the cooldown restarts from the failed probe.
	if b.Allow("panic") {
		t.Fatal("circuit admits work right after a failed probe")
	}
	*now = now.Add(59 * time.Second)
	if b.Allow("panic") {
		t.Fatal("probe granted before the restarted cooldown elapsed")
	}
	*now = now.Add(2 * time.Second)
	if !b.Allow("panic") {
		t.Fatal("no second probe after the restarted cooldown")
	}
	b.Success("panic")
	if !b.Allow("panic") {
		t.Error("circuit still open after eventual recovery")
	}
}

func TestBreakerSuccessWithoutProbeKeepsOpen(t *testing.T) {
	b := NewProbingBreaker(2, time.Minute)
	tickClock(b)
	trip(t, b, "model")
	// A straggler success from work admitted before the trip must not
	// close the circuit — only a granted probe's success may.
	b.Success("model")
	if b.Allow("model") {
		t.Error("non-probe success closed an open circuit")
	}
}

func TestBreakerClassesProbeIndependently(t *testing.T) {
	b := NewProbingBreaker(1, time.Minute)
	now := tickClock(b)
	trip(t, b, "a")
	*now = now.Add(30 * time.Second)
	trip(t, b, "b")

	*now = now.Add(31 * time.Second) // a's cooldown elapsed, b's has not
	if !b.Allow("a") {
		t.Error("class a: no probe after its cooldown")
	}
	if b.Allow("b") {
		t.Error("class b: probe granted before its cooldown")
	}
	b.Success("a")
	if !b.Allow("a") || b.Allow("b") {
		t.Error("class recovery leaked across classes")
	}
}
