// Package resilience supplies the failure-handling primitives long-running
// explorations need: a retry policy with exponential backoff and jitter, a
// transient/permanent error classification, and a circuit breaker that
// stops re-attempting a failure class once it has proven deterministic.
//
// The package is deliberately mechanism-only: it does not know about
// machines, sweeps, or journals. Package explore composes these primitives
// around its per-variant evaluation, and pipeline.EvaluateMany around its
// per-machine evaluation.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"skope/internal/guard"
)

// ErrAttemptTimeout marks an attempt that exceeded its per-attempt
// deadline (e.g. the explore engine's VariantTimeout). Unlike the parent
// context's deadline, an attempt timeout is transient by default: a
// variant that timed out under load may well finish on retry.
var ErrAttemptTimeout = errors.New("attempt deadline exceeded")

// permanentError marks an error the default classifier must never retry:
// the caller has determined the failure is deterministic (a validation
// rejection, a malformed input) and re-running the exact same computation
// cannot change the outcome.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so IsPermanent reports true and the default
// classifier refuses to retry it. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (anywhere on its chain) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Retryable is the default transient/permanent classification:
//
//   - errors marked with Permanent are never retried;
//   - context.Canceled is never retried — cancellation is a caller
//     decision, not a fault;
//   - context.DeadlineExceeded is retried only when it is an attempt-level
//     timeout (ErrAttemptTimeout on the chain), never when the sweep-level
//     context expired;
//   - guard.ErrLimit is never retried — a resource-limit rejection is a
//     deterministic property of the input and the configured limits, so
//     re-running the identical computation burns the retry budget for
//     nothing;
//   - everything else (recovered panics, I/O hiccups, injected faults) is
//     presumed transient and retried.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case IsPermanent(err):
		return false
	case errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, ErrAttemptTimeout):
		return true
	case errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, guard.ErrLimit):
		return false
	}
	return true
}

// Policy is a retry policy: up to MaxAttempts attempts with exponential
// backoff and jitter between them. The zero value retries nothing (one
// attempt, no delay); DefaultPolicy returns sensible defaults.
type Policy struct {
	// MaxAttempts is the total attempt budget including the first try.
	// Values < 1 mean one attempt (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms when
	// retries are enabled and no value is set).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2,
	// clamped to [0,1]) so synchronized workers do not retry in lockstep.
	Jitter float64
	// Classify overrides the transient/permanent decision (default
	// Retryable).
	Classify func(error) bool
	// Sleep overrides the inter-attempt wait — a test hook. It must honor
	// ctx. The default waits d or returns early with ctx's error.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy returns the policy cmd/skope uses for -retries n: n+1
// total attempts, 5ms base delay doubling up to 2s, 20% jitter.
func DefaultPolicy(retries int) Policy {
	return Policy{MaxAttempts: retries + 1}
}

// Retries returns the number of retries the policy allows beyond the
// first attempt (never negative).
func (p Policy) Retries() int {
	if p.MaxAttempts <= 1 {
		return 0
	}
	return p.MaxAttempts - 1
}

// jitterRand is the package's locked randomness for backoff jitter; retry
// scheduling does not need reproducibility, it needs decorrelation.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func jitterFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// Backoff returns the delay before retry number retry (1-based: the wait
// after the first failed attempt is Backoff(1)), jittered.
func (p Policy) Backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < retry; i++ {
		d *= mult
		if d >= float64(max) {
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	jit := p.Jitter
	if jit == 0 {
		jit = 0.2
	}
	if jit < 0 {
		jit = 0
	}
	if jit > 1 {
		jit = 1
	}
	// Scale by a factor uniform in [1-jit, 1+jit].
	d *= 1 - jit + 2*jit*jitterFloat()
	return time.Duration(d)
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p Policy) classify(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Retryable(err)
}

// Do runs attempt up to MaxAttempts times, backing off between failures.
// attempt receives the 1-based attempt number. Do returns the number of
// attempts made and the last error (nil on success). It stops early when
// the error classifies as permanent, when ctx is done (the context error
// joins the attempt's error so both stay visible to errors.Is), or when
// the budget is exhausted.
func (p Policy) Do(ctx context.Context, attempt func(n int) error) (attempts int, err error) {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	for n := 1; ; n++ {
		err = attempt(n)
		attempts = n
		if err == nil || n >= max || !p.classify(err) {
			return attempts, err
		}
		if serr := p.sleep(ctx, p.Backoff(n)); serr != nil {
			return attempts, fmt.Errorf("retry aborted after attempt %d: %w", n, errors.Join(serr, err))
		}
	}
}
