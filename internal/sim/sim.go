package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"skope/internal/guard"
	"skope/internal/hw"
	"skope/internal/interp"
	"skope/internal/minilang"
)

// BlockCost accumulates the simulated cost of one source block.
type BlockCost struct {
	// ID is the block identity ("<func>/L<line>" etc.), matching the
	// analytical model's block IDs for segments.
	ID string
	// Cycles is the attributed cycle count.
	Cycles float64
	// Insts counts dynamic instructions (ops + accesses + lib-expanded).
	Insts uint64
	// FP, Div, Int count dynamic arithmetic by class (Div ⊂ FP).
	FP, Div, Int uint64
	// Loads, Stores count memory accesses.
	Loads, Stores uint64
	// L1Miss and LLCMiss count cache misses attributed to the block.
	L1Miss, LLCMiss uint64
	// LibCalls counts library invocations.
	LibCalls uint64
}

// Seconds converts the block's cycles to seconds on machine m.
func (b *BlockCost) Seconds(m *hw.Machine) float64 { return m.CyclesToSeconds(b.Cycles) }

// IssueRate returns dynamic instructions per cycle — the Figure 8 metric.
func (b *BlockCost) IssueRate() float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(b.Insts) / b.Cycles
}

// InstsPerL1Miss returns dynamic instructions per L1 miss (Fig. 8's
// computation-intensity proxy); +Inf when the block never missed.
func (b *BlockCost) InstsPerL1Miss() float64 {
	if b.L1Miss == 0 {
		return float64(b.Insts) // effectively unbounded; report insts
	}
	return float64(b.Insts) / float64(b.L1Miss)
}

// Result is a completed simulation: the measured profile of one workload on
// one machine.
type Result struct {
	Machine *hw.Machine
	// Blocks is sorted by cycles, descending.
	Blocks []*BlockCost
	ByID   map[string]*BlockCost
	// TotalCycles and TotalSeconds cover the whole run.
	TotalCycles  float64
	TotalSeconds float64
	// L1, LLC expose the final cache statistics.
	L1, LLC *Cache
	// Steps is the interpreter statement count.
	Steps int64
}

// Coverage returns the fraction of total time spent in block b.
func (r *Result) Coverage(b *BlockCost) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return b.Cycles / r.TotalCycles
}

// TopN returns the first n blocks by measured time.
func (r *Result) TopN(n int) []*BlockCost {
	if n > len(r.Blocks) {
		n = len(r.Blocks)
	}
	return r.Blocks[:n]
}

// RankOf returns the 1-based measured rank of a block ID (0 if absent).
func (r *Result) RankOf(id string) int {
	for i, b := range r.Blocks {
		if b.ID == id {
			return i + 1
		}
	}
	return 0
}

// CoverageCurve returns cumulative coverage over the given blocks.
func (r *Result) CoverageCurve(blocks []*BlockCost) []float64 {
	out := make([]float64, len(blocks))
	cum := 0.0
	for i, b := range blocks {
		cum += r.Coverage(b)
		out[i] = cum
	}
	return out
}

// String summarizes the result for debugging.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim on %s: %.4g s, L1 hit %.3f, LLC hit %.3f\n",
		r.Machine.Name, r.TotalSeconds, r.L1.HitRate(), r.LLC.HitRate())
	for i, b := range r.TopN(10) {
		fmt.Fprintf(&sb, "%2d. %-28s %6.2f%%  ipc=%.2f\n", i+1, b.ID, 100*r.Coverage(b), b.IssueRate())
	}
	return sb.String()
}

// libCost is the simulated expansion of a library call: a cycle cost and a
// dynamic instruction count (both machine-scaled at table construction).
type libCost struct {
	cycles float64
	insts  uint64
}

// machine-relative library call costs, in cycles on a 1-issue baseline.
// BG/Q's in-order A2 core pays relatively more (the paper's SRAD exp/rand
// spots); the per-machine divisor is IssueWidth.
var baseLibCost = map[string]libCost{
	"exp": {70, 30}, "log": {85, 35}, "sqrt": {40, 12}, "sin": {95, 40},
	"cos": {95, 40}, "pow": {140, 55}, "rand": {28, 14}, "abs": {2, 2},
	"floor": {3, 2}, "min": {2, 2}, "max": {2, 2}, "mod": {12, 6},
}

// machineSim is the interp.Observer implementing the timing model.
type machineSim struct {
	m   *hw.Machine
	l1  *Cache
	llc *Cache

	blocks map[string]*BlockCost
	cur    *BlockCost

	// lastOutcome tracks per-site branch history for the 1-bit predictor.
	lastOutcome map[string]bool

	totalCycles float64
}

const mispredictPenalty = 12.0

func newMachineSim(m *hw.Machine) *machineSim {
	return &machineSim{
		m:           m,
		l1:          NewCache(m.L1SizeB, m.L1LineB, m.L1Assoc),
		llc:         NewCache(m.LLCSizeB, m.LLCLineB, m.LLCAssoc),
		blocks:      make(map[string]*BlockCost),
		lastOutcome: make(map[string]bool),
	}
}

func (s *machineSim) block(id string) *BlockCost {
	b := s.blocks[id]
	if b == nil {
		b = &BlockCost{ID: id}
		s.blocks[id] = b
	}
	return b
}

func (s *machineSim) charge(cycles float64, insts uint64) {
	s.cur.Cycles += cycles
	s.cur.Insts += insts
	s.totalCycles += cycles
}

// EnterBlock implements interp.Observer.
func (s *machineSim) EnterBlock(id string) { s.cur = s.block(id) }

// vectorized reports whether this machine's compiler vectorizes the given
// context: annotated loops always, clean loops only with an aggressive
// auto-vectorizer.
func (s *machineSim) vectorized(vec interp.VecLevel) bool {
	if s.m.VectorWidth <= 1 {
		return false
	}
	switch vec {
	case interp.VecAnnotated:
		return true
	case interp.VecAuto:
		return s.m.AutoVectorize
	}
	return false
}

// Op implements interp.Observer.
func (s *machineSim) Op(class interp.OpClass, vec interp.VecLevel) {
	v := s.vectorized(vec)
	switch class {
	case interp.OpFloat:
		c := 1 / s.m.FPOpsPerCycle
		if v {
			c /= float64(s.m.VectorWidth)
		}
		s.charge(c, 1)
		s.cur.FP++
	case interp.OpFloatDiv:
		// Divisions are unpipelined and do not vectorize profitably.
		s.charge(float64(s.m.DivLatencyCyc), 1)
		s.cur.FP++
		s.cur.Div++
	case interp.OpInt:
		c := 1 / s.m.IntOpsPerCycle
		if v {
			c /= float64(s.m.VectorWidth)
		}
		s.charge(c, 1)
		s.cur.Int++
	}
}

// Access implements interp.Observer: probe the hierarchy and charge the
// concurrency-amortized latency of the level that served the access.
func (s *machineSim) Access(addr uint64, size int, store bool) {
	if store {
		s.cur.Stores++
	} else {
		s.cur.Loads++
	}
	var cycles float64
	if s.l1.Access(addr) {
		// L1 hits are pipelined: throughput-limited, not latency-limited.
		cycles = 1 / float64(s.m.IssueWidth)
	} else {
		s.cur.L1Miss++
		if s.llc.Access(addr) {
			cycles = float64(s.m.LLCLatencyCyc) / s.m.MemConcurrency
		} else {
			s.cur.LLCMiss++
			cycles = float64(s.m.MemLatencyCyc) / s.m.MemConcurrency
		}
		if s.m.Prefetch {
			// Next-line prefetch rides the same transaction: fill the
			// following line into both levels without charging cycles or
			// demand-miss statistics.
			next := addr + uint64(s.m.L1LineB)
			s.l1.Fill(next)
			s.llc.Fill(next)
		}
	}
	s.charge(cycles, 1)
}

// LibCall implements interp.Observer. Library time is attributed to a
// dedicated "<block>:<func>" sub-block, mirroring the skeleton translator's
// lib statements, so library functions can surface as hot spots in their
// own right (the paper's SRAD exp/rand spots).
func (s *machineSim) LibCall(name string, vec interp.VecLevel) {
	lc, ok := baseLibCost[name]
	if !ok {
		lc = libCost{50, 20}
	}
	cycles := lc.cycles / float64(s.m.IssueWidth)
	if s.vectorized(vec) {
		// Vectorized math libraries exist but amortize poorly; credit half
		// the SIMD width.
		cycles /= float64(s.m.VectorWidth) / 2
	}
	b := s.block(s.cur.ID + ":" + name)
	b.Cycles += cycles
	b.Insts += lc.insts
	b.LibCalls++
	s.totalCycles += cycles
}

// Comm implements interp.Observer: charge the machine's interconnect model
// (per-message latency plus serialization) to the current comm block.
func (s *machineSim) Comm(bytes, msgs float64) {
	seconds := s.m.CommTime(bytes, msgs)
	cycles := seconds * s.m.FreqGHz * 1e9
	s.charge(cycles, 2)
	s.cur.LibCalls++
}

// Branch implements interp.Observer: 1-bit dynamic prediction with a fixed
// mispredict penalty.
func (s *machineSim) Branch(site string, taken bool) {
	s.charge(1/float64(s.m.IssueWidth), 1)
	if last, seen := s.lastOutcome[site]; seen && last != taken {
		s.charge(mispredictPenalty, 0)
	}
	s.lastOutcome[site] = taken
}

// LoopTrips implements interp.Observer (no cost; trip bookkeeping is charged
// per-iteration by the engine's explicit loop ops).
func (s *machineSim) LoopTrips(string, int64) {}

// Options configure a simulation run.
type Options struct {
	// Seed seeds the workload's rand() stream.
	Seed uint64
	// MaxSteps bounds execution (see interp.Options).
	MaxSteps int64
}

// Run executes the program on machine m and returns the measured profile.
// ctx bounds the run: cancellation or a deadline stops the interpreter at
// statement granularity. A panic anywhere in the timing model is recovered
// and returned as an error wrapping guard.ErrPanic, so a poisoned machine
// description cannot take down a sweep.
func Run(ctx context.Context, prog *minilang.Program, m *hw.Machine, opts *Options) (res *Result, err error) {
	defer guard.Recover(&err, "sim: %s on %s", prog.Source, m.Name)
	guard.Hit("sim.run", m.Name)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ms := newMachineSim(m)
	// Attribute any pre-block work (globals init) to a synthetic block.
	ms.cur = ms.block("_startup")
	var iopts interp.Options
	if opts != nil {
		iopts.Seed = opts.Seed
		iopts.MaxSteps = opts.MaxSteps
	}
	iopts.Observer = ms
	iopts.Ctx = ctx
	eng, err := interp.New(prog, &iopts)
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	res = &Result{
		Machine: m,
		ByID:    ms.blocks,
		L1:      ms.l1,
		LLC:     ms.llc,
		Steps:   eng.Steps(),
	}
	for _, b := range ms.blocks {
		if b.Cycles == 0 && b.Insts == 0 {
			continue
		}
		res.Blocks = append(res.Blocks, b)
		res.TotalCycles += b.Cycles
	}
	sort.SliceStable(res.Blocks, func(i, j int) bool {
		if res.Blocks[i].Cycles != res.Blocks[j].Cycles {
			return res.Blocks[i].Cycles > res.Blocks[j].Cycles
		}
		return res.Blocks[i].ID < res.Blocks[j].ID
	})
	res.TotalSeconds = m.CyclesToSeconds(res.TotalCycles)
	return res, nil
}
