package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"skope/internal/guard"
	"skope/internal/hw"
	"skope/internal/minilang"
)

// longProg is a workload large enough to cross many interpreter
// context-check intervals (the engine polls ctx every 1024 steps).
const longProg = `
global n: int = 200000;
func main() {
  var s: float = 0.0;
  for i = 0 .. n {
    s = s + 1.0;
  }
}
`

func TestRunPreCanceledContext(t *testing.T) {
	prog := minilang.MustCheck(minilang.MustParse("cancel", longProg))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, prog, hw.BGQ(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want wrapped context.Canceled", err)
	}
	if res != nil {
		t.Error("partial result returned from canceled run")
	}
}

// TestRunCancelMidRun cancels the context from inside the interpreter's
// step-budget check (via the interp.step fault point) and verifies the
// simulation stops promptly, discards partial results, and reports the
// cancellation through the %w chain.
func TestRunCancelMidRun(t *testing.T) {
	prog := minilang.MustCheck(minilang.MustParse("cancel", longProg))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hits := 0
	disarm := guard.Arm("interp.step", func(string) {
		hits++
		if hits == 2 { // let the run make real progress first
			cancel()
		}
	})
	t.Cleanup(disarm)
	start := time.Now()
	res, err := Run(ctx, prog, hw.BGQ(), nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled run took %v to stop", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want wrapped context.Canceled", err)
	}
	if res != nil {
		t.Error("partial result returned from canceled run")
	}
	if hits < 2 {
		t.Errorf("fault point hit %d times; cancellation did not happen mid-run", hits)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	prog := minilang.MustCheck(minilang.MustParse("cancel", longProg))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := Run(ctx, prog, hw.BGQ(), nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestRunPanicIsolated proves the sim.run boundary converts a panic into an
// attributed error instead of crashing the caller.
func TestRunPanicIsolated(t *testing.T) {
	prog := minilang.MustCheck(minilang.MustParse("poison", "func main() {}"))
	disarm := guard.Arm("sim.run", func(string) { panic("injected fault") })
	t.Cleanup(disarm)
	res, err := Run(context.Background(), prog, hw.BGQ(), nil)
	if !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("Run = %v, want wrapped guard.ErrPanic", err)
	}
	if res != nil {
		t.Error("result returned alongside recovered panic")
	}
}
