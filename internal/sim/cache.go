// Package sim implements the detailed machine timing simulator used as the
// reproduction's ground truth (see DESIGN.md). The paper validates its
// analytical projections against profiled runs on two physical machines
// (BG/Q and Xeon nodes); this package plays that role: it executes minilang
// programs on a machine model with real set-associative caches, per-class
// instruction costs, division latency, SIMD, and branch-misprediction
// penalties — exactly the machine-dependent effects the analytical model
// abstracts away — and attributes cycles to source blocks, producing the
// measured ("Prof") hot-spot baseline and the issue-rate statistics of the
// paper's Figure 8.
package sim

// cacheLine is one resident line: its tag and an LRU timestamp.
type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Cache is a set-associative LRU cache.
type Cache struct {
	sets    [][]cacheLine
	lineB   uint64
	numSets uint64
	clock   uint64

	// Hits and Misses count probe outcomes.
	Hits, Misses uint64
}

// NewCache builds a cache of the given total size, line size and
// associativity (all in bytes / ways). Geometry must divide evenly; callers
// pass validated hw.Machine parameters.
func NewCache(sizeB, lineB, assoc int) *Cache {
	numSets := sizeB / (lineB * assoc)
	if numSets < 1 {
		numSets = 1
	}
	c := &Cache{
		sets:    make([][]cacheLine, numSets),
		lineB:   uint64(lineB),
		numSets: uint64(numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, assoc)
	}
	return c
}

// Access probes the cache for addr and returns whether it hit. On a miss
// the line is filled, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	lineAddr := addr / c.lineB
	set := c.sets[lineAddr%c.numSets]
	tag := lineAddr / c.numSets
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Fill: evict LRU (or first invalid).
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.clock}
	return false
}

// Fill inserts the line containing addr without recording hit/miss
// statistics — the prefetch path (a prefetch is not a demand access).
func (c *Cache) Fill(addr uint64) {
	c.clock++
	lineAddr := addr / c.lineB
	set := c.sets[lineAddr%c.numSets]
	tag := lineAddr / c.numSets
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			return
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, lru: c.clock}
}

// Accesses returns the total number of probes.
func (c *Cache) Accesses() uint64 { return c.Hits + c.Misses }

// HitRate returns the hit fraction (0 when unused).
func (c *Cache) HitRate() float64 {
	n := c.Accesses()
	if n == 0 {
		return 0
	}
	return float64(c.Hits) / float64(n)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = cacheLine{}
		}
	}
	c.Hits, c.Misses, c.clock = 0, 0, 0
}
