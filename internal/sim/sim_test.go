package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"skope/internal/hw"
	"skope/internal/minilang"
)

func runSim(t *testing.T, src string, m *hw.Machine) *Result {
	t.Helper()
	prog, err := minilang.Parse("simtest", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), prog, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheBasicLRU(t *testing.T) {
	// 2 sets x 2 ways x 16B lines = 64B cache.
	c := NewCache(64, 16, 2)
	if !(!c.Access(0) && c.Access(0)) {
		t.Fatal("miss-then-hit broken")
	}
	// Fill set 0 (addresses mapping to set 0: line addresses even).
	c.Reset()
	c.Access(0)  // set 0, tag 0 - miss
	c.Access(32) // set 0, tag 1 - miss
	c.Access(0)  // hit, refreshes 0
	c.Access(64) // set 0, tag 2 - miss, evicts 32 (LRU)
	if !c.Access(0) {
		t.Error("line 0 should still be resident")
	}
	if c.Access(32) {
		t.Error("line 32 should have been evicted")
	}
	if c.Hits != 2 || c.Misses != 4 {
		t.Errorf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheHitRateAndReset(t *testing.T) {
	c := NewCache(1024, 64, 4)
	for i := 0; i < 10; i++ {
		c.Access(uint64(i) * 8) // within one line after first
	}
	if c.HitRate() < 0.8 {
		t.Errorf("hit rate = %g", c.HitRate())
	}
	c.Reset()
	if c.Accesses() != 0 || c.HitRate() != 0 {
		t.Error("reset incomplete")
	}
}

// Property: hits + misses == accesses, and re-accessing the same address
// immediately always hits.
func TestQuickCacheInvariants(t *testing.T) {
	c := NewCache(4096, 64, 4)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return c.Hits+c.Misses == c.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

const streamSrc = `
global n: int = 4096;
global a: [n]float;
global b: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = b[i] * 2.0 + 1.0;
  }
}
`

func TestSimStreamWorkload(t *testing.T) {
	res := runSim(t, streamSrc, hw.BGQ())
	if res.TotalCycles <= 0 || res.TotalSeconds <= 0 {
		t.Fatalf("total = %g cycles", res.TotalCycles)
	}
	body := res.ByID["main/L7"]
	if body == nil {
		t.Fatalf("body block missing; have %v", blockIDs(res))
	}
	if body.Loads != 4096 || body.Stores != 4096 {
		t.Errorf("loads/stores = %d/%d", body.Loads, body.Stores)
	}
	if body.FP != 8192 {
		t.Errorf("fp ops = %d, want 8192", body.FP)
	}
	// Sequential access over 64B lines: 1 miss per 8 elements per array.
	wantMiss := uint64(2 * 4096 / 8)
	if body.L1Miss < wantMiss/2 || body.L1Miss > wantMiss*2 {
		t.Errorf("L1 misses = %d, want ~%d", body.L1Miss, wantMiss)
	}
	// The body must dominate the profile.
	if res.Blocks[0].ID != "main/L7" {
		t.Errorf("top block = %s", res.Blocks[0].ID)
	}
	if res.Coverage(res.Blocks[0]) < 0.5 {
		t.Errorf("body coverage = %g", res.Coverage(res.Blocks[0]))
	}
}

func TestTotalsConsistent(t *testing.T) {
	res := runSim(t, streamSrc, hw.BGQ())
	sum := 0.0
	for _, b := range res.Blocks {
		sum += b.Cycles
	}
	if math.Abs(sum-res.TotalCycles) > 1e-9*res.TotalCycles {
		t.Errorf("sum %g != total %g", sum, res.TotalCycles)
	}
	curve := res.CoverageCurve(res.Blocks)
	if math.Abs(curve[len(curve)-1]-1) > 1e-9 {
		t.Errorf("coverage curve end = %g", curve[len(curve)-1])
	}
}

func TestCacheLocalityMatters(t *testing.T) {
	// Strided access should run slower than sequential on the same machine.
	seq := runSim(t, `
global n: int = 32768;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = a[i] + 1.0;
  }
}
`, hw.BGQ())
	strided := runSim(t, `
global n: int = 32768;
global a: [n]float;
func main() {
  for s = 0 .. 8 {
    for i = 0 .. n / 8 {
      a[i * 8 + s] = a[i * 8 + s] + 1.0;
    }
  }
}
`, hw.BGQ())
	if strided.TotalCycles <= seq.TotalCycles {
		t.Errorf("strided (%g) not slower than sequential (%g)",
			strided.TotalCycles, seq.TotalCycles)
	}
}

func TestVectorizationSpeedsUp(t *testing.T) {
	base := `
global n: int = 65536;
global a: [n]float;
func main() {
  for i = 0 .. n %s {
    a[i] = a[i] * 1.5 + 2.0;
  }
}
`
	// On BG/Q only annotated loops vectorize (no aggressive auto-vec), so
	// the @vec annotation must make a measurable difference. A clean loop
	// body auto-vectorizes on Xeon regardless of annotation.
	scalarSrc := fmtSprintf(base, "")
	vecSrc := fmtSprintf(base, "@vec")
	scalarQ := runSim(t, scalarSrc, hw.BGQ())
	vecQ := runSim(t, vecSrc, hw.BGQ())
	if vecQ.TotalCycles >= scalarQ.TotalCycles {
		t.Errorf("BG/Q: annotated (%g) not faster than plain (%g)", vecQ.TotalCycles, scalarQ.TotalCycles)
	}
	scalarX := runSim(t, scalarSrc, hw.XeonE5())
	vecX := runSim(t, vecSrc, hw.XeonE5())
	if scalarX.TotalCycles != vecX.TotalCycles {
		t.Errorf("Xeon: auto-vectorizer should treat the clean loop like @vec (%g vs %g)",
			scalarX.TotalCycles, vecX.TotalCycles)
	}
}

func TestDivisionExpensive(t *testing.T) {
	mul := runSim(t, `
global n: int = 16384;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = a[i] * 0.5;
  }
}
`, hw.BGQ())
	div := runSim(t, `
global n: int = 16384;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = a[i] / 2.0;
  }
}
`, hw.BGQ())
	if div.TotalCycles < mul.TotalCycles*2 {
		t.Errorf("division (%g) not >> multiplication (%g)", div.TotalCycles, mul.TotalCycles)
	}
}

func TestIssueRateAndMissStats(t *testing.T) {
	res := runSim(t, streamSrc, hw.BGQ())
	body := res.ByID["main/L7"]
	ipc := body.IssueRate()
	if ipc <= 0 || ipc > float64(res.Machine.IssueWidth)*2 {
		t.Errorf("issue rate = %g", ipc)
	}
	if body.InstsPerL1Miss() <= 0 {
		t.Error("insts per L1 miss not positive")
	}
	// A no-miss block reports its instruction count.
	b := &BlockCost{Insts: 100}
	if b.InstsPerL1Miss() != 100 {
		t.Errorf("no-miss InstsPerL1Miss = %g", b.InstsPerL1Miss())
	}
	if b.IssueRate() != 0 {
		t.Errorf("zero-cycle IssueRate = %g", b.IssueRate())
	}
}

func TestMachinesProduceDifferentProfiles(t *testing.T) {
	// Mixed workload: compute-heavy and memory-heavy blocks; the machines
	// should disagree on relative cost (the paper's central observation).
	src := `
global n: int = 8192;
global big: [n * 16]float;
global x: float;
func main() {
  x = 0.0;
  for i = 0 .. n {
    x = x + (x * 1.000001 + 0.5) * (x * 0.999999 - 0.5) + 1.0;
  }
  for i = 0 .. n * 16 {
    big[i] = big[i] + 1.0;
  }
}
`
	q := runSim(t, src, hw.BGQ())
	x := runSim(t, src, hw.XeonE5())
	covQ := q.Coverage(q.ByID["main/L8"]) // compute block
	covX := x.Coverage(x.ByID["main/L8"])
	if covQ == covX {
		t.Error("identical coverage on both machines is implausible")
	}
}

func TestBranchMispredictionCharged(t *testing.T) {
	regular := runSim(t, `
global n: int = 8192;
global acc: float;
func main() {
  for i = 0 .. n {
    if (i >= 0) {
      acc = acc + 1.0;
    }
  }
}
`, hw.BGQ())
	alternating := runSim(t, `
global n: int = 8192;
global acc: float;
func main() {
  for i = 0 .. n {
    if (i % 2 == 0) {
      acc = acc + 1.0;
    } else {
      acc = acc + 1.0;
    }
  }
}
`, hw.BGQ())
	if alternating.TotalCycles <= regular.TotalCycles {
		t.Errorf("alternating branches (%g) not slower than regular (%g)",
			alternating.TotalCycles, regular.TotalCycles)
	}
}

func TestLibCallsCharged(t *testing.T) {
	res := runSim(t, `
global n: int = 4096;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = exp(a[i]);
  }
}
`, hw.BGQ())
	libBlk := res.ByID["main/L6:exp"]
	if libBlk == nil || libBlk.LibCalls != 4096 {
		t.Errorf("lib block = %+v", libBlk)
	}
}

func TestInvalidMachineRejected(t *testing.T) {
	prog := minilang.MustCheck(minilang.MustParse("t", "func main() {}"))
	m := hw.BGQ()
	m.FreqGHz = 0
	if _, err := Run(context.Background(), prog, m, nil); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestResultStringAndRank(t *testing.T) {
	res := runSim(t, streamSrc, hw.BGQ())
	if res.RankOf("main/L7") != 1 {
		t.Errorf("rank = %d", res.RankOf("main/L7"))
	}
	if res.RankOf("nosuch") != 0 {
		t.Error("missing block should rank 0")
	}
	s := res.String()
	if len(s) == 0 || res.TopN(3) == nil {
		t.Error("String/TopN broken")
	}
}

func blockIDs(r *Result) []string {
	out := make([]string, len(r.Blocks))
	for i, b := range r.Blocks {
		out[i] = b.ID
	}
	return out
}

func fmtSprintf(format, a string) string {
	out := ""
	for i := 0; i < len(format); i++ {
		if format[i] == '%' && i+1 < len(format) && format[i+1] == 's' {
			out += a
			i++
			continue
		}
		out += string(format[i])
	}
	return out
}

func TestPrefetcherHelpsStreams(t *testing.T) {
	streaming := `
global n: int = 65536;
global a: [n]float;
func main() {
  for i = 0 .. n {
    a[i] = a[i] + 1.0;
  }
}
`
	random := `
global n: int = 65536;
global a: [n]float;
global idx: [n]int;
func main() {
  for i = 0 .. n {
    var r: float = 0.0;
    r = rand();
    idx[i] = r * (n - 1);
  }
  for i = 0 .. n {
    var j: int = idx[i];
    a[j] = a[j] + 1.0;
  }
}
`
	base := hw.BGQ()
	pf := hw.BGQ()
	pf.Prefetch = true

	sBase := runSim(t, streaming, base)
	sPf := runSim(t, streaming, pf)
	if sPf.TotalCycles >= sBase.TotalCycles*0.95 {
		t.Errorf("prefetcher did not help streaming: %g vs %g", sPf.TotalCycles, sBase.TotalCycles)
	}

	// Cache-level view: sequential misses must drop sharply (every other
	// line comes in free).
	if sPf.L1.Misses >= sBase.L1.Misses*7/10 {
		t.Errorf("streaming L1 misses barely changed: %d vs %d", sPf.L1.Misses, sBase.L1.Misses)
	}

	rBase := runSim(t, random, base)
	rPf := runSim(t, random, pf)
	// The truly random block (the indirect-update loop body) must be left
	// essentially untouched: next-line prefetches almost never hit.
	blkBase := rBase.ByID["main/L12"]
	blkPf := rPf.ByID["main/L12"]
	if blkBase == nil || blkPf == nil {
		t.Fatalf("random block missing: %v", blockIDs(rBase))
	}
	lo, hi := blkBase.L1Miss*8/10, blkBase.L1Miss*12/10
	if blkPf.L1Miss < lo || blkPf.L1Miss > hi {
		t.Errorf("prefetcher changed random block misses: %d vs %d", blkPf.L1Miss, blkBase.L1Miss)
	}
}
