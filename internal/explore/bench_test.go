package explore_test

import (
	"context"
	"sync"
	"testing"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
)

// benchVariants builds the acceptance-criteria sweep: 1000 sord variants
// where most changes touch only the interconnect (so compute/memory
// characterizations are reusable) and a handful of bandwidth steps force
// occasional re-characterization.
func benchVariants(b *testing.B) []*hw.Machine {
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "mem-bandwidth", Values: []float64{14, 28, 56, 112}},
		{Param: "net-latency-us", Values: seq(1, 250)},
	}}
	variants, err := g.Variants()
	if err != nil {
		b.Fatal(err)
	}
	if len(variants) != 1000 {
		b.Fatalf("grid produced %d variants", len(variants))
	}
	return variants
}

// BenchmarkExploreSweep compares the memoizing exploration engine against
// naive repeated hotspot.Analyze over the same 1000-variant design space.
// The engine must win by >= 2x here: 996 of the 1000 variants reuse a
// cached compute characterization and only re-time the interconnect.
func BenchmarkExploreSweep(b *testing.B) {
	run := prepared(b, "sord")
	variants := benchVariants(b)

	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Fresh engine per iteration: the benchmark measures a cold
			// sweep, not a pre-warmed cache.
			eng, err := explore.New(run.BET, run.Libs)
			if err != nil {
				b.Fatal(err)
			}
			analyses, err := eng.Sweep(context.Background(), variants)
			if err != nil {
				b.Fatal(err)
			}
			if len(analyses) != len(variants) {
				b.Fatal("short sweep")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, m := range variants {
				if err := m.Validate(); err != nil {
					b.Fatal(err)
				}
				if _, err := hotspot.Analyze(context.Background(), run.BET, hw.NewModel(m), run.Libs); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// parityBest caches the exhaustive optimum of the parity grid, computed
// once outside any timed region so the adaptive sub-benchmark can assert
// correctness without paying for the reference sweep.
var (
	parityBestOnce sync.Once
	parityBestIdx  int
)

func parityBest(b *testing.B, variants []*hw.Machine) int {
	b.Helper()
	parityBestOnce.Do(func() {
		run := prepared(b, "sord")
		eng, err := explore.New(run.BET, run.Libs)
		if err != nil {
			b.Fatal(err)
		}
		analyses, err := eng.Sweep(context.Background(), variants)
		if err != nil {
			b.Fatal(err)
		}
		parityBestIdx = explore.Best(analyses)
	})
	return parityBestIdx
}

// BenchmarkAdaptiveVsExhaustive measures evals-to-optimum on the
// 600-variant parity grid: the exhaustive sweep pays for every variant,
// the surrogate-guided search for a few rounds. Both sub-benchmarks
// report an evals/op metric (the pinned comparison lives in
// BENCH_adaptive.json); the adaptive one also asserts it found the exact
// exhaustive optimum, so running it with -benchtime 1x doubles as a
// parity smoke.
func BenchmarkAdaptiveVsExhaustive(b *testing.B) {
	run := prepared(b, "sord")
	variants := parityVariants(b)
	axes := parityAxes()

	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := explore.New(run.BET, run.Libs)
			if err != nil {
				b.Fatal(err)
			}
			analyses, err := eng.Sweep(context.Background(), variants)
			if err != nil {
				b.Fatal(err)
			}
			if explore.Best(analyses) < 0 {
				b.Fatal("no best variant")
			}
		}
		b.ReportMetric(float64(len(variants)), "evals/op")
	})
	b.Run("adaptive", func(b *testing.B) {
		want := parityBest(b, variants)
		b.ResetTimer()
		evals := 0
		for i := 0; i < b.N; i++ {
			eng, err := explore.New(run.BET, run.Libs)
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Adaptive(context.Background(), variants, axes,
				explore.AdaptiveOptions{Seed: 42, MaxEvals: len(variants) * 5 / 100})
			if err != nil {
				b.Fatal(err)
			}
			if res.BestIndex != want {
				b.Fatalf("adaptive optimum %d, exhaustive says %d", res.BestIndex, want)
			}
			evals = res.Evals
		}
		b.ReportMetric(float64(evals), "evals/op")
	})
}
