package explore_test

import (
	"context"
	"testing"

	"skope/internal/explore"
	"skope/internal/hotspot"
	"skope/internal/hw"
)

// benchVariants builds the acceptance-criteria sweep: 1000 sord variants
// where most changes touch only the interconnect (so compute/memory
// characterizations are reusable) and a handful of bandwidth steps force
// occasional re-characterization.
func benchVariants(b *testing.B) []*hw.Machine {
	g := explore.Grid{Base: hw.BGQ(), Axes: []explore.Axis{
		{Param: "mem-bandwidth", Values: []float64{14, 28, 56, 112}},
		{Param: "net-latency-us", Values: seq(1, 250)},
	}}
	variants, err := g.Variants()
	if err != nil {
		b.Fatal(err)
	}
	if len(variants) != 1000 {
		b.Fatalf("grid produced %d variants", len(variants))
	}
	return variants
}

// BenchmarkExploreSweep compares the memoizing exploration engine against
// naive repeated hotspot.Analyze over the same 1000-variant design space.
// The engine must win by >= 2x here: 996 of the 1000 variants reuse a
// cached compute characterization and only re-time the interconnect.
func BenchmarkExploreSweep(b *testing.B) {
	run := prepared(b, "sord")
	variants := benchVariants(b)

	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Fresh engine per iteration: the benchmark measures a cold
			// sweep, not a pre-warmed cache.
			eng, err := explore.New(run.BET, run.Libs)
			if err != nil {
				b.Fatal(err)
			}
			analyses, err := eng.Sweep(context.Background(), variants)
			if err != nil {
				b.Fatal(err)
			}
			if len(analyses) != len(variants) {
				b.Fatal("short sweep")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, m := range variants {
				if err := m.Validate(); err != nil {
					b.Fatal(err)
				}
				if _, err := hotspot.Analyze(context.Background(), run.BET, hw.NewModel(m), run.Libs); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
