package explore

import (
	"fmt"
	"math"
)

// Surrogate is the cheap analytical stand-in the adaptive explorer trains
// online from completed variants: a ridge-regularized weighted least-squares
// model over the grid's axis values plus quadratic self-terms, with every
// feature standardized against the training sample. It is deliberately
// stdlib-only and deterministic — fitting the same samples in the same
// order produces bit-identical coefficients, which is what makes a fixed
// -adaptive-seed reproduce its round trace byte for byte.
//
// The model it learns,
//
//	y ≈ ȳ + Σ_j θ_j·z_j + Σ_j θ_{d+j}·z_j²   (z = standardized axis value)
//
// is intentionally crude: the objective (projected total time) is close to
// monotone in each machine parameter under the roofline model, and a
// quadratic fit over a few dozen samples ranks the remaining grid well
// enough to steer evaluation toward the optimum. The exact engine stays
// the referee — the surrogate only chooses what to evaluate next, never
// what a variant's time is.
type Surrogate struct {
	dims int // axes per sample

	// Training set, in observation order. Fitting is order-sensitive at
	// the ulp level (float summation), so callers that need reproducible
	// fits feed samples in a deterministic order.
	xs [][]float64
	ys []float64
	ws []float64

	// Fitted state (valid when fitted).
	fitted bool
	mean   []float64 // per-feature mean
	scale  []float64 // per-feature std; 0 marks a constant (dropped) column
	ymean  float64
	theta  []float64
	r2     float64
}

// NewSurrogate returns an empty surrogate over dims grid axes.
func NewSurrogate(dims int) *Surrogate {
	if dims < 0 {
		dims = 0
	}
	return &Surrogate{dims: dims}
}

// Len returns the number of training samples observed so far.
func (s *Surrogate) Len() int { return len(s.ys) }

// Observe adds one completed variant: x is its axis-value vector (length
// dims), y the objective (projected total time), w the sample weight —
// the evaluation's confidence score, so degraded evaluations pull the fit
// less than trustworthy ones. Non-positive and NaN weights are clamped to
// a small floor rather than dropped: even a low-confidence sample carries
// ranking signal. Samples with NaN/Inf objectives are rejected.
func (s *Surrogate) Observe(x []float64, y, w float64) error {
	if len(x) != s.dims {
		return fmt.Errorf("explore: surrogate sample has %d axes, want %d", len(x), s.dims)
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("explore: surrogate objective %v is not finite", y)
	}
	if math.IsNaN(w) || w <= 0 {
		w = 1e-3
	}
	s.xs = append(s.xs, append([]float64(nil), x...))
	s.ys = append(s.ys, y)
	s.ws = append(s.ws, w)
	s.fitted = false
	return nil
}

// nfeat returns the feature count: linear + quadratic self-term per axis.
func (s *Surrogate) nfeat() int { return 2 * s.dims }

// features expands one axis vector into the raw (unstandardized) feature
// vector.
func (s *Surrogate) features(x []float64) []float64 {
	f := make([]float64, s.nfeat())
	for j, v := range x {
		f[j] = v
		f[s.dims+j] = v * v
	}
	return f
}

// Fit solves the ridge-regularized weighted normal equations over the
// observed samples. It never fails on degenerate data: constant feature
// columns (a single-valued axis, a one-point grid) are standardized to
// zero and effectively dropped, an empty or single-sample training set
// fits the weighted-mean predictor, and the ridge term keeps the system
// solvable when samples are fewer than features.
func (s *Surrogate) Fit() {
	n := len(s.ys)
	d := s.nfeat()
	s.mean = make([]float64, d)
	s.scale = make([]float64, d)
	s.theta = make([]float64, d)
	s.ymean = 0
	s.r2 = 0
	s.fitted = true
	if n == 0 {
		return
	}

	// Weighted feature means and standard deviations ("standardized
	// online": the standardization is re-derived from whatever has been
	// observed so far, so early rounds are scaled to early data).
	var wsum float64
	feats := make([][]float64, n)
	for i, x := range s.xs {
		feats[i] = s.features(x)
		wsum += s.ws[i]
		s.ymean += s.ws[i] * s.ys[i]
	}
	s.ymean /= wsum
	for j := 0; j < d; j++ {
		var m float64
		for i := range feats {
			m += s.ws[i] * feats[i][j]
		}
		m /= wsum
		var v float64
		for i := range feats {
			dv := feats[i][j] - m
			v += s.ws[i] * dv * dv
		}
		v /= wsum
		s.mean[j] = m
		if v > 1e-24 {
			s.scale[j] = math.Sqrt(v)
		}
	}
	if n == 1 {
		// One sample: the mean predictor is exact; R² of a zero-variance
		// fit is defined as 1 here (nothing left to explain).
		s.r2 = 1
		return
	}

	// Normal equations over standardized features: (ZᵀWZ + λI)θ = ZᵀW(y-ȳ).
	// λ scales with total weight so regularization strength is independent
	// of the sample count.
	lambda := 1e-6 * wsum
	a := make([][]float64, d)
	b := make([]float64, d)
	for j := range a {
		a[j] = make([]float64, d)
		a[j][j] = lambda
	}
	z := make([]float64, d)
	for i := range feats {
		for j := 0; j < d; j++ {
			z[j] = s.standardize(feats[i][j], j)
		}
		dy := s.ys[i] - s.ymean
		w := s.ws[i]
		for j := 0; j < d; j++ {
			if z[j] == 0 {
				continue
			}
			b[j] += w * z[j] * dy
			for k := j; k < d; k++ {
				a[j][k] += w * z[j] * z[k]
			}
		}
	}
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
	}
	theta, ok := solve(a, b)
	if ok {
		s.theta = theta
	}

	// Weighted R² on the training set.
	var ssr, sst float64
	for i := range feats {
		pred := s.predictFeatures(feats[i])
		ssr += s.ws[i] * (s.ys[i] - pred) * (s.ys[i] - pred)
		sst += s.ws[i] * (s.ys[i] - s.ymean) * (s.ys[i] - s.ymean)
	}
	if sst <= 0 {
		s.r2 = 1
	} else {
		s.r2 = 1 - ssr/sst
	}
}

// standardize maps one raw feature value into the fitted z-space; constant
// columns map to 0 (they carry no ranking signal).
func (s *Surrogate) standardize(v float64, j int) float64 {
	if s.scale[j] == 0 {
		return 0
	}
	return (v - s.mean[j]) / s.scale[j]
}

// Predict returns the fitted objective estimate for one axis vector. An
// unfitted (or sample-free) surrogate predicts the weighted mean (0 when
// empty) — callers should Fit after observing.
func (s *Surrogate) Predict(x []float64) float64 {
	if !s.fitted || len(x) != s.dims {
		return s.ymean
	}
	return s.predictFeatures(s.features(x))
}

func (s *Surrogate) predictFeatures(f []float64) float64 {
	y := s.ymean
	for j, v := range f {
		if s.scale[j] == 0 {
			continue
		}
		y += s.theta[j] * s.standardize(v, j)
	}
	return y
}

// R2 returns the training-set weighted coefficient of determination of the
// last Fit (0 before any fit). It can be negative when the ridge fit is
// worse than the mean predictor — a useful signal that the surrogate is
// not yet trustworthy.
func (s *Surrogate) R2() float64 { return s.r2 }

// YStd returns the weighted standard deviation of the observed objectives
// — the natural unit for the acquisition loop's exploration bonus.
func (s *Surrogate) YStd() float64 {
	n := len(s.ys)
	if n == 0 {
		return 0
	}
	var wsum, m float64
	for i, y := range s.ys {
		wsum += s.ws[i]
		m += s.ws[i] * y
	}
	m /= wsum
	var v float64
	for i, y := range s.ys {
		v += s.ws[i] * (y - m) * (y - m)
	}
	return math.Sqrt(v / wsum)
}

// solve runs Gaussian elimination with partial pivoting on the dense
// system a·x = b (a is mutated). Returns ok=false if a pivot degenerates
// despite the ridge term — callers then keep the mean predictor.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in this column at or below the diagonal.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if a[p][col] == 0 || math.IsNaN(a[p][col]) {
			return nil, false
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, true
}
