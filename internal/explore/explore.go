// Package explore is the design-space exploration engine: it drives the
// analytical model of packages core/hw/hotspot over large grids of machine
// variants — the software-hardware co-design loop the paper motivates in
// §VI–§VII, where purely analytical projection makes sweeping thousands of
// hypothetical architectures cheap.
//
// The engine adds three things over calling hotspot.Analyze in a loop:
//
//   - a bounded worker pool (default runtime.GOMAXPROCS) with
//     context.Context cancellation and per-variant fault isolation: a
//     variant that fails validation — or panics — yields a Result carrying
//     a *VariantError while the rest of the sweep completes, so one
//     poisoned variant never voids a thousand healthy ones;
//   - memoized per-block characterization: a block's projected time depends
//     only on a subset of machine parameters (the roofline inputs for
//     comp/lib blocks, the network parameters for comm blocks), so variants
//     that leave that subset unchanged reuse cached times — and because the
//     cache stores the exact hotspot.BlockTimes the uncached path computes,
//     cached results are bit-identical to fresh hotspot.Analyze calls;
//   - incremental result streaming with progress counters (variants done,
//     cache hit rate, wall time) plus selection helpers (best variant,
//     Pareto frontier over projected time versus a cost metric).
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"skope/internal/core"
	"skope/internal/guard"
	"skope/internal/hotspot"
	"skope/internal/hw"
	"skope/internal/journal"
	"skope/internal/resilience"
	"skope/internal/store"
)

// compKey is the subset of machine parameters the roofline characterization
// of comp and lib blocks can depend on (across the base, vector-aware and
// division-aware models). Variants that agree on every field share the same
// per-block compute/memory times.
type compKey struct {
	freqGHz, fpOps, intOps         float64
	hitL1, hitLLC                  float64
	memConc, memBWGBs              float64
	issueWidth, vectorWidth        int
	divLatCyc                      int
	l1LatCyc, llcLatCyc, memLatCyc int
}

func compKeyOf(m *hw.Machine) compKey {
	return compKey{
		freqGHz: m.FreqGHz, fpOps: m.FPOpsPerCycle, intOps: m.IntOpsPerCycle,
		hitL1: m.HitL1, hitLLC: m.HitLLC,
		memConc: m.MemConcurrency, memBWGBs: m.MemBandwidthGBs,
		issueWidth: m.IssueWidth, vectorWidth: m.VectorWidth,
		divLatCyc: m.DivLatencyCyc,
		l1LatCyc:  m.L1LatencyCyc, llcLatCyc: m.LLCLatencyCyc, memLatCyc: m.MemLatencyCyc,
	}
}

// commKey is the subset of machine parameters comm-block times depend on.
type commKey struct {
	netLatUs, netBWGBs float64
}

func commKeyOf(m *hw.Machine) commKey {
	return commKey{netLatUs: m.NetLatencyUs, netBWGBs: m.NetBandwidthGBs}
}

// CacheStats counts memoization outcomes. A lookup that finds per-block
// times already characterized for the parameter subset is a hit; one that
// has to run the roofline (or interconnect) characterization is a miss.
type CacheStats struct {
	Hits, Misses int
}

// HitRate returns the fraction of lookups served from cache (0 when no
// lookup happened yet).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Progress is a sweep-level snapshot delivered to the OnProgress callback
// after each completed variant.
type Progress struct {
	// Done and Total count variants.
	Done, Total int
	// Replayed counts variants served from the sweep journal (a subset
	// of Done): completed in an earlier run and not recomputed.
	Replayed int
	// Stored counts variants served from the content-addressed result
	// store (also a subset of Done): computed by some earlier sweep —
	// possibly another session or process — and not recomputed.
	Stored int
	// Retried counts evaluation attempts beyond each variant's first —
	// the sweep's total transient-fault bill.
	Retried int
	// Cache aggregates memoization counters over the engine's lifetime.
	Cache CacheStats
	// Elapsed is the wall time since the sweep started.
	Elapsed time.Duration
	// Adaptive carries the just-completed round's trace when the snapshot
	// is a round boundary of a surrogate-guided search (Engine.Adaptive);
	// nil on exhaustive sweeps and on per-variant snapshots. On adaptive
	// round snapshots Done/Total count evaluations spent against the full
	// grid, not the current batch.
	Adaptive *RoundTrace
}

// Result is one evaluated variant, streamed as soon as it completes.
// Index is the variant's position in the input slice (results arrive in
// completion order, not input order). Exactly one of Analysis and Err is
// set: a failed variant carries its *VariantError instead of an analysis.
type Result struct {
	Index    int
	Machine  *hw.Machine
	Analysis *hotspot.Analysis
	// Replayed marks an analysis served from the sweep journal: assembled
	// from the durable per-block times of an earlier run, not recomputed.
	Replayed bool
	// Stored marks an analysis served from the content-addressed result
	// store: decoded bit-identically from an earlier sweep's record, not
	// recomputed.
	Stored bool
	// Attempts is the number of evaluation attempts the variant consumed
	// (0 when replayed, 1 on a first-try success or without retries).
	Attempts int
	// Err is the variant's failure (validation, modeling, timeout, or a
	// recovered panic), nil on success.
	Err error
}

// Engine evaluates machine variants over one fixed prepared workload.
// It is safe for concurrent use; the memo cache is shared across sweeps,
// so repeated or overlapping grids keep getting cheaper.
type Engine struct {
	layout   *hotspot.Layout
	newModel func(*hw.Machine) *hw.Model
	workers  int
	progress func(Progress)

	// Resilience configuration (see Retry, VariantTimeout, and the
	// breaker it feeds): retry is the per-variant policy, timeout the
	// per-attempt deadline, breaker the per-failure-class circuit that
	// stops retrying a class once it has proven deterministic.
	retry   resilience.Policy
	timeout time.Duration
	breaker *resilience.Breaker

	// minConf is the confidence floor (see MinConfidence); 0 disables it.
	minConf float64

	// Journal state (see Journal and UseJournal): jnl receives completed
	// variants; replay holds the decoded records found at bind time.
	jnl    *journal.Journal
	replay map[string]replayEntry

	// Content-addressed store state (see CAS in cas.go): cas serves and
	// receives results under the casMode digest.
	cas     *store.Store
	casMode string

	mu     sync.Mutex
	comp   map[compKey][]hotspot.BlockTimes
	comm   map[commKey][]hotspot.BlockTimes
	stats  CacheStats
	jnlErr error
	casErr error
}

// Option configures an Engine.
type Option func(*Engine)

// Workers bounds the evaluation pool at n concurrent workers. Values < 1
// leave the default (runtime.GOMAXPROCS) in place.
func Workers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// ModelFunc substitutes the roofline model constructor (default
// hw.NewModel) — e.g. hw.NewVectorAwareModel or hw.NewDivAwareModel for
// the ablation variants. The constructor must derive the model purely from
// the machine's parameters, which all hw model constructors do; otherwise
// the memo cache could serve stale times.
func ModelFunc(f func(*hw.Machine) *hw.Model) Option {
	return func(e *Engine) {
		if f != nil {
			e.newModel = f
		}
	}
}

// OnProgress installs a callback invoked (serially) after each completed
// variant with a sweep-level snapshot.
func OnProgress(f func(Progress)) Option {
	return func(e *Engine) { e.progress = f }
}

// Retry installs a retry policy for transient per-variant failures
// (recovered panics, attempt timeouts — never cancellation or validation
// rejections). The default is no retry: one attempt per variant.
func Retry(p resilience.Policy) Option {
	return func(e *Engine) { e.retry = p }
}

// VariantTimeout bounds each evaluation attempt at d. A timed-out attempt
// fails with resilience.ErrAttemptTimeout — transient, so a Retry policy
// re-attempts it. The abandoned computation finishes (and is discarded)
// in the background; with d <= 0 no deadline is enforced (the default).
func VariantTimeout(d time.Duration) Option {
	return func(e *Engine) { e.timeout = d }
}

// BreakerThreshold opens the engine's circuit breaker for a failure class
// (panic, timeout, limit, model) after n failed variants of that class:
// once open, further variants failing the same way are not retried, so a
// deterministic fault does not multiply by the retry budget across a
// large grid. n < 1 keeps the default of 3.
func BreakerThreshold(n int) Option {
	return func(e *Engine) { e.breaker = resilience.NewBreaker(n) }
}

// MinConfidence sets the confidence floor for the engine's sweeps:
// variants whose assembled analysis carries Confidence below c fail with
// an error wrapping ErrLowConfidence instead of ranking alongside
// trustworthy projections. The filter applies identically to fresh
// evaluations and journal replays, so a resumed sweep flags the same
// variants an uninterrupted one would. c <= 0 (the default) disables the
// floor. Low-confidence variants are still journaled — their per-block
// times are valid — so re-running with a lower floor replays them for free.
func MinConfidence(c float64) Option {
	return func(e *Engine) { e.minConf = c }
}

// Journal attaches a sweep journal to the engine. The journal must be
// compatible with the engine's layout (New fails with ErrMetaMismatch
// otherwise); variants whose machine fingerprint is already recorded are
// replayed — bit-identically, with zero recomputation — and fresh
// completions are durably appended. See also Engine.UseJournal for the
// open-and-attach convenience path.
func Journal(j *journal.Journal) Option {
	return func(e *Engine) { e.jnl = j }
}

// New builds an exploration engine for one modeled workload: the BET and
// the library model of a prepared pipeline run. The machine-independent
// analysis layout is resolved once, here; per-variant work is timing only.
func New(bet *core.BET, libs hotspot.LibModeler, opts ...Option) (*Engine, error) {
	l, err := hotspot.NewLayout(bet, libs)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	e := &Engine{
		layout:   l,
		newModel: hw.NewModel,
		workers:  runtime.GOMAXPROCS(0),
		comp:     make(map[compKey][]hotspot.BlockTimes),
		comm:     make(map[commKey][]hotspot.BlockTimes),
	}
	for _, o := range opts {
		o(e)
	}
	if e.breaker == nil {
		e.breaker = resilience.NewBreaker(0)
	}
	if e.jnl != nil {
		j := e.jnl
		e.jnl = nil
		if err := e.bindJournal(j); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// CacheStats returns the cumulative memoization counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// evaluate projects one variant, reusing cached per-block times when the
// relevant parameter subset has been characterized before. A panic anywhere
// below (a poisoned model constructor, a corrupted cache entry) is recovered
// into an error wrapping guard.ErrPanic — the worker pool stays alive. The
// guard.Hit call is a fault-injection point (no-op unless a test arms
// "explore.evaluate"). Alongside the analysis it returns the per-block
// times it assembled from, so a successful evaluation can be journaled
// without recomputation. Validation rejections come back marked
// resilience.Permanent: re-running an invalid machine cannot help.
func (e *Engine) evaluate(m *hw.Machine) (a *hotspot.Analysis, comp, comm []hotspot.BlockTimes, err error) {
	defer guard.Recover(&err, "evaluate %s", m.Name)
	guard.Hit("explore.evaluate", m.Name)
	if verr := m.Validate(); verr != nil {
		return nil, nil, nil, resilience.Permanent(verr)
	}
	comp, ok := e.lookupComp(m)
	if !ok {
		comp = e.layout.CompTimes(e.newModel(m))
		e.storeComp(m, comp)
	}
	comm, ok = e.lookupComm(m)
	if !ok {
		comm = e.layout.CommTimes(m)
		e.storeComm(m, comm)
	}
	a, err = e.layout.Assemble(m, comp, comm)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, comp, comm, nil
}

// evaluateOnce is evaluate under the engine's per-attempt deadline. The
// evaluation runs on its own goroutine; on timeout (or sweep
// cancellation) the attempt is abandoned — the goroutine drains into a
// buffered channel and its result is discarded.
func (e *Engine) evaluateOnce(ctx context.Context, m *hw.Machine) (*hotspot.Analysis, []hotspot.BlockTimes, []hotspot.BlockTimes, error) {
	if e.timeout <= 0 {
		return e.evaluate(m)
	}
	type outcome struct {
		a          *hotspot.Analysis
		comp, comm []hotspot.BlockTimes
		err        error
	}
	ch := make(chan outcome, 1)
	go func() {
		a, comp, comm, err := e.evaluate(m)
		ch <- outcome{a, comp, comm, err}
	}()
	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.a, o.comp, o.comm, o.err
	case <-timer.C:
		return nil, nil, nil, fmt.Errorf("explore: variant %s: %w (limit %v)", m.Name, resilience.ErrAttemptTimeout, e.timeout)
	case <-ctx.Done():
		return nil, nil, nil, fmt.Errorf("explore: variant %s: %w", m.Name, ctx.Err())
	}
}

// failureClass buckets a variant failure for the circuit breaker: faults
// of one class across many variants usually share one deterministic
// cause, so proving the class deterministic on a few variants stops the
// retry spend on the rest.
func failureClass(err error) string {
	switch {
	case errors.Is(err, resilience.ErrAttemptTimeout):
		return "timeout"
	case errors.Is(err, guard.ErrPanic):
		return "panic"
	case errors.Is(err, guard.ErrLimit):
		return "limit"
	case resilience.IsPermanent(err):
		return "invalid-machine"
	default:
		return "model"
	}
}

// evaluateVariant runs the full resilient evaluation of one variant:
// attempts under the per-attempt deadline, retried per the engine's
// policy for transient failures, gated by the circuit breaker (an open
// failure class gets its first attempt but no retries).
func (e *Engine) evaluateVariant(ctx context.Context, m *hw.Machine) (a *hotspot.Analysis, comp, comm []hotspot.BlockTimes, attempts int, err error) {
	p := e.retry
	classify := p.Classify
	if classify == nil {
		classify = resilience.Retryable
	}
	p.Classify = func(err error) bool {
		return classify(err) && e.breaker.Allow(failureClass(err))
	}
	attempts, err = p.Do(ctx, func(int) error {
		a, comp, comm, err = e.evaluateOnce(ctx, m)
		return err
	})
	if err != nil {
		e.breaker.Failure(failureClass(err))
		return nil, nil, nil, attempts, err
	}
	return a, comp, comm, attempts, nil
}

func (e *Engine) lookupComp(m *hw.Machine) ([]hotspot.BlockTimes, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bt, ok := e.comp[compKeyOf(m)]
	if ok {
		e.stats.Hits++
	} else {
		e.stats.Misses++
	}
	return bt, ok
}

func (e *Engine) storeComp(m *hw.Machine, bt []hotspot.BlockTimes) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.comp[compKeyOf(m)] = bt
}

func (e *Engine) lookupComm(m *hw.Machine) ([]hotspot.BlockTimes, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bt, ok := e.comm[commKeyOf(m)]
	if ok {
		e.stats.Hits++
	} else {
		e.stats.Misses++
	}
	return bt, ok
}

func (e *Engine) storeComm(m *hw.Machine, bt []hotspot.BlockTimes) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.comm[commKeyOf(m)] = bt
}

// Stream evaluates the variants through the bounded pool, sending each
// Result on the returned channel as it completes. Variant failures are
// isolated: a variant that fails validation, modeling, or panics yields a
// Result whose Err is a *VariantError, and the remaining variants keep
// going. Only context cancellation stops the sweep early; the channel
// closes when every variant is done or the context is canceled. The
// returned wait function blocks until all workers have exited and reports
// the sweep's outcome: nil, or the context's error — always wrapped, so
// callers can errors.Is against context.Canceled and friends. Per-variant
// errors travel on the Results, not through wait.
func (e *Engine) Stream(ctx context.Context, variants []*hw.Machine) (<-chan Result, func() error) {
	out := make(chan Result)
	sctx, cancel := context.WithCancel(ctx)

	work := make(chan int)
	go func() {
		defer close(work)
		for i := range variants {
			select {
			case work <- i:
			case <-sctx.Done():
				return
			}
		}
	}()

	start := time.Now()
	var (
		doneMu   sync.Mutex
		done     int
		replayed int
		stored   int
		retried  int
	)
	finish := func(r Result) {
		doneMu.Lock()
		defer doneMu.Unlock()
		done++
		if r.Replayed {
			replayed++
		}
		if r.Stored {
			stored++
		}
		if r.Attempts > 1 {
			retried += r.Attempts - 1
		}
		if e.progress != nil {
			e.progress(Progress{
				Done: done, Total: len(variants),
				Replayed: replayed, Stored: stored, Retried: retried,
				Cache:   e.CacheStats(),
				Elapsed: time.Since(start),
			})
		}
	}

	workers := e.workers
	if workers > len(variants) {
		workers = len(variants)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if sctx.Err() != nil {
					return
				}
				m := variants[i]
				r := Result{Index: i, Machine: m}
				if entry, ok := e.replayEntry(m); ok {
					// Journaled in an earlier run: assemble from the
					// durable per-block times, zero recomputation.
					a, err := e.layout.Assemble(m, entry.comp, entry.comm)
					if err != nil {
						r.Err = e.variantError(i, m, 0, err)
					} else {
						if entry.conf != nil {
							// The journal persisted the confidence the
							// original run assembled with; replaying it
							// keeps resumed sweeps bit-identical even if
							// the scoring formula evolves.
							a.Confidence = *entry.conf
						}
						// Write replays through to the store (before the
						// confidence gate, like fresh completions), so
						// finishing a journaled sweep also warms it.
						e.casPut(m, a)
						if lcErr := e.confidenceErr(a); lcErr != nil {
							r.Err = e.variantError(i, m, 0, lcErr)
						} else {
							r.Analysis = a
							r.Replayed = true
						}
					}
				} else if a, ok := e.casGet(m); ok {
					// Stored by an earlier sweep — possibly another
					// session or process — under the same (layout,
					// machine, mode) identity: decoded bit-identically,
					// zero recomputation. The confidence gate still
					// applies (the stored score is the computed one).
					if lcErr := e.confidenceErr(a); lcErr != nil {
						r.Err = e.variantError(i, m, 0, lcErr)
					} else {
						r.Analysis = a
						r.Stored = true
					}
				} else {
					a, comp, comm, attempts, err := e.evaluateVariant(sctx, m)
					r.Attempts = attempts
					if err != nil {
						// Cancellation of the sweep is not a variant
						// failure: drop the result, the worker exits.
						if sctx.Err() != nil && errors.Is(err, context.Canceled) {
							return
						}
						r.Err = e.variantError(i, m, attempts, err)
					} else {
						// Journal and store before the confidence gate:
						// the results are valid either way, and a re-run
						// with a lower floor replays them for free.
						e.journalAppend(m, comp, comm, a.Confidence)
						e.casPut(m, a)
						if lcErr := e.confidenceErr(a); lcErr != nil {
							r.Err = e.variantError(i, m, attempts, lcErr)
						} else {
							r.Analysis = a
						}
					}
				}
				select {
				case out <- r:
					finish(r)
				case <-sctx.Done():
					return
				}
			}
		}()
	}

	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(out)
		close(finished)
	}()
	wait := func() error {
		<-finished
		defer cancel()
		var errs []error
		if err := ctx.Err(); err != nil {
			errs = append(errs, fmt.Errorf("explore: sweep canceled: %w", err))
		}
		if jerr := e.journalError(); jerr != nil {
			errs = append(errs, jerr)
		}
		if cerr := e.casError(); cerr != nil {
			errs = append(errs, cerr)
		}
		return errors.Join(errs...)
	}
	return out, wait
}

// confidenceErr applies the MinConfidence floor to a successfully
// assembled analysis: nil when the floor is disabled or met, an error
// wrapping ErrLowConfidence (and marked permanent — re-evaluating cannot
// raise the score) otherwise.
func (e *Engine) confidenceErr(a *hotspot.Analysis) error {
	if e.minConf <= 0 || a.Confidence >= e.minConf {
		return nil
	}
	return resilience.Permanent(fmt.Errorf("%w: confidence %.4g below floor %.4g (%d diagnostics)",
		ErrLowConfidence, a.Confidence, e.minConf, len(a.Diagnostics)))
}

// variantError builds the enriched attribution for one failed variant.
func (e *Engine) variantError(i int, m *hw.Machine, attempts int, err error) *VariantError {
	return &VariantError{
		Index: i, Machine: m,
		MachineName: m.Name, Fingerprint: m.Fingerprint(),
		Attempts: attempts, Err: err,
	}
}

// Sweep evaluates every variant and returns the analyses index-aligned
// with the input. Failed variants leave a nil at their index, and the
// failures come back aggregated in a *SweepError alongside the healthy
// results — a sweep with errors is degraded, not void. Cancellation (the
// only way to lose healthy results) returns nil analyses and the wrapped
// context error.
func (e *Engine) Sweep(ctx context.Context, variants []*hw.Machine) ([]*hotspot.Analysis, error) {
	out := make([]*hotspot.Analysis, len(variants))
	var failures []*VariantError
	results, wait := e.Stream(ctx, variants)
	for r := range results {
		if r.Err != nil {
			var ve *VariantError
			if !errors.As(r.Err, &ve) {
				ve = &VariantError{Index: r.Index, Machine: r.Machine, MachineName: r.Machine.Name, Err: r.Err}
			}
			failures = append(failures, ve)
			continue
		}
		out[r.Index] = r.Analysis
	}
	werr := wait()
	if werr != nil && (errors.Is(werr, context.Canceled) || errors.Is(werr, context.DeadlineExceeded)) {
		// Cancellation is the only way to lose healthy results.
		return nil, werr
	}
	var errs []error
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
		errs = append(errs, &SweepError{Variants: failures})
	}
	if werr != nil {
		// A journal write failure degrades durability, not the sweep: the
		// analyses are all here, only crash-resume coverage is partial.
		errs = append(errs, werr)
	}
	return out, errors.Join(errs...)
}
